package revalidate

import (
	"repro/internal/cast"
	"repro/internal/castmap"
	"repro/internal/schema"
	"repro/internal/stream"
	"repro/internal/subsume"
)

// Abstract exposes the underlying abstract schema (Σ, T, ρ, R). It exists
// for in-module subsystems that serialize or inspect compiled state (the
// artifact codec); application code should stay on the Schema API.
func (s *Schema) Abstract() *schema.Schema { return s.s }

// Parts exposes the caster's precomputed internals — the R_sub/R_dis
// relations and the shared content-model caster table — for the artifact
// codec. The returned values are the live state, not copies; treat them as
// read-only.
func (c *Caster) Parts() (*subsume.Relations, *castmap.Table) {
	return c.engine.Rel, c.engine.Table()
}

// RestoreCasterPair is NewCasterPair from precomputed parts: it assembles
// both validation modes around relations and a caster table deserialized
// from a stored artifact, performing none of the preprocessing (no
// subsumption fixpoints, no product automata). The relations must be over
// exactly this schema pair's abstract schemas.
func RestoreCasterPair(src, dst *Schema, rel *subsume.Relations, table *castmap.Table) (*Caster, *StreamCaster, error) {
	if err := sameUniverse(src, dst); err != nil {
		return nil, nil, err
	}
	engine, err := cast.Restore(src.s, dst.s, rel, table, cast.Options{})
	if err != nil {
		return nil, nil, err
	}
	c := &Caster{src: src, dst: dst, engine: engine}
	sc := &StreamCaster{src: src, dst: dst, c: stream.NewCasterFrom(src.s, dst.s, rel, table)}
	return c, sc, nil
}
