package revalidate

import (
	"sort"

	"repro/internal/cast"
	"repro/internal/stream"
	"repro/internal/subsume"
)

// RootVerdict is the precomputed verdict for one root label of the source
// schema: whether documents rooted at Label are always target-valid
// (Subsumed), never target-valid (Disjoint, or the target does not accept
// the root at all), or need per-document validation.
type RootVerdict struct {
	Label   string `json:"label"`
	SrcType string `json:"srcType"`
	// DstType is empty when the target schema does not accept this root
	// label (in which case Disjoint is true).
	DstType  string `json:"dstType,omitempty"`
	Subsumed bool   `json:"subsumed"`
	Disjoint bool   `json:"disjoint"`
}

// PairReport summarizes the preprocessed state of a (source, target)
// schema pair without validating any document: the R_sub/R_dis verdicts
// for the root types — the static compatibility check — together with the
// sizes of the precomputed machinery. Producing a report costs nothing
// beyond the preprocessing the pair already paid for.
type PairReport struct {
	// Roots holds one verdict per source root label, sorted by label.
	Roots []RootVerdict `json:"roots"`
	// AlwaysValid reports full static compatibility: every document valid
	// under the source schema is valid under the target schema, so casts
	// are O(1). True iff every source root is subsumed by its target root.
	AlwaysValid bool `json:"alwaysValid"`
	// NeverValid reports static incompatibility: no source-valid document
	// is target-valid (every source root is disjoint from — or missing
	// in — the target).
	NeverValid bool `json:"neverValid"`

	SrcTypes      int `json:"srcTypes"`
	DstTypes      int `json:"dstTypes"`
	SubsumedPairs int `json:"subsumedPairs"`
	DisjointPairs int `json:"disjointPairs"`

	// ContentAutomata counts the per-type-pair content-model cast automata
	// held for the pair; IDAStates is the total number of c_immed product
	// states across them (a memory-footprint proxy).
	ContentAutomata int `json:"contentAutomata"`
	IDAStates       int `json:"idaStates"`
}

func buildPairReport(rel *subsume.Relations, casters, idaStates int) PairReport {
	st := rel.Stats()
	r := PairReport{
		SrcTypes:        st.SrcTypes,
		DstTypes:        st.DstTypes,
		SubsumedPairs:   st.SubsumedPairs,
		DisjointPairs:   st.DisjointPairs,
		ContentAutomata: casters,
		IDAStates:       idaStates,
	}
	alpha := rel.Src.Alpha
	for sym, τ := range rel.Src.Roots {
		v := RootVerdict{Label: alpha.Name(sym), SrcType: rel.Src.TypeOf(τ).Name}
		if τp, ok := rel.Dst.Roots[sym]; ok {
			v.DstType = rel.Dst.TypeOf(τp).Name
			v.Subsumed = rel.Subsumed(τ, τp)
			v.Disjoint = rel.Disjoint(τ, τp)
		} else {
			// The target never accepts this root label: statically invalid.
			v.Disjoint = true
		}
		r.Roots = append(r.Roots, v)
	}
	sort.Slice(r.Roots, func(i, j int) bool { return r.Roots[i].Label < r.Roots[j].Label })
	r.AlwaysValid = len(r.Roots) > 0
	r.NeverValid = len(r.Roots) > 0
	for _, v := range r.Roots {
		if !v.Subsumed {
			r.AlwaysValid = false
		}
		if !v.Disjoint {
			r.NeverValid = false
		}
	}
	return r
}

// Report summarizes the caster's precomputed relations and automata; see
// PairReport.
func (c *Caster) Report() PairReport {
	n, states := c.engine.CasterSizes()
	return buildPairReport(c.engine.Rel, n, states)
}

// Report summarizes the stream caster's precomputed relations and
// automata; see PairReport.
func (c *StreamCaster) Report() PairReport {
	n, states := c.c.CasterSizes()
	return buildPairReport(c.c.Rel, n, states)
}

// NewCasterPair preprocesses a (source, target) schema pair once and
// returns both validation modes over the shared state: the tree-level
// Caster and the streaming StreamCaster reuse one set of R_sub/R_dis
// relations and one content-model caster table. This is the constructor
// the serving layer's registry uses — half the preprocessing time and
// memory of building the two casters independently.
func NewCasterPair(src, dst *Schema, opts ...CasterOption) (*Caster, *StreamCaster, error) {
	if err := sameUniverse(src, dst); err != nil {
		return nil, nil, err
	}
	var o cast.Options
	for _, opt := range opts {
		opt(&o)
	}
	engine, err := cast.New(src.s, dst.s, o)
	if err != nil {
		return nil, nil, err
	}
	c := &Caster{src: src, dst: dst, engine: engine}
	sc := &StreamCaster{src: src, dst: dst, c: stream.NewCasterFrom(src.s, dst.s, engine.Rel, engine.Table())}
	return c, sc, nil
}
