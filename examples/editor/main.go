// Editor: an interactive editing session over a large document with
// revalidation after every change — schema cast with modifications (§3.3).
// Each keystroke-level edit is Δ-encoded; revalidation examines only the
// edited regions (plus the content models on their root paths), so the
// per-edit cost tracks the edit, not the 1000-item document.
//
//	go run ./examples/editor
package main

import (
	"fmt"
	"log"

	revalidate "repro"
	"repro/internal/wgen"
)

func main() {
	u := revalidate.NewUniverse()
	s, err := u.LoadXSDString(wgen.Figure2XSD(false, 100))
	if err != nil {
		log.Fatal(err)
	}
	// Same-schema incremental revalidation is the special case of schema
	// cast with modifications where source = target.
	caster, err := revalidate.NewCaster(s, s)
	if err != nil {
		log.Fatal(err)
	}

	doc, err := revalidate.ParseDocumentString(string(wgen.POXMLBytes(
		wgen.PODocument(wgen.PODocOptions{Items: 1000, IncludeBillTo: true, Seed: 3}))))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("editing a purchase order with %d nodes\n\n", doc.NodeCount())

	// A scripted editing session. Every step revalidates incrementally
	// and reports how much of the document was actually examined.
	step := func(desc string, edit func(*revalidate.EditSession) error) {
		es := doc.Edit()
		if err := edit(es); err != nil {
			log.Fatalf("%s: edit failed: %v", desc, err)
		}
		st, err := caster.ValidateModifiedStats(doc, es.Done())
		verdict := "✓ valid"
		if err != nil {
			verdict = fmt.Sprintf("✗ %v", err)
		}
		fmt.Printf("%-46s %s\n", desc, verdict)
		fmt.Printf("%-46s   (examined %d of %d nodes)\n", "", st.NodesVisited(), doc.NodeCount())
	}

	items := doc.Root().All("item")

	step("set item[500]/quantity to 42", func(es *revalidate.EditSession) error {
		qty, _ := items[500].First("quantity")
		return es.SetValue(qty, "42")
	})

	step("set item[7]/quantity to 400 (over the cap)", func(es *revalidate.EditSession) error {
		qty, _ := items[7].First("quantity")
		return es.SetValue(qty, "400")
	})

	step("fix item[7]/quantity back to 40", func(es *revalidate.EditSession) error {
		qty, _ := items[7].First("quantity")
		return es.SetValue(qty, "40")
	})

	step("append a new item", func(es *revalidate.EditSession) error {
		itemsElem, _ := doc.Root().First("items")
		return es.AppendChild(itemsElem, revalidate.Element("item",
			revalidate.Element("productName", revalidate.Text("Desk Lamp")),
			revalidate.Element("quantity", revalidate.Text("2")),
			revalidate.Element("USPrice", revalidate.Text("34.95")),
		))
	})

	step("delete billTo (required!)", func(es *revalidate.EditSession) error {
		bill, _ := doc.Root().First("billTo")
		return es.Delete(bill)
	})

	fmt.Println("\nnote how the examined-node count follows the edit, not the document")
}
