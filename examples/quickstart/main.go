// Quickstart: load a source and a target schema, then decide whether
// documents valid under the source are valid under the target — without
// re-reading the parts of the document the schemas agree on.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	revalidate "repro"
)

// The paper's Figure 1 scenario: version 1 of a purchase-order schema makes
// billTo optional; version 2 requires it.
const schemaV1 = `
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:element name="purchaseOrder" type="POType1"/>
  <xsd:complexType name="POType1">
    <xsd:sequence>
      <xsd:element name="shipTo" type="Address"/>
      <xsd:element name="billTo" type="Address" minOccurs="0"/>
      <xsd:element name="items" type="Items"/>
    </xsd:sequence>
  </xsd:complexType>
  <xsd:complexType name="Address">
    <xsd:sequence>
      <xsd:element name="name" type="xsd:string"/>
      <xsd:element name="street" type="xsd:string"/>
    </xsd:sequence>
  </xsd:complexType>
  <xsd:complexType name="Items">
    <xsd:sequence>
      <xsd:element name="item" type="xsd:string" minOccurs="0" maxOccurs="unbounded"/>
    </xsd:sequence>
  </xsd:complexType>
</xsd:schema>`

const schemaV2 = `
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:element name="purchaseOrder" type="POType2"/>
  <xsd:complexType name="POType2">
    <xsd:sequence>
      <xsd:element name="shipTo" type="Address"/>
      <xsd:element name="billTo" type="Address"/>
      <xsd:element name="items" type="Items"/>
    </xsd:sequence>
  </xsd:complexType>
  <xsd:complexType name="Address">
    <xsd:sequence>
      <xsd:element name="name" type="xsd:string"/>
      <xsd:element name="street" type="xsd:string"/>
    </xsd:sequence>
  </xsd:complexType>
  <xsd:complexType name="Items">
    <xsd:sequence>
      <xsd:element name="item" type="xsd:string" minOccurs="0" maxOccurs="unbounded"/>
    </xsd:sequence>
  </xsd:complexType>
</xsd:schema>`

const withBillTo = `
<purchaseOrder>
  <shipTo><name>Alice</name><street>1 Main St</street></shipTo>
  <billTo><name>Bob</name><street>2 Oak Ave</street></billTo>
  <items><item>lawnmower</item><item>tea kettle</item></items>
</purchaseOrder>`

const withoutBillTo = `
<purchaseOrder>
  <shipTo><name>Alice</name><street>1 Main St</street></shipTo>
  <items><item>lawnmower</item></items>
</purchaseOrder>`

func main() {
	// Schemas that will be compared must share one Universe.
	u := revalidate.NewUniverse()
	v1, err := u.LoadXSDString(schemaV1)
	if err != nil {
		log.Fatal(err)
	}
	v2, err := u.LoadXSDString(schemaV2)
	if err != nil {
		log.Fatal(err)
	}

	// Preprocess the pair once; validate many documents afterwards.
	caster, err := revalidate.NewCaster(v1, v2)
	if err != nil {
		log.Fatal(err)
	}

	for _, src := range []string{withBillTo, withoutBillTo} {
		doc, err := revalidate.ParseDocumentString(src)
		if err != nil {
			log.Fatal(err)
		}
		// The documents are v1-valid (check it, to honour the contract).
		if err := v1.Validate(doc); err != nil {
			log.Fatalf("input is not v1-valid: %v", err)
		}
		stats, err := caster.ValidateStats(doc)
		if err != nil {
			fmt.Printf("✗ not valid under v2: %v\n", err)
		} else {
			fmt.Printf("✓ valid under v2\n")
		}
		fmt.Printf("  work: %d of %d nodes visited, %d subtrees skipped as subsumed\n\n",
			stats.NodesVisited(), doc.NodeCount(), stats.SubsumedSkips)
	}
}
