// Message broker: messages arrive validated against a partner's schema and
// must be checked against the in-house variant before processing. This is
// the scenario the paper motivates for schema-independent preprocessing —
// the broker never sees documents ahead of time, so per-document
// preprocessing (as incremental validators require) is impossible; the
// schema pair, however, is fixed and preprocessed once.
//
// The example streams a batch of orders through both a schema-cast
// validator and a full validator and compares the observed work.
//
//	go run ./examples/messagebroker
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"
	"time"

	revalidate "repro"
	"repro/internal/wgen"
)

func main() {
	u := revalidate.NewUniverse()
	// Partner schema: quantities up to 500 allowed, billTo optional.
	partner, err := u.LoadXSDString(wgen.Figure2XSD(true, 500))
	if err != nil {
		log.Fatal(err)
	}
	// In-house schema: stricter quantity cap.
	inhouse, err := u.LoadXSDString(wgen.Figure2XSD(true, 100))
	if err != nil {
		log.Fatal(err)
	}
	caster, err := revalidate.NewCaster(partner, inhouse)
	if err != nil {
		log.Fatal(err)
	}

	// A day's traffic: most messages conform, some exceed the cap.
	rng := rand.New(rand.NewSource(99))
	var stream []*revalidate.Document
	for i := 0; i < 200; i++ {
		max := 99
		if rng.Intn(10) == 0 {
			max = 400 // occasionally the partner sends an oversized quantity
		}
		doc := wgen.PODocument(wgen.PODocOptions{
			Items:         20 + rng.Intn(60),
			IncludeBillTo: rng.Intn(2) == 0,
			MaxQuantity:   max,
			Seed:          int64(i),
		})
		parsed, err := revalidate.ParseDocumentString(string(wgen.POXMLBytes(doc)))
		if err != nil {
			log.Fatal(err)
		}
		stream = append(stream, parsed)
	}

	// Route with the schema-cast validator.
	var accepted, quarantined int
	var castNodes int64
	verdicts := make([]bool, len(stream))
	start := time.Now()
	for i, doc := range stream {
		st, err := caster.ValidateStats(doc)
		castNodes += st.NodesVisited()
		verdicts[i] = err == nil
		if err != nil {
			quarantined++
		} else {
			accepted++
		}
	}
	castTime := time.Since(start)

	// Same routing decisions with full validation (what a broker without
	// source-schema knowledge must do).
	var fullNodes int64
	start = time.Now()
	for i, doc := range stream {
		st, err := inhouse.ValidateFull(doc)
		fullNodes += st.NodesVisited()
		if (err == nil) != verdicts[i] {
			log.Fatalf("message %d: cast and full validation disagree", i)
		}
	}
	fullTime := time.Since(start)

	// Third strategy: never build trees at all. The streaming caster works
	// directly on the wire bytes with O(depth) memory, skimming subsumed
	// subtrees.
	streamCaster, err := revalidate.NewStreamCaster(partner, inhouse)
	if err != nil {
		log.Fatal(err)
	}
	wire := make([]string, len(stream))
	for i, doc := range stream {
		wire[i] = doc.XML()
	}
	var processed, skimmed int64
	start = time.Now()
	for i, msg := range wire {
		st, err := streamCaster.Validate(strings.NewReader(msg))
		processed += st.ElementsVisited
		skimmed += st.ElementsSkimmed
		if (err == nil) != verdicts[i] {
			log.Fatalf("message %d: streaming and tree casts disagree", i)
		}
	}
	streamTime := time.Since(start)

	fmt.Printf("routed %d messages: %d accepted, %d quarantined\n\n",
		len(stream), accepted, quarantined)
	fmt.Printf("%-28s %14s %14s\n", "", "nodes read", "wall time")
	fmt.Printf("%-28s %14d %14v\n", "schema cast (tree)", castNodes, castTime)
	fmt.Printf("%-28s %14d %14v\n", "full validation (tree)", fullNodes, fullTime)
	fmt.Printf("%-28s %7d+%dskim %14v  (from bytes, incl. tokenizing)\n",
		"schema cast (streaming)", processed, skimmed, streamTime)
	fmt.Printf("\nthe cast validator read %.1f%% of the nodes the full validator did\n",
		100*float64(castNodes)/float64(fullNodes))
}
