// Schema evolution: a catalogue of archived purchase orders, validated
// years ago against schema v1, must be ingested by a system that enforces
// schema v2 (billTo now required, quantities capped at 100). The schema
// cast validator triages the archive — and, for the repairable documents,
// incremental edits plus with-modifications revalidation fix them without
// a from-scratch pass.
//
//	go run ./examples/schemaevolution
package main

import (
	"fmt"
	"log"
	"math/rand"

	revalidate "repro"
	"repro/internal/wgen"
)

func main() {
	u := revalidate.NewUniverse()
	v1, err := u.LoadXSDString(wgen.Figure2XSD(true, 1000)) // lax: optional billTo, quantity < 1000
	if err != nil {
		log.Fatal(err)
	}
	v2, err := u.LoadXSDString(wgen.Figure2XSD(false, 100)) // strict: required billTo, quantity < 100
	if err != nil {
		log.Fatal(err)
	}
	caster, err := revalidate.NewCaster(v1, v2)
	if err != nil {
		log.Fatal(err)
	}

	// An archive of v1 documents with a mix of shapes.
	rng := rand.New(rand.NewSource(17))
	type archived struct {
		id  string
		doc *revalidate.Document
	}
	var archive []archived
	for i := 0; i < 8; i++ {
		opts := wgen.PODocOptions{
			Items:         5 + rng.Intn(20),
			IncludeBillTo: rng.Intn(2) == 0,
			MaxQuantity:   40 + rng.Intn(300), // some quantities exceed 100
			Seed:          int64(i),
		}
		doc, err := revalidate.ParseDocumentString(string(wgen.POXMLBytes(wgen.PODocument(opts))))
		if err != nil {
			log.Fatal(err)
		}
		if err := v1.Validate(doc); err != nil {
			log.Fatalf("archive doc %d not v1-valid: %v", i, err)
		}
		archive = append(archive, archived{id: fmt.Sprintf("PO-%04d", 1000+i), doc: doc})
	}

	// Two repair strategies: a hand-written domain-specific one (copy
	// shipTo into billTo, clamp quantities) and the library's automatic
	// Repairer (minimal-edit correction, the paper's §7 future work).
	repairer, err := revalidate.NewRepairer(v1, v2)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("triaging the archive against schema v2:")
	var repaired, ok, rejected int
	for i, a := range archive {
		err := caster.Validate(a.doc)
		if err == nil {
			fmt.Printf("  %s  ✓ already v2-valid\n", a.id)
			ok++
			continue
		}
		fmt.Printf("  %s  ✗ %v\n", a.id, err)
		if i%2 == 0 {
			// Domain-specific repair: business rules decide the fixes.
			if repair(caster, a.doc) {
				fmt.Printf("  %s  ✓ repaired (domain rules) and revalidated incrementally\n", a.id)
				repaired++
			} else {
				rejected++
			}
			continue
		}
		// Automatic repair: minimal edits chosen by the library.
		changes, report, err := repairer.Repair(a.doc)
		if err != nil {
			fmt.Printf("  %s  ✗ automatic repair impossible: %v\n", a.id, err)
			rejected++
			continue
		}
		if err := caster.ValidateModified(a.doc, changes); err != nil {
			log.Fatalf("%s: repair left the document invalid: %v", a.id, err)
		}
		fmt.Printf("  %s  ✓ repaired automatically: %d relabels, %d inserts, %d deletes, %d value fixes\n",
			a.id, report.Relabels, report.Inserts, report.Deletes, report.ValueFixes)
		repaired++
	}
	fmt.Printf("\n%d ok, %d repaired, %d need manual attention\n", ok, repaired, rejected)
}

// repair applies the two mechanical fixes the v1→v2 migration allows —
// copying shipTo into a missing billTo and clamping oversized quantities —
// then revalidates incrementally (only the edited regions are re-examined).
func repair(caster *revalidate.Caster, doc *revalidate.Document) bool {
	es := doc.Edit()
	root := doc.Root()

	if _, hasBill := root.First("billTo"); !hasBill {
		shipTo, okShip := root.First("shipTo")
		if !okShip {
			return false
		}
		// Duplicate the shipping address as the billing address.
		var fields []revalidate.Elem
		for _, f := range shipTo.Children() {
			fields = append(fields, revalidate.Element(f.Label(), revalidate.Text(f.Value())))
		}
		if err := es.InsertAfter(shipTo, revalidate.Element("billTo", fields...)); err != nil {
			return false
		}
	}
	for _, qty := range root.All("quantity") {
		if len(qty.Value()) >= 3 { // quantities are 1..999 here: 3 digits ⇒ ≥ 100
			if err := es.SetValue(qty, "99"); err != nil {
				return false
			}
		}
	}
	return caster.ValidateModified(doc, es.Done()) == nil
}
