// Catalog: identity constraints (xs:key / xs:keyref) enforced alongside
// structural revalidation during an editing session. Keys and references
// are indexed once; after each edit, structure is revalidated with the
// schema cast machinery and the identity constraints are re-checked
// incrementally — only the scopes the edit touched are re-evaluated.
//
//	go run ./examples/catalog
package main

import (
	"fmt"
	"log"

	revalidate "repro"
)

const catalogXSD = `
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:element name="catalog" type="CatalogType">
    <xsd:key name="skuKey">
      <xsd:selector xpath="products/product"/>
      <xsd:field xpath="sku"/>
    </xsd:key>
    <xsd:keyref name="bundleRef" refer="skuKey">
      <xsd:selector xpath="bundles/bundle/part"/>
      <xsd:field xpath="."/>
    </xsd:keyref>
  </xsd:element>
  <xsd:complexType name="CatalogType">
    <xsd:sequence>
      <xsd:element name="products" type="ProductsType"/>
      <xsd:element name="bundles" type="BundlesType"/>
    </xsd:sequence>
  </xsd:complexType>
  <xsd:complexType name="ProductsType">
    <xsd:sequence>
      <xsd:element name="product" type="ProductType" minOccurs="0" maxOccurs="unbounded"/>
    </xsd:sequence>
  </xsd:complexType>
  <xsd:complexType name="ProductType">
    <xsd:sequence>
      <xsd:element name="sku" type="xsd:string"/>
      <xsd:element name="title" type="xsd:string"/>
    </xsd:sequence>
  </xsd:complexType>
  <xsd:complexType name="BundlesType">
    <xsd:sequence>
      <xsd:element name="bundle" type="BundleType" minOccurs="0" maxOccurs="unbounded"/>
    </xsd:sequence>
  </xsd:complexType>
  <xsd:complexType name="BundleType">
    <xsd:sequence>
      <xsd:element name="part" type="xsd:string" minOccurs="1" maxOccurs="unbounded"/>
    </xsd:sequence>
  </xsd:complexType>
</xsd:schema>`

const catalogXML = `
<catalog>
  <products>
    <product><sku>LAMP-01</sku><title>Desk Lamp</title></product>
    <product><sku>KETL-02</sku><title>Tea Kettle</title></product>
    <product><sku>MOWR-03</sku><title>Lawnmower</title></product>
  </products>
  <bundles>
    <bundle><part>LAMP-01</part><part>KETL-02</part></bundle>
  </bundles>
</catalog>`

func main() {
	u := revalidate.NewUniverse()
	s, err := u.LoadXSDString(catalogXSD)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("declared identity constraints:")
	for _, c := range s.IdentityConstraints() {
		fmt.Println("  ", c)
	}

	doc, err := revalidate.ParseDocumentString(catalogXML)
	if err != nil {
		log.Fatal(err)
	}
	if err := s.Validate(doc); err != nil {
		log.Fatal("structure: ", err)
	}
	if err := s.ValidateIdentity(doc); err != nil {
		log.Fatal("identity: ", err)
	}
	fmt.Println("\ninitial catalog: structurally valid, keys consistent")

	// Same-schema incremental revalidation for structure…
	caster, err := revalidate.NewCaster(s, s)
	if err != nil {
		log.Fatal(err)
	}
	// …and an identity index for incremental key checking.
	keys, err := s.BuildIdentityIndex(doc)
	if err != nil {
		log.Fatal(err)
	}

	// step applies one insertion, revalidates structure + identity
	// incrementally, and rolls the insertion back when either check fails
	// (an editor would refuse to commit the change).
	step := func(desc string, parent, subtree revalidate.Elem) {
		es := doc.Edit()
		if err := es.AppendChild(parent, subtree); err != nil {
			log.Fatalf("%s: %v", desc, err)
		}
		changes := es.Done()
		verdict := "✓ committed"
		failed := false
		if err := caster.ValidateModified(doc, changes); err != nil {
			verdict = "✗ structure: " + err.Error()
			failed = true
		} else if err := keys.ValidateModified(doc, changes); err != nil {
			verdict = "✗ identity: " + err.Error()
			failed = true
		}
		if failed {
			undo := doc.Edit()
			if err := undo.Delete(subtree); err != nil {
				log.Fatal(err)
			}
			if err := caster.ValidateModified(doc, undo.Done()); err != nil {
				log.Fatal("rollback broke the document: ", err)
			}
			verdict += " (rolled back)"
		}
		fmt.Printf("%-42s %s\n", desc, verdict)
	}

	products, _ := doc.Root().First("products")
	bundles, _ := doc.Root().First("bundles")

	step("add product VASE-04", products,
		revalidate.Element("product",
			revalidate.Element("sku", revalidate.Text("VASE-04")),
			revalidate.Element("title", revalidate.Text("Lapis Vase"))))

	step("bundle VASE-04 with LAMP-01", bundles,
		revalidate.Element("bundle",
			revalidate.Element("part", revalidate.Text("VASE-04")),
			revalidate.Element("part", revalidate.Text("LAMP-01"))))

	step("add duplicate sku LAMP-01 (key!)", products,
		revalidate.Element("product",
			revalidate.Element("sku", revalidate.Text("LAMP-01")),
			revalidate.Element("title", revalidate.Text("Copycat Lamp"))))

	step("reference a missing sku (keyref!)", bundles,
		revalidate.Element("bundle",
			revalidate.Element("part", revalidate.Text("GONE-99"))))

	step("add empty bundle (structure!)", bundles,
		revalidate.Element("bundle"))
}
