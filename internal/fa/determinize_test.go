package fa

import (
	"math/rand"
	"testing"
)

// randNFA generates a random NFA with n states over k symbols, with some
// epsilon transitions.
func randNFA(rng *rand.Rand, n, k int) *NFA {
	nfa := NewNFA(k)
	for i := 0; i < n; i++ {
		nfa.AddState(rng.Intn(3) == 0)
	}
	for s := 0; s < n; s++ {
		edges := rng.Intn(3)
		for e := 0; e < edges; e++ {
			nfa.AddTransition(s, Symbol(rng.Intn(k)), rng.Intn(n))
		}
		if rng.Intn(4) == 0 {
			nfa.AddEpsilon(s, rng.Intn(n))
		}
	}
	nfa.SetStart(0)
	return nfa
}

func TestDeterminizeMatchesNFA(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 60; i++ {
		n := randNFA(rng, 5, 2)
		d := Determinize(n)
		enumWords(2, 6, func(w []Symbol) {
			if n.Accepts(w) != d.Accepts(w) {
				t.Fatalf("iter %d: NFA/DFA disagree on %v", i, w)
			}
		})
	}
}

func TestDeterminizeEpsilonChain(t *testing.T) {
	// start -ε-> s1 -ε-> s2(accept), s2 -a-> s0
	n := NewNFA(1)
	s0 := n.AddState(false)
	s1 := n.AddState(false)
	s2 := n.AddState(true)
	n.AddEpsilon(s0, s1)
	n.AddEpsilon(s1, s2)
	n.AddTransition(s2, 0, s0)
	n.SetStart(s0)
	d := Determinize(n)
	if !d.Accepts(nil) {
		t.Fatal("epsilon chain to accept: empty word should be accepted")
	}
	if !d.Accepts([]Symbol{0}) || !d.Accepts([]Symbol{0, 0}) {
		t.Fatal("a* should be accepted")
	}
}

func TestDeterminizeNoStart(t *testing.T) {
	n := NewNFA(2)
	d := Determinize(n)
	if !d.IsEmpty() {
		t.Fatal("NFA without start should determinize to the empty language")
	}
}

func TestIsDeterministic(t *testing.T) {
	n := NewNFA(2)
	a := n.AddState(false)
	b := n.AddState(true)
	n.SetStart(a)
	n.AddTransition(a, 0, b)
	if !IsDeterministic(n) {
		t.Fatal("single-successor NFA should be deterministic")
	}
	n.AddTransition(a, 0, a)
	if IsDeterministic(n) {
		t.Fatal("two successors on one symbol is nondeterministic")
	}
	n2 := NewNFA(2)
	x := n2.AddState(false)
	y := n2.AddState(true)
	n2.SetStart(x)
	n2.AddEpsilon(x, y)
	if IsDeterministic(n2) {
		t.Fatal("epsilon transition is nondeterministic")
	}
}

func TestFromNFA(t *testing.T) {
	n := NewNFA(2)
	a := n.AddState(false)
	b := n.AddState(true)
	n.SetStart(a)
	n.AddTransition(a, 0, a)
	n.AddTransition(a, 1, b)
	d := FromNFA(n)
	sameLanguage(t, d, abStarB(), 6)
}

func TestFromNFAPanicsOnNondeterminism(t *testing.T) {
	n := NewNFA(1)
	s := n.AddState(true)
	n.SetStart(s)
	n.AddTransition(s, 0, s)
	n.AddTransition(s, 0, s)
	defer func() {
		if recover() == nil {
			t.Fatal("FromNFA should panic on a nondeterministic NFA")
		}
	}()
	FromNFA(n)
}

func TestNFAAcceptsDirect(t *testing.T) {
	n := NewNFA(2)
	s0 := n.AddState(false)
	s1 := n.AddState(true)
	n.SetStart(s0)
	n.AddTransition(s0, 0, s0)
	n.AddTransition(s0, 1, s1)
	if !n.Accepts([]Symbol{0, 0, 1}) {
		t.Fatal("aab should be accepted")
	}
	if n.Accepts([]Symbol{1, 1}) {
		t.Fatal("bb should be rejected")
	}
	if n.Accepts(nil) {
		t.Fatal("empty word should be rejected")
	}
}
