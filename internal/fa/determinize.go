package fa

import "strconv"

// Determinize converts an NFA to an equivalent DFA via subset construction.
// The resulting DFA is trimmed of unreachable subsets by construction (only
// reachable subsets are materialized) but may contain non-live states; call
// Trim or Minimize for canonical forms.
func Determinize(n *NFA) *DFA {
	d := NewDFA(n.NumSymbols())
	if n.Start() < 0 {
		return d
	}
	startSet := n.epsilonClosure([]int{n.Start()})
	ids := map[string]int{}
	var sets [][]int

	newState := func(set []int) int {
		key := setKey(set)
		if id, ok := ids[key]; ok {
			return id
		}
		accept := false
		for _, s := range set {
			if n.IsAccept(s) {
				accept = true
				break
			}
		}
		id := d.AddState(accept)
		ids[key] = id
		sets = append(sets, set)
		return id
	}

	start := newState(startSet)
	d.SetStart(start)
	for work := 0; work < len(sets); work++ {
		set := sets[work]
		for sym := 0; sym < n.NumSymbols(); sym++ {
			var next []int
			for _, s := range set {
				next = append(next, n.Successors(s, Symbol(sym))...)
			}
			if len(next) == 0 {
				continue
			}
			closed := n.epsilonClosure(next)
			d.SetTransition(work, Symbol(sym), newState(closed))
		}
	}
	return d
}

// IsDeterministic reports whether the NFA is already deterministic: no
// epsilon transitions and at most one successor per (state, symbol). The
// Glushkov automaton of a regular expression is deterministic exactly when
// the expression is 1-unambiguous (Brüggemann-Klein & Wood), which is the
// XML Schema Unique Particle Attribution constraint.
func IsDeterministic(n *NFA) bool {
	for s := 0; s < n.NumStates(); s++ {
		if len(n.eps[s]) > 0 {
			return false
		}
		for _, succs := range n.trans[s] {
			if len(succs) > 1 {
				return false
			}
		}
	}
	return true
}

// FromNFA converts a deterministic NFA (per IsDeterministic) directly to a
// DFA without subset construction. It panics if the NFA is nondeterministic.
func FromNFA(n *NFA) *DFA {
	if !IsDeterministic(n) {
		panic("fa: FromNFA on nondeterministic NFA")
	}
	d := NewDFA(n.NumSymbols())
	for s := 0; s < n.NumStates(); s++ {
		d.AddState(n.IsAccept(s))
	}
	for s := 0; s < n.NumStates(); s++ {
		for sym, succs := range n.trans[s] {
			if len(succs) == 1 {
				d.SetTransition(s, sym, succs[0])
			}
		}
	}
	d.SetStart(n.Start())
	return d
}

// setKey encodes a sorted state set as a map key.
func setKey(set []int) string {
	b := make([]byte, 0, len(set)*3)
	for _, s := range set {
		b = strconv.AppendInt(b, int64(s), 32)
		b = append(b, ',')
	}
	return string(b)
}
