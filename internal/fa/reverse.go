package fa

// Reverse returns an NFA recognizing the reversal of L(d): every transition
// is flipped, accepting states become start candidates (joined through a
// fresh epsilon-start state), and the original start state becomes the sole
// accepting state. The result is generally nondeterministic (EDBT'04 §4.3,
// footnote 3); determinize before deriving a reverse IDA.
func Reverse(d *DFA) *NFA {
	n := NewNFA(d.NumSymbols())
	for s := 0; s < d.NumStates(); s++ {
		n.AddState(s == d.Start())
	}
	for s := 0; s < d.NumStates(); s++ {
		for sym := 0; sym < d.NumSymbols(); sym++ {
			t := d.Step(s, Symbol(sym))
			if t != Dead {
				n.AddTransition(t, Symbol(sym), s)
			}
		}
	}
	start := n.AddState(false)
	for s := 0; s < d.NumStates(); s++ {
		if d.IsAccept(s) {
			n.AddEpsilon(start, s)
		}
	}
	// Accept ε iff d does: the fresh start must be accepting when d.Start()
	// is an accepting state (the epsilon edge into it does not by itself
	// make the start accepting under standard NFA semantics — it does via
	// closure, so nothing extra is needed; kept for clarity).
	n.SetStart(start)
	if d.Start() == Dead {
		n.SetStart(start) // recognizes ∅: no accepting state reachable
	}
	return n
}

// ReverseDFA returns a minimal DFA recognizing the reversal of L(d).
func ReverseDFA(d *DFA) *DFA {
	return Minimize(Determinize(Reverse(d)))
}

// ReverseWord reverses a symbol slice, returning a new slice.
func ReverseWord(w []Symbol) []Symbol {
	out := make([]Symbol, len(w))
	for i, s := range w {
		out[len(w)-1-i] = s
	}
	return out
}
