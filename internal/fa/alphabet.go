// Package fa implements the finite-automata substrate used by schema
// revalidation: NFAs and DFAs over a symbol-interned alphabet, subset
// construction, Hopcroft minimization, product (intersection) automata,
// language inclusion and emptiness tests, reverse automata, and the
// immediate decision automata (IDA) of Raghavachari & Shmueli (EDBT 2004,
// Section 4).
//
// Automata in this package operate over small integer Symbols rather than
// runes: in the revalidation setting the "characters" of a content-model
// string are XML element labels. An Alphabet interns label strings to
// Symbols so that every automaton derived from a pair of schemas shares one
// symbol space.
package fa

import (
	"fmt"
	"sort"
)

// Symbol identifies an interned alphabet symbol (an element label in the
// schema-validation setting). Symbols are dense, starting at 0.
type Symbol int32

// NoSymbol is returned by lookups for labels that were never interned.
const NoSymbol Symbol = -1

// Alphabet interns label strings to dense Symbols. The zero value is ready
// to use. An Alphabet must not be mutated concurrently, but read-only use
// (Lookup, Name) is safe from multiple goroutines once fully built.
type Alphabet struct {
	byName map[string]Symbol
	names  []string
}

// NewAlphabet returns an empty alphabet.
func NewAlphabet() *Alphabet {
	return &Alphabet{byName: make(map[string]Symbol)}
}

// Intern returns the Symbol for name, assigning a fresh one on first use.
func (a *Alphabet) Intern(name string) Symbol {
	if a.byName == nil {
		a.byName = make(map[string]Symbol)
	}
	if s, ok := a.byName[name]; ok {
		return s
	}
	s := Symbol(len(a.names))
	a.byName[name] = s
	a.names = append(a.names, name)
	return s
}

// Lookup returns the Symbol for name, or NoSymbol if name was never interned.
func (a *Alphabet) Lookup(name string) Symbol {
	if a.byName == nil {
		return NoSymbol
	}
	if s, ok := a.byName[name]; ok {
		return s
	}
	return NoSymbol
}

// LookupBytes is Lookup keyed by raw bytes. The string conversion in the
// map index compiles to a no-allocation lookup, so byte-level tokenizers
// can resolve labels without materializing a string per element.
func (a *Alphabet) LookupBytes(name []byte) Symbol {
	if a.byName == nil {
		return NoSymbol
	}
	if s, ok := a.byName[string(name)]; ok {
		return s
	}
	return NoSymbol
}

// Name returns the label string for s. It panics if s is out of range.
func (a *Alphabet) Name(s Symbol) string {
	return a.names[s]
}

// Size returns the number of interned symbols.
func (a *Alphabet) Size() int { return len(a.names) }

// Names returns the interned labels in symbol order. The returned slice is
// a copy.
func (a *Alphabet) Names() []string {
	out := make([]string, len(a.names))
	copy(out, a.names)
	return out
}

// SortedNames returns the interned labels sorted lexicographically.
func (a *Alphabet) SortedNames() []string {
	out := a.Names()
	sort.Strings(out)
	return out
}

// Symbols converts a slice of label strings to Symbols, interning as needed.
func (a *Alphabet) Symbols(names ...string) []Symbol {
	out := make([]Symbol, len(names))
	for i, n := range names {
		out[i] = a.Intern(n)
	}
	return out
}

// String renders a symbol sequence as a space-separated label string, for
// diagnostics.
func (a *Alphabet) String(word []Symbol) string {
	s := ""
	for i, sym := range word {
		if i > 0 {
			s += " "
		}
		if int(sym) < len(a.names) {
			s += a.names[sym]
		} else {
			s += fmt.Sprintf("#%d", sym)
		}
	}
	return s
}
