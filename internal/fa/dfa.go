package fa

import (
	"fmt"
	"strings"
)

// DFA is a deterministic finite automaton over Symbols. Transitions are
// stored densely: trans[state*numSymbols+symbol] holds the successor, or
// Dead (-1) when no transition exists. A missing transition is semantically
// a transition to an implicit, non-accepting sink from which no final state
// is reachable — i.e. the automaton's transition function is total, as the
// paper assumes, with the dead state kept implicit for compactness.
type DFA struct {
	numSymbols int
	start      int
	accept     []bool
	trans      []int32
}

// Dead is the implicit dead-state id used in transition tables.
const Dead = -1

// NewDFA returns an empty DFA over an alphabet of numSymbols symbols.
func NewDFA(numSymbols int) *DFA {
	return &DFA{numSymbols: numSymbols, start: -1}
}

// NumSymbols returns the alphabet size.
func (d *DFA) NumSymbols() int { return d.numSymbols }

// NumStates returns the number of explicit states.
func (d *DFA) NumStates() int { return len(d.accept) }

// Start returns the start state, or Dead if the automaton recognizes the
// empty language with no explicit states.
func (d *DFA) Start() int { return d.start }

// SetStart marks s as the start state.
func (d *DFA) SetStart(s int) { d.start = s }

// AddState adds a state with all transitions initially Dead, returning its id.
func (d *DFA) AddState(accept bool) int {
	id := len(d.accept)
	d.accept = append(d.accept, accept)
	row := make([]int32, d.numSymbols)
	for i := range row {
		row[i] = Dead
	}
	d.trans = append(d.trans, row...)
	return id
}

// SetAccept marks state s as accepting (or not).
func (d *DFA) SetAccept(s int, accept bool) { d.accept[s] = accept }

// IsAccept reports whether s is an accepting state. IsAccept(Dead) is false.
func (d *DFA) IsAccept(s int) bool { return s >= 0 && d.accept[s] }

// SetTransition installs from --sym--> to. to may be Dead to erase an edge.
func (d *DFA) SetTransition(from int, sym Symbol, to int) {
	d.trans[from*d.numSymbols+int(sym)] = int32(to)
}

// Step returns δ(state, sym). Stepping from Dead stays Dead, matching the
// total-function semantics.
func (d *DFA) Step(state int, sym Symbol) int {
	if state == Dead {
		return Dead
	}
	return int(d.trans[state*d.numSymbols+int(sym)])
}

// Run returns δ(state, word), stopping early once Dead is reached.
func (d *DFA) Run(state int, word []Symbol) int {
	for _, sym := range word {
		state = d.Step(state, sym)
		if state == Dead {
			return Dead
		}
	}
	return state
}

// Accepts reports whether the DFA accepts word from the start state.
func (d *DFA) Accepts(word []Symbol) bool {
	return d.IsAccept(d.Run(d.start, word))
}

// AcceptsEmpty reports whether ε ∈ L(d).
func (d *DFA) AcceptsEmpty() bool { return d.IsAccept(d.start) }

// Widen returns an equivalent DFA over a larger alphabet: transitions on
// the new symbols are Dead. Needed when an automaton was compiled before
// its shared alphabet grew (e.g. a second schema interned new labels).
// Widening to the current size returns the receiver unchanged.
func (d *DFA) Widen(numSymbols int) *DFA {
	if numSymbols < d.numSymbols {
		panic("fa: Widen cannot shrink the alphabet")
	}
	if numSymbols == d.numSymbols {
		return d
	}
	w := NewDFA(numSymbols)
	for s := 0; s < d.NumStates(); s++ {
		w.AddState(d.accept[s])
	}
	for s := 0; s < d.NumStates(); s++ {
		for sym := 0; sym < d.numSymbols; sym++ {
			if t := d.Step(s, Symbol(sym)); t != Dead {
				w.SetTransition(s, Symbol(sym), t)
			}
		}
	}
	w.start = d.start
	return w
}

// Table exposes the DFA's dense representation — accept flags and the
// transition table, as copies — for serialization. The layout matches
// RestoreDFA: trans[state*numSymbols+symbol] is the successor or Dead.
func (d *DFA) Table() (start int, accept []bool, trans []int32) {
	return d.start, append([]bool(nil), d.accept...), append([]int32(nil), d.trans...)
}

// RestoreDFA rebuilds a DFA from its dense representation (the shape Table
// returns), validating it: len(trans) must equal len(accept)*numSymbols,
// and the start state and every transition target must be Dead or a valid
// state id. The slices are adopted, not copied.
func RestoreDFA(numSymbols, start int, accept []bool, trans []int32) (*DFA, error) {
	if numSymbols < 0 {
		return nil, fmt.Errorf("fa: RestoreDFA: negative alphabet size %d", numSymbols)
	}
	n := len(accept)
	if len(trans) != n*numSymbols {
		return nil, fmt.Errorf("fa: RestoreDFA: transition table has %d entries, want %d states × %d symbols = %d",
			len(trans), n, numSymbols, n*numSymbols)
	}
	if start != Dead && (start < 0 || start >= n) {
		return nil, fmt.Errorf("fa: RestoreDFA: start state %d out of range [0,%d)", start, n)
	}
	for i, t := range trans {
		if t != Dead && (t < 0 || int(t) >= n) {
			return nil, fmt.Errorf("fa: RestoreDFA: transition %d targets state %d, out of range [0,%d)", i, t, n)
		}
	}
	return &DFA{numSymbols: numSymbols, start: start, accept: accept, trans: trans}, nil
}

// Clone returns a deep copy of the DFA.
func (d *DFA) Clone() *DFA {
	c := &DFA{
		numSymbols: d.numSymbols,
		start:      d.start,
		accept:     append([]bool(nil), d.accept...),
		trans:      append([]int32(nil), d.trans...),
	}
	return c
}

// Totalize returns an equivalent DFA whose transition function has no Dead
// entries; if any were present, an explicit non-accepting sink state is
// appended with self-loops on every symbol. The second result reports the
// sink's id, or Dead if no sink was needed.
func (d *DFA) Totalize() (*DFA, int) {
	needSink := false
	for _, t := range d.trans {
		if t == Dead {
			needSink = true
			break
		}
	}
	c := d.Clone()
	if d.start == Dead {
		needSink = true
	}
	if !needSink {
		return c, Dead
	}
	sink := c.AddState(false)
	for i := range c.trans {
		if c.trans[i] == Dead {
			c.trans[i] = int32(sink)
		}
	}
	if c.start == Dead {
		c.start = sink
	}
	return c, sink
}

// Complement returns a DFA recognizing Σ* \ L(d).
func (d *DFA) Complement() *DFA {
	c, _ := d.Totalize()
	for i := range c.accept {
		c.accept[i] = !c.accept[i]
	}
	return c
}

// IsEmpty reports whether L(d) = ∅, i.e. no accepting state is reachable
// from the start state.
func (d *DFA) IsEmpty() bool {
	for _, s := range d.reachableFromStart() {
		if d.accept[s] {
			return false
		}
	}
	return true
}

// reachableFromStart returns the set of states reachable from start.
func (d *DFA) reachableFromStart() []int {
	if d.start == Dead {
		return nil
	}
	seen := make([]bool, d.NumStates())
	stack := []int{d.start}
	seen[d.start] = true
	var out []int
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, s)
		for sym := 0; sym < d.numSymbols; sym++ {
			t := d.Step(s, Symbol(sym))
			if t != Dead && !seen[t] {
				seen[t] = true
				stack = append(stack, t)
			}
		}
	}
	return out
}

// LiveStates returns, per state, whether some accepting state is reachable
// from it (including itself). States with false are "dead" in the paper's
// second sense (§4.1 condition 2).
func (d *DFA) LiveStates() []bool {
	n := d.NumStates()
	// Build reverse adjacency.
	radj := make([][]int32, n)
	for s := 0; s < n; s++ {
		for sym := 0; sym < d.numSymbols; sym++ {
			t := d.Step(s, Symbol(sym))
			if t != Dead {
				radj[t] = append(radj[t], int32(s))
			}
		}
	}
	live := make([]bool, n)
	var stack []int
	for s := 0; s < n; s++ {
		if d.accept[s] {
			live[s] = true
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range radj[s] {
			if !live[p] {
				live[p] = true
				stack = append(stack, int(p))
			}
		}
	}
	return live
}

// Trim returns an equivalent DFA containing only states that are both
// reachable from the start state and live (can reach an accepting state);
// all other transitions become Dead. If the start state itself is pruned,
// the resulting DFA has start == Dead and recognizes ∅.
func (d *DFA) Trim() *DFA {
	live := d.LiveStates()
	reach := make([]bool, d.NumStates())
	for _, s := range d.reachableFromStart() {
		reach[s] = true
	}
	remap := make([]int32, d.NumStates())
	for i := range remap {
		remap[i] = Dead
	}
	c := NewDFA(d.numSymbols)
	for s := 0; s < d.NumStates(); s++ {
		if reach[s] && live[s] {
			remap[s] = int32(c.AddState(d.accept[s]))
		}
	}
	for s := 0; s < d.NumStates(); s++ {
		if remap[s] == Dead {
			continue
		}
		for sym := 0; sym < d.numSymbols; sym++ {
			t := d.Step(s, Symbol(sym))
			if t != Dead && remap[t] != Dead {
				c.SetTransition(int(remap[s]), Symbol(sym), int(remap[t]))
			}
		}
	}
	if d.start != Dead && remap[d.start] != Dead {
		c.start = int(remap[d.start])
	} else {
		c.start = Dead
	}
	return c
}

// Dump renders the DFA's transition table for diagnostics. names, if
// non-nil, supplies symbol labels.
func (d *DFA) Dump(names []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "DFA states=%d start=%d\n", d.NumStates(), d.start)
	for s := 0; s < d.NumStates(); s++ {
		mark := " "
		if d.accept[s] {
			mark = "*"
		}
		fmt.Fprintf(&b, "%s q%d:", mark, s)
		for sym := 0; sym < d.numSymbols; sym++ {
			t := d.Step(s, Symbol(sym))
			if t == Dead {
				continue
			}
			label := fmt.Sprintf("#%d", sym)
			if names != nil && sym < len(names) {
				label = names[sym]
			}
			fmt.Fprintf(&b, " %s->q%d", label, t)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
