package fa

import "fmt"

// Product is the intersection automaton of two DFAs (EDBT'04 §4.1): it runs
// both components in parallel and accepts exactly L(a) ∩ L(b). Pair states
// are materialized lazily (only pairs reachable from (start_a, start_b)),
// and the mapping from product state to its (q_a, q_b) components is kept —
// the immediate decision automaton construction needs it.
//
// Either component of a pair may be Dead: a pair (Dead, q_b) arises when a
// has no transition but b does. Pairs where *both* components are Dead are
// never materialized; they are the product's implicit dead state.
type Product struct {
	DFA   *DFA
	A, B  *DFA
	pairs []pair       // pairs[productState] = (stateA, stateB)
	index map[pair]int // reverse lookup: (stateA, stateB) -> productState
}

type pair struct{ a, b int32 }

// Lookup returns the product state id for the component pair (qa, qb), or
// Dead if that pair was never materialized (unreachable, or both Dead).
func (p *Product) Lookup(qa, qb int) int {
	if id, ok := p.index[pair{int32(qa), int32(qb)}]; ok {
		return id
	}
	return Dead
}

// StatePair returns the (q_a, q_b) components of product state s. Either
// may be Dead.
func (p *Product) StatePair(s int) (int, int) {
	return int(p.pairs[s].a), int(p.pairs[s].b)
}

// NumStates returns the number of materialized product states.
func (p *Product) NumStates() int { return len(p.pairs) }

// PairTable returns the component pairs of every materialized product state
// as a flat copy: entries 2s and 2s+1 hold the (q_a, q_b) components of
// product state s. Either component may be Dead. The layout matches
// RestoreProduct.
func (p *Product) PairTable() []int32 {
	out := make([]int32, 0, 2*len(p.pairs))
	for _, k := range p.pairs {
		out = append(out, k.a, k.b)
	}
	return out
}

// RestoreProduct rebuilds product bookkeeping from its serialized parts:
// the two component automata, the product DFA, and the flat pair table
// PairTable produced. It validates shape — one pair per product state, each
// component Dead or in range, no both-Dead pair, no duplicate pair — and
// rebuilds the reverse index.
func RestoreProduct(a, b, d *DFA, pairTable []int32) (*Product, error) {
	if a.NumSymbols() != b.NumSymbols() || d.NumSymbols() != a.NumSymbols() {
		return nil, fmt.Errorf("fa: RestoreProduct: mismatched alphabets (%d, %d, %d)",
			a.NumSymbols(), b.NumSymbols(), d.NumSymbols())
	}
	if len(pairTable) != 2*d.NumStates() {
		return nil, fmt.Errorf("fa: RestoreProduct: %d pair components for %d product states",
			len(pairTable), d.NumStates())
	}
	p := &Product{A: a, B: b, DFA: d, index: make(map[pair]int, d.NumStates())}
	for s := 0; s < d.NumStates(); s++ {
		k := pair{pairTable[2*s], pairTable[2*s+1]}
		if k.a == Dead && k.b == Dead {
			return nil, fmt.Errorf("fa: RestoreProduct: product state %d maps to the implicit dead pair", s)
		}
		if k.a != Dead && (k.a < 0 || int(k.a) >= a.NumStates()) {
			return nil, fmt.Errorf("fa: RestoreProduct: product state %d has a-component %d out of range", s, k.a)
		}
		if k.b != Dead && (k.b < 0 || int(k.b) >= b.NumStates()) {
			return nil, fmt.Errorf("fa: RestoreProduct: product state %d has b-component %d out of range", s, k.b)
		}
		if _, dup := p.index[k]; dup {
			return nil, fmt.Errorf("fa: RestoreProduct: duplicate pair (%d,%d)", k.a, k.b)
		}
		p.index[k] = s
		p.pairs = append(p.pairs, k)
	}
	return p, nil
}

// Intersect builds the product automaton of a and b restricted to pairs
// reachable from (start_a, start_b). Both automata must share the same
// alphabet size; Intersect panics otherwise.
func Intersect(a, b *DFA) *Product {
	return buildProduct(a, b, false)
}

// IntersectAll builds the product automaton over the full pair space
// Q_a × Q_b (exactly Q_c of EDBT'04 §4.1), not just the pairs reachable
// from the start pair. The schema-cast-with-modifications scan (§4.3) needs
// this: after re-synchronizing on the unmodified suffix, c_immed is entered
// at an arbitrary pair (q_a, q_b) that may be unreachable from the start.
func IntersectAll(a, b *DFA) *Product {
	return buildProduct(a, b, true)
}

func buildProduct(a, b *DFA, full bool) *Product {
	if a.NumSymbols() != b.NumSymbols() {
		panic("fa: Intersect over mismatched alphabets")
	}
	p := &Product{A: a, B: b, DFA: NewDFA(a.NumSymbols()), index: map[pair]int{}}
	var worklist []pair

	newState := func(qa, qb int) int {
		k := pair{int32(qa), int32(qb)}
		if id, ok := p.index[k]; ok {
			return id
		}
		id := p.DFA.AddState(a.IsAccept(qa) && b.IsAccept(qb))
		p.index[k] = id
		p.pairs = append(p.pairs, k)
		worklist = append(worklist, k)
		return id
	}

	if a.Start() != Dead || b.Start() != Dead {
		p.DFA.SetStart(newState(a.Start(), b.Start()))
	}
	if full {
		for qa := 0; qa < a.NumStates(); qa++ {
			for qb := 0; qb < b.NumStates(); qb++ {
				newState(qa, qb)
			}
		}
	}
	for i := 0; i < len(worklist); i++ {
		k := worklist[i]
		from := p.index[k]
		for sym := 0; sym < p.DFA.NumSymbols(); sym++ {
			na := a.Step(int(k.a), Symbol(sym))
			nb := b.Step(int(k.b), Symbol(sym))
			if na == Dead && nb == Dead {
				continue // implicit dead pair
			}
			p.DFA.SetTransition(from, Symbol(sym), newState(na, nb))
		}
	}
	return p
}

// IntersectLanguages returns a trimmed DFA recognizing L(a) ∩ L(b), without
// retaining pair bookkeeping. Convenience wrapper over Intersect.
func IntersectLanguages(a, b *DFA) *DFA {
	return Intersect(a, b).DFA.Trim()
}

// Includes reports whether L(a) ⊆ L(b). It explores the product of a with
// the (implicitly totalized) b, looking for a reachable pair whose a-state
// accepts while its b-state does not — a witness of non-inclusion.
func Includes(a, b *DFA) bool {
	if a.NumSymbols() != b.NumSymbols() {
		panic("fa: Includes over mismatched alphabets")
	}
	if a.Start() == Dead {
		return true // L(a) = ∅
	}
	type pr struct{ a, b int32 }
	seen := map[pr]bool{}
	stack := []pr{{int32(a.Start()), int32(b.Start())}}
	seen[stack[0]] = true
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		qa, qb := int(cur.a), int(cur.b)
		if a.IsAccept(qa) && !b.IsAccept(qb) {
			return false
		}
		for sym := 0; sym < a.NumSymbols(); sym++ {
			na := a.Step(qa, Symbol(sym))
			if na == Dead {
				continue // nothing in L(a) continues this way
			}
			nb := b.Step(qb, Symbol(sym))
			nxt := pr{int32(na), int32(nb)}
			if !seen[nxt] {
				seen[nxt] = true
				stack = append(stack, nxt)
			}
		}
	}
	return true
}

// IncludesFrom reports whether L_a(qa) ⊆ L_b(qb): the right-language
// inclusion between a specific state of a and a specific state of b. This
// is the membership test for the IA set of Definition 7. qa or qb may be
// Dead (the right language of Dead is ∅).
func IncludesFrom(a *DFA, qa int, b *DFA, qb int) bool {
	if qa == Dead {
		return true
	}
	type pr struct{ a, b int32 }
	seen := map[pr]bool{}
	stack := []pr{{int32(qa), int32(qb)}}
	seen[stack[0]] = true
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		ca, cb := int(cur.a), int(cur.b)
		if a.IsAccept(ca) && !b.IsAccept(cb) {
			return false
		}
		for sym := 0; sym < a.NumSymbols(); sym++ {
			na := a.Step(ca, Symbol(sym))
			if na == Dead {
				continue
			}
			nb := b.Step(cb, Symbol(sym))
			nxt := pr{int32(na), int32(nb)}
			if !seen[nxt] {
				seen[nxt] = true
				stack = append(stack, nxt)
			}
		}
	}
	return true
}

// IntersectionNonempty reports whether L(a) ∩ L(b) ≠ ∅.
func IntersectionNonempty(a, b *DFA) bool {
	return IntersectionNonemptyRestricted(a, b, nil)
}

// IntersectionNonemptyRestricted reports whether
// L(a) ∩ L(b) ∩ allowed* ≠ ∅, where allowed (if non-nil) is a per-symbol
// permission mask. This is the P*-restricted test used when computing the
// R_nondis relation (Definition 5): only symbols whose child-type pair is
// already known non-disjoint may be used.
func IntersectionNonemptyRestricted(a, b *DFA, allowed []bool) bool {
	if a.NumSymbols() != b.NumSymbols() {
		panic("fa: intersection over mismatched alphabets")
	}
	if a.Start() == Dead || b.Start() == Dead {
		return false
	}
	type pr struct{ a, b int32 }
	seen := map[pr]bool{}
	stack := []pr{{int32(a.Start()), int32(b.Start())}}
	seen[stack[0]] = true
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		qa, qb := int(cur.a), int(cur.b)
		if a.IsAccept(qa) && b.IsAccept(qb) {
			return true
		}
		for sym := 0; sym < a.NumSymbols(); sym++ {
			if allowed != nil && !allowed[sym] {
				continue
			}
			na := a.Step(qa, Symbol(sym))
			nb := b.Step(qb, Symbol(sym))
			if na == Dead || nb == Dead {
				continue
			}
			nxt := pr{int32(na), int32(nb)}
			if !seen[nxt] {
				seen[nxt] = true
				stack = append(stack, nxt)
			}
		}
	}
	return false
}
