package fa

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMinimizePreservesLanguageRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 80; i++ {
		d := randDFA(rng, 7, 2)
		m := Minimize(d)
		sameLanguage(t, d, m, 7)
	}
}

func TestMinimizeIsIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 40; i++ {
		d := randDFA(rng, 7, 2)
		m1 := Minimize(d)
		m2 := Minimize(m1)
		if m1.NumStates() != m2.NumStates() {
			t.Fatalf("iter %d: re-minimizing changed state count %d -> %d",
				i, m1.NumStates(), m2.NumStates())
		}
		sameLanguage(t, m1, m2, 7)
	}
}

func TestMinimizeMergesEquivalentStates(t *testing.T) {
	// Two redundant accepting states reachable on a and b respectively,
	// both behaving identically (no out-transitions): minimal DFA needs 2
	// states (start + one accept).
	d := buildDFA(2, 3, 0, []int{1, 2}, [][3]int{
		{0, 0, 1},
		{0, 1, 2},
	})
	m := Minimize(d)
	if m.NumStates() != 2 {
		t.Fatalf("minimized states = %d, want 2\n%s", m.NumStates(), m.Dump(nil))
	}
	sameLanguage(t, d, m, 4)
}

func TestMinimizeKnownMinimalSize(t *testing.T) {
	// Language: strings over {a,b} whose count of a's ≡ 0 (mod 3).
	// Minimal DFA has exactly 3 states.
	d := buildDFA(2, 3, 0, []int{0}, [][3]int{
		{0, 0, 1}, {1, 0, 2}, {2, 0, 0},
		{0, 1, 0}, {1, 1, 1}, {2, 1, 2},
	})
	m := Minimize(d)
	if m.NumStates() != 3 {
		t.Fatalf("minimized states = %d, want 3", m.NumStates())
	}
	sameLanguage(t, d, m, 7)
}

func TestMinimizeEmptyLanguage(t *testing.T) {
	d := buildDFA(2, 2, 0, nil, [][3]int{{0, 0, 1}, {1, 1, 0}})
	m := Minimize(d)
	if !m.IsEmpty() {
		t.Fatal("empty language must minimize to empty")
	}
	if m.NumStates() != 0 {
		t.Fatalf("empty language should have 0 explicit states, got %d", m.NumStates())
	}
}

func TestMinimizeUniversalLanguage(t *testing.T) {
	// Σ* over 2 symbols: single accepting state with self-loops.
	d := buildDFA(2, 2, 0, []int{0, 1}, [][3]int{
		{0, 0, 1}, {0, 1, 1}, {1, 0, 0}, {1, 1, 0},
	})
	m := Minimize(d)
	if m.NumStates() != 1 {
		t.Fatalf("Σ* should minimize to 1 state, got %d", m.NumStates())
	}
	if !m.Accepts(nil) || !m.Accepts([]Symbol{0, 1, 0}) {
		t.Fatal("Σ* must accept everything")
	}
}

func TestEquivalent(t *testing.T) {
	d1 := abStarB()
	// Same language built differently (extra redundant state).
	d2 := buildDFA(2, 3, 0, []int{2}, [][3]int{
		{0, 0, 1},
		{1, 0, 1},
		{0, 1, 2},
		{1, 1, 2},
	})
	if !Equivalent(d1, d2) {
		t.Fatal("equivalent automata reported different")
	}
	d3 := abStarB()
	d3.SetAccept(0, true) // now also accepts ε and a*
	if Equivalent(d1, d3) {
		t.Fatal("different languages reported equivalent")
	}
}

// quickDFA adapts random DFA generation to testing/quick.
type quickDFA struct{ d *DFA }

func (quickDFA) Generate(rng *rand.Rand, size int) reflectValue {
	n := 2 + rng.Intn(6)
	return reflectValueOf(quickDFA{randDFA(rng, n, 2)})
}

func TestQuickMinimizeNeverGrows(t *testing.T) {
	f := func(q quickDFA) bool {
		m := Minimize(q.d)
		return m.NumStates() <= q.d.NumStates()
	}
	if err := quick.Check(f, quickConfig(200)); err != nil {
		t.Fatal(err)
	}
}

func TestQuickEquivalenceWithSelf(t *testing.T) {
	f := func(q quickDFA) bool {
		return Equivalent(q.d, Minimize(q.d))
	}
	if err := quick.Check(f, quickConfig(200)); err != nil {
		t.Fatal(err)
	}
}

// mooreMinimize is an independent O(n²) partition-refinement minimizer
// (Moore's algorithm) used to cross-check Hopcroft's result. It returns the
// number of equivalence classes among reachable, live states of the
// totalized automaton, plus one for the sink class when the trimmed
// automaton is partial (the implicit dead state is not counted).
func mooreMinimalStates(d *DFA) int {
	t := d.Trim()
	if t.Start() == Dead {
		return 0
	}
	total, sink := t.Totalize()
	n := total.NumStates()
	// class[s] per state; start with accept/non-accept.
	class := make([]int, n)
	for s := 0; s < n; s++ {
		if total.IsAccept(s) {
			class[s] = 1
		}
	}
	for {
		// signature = (class, successor classes...)
		sig := map[string]int{}
		next := make([]int, n)
		for s := 0; s < n; s++ {
			key := fmt.Sprintf("%d", class[s])
			for sym := 0; sym < total.NumSymbols(); sym++ {
				key += fmt.Sprintf(",%d", class[total.Step(s, Symbol(sym))])
			}
			id, ok := sig[key]
			if !ok {
				id = len(sig)
				sig[key] = id
			}
			next[s] = id
		}
		same := true
		for s := 0; s < n; s++ {
			if next[s] != class[s] {
				same = false
			}
		}
		class = next
		if same {
			break
		}
	}
	classes := map[int]bool{}
	for s := 0; s < n; s++ {
		classes[class[s]] = true
	}
	count := len(classes)
	if sink != Dead {
		count-- // the sink's class corresponds to the implicit dead state
	}
	return count
}

func TestHopcroftMatchesMoore(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	for i := 0; i < 150; i++ {
		d := randDFA(rng, 8, 2)
		hop := Minimize(d).NumStates()
		moore := mooreMinimalStates(d)
		if hop != moore {
			t.Fatalf("iter %d: Hopcroft %d states, Moore %d states\n%s",
				i, hop, moore, d.Dump(nil))
		}
	}
}
