package fa

// Minimize returns the minimal DFA for L(d), computed with Hopcroft's
// partition-refinement algorithm over the trimmed, totalized automaton.
// The result is trimmed again so the implicit dead state stays implicit;
// a DFA for the empty language has start == Dead and zero states.
func Minimize(d *DFA) *DFA {
	t := d.Trim()
	if t.start == Dead || t.NumStates() == 0 {
		return NewDFA(d.numSymbols) // canonical empty automaton (start == Dead handled by callers)
	}
	total, _ := t.Totalize()
	n := total.NumStates()
	nsym := total.numSymbols

	// Reverse transition lists: rev[sym][state] = predecessors of state on sym.
	rev := make([][][]int32, nsym)
	for sym := 0; sym < nsym; sym++ {
		rev[sym] = make([][]int32, n)
	}
	for s := 0; s < n; s++ {
		for sym := 0; sym < nsym; sym++ {
			succ := total.Step(s, Symbol(sym))
			rev[sym][succ] = append(rev[sym][succ], int32(s))
		}
	}

	// Partition refinement state. block[s] is the block index of state s.
	block := make([]int, n)
	var blocks [][]int32
	var acc, rej []int32
	for s := 0; s < n; s++ {
		if total.accept[s] {
			acc = append(acc, int32(s))
		} else {
			rej = append(rej, int32(s))
		}
	}
	addBlock := func(members []int32) int {
		id := len(blocks)
		blocks = append(blocks, members)
		for _, s := range members {
			block[s] = id
		}
		return id
	}
	if len(acc) > 0 {
		addBlock(acc)
	}
	if len(rej) > 0 {
		addBlock(rej)
	}

	// Worklist of (block, symbol) splitters.
	type splitter struct {
		block int
		sym   int
	}
	var work []splitter
	inWork := map[splitter]bool{}
	push := func(b, sym int) {
		sp := splitter{b, sym}
		if !inWork[sp] {
			inWork[sp] = true
			work = append(work, sp)
		}
	}
	for sym := 0; sym < nsym; sym++ {
		// Hopcroft: enqueue the smaller of the two initial blocks; enqueueing
		// both is also correct and simpler.
		for b := range blocks {
			push(b, sym)
		}
	}

	touched := make([]int32, 0, n) // scratch: blocks touched during a split
	inSplit := make([]int32, n)    // per state: count of predecessors in splitter
	for len(work) > 0 {
		sp := work[len(work)-1]
		work = work[:len(work)-1]
		delete(inWork, sp)

		// X = states with a transition on sym into the splitter block.
		var X []int32
		for _, s := range blocks[sp.block] {
			X = append(X, rev[sp.sym][s]...)
		}
		if len(X) == 0 {
			continue
		}
		// Mark X membership.
		for _, s := range X {
			inSplit[s]++
		}
		// Group X by current block and split blocks that are cut by X.
		counts := map[int]int{}
		for _, s := range X {
			if inSplit[s] == 1 { // first time seen in this round
				counts[block[s]]++
			}
		}
		for b, cnt := range counts {
			if cnt == len(blocks[b]) {
				continue // whole block inside X: no split
			}
			// Split block b into (in X) and (not in X).
			var in, out []int32
			for _, s := range blocks[b] {
				if inSplit[s] > 0 {
					in = append(in, s)
				} else {
					out = append(out, s)
				}
			}
			blocks[b] = in
			nb := addBlock(out)
			touched = append(touched, int32(b), int32(nb))
			// Update worklist: for each symbol, if (b,sym) pending, add (nb,sym)
			// too; otherwise add the smaller of the two.
			for sym := 0; sym < nsym; sym++ {
				if inWork[splitter{b, sym}] {
					push(nb, sym)
				} else if len(in) <= len(out) {
					push(b, sym)
				} else {
					push(nb, sym)
				}
			}
		}
		for _, s := range X {
			inSplit[s] = 0
		}
		touched = touched[:0]
	}

	// Build the quotient automaton.
	m := NewDFA(nsym)
	for range blocks {
		m.AddState(false)
	}
	for b, members := range blocks {
		rep := int(members[0])
		m.SetAccept(b, total.accept[rep])
		for sym := 0; sym < nsym; sym++ {
			succ := total.Step(rep, Symbol(sym))
			m.SetTransition(b, Symbol(sym), block[succ])
		}
	}
	m.SetStart(block[total.start])
	return m.Trim()
}

// Equivalent reports whether L(a) = L(b). Both automata must share the same
// alphabet size.
func Equivalent(a, b *DFA) bool {
	return Includes(a, b) && Includes(b, a)
}
