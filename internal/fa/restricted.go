package fa

// NonemptyRestricted reports whether L(d) ∩ allowed* ≠ ∅: does d accept
// some word using only symbols permitted by the mask? A nil mask permits
// every symbol. This is the test behind the paper's productivity analysis
// (§3: ProdLabels_τ* ∩ L(regexp_τ) ≠ ∅).
func NonemptyRestricted(d *DFA, allowed []bool) bool {
	if d.Start() == Dead {
		return false
	}
	seen := make([]bool, d.NumStates())
	stack := []int{d.Start()}
	seen[d.Start()] = true
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if d.IsAccept(s) {
			return true
		}
		for sym := 0; sym < d.NumSymbols(); sym++ {
			if allowed != nil && (sym >= len(allowed) || !allowed[sym]) {
				continue
			}
			t := d.Step(s, Symbol(sym))
			if t != Dead && !seen[t] {
				seen[t] = true
				stack = append(stack, t)
			}
		}
	}
	return false
}

// RestrictSymbols returns a DFA for L(d) ∩ allowed*: d with all transitions
// on disallowed symbols removed, trimmed. The paper's productive-types
// rewrite replaces each regexp_τ's language with exactly this restriction.
func RestrictSymbols(d *DFA, allowed []bool) *DFA {
	c := d.Clone()
	for s := 0; s < c.NumStates(); s++ {
		for sym := 0; sym < c.NumSymbols(); sym++ {
			if allowed != nil && (sym >= len(allowed) || !allowed[sym]) {
				c.SetTransition(s, Symbol(sym), Dead)
			}
		}
	}
	return c.Trim()
}
