package fa

// NFA is a nondeterministic finite automaton over Symbols, with optional
// epsilon transitions. States are dense integers starting at 0.
//
// NFAs in this package are construction intermediaries: regular expressions
// compile to NFAs (Glushkov or Thompson construction in package regexpsym),
// and reverse automata of DFAs are NFAs. All analysis and runtime machinery
// operates on DFAs obtained via Determinize.
type NFA struct {
	numSymbols int
	start      int
	accept     []bool
	// trans[state] maps a symbol to the set of successor states.
	trans []map[Symbol][]int
	// eps[state] is the set of epsilon successors.
	eps [][]int
}

// NewNFA returns an empty NFA over an alphabet of numSymbols symbols.
// It has no states; add at least one and call SetStart before use.
func NewNFA(numSymbols int) *NFA {
	return &NFA{numSymbols: numSymbols, start: -1}
}

// NumSymbols returns the alphabet size the NFA was built for.
func (n *NFA) NumSymbols() int { return n.numSymbols }

// NumStates returns the number of states.
func (n *NFA) NumStates() int { return len(n.accept) }

// Start returns the start state, or -1 if unset.
func (n *NFA) Start() int { return n.start }

// SetStart marks state s as the start state.
func (n *NFA) SetStart(s int) { n.start = s }

// AddState adds a state and returns its id. accept marks it as final.
func (n *NFA) AddState(accept bool) int {
	id := len(n.accept)
	n.accept = append(n.accept, accept)
	n.trans = append(n.trans, nil)
	n.eps = append(n.eps, nil)
	return id
}

// SetAccept marks state s as accepting (or not).
func (n *NFA) SetAccept(s int, accept bool) { n.accept[s] = accept }

// IsAccept reports whether state s is accepting.
func (n *NFA) IsAccept(s int) bool { return n.accept[s] }

// AddTransition adds from --sym--> to.
func (n *NFA) AddTransition(from int, sym Symbol, to int) {
	if n.trans[from] == nil {
		n.trans[from] = make(map[Symbol][]int)
	}
	n.trans[from][sym] = append(n.trans[from][sym], to)
}

// AddEpsilon adds an epsilon transition from --ε--> to.
func (n *NFA) AddEpsilon(from, to int) {
	n.eps[from] = append(n.eps[from], to)
}

// Successors returns the states reachable from s on sym (no epsilon closure).
func (n *NFA) Successors(s int, sym Symbol) []int {
	if n.trans[s] == nil {
		return nil
	}
	return n.trans[s][sym]
}

// epsilonClosure expands set (a sorted or unsorted state list) with all
// states reachable through epsilon transitions. The result is sorted and
// duplicate-free.
func (n *NFA) epsilonClosure(set []int) []int {
	seen := make(map[int]bool, len(set))
	stack := make([]int, 0, len(set))
	for _, s := range set {
		if !seen[s] {
			seen[s] = true
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range n.eps[s] {
			if !seen[t] {
				seen[t] = true
				stack = append(stack, t)
			}
		}
	}
	out := make([]int, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sortInts(out)
	return out
}

// Accepts reports whether the NFA accepts word, by direct subset simulation.
// It is intended for tests and small inputs; production paths determinize.
func (n *NFA) Accepts(word []Symbol) bool {
	if n.start < 0 {
		return false
	}
	cur := n.epsilonClosure([]int{n.start})
	for _, sym := range word {
		var next []int
		for _, s := range cur {
			next = append(next, n.Successors(s, sym)...)
		}
		cur = n.epsilonClosure(next)
		if len(cur) == 0 {
			return false
		}
	}
	for _, s := range cur {
		if n.accept[s] {
			return true
		}
	}
	return false
}

func sortInts(a []int) {
	// insertion sort: closure sets are small; avoids sort package allocation.
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
