package fa

import (
	"math/rand"
	"testing"
)

// evenAs: DFA over {a,b} accepting strings with an even number of a's.
func evenAs() *DFA {
	return buildDFA(2, 2, 0, []int{0}, [][3]int{
		{0, 0, 1}, {1, 0, 0},
		{0, 1, 0}, {1, 1, 1},
	})
}

// endsInB: DFA over {a,b} accepting strings ending in b.
func endsInB() *DFA {
	return buildDFA(2, 2, 0, []int{1}, [][3]int{
		{0, 0, 0}, {1, 0, 0},
		{0, 1, 1}, {1, 1, 1},
	})
}

func TestIntersectLanguages(t *testing.T) {
	inter := IntersectLanguages(evenAs(), endsInB())
	enumWords(2, 7, func(w []Symbol) {
		want := evenAs().Accepts(w) && endsInB().Accepts(w)
		if inter.Accepts(w) != want {
			t.Fatalf("intersection wrong on %v", w)
		}
	})
}

func TestIntersectRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 50; i++ {
		a, b := randDFA(rng, 5, 2), randDFA(rng, 5, 2)
		inter := IntersectLanguages(a, b)
		enumWords(2, 6, func(w []Symbol) {
			want := a.Accepts(w) && b.Accepts(w)
			if inter.Accepts(w) != want {
				t.Fatalf("iter %d: intersection wrong on %v", i, w)
			}
		})
	}
}

func TestIntersectStatePairs(t *testing.T) {
	p := Intersect(evenAs(), endsInB())
	start := p.DFA.Start()
	qa, qb := p.StatePair(start)
	if qa != 0 || qb != 0 {
		t.Fatalf("start pair = (%d,%d), want (0,0)", qa, qb)
	}
	if p.Lookup(0, 0) != start {
		t.Fatal("Lookup(0,0) should return the start state")
	}
	if p.Lookup(99, 99) != Dead {
		t.Fatal("Lookup of unknown pair should be Dead")
	}
}

func TestIntersectAllCoversFullPairSpace(t *testing.T) {
	a, b := evenAs(), endsInB()
	p := IntersectAll(a, b)
	for qa := 0; qa < a.NumStates(); qa++ {
		for qb := 0; qb < b.NumStates(); qb++ {
			if p.Lookup(qa, qb) == Dead {
				t.Fatalf("pair (%d,%d) not materialized", qa, qb)
			}
		}
	}
}

func TestIncludesBasic(t *testing.T) {
	// a*b ⊆ Σ*b
	anyThenB := buildDFA(2, 2, 0, []int{1}, [][3]int{
		{0, 0, 0}, {0, 1, 1},
		{1, 0, 0}, {1, 1, 1},
	})
	if !Includes(abStarB(), anyThenB) {
		t.Fatal("a*b should be included in Σ*b")
	}
	if Includes(anyThenB, abStarB()) {
		t.Fatal("Σ*b should not be included in a*b")
	}
	if !Includes(abStarB(), abStarB()) {
		t.Fatal("language should include itself")
	}
}

func TestIncludesEmptyLanguage(t *testing.T) {
	empty := NewDFA(2)
	if !Includes(empty, abStarB()) {
		t.Fatal("∅ is included in everything")
	}
	if Includes(abStarB(), empty) {
		t.Fatal("nonempty is not included in ∅")
	}
	if !Includes(empty, empty) {
		t.Fatal("∅ ⊆ ∅")
	}
}

func TestIncludesRandomAgainstEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 60; i++ {
		a, b := randDFA(rng, 5, 2), randDFA(rng, 5, 2)
		got := Includes(a, b)
		want := true
		enumWords(2, 8, func(w []Symbol) {
			if a.Accepts(w) && !b.Accepts(w) {
				want = false
			}
		})
		// Enumeration up to length 8 may miss longer witnesses only when
		// got=false and want=true; with 5-state automata the pumping bound
		// for the product is 25 < but witnesses are found at length ≤ 25.
		// For 5x(5+1) product, shortest witness ≤ 30; use the one-sided
		// check that is sound at this length.
		if got && !want {
			t.Fatalf("iter %d: Includes=true but enumeration found a witness", i)
		}
		if !got && want {
			// Verify a longer witness really exists by checking the
			// product construction's own witness search.
			ab := IntersectLanguages(a, b.Complement())
			if ab.IsEmpty() {
				t.Fatalf("iter %d: Includes=false but a∩¬b is empty", i)
			}
		}
	}
}

func TestIncludesFrom(t *testing.T) {
	a := abStarB() // L(q0)=a*b, L(q1)={ε}
	u := buildDFA(2, 1, 0, []int{0}, [][3]int{{0, 0, 0}, {0, 1, 0}})
	if !IncludesFrom(a, 1, u, 0) {
		t.Fatal("{ε} ⊆ Σ*")
	}
	if !IncludesFrom(a, 0, u, 0) {
		t.Fatal("a*b ⊆ Σ*")
	}
	if IncludesFrom(u, 0, a, 0) {
		t.Fatal("Σ* ⊄ a*b")
	}
	if !IncludesFrom(a, Dead, u, 0) {
		t.Fatal("right language of Dead is ∅ ⊆ anything")
	}
}

func TestIntersectionNonempty(t *testing.T) {
	if !IntersectionNonempty(evenAs(), endsInB()) {
		t.Fatal("evenAs ∩ endsInB contains 'b'... (0 a's is even)")
	}
	// a*b vs strings of only a's: intersection empty.
	onlyAs := buildDFA(2, 1, 0, []int{0}, [][3]int{{0, 0, 0}})
	if IntersectionNonempty(abStarB(), onlyAs) {
		t.Fatal("a*b ∩ a* = ∅")
	}
}

func TestIntersectionNonemptyRestricted(t *testing.T) {
	// Both automata accept 'ab'; restrict away symbol a: only words over
	// {b} are allowed, and evenAs ∩ endsInB over {b} contains "b".
	allowed := []bool{false, true}
	if !IntersectionNonemptyRestricted(evenAs(), endsInB(), allowed) {
		t.Fatal("'b' should witness the restricted intersection")
	}
	// Restrict away everything: only ε remains, which endsInB rejects.
	none := []bool{false, false}
	if IntersectionNonemptyRestricted(evenAs(), endsInB(), none) {
		t.Fatal("no symbols allowed and ε not in both languages")
	}
	// ε in both: evenAs ∩ evenAs with no symbols allowed — ε accepted.
	if !IntersectionNonemptyRestricted(evenAs(), evenAs(), none) {
		t.Fatal("ε witnesses the restricted intersection")
	}
}

func TestIncludesMismatchedAlphabetsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mismatched alphabets")
		}
	}()
	Includes(NewDFA(2), NewDFA(3))
}
