package fa

import (
	"math/rand"
	"testing"
)

func TestReverseWord(t *testing.T) {
	w := []Symbol{0, 1, 2}
	r := ReverseWord(w)
	if len(r) != 3 || r[0] != 2 || r[1] != 1 || r[2] != 0 {
		t.Fatalf("ReverseWord = %v", r)
	}
	if w[0] != 0 {
		t.Fatal("ReverseWord must not mutate its input")
	}
	if len(ReverseWord(nil)) != 0 {
		t.Fatal("reverse of empty word should be empty")
	}
}

func TestReverseDFAProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for i := 0; i < 50; i++ {
		d := randDFA(rng, 5, 2)
		rev := ReverseDFA(d)
		enumWords(2, 6, func(w []Symbol) {
			if d.Accepts(w) != rev.Accepts(ReverseWord(w)) {
				t.Fatalf("iter %d: reversal property fails on %v", i, w)
			}
		})
	}
}

func TestReverseOfABStarB(t *testing.T) {
	// reverse of a*b is b a*
	rev := ReverseDFA(abStarB())
	if !rev.Accepts([]Symbol{1}) || !rev.Accepts([]Symbol{1, 0, 0}) {
		t.Fatal("b a* should be accepted by the reverse")
	}
	if rev.Accepts([]Symbol{0, 1}) || rev.Accepts(nil) {
		t.Fatal("ab and ε are not in reverse(a*b)")
	}
}

func TestReverseEmptyLanguage(t *testing.T) {
	rev := ReverseDFA(NewDFA(2))
	if !rev.IsEmpty() {
		t.Fatal("reverse of ∅ is ∅")
	}
}

func TestReversePreservesEpsilon(t *testing.T) {
	// Language {ε, a}: reversal is the same language.
	d := buildDFA(1, 2, 0, []int{0, 1}, [][3]int{{0, 0, 1}})
	rev := ReverseDFA(d)
	if !rev.Accepts(nil) || !rev.Accepts([]Symbol{0}) {
		t.Fatal("{ε,a} reversed should still accept ε and a")
	}
	if rev.Accepts([]Symbol{0, 0}) {
		t.Fatal("aa not in the language")
	}
}

func TestRunnerCountsSteps(t *testing.T) {
	r := NewRunner(abStarB())
	if !r.Consume([]Symbol{0, 0, 1}) {
		t.Fatal("aab should keep the runner live")
	}
	if !r.Accepting() {
		t.Fatal("runner should be in accepting state after aab")
	}
	if r.Steps != 3 {
		t.Fatalf("steps = %d, want 3", r.Steps)
	}
	r.Reset()
	if r.State != 0 {
		t.Fatal("Reset should return to start")
	}
	if r.Steps != 3 {
		t.Fatal("Reset must not clear the step counter")
	}
	// Driving into Dead stops early.
	r2 := NewRunner(abStarB())
	if r2.Consume([]Symbol{1, 1, 1}) {
		t.Fatal("bb… should kill the runner")
	}
	if r2.Steps != 2 {
		t.Fatalf("early stop consumed %d steps, want 2", r2.Steps)
	}
}

func TestShortestAccepted(t *testing.T) {
	w, ok := ShortestAccepted(abStarB())
	if !ok || len(w) != 1 || w[0] != 1 {
		t.Fatalf("shortest of a*b = %v, %v; want [b]", w, ok)
	}
	if _, ok := ShortestAccepted(NewDFA(2)); ok {
		t.Fatal("empty language has no shortest word")
	}
	// Accepting start: shortest is ε.
	d := buildDFA(2, 1, 0, []int{0}, nil)
	w, ok = ShortestAccepted(d)
	if !ok || len(w) != 0 {
		t.Fatalf("shortest should be ε, got %v %v", w, ok)
	}
}

func TestShortestAcceptedFrom(t *testing.T) {
	d := abStarB()
	w, ok := ShortestAcceptedFrom(d, 1)
	if !ok || len(w) != 0 {
		t.Fatalf("L(q1) = {ε}: shortest should be ε, got %v %v", w, ok)
	}
	if _, ok := ShortestAcceptedFrom(d, Dead); ok {
		t.Fatal("right language of Dead is empty")
	}
}

func TestSampleAlwaysAccepted(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for i := 0; i < 30; i++ {
		d := randDFA(rng, 6, 2)
		for j := 0; j < 20; j++ {
			w, ok := Sample(d, rng, 8)
			if !ok {
				continue // language may be empty or need longer words
			}
			if !d.Accepts(w) {
				t.Fatalf("iter %d: sampled word %v not accepted", i, w)
			}
		}
	}
}

func TestSampleEmptyLanguage(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, ok := Sample(NewDFA(2), rng, 10); ok {
		t.Fatal("cannot sample from ∅")
	}
}

func TestSampleRespectsMaxLen(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := abStarB()
	for i := 0; i < 50; i++ {
		w, ok := Sample(d, rng, 4)
		if ok && len(w) > 4 {
			t.Fatalf("sample exceeded maxLen: %v", w)
		}
	}
}
