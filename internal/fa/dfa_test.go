package fa

import (
	"math/rand"
	"strings"
	"testing"
)

// abStar: DFA over {a=0, b=1} accepting a*b (any number of a's then one b).
func abStarB() *DFA {
	return buildDFA(2, 2, 0, []int{1}, [][3]int{
		{0, 0, 0}, // a self-loop
		{0, 1, 1}, // b -> accept
	})
}

func TestAlphabetIntern(t *testing.T) {
	a := NewAlphabet()
	s1 := a.Intern("shipTo")
	s2 := a.Intern("billTo")
	if s1 == s2 {
		t.Fatal("distinct labels interned to the same symbol")
	}
	if got := a.Intern("shipTo"); got != s1 {
		t.Fatalf("re-intern changed symbol: %d != %d", got, s1)
	}
	if a.Lookup("items") != NoSymbol {
		t.Fatal("Lookup of unknown label should be NoSymbol")
	}
	if a.Name(s2) != "billTo" {
		t.Fatalf("Name(%d) = %q", s2, a.Name(s2))
	}
	if a.Size() != 2 {
		t.Fatalf("Size = %d, want 2", a.Size())
	}
	if got := a.String([]Symbol{s1, s2}); got != "shipTo billTo" {
		t.Fatalf("String = %q", got)
	}
}

func TestAlphabetZeroValue(t *testing.T) {
	var a Alphabet
	if a.Lookup("x") != NoSymbol {
		t.Fatal("zero-value Lookup should be NoSymbol")
	}
	if a.Intern("x") != 0 {
		t.Fatal("zero-value Intern should assign symbol 0")
	}
}

func TestDFAStepRunAccept(t *testing.T) {
	d := abStarB()
	cases := []struct {
		word []Symbol
		want bool
	}{
		{[]Symbol{}, false},
		{[]Symbol{1}, true},
		{[]Symbol{0, 1}, true},
		{[]Symbol{0, 0, 0, 1}, true},
		{[]Symbol{1, 1}, false},
		{[]Symbol{0}, false},
		{[]Symbol{1, 0}, false},
	}
	for _, c := range cases {
		if got := d.Accepts(c.word); got != c.want {
			t.Errorf("Accepts(%v) = %v, want %v", c.word, got, c.want)
		}
	}
	if d.Step(Dead, 0) != Dead {
		t.Fatal("Step from Dead must stay Dead")
	}
	if d.IsAccept(Dead) {
		t.Fatal("Dead must not be accepting")
	}
}

func TestTotalizeAndComplement(t *testing.T) {
	d := abStarB()
	tot, sink := d.Totalize()
	if sink == Dead {
		t.Fatal("expected a sink to be added")
	}
	for s := 0; s < tot.NumStates(); s++ {
		for sym := 0; sym < tot.NumSymbols(); sym++ {
			if tot.Step(s, Symbol(sym)) == Dead {
				t.Fatalf("Totalize left Dead edge at (%d,%d)", s, sym)
			}
		}
	}
	sameLanguage(t, d, tot, 5)

	comp := d.Complement()
	enumWords(2, 5, func(w []Symbol) {
		if comp.Accepts(w) == d.Accepts(w) {
			t.Fatalf("complement agrees with original on %v", w)
		}
	})
}

func TestTotalizeNoSinkNeeded(t *testing.T) {
	// Fully total single-state automaton accepting everything.
	d := buildDFA(2, 1, 0, []int{0}, [][3]int{{0, 0, 0}, {0, 1, 0}})
	tot, sink := d.Totalize()
	if sink != Dead {
		t.Fatal("no sink should be added for a total DFA")
	}
	if tot.NumStates() != 1 {
		t.Fatalf("states = %d, want 1", tot.NumStates())
	}
}

func TestIsEmpty(t *testing.T) {
	empty := NewDFA(2)
	if !empty.IsEmpty() {
		t.Fatal("stateless DFA should be empty")
	}
	// Accepting state unreachable.
	d := buildDFA(2, 2, 0, []int{1}, nil)
	if !d.IsEmpty() {
		t.Fatal("unreachable accept should make language empty")
	}
	if abStarB().IsEmpty() {
		t.Fatal("a*b is nonempty")
	}
}

func TestLiveStates(t *testing.T) {
	// 0 -a-> 1(acc), 0 -b-> 2 (trap: 2 -a-> 2)
	d := buildDFA(2, 3, 0, []int{1}, [][3]int{
		{0, 0, 1},
		{0, 1, 2},
		{2, 0, 2},
	})
	live := d.LiveStates()
	if !live[0] || !live[1] {
		t.Fatalf("states 0,1 should be live: %v", live)
	}
	if live[2] {
		t.Fatal("trap state 2 should be dead")
	}
}

func TestTrim(t *testing.T) {
	// State 3 unreachable; state 2 dead.
	d := buildDFA(2, 4, 0, []int{1, 3}, [][3]int{
		{0, 0, 1},
		{0, 1, 2},
		{2, 0, 2},
		{3, 0, 1},
	})
	tr := d.Trim()
	if tr.NumStates() != 2 {
		t.Fatalf("trimmed states = %d, want 2", tr.NumStates())
	}
	sameLanguage(t, d, tr, 5)
}

func TestTrimEmptyLanguage(t *testing.T) {
	d := buildDFA(2, 1, 0, nil, [][3]int{{0, 0, 0}})
	tr := d.Trim()
	if tr.Start() != Dead {
		t.Fatalf("empty language should trim to start=Dead, got %d", tr.Start())
	}
	if !tr.IsEmpty() {
		t.Fatal("trimmed empty language should be empty")
	}
}

func TestCloneIndependence(t *testing.T) {
	d := abStarB()
	c := d.Clone()
	c.SetAccept(1, false)
	c.SetTransition(0, 0, Dead)
	if !d.IsAccept(1) || d.Step(0, 0) != 0 {
		t.Fatal("mutating clone affected original")
	}
}

func TestDump(t *testing.T) {
	d := abStarB()
	out := d.Dump([]string{"a", "b"})
	for _, want := range []string{"q0", "a->q0", "b->q1", "* q1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Dump missing %q:\n%s", want, out)
		}
	}
}

func TestTrimRandomPreservesLanguage(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		d := randDFA(rng, 6, 2)
		sameLanguage(t, d, d.Trim(), 6)
	}
}

func TestComplementRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 30; i++ {
		d := randDFA(rng, 5, 2)
		comp := d.Complement()
		enumWords(2, 5, func(w []Symbol) {
			if comp.Accepts(w) == d.Accepts(w) {
				t.Fatalf("complement agrees with original on %v", w)
			}
		})
	}
}

func TestWiden(t *testing.T) {
	d := abStarB() // 2 symbols
	w := d.Widen(5)
	if w.NumSymbols() != 5 {
		t.Fatalf("widened symbols = %d", w.NumSymbols())
	}
	// Same language over the original symbols (the original automaton
	// cannot be driven over the widened alphabet).
	enumWords(2, 5, func(word []Symbol) {
		if d.Accepts(word) != w.Accepts(word) {
			t.Fatalf("widened automaton differs on %v", word)
		}
	})
	// New symbols lead nowhere.
	if w.Step(0, 4) != Dead {
		t.Fatal("new symbol should have no transition")
	}
	// Widening to the same size returns the receiver.
	if d.Widen(2) != d {
		t.Fatal("same-size widen should be a no-op")
	}
}

func TestWidenPanicsOnShrink(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	abStarB().Widen(1)
}
