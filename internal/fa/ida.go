package fa

// IDA is an immediate decision automaton (EDBT'04 §4.1, Definitions 6–8):
// a DFA augmented with disjoint state sets IA (immediate accept) and IR
// (immediate reject). A scan may stop with a definitive answer as soon as
// the current state falls in either set, without reading the rest of the
// input.
type IDA struct {
	D  *DFA
	IA []bool // immediate-accept states
	IR []bool // immediate-reject states

	// Product bookkeeping, set when the IDA was derived from a product
	// automaton (DeriveCastIDA); nil for single-automaton IDAs.
	Pairs *Product
}

// Decision is the verdict of an IDA scan.
type Decision int

const (
	// Undecided: the scan consumed the whole input without hitting IA/IR;
	// the verdict is the ordinary acceptance of the final state.
	Undecided Decision = iota
	// ImmediateAccept: an IA state was reached on a strict prefix.
	ImmediateAccept
	// ImmediateReject: an IR state was reached.
	ImmediateReject
)

func (d Decision) String() string {
	switch d {
	case ImmediateAccept:
		return "immediate-accept"
	case ImmediateReject:
		return "immediate-reject"
	default:
		return "undecided"
	}
}

// DeriveIDA builds the immediate decision automaton of a single DFA
// (Definition 6): IA = states whose right language is Σ*, IR = dead states
// (no accepting state reachable). Both sets are computed in time linear in
// the automaton size.
func DeriveIDA(d *DFA) *IDA {
	n := d.NumStates()
	ida := &IDA{D: d, IA: make([]bool, n), IR: make([]bool, n)}

	// IR: states from which no accepting state is reachable.
	live := d.LiveStates()
	for s := 0; s < n; s++ {
		ida.IR[s] = !live[s]
	}

	// IA: L(q) = Σ* iff every state reachable from q is accepting AND the
	// transition function never falls into the implicit dead sink from any
	// reachable state. Compute the complement by reverse reachability from
	// "deficient" states: non-accepting states and states with a Dead edge.
	deficient := make([]bool, n)
	for s := 0; s < n; s++ {
		if !d.accept[s] {
			deficient[s] = true
			continue
		}
		for sym := 0; sym < d.numSymbols; sym++ {
			if d.Step(s, Symbol(sym)) == Dead {
				deficient[s] = true
				break
			}
		}
	}
	canReachDeficient := reverseReach(d, deficient)
	for s := 0; s < n; s++ {
		ida.IA[s] = !canReachDeficient[s] && !ida.IR[s]
	}
	return ida
}

// DeriveCastIDA builds c_immed (Definition 7) from source automaton a and
// target automaton b: the intersection automaton of a and b with
//
//	IA = { (q_a, q_b) : L(q_a) ⊆ L(q_b) }   (equivalently, Definition 8:
//	      no pair (q1, q2) with q1 ∈ F_a and q2 ∉ F_b is reachable)
//	IR = dead states of the product.
//
// For inputs known to be in L(a), scanning with the result decides
// membership in L(b) and does so optimally early (Proposition 3). Pairs
// where both IA and IR conditions hold (only possible when the a-component
// is dead, i.e. the in-L(a) promise is already broken) are classified IR.
//
// The product covers the full pair space Q_a × Q_b so the automaton can be
// entered at an arbitrary pair, as the with-modifications scan requires.
func DeriveCastIDA(a, b *DFA) *IDA {
	p := IntersectAll(a, b)
	n := p.DFA.NumStates()
	ida := &IDA{D: p.DFA, IA: make([]bool, n), IR: make([]bool, n), Pairs: p}

	live := p.DFA.LiveStates()
	for s := 0; s < n; s++ {
		ida.IR[s] = !live[s]
	}

	// Definition 8: (qa,qb) ∈ IA iff no "bad" pair — qa accepting in a but
	// qb not accepting in b — is reachable from it in the product. Computed
	// by one reverse reachability pass from the bad pairs.
	bad := make([]bool, n)
	for s := 0; s < n; s++ {
		qa, qb := p.StatePair(s)
		if a.IsAccept(qa) && !b.IsAccept(qb) {
			bad[s] = true
		}
	}
	canReachBad := reverseReach(p.DFA, bad)
	for s := 0; s < n; s++ {
		ida.IA[s] = !canReachBad[s] && !ida.IR[s]
	}
	return ida
}

// reverseReach returns, per state, whether some state marked in seed is
// reachable from it (including itself) following d's transitions forward.
func reverseReach(d *DFA, seed []bool) []bool {
	n := d.NumStates()
	radj := make([][]int32, n)
	for s := 0; s < n; s++ {
		for sym := 0; sym < d.numSymbols; sym++ {
			t := d.Step(s, Symbol(sym))
			if t != Dead {
				radj[t] = append(radj[t], int32(s))
			}
		}
	}
	reach := make([]bool, n)
	var stack []int
	for s := 0; s < n; s++ {
		if seed[s] {
			reach[s] = true
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, pdc := range radj[s] {
			if !reach[pdc] {
				reach[pdc] = true
				stack = append(stack, int(pdc))
			}
		}
	}
	return reach
}

// Classify returns the immediate verdict for being in state s, if any.
// Classify(Dead) is ImmediateReject: the implicit sink is dead.
func (ida *IDA) Classify(s int) Decision {
	if s == Dead || ida.IR[s] {
		return ImmediateReject
	}
	if ida.IA[s] {
		return ImmediateAccept
	}
	return Undecided
}

// ScanResult reports the outcome of an IDA scan.
type ScanResult struct {
	Accepted bool
	Decision Decision // how the verdict was reached
	Consumed int      // symbols consumed before the verdict
	State    int      // state after the last consumed symbol (Dead possible)
}

// Scan runs word through the IDA starting from state start, stopping as
// soon as an IA or IR state is entered. If the input is exhausted without
// an immediate decision, the verdict is ordinary acceptance of the final
// state.
func (ida *IDA) Scan(start int, word []Symbol) ScanResult {
	state := start
	if dec := ida.Classify(state); dec != Undecided {
		return ScanResult{Accepted: dec == ImmediateAccept, Decision: dec, Consumed: 0, State: state}
	}
	for i, sym := range word {
		state = ida.D.Step(state, sym)
		if dec := ida.Classify(state); dec != Undecided {
			return ScanResult{Accepted: dec == ImmediateAccept, Decision: dec, Consumed: i + 1, State: state}
		}
	}
	return ScanResult{Accepted: ida.D.IsAccept(state), Decision: Undecided, Consumed: len(word), State: state}
}

// ScanFromStart is Scan from the automaton's start state.
func (ida *IDA) ScanFromStart(word []Symbol) ScanResult {
	return ida.Scan(ida.D.Start(), word)
}

// PairState returns the product state id for the component pair (qa, qb),
// or Dead if that pair was never materialized (it is then unreachable from
// the product start or both-dead). Only valid for cast IDAs.
func (ida *IDA) PairState(qa, qb int) int {
	if ida.Pairs == nil {
		panic("fa: PairState on a non-product IDA")
	}
	return ida.Pairs.Lookup(qa, qb)
}
