package fa

import "math/rand"

// ShortestAccepted returns a shortest word in L(d), or ok=false when the
// language is empty. BFS from the start state; ties broken by symbol order.
func ShortestAccepted(d *DFA) (word []Symbol, ok bool) {
	if d.Start() == Dead {
		return nil, false
	}
	type via struct {
		prev int
		sym  Symbol
	}
	parent := make(map[int]via)
	seen := make([]bool, d.NumStates())
	queue := []int{d.Start()}
	seen[d.Start()] = true
	goal := Dead
	if d.IsAccept(d.Start()) {
		return []Symbol{}, true
	}
	for len(queue) > 0 && goal == Dead {
		s := queue[0]
		queue = queue[1:]
		for sym := 0; sym < d.NumSymbols() && goal == Dead; sym++ {
			t := d.Step(s, Symbol(sym))
			if t == Dead || seen[t] {
				continue
			}
			seen[t] = true
			parent[t] = via{s, Symbol(sym)}
			if d.IsAccept(t) {
				goal = t
				break
			}
			queue = append(queue, t)
		}
	}
	if goal == Dead {
		return nil, false
	}
	for s := goal; s != d.Start(); {
		v := parent[s]
		word = append(word, v.sym)
		s = v.prev
	}
	// reverse in place
	for i, j := 0, len(word)-1; i < j; i, j = i+1, j-1 {
		word[i], word[j] = word[j], word[i]
	}
	return word, true
}

// ShortestAcceptedFrom returns a shortest word in the right language
// L_d(from), or ok=false when it is empty.
func ShortestAcceptedFrom(d *DFA, from int) ([]Symbol, bool) {
	if from == Dead {
		return nil, false
	}
	c := d.Clone()
	c.SetStart(from)
	return ShortestAccepted(c)
}

// Sample returns a random word in L(d) with length at most maxLen, or
// ok=false when no accepted word of length ≤ maxLen exists. The walk is
// biased toward live states (states from which acceptance remains possible
// within the remaining budget), so every returned word is accepted.
func Sample(d *DFA, rng *rand.Rand, maxLen int) (word []Symbol, ok bool) {
	if d.Start() == Dead {
		return nil, false
	}
	// distToAccept[s] = length of shortest accepted word from s, or -1.
	dist := distancesToAccept(d)
	if dist[d.Start()] < 0 || dist[d.Start()] > maxLen {
		return nil, false
	}
	state := d.Start()
	for step := 0; step < maxLen; step++ {
		// Option to stop when accepting; make stopping likelier as the
		// budget shrinks.
		if d.IsAccept(state) && rng.Intn(maxLen-step+1) == 0 {
			return word, true
		}
		// Candidate moves keeping acceptance reachable within budget.
		var cands []Symbol
		for sym := 0; sym < d.NumSymbols(); sym++ {
			t := d.Step(state, Symbol(sym))
			if t != Dead && dist[t] >= 0 && dist[t] <= maxLen-step-1 {
				cands = append(cands, Symbol(sym))
			}
		}
		if len(cands) == 0 {
			if d.IsAccept(state) {
				return word, true
			}
			return nil, false // should not happen given the invariant
		}
		sym := cands[rng.Intn(len(cands))]
		word = append(word, sym)
		state = d.Step(state, sym)
	}
	if d.IsAccept(state) {
		return word, true
	}
	// Budget exhausted in a non-accepting state: finish along a shortest
	// path if it fits (it cannot, by the invariant, so report failure).
	return nil, false
}

// distancesToAccept returns, per state, the length of the shortest word in
// its right language, or -1 when the right language is empty. Reverse BFS
// from accepting states.
func distancesToAccept(d *DFA) []int {
	n := d.NumStates()
	radj := make([][]int32, n)
	for s := 0; s < n; s++ {
		for sym := 0; sym < d.NumSymbols(); sym++ {
			t := d.Step(s, Symbol(sym))
			if t != Dead {
				radj[t] = append(radj[t], int32(s))
			}
		}
	}
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	var queue []int
	for s := 0; s < n; s++ {
		if d.IsAccept(s) {
			dist[s] = 0
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		for _, p := range radj[s] {
			if dist[p] < 0 {
				dist[p] = dist[s] + 1
				queue = append(queue, int(p))
			}
		}
	}
	return dist
}
