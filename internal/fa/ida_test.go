package fa

import (
	"math/rand"
	"testing"
)

func TestDeriveIDASingle(t *testing.T) {
	// DFA over {a,b}: q0 -a-> q1 (q1 accepts Σ*: self loops, accepting),
	// q0 -b-> q2 (q2 dead trap).
	d := buildDFA(2, 3, 0, []int{1}, [][3]int{
		{0, 0, 1},
		{1, 0, 1}, {1, 1, 1},
		{0, 1, 2}, {2, 0, 2}, {2, 1, 2},
	})
	ida := DeriveIDA(d)
	if !ida.IA[1] {
		t.Fatal("q1 has L(q1)=Σ*: should be immediate-accept")
	}
	if !ida.IR[2] {
		t.Fatal("q2 is dead: should be immediate-reject")
	}
	if ida.IA[0] || ida.IR[0] {
		t.Fatal("q0 is neither IA nor IR")
	}
}

func TestDeriveIDAPartialTransitionsBlockIA(t *testing.T) {
	// Accepting state with a missing edge: L(q) ≠ Σ* because the missing
	// edge falls into the implicit dead sink.
	d := buildDFA(2, 1, 0, []int{0}, [][3]int{{0, 0, 0}}) // only a-loop
	ida := DeriveIDA(d)
	if ida.IA[0] {
		t.Fatal("state with Dead edge cannot be immediate-accept")
	}
}

func TestIDAScanAgreesWithDFA(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for i := 0; i < 60; i++ {
		d := randDFA(rng, 6, 2)
		ida := DeriveIDA(d)
		enumWords(2, 6, func(w []Symbol) {
			res := ida.ScanFromStart(w)
			if res.Accepted != d.Accepts(w) {
				t.Fatalf("iter %d: IDA disagrees with DFA on %v (decision %v)",
					i, w, res.Decision)
			}
		})
	}
}

// Theorem 3: for all s ∈ L(a), c_immed accepts s iff s ∈ L(b).
func TestCastIDATheorem3(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for i := 0; i < 80; i++ {
		a, b := randDFA(rng, 5, 2), randDFA(rng, 5, 2)
		ida := DeriveCastIDA(a, b)
		enumWords(2, 7, func(w []Symbol) {
			if !a.Accepts(w) {
				return // contract only covers strings in L(a)
			}
			res := ida.ScanFromStart(w)
			if res.Accepted != b.Accepts(w) {
				t.Fatalf("iter %d: cast IDA wrong on %v: got %v want %v (%v)",
					i, w, res.Accepted, b.Accepts(w), res.Decision)
			}
		})
	}
}

// Proposition 3 (optimality): c_immed decides no later than the
// information-theoretic oracle, which can decide after prefix p as soon as
// all continuations of p in L(a) agree on membership in L(b).
func TestCastIDAOptimality(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	const maxLen = 6
	for i := 0; i < 25; i++ {
		a, b := randDFA(rng, 4, 2), randDFA(rng, 4, 2)
		ida := DeriveCastIDA(a, b)
		enumWords(2, maxLen, func(w []Symbol) {
			if !a.Accepts(w) {
				return
			}
			res := ida.ScanFromStart(w)
			oracle := oracleDecisionPoint(a, b, w)
			if res.Decision != Undecided && res.Consumed > oracle {
				t.Fatalf("iter %d: IDA decided at %d, oracle at %d for %v",
					i, res.Consumed, oracle, w)
			}
			if res.Decision == Undecided && oracle < len(w) {
				// The IDA consumed everything; the oracle could decide
				// earlier only if the right-language inclusion or
				// disjointness held, which is exactly IA/IR — so this
				// indicates an incompleteness bug.
				t.Fatalf("iter %d: IDA undecided on %v but oracle decides at %d",
					i, w, oracle)
			}
		})
	}
}

// oracleDecisionPoint returns the earliest prefix length after which the
// verdict "w ∈ L(b)?" is forced, given only that the remaining suffix
// completes some word of L(a) from the state reached in a.
func oracleDecisionPoint(a, b *DFA, w []Symbol) int {
	for i := 0; i <= len(w); i++ {
		qa := a.Run(a.Start(), w[:i])
		qb := b.Run(b.Start(), w[:i])
		// Forced accept: every suffix in L_a(qa) lands in an accepting b
		// state; forced reject: none does.
		if IncludesFrom(a, qa, b, qb) {
			return i
		}
		if qa == Dead {
			return i // promise broken; treat as decided
		}
		// Disjoint right languages → forced reject.
		ca, cb := a.Clone(), b.Clone()
		ca.SetStart(qa)
		if qb == Dead {
			return i
		}
		cb.SetStart(qb)
		if !IntersectionNonempty(ca, cb) {
			return i
		}
	}
	return len(w)
}

func TestCastIDAFromArbitraryPair(t *testing.T) {
	// Enter c_immed at a non-start pair and check it still decides
	// correctly (the with-modifications entry point, Prop. 2).
	a, b := evenAs(), endsInB()
	ida := DeriveCastIDA(a, b)
	for qa := 0; qa < a.NumStates(); qa++ {
		for qb := 0; qb < b.NumStates(); qb++ {
			st := ida.PairState(qa, qb)
			if st == Dead {
				t.Fatalf("pair (%d,%d) missing from full product", qa, qb)
			}
			enumWords(2, 5, func(w []Symbol) {
				// Contract: suffix w ∈ L_a(qa).
				if !a.IsAccept(a.Run(qa, w)) {
					return
				}
				res := ida.Scan(st, w)
				want := b.IsAccept(b.Run(qb, w))
				if res.Accepted != want {
					t.Fatalf("pair (%d,%d) word %v: got %v want %v",
						qa, qb, w, res.Accepted, want)
				}
			})
		}
	}
}

func TestIDAClassifyDead(t *testing.T) {
	ida := DeriveIDA(abStarB())
	if ida.Classify(Dead) != ImmediateReject {
		t.Fatal("Dead must classify as immediate-reject")
	}
}

func TestIASetsDisjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for i := 0; i < 40; i++ {
		a, b := randDFA(rng, 5, 2), randDFA(rng, 5, 2)
		ida := DeriveCastIDA(a, b)
		for s := range ida.IA {
			if ida.IA[s] && ida.IR[s] {
				t.Fatalf("iter %d: state %d in both IA and IR", i, s)
			}
		}
	}
}

func TestDecisionString(t *testing.T) {
	if Undecided.String() != "undecided" ||
		ImmediateAccept.String() != "immediate-accept" ||
		ImmediateReject.String() != "immediate-reject" {
		t.Fatal("Decision.String values changed")
	}
}

func TestPairStatePanicsOnSingleIDA(t *testing.T) {
	ida := DeriveIDA(abStarB())
	defer func() {
		if recover() == nil {
			t.Fatal("PairState should panic on a single-automaton IDA")
		}
	}()
	ida.PairState(0, 0)
}
