package fa

// Runner executes a DFA symbol by symbol while counting transitions taken.
// The revalidation experiments use the step counter as a machine-independent
// cost metric alongside wall-clock time.
type Runner struct {
	D     *DFA
	State int
	Steps int64
}

// NewRunner returns a runner positioned at d's start state.
func NewRunner(d *DFA) *Runner {
	return &Runner{D: d, State: d.Start()}
}

// Reset repositions the runner at the start state without clearing Steps.
func (r *Runner) Reset() { r.State = r.D.Start() }

// Step consumes one symbol and reports whether the automaton is still live
// (not in the implicit dead state).
func (r *Runner) Step(sym Symbol) bool {
	r.State = r.D.Step(r.State, sym)
	r.Steps++
	return r.State != Dead
}

// Consume runs a whole word, stopping early on Dead. It reports whether the
// automaton is still live afterwards.
func (r *Runner) Consume(word []Symbol) bool {
	for _, sym := range word {
		if !r.Step(sym) {
			return false
		}
	}
	return true
}

// Accepting reports whether the current state is accepting.
func (r *Runner) Accepting() bool { return r.D.IsAccept(r.State) }
