package fa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: when Includes(a, b) holds, every word sampled from L(a) is
// accepted by b. (Soundness of the inclusion test against the sampler.)
func TestQuickIncludesSoundOnSamples(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randDFA(rng, 5, 2), randDFA(rng, 5, 2)
		if !Includes(a, b) {
			return true // nothing claimed
		}
		for i := 0; i < 20; i++ {
			w, ok := Sample(a, rng, 10)
			if !ok {
				return true // empty language: inclusion vacuous
			}
			if !b.Accepts(w) {
				t.Logf("Includes claimed but %v ∈ L(a) \\ L(b)", w)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickConfig(300)); err != nil {
		t.Fatal(err)
	}
}

// Property: IntersectionNonempty(a, b) == !(IntersectLanguages(a,b).IsEmpty()).
func TestQuickIntersectionAgreesWithProduct(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randDFA(rng, 5, 2), randDFA(rng, 5, 2)
		return IntersectionNonempty(a, b) == !IntersectLanguages(a, b).IsEmpty()
	}
	if err := quick.Check(f, quickConfig(300)); err != nil {
		t.Fatal(err)
	}
}

// Property: the IDA of a DFA accepts exactly the DFA's language.
func TestQuickIDAPreservesLanguage(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := randDFA(rng, 5, 2)
		ida := DeriveIDA(d)
		ok := true
		enumWords(2, 6, func(w []Symbol) {
			if ida.ScanFromStart(w).Accepted != d.Accepts(w) {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, quickConfig(120)); err != nil {
		t.Fatal(err)
	}
}

// Property: double reversal preserves the language.
func TestQuickDoubleReverse(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := randDFA(rng, 5, 2)
		rr := ReverseDFA(ReverseDFA(d))
		ok := true
		enumWords(2, 6, func(w []Symbol) {
			if d.Accepts(w) != rr.Accepts(w) {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, quickConfig(100)); err != nil {
		t.Fatal(err)
	}
}

// Property: Minimize yields an automaton no other random equivalent DFA can
// beat in state count (checked against trim-only forms).
func TestQuickMinimizeBeatsTrim(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := randDFA(rng, 7, 2)
		return Minimize(d).NumStates() <= d.Trim().NumStates()
	}
	if err := quick.Check(f, quickConfig(300)); err != nil {
		t.Fatal(err)
	}
}

// Property: Widen preserves the language over the original symbols and is
// idempotent in width.
func TestQuickWiden(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := randDFA(rng, 5, 2)
		w := d.Widen(2 + rng.Intn(4))
		ok := true
		enumWords(2, 6, func(word []Symbol) {
			if d.Accepts(word) != w.Accepts(word) {
				ok = false
			}
		})
		return ok && w.Widen(w.NumSymbols()) == w
	}
	if err := quick.Check(f, quickConfig(200)); err != nil {
		t.Fatal(err)
	}
}
