package fa

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// reflectValue aliases reflect.Value so quick.Generator implementations in
// tests stay terse.
type reflectValue = reflect.Value

func reflectValueOf(v any) reflect.Value { return reflect.ValueOf(v) }

// quickConfig returns a quick.Config with a fixed seed for reproducibility.
func quickConfig(maxCount int) *quick.Config {
	return &quick.Config{
		MaxCount: maxCount,
		Rand:     rand.New(rand.NewSource(42)),
	}
}

// enumWords calls fn for every word over numSymbols symbols with length at
// most maxLen, in length-lexicographic order.
func enumWords(numSymbols, maxLen int, fn func([]Symbol)) {
	var rec func(prefix []Symbol)
	rec = func(prefix []Symbol) {
		fn(prefix)
		if len(prefix) == maxLen {
			return
		}
		for s := 0; s < numSymbols; s++ {
			rec(append(prefix, Symbol(s)))
		}
	}
	rec(nil)
}

// sameLanguage asserts that a and b agree on all words up to maxLen.
func sameLanguage(t *testing.T, a, b *DFA, maxLen int) {
	t.Helper()
	alpha := a.NumSymbols()
	if b.NumSymbols() > alpha {
		alpha = b.NumSymbols()
	}
	enumWords(alpha, maxLen, func(w []Symbol) {
		got, want := a.Accepts(w), b.Accepts(w)
		if got != want {
			t.Fatalf("language mismatch on %v: a=%v b=%v", w, got, want)
		}
	})
}

// randDFA generates a random partial DFA with n states over k symbols.
// Transition density and accept probability are moderate so languages are
// interesting (neither empty nor universal most of the time).
func randDFA(rng *rand.Rand, n, k int) *DFA {
	d := NewDFA(k)
	for i := 0; i < n; i++ {
		d.AddState(rng.Intn(3) == 0)
	}
	for s := 0; s < n; s++ {
		for sym := 0; sym < k; sym++ {
			switch rng.Intn(4) {
			case 0: // leave Dead
			default:
				d.SetTransition(s, Symbol(sym), rng.Intn(n))
			}
		}
	}
	d.SetStart(0)
	return d
}

// buildDFA is a compact test constructor. trans maps "state,symbol" pairs
// expressed as [from, sym, to] triples.
func buildDFA(numSymbols, numStates, start int, accepts []int, triples [][3]int) *DFA {
	d := NewDFA(numSymbols)
	for i := 0; i < numStates; i++ {
		d.AddState(false)
	}
	for _, a := range accepts {
		d.SetAccept(a, true)
	}
	for _, tr := range triples {
		d.SetTransition(tr[0], Symbol(tr[1]), tr[2])
	}
	d.SetStart(start)
	return d
}
