package artifact

import (
	"encoding/binary"
	"encoding/json"
)

// Info is the structural summary Inspect extracts from a blob: everything
// schemadump prints in -artifact mode. It is built from the parsed sections
// alone — the schema texts are never re-compiled — so inspection works even
// on blobs a current build would classify stale.
type Info struct {
	Version      int    `json:"version"`
	TotalBytes   int    `json:"totalBytes"`
	PayloadBytes int    `json:"payloadBytes"`
	CRC32        uint32 `json:"crc32"`
	Key          string `json:"key"`

	Src SchemaSummary `json:"src"`
	Dst SchemaSummary `json:"dst"`

	AlphabetSize int `json:"alphabetSize"`
	SrcTypes     int `json:"srcTypes"`
	DstTypes     int `json:"dstTypes"`
	// SubsumedPairs and DisjointPairs count set bits of R_sub and cleared
	// bits of R_nondis, matching subsume.Stats.
	SubsumedPairs int `json:"subsumedPairs"`
	DisjointPairs int `json:"disjointPairs"`

	Casters []CasterInfo `json:"casters"`
	// ProductStates totals c_immed states across all casters — the figure
	// the registry used to estimate cost before artifacts existed.
	ProductStates int             `json:"productStates"`
	Sections      []SectionInfo   `json:"sections"`
	Report        json.RawMessage `json:"report"`
}

// SchemaSummary describes one schema of the pair without its text.
type SchemaSummary struct {
	Format    string `json:"format"`
	DTDRoot   string `json:"dtdRoot,omitempty"`
	Hash      string `json:"hash"`
	TextBytes int    `json:"textBytes"`
}

// CasterInfo summarizes one serialized per-type-pair caster.
type CasterInfo struct {
	SrcType       int `json:"srcType"`
	DstType       int `json:"dstType"`
	ProductStates int `json:"productStates"`
	TargetStates  int `json:"targetStates"`
}

// Inspect parses a blob's header and sections into an Info. It validates
// magic, version, CRC and section structure exactly like Decode but stops
// short of re-parsing the schema texts.
func Inspect(blob []byte) (*Info, error) {
	a, err := parse(blob)
	if err != nil {
		return nil, err
	}
	info := &Info{
		Version:      Version,
		TotalBytes:   len(blob),
		PayloadBytes: len(blob) - headerSize,
		CRC32:        binary.LittleEndian.Uint32(blob[8:]),
		Key:          Key(a.src.Hash, a.dst.Hash),
		Src:          summarize(a.src),
		Dst:          summarize(a.dst),
		AlphabetSize: len(a.alphabet),
		SrcTypes:     a.nSrc,
		DstTypes:     a.nDst,
		Sections:     a.sections,
		Report:       json.RawMessage(a.reportJSON),
	}
	for _, v := range a.sub {
		if v {
			info.SubsumedPairs++
		}
	}
	for _, v := range a.nondis {
		if !v {
			info.DisjointPairs++
		}
	}
	for i := range a.casters {
		c := &a.casters[i]
		info.Casters = append(info.Casters, CasterInfo{
			SrcType:       c.srcType,
			DstType:       c.dstType,
			ProductStates: c.pStates,
			TargetStates:  len(c.bIA),
		})
		info.ProductStates += c.pStates
	}
	return info, nil
}

func summarize(in SchemaInfo) SchemaSummary {
	return SchemaSummary{Format: in.Format, DTDRoot: in.DTDRoot, Hash: in.Hash, TextBytes: len(in.Text)}
}
