package artifact

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/faultinject"
)

func TestStoreMissHitCorrupt(t *testing.T) {
	store, err := OpenStore(t.TempDir(), nil)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	blob := encodeFigPair(t)
	info, err := Inspect(blob)
	if err != nil {
		t.Fatalf("inspect: %v", err)
	}
	key := info.Key

	// Miss.
	if _, err := store.LoadPair(key); !errors.Is(err, ErrNotFound) {
		t.Fatalf("empty store: want ErrNotFound, got %v", err)
	}
	if st := store.Stats(); st.Misses != 1 || st.Hits != 0 {
		t.Fatalf("after miss: %+v", st)
	}

	// Write-through + hit.
	if err := store.Put(key, blob); err != nil {
		t.Fatalf("put: %v", err)
	}
	dec, err := store.LoadPair(key)
	if err != nil {
		t.Fatalf("load after put: %v", err)
	}
	if dec.Size != len(blob) {
		t.Fatalf("decoded size %d, want %d", dec.Size, len(blob))
	}
	if st := store.Stats(); st.Hits != 1 || st.Writes != 1 {
		t.Fatalf("after hit: %+v", st)
	}

	// Corrupt the stored blob (truncate it): the next load must fail
	// cleanly, quarantine the file, and count the corruption.
	path := filepath.Join(store.Dir(), key+".xca")
	if err := os.Truncate(path, int64(len(blob)/2)); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	if _, err := store.LoadPair(key); err == nil {
		t.Fatal("truncated blob decoded successfully")
	} else if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated blob: want ErrCorrupt, got %v", err)
	}
	if st := store.Stats(); st.Corrupt != 1 {
		t.Fatalf("after corruption: %+v", st)
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Fatalf("quarantine file missing: %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("corrupt blob still live under its key: %v", err)
	}
	// And the key now misses cleanly — a fresh compile can write through.
	if _, err := store.LoadPair(key); !errors.Is(err, ErrNotFound) {
		t.Fatalf("after quarantine: want ErrNotFound, got %v", err)
	}
	if err := store.Put(key, blob); err != nil {
		t.Fatalf("re-put after quarantine: %v", err)
	}
	if _, err := store.LoadPair(key); err != nil {
		t.Fatalf("load after re-put: %v", err)
	}
}

func TestStoreRejectsHostileKeys(t *testing.T) {
	store, err := OpenStore(t.TempDir(), nil)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for _, key := range []string{"", "..", "../../etc/passwd", "ABCDEF", "short", string(make([]byte, 64))} {
		if err := store.Put(key, []byte("x")); err == nil {
			t.Fatalf("Put accepted hostile key %q", key)
		}
		if _, err := store.Get(key); !errors.Is(err, ErrNotFound) {
			t.Fatalf("Get(%q): want ErrNotFound, got %v", key, err)
		}
	}
}

func TestKeyShape(t *testing.T) {
	k := Key("aaa", "bbb")
	if !validKey(k) {
		t.Fatalf("Key produced an invalid key %q", k)
	}
	if k == Key("bbb", "aaa") {
		t.Fatal("key is direction-insensitive; (src,dst) and (dst,src) must differ")
	}
}

func TestStorePartialWriteRecovery(t *testing.T) {
	defer faultinject.Disable()
	store, err := OpenStore(t.TempDir(), nil)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	blob := encodeFigPair(t)
	info, err := Inspect(blob)
	if err != nil {
		t.Fatalf("inspect: %v", err)
	}
	key := info.Key

	// A write that tears mid-blob must not publish anything: the next
	// lookup is a clean miss — no live file, no quarantine, no corrupt
	// counter. The torn temp file is cleaned up by Put itself.
	faultinject.Enable(faultinject.Config{DiskErrAfter: int64(len(blob) / 2)})
	if err := store.Put(key, blob); err == nil {
		t.Fatal("partial write reported success")
	}
	if _, err := os.Stat(filepath.Join(store.Dir(), key+".xca")); !os.IsNotExist(err) {
		t.Fatalf("torn blob published under live key: %v", err)
	}
	if _, err := store.LoadPair(key); !errors.Is(err, ErrNotFound) {
		t.Fatalf("after torn write: want clean ErrNotFound, got %v", err)
	}
	if st := store.Stats(); st.Corrupt != 0 || st.Writes != 0 {
		t.Fatalf("torn write moved counters: %+v", st)
	}
	ents, err := os.ReadDir(store.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if filepath.Ext(e.Name()) == ".corrupt" {
			t.Fatalf("torn write left a quarantine file %s", e.Name())
		}
	}
	if store.Degraded() {
		t.Fatal("a single torn write must not degrade the store")
	}

	// Heal the disk: the same Put goes through and the blob decodes.
	faultinject.Disable()
	if err := store.Put(key, blob); err != nil {
		t.Fatalf("put after heal: %v", err)
	}
	if _, err := store.LoadPair(key); err != nil {
		t.Fatalf("load after heal: %v", err)
	}
}

func TestStoreDegradesOnENOSPC(t *testing.T) {
	defer faultinject.Disable()
	store, err := OpenStore(t.TempDir(), nil)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	blob := encodeFigPair(t)
	info, _ := Inspect(blob)
	key := info.Key

	faultinject.Enable(faultinject.Config{DiskFull: true})
	if err := store.Put(key, blob); errors.Is(err, ErrDegraded) || err == nil {
		t.Fatalf("first ENOSPC Put: want the underlying error, got %v", err)
	}
	if !store.Degraded() {
		t.Fatal("store not degraded after ENOSPC")
	}
	// While degraded, Puts short-circuit with ErrDegraded — no disk I/O.
	if err := store.Put(key, blob); !errors.Is(err, ErrDegraded) {
		t.Fatalf("degraded Put: want ErrDegraded, got %v", err)
	}
	// Reads still work while degraded.
	if _, err := store.LoadPair(key); !errors.Is(err, ErrNotFound) {
		t.Fatalf("degraded read: want ErrNotFound passthrough, got %v", err)
	}

	// Heal the disk and expire the retry window: the next Put probes the
	// disk, succeeds, and clears the degradation.
	faultinject.Disable()
	store.degradedAt.Store(time.Now().Add(-degradedRetryAfter - time.Second).UnixNano())
	if err := store.Put(key, blob); err != nil {
		t.Fatalf("probe Put after heal: %v", err)
	}
	if store.Degraded() {
		t.Fatal("store still degraded after successful probe")
	}
	if _, err := store.LoadPair(key); err != nil {
		t.Fatalf("load after recovery: %v", err)
	}
}

func TestStoreDegradedProbeFailureStaysDegraded(t *testing.T) {
	defer faultinject.Disable()
	store, err := OpenStore(t.TempDir(), nil)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	blob := encodeFigPair(t)
	info, _ := Inspect(blob)
	key := info.Key

	faultinject.Enable(faultinject.Config{DiskFull: true})
	store.Put(key, blob) // trips degraded
	// Expire the window with the disk still full: the probe fails and the
	// store stays degraded with a refreshed window.
	store.degradedAt.Store(time.Now().Add(-degradedRetryAfter - time.Second).UnixNano())
	if err := store.Put(key, blob); err == nil || errors.Is(err, ErrDegraded) {
		t.Fatalf("probe against a full disk: want the underlying error, got %v", err)
	}
	if !store.Degraded() {
		t.Fatal("store recovered though the probe failed")
	}
	if err := store.Put(key, blob); !errors.Is(err, ErrDegraded) {
		t.Fatalf("post-probe Put: want ErrDegraded, got %v", err)
	}
}
