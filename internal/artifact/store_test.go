package artifact

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestStoreMissHitCorrupt(t *testing.T) {
	store, err := OpenStore(t.TempDir(), nil)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	blob := encodeFigPair(t)
	info, err := Inspect(blob)
	if err != nil {
		t.Fatalf("inspect: %v", err)
	}
	key := info.Key

	// Miss.
	if _, err := store.LoadPair(key); !errors.Is(err, ErrNotFound) {
		t.Fatalf("empty store: want ErrNotFound, got %v", err)
	}
	if st := store.Stats(); st.Misses != 1 || st.Hits != 0 {
		t.Fatalf("after miss: %+v", st)
	}

	// Write-through + hit.
	if err := store.Put(key, blob); err != nil {
		t.Fatalf("put: %v", err)
	}
	dec, err := store.LoadPair(key)
	if err != nil {
		t.Fatalf("load after put: %v", err)
	}
	if dec.Size != len(blob) {
		t.Fatalf("decoded size %d, want %d", dec.Size, len(blob))
	}
	if st := store.Stats(); st.Hits != 1 || st.Writes != 1 {
		t.Fatalf("after hit: %+v", st)
	}

	// Corrupt the stored blob (truncate it): the next load must fail
	// cleanly, quarantine the file, and count the corruption.
	path := filepath.Join(store.Dir(), key+".xca")
	if err := os.Truncate(path, int64(len(blob)/2)); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	if _, err := store.LoadPair(key); err == nil {
		t.Fatal("truncated blob decoded successfully")
	} else if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated blob: want ErrCorrupt, got %v", err)
	}
	if st := store.Stats(); st.Corrupt != 1 {
		t.Fatalf("after corruption: %+v", st)
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Fatalf("quarantine file missing: %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("corrupt blob still live under its key: %v", err)
	}
	// And the key now misses cleanly — a fresh compile can write through.
	if _, err := store.LoadPair(key); !errors.Is(err, ErrNotFound) {
		t.Fatalf("after quarantine: want ErrNotFound, got %v", err)
	}
	if err := store.Put(key, blob); err != nil {
		t.Fatalf("re-put after quarantine: %v", err)
	}
	if _, err := store.LoadPair(key); err != nil {
		t.Fatalf("load after re-put: %v", err)
	}
}

func TestStoreRejectsHostileKeys(t *testing.T) {
	store, err := OpenStore(t.TempDir(), nil)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for _, key := range []string{"", "..", "../../etc/passwd", "ABCDEF", "short", string(make([]byte, 64))} {
		if err := store.Put(key, []byte("x")); err == nil {
			t.Fatalf("Put accepted hostile key %q", key)
		}
		if _, err := store.Get(key); !errors.Is(err, ErrNotFound) {
			t.Fatalf("Get(%q): want ErrNotFound, got %v", key, err)
		}
	}
}

func TestKeyShape(t *testing.T) {
	k := Key("aaa", "bbb")
	if !validKey(k) {
		t.Fatalf("Key produced an invalid key %q", k)
	}
	if k == Key("bbb", "aaa") {
		t.Fatal("key is direction-insensitive; (src,dst) and (dst,src) must differ")
	}
}
