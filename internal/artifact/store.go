package artifact

import (
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/faultinject"
)

// Store is an on-disk blob store for pair artifacts, keyed by Key. Writes
// are atomic and durable (temp file + fsync + rename + directory fsync in
// the same directory), so a crashed or concurrent writer can never leave a
// half-written blob under a live key — even across a power cut between the
// write and the rename; blobs that fail to decode are quarantined (renamed
// aside) so one corrupt file cannot re-trip every restart.
//
// When the disk itself fails structurally (ENOSPC, read-only filesystem),
// the store degrades to memory-only mode: Put returns ErrDegraded without
// touching disk, reads keep working, and after degradedRetryAfter the next
// Put probes the disk again, clearing the degradation on success. Casts
// must never fail because the write-through cache is sick. A Store is safe
// for concurrent use.
type Store struct {
	dir    string
	logger *slog.Logger

	hits, misses, writes, corrupt atomic.Int64
	// degradedAt is the unix-nano time the store entered memory-only
	// mode, 0 while healthy.
	degradedAt atomic.Int64
}

// ErrDegraded is returned by Put while the store is in memory-only mode;
// callers should treat it as "skip the write-through" rather than a fault
// worth logging per request.
var ErrDegraded = errors.New("artifact: store degraded to memory-only mode")

// degradedRetryAfter is how long the store stays memory-only before a Put
// probes the disk again.
const degradedRetryAfter = 30 * time.Second

// StoreStats is a counter snapshot for /metrics.
type StoreStats struct {
	// Hits counts blobs found and successfully decoded.
	Hits int64
	// Misses counts lookups of keys with no stored blob.
	Misses int64
	// Writes counts blobs written through after a compile.
	Writes int64
	// Corrupt counts blobs found but rejected (corrupt or stale) and
	// quarantined.
	Corrupt int64
}

// OpenStore opens (creating if needed) an artifact store rooted at dir.
// logger may be nil.
func OpenStore(dir string, logger *slog.Logger) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("artifact: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("artifact: open store: %w", err)
	}
	return &Store{dir: dir, logger: logger}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Stats snapshots the store counters.
func (s *Store) Stats() StoreStats {
	return StoreStats{
		Hits:    s.hits.Load(),
		Misses:  s.misses.Load(),
		Writes:  s.writes.Load(),
		Corrupt: s.corrupt.Load(),
	}
}

// validKey accepts exactly the lowercase-hex shape Key produces. Keys are
// used as file names and arrive over the peer-fetch route, so anything else
// is rejected before it can touch the filesystem.
func validKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (s *Store) path(key string) string { return filepath.Join(s.dir, key+".xca") }

// Get returns the raw blob stored under key, or ErrNotFound. No counters
// move: Get serves the peer-fetch route, not the cache lookup path.
func (s *Store) Get(key string) ([]byte, error) {
	if !validKey(key) {
		return nil, fmt.Errorf("%w: invalid key %q", ErrNotFound, key)
	}
	b, err := os.ReadFile(s.path(key))
	if os.IsNotExist(err) {
		return nil, ErrNotFound
	}
	if err != nil {
		return nil, fmt.Errorf("artifact: read %s: %w", key, err)
	}
	return b, nil
}

// LoadPair loads and fully decodes the artifact under key. A missing blob
// counts a miss and returns ErrNotFound; a blob that fails to decode counts
// a corruption, is quarantined, and returns the decode error; a good blob
// counts a hit.
func (s *Store) LoadPair(key string) (*Decoded, error) {
	blob, err := s.Get(key)
	if err != nil {
		s.misses.Add(1)
		return nil, err
	}
	dec, err := Decode(blob)
	if err != nil {
		s.corrupt.Add(1)
		s.quarantine(key, err)
		return nil, err
	}
	s.hits.Add(1)
	return dec, nil
}

// quarantine moves a rejected blob aside (key.xca → key.xca.corrupt) so the
// next lookup misses cleanly and the bytes stay available for forensics.
func (s *Store) quarantine(key string, cause error) {
	p := s.path(key)
	if err := os.Rename(p, p+".corrupt"); err != nil && s.logger != nil {
		s.logger.Warn("artifact: quarantine failed", "key", key, "error", err)
		return
	}
	if s.logger != nil {
		s.logger.Warn("artifact: blob quarantined", "key", key, "cause", cause)
	}
}

// Degraded reports whether the store is currently in memory-only mode.
// Exposed as the castd_artifact_store_degraded gauge.
func (s *Store) Degraded() bool { return s.degradedAt.Load() != 0 }

// degrade trips the store into memory-only mode (idempotent).
func (s *Store) degrade(cause error) {
	if s.degradedAt.CompareAndSwap(0, time.Now().UnixNano()) && s.logger != nil {
		s.logger.Error("artifact: store degraded to memory-only mode", "cause", cause)
	}
}

// structuralDiskError reports whether err means the disk itself is sick
// (full or read-only) rather than one write having bad luck.
func structuralDiskError(err error) bool {
	return errors.Is(err, syscall.ENOSPC) || errors.Is(err, syscall.EROFS) ||
		errors.Is(err, syscall.EDQUOT) || errors.Is(err, os.ErrPermission)
}

// putErr funnels every Put failure: structural disk errors trip degraded
// mode, everything else passes through untouched.
func (s *Store) putErr(key string, err error) error {
	if structuralDiskError(err) {
		s.degrade(err)
	}
	return fmt.Errorf("artifact: write %s: %w", key, err)
}

// Put atomically and durably writes blob under key: the bytes land in a
// temp file in the store directory, are fsynced, renamed into place, and
// the directory entry is fsynced — so readers only ever see complete
// blobs, and a crash right after Put returns cannot lose or tear the
// publish. Overwrites any previous blob under the key.
//
// While the store is degraded (disk full / read-only), Put returns
// ErrDegraded immediately; every degradedRetryAfter one Put is allowed
// through to probe the disk, and success restores normal operation.
func (s *Store) Put(key string, blob []byte) error {
	if !validKey(key) {
		return fmt.Errorf("artifact: invalid key %q", key)
	}
	if at := s.degradedAt.Load(); at != 0 {
		if time.Since(time.Unix(0, at)) < degradedRetryAfter {
			return ErrDegraded
		}
		// Probe window: claim it by bumping the timestamp so concurrent
		// Puts don't all pile onto a sick disk at once.
		if !s.degradedAt.CompareAndSwap(at, time.Now().UnixNano()) {
			return ErrDegraded
		}
	}
	tmp, err := os.CreateTemp(s.dir, key+".tmp-*")
	if err != nil {
		return s.putErr(key, err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := faultinject.DiskWriter(tmp).Write(blob); err != nil {
		tmp.Close()
		return s.putErr(key, err)
	}
	// Sync before rename: otherwise the rename can be durable while the
	// data is not, and a power cut publishes a torn blob under a live key.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return s.putErr(key, err)
	}
	if err := tmp.Close(); err != nil {
		return s.putErr(key, err)
	}
	if err := os.Rename(tmp.Name(), s.path(key)); err != nil {
		return s.putErr(key, err)
	}
	s.syncDir()
	s.writes.Add(1)
	if s.degradedAt.Swap(0) != 0 && s.logger != nil {
		s.logger.Info("artifact: store recovered from memory-only mode")
	}
	return nil
}

// syncDir fsyncs the store directory so a just-renamed entry survives a
// crash. Failure is logged, not returned: the blob is already readable,
// only its crash-durability is in doubt.
func (s *Store) syncDir() {
	d, err := os.Open(s.dir)
	if err == nil {
		err = d.Sync()
		d.Close()
	}
	if err != nil && s.logger != nil {
		s.logger.Warn("artifact: directory fsync failed", "dir", s.dir, "error", err)
	}
}
