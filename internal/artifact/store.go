package artifact

import (
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sync/atomic"
)

// Store is an on-disk blob store for pair artifacts, keyed by Key. Writes
// are atomic (temp file + rename in the same directory), so a crashed or
// concurrent writer can never leave a half-written blob under a live key;
// blobs that fail to decode are quarantined (renamed aside) so one corrupt
// file cannot re-trip every restart. A Store is safe for concurrent use.
type Store struct {
	dir    string
	logger *slog.Logger

	hits, misses, writes, corrupt atomic.Int64
}

// StoreStats is a counter snapshot for /metrics.
type StoreStats struct {
	// Hits counts blobs found and successfully decoded.
	Hits int64
	// Misses counts lookups of keys with no stored blob.
	Misses int64
	// Writes counts blobs written through after a compile.
	Writes int64
	// Corrupt counts blobs found but rejected (corrupt or stale) and
	// quarantined.
	Corrupt int64
}

// OpenStore opens (creating if needed) an artifact store rooted at dir.
// logger may be nil.
func OpenStore(dir string, logger *slog.Logger) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("artifact: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("artifact: open store: %w", err)
	}
	return &Store{dir: dir, logger: logger}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Stats snapshots the store counters.
func (s *Store) Stats() StoreStats {
	return StoreStats{
		Hits:    s.hits.Load(),
		Misses:  s.misses.Load(),
		Writes:  s.writes.Load(),
		Corrupt: s.corrupt.Load(),
	}
}

// validKey accepts exactly the lowercase-hex shape Key produces. Keys are
// used as file names and arrive over the peer-fetch route, so anything else
// is rejected before it can touch the filesystem.
func validKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (s *Store) path(key string) string { return filepath.Join(s.dir, key+".xca") }

// Get returns the raw blob stored under key, or ErrNotFound. No counters
// move: Get serves the peer-fetch route, not the cache lookup path.
func (s *Store) Get(key string) ([]byte, error) {
	if !validKey(key) {
		return nil, fmt.Errorf("%w: invalid key %q", ErrNotFound, key)
	}
	b, err := os.ReadFile(s.path(key))
	if os.IsNotExist(err) {
		return nil, ErrNotFound
	}
	if err != nil {
		return nil, fmt.Errorf("artifact: read %s: %w", key, err)
	}
	return b, nil
}

// LoadPair loads and fully decodes the artifact under key. A missing blob
// counts a miss and returns ErrNotFound; a blob that fails to decode counts
// a corruption, is quarantined, and returns the decode error; a good blob
// counts a hit.
func (s *Store) LoadPair(key string) (*Decoded, error) {
	blob, err := s.Get(key)
	if err != nil {
		s.misses.Add(1)
		return nil, err
	}
	dec, err := Decode(blob)
	if err != nil {
		s.corrupt.Add(1)
		s.quarantine(key, err)
		return nil, err
	}
	s.hits.Add(1)
	return dec, nil
}

// quarantine moves a rejected blob aside (key.xca → key.xca.corrupt) so the
// next lookup misses cleanly and the bytes stay available for forensics.
func (s *Store) quarantine(key string, cause error) {
	p := s.path(key)
	if err := os.Rename(p, p+".corrupt"); err != nil && s.logger != nil {
		s.logger.Warn("artifact: quarantine failed", "key", key, "error", err)
		return
	}
	if s.logger != nil {
		s.logger.Warn("artifact: blob quarantined", "key", key, "cause", cause)
	}
}

// Put atomically writes blob under key: the bytes land in a temp file in
// the store directory and are renamed into place, so readers only ever see
// complete blobs. Overwrites any previous blob under the key.
func (s *Store) Put(key string, blob []byte) error {
	if !validKey(key) {
		return fmt.Errorf("artifact: invalid key %q", key)
	}
	tmp, err := os.CreateTemp(s.dir, key+".tmp-*")
	if err != nil {
		return fmt.Errorf("artifact: write %s: %w", key, err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		return fmt.Errorf("artifact: write %s: %w", key, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("artifact: write %s: %w", key, err)
	}
	if err := os.Rename(tmp.Name(), s.path(key)); err != nil {
		return fmt.Errorf("artifact: write %s: %w", key, err)
	}
	s.writes.Add(1)
	return nil
}
