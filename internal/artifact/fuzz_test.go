package artifact

import (
	"encoding/binary"
	"hash/crc32"
	"testing"
)

// FuzzArtifactDecode: arbitrary bytes must error cleanly out of Decode and
// Inspect — never panic, never allocate proportionally to a hostile length
// field. To let the fuzzer reach past the CRC gate into the section
// decoders, each input is also retried with its header rewritten to carry a
// valid magic, version, length and payload CRC.
func FuzzArtifactDecode(f *testing.F) {
	blob := encodeFigPair(f)
	f.Add(blob)
	f.Add(blob[:len(blob)/2])
	f.Add(blob[:headerSize])
	f.Add(blob[:4])
	f.Add([]byte{})
	f.Add([]byte("XCAF"))
	f.Add(append([]byte("XCAF\x01\x00\x00\x00"), make([]byte, 12)...))

	f.Fuzz(func(t *testing.T, data []byte) {
		if _, err := Decode(data); err == nil {
			if _, err := Inspect(data); err != nil {
				t.Fatalf("decodable blob not inspectable: %v", err)
			}
		}
		_, _ = Inspect(data)

		// Re-run with a repaired header so mutations exercise the payload
		// decoders, not just the CRC check.
		if len(data) > headerSize {
			fixed := append([]byte(nil), data...)
			copy(fixed, magic[:])
			binary.LittleEndian.PutUint32(fixed[4:], Version)
			payload := fixed[headerSize:]
			binary.LittleEndian.PutUint32(fixed[8:], crc32.ChecksumIEEE(payload))
			binary.LittleEndian.PutUint64(fixed[12:], uint64(len(payload)))
			_, _ = Decode(fixed)
			_, _ = Inspect(fixed)
		}
	})
}
