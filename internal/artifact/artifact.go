// Package artifact persists the expensive static state of a compiled
// (source, target) schema pair — the R_sub/R_dis relations of EDBT'04 §3.2
// and the per-type-pair immediate decision automata of §4 — as a versioned,
// CRC-checked binary blob, plus an on-disk store for those blobs.
//
// The economics mirror the paper's: preprocessing a pair costs automaton
// products and relation fixpoints, validation afterwards is nearly free. An
// artifact makes the preprocessing durable — a restarted (or peer) daemon
// loads the relations and product IDAs from the blob instead of recomputing
// them. The cheap parts of a pair (parsing the schema texts into abstract
// schemas) are *not* serialized: both texts travel in the blob and are
// re-parsed on decode, which deterministically reproduces the alphabet
// interning and per-type content DFAs the serialized product automata index
// into. A fingerprint over that reconstruction guards the assumption: if
// re-parsing yields different automata (a compiler change between versions,
// say), the blob is stale and the caller falls back to a fresh compile.
//
// Blobs are addressed by Key, a content hash of the two schemas' registry
// hashes — the same pair key on every node, which is what lets clustered
// daemons fetch each other's artifacts.
package artifact

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"

	revalidate "repro"
)

// Format-version history. Decoders accept exactly the current version;
// anything else is ErrStale and triggers a recompile (artifacts are caches,
// not archives — there is no cross-version migration).
const Version = 1

// Errors classifying why a blob was rejected. Both classes must end in a
// fallback compile, never a panic; the store additionally quarantines the
// offending file.
var (
	// ErrNotFound reports that the store holds no blob under the key.
	ErrNotFound = errors.New("artifact: not found")
	// ErrCorrupt reports structurally bad bytes: wrong magic, CRC mismatch,
	// truncated or inconsistent sections.
	ErrCorrupt = errors.New("artifact: corrupt")
	// ErrStale reports a well-formed blob this build cannot trust: a
	// different format version, or a reconstruction fingerprint mismatch
	// (re-parsing the embedded schema texts no longer reproduces the
	// automata the serialized state indexes into).
	ErrStale = errors.New("artifact: stale")
)

// SchemaInfo identifies one schema of the pair by its source text — enough
// to reconstruct the abstract schema deterministically on decode.
type SchemaInfo struct {
	Format  string // "xsd" or "dtd"
	DTDRoot string // root element for DTD texts without a DOCTYPE
	Text    string
	Hash    string // the registry's content hash, carried for addressing
}

// Key derives the content-hash address of a pair artifact from the two
// schemas' registry content hashes. Every node computes the same key for
// the same pair, independent of schema ids.
func Key(srcHash, dstHash string) string {
	h := sha256.Sum256([]byte("xcaf-v1\x00" + srcHash + "\x00" + dstHash))
	return hex.EncodeToString(h[:])
}

// Decoded is a fully reconstructed pair: both validation modes assembled
// around the deserialized relations and caster table, ready to serve casts
// with zero recompilation.
type Decoded struct {
	Src, Dst             SchemaInfo
	SrcSchema, DstSchema *revalidate.Schema
	Caster               *revalidate.Caster
	Stream               *revalidate.StreamCaster
	Report               revalidate.PairReport
	// Size is the encoded blob length in bytes — the real cache footprint
	// the registry charges against its byte budget.
	Size int
}
