package artifact

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash"
	"hash/crc32"
	"sort"

	revalidate "repro"
	"repro/internal/castmap"
	"repro/internal/fa"
	"repro/internal/regexpsym"
	"repro/internal/schema"
	"repro/internal/strcast"
	"repro/internal/subsume"
)

// Wire layout:
//
//	header  magic "XCAF" | uint32 version | uint32 crc32(payload) | uint64 payload length
//	payload schemas | alphabet | fingerprint | relations | casters | report
//
// All integers in the payload are varints (unsigned unless the value can be
// fa.Dead); strings and bitsets are length-prefixed. Caster entries are
// sorted by (source type, target type), and every count is validated
// against both the remaining input (so hostile lengths cannot drive
// allocations) and the reconstructed schemas (so a blob cannot index out of
// range) — encode→decode→encode is byte-identical.

var magic = [4]byte{'X', 'C', 'A', 'F'}

const headerSize = 4 + 4 + 4 + 8

// Decoder bounds, far above anything the schema layers produce but small
// enough that a hostile length fails fast.
const (
	maxStringLen = 1 << 28 // schema texts, report JSON
	maxCount     = 1 << 26 // states, types, symbols, casters
)

// ---------------------------------------------------------------- encoding

type writer struct{ buf []byte }

func (w *writer) uvarint(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }
func (w *writer) varint(v int64)   { w.buf = binary.AppendVarint(w.buf, v) }
func (w *writer) raw(b []byte)     { w.buf = append(w.buf, b...) }
func (w *writer) str(s string)     { w.uvarint(uint64(len(s))); w.buf = append(w.buf, s...) }
func (w *writer) blob(b []byte)    { w.uvarint(uint64(len(b))); w.raw(b) }

func (w *writer) bits(b []bool) {
	w.uvarint(uint64(len(b)))
	var cur byte
	for i, v := range b {
		if v {
			cur |= 1 << (i % 8)
		}
		if i%8 == 7 {
			w.buf = append(w.buf, cur)
			cur = 0
		}
	}
	if len(b)%8 != 0 {
		w.buf = append(w.buf, cur)
	}
}

func (w *writer) i32s(v []int32) {
	w.uvarint(uint64(len(v)))
	for _, x := range v {
		w.varint(int64(x))
	}
}

// Encode serializes a compiled pair. The caster must have been built the
// registry way — its two schemas alone in one universe — or decoding will
// (correctly) classify the blob stale when re-parsing reproduces a
// different alphabet.
func Encode(src, dst SchemaInfo, caster *revalidate.Caster, report revalidate.PairReport) ([]byte, error) {
	rel, table := caster.Parts()
	ss, ds := rel.Src, rel.Dst

	w := &writer{buf: make([]byte, 0, 4096)}

	// schemas
	for _, in := range []SchemaInfo{src, dst} {
		w.str(in.Format)
		w.str(in.DTDRoot)
		w.str(in.Text)
		w.str(in.Hash)
	}

	// alphabet
	names := ss.Alpha.Names()
	w.uvarint(uint64(len(names)))
	for _, n := range names {
		w.str(n)
	}

	// fingerprint
	fp := fingerprint(ss, ds)
	w.raw(fp[:])

	// relations
	sub, nondis := rel.Matrices()
	w.uvarint(uint64(len(ss.Types)))
	w.uvarint(uint64(len(ds.Types)))
	w.bits(flatten(sub))
	w.bits(flatten(nondis))

	// casters, sorted by (source type, target type)
	snap := table.Snapshot()
	pairs := make([]castmap.Pair, 0, len(snap))
	for p := range snap {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].Src != pairs[j].Src {
			return pairs[i].Src < pairs[j].Src
		}
		return pairs[i].Dst < pairs[j].Dst
	})
	w.uvarint(uint64(len(pairs)))
	for _, p := range pairs {
		c := snap[p]
		if c.CImmed == nil || c.CImmed.Pairs == nil || c.BImmed == nil {
			return nil, fmt.Errorf("artifact: caster (%d,%d) lacks product bookkeeping", p.Src, p.Dst)
		}
		w.uvarint(uint64(p.Src))
		w.uvarint(uint64(p.Dst))
		w.bits(c.BImmed.IA)
		w.bits(c.BImmed.IR)
		d := c.CImmed.D
		start, accept, trans := d.Table()
		w.uvarint(uint64(d.NumSymbols()))
		w.uvarint(uint64(d.NumStates()))
		w.varint(int64(start))
		w.bits(accept)
		w.i32s(trans)
		w.i32s(c.CImmed.Pairs.PairTable())
		w.bits(c.CImmed.IA)
		w.bits(c.CImmed.IR)
	}

	// report
	rj, err := json.Marshal(report)
	if err != nil {
		return nil, fmt.Errorf("artifact: marshal report: %w", err)
	}
	w.blob(rj)

	// header
	out := make([]byte, headerSize, headerSize+len(w.buf))
	copy(out, magic[:])
	binary.LittleEndian.PutUint32(out[4:], Version)
	binary.LittleEndian.PutUint32(out[8:], crc32.ChecksumIEEE(w.buf))
	binary.LittleEndian.PutUint64(out[12:], uint64(len(w.buf)))
	return append(out, w.buf...), nil
}

func flatten(m [][]bool) []bool {
	var n int
	for _, row := range m {
		n += len(row)
	}
	out := make([]bool, 0, n)
	for _, row := range m {
		out = append(out, row...)
	}
	return out
}

// ---------------------------------------------------------------- decoding

type reader struct {
	data []byte
	off  int
}

func (r *reader) remaining() int { return len(r.data) - r.off }

func (r *reader) uvarint(what string) (uint64, error) {
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: truncated varint (%s)", ErrCorrupt, what)
	}
	r.off += n
	return v, nil
}

func (r *reader) varint(what string) (int64, error) {
	v, n := binary.Varint(r.data[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: truncated varint (%s)", ErrCorrupt, what)
	}
	r.off += n
	return v, nil
}

// count reads an unsigned count and bounds it: by the global cap, by the
// caller's per-element size against the remaining input, so no count can
// request an allocation larger than the blob itself.
func (r *reader) count(minBytesPerElem int, what string) (int, error) {
	v, err := r.uvarint(what)
	if err != nil {
		return 0, err
	}
	if v > maxCount {
		return 0, fmt.Errorf("%w: %s count %d exceeds limit", ErrCorrupt, what, v)
	}
	if minBytesPerElem > 0 && v > uint64(r.remaining()/minBytesPerElem)+1 {
		return 0, fmt.Errorf("%w: %s count %d exceeds input", ErrCorrupt, what, v)
	}
	return int(v), nil
}

func (r *reader) bytesN(n int, what string) ([]byte, error) {
	if n < 0 || n > r.remaining() {
		return nil, fmt.Errorf("%w: truncated %s", ErrCorrupt, what)
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *reader) str(what string) (string, error) {
	n, err := r.uvarint(what)
	if err != nil {
		return "", err
	}
	if n > maxStringLen || n > uint64(r.remaining()) {
		return "", fmt.Errorf("%w: %s length %d exceeds input", ErrCorrupt, what, n)
	}
	b, err := r.bytesN(int(n), what)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func (r *reader) bits(what string) ([]bool, error) {
	n, err := r.uvarint(what)
	if err != nil {
		return nil, err
	}
	need := (n + 7) / 8
	if n > maxCount*8 || need > uint64(r.remaining()) {
		return nil, fmt.Errorf("%w: %s bitset length %d exceeds input", ErrCorrupt, what, n)
	}
	packed, err := r.bytesN(int(need), what)
	if err != nil {
		return nil, err
	}
	out := make([]bool, n)
	for i := range out {
		out[i] = packed[i/8]&(1<<(i%8)) != 0
	}
	return out, nil
}

func (r *reader) i32s(what string) ([]int32, error) {
	n, err := r.count(1, what)
	if err != nil {
		return nil, err
	}
	out := make([]int32, n)
	for i := range out {
		v, err := r.varint(what)
		if err != nil {
			return nil, err
		}
		if v < -(1<<31) || v >= 1<<31 {
			return nil, fmt.Errorf("%w: %s value %d overflows int32", ErrCorrupt, what, v)
		}
		out[i] = int32(v)
	}
	return out, nil
}

// rawArtifact is the parsed-but-not-reconstructed payload: everything the
// blob says, before any schema is re-parsed. Inspect stops here; Decode
// continues into reconstruction.
type rawArtifact struct {
	src, dst    SchemaInfo
	alphabet    []string
	fingerprint [32]byte
	nSrc, nDst  int
	sub, nondis []bool
	casters     []rawCaster
	reportJSON  []byte
	sections    []SectionInfo
}

type rawCaster struct {
	srcType, dstType     int
	bIA, bIR             []bool
	pNumSymbols, pStates int
	pStart               int
	pAccept              []bool
	pTrans               []int32
	pairTable            []int32
	cIA, cIR             []bool
}

// SectionInfo reports one payload section's size, for artifact inspection.
type SectionInfo struct {
	Name  string `json:"name"`
	Bytes int    `json:"bytes"`
}

// parse validates the header and CRC and splits the payload into its raw
// sections. It never parses schema texts and allocates at most
// proportionally to the input length.
func parse(blob []byte) (*rawArtifact, error) {
	if len(blob) < headerSize {
		return nil, fmt.Errorf("%w: %d bytes, shorter than the %d-byte header", ErrCorrupt, len(blob), headerSize)
	}
	if !bytes.Equal(blob[:4], magic[:]) {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, blob[:4])
	}
	if v := binary.LittleEndian.Uint32(blob[4:]); v != Version {
		return nil, fmt.Errorf("%w: format version %d (this build reads %d)", ErrStale, v, Version)
	}
	wantCRC := binary.LittleEndian.Uint32(blob[8:])
	plen := binary.LittleEndian.Uint64(blob[12:])
	if plen != uint64(len(blob)-headerSize) {
		return nil, fmt.Errorf("%w: payload length %d, have %d bytes", ErrCorrupt, plen, len(blob)-headerSize)
	}
	payload := blob[headerSize:]
	if got := crc32.ChecksumIEEE(payload); got != wantCRC {
		return nil, fmt.Errorf("%w: CRC mismatch (stored %08x, computed %08x)", ErrCorrupt, wantCRC, got)
	}

	r := &reader{data: payload}
	a := &rawArtifact{}
	mark := 0
	section := func(name string) {
		a.sections = append(a.sections, SectionInfo{Name: name, Bytes: r.off - mark})
		mark = r.off
	}

	var err error
	for _, in := range []*SchemaInfo{&a.src, &a.dst} {
		if in.Format, err = r.str("schema format"); err != nil {
			return nil, err
		}
		if in.DTDRoot, err = r.str("schema dtd root"); err != nil {
			return nil, err
		}
		if in.Text, err = r.str("schema text"); err != nil {
			return nil, err
		}
		if in.Hash, err = r.str("schema hash"); err != nil {
			return nil, err
		}
	}
	section("schemas")

	nNames, err := r.count(1, "alphabet")
	if err != nil {
		return nil, err
	}
	a.alphabet = make([]string, nNames)
	for i := range a.alphabet {
		if a.alphabet[i], err = r.str("alphabet name"); err != nil {
			return nil, err
		}
	}
	section("alphabet")

	fp, err := r.bytesN(32, "fingerprint")
	if err != nil {
		return nil, err
	}
	copy(a.fingerprint[:], fp)
	section("fingerprint")

	if a.nSrc, err = r.count(0, "source types"); err != nil {
		return nil, err
	}
	if a.nDst, err = r.count(0, "target types"); err != nil {
		return nil, err
	}
	if a.sub, err = r.bits("R_sub"); err != nil {
		return nil, err
	}
	if a.nondis, err = r.bits("R_nondis"); err != nil {
		return nil, err
	}
	if len(a.sub) != a.nSrc*a.nDst || len(a.nondis) != a.nSrc*a.nDst {
		return nil, fmt.Errorf("%w: relation matrices sized %d/%d for %d×%d types",
			ErrCorrupt, len(a.sub), len(a.nondis), a.nSrc, a.nDst)
	}
	section("relations")

	nCasters, err := r.count(8, "casters")
	if err != nil {
		return nil, err
	}
	a.casters = make([]rawCaster, nCasters)
	for i := range a.casters {
		c := &a.casters[i]
		if c.srcType, err = r.count(0, "caster source type"); err != nil {
			return nil, err
		}
		if c.dstType, err = r.count(0, "caster target type"); err != nil {
			return nil, err
		}
		if c.bIA, err = r.bits("b_immed IA"); err != nil {
			return nil, err
		}
		if c.bIR, err = r.bits("b_immed IR"); err != nil {
			return nil, err
		}
		if c.pNumSymbols, err = r.count(0, "product symbols"); err != nil {
			return nil, err
		}
		if c.pStates, err = r.count(0, "product states"); err != nil {
			return nil, err
		}
		st, err := r.varint("product start")
		if err != nil {
			return nil, err
		}
		if st < fa.Dead || st > int64(c.pStates) {
			return nil, fmt.Errorf("%w: product start %d out of range", ErrCorrupt, st)
		}
		c.pStart = int(st)
		if c.pAccept, err = r.bits("product accept"); err != nil {
			return nil, err
		}
		if c.pTrans, err = r.i32s("product transitions"); err != nil {
			return nil, err
		}
		if c.pairTable, err = r.i32s("product pairs"); err != nil {
			return nil, err
		}
		if c.cIA, err = r.bits("c_immed IA"); err != nil {
			return nil, err
		}
		if c.cIR, err = r.bits("c_immed IR"); err != nil {
			return nil, err
		}
		if len(c.pAccept) != c.pStates ||
			len(c.pTrans) != c.pStates*c.pNumSymbols ||
			len(c.pairTable) != 2*c.pStates ||
			len(c.cIA) != c.pStates || len(c.cIR) != c.pStates {
			return nil, fmt.Errorf("%w: caster %d sections inconsistent with %d product states",
				ErrCorrupt, i, c.pStates)
		}
	}
	section("casters")

	rj, err := r.str("report")
	if err != nil {
		return nil, err
	}
	a.reportJSON = []byte(rj)
	section("report")

	if r.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after report", ErrCorrupt, r.remaining())
	}
	return a, nil
}

// Decode reconstructs a fully working pair from an encoded blob. Arbitrary
// input errors cleanly (never panics); a version or fingerprint mismatch is
// ErrStale, structurally bad bytes are ErrCorrupt. Both mean: recompile.
func Decode(blob []byte) (*Decoded, error) {
	a, err := parse(blob)
	if err != nil {
		return nil, err
	}
	return a.restore(len(blob))
}

func (a *rawArtifact) restore(size int) (*Decoded, error) {
	// Re-parse both texts, source first — the same order the registry
	// compiles in, so alphabet interning and TypeIDs reproduce exactly.
	u := revalidate.NewUniverse()
	srcS, err := loadInfo(u, a.src)
	if err != nil {
		return nil, fmt.Errorf("%w: source schema: %v", ErrStale, err)
	}
	dstS, err := loadInfo(u, a.dst)
	if err != nil {
		return nil, fmt.Errorf("%w: target schema: %v", ErrStale, err)
	}
	ss, ds := srcS.Abstract(), dstS.Abstract()
	ss.WidenToAlphabet()
	ds.WidenToAlphabet()

	// The serialized automata index into the reconstruction by symbol and
	// type id; verify the reconstruction is the one the encoder saw.
	names := ss.Alpha.Names()
	if len(names) != len(a.alphabet) {
		return nil, fmt.Errorf("%w: re-parsed alphabet has %d symbols, blob recorded %d", ErrStale, len(names), len(a.alphabet))
	}
	for i, n := range names {
		if n != a.alphabet[i] {
			return nil, fmt.Errorf("%w: alphabet symbol %d is %q, blob recorded %q", ErrStale, i, n, a.alphabet[i])
		}
	}
	if fp := fingerprint(ss, ds); fp != a.fingerprint {
		return nil, fmt.Errorf("%w: reconstruction fingerprint mismatch", ErrStale)
	}
	if a.nSrc != len(ss.Types) || a.nDst != len(ds.Types) {
		return nil, fmt.Errorf("%w: blob records %d×%d types, reconstruction has %d×%d",
			ErrStale, a.nSrc, a.nDst, len(ss.Types), len(ds.Types))
	}

	rel, err := subsume.Restore(ss, ds, unflatten(a.sub, a.nSrc, a.nDst), unflatten(a.nondis, a.nSrc, a.nDst))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}

	casters := make(map[castmap.Pair]*strcast.Caster, len(a.casters))
	for i := range a.casters {
		rc := &a.casters[i]
		c, key, err := rc.restore(ss, ds)
		if err != nil {
			return nil, err
		}
		if _, dup := casters[key]; dup {
			return nil, fmt.Errorf("%w: duplicate caster for type pair (%d,%d)", ErrCorrupt, key.Src, key.Dst)
		}
		casters[key] = c
	}
	table := castmap.Restore(ss, ds, casters)

	c, sc, err := revalidate.RestoreCasterPair(srcS, dstS, rel, table)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	var report revalidate.PairReport
	if err := json.Unmarshal(a.reportJSON, &report); err != nil {
		return nil, fmt.Errorf("%w: report: %v", ErrCorrupt, err)
	}
	return &Decoded{
		Src: a.src, Dst: a.dst,
		SrcSchema: srcS, DstSchema: dstS,
		Caster: c, Stream: sc,
		Report: report,
		Size:   size,
	}, nil
}

func (rc *rawCaster) restore(ss, ds *schema.Schema) (*strcast.Caster, castmap.Pair, error) {
	var zero castmap.Pair
	if rc.srcType >= len(ss.Types) || rc.dstType >= len(ds.Types) {
		return nil, zero, fmt.Errorf("%w: caster type pair (%d,%d) out of range", ErrCorrupt, rc.srcType, rc.dstType)
	}
	a := ss.Types[rc.srcType].DFA
	b := ds.Types[rc.dstType].DFA
	if a == nil || b == nil {
		return nil, zero, fmt.Errorf("%w: caster type pair (%d,%d) is not complex/complex", ErrStale, rc.srcType, rc.dstType)
	}
	if rc.pNumSymbols != a.NumSymbols() {
		return nil, zero, fmt.Errorf("%w: product over %d symbols, reconstruction has %d", ErrStale, rc.pNumSymbols, a.NumSymbols())
	}
	if len(rc.bIA) != b.NumStates() || len(rc.bIR) != b.NumStates() {
		return nil, zero, fmt.Errorf("%w: b_immed sets sized %d/%d for %d target states",
			ErrStale, len(rc.bIA), len(rc.bIR), b.NumStates())
	}
	d, err := fa.RestoreDFA(rc.pNumSymbols, rc.pStart, rc.pAccept, rc.pTrans)
	if err != nil {
		return nil, zero, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	prod, err := fa.RestoreProduct(a, b, d, rc.pairTable)
	if err != nil {
		return nil, zero, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	cImmed := &fa.IDA{D: d, IA: rc.cIA, IR: rc.cIR, Pairs: prod}
	bImmed := &fa.IDA{D: b, IA: rc.bIA, IR: rc.bIR}
	c, err := strcast.Restore(a, b, cImmed, bImmed)
	if err != nil {
		return nil, zero, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return c, castmap.Pair{Src: schema.TypeID(rc.srcType), Dst: schema.TypeID(rc.dstType)}, nil
}

func loadInfo(u *revalidate.Universe, in SchemaInfo) (*revalidate.Schema, error) {
	switch in.Format {
	case "xsd":
		return u.LoadXSDString(in.Text)
	case "dtd":
		return u.LoadDTD(in.Text, in.DTDRoot)
	default:
		return nil, fmt.Errorf("unknown schema format %q", in.Format)
	}
}

func unflatten(flat []bool, n, m int) [][]bool {
	rows := make([][]bool, n)
	for i := range rows {
		rows[i] = flat[i*m : (i+1)*m : (i+1)*m]
	}
	return rows
}

// ------------------------------------------------------------- fingerprint

// fingerprint hashes everything the serialized state indexes into: the
// alphabet, and per type the name, facets, content model, compiled DFA
// table, child-type map and roots. Decode recomputes it over the re-parsed
// schemas; any drift (a changed regex compiler, minimizer, or facet
// renderer between builds) makes the blob stale rather than subtly wrong.
func fingerprint(src, dst *schema.Schema) [32]byte {
	h := sha256.New()
	for _, n := range src.Alpha.Names() {
		hstr(h, n)
	}
	hashSchema(h, src)
	hashSchema(h, dst)
	var out [32]byte
	h.Sum(out[:0])
	return out
}

func hstr(h hash.Hash, s string) {
	hint(h, int64(len(s)))
	h.Write([]byte(s))
}

func hint(h hash.Hash, v int64) {
	var b [binary.MaxVarintLen64]byte
	h.Write(b[:binary.PutVarint(b[:], v)])
}

func hashSchema(h hash.Hash, s *schema.Schema) {
	hint(h, int64(len(s.Types)))
	for _, t := range s.Types {
		hstr(h, t.Name)
		if t.Simple {
			hint(h, 1)
			if t.Value != nil {
				hstr(h, t.Value.String())
			} else {
				hstr(h, "")
			}
			continue
		}
		hint(h, 0)
		hstr(h, regexpsym.String(t.Content))
		start, accept, trans := t.DFA.Table()
		hint(h, int64(t.DFA.NumSymbols()))
		hint(h, int64(start))
		hint(h, int64(len(accept)))
		for _, a := range accept {
			if a {
				h.Write([]byte{1})
			} else {
				h.Write([]byte{0})
			}
		}
		for _, tr := range trans {
			hint(h, int64(tr))
		}
		syms := make([]int, 0, len(t.Child))
		for sym := range t.Child {
			syms = append(syms, int(sym))
		}
		sort.Ints(syms)
		for _, sym := range syms {
			hint(h, int64(sym))
			hint(h, int64(t.Child[fa.Symbol(sym)]))
		}
	}
	roots := make([]int, 0, len(s.Roots))
	for sym := range s.Roots {
		roots = append(roots, int(sym))
	}
	sort.Ints(roots)
	for _, sym := range roots {
		hint(h, int64(sym))
		hint(h, int64(s.Roots[fa.Symbol(sym)]))
	}
}
