package artifact

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"reflect"
	"strings"
	"testing"

	revalidate "repro"
	"repro/internal/wgen"
)

// schemaInfo mirrors the registry's content hashing for a schema text.
func schemaInfo(format, root, text string) SchemaInfo {
	h := sha256.Sum256([]byte(format + "\x00" + root + "\x00" + text))
	return SchemaInfo{Format: format, DTDRoot: root, Text: text, Hash: hex.EncodeToString(h[:])}
}

// figPair compiles the paper's Figure 1a (billTo optional) → Figure 2
// (billTo required) pair exactly the way the registry does: both texts
// alone in one fresh universe, source first.
func figPair(t testing.TB) (src, dst SchemaInfo, caster *revalidate.Caster, report revalidate.PairReport) {
	t.Helper()
	src = schemaInfo("xsd", "", wgen.Figure2XSD(true, 100))
	dst = schemaInfo("xsd", "", wgen.Figure2XSD(false, 100))
	u := revalidate.NewUniverse()
	ss, err := u.LoadXSDString(src.Text)
	if err != nil {
		t.Fatalf("load source: %v", err)
	}
	ds, err := u.LoadXSDString(dst.Text)
	if err != nil {
		t.Fatalf("load target: %v", err)
	}
	c, _, err := revalidate.NewCasterPair(ss, ds)
	if err != nil {
		t.Fatalf("caster pair: %v", err)
	}
	return src, dst, c, c.Report()
}

func encodeFigPair(t testing.TB) []byte {
	t.Helper()
	src, dst, c, report := figPair(t)
	blob, err := Encode(src, dst, c, report)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	return blob
}

func poXML(withBill bool) string {
	return string(wgen.POXMLBytes(wgen.PODocument(wgen.PODocOptions{Items: 3, IncludeBillTo: withBill, Seed: 1})))
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	src, dst, fresh, report := figPair(t)
	blob, err := Encode(src, dst, fresh, report)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	dec, err := Decode(blob)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if dec.Size != len(blob) {
		t.Fatalf("decoded size %d, blob is %d bytes", dec.Size, len(blob))
	}
	if dec.Src != src || dec.Dst != dst {
		t.Fatal("schema infos not preserved")
	}
	if !reflect.DeepEqual(dec.Report, report) {
		t.Fatalf("report not preserved:\n got %+v\nwant %+v", dec.Report, report)
	}

	// The restored pair must validate identically to the fresh one — same
	// verdicts and the same work counters, which only match if the
	// relations and IDAs (not just the schemas) were restored faithfully.
	valid, err := revalidate.ParseDocumentString(poXML(true))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	invalid, err := revalidate.ParseDocumentString(poXML(false))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	freshStats, err := fresh.ValidateStats(valid)
	if err != nil {
		t.Fatalf("fresh caster rejected valid doc: %v", err)
	}
	decStats, err := dec.Caster.ValidateStats(valid)
	if err != nil {
		t.Fatalf("restored caster rejected valid doc: %v", err)
	}
	if freshStats != decStats {
		t.Fatalf("work stats diverge:\nfresh    %+v\nrestored %+v", freshStats, decStats)
	}
	if err := dec.Caster.Validate(invalid); err == nil {
		t.Fatal("restored caster accepted billTo-less doc against required-billTo target")
	}
	if _, err := dec.Stream.Validate(strings.NewReader(poXML(true))); err != nil {
		t.Fatalf("restored stream caster rejected valid doc: %v", err)
	}
	if _, err := dec.Stream.Validate(strings.NewReader(poXML(false))); err == nil {
		t.Fatal("restored stream caster accepted invalid doc")
	}
}

// TestReencodeByteIdentical is the codec's determinism property:
// encode→decode→encode reproduces the blob bit for bit.
func TestReencodeByteIdentical(t *testing.T) {
	blob := encodeFigPair(t)
	dec, err := Decode(blob)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	blob2, err := Encode(dec.Src, dec.Dst, dec.Caster, dec.Report)
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Fatalf("re-encode diverged: %d vs %d bytes", len(blob), len(blob2))
	}
}

func TestDecodeTruncatedAndFlipped(t *testing.T) {
	blob := encodeFigPair(t)
	for n := 0; n < len(blob); n += 1 + n/16 {
		if _, err := Decode(blob[:n]); err == nil {
			t.Fatalf("truncation to %d bytes decoded successfully", n)
		}
	}
	// Any payload bit flip must fail the CRC (or a later structural check),
	// never panic or decode quietly.
	for off := headerSize; off < len(blob); off += 1 + (len(blob)-headerSize)/64 {
		mut := append([]byte(nil), blob...)
		mut[off] ^= 0x40
		if _, err := Decode(mut); err == nil {
			t.Fatalf("bit flip at offset %d decoded successfully", off)
		} else if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrStale) {
			t.Fatalf("bit flip at offset %d: unexpected error class %v", off, err)
		}
	}
}

func TestDecodeVersionMismatchIsStale(t *testing.T) {
	blob := encodeFigPair(t)
	mut := append([]byte(nil), blob...)
	mut[4] = Version + 1
	if _, err := Decode(mut); !errors.Is(err, ErrStale) {
		t.Fatalf("future version: want ErrStale, got %v", err)
	}
}

func TestDecodeBadMagicIsCorrupt(t *testing.T) {
	blob := encodeFigPair(t)
	mut := append([]byte(nil), blob...)
	mut[0] = 'Y'
	if _, err := Decode(mut); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic: want ErrCorrupt, got %v", err)
	}
}

// TestDecodeStaleReconstruction: an artifact whose caster was built in a
// universe with a different interning order (target loaded first) must be
// rejected as stale — the decoder always re-parses source first, so the
// serialized automata would index a different symbol space.
func TestDecodeStaleReconstruction(t *testing.T) {
	src := schemaInfo("xsd", "", wgen.Figure2XSD(true, 100))
	dst := schemaInfo("xsd", "", wgen.Figure2XSD(false, 200))
	u := revalidate.NewUniverse()
	// Deliberately wrong order relative to the SchemaInfo labeling: the
	// alphabet is interned while loading "dst" first.
	ds, err := u.LoadXSDString(dst.Text)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	ss, err := u.LoadXSDString(src.Text)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	c, _, err := revalidate.NewCasterPair(ds, ss)
	if err != nil {
		t.Fatalf("caster pair: %v", err)
	}
	blob, err := Encode(src, dst, c, c.Report())
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	// The blob is structurally fine (CRC passes); the reconstruction check
	// must still refuse it. Depending on the schemas it can trip on the
	// fingerprint or the relation dimensions — ErrStale either way.
	if _, err := Decode(blob); !errors.Is(err, ErrStale) {
		t.Fatalf("want ErrStale for reconstruction mismatch, got %v", err)
	}
}

func TestInspect(t *testing.T) {
	blob := encodeFigPair(t)
	info, err := Inspect(blob)
	if err != nil {
		t.Fatalf("inspect: %v", err)
	}
	if info.TotalBytes != len(blob) || info.Version != Version {
		t.Fatalf("header summary wrong: %+v", info)
	}
	if info.AlphabetSize == 0 || info.SrcTypes == 0 || info.DstTypes == 0 {
		t.Fatalf("empty schema summary: %+v", info)
	}
	if len(info.Casters) == 0 || info.ProductStates == 0 {
		t.Fatalf("no casters inspected: %+v", info)
	}
	var total int
	for _, s := range info.Sections {
		total += s.Bytes
	}
	if total != info.PayloadBytes {
		t.Fatalf("section sizes sum to %d, payload is %d", total, info.PayloadBytes)
	}
	if info.Key != Key(info.Src.Hash, info.Dst.Hash) {
		t.Fatal("inspect key does not match Key()")
	}
}
