package repair

import (
	"fmt"

	"repro/internal/fa"
)

// align computes a minimum-edit transformation of word into a string of
// L(d) — the automaton-constrained string edit distance, a dynamic program
// over (input position, DFA state) pairs. Operations are keep (match),
// relabel (substitute), delete, and insert; each non-keep operation costs
// one. The returned operations are in left-to-right application order.
func align(d *fa.DFA, word []fa.Symbol) ([]alignOp, error) {
	total, sink := d.Totalize()
	n := len(word)
	numStates := total.NumStates()
	const inf = int32(1 << 30)

	// dist[i*numStates+q] = min edits to consume word[:i] and be in q.
	dist := make([]int32, (n+1)*numStates)
	type step struct {
		prevState int32
		kind      opKind
		sym       fa.Symbol // for relabel/insert: the emitted symbol
	}
	from := make([]step, (n+1)*numStates)
	for i := range dist {
		dist[i] = inf
	}
	at := func(i, q int) int { return i*numStates + q }

	start := total.Start()
	dist[at(0, start)] = 0
	from[at(0, start)] = step{prevState: -1}

	// relax inserts within one column: Dijkstra-light — since every insert
	// costs 1, a bounded number of passes (numStates) reaches the fixpoint.
	relaxInserts := func(i int) {
		for pass := 0; pass < numStates; pass++ {
			changed := false
			for q := 0; q < numStates; q++ {
				dq := dist[at(i, q)]
				if dq >= inf {
					continue
				}
				for sym := 0; sym < total.NumSymbols(); sym++ {
					t := total.Step(q, fa.Symbol(sym))
					if t == sink && sink != fa.Dead {
						continue // inserting into the sink is never useful
					}
					if dq+1 < dist[at(i, t)] {
						dist[at(i, t)] = dq + 1
						from[at(i, t)] = step{prevState: int32(q), kind: opInsert, sym: fa.Symbol(sym)}
						changed = true
					}
				}
			}
			if !changed {
				break
			}
		}
	}

	relaxInserts(0)
	for i := 0; i < n; i++ {
		for q := 0; q < numStates; q++ {
			dq := dist[at(i, q)]
			if dq >= inf {
				continue
			}
			// Delete word[i].
			if dq+1 < dist[at(i+1, q)] {
				dist[at(i+1, q)] = dq + 1
				from[at(i+1, q)] = step{prevState: int32(q), kind: opDelete}
			}
			// Keep word[i] (when its symbol is known and the move is not
			// into the sink).
			if word[i] != fa.NoSymbol {
				t := total.Step(q, word[i])
				if !(t == sink && sink != fa.Dead) && dq < dist[at(i+1, t)] {
					dist[at(i+1, t)] = dq
					from[at(i+1, t)] = step{prevState: int32(q), kind: opKeep, sym: word[i]}
				}
			}
			// Relabel word[i] to any symbol.
			for sym := 0; sym < total.NumSymbols(); sym++ {
				if fa.Symbol(sym) == word[i] {
					continue
				}
				t := total.Step(q, fa.Symbol(sym))
				if t == sink && sink != fa.Dead {
					continue
				}
				if dq+1 < dist[at(i+1, t)] {
					dist[at(i+1, t)] = dq + 1
					from[at(i+1, t)] = step{prevState: int32(q), kind: opRelabel, sym: fa.Symbol(sym)}
				}
			}
		}
		relaxInserts(i + 1)
	}

	// Best accepting state at the end.
	best, bestQ := inf, -1
	for q := 0; q < numStates; q++ {
		if total.IsAccept(q) && dist[at(n, q)] < best {
			best, bestQ = dist[at(n, q)], q
		}
	}
	if bestQ < 0 {
		return nil, fmt.Errorf("target content model accepts no string (non-productive type)")
	}

	// Reconstruct.
	var rev []alignOp
	i, q := n, bestQ
	for !(i == 0 && int32(q) == int32(start) && from[at(i, q)].prevState == -1) {
		st := from[at(i, q)]
		switch st.kind {
		case opInsert:
			rev = append(rev, alignOp{kind: opInsert, sym: st.sym})
			q = int(st.prevState)
		case opDelete:
			rev = append(rev, alignOp{kind: opDelete})
			i--
			q = int(st.prevState)
		case opKeep:
			rev = append(rev, alignOp{kind: opKeep, sym: st.sym})
			i--
			q = int(st.prevState)
		case opRelabel:
			rev = append(rev, alignOp{kind: opRelabel, sym: st.sym})
			i--
			q = int(st.prevState)
		}
		if st.prevState < 0 {
			break
		}
	}
	out := make([]alignOp, len(rev))
	for k := range rev {
		out[k] = rev[len(rev)-1-k]
	}
	return out, nil
}

type opKind uint8

const (
	opKeep opKind = iota
	opRelabel
	opDelete
	opInsert
)

type alignOp struct {
	kind opKind
	sym  fa.Symbol // emitted symbol for keep/relabel/insert
}

func (o alignOp) String() string {
	switch o.kind {
	case opKeep:
		return fmt.Sprintf("keep(#%d)", o.sym)
	case opRelabel:
		return fmt.Sprintf("relabel(#%d)", o.sym)
	case opDelete:
		return "delete"
	default:
		return fmt.Sprintf("insert(#%d)", o.sym)
	}
}
