package repair

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/baseline"
	"repro/internal/cast"
	"repro/internal/fa"
	"repro/internal/regexpsym"
	"repro/internal/schema"
	"repro/internal/wgen"
	"repro/internal/xmltree"
)

func TestRepairInsertsMissingBillTo(t *testing.T) {
	ps := wgen.NewPaperSchemas()
	r, err := New(ps.Source1, ps.Target)
	if err != nil {
		t.Fatal(err)
	}
	doc := wgen.PODocument(wgen.PODocOptions{Items: 5, IncludeBillTo: false, Seed: 1})
	tk, rep, err := r.Repair(doc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Inserts != 1 || rep.Total() != 1 {
		t.Fatalf("expected exactly one insert, got %s", rep)
	}
	// Repaired document is target-valid — check fully and incrementally.
	if _, err := baseline.New(ps.Target).Validate(doc); err != nil {
		t.Fatalf("repaired doc not target-valid: %v", err)
	}
	eng := cast.MustNew(ps.Source1, ps.Target, cast.Options{})
	if _, err := eng.ValidateModified(doc, tk.Finalize()); err != nil {
		t.Fatalf("incremental revalidation of the repair failed: %v", err)
	}
	// The synthesized billTo is minimal but complete (6 address fields).
	if !strings.Contains(xmltree.XMLString(doc), "<billTo>") {
		t.Fatal("billTo not inserted")
	}
}

func TestRepairClampsQuantities(t *testing.T) {
	ps := wgen.NewPaperSchemas()
	r, err := New(ps.Source2, ps.Target)
	if err != nil {
		t.Fatal(err)
	}
	doc := wgen.PODocument(wgen.PODocOptions{Items: 20, IncludeBillTo: true, MaxQuantity: 199, Seed: 3})
	// Count offending quantities first.
	offending := 0
	for _, item := range doc.Children[2].Children {
		if len(item.Children[1].Children[0].Text) >= 3 {
			offending++
		}
	}
	if offending == 0 {
		t.Fatal("test needs some quantities ≥ 100")
	}
	_, rep, err := r.Repair(doc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ValueFixes != offending {
		t.Fatalf("fixed %d values, expected %d", rep.ValueFixes, offending)
	}
	if _, err := baseline.New(ps.Target).Validate(doc); err != nil {
		t.Fatalf("repaired doc not target-valid: %v", err)
	}
	// Values were clamped (to 99), not replaced arbitrarily.
	if !strings.Contains(xmltree.XMLString(doc), "<quantity>99</quantity>") {
		t.Fatal("expected clamped quantity 99")
	}
}

func TestRepairValidDocumentIsNoOp(t *testing.T) {
	ps := wgen.NewPaperSchemas()
	r, _ := New(ps.Source1, ps.Target)
	doc := wgen.PODocument(wgen.PODocOptions{Items: 5, IncludeBillTo: true, Seed: 4})
	before := doc.String()
	_, rep, err := r.Repair(doc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total() != 0 {
		t.Fatalf("valid document should need no edits, got %s", rep)
	}
	if doc.String() != before {
		t.Fatal("no-op repair must not change the tree")
	}
}

func TestRepairDeletesForbiddenContent(t *testing.T) {
	// Source allows (a, b?, c); target allows (a, c): b must be deleted.
	alpha := fa.NewAlphabet()
	src := buildABC(t, alpha, "a, b?, c")
	dst := buildABC(t, alpha, "a, c")
	r, err := New(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	doc := xmltree.NewElement("root",
		leafEl("a"), leafEl("b"), leafEl("c"))
	_, rep, err := r.Repair(doc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Deletes != 1 || rep.Total() != 1 {
		t.Fatalf("expected one delete, got %s", rep)
	}
	if err := dst.Validate(doc); err != nil {
		t.Fatalf("repaired doc invalid: %v", err)
	}
}

func TestRepairRelabels(t *testing.T) {
	// Source: (a, b); target: (a, d) with the same child type — relabeling
	// b→d is the single-edit repair (delete+insert would be two).
	alpha := fa.NewAlphabet()
	src := buildABC(t, alpha, "a, b")
	dst := buildABC(t, alpha, "a, d")
	r, err := New(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	doc := xmltree.NewElement("root", leafEl("a"), leafEl("b"))
	_, rep, err := r.Repair(doc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Relabels != 1 || rep.Total() != 1 {
		t.Fatalf("expected one relabel, got %s", rep)
	}
	if err := dst.Validate(doc); err != nil {
		t.Fatalf("repaired doc invalid: %v", err)
	}
}

func TestRepairSimpleFromComplex(t *testing.T) {
	// Target turns a container element into a simple-typed one: children
	// are deleted and a value synthesized.
	alpha := fa.NewAlphabet()
	src := buildABC(t, alpha, "a, b")
	dst := schema.New(alpha)
	num, _ := dst.AddSimpleType("num", schema.NewSimpleType(schema.IntegerKind).WithMinInclusive(5))
	dst.SetRoot("root", num)
	dst.MustCompile()
	r, err := New(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	doc := xmltree.NewElement("root", leafEl("a"), leafEl("b"))
	_, rep, err := r.Repair(doc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Deletes != 2 || rep.ValueFixes != 1 {
		t.Fatalf("expected 2 deletes + 1 value fix, got %s", rep)
	}
	if err := dst.Validate(doc); err != nil {
		t.Fatalf("repaired doc invalid: %v", err)
	}
}

func TestRepairErrors(t *testing.T) {
	ps := wgen.NewPaperSchemas()
	r, _ := New(ps.Source1, ps.Target)
	if _, _, err := r.Repair(xmltree.NewText("x")); err == nil {
		t.Fatal("text root must fail")
	}
	if _, _, err := r.Repair(xmltree.NewElement("nope")); err == nil {
		t.Fatal("unknown root must fail")
	}
}

// Property: for random source documents and random mutated target schemas,
// Repair always produces a target-valid document, and the edit count is
// zero exactly when the document was already valid.
func TestRepairAlwaysProducesValidDocuments(t *testing.T) {
	rng := rand.New(rand.NewSource(808))
	labels := []string{"elA", "elB", "elC", "elD", "elE"}
	rounds := 20
	if testing.Short() {
		rounds = 6
	}
	for round := 0; round < rounds; round++ {
		alpha := fa.NewAlphabet()
		src := wgen.RandomSchema(rng, alpha, wgen.RandomSchemaOptions{Labels: labels})
		dst := wgen.MutateSchema(rng, src, labels)
		r, err := New(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		base := baseline.New(dst)
		gen := wgen.NewGenerator(src, rng)
		for i := 0; i < 15; i++ {
			doc, ok := gen.Document()
			if !ok {
				break
			}
			if dst.RootType(doc.Label) == schema.NoType {
				continue // root label not castable; repair never relabels roots
			}
			_, validBefore := base.Validate(doc)
			_, rep, err := r.Repair(doc)
			if err != nil {
				t.Fatalf("round %d: repair failed: %v\nsrc:\n%s\ndst:\n%s\ndoc: %s",
					round, err, src, dst, doc)
			}
			if _, err := base.Validate(doc); err != nil {
				t.Fatalf("round %d: repaired doc invalid: %v\nsrc:\n%s\ndst:\n%s\ndoc: %s",
					round, err, src, dst, doc)
			}
			if validBefore == nil && rep.Total() != 0 {
				t.Fatalf("round %d: already-valid doc edited: %s", round, rep)
			}
		}
	}
}

// The aligner alone: minimal edit scripts into small DFAs, cross-checked
// against brute-force edit distances.
func TestAlignMinimality(t *testing.T) {
	alpha := fa.NewAlphabet()
	a, b, c := alpha.Intern("a"), alpha.Intern("b"), alpha.Intern("c")
	d := regexpsym.Compile(regexpsym.MustParse("a, b, c"), alpha)
	cases := []struct {
		word []fa.Symbol
		want int // minimal edits
	}{
		{[]fa.Symbol{a, b, c}, 0},
		{[]fa.Symbol{a, c}, 1},       // insert b
		{[]fa.Symbol{a, b}, 1},       // insert c
		{[]fa.Symbol{a, b, b, c}, 1}, // delete one b
		{[]fa.Symbol{a, a, c}, 1},    // relabel second a to b
		{[]fa.Symbol{}, 3},           // insert all
		{[]fa.Symbol{c, b, a}, 2},    // relabel first and last
	}
	for _, tc := range cases {
		ops, err := align(d, tc.word)
		if err != nil {
			t.Fatal(err)
		}
		edits := 0
		for _, op := range ops {
			if op.kind != opKeep {
				edits++
			}
		}
		if edits != tc.want {
			t.Fatalf("align(%v) used %d edits, want %d (ops %v)", tc.word, edits, tc.want, ops)
		}
	}
}

func TestAlignEmptyLanguageFails(t *testing.T) {
	d := fa.NewDFA(2) // ∅
	if _, err := align(d, []fa.Symbol{0}); err == nil {
		t.Fatal("alignment into ∅ must fail")
	}
}

// helpers

func buildABC(t *testing.T, alpha *fa.Alphabet, model string) *schema.Schema {
	t.Helper()
	s := schema.New(alpha)
	leaf, err := s.AddSimpleType("leaf", schema.NewSimpleType(schema.StringKind))
	if err != nil {
		t.Fatal(err)
	}
	root, err := s.AddComplexType("Root", regexpsym.MustParse(model))
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range regexpsym.Labels(regexpsym.MustParse(model)) {
		if err := s.SetChildType(root, l, leaf); err != nil {
			t.Fatal(err)
		}
	}
	s.SetRoot("root", root)
	return s.MustCompile()
}

func leafEl(label string) *xmltree.Node {
	return xmltree.NewElement(label, xmltree.NewText("v"))
}

func TestRepairUnknownLabel(t *testing.T) {
	// A label the target schema never heard of cannot be kept; the aligner
	// must delete (or relabel) it.
	alpha := fa.NewAlphabet()
	src := buildABC(t, alpha, "a, mystery?, c")
	dst := buildABC(t, alpha, "a, c")
	// "mystery" exists only in the source schema's alphabet; both schemas
	// share the alphabet so the symbol exists, but dst's models never use it.
	r, err := New(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	doc := xmltree.NewElement("root", leafEl("a"), leafEl("mystery"), leafEl("c"))
	_, rep, err := r.Repair(doc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total() != 1 {
		t.Fatalf("expected a single edit, got %s", rep)
	}
	if err := dst.Validate(doc); err != nil {
		t.Fatalf("repaired doc invalid: %v", err)
	}
}

func TestRepairInsertsRecursiveMinimalTree(t *testing.T) {
	// The synthesized subtree for a missing mandatory element must itself
	// be minimal and valid even when the type is recursive.
	alpha := fa.NewAlphabet()
	src := schema.New(alpha)
	leafT, _ := src.AddSimpleType("leaf", nil)
	rootT, _ := src.AddComplexType("Root", regexpsym.MustParse("x?"))
	if err := src.SetChildType(rootT, "x", leafT); err != nil {
		t.Fatal(err)
	}
	src.SetRoot("root", rootT)
	src.MustCompile()

	dst := schema.New(alpha)
	leafD, _ := dst.AddSimpleType("leaf", nil)
	treeD, _ := dst.AddComplexType("Tree", regexpsym.MustParse("v, tree?"))
	if err := dst.SetChildType(treeD, "v", leafD); err != nil {
		t.Fatal(err)
	}
	if err := dst.SetChildType(treeD, "tree", treeD); err != nil {
		t.Fatal(err)
	}
	rootD, _ := dst.AddComplexType("Root", regexpsym.MustParse("tree"))
	if err := dst.SetChildType(rootD, "tree", treeD); err != nil {
		t.Fatal(err)
	}
	dst.SetRoot("root", rootD)
	dst.MustCompile()

	r, err := New(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	doc := xmltree.NewElement("root")
	_, rep, err := r.Repair(doc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Inserts != 1 {
		t.Fatalf("expected one synthesized subtree, got %s", rep)
	}
	if err := dst.Validate(doc); err != nil {
		t.Fatalf("repaired doc invalid: %v\n%s", err, doc)
	}
	// Minimality: tree(v) without the optional recursion; v's value is the
	// canonical empty string, so no text node is synthesized.
	if doc.Size() != 3 { // root, tree, v
		t.Fatalf("synthesized tree should be minimal, size %d: %s", doc.Size(), doc)
	}
}

func TestCanonicalValues(t *testing.T) {
	mb, err := newMinimalBuilder(wgen.NewPaperSchemas().Target)
	if err != nil {
		t.Fatal(err)
	}
	cases := []*schema.SimpleType{
		nil,
		schema.NewSimpleType(schema.BooleanKind),
		schema.NewSimpleType(schema.DateKind),
		schema.NewSimpleType(schema.DecimalKind).WithMinExclusive(10),
		schema.NewSimpleType(schema.IntegerKind).WithMinInclusive(-3).WithMaxInclusive(-1),
		schema.NewSimpleType(schema.StringKind).WithLength(5, 8),
		schema.NewSimpleType(schema.StringKind).WithEnumeration("alpha", "beta"),
		schema.NewSimpleType(schema.PositiveIntegerKind).WithMaxExclusive(2),
	}
	for _, st := range cases {
		typ := &schema.Type{Name: "probe", Simple: true, Value: st}
		v, ok := mb.value(typ, "definitely-not-valid-###")
		if st == nil {
			if !ok {
				t.Fatal("nil type must always produce a value")
			}
			continue
		}
		if !ok {
			t.Fatalf("no value synthesized for %s", st)
		}
		if !st.AcceptsValue(v) {
			t.Fatalf("synthesized %q invalid for %s", v, st)
		}
	}
	// Unsatisfiable enumeration.
	impossible := schema.NewSimpleType(schema.IntegerKind).WithEnumeration("xyz")
	typ := &schema.Type{Name: "impossible", Simple: true, Value: impossible}
	if _, ok := mb.value(typ, "0"); ok {
		t.Fatal("unsatisfiable type must fail")
	}
}

func TestRepairReportAndOpStrings(t *testing.T) {
	rep := Report{Relabels: 1, Inserts: 2, Deletes: 3, ValueFixes: 4}
	if rep.Total() != 10 || !strings.Contains(rep.String(), "10 edits") {
		t.Fatalf("Report: %s", rep)
	}
	for _, op := range []alignOp{
		{kind: opKeep, sym: 1}, {kind: opRelabel, sym: 2},
		{kind: opDelete}, {kind: opInsert, sym: 3},
	} {
		if op.String() == "" {
			t.Fatal("empty op string")
		}
	}
}

func TestNewRequiresSharedAlphabet(t *testing.T) {
	a := wgen.NewPaperSchemas()
	b := wgen.NewPaperSchemas()
	if _, err := New(a.Source1, b.Target); err == nil {
		t.Fatal("mismatched alphabets must be rejected")
	}
}
