// Package repair implements the extension the paper names as future work
// (§7): automatically correcting a document valid under one schema so that
// it conforms to another.
//
// The repairer mirrors the schema cast traversal: subtrees whose source
// type is subsumed by the target type are untouched; elsewhere the
// children label string is aligned to the target content model with a
// minimum number of edit operations — a dynamic program over (position,
// DFA state) pairs, the automaton-constrained string edit distance — and
// the chosen operations are applied through an update.Tracker, so the
// result is Δ-encoded and can be revalidated incrementally. Missing
// mandatory content is synthesized as minimal valid subtrees; simple
// values violating facets are clamped or regenerated.
package repair

import (
	"fmt"

	"repro/internal/fa"
	"repro/internal/schema"
	"repro/internal/subsume"
	"repro/internal/update"
	"repro/internal/xmltree"
)

// Repairer rewrites documents valid under Src into documents valid under
// Dst. Construction preprocesses the schema pair; a Repairer is immutable
// afterwards and safe for concurrent use.
type Repairer struct {
	Src, Dst *schema.Schema
	Rel      *subsume.Relations

	minBuilder *minimalBuilder
}

// New preprocesses a (source, target) schema pair. Both schemas must be
// compiled and share one alphabet.
func New(src, dst *schema.Schema) (*Repairer, error) {
	rel, err := subsume.Compute(src, dst)
	if err != nil {
		return nil, err
	}
	mb, err := newMinimalBuilder(dst)
	if err != nil {
		return nil, err
	}
	return &Repairer{Src: src, Dst: dst, Rel: rel, minBuilder: mb}, nil
}

// Report summarizes the edits a repair applied.
type Report struct {
	Relabels   int
	Inserts    int
	Deletes    int
	ValueFixes int
}

// Total returns the total number of edit operations.
func (r Report) Total() int { return r.Relabels + r.Inserts + r.Deletes + r.ValueFixes }

func (r Report) String() string {
	return fmt.Sprintf("%d edits (%d relabels, %d inserts, %d deletes, %d value fixes)",
		r.Total(), r.Relabels, r.Inserts, r.Deletes, r.ValueFixes)
}

// Repair edits doc — assumed valid under the source schema — in place so
// that it becomes valid under the target schema, tracking every edit in
// the returned Tracker (whose trie supports incremental revalidation of
// the result). The document root's label must be accepted by the target's
// R; repairs never relabel the root.
func (r *Repairer) Repair(doc *xmltree.Node) (*update.Tracker, Report, error) {
	tk := update.NewTracker(doc)
	var rep Report
	if doc.IsText() {
		return nil, rep, fmt.Errorf("repair: root must be an element")
	}
	τp := r.Dst.RootType(doc.Label)
	if τp == schema.NoType {
		return nil, rep, fmt.Errorf("repair: label %q is not a permitted root of the target schema", doc.Label)
	}
	τ := r.Src.RootType(doc.Label)
	if τ == schema.NoType {
		return nil, rep, fmt.Errorf("repair: document is not rooted as the source schema allows")
	}
	if err := r.repairNode(τ, τp, doc, tk, &rep); err != nil {
		return nil, rep, err
	}
	return tk, rep, nil
}

// repairNode makes the subtree at node valid for target type τp, knowing
// its pre-repair content was valid for source type τ (NoType when no
// source knowledge exists, e.g. under substituted labels).
func (r *Repairer) repairNode(τ, τp schema.TypeID, node *xmltree.Node, tk *update.Tracker, rep *Report) error {
	if τ != schema.NoType && r.Rel.Subsumed(τ, τp) {
		return nil // already valid — the cast-validation skip
	}
	tD := r.Dst.TypeOf(τp)
	if tD.Simple {
		return r.repairSimple(tD, node, tk, rep)
	}
	return r.repairComplex(τ, tD, node, tk, rep)
}

// repairSimple forces the node to carry a value satisfying the simple
// target type: element children are deleted, an invalid (or missing) value
// is replaced by a clamped/synthesized one.
func (r *Repairer) repairSimple(tD *schema.Type, node *xmltree.Node, tk *update.Tracker, rep *Report) error {
	var textChild *xmltree.Node
	for _, c := range node.Children {
		if c.Delta == xmltree.DeltaDelete {
			continue
		}
		if c.IsText() && textChild == nil {
			textChild = c
			continue
		}
		if err := tk.Delete(c); err != nil {
			return err
		}
		rep.Deletes++
	}
	current := ""
	if textChild != nil {
		current = textChild.Text
	}
	if tD.Value.AcceptsValue(current) {
		return nil
	}
	fixed, ok := r.minBuilder.value(tD, current)
	if !ok {
		return fmt.Errorf("repair: no value satisfies simple type %q (%s)", tD.Name, tD.Value)
	}
	if textChild != nil {
		if err := tk.SetText(textChild, fixed); err != nil {
			return err
		}
	} else if fixed != "" {
		if err := tk.AppendChild(node, xmltree.NewText(fixed)); err != nil {
			return err
		}
	}
	rep.ValueFixes++
	return nil
}

// repairComplex aligns the children to the target content model and
// recurses.
func (r *Repairer) repairComplex(τ schema.TypeID, tD *schema.Type, node *xmltree.Node, tk *update.Tracker, rep *Report) error {
	// Live children and their labels; text children are illegal in element
	// content and deleted outright.
	var kids []*xmltree.Node
	var word []fa.Symbol
	for _, c := range node.Children {
		if c.Delta == xmltree.DeltaDelete {
			continue
		}
		if c.IsText() {
			if err := tk.Delete(c); err != nil {
				return err
			}
			rep.Deletes++
			continue
		}
		sym := r.Dst.Alpha.Lookup(c.Label)
		// An unknown label can never fit any target model; mark it for
		// certain deletion by the aligner (symbol NoSymbol never matches).
		kids = append(kids, c)
		word = append(word, sym)
	}

	ops, err := align(tD.DFA, word)
	if err != nil {
		return fmt.Errorf("repair: type %q: %w", tD.Name, err)
	}

	// Apply the alignment. Inserts reference positions in the *current*
	// children slice; process in order, tracking the cursor node to insert
	// before.
	var tS *schema.Type
	if τ != schema.NoType {
		tS = r.Src.TypeOf(τ)
	}
	idx := 0 // index into kids
	for _, op := range ops {
		switch op.kind {
		case opKeep:
			child := kids[idx]
			idx++
			if err := r.recurse(tS, tD, child, "", tk, rep); err != nil {
				return err
			}
		case opRelabel:
			child := kids[idx]
			idx++
			oldLabel := child.Label
			if err := tk.Relabel(child, r.Dst.Alpha.Name(op.sym)); err != nil {
				return err
			}
			rep.Relabels++
			if err := r.recurse(tS, tD, child, oldLabel, tk, rep); err != nil {
				return err
			}
		case opDelete:
			if err := tk.Delete(kids[idx]); err != nil {
				return err
			}
			idx++
			rep.Deletes++
		case opInsert:
			subtree, ok := r.minBuilder.tree(r.Dst.Alpha.Name(op.sym), tD.Child[op.sym])
			if !ok {
				return fmt.Errorf("repair: cannot synthesize content for label %q", r.Dst.Alpha.Name(op.sym))
			}
			var err error
			if idx < len(kids) {
				err = tk.InsertBefore(kids[idx], subtree)
			} else {
				err = tk.AppendChild(node, subtree)
			}
			if err != nil {
				return err
			}
			rep.Inserts++
		}
	}
	return nil
}

// recurse repairs a kept (possibly relabeled) child. oldLabel is the
// pre-relabel label ("" when unchanged).
func (r *Repairer) recurse(tS, tD *schema.Type, child *xmltree.Node, oldLabel string, tk *update.Tracker, rep *Report) error {
	sym := r.Dst.Alpha.Lookup(child.Label)
	ν, ok := tD.Child[sym]
	if !ok {
		return fmt.Errorf("repair: internal: kept label %q has no target child type", child.Label)
	}
	srcChild := schema.NoType
	if tS != nil {
		lookup := child.Label
		if oldLabel != "" {
			lookup = oldLabel
		}
		if srcSym := r.Src.Alpha.Lookup(lookup); srcSym != fa.NoSymbol {
			if ω, okSrc := tS.Child[srcSym]; okSrc {
				srcChild = ω
			}
		}
	}
	return r.repairNode(srcChild, ν, child, tk, rep)
}
