package repair

import (
	"fmt"

	"repro/internal/fa"
	"repro/internal/schema"
	"repro/internal/xmltree"
)

// minimalBuilder synthesizes minimal valid subtrees for target types, used
// when a repair must insert mandatory content. Minimality is by tree rank:
// each complex type descends through a shortest accepted word over the
// cheapest children, so synthesis always terminates on productive types.
type minimalBuilder struct {
	s    *schema.Schema
	rank []int
	// word caches, per complex type, a shortest accepted word over
	// rank-minimal labels.
	word map[schema.TypeID][]fa.Symbol
}

func newMinimalBuilder(s *schema.Schema) (*minimalBuilder, error) {
	if !s.Compiled() {
		return nil, fmt.Errorf("repair: target schema must be compiled")
	}
	return &minimalBuilder{s: s, rank: typeRanks(s), word: map[schema.TypeID][]fa.Symbol{}}, nil
}

// tree builds a minimal valid subtree for type τ labeled label; ok=false
// for non-productive types.
func (mb *minimalBuilder) tree(label string, τ schema.TypeID) (*xmltree.Node, bool) {
	if mb.rank[τ] < 0 {
		return nil, false
	}
	node := xmltree.NewElement(label)
	t := mb.s.TypeOf(τ)
	if t.Simple {
		v, ok := mb.value(t, "")
		if !ok {
			return nil, false
		}
		if v != "" {
			node.AppendChild(xmltree.NewText(v))
		}
		return node, true
	}
	word, ok := mb.shortestWord(t)
	if !ok {
		return nil, false
	}
	for _, sym := range word {
		child, ok := mb.tree(mb.s.Alpha.Name(sym), t.Child[sym])
		if !ok {
			return nil, false
		}
		node.AppendChild(child)
	}
	return node, true
}

// shortestWord returns (cached) a shortest accepted word of t's content
// model restricted to labels whose child type has strictly smaller rank —
// which exists by the definition of rank and guarantees termination.
func (mb *minimalBuilder) shortestWord(t *schema.Type) ([]fa.Symbol, bool) {
	if w, ok := mb.word[t.ID]; ok {
		return w, true
	}
	mask := make([]bool, mb.s.Alpha.Size())
	for sym, child := range t.Child {
		if cr := mb.rank[child]; cr >= 0 && cr < mb.rank[t.ID] {
			mask[sym] = true
		}
	}
	w, ok := fa.ShortestAccepted(fa.RestrictSymbols(t.DFA, mask))
	if !ok {
		return nil, false
	}
	mb.word[t.ID] = w
	return w, true
}

// value produces a value satisfying the simple type, preferring a clamped
// version of current when the violation is numeric (the least surprising
// correction), then deterministic synthesis.
func (mb *minimalBuilder) value(t *schema.Type, current string) (string, bool) {
	st := t.Value
	if st.AcceptsValue(current) {
		return current, true
	}
	if v, ok := clampNumeric(st, current); ok {
		return v, true
	}
	return canonicalValue(st)
}

// clampNumeric tries to keep a numeric value, moved inside the facet range.
func clampNumeric(st *schema.SimpleType, current string) (string, bool) {
	if st == nil {
		return "", false
	}
	switch st.Base {
	case schema.IntegerKind, schema.PositiveIntegerKind, schema.DecimalKind:
	default:
		return "", false
	}
	var x float64
	if _, err := fmt.Sscanf(current, "%g", &x); err != nil {
		return "", false
	}
	for _, candidate := range clampCandidates(st, x) {
		v := formatNum(st, candidate)
		if st.AcceptsValue(v) {
			return v, true
		}
	}
	return "", false
}

func clampCandidates(st *schema.SimpleType, x float64) []float64 {
	out := []float64{x}
	if st.MaxInclusive != nil {
		out = append(out, *st.MaxInclusive)
	}
	if st.MaxExclusive != nil {
		out = append(out, *st.MaxExclusive-1)
	}
	if st.MinInclusive != nil {
		out = append(out, *st.MinInclusive)
	}
	if st.MinExclusive != nil {
		out = append(out, *st.MinExclusive+1)
	}
	if st.Base == schema.PositiveIntegerKind {
		out = append(out, 1)
	}
	return out
}

func formatNum(st *schema.SimpleType, x float64) string {
	if st.Base == schema.DecimalKind {
		return fmt.Sprintf("%g", x)
	}
	return fmt.Sprintf("%d", int64(x))
}

// canonicalValue deterministically synthesizes a valid value.
func canonicalValue(st *schema.SimpleType) (string, bool) {
	if st == nil {
		return "", true
	}
	if len(st.Enumeration) > 0 {
		for _, v := range st.Enumeration {
			if st.AcceptsValue(v) {
				return v, true
			}
		}
		return "", false
	}
	var candidates []string
	switch st.Base {
	case schema.BooleanKind:
		candidates = []string{"true", "false"}
	case schema.DateKind:
		candidates = []string{"2004-03-14"}
	case schema.DecimalKind, schema.IntegerKind, schema.PositiveIntegerKind:
		candidates = []string{"1", "0"}
		for _, c := range clampCandidates(st, 1) {
			candidates = append(candidates, formatNum(st, c))
		}
	default:
		candidates = []string{"", "x", "value", "xxxxxxxxxx"}
		if st.MinLength > 0 {
			b := make([]byte, st.MinLength)
			for i := range b {
				b[i] = 'x'
			}
			candidates = append(candidates, string(b))
		}
	}
	for _, v := range candidates {
		if st.AcceptsValue(v) {
			return v, true
		}
	}
	return "", false
}

// typeRanks mirrors wgen.typeRanks (duplicated to keep repair independent
// of the workload generator): the minimal tree height per type, -1 for
// non-productive types.
func typeRanks(s *schema.Schema) []int {
	n := len(s.Types)
	rank := make([]int, n)
	for i := range rank {
		rank[i] = -1
	}
	for _, t := range s.Types {
		if t.Simple {
			rank[t.ID] = 1
		}
	}
	for r := 0; r <= n+1; r++ {
		for _, t := range s.Types {
			if t.Simple || rank[t.ID] >= 0 {
				continue
			}
			mask := make([]bool, s.Alpha.Size())
			for sym, child := range t.Child {
				if cr := rank[child]; cr >= 0 && cr <= r {
					mask[sym] = true
				}
			}
			if fa.NonemptyRestricted(t.DFA, mask) {
				rank[t.ID] = r + 1
			}
		}
	}
	return rank
}
