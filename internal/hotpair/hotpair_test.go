package hotpair

import (
	"fmt"
	"math/rand"
	"regexp"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

func obs(seconds float64, casts, visited, skimmed int64) Stats {
	return Stats{Casts: casts, Seconds: seconds,
		ElementsVisited: visited, ElementsSkimmed: skimmed}
}

func TestTrackerAccumulates(t *testing.T) {
	tr := New(4)
	tr.Observe("aa11", "v1", "v2", obs(0.5, 1, 90, 10))
	tr.Observe("aa11", "v1", "v2", obs(1.5, 2, 10, 90))
	snap := tr.Snapshot()
	if len(snap.Tracked) != 1 {
		t.Fatalf("tracked = %d, want 1", len(snap.Tracked))
	}
	e := snap.Tracked[0]
	if e.Seconds != 2 || e.Casts != 3 || e.ElementsVisited != 100 || e.ElementsSkimmed != 100 {
		t.Fatalf("bad accumulation: %+v", e)
	}
	if e.WorkSaved != 0.5 {
		t.Fatalf("work saved = %v, want 0.5", e.WorkSaved)
	}
}

func TestEvictionDeterminism(t *testing.T) {
	// Fill K=2, then compete. The coldest incumbent loses only to a
	// strictly hotter arrival; ties keep the incumbent.
	tr := New(2)
	tr.Observe("cold", "a", "b", obs(1, 1, 0, 0))
	tr.Observe("hot", "a", "b", obs(10, 1, 0, 0))

	tr.Observe("tie", "a", "b", obs(1, 1, 0, 0)) // equal to the minimum: folded into other
	snap := tr.Snapshot()
	if keys(snap) != "hot,cold" {
		t.Fatalf("tie must keep incumbents, got %s", keys(snap))
	}
	if snap.Other.Casts != 1 || snap.Other.Seconds != 1 {
		t.Fatalf("tie observation not folded into other: %+v", snap.Other)
	}

	tr.Observe("warm", "a", "b", obs(2, 1, 0, 0)) // strictly hotter: evicts "cold"
	snap = tr.Snapshot()
	if keys(snap) != "hot,warm" {
		t.Fatalf("hotter arrival must evict the minimum, got %s", keys(snap))
	}
	if snap.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", snap.Evictions)
	}
	// The evicted pair's totals moved into other: conservation holds.
	if snap.Other.Seconds != 1+1 || snap.Other.Casts != 2 {
		t.Fatalf("eviction did not fold the victim: %+v", snap.Other)
	}
}

func TestEvictionTieBreakIsLexicographic(t *testing.T) {
	// Two incumbents at the same minimum: the lexicographically greatest
	// key is the victim, deterministically, over many map orderings.
	for i := 0; i < 50; i++ {
		tr := New(2)
		tr.Observe("bbbb", "a", "b", obs(1, 1, 0, 0))
		tr.Observe("aaaa", "a", "b", obs(1, 1, 0, 0))
		tr.Observe("newcomer", "a", "b", obs(5, 1, 0, 0))
		if got := keys(tr.Snapshot()); got != "newcomer,aaaa" {
			t.Fatalf("iteration %d: survivors = %s, want newcomer,aaaa", i, got)
		}
	}
}

// TestTotalsConservedUnderChurn replays a random workload and checks the
// invariant the guard promises: tracked + other always equals everything
// observed, however the table churned.
func TestTotalsConservedUnderChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tr := New(8)
	var wantCasts int64
	var wantSeconds float64
	for i := 0; i < 5000; i++ {
		key := fmt.Sprintf("k%03d", rng.Intn(200))
		s := obs(float64(rng.Intn(100))/10, 1, int64(rng.Intn(50)), int64(rng.Intn(50)))
		wantCasts++
		wantSeconds += s.Seconds
		tr.Observe(key, "s", "d", s)
	}
	snap := tr.Snapshot()
	gotCasts := snap.Other.Casts
	gotSeconds := snap.Other.Seconds
	for _, e := range snap.Tracked {
		gotCasts += e.Casts
		gotSeconds += e.Seconds
	}
	if gotCasts != wantCasts {
		t.Fatalf("casts not conserved: %d, want %d", gotCasts, wantCasts)
	}
	if diff := gotSeconds - wantSeconds; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("seconds not conserved: %v, want %v", gotSeconds, wantSeconds)
	}
}

// TestScrapeCardinalityBound drives 10x K distinct pairs through the
// tracker and asserts the exported families never exceed K+1 label sets.
func TestScrapeCardinalityBound(t *testing.T) {
	const k = 16
	tr := New(k)
	reg := telemetry.NewRegistry()
	tr.Register(reg)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10*k; i++ {
		key := fmt.Sprintf("pair%04x", i)
		tr.Observe(key, "s", "d", obs(rng.Float64()*5, 1, 10, 10))
		// Scrape mid-churn too: the bound must hold at every instant, not
		// just at the end.
		if i%37 == 0 {
			assertCardinality(t, reg, k)
		}
	}
	assertCardinality(t, reg, k)
}

func assertCardinality(t *testing.T, reg *telemetry.Registry, k int) {
	t.Helper()
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, family := range []string{"cast_pair_seconds_total", "cast_pair_casts_total", "cast_pair_work_saved_ratio"} {
		re := regexp.MustCompile(`(?m)^` + family + `\{pair="([^"]*)"\} `)
		matches := re.FindAllStringSubmatch(b.String(), -1)
		if len(matches) > k+1 {
			t.Fatalf("%s exposes %d label sets, bound is K+1 = %d", family, len(matches), k+1)
		}
		hasOther := false
		for _, m := range matches {
			if m[1] == "other" {
				hasOther = true
			}
		}
		if !hasOther {
			t.Fatalf("%s is missing the pair=\"other\" overflow row", family)
		}
	}
}

// TestZeroTrafficScrape: the families and their other row exist before any
// observation (the acceptance criterion's "at zero without traffic").
func TestZeroTrafficScrape(t *testing.T) {
	reg := telemetry.NewRegistry()
	New(4).Register(reg)
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"cast_pair_seconds_total{pair=\"other\"} 0\n",
		"cast_pair_casts_total{pair=\"other\"} 0\n",
		"cast_pair_work_saved_ratio{pair=\"other\"} 0\n",
		"cast_pair_tracked 0\n",
		"cast_pair_evictions_total 0\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("zero-traffic scrape missing %q", want)
		}
	}
}

func TestNilTracker(t *testing.T) {
	var tr *Tracker
	tr.Observe("x", "a", "b", obs(1, 1, 0, 0))
	if snap := tr.Snapshot(); len(snap.Tracked) != 0 {
		t.Fatalf("nil tracker tracked something: %+v", snap)
	}
	if New(0) != nil {
		t.Fatal("New(0) must return the disabled tracker")
	}
	// A disabled tracker still registers well-formed zero families.
	reg := telemetry.NewRegistry()
	tr.Register(reg)
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "cast_pair_seconds_total{pair=\"other\"} 0") {
		t.Error("disabled tracker missing zero other row")
	}
}

func keys(s Snapshot) string {
	parts := make([]string, len(s.Tracked))
	for i, e := range s.Tracked {
		parts[i] = e.Key
	}
	return strings.Join(parts, ",")
}
