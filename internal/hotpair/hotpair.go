// Package hotpair attributes cast cost to (source, target) schema pairs
// under a hard cardinality bound. The paper's economy — subtrees skipped
// via subsumption instead of revalidated — varies wildly per pair, so a
// fleet operator needs per-pair seconds and work-saved ratios; but schema
// pairs are client-controlled, and labeling a Prometheus family with an
// unbounded pair key is a classic series-explosion foot-gun.
//
// The tracker therefore keeps exact stats for at most K pairs plus one
// `other` overflow bucket, so a scrape carries at most K+1 label sets no
// matter how many distinct pairs flow. Admission is deterministic
// weighted-eviction: a new pair enters a full table only by carrying more
// observed seconds than the current minimum, whose totals are folded into
// `other` (attribution degrades gracefully — totals are conserved, only
// the per-pair split coarsens). Ties keep the incumbent, and among equal
// minima the lexicographically greatest key is the victim, so replaying
// the same observation sequence always yields the same table.
package hotpair

import (
	"sort"
	"sync"

	"repro/internal/telemetry"
)

// Stats accumulates one attribution bucket (a tracked pair, or `other`).
type Stats struct {
	Casts           int64   `json:"casts"`
	Seconds         float64 `json:"seconds"`
	ElementsVisited int64   `json:"elementsVisited"`
	ElementsSkimmed int64   `json:"elementsSkimmed"`
	SubsumedSkips   int64   `json:"subsumedSkips"`
}

func (s *Stats) fold(o Stats) {
	s.Casts += o.Casts
	s.Seconds += o.Seconds
	s.ElementsVisited += o.ElementsVisited
	s.ElementsSkimmed += o.ElementsSkimmed
	s.SubsumedSkips += o.SubsumedSkips
}

// WorkSavedRatio is the fraction of elements skimmed instead of visited
// across the bucket's casts; 0 when nothing flowed.
func (s Stats) WorkSavedRatio() float64 {
	total := s.ElementsVisited + s.ElementsSkimmed
	if total == 0 {
		return 0
	}
	return float64(s.ElementsSkimmed) / float64(total)
}

// Entry is one tracked pair with its identity and accumulated stats.
type Entry struct {
	// Key is the short content-hash of the pair (stable across nodes and
	// schema renames); the metric label.
	Key string `json:"key"`
	// Src and Dst are the schema ids seen on this pair's first tracked
	// observation — a human hint, not an identity (ids may alias hashes).
	Src string `json:"src"`
	Dst string `json:"dst"`
	Stats
	WorkSaved float64 `json:"workSavedRatio"`
}

// Snapshot is the ranked view served by GET /debug/hotpairs.
type Snapshot struct {
	K         int     `json:"k"`
	Tracked   []Entry `json:"tracked"` // by seconds, descending
	Other     Stats   `json:"other"`
	Evictions int64   `json:"evictions"`
}

// Tracker is the bounded attribution table. Methods are safe for
// concurrent use and on a nil receiver (a nil tracker records nothing).
type Tracker struct {
	k int

	mu        sync.Mutex
	tracked   map[string]*Entry
	other     Stats
	evictions int64
}

// New returns a tracker bounded to k pairs; k <= 0 returns nil (disabled).
func New(k int) *Tracker {
	if k <= 0 {
		return nil
	}
	return &Tracker{k: k, tracked: make(map[string]*Entry, k)}
}

// Observe folds one cast's cost into the pair's bucket. Called once per
// cast/batch request — never per element — so the table mutex is off every
// hot loop.
func (t *Tracker) Observe(key, src, dst string, st Stats) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if e, ok := t.tracked[key]; ok {
		e.Stats.fold(st)
		return
	}
	if len(t.tracked) < t.k {
		t.tracked[key] = &Entry{Key: key, Src: src, Dst: dst, Stats: st}
		return
	}
	// Full table: the incoming observation competes against the coldest
	// incumbent on observed seconds. Strictly greater wins — ties keep the
	// incumbent — so a stream of one-shot pairs cannot churn the table.
	victim := t.coldest()
	if st.Seconds > victim.Seconds {
		t.other.fold(victim.Stats)
		t.evictions++
		delete(t.tracked, victim.Key)
		t.tracked[key] = &Entry{Key: key, Src: src, Dst: dst, Stats: st}
		return
	}
	t.other.fold(st)
}

// coldest picks the eviction candidate: minimum seconds, ties broken
// toward the lexicographically greatest key so the choice is a pure
// function of the table's contents.
func (t *Tracker) coldest() *Entry {
	var victim *Entry
	for _, e := range t.tracked {
		switch {
		case victim == nil,
			e.Seconds < victim.Seconds,
			e.Seconds == victim.Seconds && e.Key > victim.Key:
			victim = e
		}
	}
	return victim
}

// Snapshot returns the ranked table. Nil-safe (zero-valued when disabled).
func (t *Tracker) Snapshot() Snapshot {
	if t == nil {
		return Snapshot{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := Snapshot{K: t.k, Other: t.other, Evictions: t.evictions,
		Tracked: make([]Entry, 0, len(t.tracked))}
	for _, e := range t.tracked {
		c := *e
		c.WorkSaved = c.WorkSavedRatio()
		out.Tracked = append(out.Tracked, c)
	}
	sort.Slice(out.Tracked, func(i, j int) bool {
		a, b := out.Tracked[i], out.Tracked[j]
		if a.Seconds != b.Seconds {
			return a.Seconds > b.Seconds
		}
		return a.Key < b.Key
	})
	return out
}

// Register exposes the tracker on reg as scrape-time sample families, each
// bounded to K+1 label sets (`pair` = short hash, plus `other`). The
// `other` row renders even at zero so the families exist before traffic.
func (t *Tracker) Register(reg *telemetry.Registry) {
	seconds := func() []telemetry.Sample { return t.samples(func(s Stats) float64 { return s.Seconds }) }
	casts := func() []telemetry.Sample { return t.samples(func(s Stats) float64 { return float64(s.Casts) }) }
	saved := func() []telemetry.Sample {
		return t.samples(func(s Stats) float64 { return s.WorkSavedRatio() })
	}
	reg.CounterSamples("cast_pair_seconds_total",
		"Cast wall-clock seconds attributed per schema pair (top-K by cost; the rest fold into pair=\"other\").",
		[]string{"pair"}, seconds)
	reg.CounterSamples("cast_pair_casts_total",
		"Casts attributed per schema pair (top-K; overflow in pair=\"other\").",
		[]string{"pair"}, casts)
	reg.GaugeSamples("cast_pair_work_saved_ratio",
		"Fraction of elements skimmed instead of validated, per tracked schema pair.",
		[]string{"pair"}, saved)
	reg.GaugeFunc("cast_pair_tracked",
		"Schema pairs currently holding a tracked attribution slot.",
		func() float64 {
			if t == nil {
				return 0
			}
			t.mu.Lock()
			defer t.mu.Unlock()
			return float64(len(t.tracked))
		})
	reg.CounterFunc("cast_pair_evictions_total",
		"Tracked pairs displaced into the other bucket by hotter arrivals.",
		func() float64 {
			if t == nil {
				return 0
			}
			t.mu.Lock()
			defer t.mu.Unlock()
			return float64(t.evictions)
		})
}

func (t *Tracker) samples(value func(Stats) float64) []telemetry.Sample {
	if t == nil {
		return []telemetry.Sample{{Labels: []string{"other"}, Value: 0}}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]telemetry.Sample, 0, len(t.tracked)+1)
	for _, e := range t.tracked {
		out = append(out, telemetry.Sample{Labels: []string{e.Key}, Value: value(e.Stats)})
	}
	out = append(out, telemetry.Sample{Labels: []string{"other"}, Value: value(t.other)})
	return out
}
