// Package schema implements the abstract XML Schemas of EDBT'04 §3: a
// 4-tuple (Σ, T, ρ, R) where Σ is the element-label alphabet, T a finite
// set of types, ρ assigns each type either a simple-type declaration or a
// complex declaration (regexp_τ over Σ plus a label→type map types_τ), and
// R maps permitted root labels to their types.
//
// Beyond the paper's single merged simple type, simple types here carry a
// small facet lattice (numeric bounds, length bounds, enumerations) — the
// "straightforward extension" the paper describes, and the machinery the
// paper's Experiment 2 (maxExclusive 100 vs 200) exercises.
package schema

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/fa"
	"repro/internal/ident"
	"repro/internal/regexpsym"
)

// TypeID identifies a type within one Schema. IDs are dense, starting at 0.
type TypeID int32

// NoType marks an absent type reference.
const NoType TypeID = -1

// Type is a single declaration of ρ.
type Type struct {
	ID   TypeID
	Name string
	// Simple declarations carry value constraints; complex declarations
	// carry a content model.
	Simple bool
	// Value holds the simple-type facets (nil means the unconstrained
	// simple type, the paper's single χ type).
	Value *SimpleType
	// Content is regexp_τ; nil for simple types.
	Content regexpsym.Node
	// DFA is the compiled, minimized content-model automaton. Populated
	// by Schema.Compile.
	DFA *fa.DFA
	// Child is types_τ: the type assigned to each child label permitted
	// by the content model.
	Child map[fa.Symbol]TypeID
	// SkipUPA exempts the content model from the 1-unambiguity check.
	// XML Schema's xs:all groups compile to permutation alternations that
	// are legitimately outside the Unique Particle Attribution rule.
	SkipUPA bool
}

// Schema is an abstract XML Schema (Σ, T, ρ, R).
type Schema struct {
	// Alpha is Σ. Schemas that are compared (subsumption, disjointness,
	// casting) must share one Alphabet instance.
	Alpha *fa.Alphabet
	// Types is T ∪ ρ, indexed by TypeID.
	Types []*Type
	// Roots is R: the root labels a valid document may have, with the
	// type assigned to each.
	Roots map[fa.Symbol]TypeID
	// Ident holds the schema's identity constraints (xs:unique/key/keyref),
	// when any were declared. Identity validation is separate from
	// structural validation — the paper's formalism covers structure only,
	// and names key constraints as the extension this field supplies.
	Ident *ident.Validator

	byName     map[string]TypeID
	compiled   bool
	productive []bool
}

// New returns an empty schema over the given (possibly shared) alphabet.
func New(alpha *fa.Alphabet) *Schema {
	if alpha == nil {
		alpha = fa.NewAlphabet()
	}
	return &Schema{
		Alpha:  alpha,
		Roots:  map[fa.Symbol]TypeID{},
		byName: map[string]TypeID{},
	}
}

// AddComplexType declares a complex type with the given content model.
// Child type assignments are added with SetChildType. Type names must be
// unique within the schema.
func (s *Schema) AddComplexType(name string, content regexpsym.Node) (TypeID, error) {
	return s.addType(&Type{Name: name, Content: content, Child: map[fa.Symbol]TypeID{}})
}

// AddSimpleType declares a simple type. facets may be nil for the
// unconstrained simple type.
func (s *Schema) AddSimpleType(name string, facets *SimpleType) (TypeID, error) {
	return s.addType(&Type{Name: name, Simple: true, Value: facets})
}

func (s *Schema) addType(t *Type) (TypeID, error) {
	if t.Name == "" {
		return NoType, errors.New("schema: type name must be non-empty")
	}
	if _, dup := s.byName[t.Name]; dup {
		return NoType, fmt.Errorf("schema: duplicate type %q", t.Name)
	}
	t.ID = TypeID(len(s.Types))
	s.Types = append(s.Types, t)
	s.byName[t.Name] = t.ID
	s.compiled = false
	return t.ID, nil
}

// TypeByName resolves a type name, returning NoType when absent.
func (s *Schema) TypeByName(name string) TypeID {
	if id, ok := s.byName[name]; ok {
		return id
	}
	return NoType
}

// TypeOf returns the type with the given id. It panics on NoType.
func (s *Schema) TypeOf(id TypeID) *Type { return s.Types[id] }

// SetChildType records types_τ(label) = child for the complex type τ.
// The label is interned into Σ.
func (s *Schema) SetChildType(τ TypeID, label string, child TypeID) error {
	t := s.Types[τ]
	if t.Simple {
		return fmt.Errorf("schema: simple type %q has no child types", t.Name)
	}
	sym := s.Alpha.Intern(label)
	if prev, ok := t.Child[sym]; ok && prev != child {
		// XML Schema: two children of an element with the same label must
		// be assigned the same type.
		return fmt.Errorf("schema: type %q assigns label %q two types", t.Name, label)
	}
	t.Child[sym] = child
	s.compiled = false
	return nil
}

// SetRoot records R(label) = τ.
func (s *Schema) SetRoot(label string, τ TypeID) {
	s.Roots[s.Alpha.Intern(label)] = τ
	s.compiled = false
}

// RootType returns R(label), or NoType when label cannot be a root.
func (s *Schema) RootType(label string) TypeID {
	sym := s.Alpha.Lookup(label)
	if sym == fa.NoSymbol {
		return NoType
	}
	if id, ok := s.Roots[sym]; ok {
		return id
	}
	return NoType
}

// RootTypeSym is RootType for an already-resolved label symbol.
func (s *Schema) RootTypeSym(sym fa.Symbol) TypeID {
	if sym == fa.NoSymbol {
		return NoType
	}
	if id, ok := s.Roots[sym]; ok {
		return id
	}
	return NoType
}

// Compile validates the schema's internal consistency, checks every content
// model for 1-unambiguity (the XML Schema UPA constraint / determinism
// requirement the paper's optimality results rest on), compiles content
// models to minimal DFAs, and prunes non-productive types (§3). It must be
// called before validation or relation computation; loaders call it
// automatically.
func (s *Schema) Compile() error {
	if s.compiled {
		return nil
	}
	for _, t := range s.Types {
		if t.Simple {
			continue
		}
		if t.Content == nil {
			return fmt.Errorf("schema: complex type %q has no content model", t.Name)
		}
		// Every label used in regexp_τ must have a child type assigned,
		// and that type must exist.
		for _, label := range regexpsym.Labels(t.Content) {
			sym := s.Alpha.Intern(label)
			child, ok := t.Child[sym]
			if !ok {
				return fmt.Errorf("schema: type %q uses label %q without a child type", t.Name, label)
			}
			if int(child) < 0 || int(child) >= len(s.Types) {
				return fmt.Errorf("schema: type %q label %q references unknown type id %d", t.Name, label, child)
			}
		}
		if !t.SkipUPA && !regexpsym.IsOneUnambiguous(t.Content) {
			return fmt.Errorf("schema: content model of type %q (%s) is not 1-unambiguous",
				t.Name, regexpsym.String(t.Content))
		}
	}
	for _, τ := range s.Roots {
		if int(τ) < 0 || int(τ) >= len(s.Types) {
			return fmt.Errorf("schema: root references unknown type id %d", τ)
		}
	}
	// Compile after all labels are interned so every DFA shares the full
	// alphabet (required for cross-schema automaton products).
	for _, t := range s.Types {
		if !t.Simple {
			t.DFA = regexpsym.Compile(t.Content, s.Alpha)
		}
	}
	if err := s.pruneNonProductive(); err != nil {
		return err
	}
	s.compiled = true
	return nil
}

// MustCompile is Compile that panics on error; for tests and literals.
func (s *Schema) MustCompile() *Schema {
	if err := s.Compile(); err != nil {
		panic(err)
	}
	return s
}

// Compiled reports whether Compile has run since the last mutation.
func (s *Schema) Compiled() bool { return s.compiled }

// WidenToAlphabet re-lays every content automaton out over the alphabet's
// current size. When several schemas share one Alphabet, a schema compiled
// before another interned new labels holds DFAs over the smaller symbol
// space; cross-schema automaton operations require equal widths. Idempotent
// and cheap when already wide enough.
func (s *Schema) WidenToAlphabet() {
	w := s.Alpha.Size()
	for _, t := range s.Types {
		if !t.Simple && t.DFA != nil && t.DFA.NumSymbols() < w {
			t.DFA = t.DFA.Widen(w)
		}
	}
}

// IsDTD reports whether the schema has DTD shape: every element label is
// assigned the same type wherever it occurs (in any types_τ and in R).
// §3.4's optimizations apply exactly to such schemas.
func (s *Schema) IsDTD() bool {
	assigned := map[fa.Symbol]TypeID{}
	consistent := func(sym fa.Symbol, τ TypeID) bool {
		if prev, ok := assigned[sym]; ok {
			return prev == τ
		}
		assigned[sym] = τ
		return true
	}
	for _, t := range s.Types {
		for sym, child := range t.Child {
			if !consistent(sym, child) {
				return false
			}
		}
	}
	for sym, τ := range s.Roots {
		if !consistent(sym, τ) {
			return false
		}
	}
	return true
}

// String renders the schema as an abstract-schema table in the style of the
// paper's Table 1.
func (s *Schema) String() string {
	var b strings.Builder
	names := make([]string, 0, len(s.Types))
	for _, t := range s.Types {
		names = append(names, t.Name)
	}
	sort.Strings(names)
	fmt.Fprintf(&b, "abstract XML schema: %d types, |Σ|=%d\n", len(s.Types), s.Alpha.Size())
	var roots []string
	for sym, τ := range s.Roots {
		roots = append(roots, fmt.Sprintf("%s→%s", s.Alpha.Name(sym), s.Types[τ].Name))
	}
	sort.Strings(roots)
	fmt.Fprintf(&b, "R: %s\n", strings.Join(roots, ", "))
	for _, name := range names {
		t := s.Types[s.byName[name]]
		if t.Simple {
			fmt.Fprintf(&b, "%s: simple", t.Name)
			if t.Value != nil {
				fmt.Fprintf(&b, " %s", t.Value)
			}
			b.WriteByte('\n')
			continue
		}
		fmt.Fprintf(&b, "%s: %s\n", t.Name, regexpsym.String(t.Content))
		var kids []string
		for sym, child := range t.Child {
			kids = append(kids, fmt.Sprintf("%s→%s", s.Alpha.Name(sym), s.Types[child].Name))
		}
		sort.Strings(kids)
		for _, k := range kids {
			fmt.Fprintf(&b, "    %s\n", k)
		}
	}
	return b.String()
}
