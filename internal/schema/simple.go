package schema

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// BaseKind is the primitive value space a simple type restricts. The paper
// merges all simple types into one; this small hierarchy is the
// "straightforward extension" it describes, sufficient for XSD schemas like
// the paper's Figure 2 (string, decimal, positiveInteger with maxExclusive,
// date).
type BaseKind uint8

const (
	// AnySimple accepts any text value (the paper's single χ type).
	AnySimple BaseKind = iota
	// StringKind accepts any text value; length and enumeration facets
	// apply.
	StringKind
	// BooleanKind accepts true/false/1/0.
	BooleanKind
	// DecimalKind accepts decimal numerals.
	DecimalKind
	// IntegerKind accepts integer numerals.
	IntegerKind
	// PositiveIntegerKind accepts integers ≥ 1.
	PositiveIntegerKind
	// DateKind accepts ISO dates (YYYY-MM-DD).
	DateKind
)

var baseNames = map[BaseKind]string{
	AnySimple:           "anySimpleType",
	StringKind:          "string",
	BooleanKind:         "boolean",
	DecimalKind:         "decimal",
	IntegerKind:         "integer",
	PositiveIntegerKind: "positiveInteger",
	DateKind:            "date",
}

func (b BaseKind) String() string {
	if n, ok := baseNames[b]; ok {
		return n
	}
	return fmt.Sprintf("BaseKind(%d)", uint8(b))
}

// BaseKindByName resolves the xsd:-style local name of a primitive type.
// Unknown names map to AnySimple with ok=false so loaders can degrade
// gracefully.
func BaseKindByName(name string) (BaseKind, bool) {
	switch name {
	case "string", "normalizedString", "token", "anyURI", "ID", "IDREF", "NMTOKEN", "Name", "NCName":
		return StringKind, true
	case "boolean":
		return BooleanKind, true
	case "decimal", "float", "double":
		return DecimalKind, true
	case "integer", "int", "long", "short", "byte", "nonNegativeInteger",
		"unsignedInt", "unsignedLong", "unsignedShort", "unsignedByte", "negativeInteger", "nonPositiveInteger":
		return IntegerKind, true
	case "positiveInteger":
		return PositiveIntegerKind, true
	case "date":
		return DateKind, true
	case "anySimpleType":
		return AnySimple, true
	}
	return AnySimple, false
}

// SimpleType is a facet-constrained simple type. A nil *SimpleType is the
// unconstrained simple type; construct non-nil values with NewSimpleType
// (the length facets use -1 for "unset", so the zero value is not useful).
type SimpleType struct {
	Base BaseKind
	// Numeric bound facets; nil means unset. They apply to numeric bases.
	MinInclusive, MaxInclusive *float64
	MinExclusive, MaxExclusive *float64
	// Length facets; -1 means unset. They apply to string bases.
	MinLength, MaxLength int
	// Enumeration, when non-empty, restricts values to this set.
	Enumeration []string
	// ListItem, when non-nil, makes this a list type (xs:list): the value
	// is a whitespace-separated sequence of items, each satisfying
	// ListItem. The length facets then constrain the item count.
	ListItem *SimpleType
}

// NewSimpleType returns an unconstrained simple type of the given base.
func NewSimpleType(base BaseKind) *SimpleType {
	return &SimpleType{Base: base, MinLength: -1, MaxLength: -1}
}

// WithMaxExclusive returns a copy with the maxExclusive facet set.
func (st *SimpleType) WithMaxExclusive(v float64) *SimpleType {
	c := *st
	c.MaxExclusive = &v
	return &c
}

// WithMinInclusive returns a copy with the minInclusive facet set.
func (st *SimpleType) WithMinInclusive(v float64) *SimpleType {
	c := *st
	c.MinInclusive = &v
	return &c
}

// WithMaxInclusive returns a copy with the maxInclusive facet set.
func (st *SimpleType) WithMaxInclusive(v float64) *SimpleType {
	c := *st
	c.MaxInclusive = &v
	return &c
}

// WithMinExclusive returns a copy with the minExclusive facet set.
func (st *SimpleType) WithMinExclusive(v float64) *SimpleType {
	c := *st
	c.MinExclusive = &v
	return &c
}

// WithEnumeration returns a copy restricted to the given values.
func (st *SimpleType) WithEnumeration(values ...string) *SimpleType {
	c := *st
	c.Enumeration = append([]string(nil), values...)
	return &c
}

// WithLength returns a copy with length facets (use -1 to leave one unset).
func (st *SimpleType) WithLength(min, max int) *SimpleType {
	c := *st
	c.MinLength, c.MaxLength = min, max
	return &c
}

// NewListType returns a list type over the given item type (xs:list).
func NewListType(item *SimpleType) *SimpleType {
	st := NewSimpleType(AnySimple)
	st.ListItem = item
	return st
}

func (st *SimpleType) String() string {
	if st == nil {
		return "anySimpleType"
	}
	var parts []string
	if st.ListItem != nil {
		parts = append(parts, "list of "+st.ListItem.String())
	} else {
		parts = append(parts, st.Base.String())
	}
	if st.MinInclusive != nil {
		parts = append(parts, fmt.Sprintf("minInclusive=%g", *st.MinInclusive))
	}
	if st.MaxInclusive != nil {
		parts = append(parts, fmt.Sprintf("maxInclusive=%g", *st.MaxInclusive))
	}
	if st.MinExclusive != nil {
		parts = append(parts, fmt.Sprintf("minExclusive=%g", *st.MinExclusive))
	}
	if st.MaxExclusive != nil {
		parts = append(parts, fmt.Sprintf("maxExclusive=%g", *st.MaxExclusive))
	}
	if st.MinLength >= 0 {
		parts = append(parts, fmt.Sprintf("minLength=%d", st.MinLength))
	}
	if st.MaxLength >= 0 {
		parts = append(parts, fmt.Sprintf("maxLength=%d", st.MaxLength))
	}
	if len(st.Enumeration) > 0 {
		parts = append(parts, fmt.Sprintf("enum{%s}", strings.Join(st.Enumeration, ",")))
	}
	return strings.Join(parts, " ")
}

// AcceptsValue reports whether the text value conforms to the simple type.
// A nil receiver (the unconstrained simple type) accepts everything.
func (st *SimpleType) AcceptsValue(value string) bool {
	if st == nil {
		return true
	}
	if st.ListItem != nil {
		items := strings.Fields(value)
		if st.MinLength >= 0 && len(items) < st.MinLength {
			return false
		}
		if st.MaxLength >= 0 && len(items) > st.MaxLength {
			return false
		}
		for _, item := range items {
			if !st.ListItem.AcceptsValue(item) {
				return false
			}
		}
		if len(st.Enumeration) > 0 {
			found := false
			for _, e := range st.Enumeration {
				if e == strings.TrimSpace(value) {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	v := strings.TrimSpace(value) // xsd whitespace collapse for non-string bases
	var num float64
	switch st.Base {
	case AnySimple, StringKind:
		// length facets apply to the raw value for string kinds
	case BooleanKind:
		if v != "true" && v != "false" && v != "1" && v != "0" {
			return false
		}
	case DecimalKind:
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return false
		}
		num = f
	case IntegerKind, PositiveIntegerKind:
		i, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return false
		}
		if st.Base == PositiveIntegerKind && i < 1 {
			return false
		}
		num = float64(i)
	case DateKind:
		if _, err := time.Parse("2006-01-02", v); err != nil {
			return false
		}
	}
	if numericBase(st.Base) {
		if st.MinInclusive != nil && num < *st.MinInclusive {
			return false
		}
		if st.MaxInclusive != nil && num > *st.MaxInclusive {
			return false
		}
		if st.MinExclusive != nil && num <= *st.MinExclusive {
			return false
		}
		if st.MaxExclusive != nil && num >= *st.MaxExclusive {
			return false
		}
	}
	if st.MinLength >= 0 && len(value) < st.MinLength {
		return false
	}
	if st.MaxLength >= 0 && len(value) > st.MaxLength {
		return false
	}
	if len(st.Enumeration) > 0 {
		found := false
		for _, e := range st.Enumeration {
			if e == v || e == value {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

func numericBase(b BaseKind) bool {
	switch b {
	case DecimalKind, IntegerKind, PositiveIntegerKind:
		return true
	}
	return false
}

// effective numeric range of a simple type as [lo, hi] with inclusivity
// flags; ok=false when the base is non-numeric.
func (st *SimpleType) numericRange() (lo, hi float64, loIncl, hiIncl, ok bool) {
	if st == nil || !numericBase(st.Base) {
		return 0, 0, false, false, false
	}
	lo, hi = negInf, posInf
	loIncl, hiIncl = true, true
	if st.Base == PositiveIntegerKind {
		lo, loIncl = 1, true
	}
	if st.MinInclusive != nil && *st.MinInclusive > lo {
		lo, loIncl = *st.MinInclusive, true
	}
	if st.MinExclusive != nil && *st.MinExclusive >= lo {
		lo, loIncl = *st.MinExclusive, false
	}
	if st.MaxInclusive != nil && *st.MaxInclusive < hi {
		hi, hiIncl = *st.MaxInclusive, true
	}
	if st.MaxExclusive != nil && *st.MaxExclusive <= hi {
		hi, hiIncl = *st.MaxExclusive, false
	}
	return lo, hi, loIncl, hiIncl, true
}

var (
	negInf = math.Inf(-1)
	posInf = math.Inf(1)
)

// SimpleSubsumed reports whether every value accepted by a is accepted by
// b, conservatively: true only when subsumption is certain. (Soundness is
// what R_sub needs; incompleteness merely costs skipping opportunities.)
func SimpleSubsumed(a, b *SimpleType) bool {
	if b == nil || b.Base == AnySimple && noFacets(b) {
		return true
	}
	if a == nil {
		return false // unconstrained a, constrained b
	}
	// List types: both lists with nested item spaces and length windows,
	// or conservative false (a list value like "1 2" is rarely valid for a
	// scalar type, and vice versa — only certainty may answer true).
	if a.ListItem != nil || b.ListItem != nil {
		if a.ListItem == nil || b.ListItem == nil {
			return false
		}
		if !SimpleSubsumed(a.ListItem, b.ListItem) {
			return false
		}
		aMin, aMax := lengthWindow(a)
		bMin, bMax := lengthWindow(b)
		if aMin < bMin {
			return false
		}
		if bMax >= 0 && (aMax < 0 || aMax > bMax) {
			return false
		}
		return len(b.Enumeration) == 0
	}
	if !baseSubsumed(a.Base, b.Base) {
		return false
	}
	// Enumerated a: check each value directly — exact, not conservative.
	if len(a.Enumeration) > 0 {
		for _, v := range a.Enumeration {
			if !b.AcceptsValue(v) {
				return false
			}
		}
		return true
	}
	if len(b.Enumeration) > 0 {
		return false // non-enumerated a can take values outside b's enum
	}
	// Numeric range nesting.
	if numericBase(a.Base) {
		alo, ahi, aloI, ahiI, _ := a.numericRange()
		blo, bhi, bloI, bhiI, ok := b.numericRange()
		if !ok {
			// b is string-like (baseSubsumed held): sound only when b has
			// no facets of its own.
			return noFacets(b)
		}
		if alo < blo || (alo == blo && aloI && !bloI) {
			return false
		}
		if ahi > bhi || (ahi == bhi && ahiI && !bhiI) {
			return false
		}
		return true
	}
	// String-ish: length nesting.
	aMin, aMax := a.MinLength, a.MaxLength
	if aMin < 0 {
		aMin = 0
	}
	if b.MinLength >= 0 && aMin < b.MinLength {
		return false
	}
	if b.MaxLength >= 0 && (aMax < 0 || aMax > b.MaxLength) {
		return false
	}
	return true
}

// baseSubsumed reports whether every lexical value of base a is a valid
// value of base b.
func baseSubsumed(a, b BaseKind) bool {
	if a == b || b == AnySimple || b == StringKind {
		return true
	}
	switch a {
	case PositiveIntegerKind:
		return b == IntegerKind || b == DecimalKind
	case IntegerKind:
		return b == DecimalKind
	case BooleanKind:
		return false // "true" is not a decimal; "1" is — mixed, so no
	}
	return false
}

// SimpleDisjoint reports whether no value is accepted by both a and b,
// conservatively: true only when disjointness is certain.
func SimpleDisjoint(a, b *SimpleType) bool {
	if a == nil || b == nil {
		return false
	}
	if a.ListItem != nil || b.ListItem != nil {
		// Lists share the empty sequence / single-item overlap too often
		// to decide soundly without deeper analysis; never claim disjoint.
		return false
	}
	// Enumerations give exact answers.
	if len(a.Enumeration) > 0 {
		for _, v := range a.Enumeration {
			if a.AcceptsValue(v) && b.AcceptsValue(v) {
				return false
			}
		}
		return true
	}
	if len(b.Enumeration) > 0 {
		return SimpleDisjoint(b, a)
	}
	// Disjoint numeric ranges (both numeric bases).
	if numericBase(a.Base) && numericBase(b.Base) {
		alo, ahi, aloI, ahiI, _ := a.numericRange()
		blo, bhi, bloI, bhiI, _ := b.numericRange()
		if ahi < blo || (ahi == blo && !(ahiI && bloI)) {
			// Integer granularity: (x, x+1) ranges may still be empty for
			// integer bases, but conservative is fine.
			return true
		}
		if bhi < alo || (bhi == alo && !(bhiI && aloI)) {
			return true
		}
		return false
	}
	// Lexically disjoint bases.
	if lexicallyDisjoint(a.Base, b.Base) {
		return true
	}
	// Incompatible length windows for string-ish types.
	if !numericBase(a.Base) && !numericBase(b.Base) {
		aMin, aMax := lengthWindow(a)
		bMin, bMax := lengthWindow(b)
		if aMax >= 0 && aMax < bMin {
			return true
		}
		if bMax >= 0 && bMax < aMin {
			return true
		}
	}
	return false
}

func lengthWindow(st *SimpleType) (min, max int) {
	min, max = 0, -1
	if st.MinLength >= 0 {
		min = st.MinLength
	}
	if st.MaxLength >= 0 {
		max = st.MaxLength
	}
	return min, max
}

// lexicallyDisjoint reports whether the two bases share no lexical values
// at all. Kept deliberately conservative: string and anySimpleType overlap
// everything; boolean shares "1"/"0" with the numeric types; dates are
// disjoint from numerics and booleans.
func lexicallyDisjoint(a, b BaseKind) bool {
	if a == AnySimple || b == AnySimple || a == StringKind || b == StringKind {
		return false
	}
	if a == b {
		return false
	}
	pair := func(x, y BaseKind) bool { return a == x && b == y || a == y && b == x }
	switch {
	case pair(DateKind, BooleanKind),
		pair(DateKind, DecimalKind),
		pair(DateKind, IntegerKind),
		pair(DateKind, PositiveIntegerKind):
		return true
	}
	return false
}

func noFacets(st *SimpleType) bool {
	return st.MinInclusive == nil && st.MaxInclusive == nil &&
		st.MinExclusive == nil && st.MaxExclusive == nil &&
		st.MinLength < 0 && st.MaxLength < 0 && len(st.Enumeration) == 0 &&
		st.ListItem == nil
}
