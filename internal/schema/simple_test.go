package schema

import (
	"strings"
	"testing"
)

func TestAcceptsValueBases(t *testing.T) {
	cases := []struct {
		st    *SimpleType
		value string
		want  bool
	}{
		{nil, "anything at all", true},
		{NewSimpleType(AnySimple), "x", true},
		{NewSimpleType(StringKind), "hello", true},
		{NewSimpleType(BooleanKind), "true", true},
		{NewSimpleType(BooleanKind), "false", true},
		{NewSimpleType(BooleanKind), "1", true},
		{NewSimpleType(BooleanKind), "0", true},
		{NewSimpleType(BooleanKind), "yes", false},
		{NewSimpleType(DecimalKind), "3.14", true},
		{NewSimpleType(DecimalKind), "-2", true},
		{NewSimpleType(DecimalKind), "abc", false},
		{NewSimpleType(IntegerKind), "42", true},
		{NewSimpleType(IntegerKind), "-7", true},
		{NewSimpleType(IntegerKind), "3.5", false},
		{NewSimpleType(PositiveIntegerKind), "1", true},
		{NewSimpleType(PositiveIntegerKind), "0", false},
		{NewSimpleType(PositiveIntegerKind), "-3", false},
		{NewSimpleType(DateKind), "2004-03-14", true},
		{NewSimpleType(DateKind), "2004-13-40", false},
		{NewSimpleType(DateKind), "yesterday", false},
		// Whitespace collapse for non-string kinds.
		{NewSimpleType(IntegerKind), "  42  ", true},
	}
	for _, c := range cases {
		if got := c.st.AcceptsValue(c.value); got != c.want {
			t.Errorf("%s accepts %q = %v, want %v", c.st, c.value, got, c.want)
		}
	}
}

func TestAcceptsValueFacets(t *testing.T) {
	qty := NewSimpleType(PositiveIntegerKind).WithMaxExclusive(100)
	if !qty.AcceptsValue("99") || qty.AcceptsValue("100") || qty.AcceptsValue("150") {
		t.Fatal("maxExclusive=100 misbehaves")
	}
	rng := NewSimpleType(IntegerKind).WithMinInclusive(10).WithMaxInclusive(20)
	for _, c := range []struct {
		v    string
		want bool
	}{{"9", false}, {"10", true}, {"20", true}, {"21", false}} {
		if rng.AcceptsValue(c.v) != c.want {
			t.Fatalf("range accepts %s != %v", c.v, c.want)
		}
	}
	exc := NewSimpleType(IntegerKind).WithMinExclusive(0)
	if exc.AcceptsValue("0") || !exc.AcceptsValue("1") {
		t.Fatal("minExclusive misbehaves")
	}
	lens := NewSimpleType(StringKind).WithLength(2, 4)
	for _, c := range []struct {
		v    string
		want bool
	}{{"a", false}, {"ab", true}, {"abcd", true}, {"abcde", false}} {
		if lens.AcceptsValue(c.v) != c.want {
			t.Fatalf("length accepts %q != %v", c.v, c.want)
		}
	}
	enum := NewSimpleType(StringKind).WithEnumeration("US", "CA")
	if !enum.AcceptsValue("US") || enum.AcceptsValue("MX") {
		t.Fatal("enumeration misbehaves")
	}
}

func TestSimpleSubsumed(t *testing.T) {
	cases := []struct {
		name string
		a, b *SimpleType
		want bool
	}{
		{"anything under nil", NewSimpleType(IntegerKind), nil, true},
		{"nil under constrained", nil, NewSimpleType(IntegerKind), false},
		{"same type", NewSimpleType(IntegerKind), NewSimpleType(IntegerKind), true},
		{"posInt under integer", NewSimpleType(PositiveIntegerKind), NewSimpleType(IntegerKind), true},
		{"integer under decimal", NewSimpleType(IntegerKind), NewSimpleType(DecimalKind), true},
		{"integer NOT under posInt", NewSimpleType(IntegerKind), NewSimpleType(PositiveIntegerKind), false},
		{"integer under string", NewSimpleType(IntegerKind), NewSimpleType(StringKind), true},
		{"string NOT under integer", NewSimpleType(StringKind), NewSimpleType(IntegerKind), false},
		{"date under string", NewSimpleType(DateKind), NewSimpleType(StringKind), true},
		// Paper Experiment 2: quantity < 100 is subsumed by quantity < 200
		// and not vice versa.
		{"max100 under max200",
			NewSimpleType(PositiveIntegerKind).WithMaxExclusive(100),
			NewSimpleType(PositiveIntegerKind).WithMaxExclusive(200), true},
		{"max200 NOT under max100",
			NewSimpleType(PositiveIntegerKind).WithMaxExclusive(200),
			NewSimpleType(PositiveIntegerKind).WithMaxExclusive(100), false},
		{"equal exclusive bounds",
			NewSimpleType(PositiveIntegerKind).WithMaxExclusive(100),
			NewSimpleType(PositiveIntegerKind).WithMaxExclusive(100), true},
		{"inclusive NOT under equal exclusive",
			NewSimpleType(IntegerKind).WithMaxInclusive(100),
			NewSimpleType(IntegerKind).WithMaxExclusive(100), false},
		{"exclusive under equal inclusive",
			NewSimpleType(IntegerKind).WithMaxExclusive(100),
			NewSimpleType(IntegerKind).WithMaxInclusive(100), true},
		{"enum subset",
			NewSimpleType(StringKind).WithEnumeration("a", "b"),
			NewSimpleType(StringKind).WithEnumeration("a", "b", "c"), true},
		{"enum not subset",
			NewSimpleType(StringKind).WithEnumeration("a", "z"),
			NewSimpleType(StringKind).WithEnumeration("a", "b", "c"), false},
		{"enum values inside numeric range",
			NewSimpleType(IntegerKind).WithEnumeration("5", "6"),
			NewSimpleType(IntegerKind).WithMaxInclusive(10), true},
		{"open type NOT under enum",
			NewSimpleType(StringKind),
			NewSimpleType(StringKind).WithEnumeration("a"), false},
		{"length nesting",
			NewSimpleType(StringKind).WithLength(2, 4),
			NewSimpleType(StringKind).WithLength(1, 5), true},
		{"length not nested",
			NewSimpleType(StringKind).WithLength(1, 5),
			NewSimpleType(StringKind).WithLength(2, 4), false},
	}
	for _, c := range cases {
		if got := SimpleSubsumed(c.a, c.b); got != c.want {
			t.Errorf("%s: SimpleSubsumed = %v, want %v", c.name, got, c.want)
		}
	}
}

// Subsumption claims must be sound: whenever SimpleSubsumed says true,
// sample values accepted by a must be accepted by b.
func TestSimpleSubsumedSoundness(t *testing.T) {
	types := []*SimpleType{
		nil,
		NewSimpleType(AnySimple),
		NewSimpleType(StringKind),
		NewSimpleType(BooleanKind),
		NewSimpleType(DecimalKind),
		NewSimpleType(IntegerKind),
		NewSimpleType(PositiveIntegerKind),
		NewSimpleType(DateKind),
		NewSimpleType(PositiveIntegerKind).WithMaxExclusive(100),
		NewSimpleType(PositiveIntegerKind).WithMaxExclusive(200),
		NewSimpleType(IntegerKind).WithMinInclusive(-5).WithMaxInclusive(5),
		NewSimpleType(StringKind).WithEnumeration("a", "bb", "ccc"),
		NewSimpleType(StringKind).WithLength(1, 3),
		NewSimpleType(DecimalKind).WithMinExclusive(0),
	}
	samples := []string{
		"", "a", "bb", "ccc", "dddd", "true", "false", "1", "0", "-1",
		"5", "-5", "42", "99", "100", "150", "199", "200", "3.14", "-0.5",
		"2004-03-14", "not-a-value", "  7 ",
	}
	for _, a := range types {
		for _, b := range types {
			if !SimpleSubsumed(a, b) {
				continue
			}
			for _, v := range samples {
				if a.AcceptsValue(v) && !b.AcceptsValue(v) {
					t.Fatalf("unsound: %s ⊆ %s claimed but value %q separates them",
						a, b, v)
				}
			}
		}
	}
}

func TestSimpleDisjoint(t *testing.T) {
	cases := []struct {
		name string
		a, b *SimpleType
		want bool
	}{
		{"nil never disjoint", nil, NewSimpleType(IntegerKind), false},
		{"same base", NewSimpleType(IntegerKind), NewSimpleType(IntegerKind), false},
		{"disjoint numeric ranges",
			NewSimpleType(IntegerKind).WithMaxInclusive(10),
			NewSimpleType(IntegerKind).WithMinInclusive(20), true},
		{"touching inclusive ranges overlap",
			NewSimpleType(IntegerKind).WithMaxInclusive(10),
			NewSimpleType(IntegerKind).WithMinInclusive(10), false},
		{"touching exclusive ranges disjoint",
			NewSimpleType(IntegerKind).WithMaxExclusive(10),
			NewSimpleType(IntegerKind).WithMinInclusive(10), true},
		{"date vs integer", NewSimpleType(DateKind), NewSimpleType(IntegerKind), true},
		{"date vs boolean", NewSimpleType(DateKind), NewSimpleType(BooleanKind), true},
		{"boolean vs integer share 1/0", NewSimpleType(BooleanKind), NewSimpleType(IntegerKind), false},
		{"string overlaps everything", NewSimpleType(StringKind), NewSimpleType(DateKind), false},
		{"disjoint enums",
			NewSimpleType(StringKind).WithEnumeration("a", "b"),
			NewSimpleType(StringKind).WithEnumeration("c"), true},
		{"overlapping enums",
			NewSimpleType(StringKind).WithEnumeration("a", "b"),
			NewSimpleType(StringKind).WithEnumeration("b", "c"), false},
		{"enum vs range with no overlap",
			NewSimpleType(IntegerKind).WithEnumeration("1", "2"),
			NewSimpleType(IntegerKind).WithMinInclusive(10), true},
		{"length windows disjoint",
			NewSimpleType(StringKind).WithLength(0, 2),
			NewSimpleType(StringKind).WithLength(5, 9), true},
	}
	for _, c := range cases {
		if got := SimpleDisjoint(c.a, c.b); got != c.want {
			t.Errorf("%s: SimpleDisjoint = %v, want %v", c.name, got, c.want)
		}
		if got := SimpleDisjoint(c.b, c.a); got != c.want {
			t.Errorf("%s (swapped): SimpleDisjoint = %v, want %v", c.name, got, c.want)
		}
	}
}

// Disjointness claims must be sound: whenever SimpleDisjoint says true, no
// sample value may be accepted by both.
func TestSimpleDisjointSoundness(t *testing.T) {
	types := []*SimpleType{
		nil,
		NewSimpleType(StringKind),
		NewSimpleType(BooleanKind),
		NewSimpleType(IntegerKind),
		NewSimpleType(PositiveIntegerKind).WithMaxExclusive(100),
		NewSimpleType(IntegerKind).WithMinInclusive(200),
		NewSimpleType(DateKind),
		NewSimpleType(StringKind).WithEnumeration("x", "y"),
		NewSimpleType(StringKind).WithLength(1, 2),
		NewSimpleType(StringKind).WithLength(6, -1),
	}
	samples := []string{
		"", "x", "y", "zz", "longer-string", "true", "1", "0", "50", "99",
		"100", "200", "250", "2004-03-14",
	}
	for _, a := range types {
		for _, b := range types {
			if !SimpleDisjoint(a, b) {
				continue
			}
			for _, v := range samples {
				if a.AcceptsValue(v) && b.AcceptsValue(v) {
					t.Fatalf("unsound: %s ⊘ %s claimed but both accept %q", a, b, v)
				}
			}
		}
	}
}

func TestBaseKindByName(t *testing.T) {
	cases := []struct {
		name string
		want BaseKind
		ok   bool
	}{
		{"string", StringKind, true},
		{"token", StringKind, true},
		{"boolean", BooleanKind, true},
		{"decimal", DecimalKind, true},
		{"double", DecimalKind, true},
		{"integer", IntegerKind, true},
		{"int", IntegerKind, true},
		{"positiveInteger", PositiveIntegerKind, true},
		{"date", DateKind, true},
		{"anySimpleType", AnySimple, true},
		{"gYearMonth", AnySimple, false},
	}
	for _, c := range cases {
		got, ok := BaseKindByName(c.name)
		if got != c.want || ok != c.ok {
			t.Errorf("BaseKindByName(%q) = %v,%v want %v,%v", c.name, got, ok, c.want, c.ok)
		}
	}
}

func TestSimpleTypeString(t *testing.T) {
	st := NewSimpleType(PositiveIntegerKind).WithMaxExclusive(100)
	if !strings.Contains(st.String(), "positiveInteger") ||
		!strings.Contains(st.String(), "maxExclusive=100") {
		t.Fatalf("String = %q", st.String())
	}
	var nilST *SimpleType
	if nilST.String() != "anySimpleType" {
		t.Fatalf("nil String = %q", nilST.String())
	}
}
