package schema

import "repro/internal/fa"

// Productive reports, per TypeID, whether valid(τ) ≠ ∅. Populated by
// Compile (the §3 fixpoint); nil before compilation.
func (s *Schema) Productive() []bool { return s.productive }

// pruneNonProductive runs the §3 productivity analysis and rewrite:
//
//  1. Simple types are productive.
//  2. A complex type τ is productive iff L(regexp_τ) ∩ ProdLabels_τ* ≠ ∅,
//     where ProdLabels_τ = { σ : types_τ(σ) is productive }.
//  3. Iterate to a fixpoint.
//
// Afterwards each complex type's automaton is restricted to
// ProdLabels_τ* — the paper's rewrite producing a schema whose types are
// all productive without changing the set of valid documents. Types that
// remain non-productive keep an empty-language automaton, so validation
// against them fails as it must.
func (s *Schema) pruneNonProductive() error {
	n := len(s.Types)
	prod := make([]bool, n)
	for _, t := range s.Types {
		if t.Simple {
			prod[t.ID] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, t := range s.Types {
			if t.Simple || prod[t.ID] {
				continue
			}
			if fa.NonemptyRestricted(t.DFA, s.allowedMask(t, prod)) {
				prod[t.ID] = true
				changed = true
			}
		}
	}
	for _, t := range s.Types {
		if t.Simple {
			continue
		}
		t.DFA = fa.RestrictSymbols(t.DFA, s.allowedMask(t, prod))
	}
	s.productive = prod
	return nil
}

// allowedMask returns the per-symbol mask of labels whose assigned child
// type is currently known productive.
func (s *Schema) allowedMask(t *Type, prod []bool) []bool {
	mask := make([]bool, s.Alpha.Size())
	for sym, child := range t.Child {
		if prod[child] {
			mask[sym] = true
		}
	}
	return mask
}
