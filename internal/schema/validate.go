package schema

import (
	"fmt"
	"strings"

	"repro/internal/fa"
	"repro/internal/regexpsym"
	"repro/internal/xmltree"
)

// ValidationError reports why a document failed validation, with an
// XPath-like location.
type ValidationError struct {
	Path   string
	Reason string
}

func (e *ValidationError) Error() string {
	return fmt.Sprintf("validation failed at %s: %s", e.Path, e.Reason)
}

// NodePath renders an XPath-like path for diagnostics
// (/purchaseOrder/items/item[2]/quantity).
func NodePath(n *xmltree.Node) string {
	if n == nil {
		return "/"
	}
	var parts []string
	for cur := n; cur != nil; cur = cur.Parent {
		label := cur.EffectiveLabel()
		if cur.Parent != nil {
			// Position among same-labelled siblings (1-based), XPath style.
			pos, total := 1, 0
			for _, sib := range cur.Parent.Children {
				if sib.EffectiveLabel() == label {
					total++
					if sib == cur {
						pos = total
					}
				}
			}
			if total > 1 {
				label = fmt.Sprintf("%s[%d]", label, pos)
			}
		}
		parts = append(parts, label)
	}
	var b strings.Builder
	for i := len(parts) - 1; i >= 0; i-- {
		b.WriteByte('/')
		b.WriteString(parts[i])
	}
	return b.String()
}

// Validate checks the document against the schema — the paper's doValidate:
// the root label must be in R's domain and the tree must be in
// valid(R(λ(T))). It returns nil when valid and a *ValidationError
// otherwise. Trees carrying Δ annotations are validated in their
// post-modification projection (tombstones skipped, current labels used).
//
// The schema must be compiled.
func (s *Schema) Validate(root *xmltree.Node) error {
	s.mustBeCompiled()
	if root.IsText() {
		return &ValidationError{Path: "/", Reason: "root must be an element"}
	}
	τ := s.RootType(root.Label)
	if τ == NoType {
		return &ValidationError{
			Path:   NodePath(root),
			Reason: fmt.Sprintf("label %q is not a permitted root", root.Label),
		}
	}
	return s.ValidateType(τ, root)
}

// ValidateType checks that the subtree rooted at e is in valid(τ) — the
// paper's validate(τ, e).
func (s *Schema) ValidateType(τ TypeID, e *xmltree.Node) error {
	s.mustBeCompiled()
	t := s.Types[τ]
	if t.Simple {
		return s.validateSimple(t, e)
	}
	kids := liveElementChildren(e)
	if kids == nil {
		return &ValidationError{
			Path:   NodePath(e),
			Reason: fmt.Sprintf("type %q has element content but node has text content", t.Name),
		}
	}
	// Content-model check: constructstring(children(e)) ∈ L(regexp_τ)?
	state := t.DFA.Start()
	for _, c := range kids {
		sym := s.Alpha.Lookup(c.Label)
		if sym == fa.NoSymbol {
			return &ValidationError{
				Path:   NodePath(c),
				Reason: fmt.Sprintf("label %q unknown to the schema", c.Label),
			}
		}
		state = t.DFA.Step(state, sym)
		if state == fa.Dead {
			return &ValidationError{
				Path:   NodePath(c),
				Reason: fmt.Sprintf("child %q not allowed here by content model %q of type %q", c.Label, contentString(t), t.Name),
			}
		}
	}
	if !t.DFA.IsAccept(state) {
		return &ValidationError{
			Path:   NodePath(e),
			Reason: fmt.Sprintf("children do not complete content model %q of type %q", contentString(t), t.Name),
		}
	}
	for _, c := range kids {
		child := t.Child[s.Alpha.Lookup(c.Label)]
		if err := s.ValidateType(child, c); err != nil {
			return err
		}
	}
	return nil
}

// validateSimple checks an element against a simple type: its content must
// be a single χ leaf (or empty, denoting the empty string), and the value
// must satisfy the facets.
func (s *Schema) validateSimple(t *Type, e *xmltree.Node) error {
	value, err := simpleValue(e)
	if err != nil {
		return &ValidationError{
			Path:   NodePath(e),
			Reason: fmt.Sprintf("type %q is simple: %v", t.Name, err),
		}
	}
	if !t.Value.AcceptsValue(value) {
		return &ValidationError{
			Path:   NodePath(e),
			Reason: fmt.Sprintf("value %q does not satisfy simple type %q (%s)", value, t.Name, t.Value),
		}
	}
	return nil
}

// simpleValue extracts the text value of an element expected to have
// simple content, ignoring tombstoned children.
func simpleValue(e *xmltree.Node) (string, error) {
	value := ""
	seen := 0
	for _, c := range e.Children {
		if c.Delta == xmltree.DeltaDelete {
			continue
		}
		if !c.IsText() {
			return "", fmt.Errorf("element content %q not allowed", c.Label)
		}
		seen++
		if seen > 1 {
			return "", fmt.Errorf("multiple text children")
		}
		value = c.Text
	}
	return value, nil
}

// liveElementChildren returns e's non-tombstoned element children, or nil
// when e has live text content (which element-only content models forbid).
// An element with no live children returns an empty non-nil slice.
func liveElementChildren(e *xmltree.Node) []*xmltree.Node {
	out := make([]*xmltree.Node, 0, len(e.Children))
	for _, c := range e.Children {
		if c.Delta == xmltree.DeltaDelete {
			continue
		}
		if c.IsText() {
			return nil
		}
		out = append(out, c)
	}
	return out
}

func contentString(t *Type) string {
	if t.Content == nil {
		return ""
	}
	return regexpsym.String(t.Content)
}

func (s *Schema) mustBeCompiled() {
	if !s.compiled {
		panic("schema: Compile must be called before validation")
	}
}
