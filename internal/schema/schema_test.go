package schema

import (
	"strings"
	"testing"

	"repro/internal/fa"
	"repro/internal/regexpsym"
	"repro/internal/xmltree"
)

// buildPOType1 builds the paper's Figure 1a schema fragment: purchaseOrder
// of type POType1 = (shipTo, billTo?, items), with USAddress and Items
// simplified to simple-typed leaves for these unit tests.
func buildPOType1(t *testing.T, alpha *fa.Alphabet) *Schema {
	t.Helper()
	s := New(alpha)
	simple, err := s.AddSimpleType("xstring", nil)
	if err != nil {
		t.Fatal(err)
	}
	po, err := s.AddComplexType("POType1", regexpsym.MustParse("shipTo, billTo?, items"))
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range []string{"shipTo", "billTo", "items"} {
		if err := s.SetChildType(po, l, simple); err != nil {
			t.Fatal(err)
		}
	}
	s.SetRoot("purchaseOrder", po)
	if err := s.Compile(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBuilderBasics(t *testing.T) {
	s := buildPOType1(t, nil)
	if got := s.TypeByName("POType1"); got == NoType {
		t.Fatal("POType1 should resolve")
	}
	if s.TypeByName("nope") != NoType {
		t.Fatal("unknown type should be NoType")
	}
	if s.RootType("purchaseOrder") == NoType {
		t.Fatal("purchaseOrder should be a root")
	}
	if s.RootType("shipTo") != NoType {
		t.Fatal("shipTo is not a root")
	}
	if s.RootType("neverSeen") != NoType {
		t.Fatal("unknown label is not a root")
	}
	if !s.Compiled() {
		t.Fatal("schema should be compiled")
	}
}

func TestBuilderErrors(t *testing.T) {
	s := New(nil)
	if _, err := s.AddSimpleType("", nil); err == nil {
		t.Fatal("empty name should fail")
	}
	id, _ := s.AddSimpleType("st", nil)
	if _, err := s.AddSimpleType("st", nil); err == nil {
		t.Fatal("duplicate name should fail")
	}
	if err := s.SetChildType(id, "a", id); err == nil {
		t.Fatal("SetChildType on a simple type should fail")
	}
	ct, _ := s.AddComplexType("ct", regexpsym.MustParse("a, a"))
	if err := s.SetChildType(ct, "a", id); err != nil {
		t.Fatal(err)
	}
	ct2, _ := s.AddComplexType("ct2", regexpsym.MustParse("a"))
	if err := s.SetChildType(ct, "a", ct2); err == nil {
		t.Fatal("conflicting child type for one label should fail")
	}
	// Re-assigning the same type is fine (idempotent).
	if err := s.SetChildType(ct, "a", id); err != nil {
		t.Fatal(err)
	}
}

func TestCompileErrors(t *testing.T) {
	// Missing child type assignment.
	s := New(nil)
	ct, _ := s.AddComplexType("ct", regexpsym.MustParse("a"))
	s.SetRoot("r", ct)
	if err := s.Compile(); err == nil || !strings.Contains(err.Error(), "without a child type") {
		t.Fatalf("expected missing-child-type error, got %v", err)
	}

	// Ambiguous content model (UPA violation).
	s2 := New(nil)
	st, _ := s2.AddSimpleType("st", nil)
	ct2, _ := s2.AddComplexType("ct", regexpsym.MustParse("(a, b) | (a, c)"))
	for _, l := range []string{"a", "b", "c"} {
		if err := s2.SetChildType(ct2, l, st); err != nil {
			t.Fatal(err)
		}
	}
	if err := s2.Compile(); err == nil || !strings.Contains(err.Error(), "1-unambiguous") {
		t.Fatalf("expected UPA error, got %v", err)
	}
}

func TestValidatePurchaseOrder(t *testing.T) {
	s := buildPOType1(t, nil)
	valid := xmltree.MustParseString(
		`<purchaseOrder><shipTo>a</shipTo><billTo>b</billTo><items>c</items></purchaseOrder>`)
	if err := s.Validate(valid); err != nil {
		t.Fatalf("valid doc rejected: %v", err)
	}
	// billTo is optional.
	noBill := xmltree.MustParseString(
		`<purchaseOrder><shipTo>a</shipTo><items>c</items></purchaseOrder>`)
	if err := s.Validate(noBill); err != nil {
		t.Fatalf("billTo-less doc rejected: %v", err)
	}
	// Missing items.
	bad := xmltree.MustParseString(`<purchaseOrder><shipTo>a</shipTo></purchaseOrder>`)
	if err := s.Validate(bad); err == nil {
		t.Fatal("missing items should be rejected")
	}
	// Wrong order.
	bad2 := xmltree.MustParseString(
		`<purchaseOrder><items>c</items><shipTo>a</shipTo></purchaseOrder>`)
	if err := s.Validate(bad2); err == nil {
		t.Fatal("out-of-order children should be rejected")
	}
	// Unknown root.
	bad3 := xmltree.MustParseString(`<order/>`)
	if err := s.Validate(bad3); err == nil {
		t.Fatal("unknown root should be rejected")
	}
	// Unknown label inside.
	bad4 := xmltree.MustParseString(
		`<purchaseOrder><shipTo>a</shipTo><bogus/><items>c</items></purchaseOrder>`)
	if err := s.Validate(bad4); err == nil {
		t.Fatal("unknown child label should be rejected")
	}
}

func TestValidateSimpleContent(t *testing.T) {
	s := New(nil)
	qty, _ := s.AddSimpleType("qty", NewSimpleType(PositiveIntegerKind).WithMaxExclusive(100))
	item, _ := s.AddComplexType("Item", regexpsym.MustParse("quantity"))
	if err := s.SetChildType(item, "quantity", qty); err != nil {
		t.Fatal(err)
	}
	s.SetRoot("item", item)
	if err := s.Compile(); err != nil {
		t.Fatal(err)
	}
	ok := xmltree.MustParseString(`<item><quantity>42</quantity></item>`)
	if err := s.Validate(ok); err != nil {
		t.Fatalf("quantity 42 should be valid: %v", err)
	}
	tooBig := xmltree.MustParseString(`<item><quantity>100</quantity></item>`)
	if err := s.Validate(tooBig); err == nil {
		t.Fatal("quantity 100 violates maxExclusive=100")
	}
	notNum := xmltree.MustParseString(`<item><quantity>many</quantity></item>`)
	if err := s.Validate(notNum); err == nil {
		t.Fatal("non-numeric quantity should be rejected")
	}
	elemContent := xmltree.MustParseString(`<item><quantity><x/></quantity></item>`)
	if err := s.Validate(elemContent); err == nil {
		t.Fatal("element content in a simple type should be rejected")
	}
}

func TestValidateTextInElementContent(t *testing.T) {
	s := buildPOType1(t, nil)
	doc := xmltree.MustParseString(
		`<purchaseOrder>oops<shipTo>a</shipTo><items>c</items></purchaseOrder>`)
	if err := s.Validate(doc); err == nil {
		t.Fatal("text in element-only content should be rejected")
	}
}

func TestValidateSkipsTombstones(t *testing.T) {
	s := buildPOType1(t, nil)
	doc := xmltree.MustParseString(
		`<purchaseOrder><shipTo>a</shipTo><billTo>b</billTo><items>c</items></purchaseOrder>`)
	doc.Children[1].Delta = xmltree.DeltaDelete // tombstone billTo
	if err := s.Validate(doc); err != nil {
		t.Fatalf("tombstoned billTo should be skipped (optional): %v", err)
	}
	doc.Children[2].Delta = xmltree.DeltaDelete // tombstone items (required)
	if err := s.Validate(doc); err == nil {
		t.Fatal("tombstoned required items should fail validation")
	}
}

func TestValidatePanicsWhenNotCompiled(t *testing.T) {
	s := New(nil)
	st, _ := s.AddSimpleType("st", nil)
	s.SetRoot("a", st)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for uncompiled schema")
		}
	}()
	_ = s.Validate(xmltree.NewElement("a"))
}

func TestEmptyContentModel(t *testing.T) {
	s := New(nil)
	empty, _ := s.AddComplexType("Empty", regexpsym.Epsilon{})
	s.SetRoot("e", empty)
	if err := s.Compile(); err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(xmltree.NewElement("e")); err != nil {
		t.Fatalf("empty element with EMPTY model should validate: %v", err)
	}
	if err := s.Validate(xmltree.NewElement("e", xmltree.NewElement("x"))); err == nil {
		t.Fatal("children under EMPTY model should be rejected")
	}
}

func TestIsDTD(t *testing.T) {
	// DTD-shaped: every label always has the same type.
	s := New(nil)
	st, _ := s.AddSimpleType("leaf", nil)
	a, _ := s.AddComplexType("A", regexpsym.MustParse("b, c"))
	s.SetChildType(a, "b", st)
	s.SetChildType(a, "c", st)
	d, _ := s.AddComplexType("D", regexpsym.MustParse("b"))
	s.SetChildType(d, "b", st)
	s.SetRoot("a", a)
	s.SetRoot("d", d)
	if err := s.Compile(); err != nil {
		t.Fatal(err)
	}
	if !s.IsDTD() {
		t.Fatal("label-consistent schema should be DTD-shaped")
	}

	// Not DTD: label b has different types in different contexts.
	s2 := New(nil)
	st2, _ := s2.AddSimpleType("leaf", nil)
	num, _ := s2.AddSimpleType("num", NewSimpleType(IntegerKind))
	a2, _ := s2.AddComplexType("A", regexpsym.MustParse("b"))
	s2.SetChildType(a2, "b", st2)
	c2, _ := s2.AddComplexType("C", regexpsym.MustParse("b"))
	s2.SetChildType(c2, "b", num)
	s2.SetRoot("a", a2)
	s2.SetRoot("c", c2)
	if err := s2.Compile(); err != nil {
		t.Fatal(err)
	}
	if s2.IsDTD() {
		t.Fatal("context-dependent label typing is not DTD-shaped")
	}
}

func TestProductivityPruning(t *testing.T) {
	// Type Loop requires a child of type Loop: non-productive.
	// Type Top = (a | b) where a:Loop, b:simple — Top is productive and
	// its pruned content model should only admit b.
	s := New(nil)
	st, _ := s.AddSimpleType("leaf", nil)
	loop, _ := s.AddComplexType("Loop", regexpsym.MustParse("a"))
	s.SetChildType(loop, "a", loop)
	top, _ := s.AddComplexType("Top", regexpsym.MustParse("a | b"))
	s.SetChildType(top, "a", loop)
	s.SetChildType(top, "b", st)
	s.SetRoot("t", top)
	if err := s.Compile(); err != nil {
		t.Fatal(err)
	}
	prod := s.Productive()
	if prod[loop] {
		t.Fatal("Loop should be non-productive")
	}
	if !prod[top] || !prod[st] {
		t.Fatal("Top and leaf should be productive")
	}
	// After pruning, <t><a/></t> must be invalid but <t><b/></t> valid.
	if err := s.Validate(xmltree.NewElement("t", xmltree.NewElement("b"))); err != nil {
		t.Fatalf("t(b) should be valid: %v", err)
	}
	if err := s.Validate(xmltree.NewElement("t", xmltree.NewElement("a"))); err == nil {
		t.Fatal("t(a) requires the non-productive Loop and must be invalid")
	}
}

func TestProductivityEmptyContentIsProductive(t *testing.T) {
	// A type whose model accepts ε is productive even when all its labels
	// point at non-productive types.
	s := New(nil)
	loop, _ := s.AddComplexType("Loop", regexpsym.MustParse("a"))
	s.SetChildType(loop, "a", loop)
	opt, _ := s.AddComplexType("Opt", regexpsym.MustParse("a?"))
	s.SetChildType(opt, "a", loop)
	s.SetRoot("o", opt)
	if err := s.Compile(); err != nil {
		t.Fatal(err)
	}
	if !s.Productive()[opt] {
		t.Fatal("ε ∈ L(a?) makes Opt productive")
	}
	if err := s.Validate(xmltree.NewElement("o")); err != nil {
		t.Fatalf("empty o should validate: %v", err)
	}
	if err := s.Validate(xmltree.NewElement("o", xmltree.NewElement("a"))); err == nil {
		t.Fatal("o(a) must be invalid after pruning")
	}
}

func TestSchemaString(t *testing.T) {
	s := buildPOType1(t, nil)
	out := s.String()
	for _, want := range []string{"POType1", "shipTo, billTo?, items", "purchaseOrder→POType1", "xstring: simple"} {
		if !strings.Contains(out, want) {
			t.Fatalf("String() missing %q:\n%s", want, out)
		}
	}
}

func TestNodePath(t *testing.T) {
	doc := xmltree.MustParseString(
		`<po><items><item><q>1</q></item><item><q>2</q></item></items></po>`)
	second := doc.Children[0].Children[1].Children[0]
	if got := NodePath(second); got != "/po/items/item[2]/q" {
		t.Fatalf("NodePath = %q", got)
	}
	if NodePath(nil) != "/" {
		t.Fatal("NodePath(nil) should be /")
	}
	if got := NodePath(doc); got != "/po" {
		t.Fatalf("NodePath(root) = %q", got)
	}
}

func TestValidationErrorMessage(t *testing.T) {
	e := &ValidationError{Path: "/a/b", Reason: "boom"}
	if !strings.Contains(e.Error(), "/a/b") || !strings.Contains(e.Error(), "boom") {
		t.Fatalf("Error() = %q", e.Error())
	}
}

func TestSharedAlphabetAcrossSchemas(t *testing.T) {
	alpha := fa.NewAlphabet()
	s1 := buildPOType1(t, alpha)
	s2 := buildPOType1(t, alpha)
	if s1.Alpha != s2.Alpha {
		t.Fatal("schemas should share the alphabet instance")
	}
	if s1.Alpha.Lookup("billTo") == fa.NoSymbol {
		t.Fatal("billTo should be interned")
	}
}

func TestWidenToAlphabet(t *testing.T) {
	alpha := fa.NewAlphabet()
	s1 := buildPOType1(t, alpha)
	widthBefore := s1.TypeOf(s1.TypeByName("POType1")).DFA.NumSymbols()
	// A second schema grows the shared alphabet.
	s2 := New(alpha)
	st, _ := s2.AddSimpleType("st", nil)
	ct, _ := s2.AddComplexType("CT", regexpsym.MustParse("brandNewLabel"))
	if err := s2.SetChildType(ct, "brandNewLabel", st); err != nil {
		t.Fatal(err)
	}
	s2.SetRoot("r", ct)
	if err := s2.Compile(); err != nil {
		t.Fatal(err)
	}
	if alpha.Size() <= widthBefore {
		t.Fatal("alphabet should have grown")
	}
	s1.WidenToAlphabet()
	for _, tp := range s1.Types {
		if !tp.Simple && tp.DFA.NumSymbols() != alpha.Size() {
			t.Fatalf("type %s DFA width %d, want %d", tp.Name, tp.DFA.NumSymbols(), alpha.Size())
		}
	}
	// Idempotent.
	s1.WidenToAlphabet()
	// And still validating correctly.
	doc := xmltree.MustParseString(
		`<purchaseOrder><shipTo>a</shipTo><items>c</items></purchaseOrder>`)
	if err := s1.Validate(doc); err != nil {
		t.Fatalf("validation after widening: %v", err)
	}
}
