package subsume

import (
	"math/rand"
	"testing"

	"repro/internal/fa"
	"repro/internal/regexpsym"
	"repro/internal/schema"
	"repro/internal/wgen"
)

// figure1Pair builds the paper's Figure 1 schema pair over one alphabet.
func figure1Pair(t *testing.T) (src, dst *schema.Schema) {
	t.Helper()
	ps := wgen.NewPaperSchemas()
	return ps.Source1, ps.Target
}

func TestComputeRequiresCompiledSharedAlphabet(t *testing.T) {
	a := schema.New(nil)
	if _, err := Compute(a, a); err == nil {
		t.Fatal("uncompiled schemas must be rejected")
	}
	s1 := schema.New(nil)
	st1, _ := s1.AddSimpleType("st", nil)
	s1.SetRoot("a", st1)
	s1.MustCompile()
	s2 := schema.New(nil)
	st2, _ := s2.AddSimpleType("st", nil)
	s2.SetRoot("a", st2)
	s2.MustCompile()
	if _, err := Compute(s1, s2); err == nil {
		t.Fatal("separate alphabets must be rejected")
	}
}

func TestFigure1Subsumption(t *testing.T) {
	src, dst := figure1Pair(t)
	r := MustCompute(src, dst)

	// POType1 (billTo optional) is NOT subsumed by POType2 (required):
	// a document without billTo separates them.
	po1 := src.TypeByName("POType1")
	po2 := dst.TypeByName("POType2")
	if r.Subsumed(po1, po2) {
		t.Fatal("POType1 must not be subsumed by POType2")
	}
	// ... but they are not disjoint either (documents with billTo).
	if r.Disjoint(po1, po2) {
		t.Fatal("POType1 and POType2 are not disjoint")
	}
	// The shared substructure is mutually subsumed.
	for _, name := range []string{"USAddress", "Items", "Item", "xsd:string", "QuantityType"} {
		a, b := src.TypeByName(name), dst.TypeByName(name)
		if a == schema.NoType || b == schema.NoType {
			t.Fatalf("type %s missing", name)
		}
		if !r.Subsumed(a, b) {
			t.Fatalf("%s should be subsumed by its identical counterpart", name)
		}
	}
	// Reverse direction: POType2 ⊆ POType1 (required billTo is a special
	// case of optional).
	rr := MustCompute(dst, src)
	if !rr.Subsumed(po2, po1) {
		t.Fatal("POType2 should be subsumed by POType1")
	}
}

func TestExperiment2Subsumption(t *testing.T) {
	ps := wgen.NewPaperSchemas()
	r := MustCompute(ps.Source2, ps.Target)

	// quantity<200 is NOT subsumed by quantity<100...
	q2 := ps.Source2.TypeByName("QuantityType")
	q1 := ps.Target.TypeByName("QuantityType")
	if r.Subsumed(q2, q1) {
		t.Fatal("maxExclusive=200 must not be subsumed by maxExclusive=100")
	}
	if r.Disjoint(q2, q1) {
		t.Fatal("the quantity types overlap on [1,100)")
	}
	// ... which propagates up: Item, Items, POType2 all not subsumed.
	for _, name := range []string{"Item", "Items", "POType2"} {
		a := ps.Source2.TypeByName(name)
		b := ps.Target.TypeByName(name)
		if r.Subsumed(a, b) {
			t.Fatalf("%s must not be subsumed (quantity facet differs)", name)
		}
		if r.Disjoint(a, b) {
			t.Fatalf("%s must not be disjoint", name)
		}
	}
	// USAddress is untouched by the facet change.
	if !r.Subsumed(ps.Source2.TypeByName("USAddress"), ps.Target.TypeByName("USAddress")) {
		t.Fatal("USAddress should remain subsumed")
	}
	// Reverse: quantity<100 ⊆ quantity<200, so everything is subsumed.
	rr := MustCompute(ps.Target, ps.Source2)
	for _, name := range []string{"QuantityType", "Item", "Items", "POType2"} {
		if !rr.Subsumed(ps.Target.TypeByName(name), ps.Source2.TypeByName(name)) {
			t.Fatalf("%s should be subsumed in the 100→200 direction", name)
		}
	}
}

func TestDisjointTypes(t *testing.T) {
	alpha := fa.NewAlphabet()
	s1 := schema.New(alpha)
	date1, _ := s1.AddSimpleType("date", schema.NewSimpleType(schema.DateKind))
	a1, _ := s1.AddComplexType("A", regexpsym.MustParse("when"))
	s1.SetChildType(a1, "when", date1)
	s1.SetRoot("a", a1)
	s1.MustCompile()

	s2 := schema.New(alpha)
	num2, _ := s2.AddSimpleType("num", schema.NewSimpleType(schema.IntegerKind))
	a2, _ := s2.AddComplexType("A", regexpsym.MustParse("when"))
	s2.SetChildType(a2, "when", num2)
	s2.SetRoot("a", a2)
	s2.MustCompile()

	r := MustCompute(s1, s2)
	if !r.Disjoint(date1, num2) {
		t.Fatal("date and integer simple types are disjoint")
	}
	// Disjointness propagates: A requires a `when` child whose types are
	// disjoint, so the two A types are disjoint.
	if !r.Disjoint(a1, a2) {
		t.Fatal("complex types with all-disjoint mandatory children are disjoint")
	}
}

func TestDisjointContentModels(t *testing.T) {
	alpha := fa.NewAlphabet()
	s1 := schema.New(alpha)
	st1, _ := s1.AddSimpleType("st", nil)
	a1, _ := s1.AddComplexType("A", regexpsym.MustParse("x, x"))
	s1.SetChildType(a1, "x", st1)
	s1.SetRoot("a", a1)
	s1.MustCompile()

	s2 := schema.New(alpha)
	st2, _ := s2.AddSimpleType("st", nil)
	a2, _ := s2.AddComplexType("A", regexpsym.MustParse("x"))
	s2.SetChildType(a2, "x", st2)
	s2.SetRoot("a", a2)
	s2.MustCompile()

	r := MustCompute(s1, s2)
	if !r.Disjoint(a1, a2) {
		t.Fatal("xx vs x content models are disjoint")
	}
	if r.Subsumed(a1, a2) {
		t.Fatal("xx is not subsumed by x")
	}
}

func TestSimpleComplexInteraction(t *testing.T) {
	alpha := fa.NewAlphabet()
	s1 := schema.New(alpha)
	str1, _ := s1.AddSimpleType("str", schema.NewSimpleType(schema.StringKind))
	s1.SetRoot("a", str1)
	s1.MustCompile()

	s2 := schema.New(alpha)
	emptyT, _ := s2.AddComplexType("Empty", regexpsym.Epsilon{})
	nonEmpty, _ := s2.AddComplexType("NonEmpty", regexpsym.MustParse("b"))
	st2, _ := s2.AddSimpleType("st", nil)
	s2.SetChildType(nonEmpty, "b", st2)
	s2.SetRoot("a", emptyT)
	s2.MustCompile()

	r := MustCompute(s1, s2)
	// A string-typed element can be empty (value ""), matching the
	// childless tree an EMPTY complex type accepts: not disjoint.
	if r.Disjoint(str1, emptyT) {
		t.Fatal("string simple type and EMPTY complex type share the childless tree")
	}
	// But a simple type also admits text content, so no subsumption.
	if r.Subsumed(str1, emptyT) {
		t.Fatal("string type must not be subsumed by EMPTY complex type")
	}
	// A complex type that requires a child IS disjoint from any simple type.
	if !r.Disjoint(str1, nonEmpty) {
		t.Fatal("simple type and child-requiring complex type are disjoint")
	}
	// EMPTY complex ⊆ string simple (childless trees only, "" accepted).
	r2 := MustCompute(s2, s1)
	if !r2.Subsumed(emptyT, str1) {
		t.Fatal("EMPTY complex type should be subsumed by the string simple type")
	}
}

// Theorem 1 soundness: if (τ, τ') ∈ R_sub, every sampled tree valid for τ
// is valid for τ'. Theorem 2 soundness: if (τ, τ') ∉ R_nondis, no sampled
// tree is valid for both.
func TestTheorems1And2OnSampledTrees(t *testing.T) {
	ps := wgen.NewPaperSchemas()
	pairs := [][2]*schema.Schema{
		{ps.Source1, ps.Target},
		{ps.Source2, ps.Target},
		{ps.Target, ps.Source1},
		{ps.Target, ps.Source2},
	}
	rng := rand.New(rand.NewSource(23))
	for _, pair := range pairs {
		src, dst := pair[0], pair[1]
		r := MustCompute(src, dst)
		g := wgen.NewGenerator(src, rng)
		for _, a := range src.Types {
			for _, b := range dst.Types {
				for i := 0; i < 6; i++ {
					// Use a neutral label both schemas know; label choice
					// does not affect type validity in ValidateType.
					tree, ok := g.Tree("probe", a.ID)
					if !ok {
						continue
					}
					validSrc := src.ValidateType(a.ID, tree) == nil
					if !validSrc {
						t.Fatalf("generator produced invalid tree for %s", a.Name)
					}
					validDst := dst.ValidateType(b.ID, tree) == nil
					if r.Subsumed(a.ID, b.ID) && !validDst {
						t.Fatalf("Theorem 1 violated: %s ≤ %s but tree %s invalid for target",
							a.Name, b.Name, tree)
					}
					if r.Disjoint(a.ID, b.ID) && validDst {
						t.Fatalf("Theorem 2 violated: %s ⊘ %s but tree %s valid for both",
							a.Name, b.Name, tree)
					}
				}
			}
		}
	}
}

// Completeness spot-check for Theorem 2 on the paper pair: types claimed
// non-disjoint must have a witness tree valid for both. We verify by
// sampling from the source type and checking that *some* sample validates
// under the target (witnesses are dense for these schemas).
func TestNonDisjointHaveWitnesses(t *testing.T) {
	ps := wgen.NewPaperSchemas()
	r := MustCompute(ps.Source1, ps.Target)
	g := wgen.NewGenerator(ps.Source1, rand.New(rand.NewSource(31)))
	for _, name := range []string{"USAddress", "Items", "Item", "POType1"} {
		a := ps.Source1.TypeByName(name)
		// Counterpart with the same name in the target (POType1→POType2).
		bName := name
		if name == "POType1" {
			bName = "POType2"
		}
		b := ps.Target.TypeByName(bName)
		if r.Disjoint(a, b) {
			t.Fatalf("%s/%s claimed disjoint", name, bName)
		}
		found := false
		for i := 0; i < 200 && !found; i++ {
			tree, ok := g.Tree("probe", a)
			if ok && ps.Target.ValidateType(b, tree) == nil {
				found = true
			}
		}
		if !found {
			t.Fatalf("no witness found for non-disjoint pair %s/%s", name, bName)
		}
	}
}

func TestSelfRelations(t *testing.T) {
	ps := wgen.NewPaperSchemas()
	r := MustCompute(ps.Target, ps.Target)
	for _, tp := range ps.Target.Types {
		if !r.Subsumed(tp.ID, tp.ID) {
			t.Fatalf("type %s should be subsumed by itself", tp.Name)
		}
		if r.Disjoint(tp.ID, tp.ID) {
			t.Fatalf("productive type %s cannot be disjoint from itself", tp.Name)
		}
	}
}

func TestStats(t *testing.T) {
	ps := wgen.NewPaperSchemas()
	r := MustCompute(ps.Source1, ps.Target)
	st := r.Stats()
	if st.SrcTypes != len(ps.Source1.Types) || st.DstTypes != len(ps.Target.Types) {
		t.Fatal("type counts wrong")
	}
	if st.SubsumedPairs == 0 {
		t.Fatal("expected some subsumed pairs")
	}
	if st.DisjointPairs == 0 {
		t.Fatal("expected some disjoint pairs (e.g. date vs quantity)")
	}
}

func TestMustComputePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustCompute should panic on error")
		}
	}()
	MustCompute(schema.New(nil), schema.New(nil))
}
