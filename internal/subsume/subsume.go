// Package subsume computes the R_sub (subsumption) and R_dis (disjointness)
// relations between the types of two abstract XML schemas — the static
// preprocessing at the heart of EDBT'04 §3.2. During schema cast
// validation, a subtree typed τ in the source schema being checked against
// τ' in the target schema is skipped outright when (τ, τ') ∈ R_sub and the
// document is rejected immediately when (τ, τ') ∈ R_dis.
//
// R_sub is the greatest relation satisfying Definition 4 and is computed by
// refinement from an optimistic over-approximation; R_dis is the complement
// of R_nondis, the least relation satisfying Definition 5, computed by
// accumulation from an empty relation. Both theorems (1 and 2) are
// exercised as checkable properties in the test suite.
//
// The paper's single merged simple type is generalized here to the facet
// lattice of package schema; simple-type pairs enter R_sub/R_nondis through
// the (sound, conservative) SimpleSubsumed/SimpleDisjoint checks. A
// consequence of allowing empty simple values ("" is a valid xsd:string) is
// that simple and empty-content complex types are not automatically
// disjoint; the relations account for that.
package subsume

import (
	"errors"

	"repro/internal/fa"
	"repro/internal/schema"
)

// Relations holds the precomputed subsumption and disjointness relations
// between the types of a source and a target schema. Relations are
// immutable after Compute and safe for concurrent use.
type Relations struct {
	Src, Dst *schema.Schema

	// sub[τ][τ'] ⇔ (τ, τ') ∈ R_sub ⇔ valid(τ) ⊆ valid(τ').
	sub [][]bool
	// nondis[τ][τ'] ⇔ (τ, τ') ∈ R_nondis ⇔ valid(τ) ∩ valid(τ') ≠ ∅.
	nondis [][]bool
}

// Subsumed reports whether τ (from the source schema) is subsumed by τ'
// (from the target schema): every tree valid for τ is valid for τ'.
func (r *Relations) Subsumed(τ, τp schema.TypeID) bool { return r.sub[τ][τp] }

// Disjoint reports whether τ and τ' are disjoint: no tree is valid for
// both.
func (r *Relations) Disjoint(τ, τp schema.TypeID) bool { return !r.nondis[τ][τp] }

// Stats summarizes relation density, for diagnostics and the preprocessing
// benchmarks.
type Stats struct {
	SrcTypes, DstTypes int
	SubsumedPairs      int
	DisjointPairs      int
}

// Stats returns counts of related pairs.
func (r *Relations) Stats() Stats {
	st := Stats{SrcTypes: len(r.Src.Types), DstTypes: len(r.Dst.Types)}
	for i := range r.sub {
		for j := range r.sub[i] {
			if r.sub[i][j] {
				st.SubsumedPairs++
			}
			if !r.nondis[i][j] {
				st.DisjointPairs++
			}
		}
	}
	return st
}

// Compute builds the relations for a (source, target) schema pair. The two
// schemas must be compiled and share one alphabet instance (so automaton
// products are meaningful).
func Compute(src, dst *schema.Schema) (*Relations, error) {
	if !src.Compiled() || !dst.Compiled() {
		return nil, errors.New("subsume: schemas must be compiled")
	}
	if src.Alpha != dst.Alpha {
		return nil, errors.New("subsume: schemas must share an alphabet (load them into one Universe)")
	}
	// The later-compiled schema may have interned labels the earlier one
	// never saw; equalize automaton widths before any product operation.
	src.WidenToAlphabet()
	dst.WidenToAlphabet()
	r := &Relations{Src: src, Dst: dst}
	r.computeSub()
	r.computeNonDis()
	return r, nil
}

// MustCompute is Compute that panics on error; for tests.
func MustCompute(src, dst *schema.Schema) *Relations {
	r, err := Compute(src, dst)
	if err != nil {
		panic(err)
	}
	return r
}

// computeSub runs the Definition-4 refinement:
//
//  1. Start with all (simple, simple) pairs passing the facet subsumption
//     check, all (complex, complex) pairs passing the language-inclusion
//     check L(regexp_τ) ⊆ L(regexp_τ'), and the (complex, simple) pairs
//     where the complex content is {ε} and the simple type accepts "".
//  2. Repeatedly remove (τ, τ') when some usable label σ of τ has child
//     types (ω, ν) ∉ R_sub (or ν undefined).
func (r *Relations) computeSub() {
	ns, nd := len(r.Src.Types), len(r.Dst.Types)
	sub := boolMatrix(ns, nd)
	usable := usableSymbols(r.Src)

	for _, a := range r.Src.Types {
		for _, b := range r.Dst.Types {
			switch {
			case a.Simple && b.Simple:
				sub[a.ID][b.ID] = schema.SimpleSubsumed(a.Value, b.Value)
			case !a.Simple && !b.Simple:
				sub[a.ID][b.ID] = fa.Includes(a.DFA, b.DFA)
			case !a.Simple && b.Simple:
				// valid(τ) ⊆ valid(τ') holds when τ admits only childless
				// nodes (L = {ε}) and τ' accepts the empty value.
				sub[a.ID][b.ID] = acceptsOnlyEmpty(a.DFA) && b.Value.AcceptsValue("")
			default:
				// simple ⊆ complex never holds: the simple type admits a
				// tree with a χ child, which no element-content model does.
			}
		}
	}

	for changed := true; changed; {
		changed = false
		for _, a := range r.Src.Types {
			if a.Simple {
				continue
			}
			for _, b := range r.Dst.Types {
				if !sub[a.ID][b.ID] || b.Simple {
					continue
				}
				for sym, ω := range a.Child {
					if !usable[a.ID][sym] {
						continue // label can never occur in a word of L(regexp_τ)
					}
					ν, ok := b.Child[sym]
					if !ok || !sub[ω][ν] {
						sub[a.ID][b.ID] = false
						changed = true
						break
					}
				}
			}
		}
	}
	r.sub = sub
}

// computeNonDis runs the Definition-5 accumulation:
//
//  1. Start empty; add all (simple, simple) pairs that are not facet-
//     disjoint, and the simple/complex pairs sharing the childless tree
//     (complex content accepts ε, simple type accepts "").
//  2. Repeatedly add (τ, τ') when L(regexp_τ) ∩ L(regexp_τ') ∩ P* ≠ ∅,
//     where P is the set of labels whose child-type pair is already known
//     non-disjoint.
func (r *Relations) computeNonDis() {
	ns, nd := len(r.Src.Types), len(r.Dst.Types)
	nondis := boolMatrix(ns, nd)

	for _, a := range r.Src.Types {
		for _, b := range r.Dst.Types {
			switch {
			case a.Simple && b.Simple:
				nondis[a.ID][b.ID] = !schema.SimpleDisjoint(a.Value, b.Value)
			case a.Simple && !b.Simple:
				nondis[a.ID][b.ID] = b.DFA.AcceptsEmpty() && a.Value.AcceptsValue("")
			case !a.Simple && b.Simple:
				nondis[a.ID][b.ID] = a.DFA.AcceptsEmpty() && b.Value.AcceptsValue("")
			}
		}
	}

	size := r.Src.Alpha.Size()
	for changed := true; changed; {
		changed = false
		for _, a := range r.Src.Types {
			if a.Simple {
				continue
			}
			for _, b := range r.Dst.Types {
				if b.Simple || nondis[a.ID][b.ID] {
					continue
				}
				// P = labels with non-disjoint child types in both schemas.
				allowed := make([]bool, size)
				for sym, ω := range a.Child {
					if ν, ok := b.Child[sym]; ok && nondis[ω][ν] {
						allowed[sym] = true
					}
				}
				if fa.IntersectionNonemptyRestricted(a.DFA, b.DFA, allowed) {
					nondis[a.ID][b.ID] = true
					changed = true
				}
			}
		}
	}
	r.nondis = nondis
}

// usableSymbols returns, per source type, the mask of labels that actually
// occur in some word of the (trimmed) content automaton. types_τ may
// mention labels that pruning made unusable; those must not veto
// subsumption.
func usableSymbols(s *schema.Schema) map[schema.TypeID][]bool {
	out := make(map[schema.TypeID][]bool, len(s.Types))
	for _, t := range s.Types {
		if t.Simple {
			continue
		}
		mask := make([]bool, s.Alpha.Size())
		d := t.DFA
		for st := 0; st < d.NumStates(); st++ {
			for sym := 0; sym < d.NumSymbols(); sym++ {
				if d.Step(st, fa.Symbol(sym)) != fa.Dead {
					mask[sym] = true
				}
			}
		}
		out[t.ID] = mask
	}
	return out
}

// acceptsOnlyEmpty reports whether L(d) = {ε}.
func acceptsOnlyEmpty(d *fa.DFA) bool {
	if !d.AcceptsEmpty() {
		return false
	}
	// The automaton is trimmed (all states live and reachable); any
	// transition would witness a nonempty word.
	for s := 0; s < d.NumStates(); s++ {
		for sym := 0; sym < d.NumSymbols(); sym++ {
			if d.Step(s, fa.Symbol(sym)) != fa.Dead {
				return false
			}
		}
	}
	return true
}
