package subsume

import (
	"errors"
	"fmt"

	"repro/internal/schema"
)

// Matrices returns deep copies of the R_sub and R_nondis matrices, indexed
// [sourceType][targetType], for serialization.
func (r *Relations) Matrices() (sub, nondis [][]bool) {
	copyMatrix := func(m [][]bool) [][]bool {
		if len(m) == 0 {
			return nil
		}
		out := boolMatrix(len(m), len(m[0]))
		for i := range m {
			copy(out[i], m[i])
		}
		return out
	}
	return copyMatrix(r.sub), copyMatrix(r.nondis)
}

// Restore rebuilds Relations from previously computed matrices (the shape
// Matrices returns) without re-running the fixpoint computations. The
// schemas must be compiled and share one alphabet, exactly as for Compute;
// the matrices must be |src.Types| × |dst.Types|. Like Compute, Restore
// widens both schemas' automata to the shared alphabet so later product
// operations are well-defined.
func Restore(src, dst *schema.Schema, sub, nondis [][]bool) (*Relations, error) {
	if !src.Compiled() || !dst.Compiled() {
		return nil, errors.New("subsume: schemas must be compiled")
	}
	if src.Alpha != dst.Alpha {
		return nil, errors.New("subsume: schemas must share an alphabet (load them into one Universe)")
	}
	ns, nd := len(src.Types), len(dst.Types)
	for name, m := range map[string][][]bool{"sub": sub, "nondis": nondis} {
		if len(m) != ns {
			return nil, fmt.Errorf("subsume: Restore: %s matrix has %d rows, want %d", name, len(m), ns)
		}
		for i := range m {
			if len(m[i]) != nd {
				return nil, fmt.Errorf("subsume: Restore: %s matrix row %d has %d columns, want %d", name, i, len(m[i]), nd)
			}
		}
	}
	src.WidenToAlphabet()
	dst.WidenToAlphabet()
	return &Relations{Src: src, Dst: dst, sub: sub, nondis: nondis}, nil
}
