package subsume

// boolMatrix allocates an n×m matrix of booleans backed by one slice, so
// relation storage stays cache-friendly even for large type sets.
func boolMatrix(n, m int) [][]bool {
	backing := make([]bool, n*m)
	rows := make([][]bool, n)
	for i := range rows {
		rows[i], backing = backing[:m:m], backing[m:]
	}
	return rows
}
