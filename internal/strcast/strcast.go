// Package strcast implements schema cast validation for strings (EDBT'04
// §4): given deterministic automata a (source) and b (target) and a string
// known to be in L(a), decide membership in L(b) while scanning as few
// symbols as possible. The engine is the immediate decision automaton
// c_immed derived from the product of a and b, which is optimal
// (Proposition 3): no deterministic IDA can decide earlier.
//
// The with-modifications variant (§4.3) re-synchronizes on the unmodified
// suffix of the edited string: the modified prefix is scanned with b_immed,
// the state of a at the synchronization point is recovered on the original
// string, and the scan finishes in c_immed from that state pair
// (Proposition 2). When edits cluster at the end of the string, the same
// scheme runs on the reverse automata instead, and the cheaper direction is
// chosen per call.
package strcast

import (
	"fmt"
	"sync"

	"repro/internal/fa"
)

// Caster holds the preprocessed automata for casting strings from L(a) to
// L(b). Construction cost is O(|a|·|b|); per-string validation then scans
// at most the symbols an optimal immediate decision automaton must.
// A Caster is safe for concurrent use.
type Caster struct {
	A, B *fa.DFA

	// CImmed is c_immed: the full-product immediate decision automaton.
	CImmed *fa.IDA
	// BImmed is b_immed: the target automaton's own IDA, used to scan
	// modified prefixes (where knowledge of a is useless).
	BImmed *fa.IDA

	// Reverse machinery for append-heavy edits (§4.3), built lazily on
	// first use: the reverse of a DFA determinizes through subset
	// construction, which can be exponentially larger than the forward
	// automaton (the reverse of a DFA is an NFA — the paper's footnote 3),
	// so it is only paid for when a reverse scan is actually profitable.
	// This Once is the single synchronization point of the whole cast hot
	// path, and it is off that path: only ValidateModified's reverse-scan
	// branch reaches it, never the per-element validate loop.
	revOnce   sync.Once
	revA      *fa.DFA
	revCImmed *fa.IDA
	revBImmed *fa.IDA
}

// New preprocesses the pair (a, b). Both automata must share an alphabet
// size.
func New(a, b *fa.DFA) *Caster {
	if a.NumSymbols() != b.NumSymbols() {
		panic("strcast: mismatched alphabets")
	}
	return &Caster{
		A:      a,
		B:      b,
		CImmed: fa.DeriveCastIDA(a, b),
		BImmed: fa.DeriveIDA(b),
	}
}

// Restore rebuilds a Caster from deserialized parts, skipping the
// DeriveCastIDA/DeriveIDA preprocessing New pays: cImmed must be a
// full-product IDA over (a, b) and bImmed the target automaton's own IDA
// (bImmed.D must be b itself, as DeriveIDA guarantees). Reverse-automaton
// machinery stays lazy, exactly as after New.
func Restore(a, b *fa.DFA, cImmed, bImmed *fa.IDA) (*Caster, error) {
	if a.NumSymbols() != b.NumSymbols() {
		return nil, fmt.Errorf("strcast: Restore: mismatched alphabets (%d vs %d)", a.NumSymbols(), b.NumSymbols())
	}
	if cImmed.Pairs == nil {
		return nil, fmt.Errorf("strcast: Restore: c_immed has no product bookkeeping")
	}
	if cImmed.Pairs.A != a || cImmed.Pairs.B != b {
		return nil, fmt.Errorf("strcast: Restore: c_immed product components are not the caster's automata")
	}
	if bImmed.D != b {
		return nil, fmt.Errorf("strcast: Restore: b_immed is not an IDA over the target automaton")
	}
	if len(cImmed.IA) != cImmed.D.NumStates() || len(cImmed.IR) != cImmed.D.NumStates() {
		return nil, fmt.Errorf("strcast: Restore: c_immed IA/IR sets sized %d/%d for %d states",
			len(cImmed.IA), len(cImmed.IR), cImmed.D.NumStates())
	}
	if len(bImmed.IA) != b.NumStates() || len(bImmed.IR) != b.NumStates() {
		return nil, fmt.Errorf("strcast: Restore: b_immed IA/IR sets sized %d/%d for %d states",
			len(bImmed.IA), len(bImmed.IR), b.NumStates())
	}
	return &Caster{A: a, B: b, CImmed: cImmed, BImmed: bImmed}, nil
}

// reverse returns the lazily-built reverse automata.
func (c *Caster) reverse() (revA *fa.DFA, revCImmed, revBImmed *fa.IDA) {
	c.revOnce.Do(func() {
		ra, rb := fa.ReverseDFA(c.A), fa.ReverseDFA(c.B)
		c.revA = ra
		c.revCImmed = fa.DeriveCastIDA(ra, rb)
		c.revBImmed = fa.DeriveIDA(rb)
	})
	return c.revA, c.revCImmed, c.revBImmed
}

// Result reports a cast-validation outcome and its cost.
type Result struct {
	// Accepted reports s ∈ L(b) (valid under the contract s ∈ L(a)).
	Accepted bool
	// Decision tells whether the verdict came early (immediate accept or
	// reject) or required consuming the available input.
	Decision fa.Decision
	// Scanned counts symbols consumed from the (new) string across all
	// immediate decision automata.
	Scanned int
	// StepsOnA counts extra transitions taken on the source automaton to
	// recover synchronization states in the with-modifications path.
	StepsOnA int
	// Reversed reports that the scan ran right-to-left on the reverse
	// automata.
	Reversed bool
}

func (r Result) String() string {
	dir := "fwd"
	if r.Reversed {
		dir = "rev"
	}
	return fmt.Sprintf("accepted=%v decision=%v scanned=%d stepsOnA=%d dir=%s",
		r.Accepted, r.Decision, r.Scanned, r.StepsOnA, dir)
}

// Validate decides s ∈ L(b) for a string s ∈ L(a), scanning with c_immed
// (§4.2). The verdict is unspecified when s ∉ L(a).
func (c *Caster) Validate(s []fa.Symbol) Result {
	res := c.CImmed.ScanFromStart(s)
	return Result{Accepted: res.Accepted, Decision: res.Decision, Scanned: res.Consumed}
}

// ValidateModified decides s' ∈ L(b) where s' was obtained from s ∈ L(a)
// by edits, given how much of s' is untouched at each end:
// s'[:prefixLen] == s[:prefixLen] and the last suffixLen symbols of s' and
// s coincide (both bounds may be 0; they must not overlap the edited
// region). The scan direction is chosen to minimize the worst-case number
// of symbols scanned: forward work is bounded by len(s'), starting with the
// modified part after skipping... — concretely, forward scans the modified
// prefix of length len(s')−suffixLen with b_immed, reverse scans the
// modified suffix of length len(s')−prefixLen with the reverse b_immed;
// the shorter modified side wins. Ties and the no-information case
// (prefixLen = suffixLen = 0) scan forward with b_immed alone, per §4.3.
func (c *Caster) ValidateModified(s, sp []fa.Symbol, prefixLen, suffixLen int) Result {
	n, m := len(s), len(sp)
	if prefixLen < 0 || suffixLen < 0 || prefixLen > min(n, m) || suffixLen > min(n, m) {
		panic("strcast: unmodified prefix/suffix bounds out of range")
	}
	forwardModified := m - suffixLen // symbols b_immed must scan going forward
	reverseModified := m - prefixLen
	if suffixLen == 0 && prefixLen == 0 {
		// No synchronization available: plain scan with b_immed.
		res := c.BImmed.ScanFromStart(sp)
		return Result{Accepted: res.Accepted, Decision: res.Decision, Scanned: res.Consumed}
	}
	if reverseModified < forwardModified {
		return c.validateReverse(s, sp, prefixLen)
	}
	return c.validateForward(s, sp, suffixLen)
}

// validateForward implements the §4.3 algorithm directly: scan the modified
// prefix with b_immed, recover a's state at the synchronization point on
// the original string, then finish with c_immed (Proposition 2).
func (c *Caster) validateForward(s, sp []fa.Symbol, suffixLen int) Result {
	n, m := len(s), len(sp)
	i := m - suffixLen // s'[i:] is the unmodified suffix

	// Step 1: evaluate s'[0:i] with b_immed.
	bres := c.BImmed.ScanFromStart(sp[:i])
	if bres.Decision != fa.Undecided {
		return Result{Accepted: bres.Accepted, Decision: bres.Decision, Scanned: bres.Consumed}
	}
	qb := bres.State

	// Step 2: evaluate s[0:n-suffixLen] on a to recover q_a.
	qa := c.A.Run(c.A.Start(), s[:n-suffixLen])
	stepsOnA := n - suffixLen

	// Step 3: continue scanning the unmodified suffix with c_immed from
	// the pair (q_a, q_b).
	pairState := c.CImmed.PairState(qa, qb)
	cres := c.CImmed.Scan(pairState, sp[i:])
	return Result{
		Accepted: cres.Accepted,
		Decision: cres.Decision,
		Scanned:  bres.Consumed + cres.Consumed,
		StepsOnA: stepsOnA,
	}
}

// validateReverse runs the same algorithm on the reverse automata: the
// reversed string's modified prefix is the original's modified suffix. The
// strings are scanned back-to-front in place — no reversed copies are
// materialized, so the cost is bounded by the symbols actually examined,
// which keeps append-heavy edits O(edit), not O(string).
func (c *Caster) validateReverse(s, sp []fa.Symbol, prefixLen int) Result {
	n, m := len(s), len(sp)
	revA, revCImmed, revBImmed := c.reverse()

	// Step 1: scan the (reversed) modified suffix sp[prefixLen:] with the
	// reverse b_immed, back to front.
	bres := scanBackward(revBImmed, revBImmed.D.Start(), sp, m-1, prefixLen)
	if bres.Decision != fa.Undecided {
		return Result{Accepted: bres.Accepted, Decision: bres.Decision, Scanned: bres.Consumed, Reversed: true}
	}
	// Step 2: recover the reverse-source state over the original's
	// (reversed) modified region s[prefixLen:].
	qa := revA.Start()
	for k := n - 1; k >= prefixLen; k-- {
		qa = revA.Step(qa, s[k])
	}
	// Step 3: finish on the unmodified region with the reverse c_immed.
	pairState := revCImmed.PairState(qa, bres.State)
	cres := scanBackward(revCImmed, pairState, sp, prefixLen-1, 0)
	return Result{
		Accepted: cres.Accepted,
		Decision: cres.Decision,
		Scanned:  bres.Consumed + cres.Consumed,
		StepsOnA: n - prefixLen,
		Reversed: true,
	}
}

// scanBackward runs word[downto..from] (inclusive bounds, descending)
// through an IDA, mirroring IDA.Scan on the reversed substring without
// materializing it.
func scanBackward(ida *fa.IDA, start int, word []fa.Symbol, from, downto int) fa.ScanResult {
	state := start
	if dec := ida.Classify(state); dec != fa.Undecided {
		return fa.ScanResult{Accepted: dec == fa.ImmediateAccept, Decision: dec, State: state}
	}
	consumed := 0
	for k := from; k >= downto; k-- {
		state = ida.D.Step(state, word[k])
		consumed++
		if dec := ida.Classify(state); dec != fa.Undecided {
			return fa.ScanResult{Accepted: dec == fa.ImmediateAccept, Decision: dec, Consumed: consumed, State: state}
		}
	}
	return fa.ScanResult{Accepted: ida.D.IsAccept(state), Decision: fa.Undecided, Consumed: consumed, State: state}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
