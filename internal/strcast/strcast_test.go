package strcast

import (
	"math/rand"
	"testing"

	"repro/internal/fa"
	"repro/internal/regexpsym"
)

// compile builds a DFA over a shared alphabet from a content-model string.
func compile(t *testing.T, alpha *fa.Alphabet, src string) *fa.DFA {
	t.Helper()
	return regexpsym.Compile(regexpsym.MustParse(src), alpha)
}

// enumWords enumerates all words over k symbols up to maxLen.
func enumWords(k, maxLen int, fn func([]fa.Symbol)) {
	var rec func(prefix []fa.Symbol)
	rec = func(prefix []fa.Symbol) {
		fn(prefix)
		if len(prefix) == maxLen {
			return
		}
		for s := 0; s < k; s++ {
			rec(append(prefix, fa.Symbol(s)))
		}
	}
	rec(nil)
}

func TestValidateAgainstDirectScan(t *testing.T) {
	alpha := fa.NewAlphabet()
	a := compile(t, alpha, "(shipTo, billTo?, items)")
	b := compile(t, alpha, "(shipTo, billTo, items)")
	// Pad both to the full alphabet (they already share alpha).
	c := New(a, b)
	k := alpha.Size()
	enumWords(k, 4, func(w []fa.Symbol) {
		if !a.Accepts(w) {
			return
		}
		got := c.Validate(w)
		if got.Accepted != b.Accepts(w) {
			t.Fatalf("Validate(%s) = %v, want %v", alpha.String(w), got.Accepted, b.Accepts(w))
		}
	})
}

func TestValidateDecidesEarlyOnFigure1(t *testing.T) {
	// Source: shipTo billTo? items. Target: shipTo billTo items.
	// After seeing "shipTo billTo" the verdict is forced (accept): the
	// only continuation in L(a) is "items", which completes L(b) too.
	alpha := fa.NewAlphabet()
	a := compile(t, alpha, "(shipTo, billTo?, items)")
	b := compile(t, alpha, "(shipTo, billTo, items)")
	c := New(a, b)
	w := alpha.Symbols("shipTo", "billTo", "items")
	res := c.Validate(w)
	if !res.Accepted {
		t.Fatal("should accept")
	}
	if res.Decision != fa.ImmediateAccept || res.Scanned != 2 {
		t.Fatalf("expected immediate accept after 2 symbols, got %+v", res)
	}
	// Without billTo the verdict is reject, forced at "items" (position 2
	// is never reached — seeing items right after shipTo kills b).
	w2 := alpha.Symbols("shipTo", "items")
	res2 := c.Validate(w2)
	if res2.Accepted {
		t.Fatal("should reject")
	}
	if res2.Decision != fa.ImmediateReject || res2.Scanned != 2 {
		t.Fatalf("expected immediate reject at symbol 2, got %+v", res2)
	}
}

func TestValidateRandomPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	labels := []string{"a", "b", "c"}
	for i := 0; i < 40; i++ {
		alpha := fa.NewAlphabet()
		for _, l := range labels {
			alpha.Intern(l)
		}
		ea := randExpr(rng, 3, labels)
		eb := randExpr(rng, 3, labels)
		a := regexpsym.Compile(ea, alpha)
		b := regexpsym.Compile(eb, alpha)
		c := New(a, b)
		enumWords(alpha.Size(), 5, func(w []fa.Symbol) {
			if !a.Accepts(w) {
				return
			}
			if got := c.Validate(w); got.Accepted != b.Accepts(w) {
				t.Fatalf("iter %d (%s vs %s): wrong verdict on %v",
					i, regexpsym.String(ea), regexpsym.String(eb), w)
			}
		})
	}
}

// Exhaustive with-modifications check: apply random edit scripts, verify
// the verdict matches a direct scan of the edited string with b, in both
// the forward- and reverse-favourable regimes.
func TestValidateModifiedRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	labels := []string{"a", "b", "c"}
	for i := 0; i < 60; i++ {
		alpha := fa.NewAlphabet()
		for _, l := range labels {
			alpha.Intern(l)
		}
		a := regexpsym.Compile(randExpr(rng, 3, labels), alpha)
		b := regexpsym.Compile(randExpr(rng, 3, labels), alpha)
		s, ok := fa.Sample(a, rng, 8)
		if !ok {
			continue
		}
		c := New(a, b)
		for script := 0; script < 10; script++ {
			ed := NewEditor(s)
			nEdits := rng.Intn(3) + 1
			for e := 0; e < nEdits; e++ {
				cur := ed.Current()
				switch op := rng.Intn(3); {
				case op == 0 || len(cur) == 0: // insert
					ed.Insert(rng.Intn(len(cur)+1), fa.Symbol(rng.Intn(alpha.Size())))
				case op == 1: // delete
					ed.Delete(rng.Intn(len(cur)))
				default: // replace
					ed.Replace(rng.Intn(len(cur)), fa.Symbol(rng.Intn(alpha.Size())))
				}
			}
			got := ed.Validate(c)
			want := b.Accepts(ed.Current())
			if got.Accepted != want {
				t.Fatalf("iter %d script %d: edited %v -> %v: got %v want %v (%s)",
					i, script, s, ed.Current(), got.Accepted, want, got)
			}
		}
	}
}

func TestValidateModifiedPrefixEditScansForward(t *testing.T) {
	alpha := fa.NewAlphabet()
	a := compile(t, alpha, "(x, y*)")
	b := compile(t, alpha, "(x, y*)")
	c := New(a, b)
	x, y := alpha.Lookup("x"), alpha.Lookup("y")
	s := []fa.Symbol{x, y, y, y, y, y}
	ed := NewEditor(s)
	ed.Replace(1, y) // edit near the front (no-op value, still an edit)
	res := ed.Validate(c)
	if !res.Accepted {
		t.Fatalf("still valid: %+v", res)
	}
	if res.Reversed {
		t.Fatalf("front edit should scan forward: %+v", res)
	}
	// a = b here, so after re-synchronizing, the pair state is diagonal
	// and immediately subsumed: the scan should stop well short of the
	// whole string.
	if res.Scanned >= len(s) {
		t.Fatalf("expected early decision, scanned %d of %d", res.Scanned, len(s))
	}
}

func TestValidateModifiedAppendScansReverse(t *testing.T) {
	alpha := fa.NewAlphabet()
	a := compile(t, alpha, "(x, y*)")
	b := compile(t, alpha, "(x, y*)")
	c := New(a, b)
	x, y := alpha.Lookup("x"), alpha.Lookup("y")
	s := []fa.Symbol{x, y, y, y, y, y, y, y}
	ed := NewEditor(s)
	ed.Append(y)
	res := ed.Validate(c)
	if !res.Accepted {
		t.Fatalf("appended y keeps the string valid: %+v", res)
	}
	if !res.Reversed {
		t.Fatalf("append-only edit should scan in reverse: %+v", res)
	}
	if res.Scanned >= len(ed.Current()) {
		t.Fatalf("reverse scan should decide early, scanned %d", res.Scanned)
	}
}

func TestValidateModifiedNoBounds(t *testing.T) {
	alpha := fa.NewAlphabet()
	a := compile(t, alpha, "(x, y)")
	b := compile(t, alpha, "(x, y) | (y, x)")
	c := New(a, b)
	x, y := alpha.Lookup("x"), alpha.Lookup("y")
	// Everything modified: falls back to scanning with b_immed.
	res := c.ValidateModified([]fa.Symbol{x, y}, []fa.Symbol{y, x}, 0, 0)
	if !res.Accepted {
		t.Fatalf("y x is in L(b): %+v", res)
	}
	res2 := c.ValidateModified([]fa.Symbol{x, y}, []fa.Symbol{y, y}, 0, 0)
	if res2.Accepted {
		t.Fatalf("y y is not in L(b): %+v", res2)
	}
}

func TestValidateModifiedBoundsPanic(t *testing.T) {
	alpha := fa.NewAlphabet()
	a := compile(t, alpha, "x")
	c := New(a, a)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range bounds")
		}
	}()
	c.ValidateModified([]fa.Symbol{0}, []fa.Symbol{0}, 5, 0)
}

func TestEditorBounds(t *testing.T) {
	s := []fa.Symbol{0, 1, 2, 3, 4}
	ed := NewEditor(s)
	p, q := ed.Bounds()
	if p != 5 || q != 0 { // clamped: p+q ≤ len
		t.Fatalf("pristine bounds = %d,%d", p, q)
	}
	ed.Replace(2, 9)
	p, q = ed.Bounds()
	if p != 2 || q != 2 {
		t.Fatalf("after middle replace: %d,%d", p, q)
	}
	ed.Delete(0)
	p, q = ed.Bounds()
	if p != 0 {
		t.Fatalf("after front delete prefix should be 0, got %d", p)
	}
	// Invariants hold: cur[:p] == orig[:p], cur tail q == orig tail q.
	cur := ed.Current()
	orig := ed.Original()
	for i := 0; i < p; i++ {
		if cur[i] != orig[i] {
			t.Fatal("prefix invariant broken")
		}
	}
	for i := 0; i < q; i++ {
		if cur[len(cur)-1-i] != orig[len(orig)-1-i] {
			t.Fatal("suffix invariant broken")
		}
	}
}

func TestEditorInsertAppendDelete(t *testing.T) {
	ed := NewEditor([]fa.Symbol{1, 2})
	ed.Insert(0, 0)
	ed.Append(3)
	if got := ed.Current(); len(got) != 4 || got[0] != 0 || got[3] != 3 {
		t.Fatalf("Current = %v", got)
	}
	ed.Delete(1)
	if got := ed.Current(); len(got) != 3 || got[1] != 2 {
		t.Fatalf("after delete: %v", got)
	}
	if got := ed.Original(); len(got) != 2 || got[0] != 1 {
		t.Fatal("Original must stay untouched")
	}
}

func TestResultString(t *testing.T) {
	r := Result{Accepted: true, Decision: fa.ImmediateAccept, Scanned: 3, Reversed: true}
	s := r.String()
	for _, want := range []string{"accepted=true", "immediate-accept", "scanned=3", "dir=rev"} {
		if !containsStr(s, want) {
			t.Fatalf("Result.String() = %q missing %q", s, want)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// randExpr mirrors the generator in regexpsym's tests.
func randExpr(rng *rand.Rand, depth int, labels []string) regexpsym.Node {
	if depth == 0 || rng.Intn(4) == 0 {
		return regexpsym.Lbl(labels[rng.Intn(len(labels))])
	}
	switch rng.Intn(5) {
	case 0:
		return regexpsym.Cat(randExpr(rng, depth-1, labels), randExpr(rng, depth-1, labels))
	case 1:
		return regexpsym.Or(randExpr(rng, depth-1, labels), randExpr(rng, depth-1, labels))
	case 2:
		return regexpsym.Opt(randExpr(rng, depth-1, labels))
	case 3:
		return regexpsym.Star(randExpr(rng, depth-1, labels))
	default:
		return regexpsym.Plus(randExpr(rng, depth-1, labels))
	}
}
