package strcast

import "repro/internal/fa"

// Editor applies symbol-level edits (the paper's insertions, deletions and
// renamings) to a string while tracking how much of it remains untouched at
// each end — exactly the bookkeeping §4.3 calls "straightforward to keep".
// The tracked bounds feed ValidateModified.
type Editor struct {
	orig []fa.Symbol
	cur  []fa.Symbol
	// prefix symbols of cur equal the prefix of orig; suffix symbols of
	// cur equal the suffix of orig.
	prefix, suffix int
}

// NewEditor starts an edit session over s (which is copied).
func NewEditor(s []fa.Symbol) *Editor {
	orig := append([]fa.Symbol(nil), s...)
	return &Editor{
		orig:   orig,
		cur:    append([]fa.Symbol(nil), s...),
		prefix: len(orig),
		suffix: len(orig),
	}
}

// Original returns the pre-edit string.
func (e *Editor) Original() []fa.Symbol { return e.orig }

// Current returns the string after the edits applied so far. The returned
// slice must not be mutated by the caller.
func (e *Editor) Current() []fa.Symbol { return e.cur }

// Bounds returns the lengths of the unmodified prefix and suffix, clamped
// so that they never overlap (prefix+suffix ≤ min(len orig, len cur)) —
// the contract ValidateModified expects.
func (e *Editor) Bounds() (prefixLen, suffixLen int) {
	n, m := len(e.orig), len(e.cur)
	lim := n
	if m < lim {
		lim = m
	}
	p, s := e.prefix, e.suffix
	if p > lim {
		p = lim
	}
	if s > lim {
		s = lim
	}
	if p+s > lim {
		s = lim - p
	}
	return p, s
}

// Replace renames the symbol at position pos of the current string.
func (e *Editor) Replace(pos int, sym fa.Symbol) {
	e.cur[pos] = sym
	e.touch(pos, pos+1)
}

// Insert places sym at position pos (0 ≤ pos ≤ len) of the current string.
func (e *Editor) Insert(pos int, sym fa.Symbol) {
	e.cur = append(e.cur, 0)
	copy(e.cur[pos+1:], e.cur[pos:])
	e.cur[pos] = sym
	e.touch(pos, pos+1)
}

// Append adds sym at the end of the current string.
func (e *Editor) Append(sym fa.Symbol) { e.Insert(len(e.cur), sym) }

// Delete removes the symbol at position pos of the current string.
func (e *Editor) Delete(pos int) {
	copy(e.cur[pos:], e.cur[pos+1:])
	e.cur = e.cur[:len(e.cur)-1]
	e.touch(pos, pos)
}

// touch records that cur[from:to] (in post-edit coordinates) is modified.
func (e *Editor) touch(from, to int) {
	if from < e.prefix {
		e.prefix = from
	}
	if tail := len(e.cur) - to; tail < e.suffix {
		e.suffix = tail
	}
}

// Validate runs the with-modifications cast using the tracked bounds.
func (e *Editor) Validate(c *Caster) Result {
	p, s := e.Bounds()
	return c.ValidateModified(e.orig, e.cur, p, s)
}
