package server

// GET /debug/fleet is the cluster-wide metric view: the queried node fans
// out to every peer's /metrics.json, merges the per-node family snapshots
// into one set of cluster totals (telemetry.MergeFamilies), and reports
// each peer's liveness (from the background prober) and snapshot
// freshness alongside. One curl against any member answers "what is the
// whole fleet doing" — the operational mirror image of the rendezvous
// routing that scattered the work in the first place.
//
// The fan-out reads peers' /metrics.json, which never fans out itself, so
// two nodes asking each other for /debug/fleet cannot recurse. Like the
// other observability routes it is untraced and ungoverned: a saturated
// cluster is exactly when the merged view matters.

import (
	"context"
	"encoding/json"
	"fmt"
	"html/template"
	"net/http"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// fleetFetchTimeout bounds one peer's /metrics.json fetch. Snapshots are
// small; a peer that cannot answer in this window is reported down rather
// than allowed to stall the whole view.
const fleetFetchTimeout = 5 * time.Second

// fleetPeer is one cluster member's row in the fleet view.
type fleetPeer struct {
	URL  string `json:"url"`
	Self bool   `json:"self,omitempty"`
	// Up mirrors castd_peer_up: the prober's last verdict (always true for
	// self — this node is answering the request).
	Up bool `json:"up"`
	// ProbeAgeMS is the freshness of that verdict: milliseconds since the
	// last completed probe. Absent for self and for peers never probed.
	ProbeAgeMS int64 `json:"probeAgeMs,omitempty"`
	// Families counts the metric families this fetch contributed; 0 with a
	// non-empty Error means the peer's snapshot was unreachable.
	Families int    `json:"families"`
	Error    string `json:"error,omitempty"`
}

type fleetBody struct {
	Self   string                     `json:"self"`
	Peers  []fleetPeer                `json:"peers"`
	Merged []telemetry.FamilySnapshot `json:"merged"`
}

// peerFamilies decodes the families field of one peer's /metrics.json.
type peerFamilies struct {
	Families []telemetry.FamilySnapshot `json:"families"`
}

func (s *Server) handleFleet(w http.ResponseWriter, r *http.Request) {
	self := "standalone"
	var peers []string
	client := http.DefaultClient
	if s.cluster != nil {
		self = s.cluster.self
		peers = s.cluster.peers
		client = s.cluster.client
	}

	// Self contributes its snapshot directly — no loopback HTTP round trip.
	selfFams := s.met.Gather()
	rows := []fleetPeer{{URL: self, Self: true, Up: true, Families: len(selfFams)}}
	contributions := [][]telemetry.FamilySnapshot{selfFams}

	type fetched struct {
		row  fleetPeer
		fams []telemetry.FamilySnapshot
	}
	var wg sync.WaitGroup
	results := make([]fetched, 0, len(peers))
	var mu sync.Mutex
	for _, p := range peers {
		if p == self {
			continue
		}
		wg.Add(1)
		go func(peer string) {
			defer wg.Done()
			row := fleetPeer{URL: peer}
			if st := s.peerHealth[peer]; st != nil {
				row.Up = st.up.Load()
				if last := st.lastProbe.Load(); last > 0 {
					row.ProbeAgeMS = time.Since(time.Unix(0, last)).Milliseconds()
				}
			}
			fams, err := fetchPeerFamilies(r.Context(), client, peer)
			if err != nil {
				row.Error = err.Error()
			} else {
				row.Families = len(fams)
			}
			mu.Lock()
			results = append(results, fetched{row: row, fams: fams})
			mu.Unlock()
		}(p)
	}
	wg.Wait()
	// Deterministic order: follow the configured peer list, not goroutine
	// completion order.
	for _, p := range peers {
		for _, f := range results {
			if f.row.URL == p {
				rows = append(rows, f.row)
				if f.fams != nil {
					contributions = append(contributions, f.fams)
				}
			}
		}
	}

	merged := telemetry.MergeFamilies(contributions...)
	if want := r.URL.Query().Get("family"); want != "" {
		filtered := merged[:0:0]
		for _, f := range merged {
			if f.Name == want {
				filtered = append(filtered, f)
			}
		}
		merged = filtered
	}

	body := fleetBody{Self: self, Peers: rows, Merged: merged}
	if r.URL.Query().Get("format") == "html" {
		s.renderFleet(w, body)
		return
	}
	writeJSON(w, http.StatusOK, body)
}

func fetchPeerFamilies(ctx context.Context, client *http.Client, peer string) ([]telemetry.FamilySnapshot, error) {
	ctx, cancel := context.WithTimeout(ctx, fleetFetchTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/metrics.json", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("peer answered %s", resp.Status)
	}
	var pf peerFamilies
	if err := json.NewDecoder(resp.Body).Decode(&pf); err != nil {
		return nil, fmt.Errorf("decoding snapshot: %w", err)
	}
	return pf.Families, nil
}

// fleetFamilyRow is one merged family condensed for the HTML table.
type fleetFamilyRow struct {
	Name   string
	Type   string
	Series int
	Total  string
}

var fleetTmpl = template.Must(template.New("fleet").Parse(`<!DOCTYPE html>
<html><head><title>castd fleet</title><style>
body{font:13px monospace;margin:2em}
table{border-collapse:collapse;margin-bottom:2em}
td,th{padding:2px 10px;text-align:left;border-bottom:1px solid #ddd}
.down{color:#b00}.up{color:#080}
</style></head><body>
<h1>fleet view from {{.Self}}</h1>
<table><tr><th>peer</th><th>state</th><th>probe age</th><th>families</th><th>error</th></tr>
{{range .Peers}}<tr>
<td>{{.URL}}{{if .Self}} (self){{end}}</td>
<td class="{{if .Up}}up{{else}}down{{end}}">{{if .Up}}up{{else}}down{{end}}</td>
<td>{{if .ProbeAgeMS}}{{.ProbeAgeMS}}ms{{else}}-{{end}}</td>
<td>{{.Families}}</td><td class="down">{{.Error}}</td>
</tr>{{end}}</table>
<table><tr><th>family</th><th>type</th><th>series</th><th>cluster total</th></tr>
{{range .Families}}<tr>
<td>{{.Name}}</td><td>{{.Type}}</td><td>{{.Series}}</td><td>{{.Total}}</td>
</tr>{{end}}</table>
</body></html>
`))

func (s *Server) renderFleet(w http.ResponseWriter, body fleetBody) {
	rows := make([]fleetFamilyRow, 0, len(body.Merged))
	for _, f := range body.Merged {
		var total float64
		for _, smp := range f.Samples {
			if f.Type == "histogram" {
				total += smp.Sum
			} else {
				total += smp.Value
			}
		}
		rows = append(rows, fleetFamilyRow{
			Name:   f.Name,
			Type:   f.Type,
			Series: len(f.Samples),
			Total:  fmt.Sprintf("%g", total),
		})
	}
	data := struct {
		Self     string
		Peers    []fleetPeer
		Families []fleetFamilyRow
	}{Self: body.Self, Peers: body.Peers, Families: rows}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fleetTmpl.Execute(w, data)
}
