package server

// The /debug/traces endpoints serve the tracer's retained-trace ring: a
// JSON list (newest first), a single trace's span tree, and — with
// ?format=html — a minimal dependency-free waterfall view for humans
// staring at a slow request. Like /debug/pprof, these endpoints are
// diagnostics for operators, not a public API: castd exposes them on the
// same listener, and deployments that front the daemon with a proxy
// should keep /debug/* internal.

import (
	"fmt"
	"html/template"
	"net/http"
	"sort"
	"time"

	"repro/internal/telemetry"
)

// traceSummary is one row of the GET /debug/traces listing.
type traceSummary struct {
	TraceID    string    `json:"traceId"`
	Name       string    `json:"name"`
	Start      time.Time `json:"start"`
	DurationNS int64     `json:"durationNs"`
	Spans      int       `json:"spans"`
	Reason     string    `json:"reason"`
	Error      string    `json:"error,omitempty"`
}

type tracesBody struct {
	Enabled bool                  `json:"enabled"`
	Stats   telemetry.TracerStats `json:"stats"`
	Traces  []traceSummary        `json:"traces"`
}

func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	traces := s.tracer.Traces()
	if r.URL.Query().Get("format") == "html" {
		s.renderTraceList(w, traces)
		return
	}
	body := tracesBody{
		Enabled: s.tracer != nil,
		Stats:   s.tracer.Stats(),
		Traces:  make([]traceSummary, 0, len(traces)),
	}
	for _, td := range traces {
		body.Traces = append(body.Traces, traceSummary{
			TraceID:    td.TraceID,
			Name:       td.Name,
			Start:      td.Start,
			DurationNS: td.DurationNS,
			Spans:      len(td.Spans),
			Reason:     td.Reason,
			Error:      td.Error,
		})
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	td, ok := s.tracer.Trace(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no retained trace %q (dropped by the sampler, ring-evicted, or never seen)", id)
		return
	}
	if r.URL.Query().Get("format") == "html" {
		s.renderWaterfall(w, td)
		return
	}
	writeJSON(w, http.StatusOK, td)
}

// waterfallRow is one span laid out for the HTML view: indentation from
// tree depth, bar geometry in percent of the root duration.
type waterfallRow struct {
	Name     string
	SpanID   string
	Depth    int
	LeftPct  float64
	WidthPct float64
	Duration string
	Error    string
	Events   int
	Attrs    string
}

// layoutWaterfall orders spans parent-before-child (siblings by start
// time) and computes bar geometry. Spans with a missing parent (e.g. the
// root's remote parent) are treated as roots.
func layoutWaterfall(td *telemetry.TraceData) []waterfallRow {
	byParent := map[string][]*telemetry.SpanData{}
	known := map[string]bool{}
	for i := range td.Spans {
		known[td.Spans[i].SpanID] = true
	}
	for i := range td.Spans {
		sp := &td.Spans[i]
		parent := sp.ParentID
		if !known[parent] {
			parent = "" // root, or parent only exists on the wire
		}
		byParent[parent] = append(byParent[parent], sp)
	}
	for _, kids := range byParent {
		sort.Slice(kids, func(i, j int) bool { return kids[i].Start.Before(kids[j].Start) })
	}
	total := td.DurationNS
	if total <= 0 {
		total = 1
	}
	var rows []waterfallRow
	var walk func(parent string, depth int)
	walk = func(parent string, depth int) {
		for _, sp := range byParent[parent] {
			attrs := ""
			for _, a := range sp.Attrs {
				if attrs != "" {
					attrs += " "
				}
				attrs += fmt.Sprintf("%s=%v", a.Key, a.Value)
			}
			left := float64(sp.Start.Sub(td.Start).Nanoseconds()) / float64(total) * 100
			width := float64(sp.DurationNS) / float64(total) * 100
			if width < 0.2 {
				width = 0.2 // keep instantaneous spans visible
			}
			rows = append(rows, waterfallRow{
				Name:     sp.Name,
				SpanID:   sp.SpanID,
				Depth:    depth,
				LeftPct:  left,
				WidthPct: width,
				Duration: time.Duration(sp.DurationNS).Round(time.Microsecond).String(),
				Error:    sp.Error,
				Events:   len(sp.Events),
				Attrs:    attrs,
			})
			walk(sp.SpanID, depth+1)
		}
	}
	walk("", 0)
	return rows
}

var listTmpl = template.Must(template.New("list").Parse(`<!DOCTYPE html>
<html><head><title>castd traces</title><style>
body{font:13px monospace;margin:2em}
table{border-collapse:collapse}
td,th{padding:2px 10px;text-align:left;border-bottom:1px solid #ddd}
.err{color:#b00}
</style></head><body>
<h1>retained traces ({{len .}})</h1>
<table><tr><th>trace</th><th>name</th><th>duration</th><th>spans</th><th>kept because</th><th>error</th></tr>
{{range .}}<tr>
<td><a href="/debug/traces/{{.TraceID}}?format=html">{{.TraceID}}</a></td>
<td>{{.Name}}</td><td>{{.Duration}}</td><td>{{.Spans}}</td><td>{{.Reason}}</td>
<td class="err">{{.Error}}</td>
</tr>{{end}}</table>
</body></html>
`))

var waterfallTmpl = template.Must(template.New("trace").Parse(`<!DOCTYPE html>
<html><head><title>trace {{.TraceID}}</title><style>
body{font:13px monospace;margin:2em}
.row{display:flex;align-items:center;margin:2px 0}
.label{width:34em;white-space:nowrap;overflow:hidden;text-overflow:ellipsis}
.lane{position:relative;flex:1;height:14px;background:#f4f4f4}
.bar{position:absolute;top:2px;height:10px;background:#4a90d9}
.bar.err{background:#b00}
.meta{color:#777;margin-left:1em;white-space:nowrap}
.attrs{color:#999;font-size:11px;margin:0 0 6px 34em}
</style></head><body>
<h1>trace {{.TraceID}}</h1>
<p>{{.Name}} — {{.Duration}}{{if .Error}} — <span style="color:#b00">{{.Error}}</span>{{end}} (kept: {{.Reason}})</p>
{{range .Rows}}<div class="row">
<div class="label" style="padding-left:{{.Depth}}em">{{.Name}}</div>
<div class="lane"><div class="bar{{if .Error}} err{{end}}" style="left:{{printf "%.2f" .LeftPct}}%;width:{{printf "%.2f" .WidthPct}}%"></div></div>
<div class="meta">{{.Duration}}{{if .Events}} · {{.Events}} events{{end}}</div>
</div>{{if .Attrs}}<div class="attrs">{{.Attrs}}</div>{{end}}
{{end}}
<p><a href="/debug/traces/{{.TraceID}}">JSON</a> · <a href="/debug/traces?format=html">all traces</a></p>
</body></html>
`))

func (s *Server) renderTraceList(w http.ResponseWriter, traces []*telemetry.TraceData) {
	type row struct {
		TraceID, Name, Duration, Reason, Error string
		Spans                                  int
	}
	rows := make([]row, 0, len(traces))
	for _, td := range traces {
		rows = append(rows, row{
			TraceID:  td.TraceID,
			Name:     td.Name,
			Duration: time.Duration(td.DurationNS).Round(time.Microsecond).String(),
			Reason:   td.Reason,
			Error:    td.Error,
			Spans:    len(td.Spans),
		})
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	listTmpl.Execute(w, rows)
}

func (s *Server) renderWaterfall(w http.ResponseWriter, td *telemetry.TraceData) {
	data := struct {
		TraceID, Name, Duration, Reason, Error string
		Rows                                   []waterfallRow
	}{
		TraceID:  td.TraceID,
		Name:     td.Name,
		Duration: time.Duration(td.DurationNS).Round(time.Microsecond).String(),
		Reason:   td.Reason,
		Error:    td.Error,
		Rows:     layoutWaterfall(td),
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	waterfallTmpl.Execute(w, data)
}
