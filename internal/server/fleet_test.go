package server

// Fleet-telemetry tests: the /metrics.json families snapshot, content
// negotiation on /metrics, the two-node /debug/fleet merge, and the OTLP
// export pipeline end to end against a fake collector — including the
// acceptance criterion that an exported span's trace id shows up as an
// exemplar on the OpenMetrics scrape.

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/leakcheck"
	"repro/internal/registry"
	"repro/internal/telemetry"
)

// TestMetricsJSONFamilies is the /metrics.json regression: the snapshot
// must carry the full families view — including the scrape-time callback
// families (hot-pair attribution, registry bridges) the legacy fields
// never covered — while keeping those legacy fields intact for existing
// scrapers.
func TestMetricsJSONFamilies(t *testing.T) {
	ts := newTestServer(t, registry.Config{})
	registerFigSchemas(t, ts.URL)
	if code, body := do(t, "POST", ts.URL+"/cast/v1/v2", poXML(true)); code != 200 {
		t.Fatalf("cast: %d %s", code, body)
	}

	code, body := do(t, "GET", ts.URL+"/metrics.json", "")
	if code != 200 {
		t.Fatalf("metrics.json: %d %s", code, body)
	}
	// The CI smoke greps for this exact legacy fragment; it must survive.
	if !strings.Contains(body, `"compiles":1`) {
		t.Fatalf("legacy cache fields missing from %s", body)
	}

	var m metricsBody
	if err := json.Unmarshal([]byte(body), &m); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	fams := map[string]telemetry.FamilySnapshot{}
	for _, f := range m.Families {
		fams[f.Name] = f
	}
	// A scrape-time callback family (registry bridge) with the cast's
	// compile recorded.
	rc, ok := fams["registry_compiles_total"]
	if !ok {
		t.Fatalf("families missing registry_compiles_total; have %d families", len(m.Families))
	}
	if len(rc.Samples) != 1 || rc.Samples[0].Value != 1 {
		t.Fatalf("registry_compiles_total = %+v, want one sample of 1", rc.Samples)
	}
	// The hot-pair attribution family is sample-callback-backed too.
	hp, ok := fams["cast_pair_casts_total"]
	if !ok || len(hp.Samples) == 0 {
		t.Fatalf("families missing hot-pair samples: ok=%v %+v", ok, hp.Samples)
	}
	// A histogram family round-trips with buckets.
	cd, ok := fams["cast_duration_seconds"]
	if !ok || cd.Type != "histogram" || len(cd.Samples) != 1 {
		t.Fatalf("cast_duration_seconds = %+v", cd)
	}
	if cd.Samples[0].Count != 1 || len(cd.Samples[0].Buckets) == 0 {
		t.Fatalf("cast_duration_seconds sample = %+v", cd.Samples[0])
	}
}

// TestMetricsNegotiation: the default scrape stays Prometheus text 0.0.4
// byte-for-byte conventions, and an OpenMetrics Accept header switches
// the same route to the OpenMetrics exposition with its # EOF terminator.
func TestMetricsNegotiation(t *testing.T) {
	ts := newTestServer(t, registry.Config{})

	get := func(accept string) (string, string) {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, ts.URL+"/metrics", nil)
		if err != nil {
			t.Fatal(err)
		}
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.Header.Get("Content-Type"), string(b)
	}

	ct, body := get("")
	if ct != telemetry.ContentTypePrometheus {
		t.Fatalf("default content type %q", ct)
	}
	if strings.Contains(body, "# EOF") {
		t.Fatal("Prometheus exposition must not carry the OpenMetrics terminator")
	}

	ct, body = get("application/openmetrics-text; version=1.0.0")
	if ct != telemetry.ContentTypeOpenMetrics {
		t.Fatalf("OpenMetrics content type %q", ct)
	}
	if !strings.HasSuffix(body, "# EOF\n") {
		t.Fatal("OpenMetrics exposition must end with # EOF")
	}
	// Counter families drop the _total suffix in metadata but not samples.
	if !strings.Contains(body, "# TYPE http_requests counter") ||
		!strings.Contains(body, "http_requests_total{") {
		t.Fatalf("OpenMetrics counter naming wrong in:\n%s", body)
	}

	// A scraper that explicitly refuses OpenMetrics stays on text.
	if ct, _ = get("application/openmetrics-text;q=0, text/plain;q=0.5"); ct != telemetry.ContentTypePrometheus {
		t.Fatalf("q=0 OpenMetrics still negotiated: %q", ct)
	}
}

// fleetNodes is twoNodes with a fast prober so /debug/fleet's liveness
// column converges inside the test budget.
func fleetNodes(t *testing.T) (urlA, urlB string) {
	t.Helper()
	lhA, lhB := &lateHandler{}, &lateHandler{}
	tsA, tsB := httptest.NewServer(lhA), httptest.NewServer(lhB)
	t.Cleanup(tsA.Close)
	t.Cleanup(tsB.Close)
	peers := []string{tsA.URL, tsB.URL}
	srvA := New(registry.New(registry.Config{}),
		Options{SelfURL: tsA.URL, Peers: peers, PeerProbeInterval: 20 * time.Millisecond})
	srvB := New(registry.New(registry.Config{}),
		Options{SelfURL: tsB.URL, Peers: peers, PeerProbeInterval: 20 * time.Millisecond})
	t.Cleanup(srvA.Close)
	t.Cleanup(srvB.Close)
	lhA.set(srvA)
	lhB.set(srvB)
	return tsA.URL, tsB.URL
}

// TestFleetTwoNodes is the cross-peer aggregation contract: one request
// against node A reports node B up and returns cluster totals that cover
// both nodes' counters.
func TestFleetTwoNodes(t *testing.T) {
	urlA, urlB := fleetNodes(t)
	registerFigSchemas(t, urlA)
	registerFigSchemas(t, urlB)
	if code, body := do(t, "POST", urlA+"/cast/v1/v2", poXML(true)); code != 200 {
		t.Fatalf("cast via A: %d %s", code, body)
	}
	if code, body := do(t, "POST", urlB+"/cast/v1/v2", poXML(true)); code != 200 {
		t.Fatalf("cast via B: %d %s", code, body)
	}

	// Poll until the prober has seen B; the first probe may race startup.
	var body fleetBody
	deadline := time.Now().Add(3 * time.Second)
	for {
		code, raw := do(t, "GET", urlA+"/debug/fleet", "")
		if code != 200 {
			t.Fatalf("fleet: %d %s", code, raw)
		}
		body = fleetBody{}
		if err := json.Unmarshal([]byte(raw), &body); err != nil {
			t.Fatalf("bad fleet JSON: %v", err)
		}
		if len(body.Peers) == 2 && body.Peers[1].Up && body.Peers[1].Families > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("peer never came up: %+v", body.Peers)
		}
		time.Sleep(20 * time.Millisecond)
	}

	if body.Self != urlA || !body.Peers[0].Self || body.Peers[0].URL != urlA {
		t.Fatalf("self row wrong: self=%q peers=%+v", body.Self, body.Peers)
	}
	if body.Peers[1].URL != urlB || body.Peers[1].Error != "" {
		t.Fatalf("peer row wrong: %+v", body.Peers[1])
	}
	if body.Peers[1].ProbeAgeMS < 0 {
		t.Fatalf("probe age negative: %+v", body.Peers[1])
	}

	// Merged totals cover both nodes: each registered two schemas, so the
	// cluster-wide register-route counter is 4.
	var registered float64
	for _, f := range body.Merged {
		if f.Name != "http_requests_total" {
			continue
		}
		for _, smp := range f.Samples {
			if smp.Labels["route"] == "register" {
				registered += smp.Value
			}
		}
	}
	if registered != 4 {
		t.Fatalf("merged register requests = %v, want 4 (2 per node)", registered)
	}

	// ?family= narrows the merged view to one family.
	code, raw := do(t, "GET", urlA+"/debug/fleet?family=cast_verdicts_total", "")
	if code != 200 {
		t.Fatalf("fleet?family: %d %s", code, raw)
	}
	var filtered fleetBody
	if err := json.Unmarshal([]byte(raw), &filtered); err != nil {
		t.Fatal(err)
	}
	if len(filtered.Merged) != 1 || filtered.Merged[0].Name != "cast_verdicts_total" {
		t.Fatalf("family filter returned %+v", filtered.Merged)
	}
	var valid float64
	for _, smp := range filtered.Merged[0].Samples {
		if smp.Labels["verdict"] == "valid" {
			valid += smp.Value
		}
	}
	if valid < 2 {
		t.Fatalf("cluster-wide valid verdicts = %v, want >= 2", valid)
	}

	// The HTML rendering answers too.
	code, raw = do(t, "GET", urlA+"/debug/fleet?format=html", "")
	if code != 200 || !strings.Contains(raw, "fleet view from") || !strings.Contains(raw, urlB) {
		t.Fatalf("fleet html: %d %s", code, raw[:min(200, len(raw))])
	}
}

// TestFleetStandalone: without clustering the route still answers with a
// self-only view instead of 404ing — one code path for both shapes.
func TestFleetStandalone(t *testing.T) {
	ts := newTestServer(t, registry.Config{})
	code, raw := do(t, "GET", ts.URL+"/debug/fleet", "")
	if code != 200 {
		t.Fatalf("fleet: %d %s", code, raw)
	}
	var body fleetBody
	if err := json.Unmarshal([]byte(raw), &body); err != nil {
		t.Fatal(err)
	}
	if body.Self != "standalone" || len(body.Peers) != 1 || !body.Peers[0].Self {
		t.Fatalf("standalone fleet = %+v", body)
	}
	if len(body.Merged) == 0 {
		t.Fatal("standalone fleet has no merged families")
	}
}

// fakeCollector is an in-process OTLP/HTTP endpoint recording exported
// trace ids and metric names.
type fakeCollector struct {
	ts *httptest.Server

	mu       sync.Mutex
	traceIDs map[string]bool
	spans    []string
	metrics  map[string]bool
	requests int
}

func newFakeCollector(t *testing.T) *fakeCollector {
	t.Helper()
	c := &fakeCollector{traceIDs: map[string]bool{}, metrics: map[string]bool{}}
	c.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var payload struct {
			ResourceSpans []struct {
				ScopeSpans []struct {
					Spans []struct {
						TraceID string `json:"traceId"`
						Name    string `json:"name"`
					} `json:"spans"`
				} `json:"scopeSpans"`
			} `json:"resourceSpans"`
			ResourceMetrics []struct {
				ScopeMetrics []struct {
					Metrics []struct {
						Name string `json:"name"`
					} `json:"metrics"`
				} `json:"scopeMetrics"`
			} `json:"resourceMetrics"`
		}
		if err := json.NewDecoder(r.Body).Decode(&payload); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		c.mu.Lock()
		c.requests++
		for _, rs := range payload.ResourceSpans {
			for _, ss := range rs.ScopeSpans {
				for _, sp := range ss.Spans {
					c.traceIDs[sp.TraceID] = true
					c.spans = append(c.spans, sp.Name)
				}
			}
		}
		for _, rm := range payload.ResourceMetrics {
			for _, sm := range rm.ScopeMetrics {
				for _, m := range sm.Metrics {
					c.metrics[m.Name] = true
				}
			}
		}
		c.mu.Unlock()
		w.WriteHeader(http.StatusOK)
	}))
	t.Cleanup(c.ts.Close)
	return c
}

func (c *fakeCollector) hasSpan(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, s := range c.spans {
		if s == name {
			return true
		}
	}
	return false
}

func (c *fakeCollector) hasMetric(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.metrics[name]
}

func (c *fakeCollector) sawTrace(id string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.traceIDs[id]
}

var exemplarTraceRE = regexp.MustCompile(`http_request_duration_seconds_bucket\{[^}]*\} \d+ # \{trace_id="([0-9a-f]{32})"`)

// TestOTLPServerSmoke is the acceptance flow for the export pipeline: a
// traced cast is exported to the collector as a span batch, the metric
// snapshot follows, and the same trace id the collector received appears
// as an exemplar on the OpenMetrics scrape of the latency histogram.
func TestOTLPServerSmoke(t *testing.T) {
	col := newFakeCollector(t)
	base := leakcheck.Snapshot()

	srv := New(registry.New(registry.Config{}), Options{
		Tracer:       telemetry.NewTracer(telemetry.TracerOptions{SampleRate: 1}),
		OTLPEndpoint: col.ts.URL,
		OTLPInterval: 20 * time.Millisecond,
	})
	ts := httptest.NewServer(srv)

	registerFigSchemas(t, ts.URL)
	if code, body := do(t, "POST", ts.URL+"/cast/v1/v2", poXML(true)); code != 200 {
		t.Fatalf("cast: %d %s", code, body)
	}

	deadline := time.Now().Add(3 * time.Second)
	for !(col.hasSpan("http cast") && col.hasMetric("cast_duration_seconds")) {
		if time.Now().After(deadline) {
			t.Fatal("collector never saw the cast export")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The self-accounting families report the exports on the node itself.
	code, scrape := do(t, "GET", ts.URL+"/metrics", "")
	if code != 200 {
		t.Fatalf("metrics: %d", code)
	}
	for _, want := range []string{
		`castd_otlp_exported_total{signal="spans"}`,
		`castd_otlp_exported_total{signal="metrics"}`,
		"castd_otlp_queue_depth",
	} {
		if !strings.Contains(scrape, want) {
			t.Errorf("scrape missing %q", want)
		}
	}

	// Acceptance: the exemplar trace id on the OpenMetrics scrape is a
	// trace the collector actually received.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/metrics", nil)
	req.Header.Set("Accept", "application/openmetrics-text")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	om, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	m := exemplarTraceRE.FindStringSubmatch(string(om))
	if m == nil {
		t.Fatalf("no exemplar on http_request_duration_seconds in:\n%s", om)
	}
	if !col.sawTrace(m[1]) {
		t.Fatalf("exemplar trace %s never reached the collector", m[1])
	}

	// Drain order: Close flushes what is queued and stops the exporter
	// goroutine — leakcheck proves it is gone.
	ts.Close()
	srv.Close()
	leakcheck.Check(t, base)
}

// TestOTLPFaultStorm drives the injected 503 storm through a live server:
// exports retry with the synthesized Retry-After and recover once the
// countdown expires, with the retries visible in the self-accounting
// families.
func TestOTLPFaultStorm(t *testing.T) {
	col := newFakeCollector(t)
	faultinject.Enable(faultinject.Config{OTLPFail: 2})
	t.Cleanup(faultinject.Disable)

	srv := New(registry.New(registry.Config{}), Options{
		Tracer:       telemetry.NewTracer(telemetry.TracerOptions{SampleRate: 1}),
		OTLPEndpoint: col.ts.URL,
		OTLPInterval: 20 * time.Millisecond,
	})
	ts := httptest.NewServer(srv)
	t.Cleanup(srv.Close)
	t.Cleanup(ts.Close)

	registerFigSchemas(t, ts.URL)
	if code, body := do(t, "POST", ts.URL+"/cast/v1/v2", poXML(true)); code != 200 {
		t.Fatalf("cast: %d %s", code, body)
	}

	deadline := time.Now().Add(3 * time.Second)
	for !col.hasSpan("http cast") {
		if time.Now().After(deadline) {
			t.Fatal("collector never recovered from the injected storm")
		}
		time.Sleep(10 * time.Millisecond)
	}

	code, scrape := do(t, "GET", ts.URL+"/metrics", "")
	if code != 200 {
		t.Fatalf("metrics: %d", code)
	}
	re := regexp.MustCompile(`castd_otlp_retries_total (\d+)`)
	m := re.FindStringSubmatch(scrape)
	if m == nil || m[1] == "0" {
		t.Fatalf("no retries recorded after injected storm: %v", m)
	}
}
