package server

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/leakcheck"
)

// TestChaos is the fault-containment acceptance run: under injected
// compile panics, injected read faults and admission saturation — all with
// the race detector watching — every request must complete with a
// structured response (200 verdict, 408/413/422/429/500 error), nothing may
// hang or crash, and the goroutine count must return to baseline once the
// servers drain.
func TestChaos(t *testing.T) {
	base := leakcheck.Snapshot()

	t.Run("compile-panic-storm", func(t *testing.T) {
		ts := newGovernedServer(t, Options{
			CastTimeout: 5 * time.Second,
			MaxDepth:    1024, MaxElements: 1_000_000,
		})
		registerFigSchemas(t, ts.URL)

		faultinject.Enable(faultinject.Config{CompilePanic: true})
		defer faultinject.Disable()

		// A storm of casts at a cold pair: one request pays the panicking
		// compile, the rest coalesce onto it. Every one must get a
		// structured 500 — no hung waiters, no crashed process.
		const n = 12
		var wg sync.WaitGroup
		codes := make([]int, n)
		bodies := make([]string, n)
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				resp, err := http.Post(ts.URL+"/cast/v1/v2", "application/xml",
					strings.NewReader(poXML(true)))
				if err != nil {
					t.Errorf("request %d died at the transport: %v", i, err)
					return
				}
				b, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				codes[i], bodies[i] = resp.StatusCode, string(b)
			}(i)
		}
		wg.Wait()
		for i := range codes {
			if codes[i] != http.StatusInternalServerError {
				t.Fatalf("request %d: want 500 under compile panic, got %d %s", i, codes[i], bodies[i])
			}
			if !strings.Contains(bodies[i], "panicked") {
				t.Fatalf("request %d: 500 body does not name the panic: %s", i, bodies[i])
			}
		}

		// Disarm: the poisoned entry was evicted, so the very next cast
		// recompiles and succeeds.
		faultinject.Disable()
		if code, body := do(t, "POST", ts.URL+"/cast/v1/v2", poXML(true)); code != 200 {
			t.Fatalf("recovery cast after panic storm: %d %s", code, body)
		}
		// At least one compile panicked (storm timing may trigger a retry
		// compile that panics again, so the exact count is not pinned).
		_, metrics := do(t, "GET", ts.URL+"/metrics", "")
		if !strings.Contains(metrics, "registry_compile_panics_total") ||
			strings.Contains(metrics, "registry_compile_panics_total 0") {
			t.Fatalf("compile-panic counter missing or zero on metrics:\n%s", metrics)
		}
	})

	t.Run("read-fault-storm", func(t *testing.T) {
		ts := newGovernedServer(t, Options{CastTimeout: 5 * time.Second})
		registerFigSchemas(t, ts.URL)

		// Every document's reader dies after 64 bytes: each cast must
		// settle into an ordinary invalid verdict carrying the injected
		// error — a flaky upstream is a verdict, not an outage.
		faultinject.Enable(faultinject.Config{ReadErrAfter: 64})
		defer faultinject.Disable()
		const n = 8
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				code, body := do(t, "POST", ts.URL+"/cast/v1/v2", poXML(true))
				if code != 200 {
					t.Errorf("request %d: want 200 verdict, got %d %s", i, code, body)
					return
				}
				var v struct {
					Valid bool   `json:"valid"`
					Error string `json:"error"`
				}
				if err := json.Unmarshal([]byte(body), &v); err != nil {
					t.Errorf("request %d: bad JSON %v in %s", i, err, body)
					return
				}
				if v.Valid || !strings.Contains(v.Error, "injected") {
					t.Errorf("request %d: verdict does not carry the injected fault: %s", i, body)
				}
			}(i)
		}
		wg.Wait()
	})

	t.Run("saturation-storm", func(t *testing.T) {
		ts := newGovernedServer(t, Options{
			MaxInFlight: 2,
			CastTimeout: 5 * time.Second,
		})
		registerFigSchemas(t, ts.URL)

		// Slow every read so the two slots stay busy and the storm actually
		// overflows into shedding.
		faultinject.Enable(faultinject.Config{ReadDelay: 5 * time.Millisecond})
		defer faultinject.Disable()
		const n = 16
		var wg sync.WaitGroup
		var mu sync.Mutex
		got := map[int]int{}
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				resp, err := http.Post(ts.URL+"/cast/v1/v2", "application/xml",
					strings.NewReader(poXML(true)))
				if err != nil {
					t.Errorf("request %d died at the transport: %v", i, err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusTooManyRequests &&
					resp.Header.Get("Retry-After") != "1" {
					t.Errorf("request %d: shed without Retry-After", i)
				}
				mu.Lock()
				got[resp.StatusCode]++
				mu.Unlock()
			}(i)
		}
		wg.Wait()
		for code := range got {
			if code != http.StatusOK && code != http.StatusTooManyRequests {
				t.Fatalf("unexpected status under saturation: %v", got)
			}
		}
		if got[http.StatusOK] == 0 {
			t.Fatalf("no request was ever admitted: %v", got)
		}
	})

	// Every server is closed (t.Cleanup ran per subtest), every request
	// answered: the process must be back to its baseline goroutine count —
	// admission slots, batch workers and handlers all wound down.
	http.DefaultClient.CloseIdleConnections()
	leakcheck.Check(t, base)
}
