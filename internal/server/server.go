// Package server exposes the schema-pair registry over HTTP: the handler
// behind the castd revalidation daemon. Documents are cast-validated
// straight off the request body through the streaming caster, so per-
// request memory is O(document depth) regardless of document size; all
// preprocessing is amortized in the registry.
//
// Routes:
//
//	PUT  /schemas/{id}            register a schema (XSD or DTD text body)
//	GET  /schemas/{id}            registered-version metadata
//	POST /cast/{src}/{dst}        cast-validate the request body (one doc)
//	POST /cast/{src}/{dst}/batch  cast-validate a JSON array of documents
//	GET  /pairs/{src}/{dst}       static-compatibility report, no document
//	GET  /metrics                 counter snapshot (JSON)
//	GET  /healthz                 liveness
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"

	revalidate "repro"
	"repro/internal/registry"
)

// maxSchemaBytes bounds a PUT /schemas body; schema texts are small, and
// an unbounded read is a trivial memory DoS.
const maxSchemaBytes = 16 << 20

// maxBatchBytes bounds a POST /cast batch body (single-document casts
// stream and need no bound).
const maxBatchBytes = 256 << 20

// Options tune the server.
type Options struct {
	// Workers sizes the batch-validation worker pool; <= 0 means one
	// worker per logical CPU (per request).
	Workers int
}

// Server is the castd HTTP handler. Safe for concurrent use; all shared
// state lives in the registry or in atomic counters.
type Server struct {
	reg     *registry.Registry
	workers int
	mux     *http.ServeMux

	reqRegister, reqCast, reqBatch, reqPairs atomic.Int64
	verdictValid, verdictInvalid             atomic.Int64

	// Cumulative streaming-work counters across all cast requests; the
	// skimmed count is the serving-layer view of the paper's "skipped
	// subtrees" economy.
	elementsProcessed, elementsSkimmed, automatonSteps, valuesChecked atomic.Int64
}

// New wires the routes over a registry.
func New(reg *registry.Registry, opts Options) *Server {
	s := &Server{reg: reg, workers: opts.Workers, mux: http.NewServeMux()}
	s.mux.HandleFunc("PUT /schemas/{id}", s.handleRegister)
	s.mux.HandleFunc("GET /schemas/{id}", s.handleSchema)
	s.mux.HandleFunc("POST /cast/{src}/{dst}", s.handleCast)
	s.mux.HandleFunc("POST /cast/{src}/{dst}/batch", s.handleBatch)
	s.mux.HandleFunc("GET /pairs/{src}/{dst}", s.handlePairs)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// pair resolves a (src, dst) id pair, mapping registry errors to HTTP
// statuses (404 unknown id, 422 uncompilable pair).
func (s *Server) pair(w http.ResponseWriter, r *http.Request) (*registry.Pair, bool) {
	src, dst := r.PathValue("src"), r.PathValue("dst")
	p, err := s.reg.Pair(src, dst)
	if err != nil {
		var unknown *registry.UnknownSchemaError
		if errors.As(err, &unknown) {
			writeError(w, http.StatusNotFound, "%v", err)
		} else {
			writeError(w, http.StatusUnprocessableEntity, "%v", err)
		}
		return nil, false
	}
	return p, true
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	s.reqRegister.Add(1)
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSchemaBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	if len(body) > maxSchemaBytes {
		writeError(w, http.StatusRequestEntityTooLarge, "schema exceeds %d bytes", maxSchemaBytes)
		return
	}
	format := registry.Format(r.URL.Query().Get("format"))
	switch format {
	case registry.FormatAuto, registry.FormatXSD, registry.FormatDTD:
	default:
		writeError(w, http.StatusBadRequest, "unknown format %q (want xsd or dtd)", format)
		return
	}
	e, err := s.reg.Register(r.PathValue("id"), string(body), format, r.URL.Query().Get("root"))
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, e)
}

func (s *Server) handleSchema(w http.ResponseWriter, r *http.Request) {
	e, ok := s.reg.Schema(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown schema id %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, e)
}

// streamStatsBody is the JSON shape of per-request streaming work.
type streamStatsBody struct {
	ElementsProcessed int64 `json:"elementsProcessed"`
	ElementsSkimmed   int64 `json:"elementsSkimmed"`
	AutomatonSteps    int64 `json:"automatonSteps"`
	ValuesChecked     int64 `json:"valuesChecked"`
}

func (s *Server) recordStats(st revalidate.StreamStats) streamStatsBody {
	s.elementsProcessed.Add(st.ElementsProcessed)
	s.elementsSkimmed.Add(st.ElementsSkimmed)
	s.automatonSteps.Add(st.AutomatonSteps)
	s.valuesChecked.Add(st.ValuesChecked)
	return streamStatsBody{
		ElementsProcessed: st.ElementsProcessed,
		ElementsSkimmed:   st.ElementsSkimmed,
		AutomatonSteps:    st.AutomatonSteps,
		ValuesChecked:     st.ValuesChecked,
	}
}

type castResponse struct {
	Valid bool            `json:"valid"`
	Error string          `json:"error,omitempty"`
	Stats streamStatsBody `json:"stats"`
}

func (s *Server) handleCast(w http.ResponseWriter, r *http.Request) {
	s.reqCast.Add(1)
	p, ok := s.pair(w, r)
	if !ok {
		return
	}
	// The request body streams straight through the caster: O(depth)
	// memory however large the document.
	st, err := p.Stream.Validate(r.Body)
	resp := castResponse{Valid: err == nil, Stats: s.recordStats(st)}
	if err != nil {
		s.verdictInvalid.Add(1)
		resp.Error = err.Error()
	} else {
		s.verdictValid.Add(1)
	}
	writeJSON(w, http.StatusOK, resp)
}

type batchResponse struct {
	Count   int `json:"count"`
	Valid   int `json:"valid"`
	Invalid int `json:"invalid"`
	// Verdicts holds one entry per document: null when valid, the
	// rejection reason otherwise.
	Verdicts []*string       `json:"verdicts"`
	Stats    streamStatsBody `json:"stats"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.reqBatch.Add(1)
	p, ok := s.pair(w, r)
	if !ok {
		return
	}
	var docs []string
	dec := json.NewDecoder(io.LimitReader(r.Body, maxBatchBytes))
	if err := dec.Decode(&docs); err != nil {
		writeError(w, http.StatusBadRequest, "batch body must be a JSON array of XML documents: %v", err)
		return
	}
	workers := s.workers
	if v := r.URL.Query().Get("workers"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, "workers: %v", err)
			return
		}
		workers = n
	}
	readers := make([]io.Reader, len(docs))
	for i, d := range docs {
		readers[i] = strings.NewReader(d)
	}
	errs, st := p.Stream.ValidateAll(readers, workers)
	resp := batchResponse{Count: len(docs), Verdicts: make([]*string, len(docs)), Stats: s.recordStats(st)}
	for i, err := range errs {
		if err != nil {
			msg := err.Error()
			resp.Verdicts[i] = &msg
			resp.Invalid++
		} else {
			resp.Valid++
		}
	}
	s.verdictValid.Add(int64(resp.Valid))
	s.verdictInvalid.Add(int64(resp.Invalid))
	writeJSON(w, http.StatusOK, resp)
}

type pairsResponse struct {
	Src       *registry.SchemaEntry `json:"src"`
	Dst       *registry.SchemaEntry `json:"dst"`
	Report    revalidate.PairReport `json:"report"`
	CompileNS int64                 `json:"compileNS"`
}

func (s *Server) handlePairs(w http.ResponseWriter, r *http.Request) {
	s.reqPairs.Add(1)
	p, ok := s.pair(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, pairsResponse{
		Src:       p.Src,
		Dst:       p.Dst,
		Report:    p.Report,
		CompileNS: int64(p.CompileTime),
	})
}

type metricsBody struct {
	Requests struct {
		Register int64 `json:"register"`
		Cast     int64 `json:"cast"`
		Batch    int64 `json:"batch"`
		Pairs    int64 `json:"pairs"`
	} `json:"requests"`
	Verdicts struct {
		Valid   int64 `json:"valid"`
		Invalid int64 `json:"invalid"`
	} `json:"verdicts"`
	Stream streamStatsBody `json:"stream"`
	Cache  registry.Stats  `json:"cache"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var m metricsBody
	m.Requests.Register = s.reqRegister.Load()
	m.Requests.Cast = s.reqCast.Load()
	m.Requests.Batch = s.reqBatch.Load()
	m.Requests.Pairs = s.reqPairs.Load()
	m.Verdicts.Valid = s.verdictValid.Load()
	m.Verdicts.Invalid = s.verdictInvalid.Load()
	m.Stream = streamStatsBody{
		ElementsProcessed: s.elementsProcessed.Load(),
		ElementsSkimmed:   s.elementsSkimmed.Load(),
		AutomatonSteps:    s.automatonSteps.Load(),
		ValuesChecked:     s.valuesChecked.Load(),
	}
	m.Cache = s.reg.Stats()
	writeJSON(w, http.StatusOK, m)
}
