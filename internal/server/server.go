// Package server exposes the schema-pair registry over HTTP: the handler
// behind the castd revalidation daemon. Documents are cast-validated
// straight off the request body through the streaming caster, so per-
// request memory is O(document depth) regardless of document size; all
// preprocessing is amortized in the registry.
//
// Routes:
//
//	PUT  /schemas/{id}            register a schema (XSD or DTD text body)
//	GET  /schemas/{id}            registered-version metadata
//	POST /cast/{src}/{dst}        cast-validate the request body (one doc;
//	                              ?explain=1 adds the decision trace)
//	POST /cast/{src}/{dst}/batch  cast-validate a JSON array of documents
//	GET  /pairs/{src}/{dst}       static-compatibility report, no document
//	GET  /artifacts/{key}         compiled pair artifact blob (peer fetch)
//	GET  /metrics                 Prometheus text exposition (or OpenMetrics
//	                              with exemplars, via Accept negotiation)
//	GET  /metrics.json            metric snapshot (JSON, all families)
//	GET  /debug/fleet             cross-peer merged metric view (JSON;
//	                              ?format=html, ?family=NAME)
//	GET  /debug/traces            retained request traces (JSON; ?format=html)
//	GET  /debug/traces/{id}       one trace's span tree (JSON; ?format=html)
//	GET  /healthz                 liveness (503 while draining)
//
// Every route is wrapped in one middleware that assigns a request id,
// tracks the in-flight gauge, observes the latency histogram and counts
// the (route, status) pair — so the serving layer's families cost nothing
// on the validation hot path (engines keep request-scoped Stats structs;
// telemetry is fed once per request at this boundary).
//
// The same middleware is the trace boundary: it extracts the W3C
// traceparent header (malformed values fall back to a fresh trace id),
// opens the request's root span, injects the local span context on the
// response, plants the span in the request context (so every slog record
// emitted under a telemetry.CorrelateHandler carries trace_id/span_id),
// and emits the structured access record. Work routes open child spans
// around the registry lookup and the cast itself; observability routes
// (/metrics, /debug/traces, /healthz) are never traced, so scrapes and
// waterfall views do not fill the ring they read.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	revalidate "repro"
	"repro/internal/artifact"
	"repro/internal/faultinject"
	"repro/internal/hotpair"
	"repro/internal/profiling"
	"repro/internal/registry"
	"repro/internal/resilience"
	"repro/internal/telemetry"
	"repro/internal/telemetry/otlp"
)

// maxSchemaBytes bounds a PUT /schemas body; schema texts are small, and
// an unbounded read is a trivial memory DoS.
const maxSchemaBytes = 16 << 20

// maxBatchBytes bounds a POST /cast batch body (single-document casts are
// bounded per document by Options.MaxDocBytes).
const maxBatchBytes = 256 << 20

// admissionGrace is how long a request may queue for an in-flight slot
// before it is shed with 429: long enough to ride out momentary bursts,
// short enough that a saturated server answers (and frees the connection)
// almost immediately instead of stacking goroutines.
const admissionGrace = 50 * time.Millisecond

// Options tune the server.
type Options struct {
	// Workers sizes the batch-validation worker pool; <= 0 means one
	// worker per logical CPU (per request).
	Workers int
	// Logger, when non-nil, receives the server's structured records. Wrap
	// its handler in telemetry.NewCorrelateHandler so records carry
	// trace_id/span_id (castd does); the server only logs with request
	// contexts, never ids directly.
	Logger *slog.Logger
	// AccessLog, when true, emits one Logger record per request (request
	// id, method, path, route, status, duration).
	AccessLog bool
	// Tracer, when non-nil, records request-scoped spans served on
	// /debug/traces. A nil tracer disables tracing entirely: the hot path
	// pays only nil checks.
	Tracer *telemetry.Tracer

	// CastTimeout bounds one cast or batch request end to end: it becomes
	// the request context's deadline (the stream walker polls it with
	// amortized checks) and the connection's read deadline (so a stalled
	// client fails the body read instead of pinning a worker). <= 0
	// disables the deadline.
	CastTimeout time.Duration
	// MaxDocBytes bounds one document's bytes: the /cast body via
	// http.MaxBytesReader, and each element of a /batch array by length.
	// <= 0 means unlimited.
	MaxDocBytes int64
	// MaxDepth bounds open-element depth per document; a deeper document is
	// rejected with 422 before the stack grows further. <= 0 unlimited.
	MaxDepth int
	// MaxElements bounds elements (visited + skimmed) per document.
	// <= 0 unlimited.
	MaxElements int64
	// MaxInFlight bounds concurrently admitted work requests (register,
	// cast, batch, pairs). Excess requests wait briefly for a slot and are
	// then shed with 429 + Retry-After. <= 0 disables admission control.
	MaxInFlight int

	// Profiler, when non-nil, receives the server's capture triggers (slow
	// requests, sheds, recovered panics) and serves its ring on
	// /debug/profiles. The caller owns its lifecycle (Start/Stop); a nil
	// profiler leaves the endpoints mounted but empty.
	Profiler *profiling.Profiler
	// HotPairK bounds per-pair cast attribution to the K costliest schema
	// pairs (plus an `other` overflow bucket) on /metrics and
	// /debug/hotpairs. 0 means DefaultHotPairK; negative disables tracking.
	HotPairK int

	// PeerProbeInterval is the cadence of the background peer health prober
	// feeding castd_peer_up; <= 0 means DefaultPeerProbeInterval. Only
	// meaningful with clustering enabled.
	PeerProbeInterval time.Duration
	// PeerTimeout bounds each individual peer attempt (one artifact fetch
	// or hedge); <= 0 means DefaultPeerTimeout. The whole retry/hedge
	// chain is additionally bounded by the request deadline (CastTimeout,
	// propagated across hops).
	PeerTimeout time.Duration
	// PeerRetries is how many times a failed peer fetch is retried (with
	// exponential backoff + full jitter, under the global retry budget).
	// 0 means DefaultPeerRetries; negative disables retries.
	PeerRetries int
	// PeerBreakerFailures, PeerBreakerWindow, PeerBreakerRate and
	// PeerBreakerOpenFor tune the per-peer circuit breakers; zero fields
	// take the resilience package defaults (5 consecutive failures, 30s
	// window, 0.5 error rate, 5s cool-off).
	PeerBreakerFailures int
	PeerBreakerWindow   time.Duration
	PeerBreakerRate     float64
	PeerBreakerOpenFor  time.Duration
	// HedgeAfter launches a second artifact fetch against another warm
	// peer when the first has not answered after this long (or the
	// observed p95 fetch latency, whichever is larger). <= 0 disables
	// hedging.
	HedgeAfter time.Duration
	// DegradedMode picks what a non-owner does when the owner's breaker
	// is open (or all attempts failed): DegradedModeLocal compiles
	// locally (the default), DegradedModeStale serves a disk-cached
	// artifact without compiling, DegradedModeFail answers 503 with
	// Retry-After.
	DegradedMode string

	// OTLPEndpoint is an OTLP/HTTP collector base URL (e.g.
	// "http://collector:4318"); retained traces and periodic metric
	// snapshots are exported there. Empty disables export entirely.
	OTLPEndpoint string
	// OTLPInterval is the metric snapshot/export cadence; <= 0 means
	// otlp.DefaultInterval. Only meaningful with OTLPEndpoint set.
	OTLPInterval time.Duration
	// OTLPQueue bounds the export queue (drop-oldest on overflow); <= 0
	// means otlp.DefaultQueueSize.
	OTLPQueue int

	// SelfURL is this instance's base URL as its peers address it (e.g.
	// "http://10.0.0.1:8080"). Clustering is enabled only when both SelfURL
	// and Peers are set.
	SelfURL string
	// Peers lists the base URLs of every cluster member (self included;
	// it is added if missing). Each compiled (source, target) pair key is
	// owned by one member chosen by rendezvous hashing; a non-owner first
	// tries to fetch the owner's compiled artifact, then proxies the
	// request, so the cluster pays each pair's preprocessing once.
	Peers []string
}

// Server is the castd HTTP handler. Safe for concurrent use; all shared
// state lives in the registry, in atomic counters, or in the telemetry
// registry (whose series are atomics resolved once at construction).
type Server struct {
	reg       *registry.Registry
	workers   int
	mux       *http.ServeMux
	logger    *slog.Logger
	accessLog bool
	tracer    *telemetry.Tracer

	draining atomic.Bool
	reqID    atomic.Uint64

	// Resource-governance knobs (fixed at construction, read-only after).
	castTimeout time.Duration
	maxDocBytes int64
	limits      revalidate.Limits
	// admit is the in-flight semaphore for work routes; nil disables
	// admission control.
	admit chan struct{}

	reqRegister, reqCast, reqBatch, reqPairs atomic.Int64
	verdictValid, verdictInvalid             atomic.Int64

	// Cumulative streaming-work counters across all cast requests; the
	// skimmed count is the serving-layer view of the paper's "skipped
	// subtrees" economy.
	elementsVisited, elementsSkimmed, automatonSteps, valuesChecked atomic.Int64

	// Prometheus families. Labeled series are resolved in New or once per
	// request — never per element.
	met              *telemetry.Registry
	httpRequests     *telemetry.CounterVec   // route, code
	httpDuration     *telemetry.HistogramVec // route
	castDuration     *telemetry.Histogram    // the cast-latency exemplar carrier
	inFlight         *telemetry.Gauge
	verdicts         *telemetry.CounterVec // verdict
	mElemVisited     *telemetry.Counter
	mElemSkimmed     *telemetry.Counter
	mSubtreesSkipped *telemetry.Counter
	mSubtreesRejectd *telemetry.Counter
	mSymbolsScanned  *telemetry.Counter
	mSymbolsSkipped  *telemetry.Counter
	mValuesChecked   *telemetry.Counter

	// Fault-containment families.
	mPanics    *telemetry.Counter   // panics recovered (middleware + batch slots)
	mShed      *telemetry.Counter   // requests shed with 429
	mQueueWait *telemetry.Histogram // admission queue wait of admitted requests

	// Cluster state; nil when -peers is unset. The peer counters exist
	// either way so dashboards see stable zero series on single nodes.
	cluster       *cluster
	mPeerForwards *telemetry.Counter
	mPeerFetch    *telemetry.Counter
	mPeerErrors   *telemetry.Counter

	// Resilience state: per-peer circuit breakers (built once in New,
	// read-only map after), the global retry budget, and the fetch
	// latency window steering hedge delays. All nil-safe on single nodes.
	breakers       map[string]*resilience.Breaker
	retryBudget    *resilience.Budget
	fetchLat       *resilience.LatencyTracker
	peerRetries    int
	peerTimeout    time.Duration
	hedgeAfter     time.Duration
	degradedMode   string
	mPeerRetries   *telemetry.Counter
	mPeerHedges    *telemetry.Counter
	mPeerHedgeWins *telemetry.Counter
	mDegraded      *telemetry.CounterVec // mode

	// Diagnostics: the profile ring's triggers, and bounded per-pair cast
	// attribution. Both are nil-safe no-ops when unconfigured.
	profiler *profiling.Profiler
	hotPairs *hotpair.Tracker

	// OTLP exporter; nil (all methods no-op) without -otlp-endpoint.
	exporter *otlp.Exporter

	// Peer health prober state; nil channels when not clustered. peerHealth
	// is built once in startProber (read-only map after) and feeds the
	// /debug/fleet freshness/up-down columns.
	proberStop chan struct{}
	proberDone chan struct{}
	peerHealth map[string]*peerStatus
	closeOnce  sync.Once
}

// peerStatus is one peer's last observed liveness, shared between the
// prober (writer) and /debug/fleet (reader).
type peerStatus struct {
	up        atomic.Bool
	lastProbe atomic.Int64 // unix nanos of the last completed probe; 0 = never
}

// DefaultHotPairK is the hot-pair attribution bound when Options.HotPairK
// is zero: generous enough for a real schema portfolio, small enough that
// the K+1 label sets never threaten a Prometheus server.
const DefaultHotPairK = 32

// DefaultPeerProbeInterval is the peer health probe cadence when
// Options.PeerProbeInterval is unset.
const DefaultPeerProbeInterval = 5 * time.Second

// DefaultPeerTimeout bounds one peer attempt when Options.PeerTimeout is
// unset. Blobs are small (schema texts plus automata tables), so a slower
// fetch means a sick peer — better to retry, hedge or degrade than wait.
const DefaultPeerTimeout = 10 * time.Second

// DefaultPeerRetries is the retry count when Options.PeerRetries is zero.
const DefaultPeerRetries = 2

// Degraded-mode policies for Options.DegradedMode.
const (
	// DegradedModeLocal compiles the pair locally when the owner is
	// unavailable: availability beats the once-per-cluster compile
	// economy during an outage.
	DegradedModeLocal = "local"
	// DegradedModeStale serves the pair from the local artifact store
	// without compiling; casts for pairs this node never saw answer 503.
	DegradedModeStale = "stale"
	// DegradedModeFail answers 503 + Retry-After immediately — for
	// fleets that prefer fast failover upstream over degraded work here.
	DegradedModeFail = "fail"
)

// New wires the routes over a registry.
func New(reg *registry.Registry, opts Options) *Server {
	s := &Server{
		reg: reg, workers: opts.Workers, mux: http.NewServeMux(),
		logger: opts.Logger, accessLog: opts.AccessLog, tracer: opts.Tracer,
		castTimeout: opts.CastTimeout,
		maxDocBytes: opts.MaxDocBytes,
		limits:      revalidate.Limits{MaxDepth: opts.MaxDepth, MaxElements: opts.MaxElements},
	}
	if opts.MaxInFlight > 0 {
		s.admit = make(chan struct{}, opts.MaxInFlight)
	}

	met := telemetry.NewRegistry()
	s.met = met
	s.httpRequests = met.CounterVec("http_requests_total",
		"HTTP requests by route and status code.", "route", "code")
	s.httpDuration = met.HistogramVec("http_request_duration_seconds",
		"HTTP request latency by route.", telemetry.DefBuckets(), "route")
	s.castDuration = met.Histogram("cast_duration_seconds",
		"Cast-validation latency (single casts and batches).", telemetry.DefBuckets())
	s.inFlight = met.Gauge("http_in_flight_requests",
		"HTTP requests currently being served.")
	s.verdicts = met.CounterVec("cast_verdicts_total",
		"Cast validation verdicts.", "verdict")
	s.mElemVisited = met.Counter("cast_elements_visited_total",
		"Elements that received validation work.")
	s.mElemSkimmed = met.Counter("cast_elements_skimmed_total",
		"Elements consumed inside subsumed subtrees with no validation work.")
	s.mSubtreesSkipped = met.Counter("cast_subtrees_skipped_total",
		"Subtrees skipped because the (source, target) type pair is subsumed.")
	s.mSubtreesRejectd = met.Counter("cast_subtrees_rejected_total",
		"Rejections due to disjoint (source, target) type pairs.")
	s.mSymbolsScanned = met.Counter("cast_symbols_scanned_total",
		"Content-model symbols scanned (automaton transitions taken).")
	s.mSymbolsSkipped = met.Counter("cast_symbols_skipped_total",
		"Content-model symbols skipped after an immediate decision.")
	s.mValuesChecked = met.Counter("cast_values_checked_total",
		"Simple values tested against target facets.")
	s.mPanics = met.Counter("castd_panics_total",
		"Panics recovered by the request middleware and batch workers.")
	s.mShed = met.Counter("castd_shed_total",
		"Requests shed with 429 because every -max-in-flight slot stayed busy.")
	s.mQueueWait = met.Histogram("castd_queue_wait_seconds",
		"Time admitted requests waited for an in-flight slot.",
		telemetry.ExponentialBuckets(0.0001, 10, 6))

	// Cluster families: stable zero series when -peers is unset.
	s.cluster = newCluster(opts.SelfURL, opts.Peers)
	s.mPeerForwards = met.Counter("castd_peer_forwards_total",
		"Cast requests proxied whole to the pair's owning peer.")
	s.mPeerFetch = met.Counter("castd_peer_fetch_total",
		"Pair artifacts fetched from the owning peer and installed locally.")
	s.mPeerErrors = met.Counter("castd_peer_errors_total",
		"Peer fetches, installs or proxies that failed.")
	// Resilience: retry budget, hedging latency window, per-peer circuit
	// breakers, degraded-mode policy. The families exist at zero on
	// single nodes like the peer counters above.
	s.peerTimeout = opts.PeerTimeout
	if s.peerTimeout <= 0 {
		s.peerTimeout = DefaultPeerTimeout
	}
	s.peerRetries = opts.PeerRetries
	if s.peerRetries == 0 {
		s.peerRetries = DefaultPeerRetries
	} else if s.peerRetries < 0 {
		s.peerRetries = 0
	}
	s.hedgeAfter = opts.HedgeAfter
	s.degradedMode = opts.DegradedMode
	if s.degradedMode == "" {
		s.degradedMode = DegradedModeLocal
	}
	s.retryBudget = resilience.NewBudget(0, 0)
	s.fetchLat = &resilience.LatencyTracker{}
	s.mPeerRetries = met.Counter("castd_peer_retries_total",
		"Peer fetch attempts beyond the first, granted by the retry budget.")
	met.CounterFunc("castd_peer_retry_budget_exhausted_total",
		"Retries refused because the global retry budget was empty.",
		func() float64 { return float64(s.retryBudget.Exhausted()) })
	s.mPeerHedges = met.Counter("castd_peer_hedges_total",
		"Hedged artifact fetches launched because the first attempt ran long.")
	s.mPeerHedgeWins = met.Counter("castd_peer_hedge_wins_total",
		"Hedged artifact fetches that answered before the original attempt.")
	s.mDegraded = met.CounterVec("castd_degraded_total",
		"Requests served through a degraded-mode path because the pair's owner was unavailable.",
		"mode")
	breakerState := met.GaugeVec("castd_breaker_state",
		"Per-peer circuit breaker state: 0 closed, 1 half-open, 2 open.", "peer")
	breakerTransitions := met.CounterVec("castd_breaker_transitions_total",
		"Circuit breaker state transitions by peer and destination state.", "peer", "to")
	met.GaugeFunc("castd_artifact_store_degraded",
		"1 while the artifact store is in memory-only degraded mode (disk full or read-only).",
		func() float64 {
			if st := reg.Store(); st != nil && st.Degraded() {
				return 1
			}
			return 0
		})
	if s.cluster != nil {
		s.breakers = map[string]*resilience.Breaker{}
		for _, p := range s.cluster.peers {
			if p == s.cluster.self {
				continue
			}
			peer := p
			stateGauge := breakerState.With(peer)
			stateGauge.Set(int64(resilience.Closed))
			s.breakers[peer] = resilience.NewBreaker(resilience.BreakerConfig{
				FailureThreshold: opts.PeerBreakerFailures,
				Window:           opts.PeerBreakerWindow,
				RateThreshold:    opts.PeerBreakerRate,
				OpenFor:          opts.PeerBreakerOpenFor,
				OnChange: func(from, to resilience.State) {
					stateGauge.Set(int64(to))
					breakerTransitions.With(peer, to.String()).Inc()
				},
			})
		}
	}

	// Peer liveness from the background prober. Standalone daemons render
	// the family with no series (HELP/TYPE only): the label space is the
	// peer list, and a standalone node has none.
	peerUp := met.GaugeVec("castd_peer_up",
		"1 when the peer answered its last health probe, 0 otherwise.", "peer")
	if s.cluster != nil {
		s.startProber(peerUp, opts.PeerProbeInterval)
	}

	// Continuous-profiling ring: capture counters bridge the profiler's own
	// atomics and read zero while no profiler is configured.
	s.profiler = opts.Profiler
	met.CounterFunc("castd_profiles_captured_total",
		"Profiles captured into the /debug/profiles ring.",
		func() float64 { return float64(s.profiler.Stats().Captured) })
	met.CounterFunc("castd_profiles_dropped_total",
		"Profile captures dropped: ring evictions, cooldown suppressions, overlapping CPU requests.",
		func() float64 { return float64(s.profiler.Stats().Dropped) })

	// Hot-pair attribution, bounded to K+1 label sets per family.
	hotK := opts.HotPairK
	if hotK == 0 {
		hotK = DefaultHotPairK
	}
	s.hotPairs = hotpair.New(hotK) // nil (disabled) when hotK < 0
	s.hotPairs.Register(met)

	// Artifact-store families bridge the store's own counters; all zero
	// when the registry runs without -artifact-dir.
	storeStats := func() artifact.StoreStats {
		if st := reg.Store(); st != nil {
			return st.Stats()
		}
		return artifact.StoreStats{}
	}
	met.CounterFunc("artifact_store_hits_total",
		"Artifact-store loads that decoded into a servable pair.",
		func() float64 { return float64(storeStats().Hits) })
	met.CounterFunc("artifact_store_misses_total",
		"Artifact-store lookups that found no blob.",
		func() float64 { return float64(storeStats().Misses) })
	met.CounterFunc("artifact_store_writes_total",
		"Artifact blobs written through to the store.",
		func() float64 { return float64(storeStats().Writes) })
	met.CounterFunc("artifact_store_corrupt_total",
		"Artifact blobs rejected as corrupt or stale and quarantined.",
		func() float64 { return float64(storeStats().Corrupt) })

	// Registry cache families: the compile histogram is fed by the
	// registry's observer hook; the counters and gauges bridge to the
	// registry's own atomics at scrape time.
	compileHist := met.Histogram("registry_compile_seconds",
		"Schema-pair compile latency (relations fixpoints + IDA construction).",
		telemetry.ExponentialBuckets(0.0001, 10, 6))
	reg.SetCompileObserver(compileHist.Observe)
	met.CounterFunc("registry_hits_total", "Pair-cache hits.",
		func() float64 { return float64(reg.Stats().Hits) })
	met.CounterFunc("registry_misses_total", "Pair-cache misses.",
		func() float64 { return float64(reg.Stats().Misses) })
	met.CounterFunc("registry_coalesces_total",
		"Pair requests coalesced onto an in-flight compile (singleflight).",
		func() float64 { return float64(reg.Stats().Coalesces) })
	met.CounterFunc("registry_compiles_total", "Schema-pair compiles.",
		func() float64 { return float64(reg.Stats().Compiles) })
	met.CounterFunc("registry_evictions_total", "Pair-cache evictions.",
		func() float64 { return float64(reg.Stats().Evictions) })
	met.CounterFunc("registry_compile_panics_total",
		"Schema-pair compiles that panicked, were recovered and evicted.",
		func() float64 { return float64(reg.Stats().CompilePanics) })
	met.GaugeFunc("registry_pairs", "Cached compiled pairs.",
		func() float64 { return float64(reg.Stats().Pairs) })
	met.GaugeFunc("registry_schemas", "Registered schema ids.",
		func() float64 { return float64(reg.Stats().Schemas) })
	met.GaugeFunc("registry_cache_bytes", "Approximate pair-cache footprint.",
		func() float64 { return float64(reg.Stats().Bytes) })

	// Build identity and process lifetime, for fleet dashboards ("which
	// revision is each instance running, and since when").
	goVersion, revision := buildIdentity()
	met.GaugeVec("castd_build_info",
		"Build metadata; the value is always 1.", "go_version", "revision").
		With(goVersion, revision).Set(1)
	started := time.Now()
	met.GaugeFunc("castd_uptime_seconds", "Seconds since the server was constructed.",
		func() float64 { return time.Since(started).Seconds() })

	// Tail-sampler economy: how many request traces were started, kept
	// (slow/error/head-sampled) and dropped. Zero throughout when tracing
	// is disabled.
	met.CounterFunc("castd_traces_started_total", "Request traces started.",
		func() float64 { return float64(s.tracer.Stats().Started) })
	met.CounterFunc("castd_traces_retained_total", "Request traces retained by the tail sampler.",
		func() float64 { return float64(s.tracer.Stats().Retained) })
	met.CounterFunc("castd_traces_dropped_total", "Request traces dropped by the tail sampler.",
		func() float64 { return float64(s.tracer.Stats().Dropped) })

	// OTLP export: retained traces and periodic metric snapshots ship to
	// the collector; the exporter's self-accounting families exist at zero
	// even when export is disabled (nil exporter, nil-safe Stats).
	resource := map[string]string{"service.name": "castd"}
	if opts.SelfURL != "" {
		resource["service.instance.id"] = opts.SelfURL
	}
	s.exporter = otlp.New(otlp.Options{
		Endpoint:  opts.OTLPEndpoint,
		Interval:  opts.OTLPInterval,
		QueueSize: opts.OTLPQueue,
		Gather:    met.Gather,
		Resource:  resource,
	})
	s.exporter.Register(met)
	if s.exporter != nil {
		s.tracer.OnRetain(s.exporter.ExportTrace)
	}

	// Work routes are governed (admission control applies); observability
	// routes are not — a saturated server must still answer /healthz and
	// /metrics, or the operator loses sight of it exactly when it matters.
	s.route("PUT /schemas/{id}", "register", true, true, s.handleRegister)
	s.route("GET /schemas/{id}", "schema", true, false, s.handleSchema)
	s.route("POST /cast/{src}/{dst}", "cast", true, true, s.handleCast)
	s.route("POST /cast/{src}/{dst}/batch", "batch", true, true, s.handleBatch)
	s.route("GET /pairs/{src}/{dst}", "pairs", true, true, s.handlePairs)
	// Not governed: a saturated owner must still hand blobs to peers, or
	// overload on one node cascades into cluster-wide recompiles.
	s.route("GET /artifacts/{key}", "artifact", true, false, s.handleArtifact)
	s.route("GET /metrics", "metrics", false, false, s.handlePrometheus)
	s.route("GET /metrics.json", "metrics.json", false, false, s.handleMetricsJSON)
	s.route("GET /debug/fleet", "fleet", false, false, s.handleFleet)
	s.route("GET /debug/traces", "traces", false, false, s.handleTraces)
	s.route("GET /debug/traces/{id}", "trace", false, false, s.handleTrace)
	s.route("GET /debug/profiles", "profiles", false, false, s.handleProfiles)
	s.route("GET /debug/profiles/{id}", "profile", false, false, s.handleProfile)
	s.route("GET /debug/hotpairs", "hotpairs", false, false, s.handleHotpairs)
	s.route("GET /healthz", "healthz", false, false, s.handleHealthz)
	return s
}

// startProber launches the background peer health loop: every peer except
// self gets a castd_peer_up series (resolved once, zero until its first
// probe) refreshed by a GET /healthz round each interval. Probes use a
// context deadline, not the shared client's Timeout, so they never
// interfere with fetch/proxy calls on the same client.
func (s *Server) startProber(up *telemetry.GaugeVec, interval time.Duration) {
	if interval <= 0 {
		interval = DefaultPeerProbeInterval
	}
	type target struct {
		url    string
		gauge  *telemetry.Gauge
		status *peerStatus
	}
	s.peerHealth = map[string]*peerStatus{}
	var targets []target
	for _, p := range s.cluster.peers {
		if p != s.cluster.self {
			st := &peerStatus{}
			s.peerHealth[p] = st
			targets = append(targets, target{url: p, gauge: up.With(p), status: st})
		}
	}
	s.proberStop = make(chan struct{})
	s.proberDone = make(chan struct{})
	probe := func() {
		for _, t := range targets {
			ctx, cancel := context.WithTimeout(context.Background(), interval)
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, t.url+"/healthz", nil)
			alive := false
			if err == nil {
				if resp, rerr := s.cluster.client.Do(req); rerr == nil {
					// Draining peers answer 503: alive for TCP purposes but
					// about to leave — stop counting on them, like an LB would.
					alive = resp.StatusCode == http.StatusOK
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
			cancel()
			if alive {
				t.gauge.Set(1)
			} else {
				t.gauge.Set(0)
			}
			t.status.up.Store(alive)
			t.status.lastProbe.Store(time.Now().UnixNano())
			// Feed the breaker: a live probe closes an open breaker
			// without waiting for user traffic to volunteer as the probe;
			// a dead one keeps it open past its cool-off.
			if br := s.breakers[t.url]; br != nil {
				br.RecordProbe(alive)
			}
		}
	}
	go func() {
		defer close(s.proberDone)
		probe() // immediately, so castd_peer_up converges at startup
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				probe()
			case <-s.proberStop:
				return
			}
		}
	}()
}

// Close stops the server's background goroutines: the peer prober first,
// then the OTLP exporter — whose Close flushes the pending batch plus a
// final metric snapshot, so a drained daemon's last numbers reach the
// collector. Idempotent; does not drain in-flight requests — that is
// http.Server.Shutdown's job (castd runs Shutdown before Close, so the
// final snapshot already includes the stragglers).
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		if s.proberStop != nil {
			close(s.proberStop)
			<-s.proberDone
		}
		s.tracer.OnRetain(nil) // no new exports once the queue is draining
		s.exporter.Close()
	})
}

// buildIdentity reads the build's Go version and VCS revision; "unknown"
// when the binary was built without VCS stamping (tests, go run).
func buildIdentity() (goVersion, revision string) {
	goVersion, revision = runtime.Version(), "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.GoVersion != "" {
			goVersion = bi.GoVersion
		}
		for _, kv := range bi.Settings {
			if kv.Key == "vcs.revision" && kv.Value != "" {
				revision = kv.Value
			}
		}
	}
	return goVersion, revision
}

// SetDraining flips the drain flag: while set, /healthz answers 503 so load
// balancers stop routing new work here, while in-flight and late-arriving
// requests still complete normally (castd flips it on SIGTERM, then lets
// http.Server.Shutdown finish the stragglers).
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// Metrics returns the server's telemetry registry so embedders can add
// their own families to the same /metrics page.
func (s *Server) Metrics() *telemetry.Registry { return s.met }

// statusWriter captures the response status for the access log and the
// (route, code) counter, and whether a header has been sent — the panic
// recovery path must know if a 500 can still be written.
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(p)
}

// Unwrap exposes the underlying writer so http.ResponseController can find
// per-connection controls (the cast handlers set read deadlines).
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// route registers one handler under its middleware wrapper. name is the
// static route label — resolved per request, not per element, and never
// derived from the URL (unbounded label cardinality is a metrics leak).
// traced routes get a root span (observability endpoints set it false so
// scraping /debug/traces does not fill the ring being scraped); governed
// routes pass admission control before their handler runs.
//
// The middleware is also the fault boundary: a panicking handler is
// recovered here — counted, logged with its stack under the request's
// trace ids, and answered with a 500 if the header has not been sent — so
// no single request can take the daemon down.
func (s *Server) route(pattern, name string, traced, governed bool, h http.HandlerFunc) {
	duration := s.httpDuration.With(name) // resolve the series once
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		id := s.reqID.Add(1)
		s.inFlight.Inc()
		defer s.inFlight.Dec()
		start := time.Now()

		var span *telemetry.Span
		if traced {
			// A malformed traceparent parses to ok=false and a zero
			// context, which StartRequest treats as "begin a fresh trace".
			parent, _ := telemetry.ParseTraceparent(r.Header.Get("traceparent"))
			span = s.tracer.StartRequest("http "+name, parent)
			if span != nil {
				span.SetAttr("http.method", r.Method)
				span.SetAttr("http.path", r.URL.Path)
				span.SetAttr("http.route", name)
				span.SetAttr("request.id", id)
				// Inject our context so clients (and curl users) can find
				// the request on /debug/traces.
				w.Header().Set("traceparent", telemetry.FormatTraceparent(span.Context()))
				r = r.WithContext(telemetry.ContextWithSpan(r.Context(), span))
			}
		}

		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		s.serve(sw, r, governed, h)
		d := time.Since(start)
		if sc := span.Context(); sc.IsValid() {
			// Traced request: stamp the latency bucket with this trace's
			// identity so a dashboard outlier links to its span tree.
			duration.ObserveExemplar(d.Seconds(), sc.TraceID.String(), sc.SpanID.String(), time.Now())
		} else {
			duration.Observe(d.Seconds())
		}
		s.httpRequests.With(name, strconv.Itoa(sw.status)).Inc()
		if governed {
			// Latency anomaly trigger: only work routes feed it — a slow
			// scrape of /debug/traces is not the hot path's problem.
			s.profiler.ObserveLatency(d)
		}

		span.SetAttr("http.status", sw.status)
		if sw.status >= http.StatusInternalServerError {
			span.SetError(http.StatusText(sw.status))
		}
		span.End()

		if s.accessLog && s.logger != nil {
			s.logger.LogAttrs(r.Context(), slog.LevelInfo, "request",
				slog.Uint64("req", id),
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.String("route", name),
				slog.Int("status", sw.status),
				slog.Duration("dur", d.Round(time.Microsecond)))
		}
	})
}

// serve runs one request through admission control and the panic guard.
// Recovery answers 500 when the header has not gone out yet; either way the
// recovered value and stack are logged under the request's trace ids and
// castd_panics_total moves, so a crash is an alertable, attributable event
// instead of a dead process.
func (s *Server) serve(sw *statusWriter, r *http.Request, governed bool, h http.HandlerFunc) {
	defer func() {
		rec := recover()
		if rec == nil {
			return
		}
		if err, ok := rec.(error); ok && errors.Is(err, http.ErrAbortHandler) {
			panic(rec) // stdlib convention for deliberately aborting a response
		}
		s.mPanics.Inc()
		// A recovered panic is exactly when a goroutine + heap snapshot is
		// worth having: the wreckage is still on the other goroutines.
		s.profiler.Event(profiling.TriggerPanic)
		if s.logger != nil {
			s.logger.LogAttrs(r.Context(), slog.LevelError, "handler panic",
				slog.String("path", r.URL.Path),
				slog.Any("panic", rec),
				slog.String("stack", string(debug.Stack())))
		}
		if !sw.wrote {
			writeError(sw, http.StatusInternalServerError, "internal error: %v", rec)
		} else {
			// Too late for a clean 500 on the wire; still record it for the
			// (route, code) counter, access log and span error flag.
			sw.status = http.StatusInternalServerError
		}
	}()
	if governed && s.admit != nil {
		wait := time.Now()
		if !s.acquire(r.Context()) {
			s.mShed.Inc()
			s.profiler.Event(profiling.TriggerShed)
			sw.Header().Set("Retry-After", "1")
			writeError(sw, http.StatusTooManyRequests,
				"server is at its -max-in-flight capacity; retry after a short backoff")
			return
		}
		s.mQueueWait.Observe(time.Since(wait).Seconds())
		defer func() { <-s.admit }()
	}
	h(sw, r)
}

// acquire takes an in-flight slot: immediately when one is free, otherwise
// after waiting at most admissionGrace. false means the request is shed —
// bounded queueing rides out bursts without converting overload into an
// unbounded goroutine pileup.
func (s *Server) acquire(ctx context.Context) bool {
	select {
	case s.admit <- struct{}{}:
		return true
	default:
	}
	t := time.NewTimer(admissionGrace)
	defer t.Stop()
	select {
	case s.admit <- struct{}{}:
		return true
	case <-t.C:
		return false
	case <-ctx.Done():
		return false
	}
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// pair resolves a (src, dst) id pair, mapping registry errors to HTTP
// statuses (404 unknown id, 422 uncompilable pair). The lookup runs under
// a "registry.lookup" child span whose outcome attribute distinguishes
// hit, miss (this request paid the compile) and coalesce (this request
// waited on another's compile — linked to the compiler's span).
func (s *Server) pair(w http.ResponseWriter, r *http.Request) (*registry.Pair, bool) {
	src, dst := r.PathValue("src"), r.PathValue("dst")
	if s.cluster != nil && r.Header.Get(forwardedHeader) == "" {
		p, handled := s.clusterPair(w, r, src, dst)
		if handled {
			return nil, false
		}
		if p != nil {
			return p, true
		}
	}
	sp := telemetry.SpanFromContext(r.Context()).StartChild("registry.lookup")
	sp.SetAttr("src", src)
	sp.SetAttr("dst", dst)
	ctx := telemetry.ContextWithSpan(r.Context(), sp)
	p, lk, err := s.reg.PairCtx(ctx, src, dst)
	if lk.Outcome != "" {
		sp.SetAttr("outcome", lk.Outcome)
	}
	sp.AddLink(lk.Compiler)
	if p != nil && lk.Outcome == registry.LookupMiss {
		sp.SetAttr("compile_ns", p.CompileTime.Nanoseconds())
	}
	if err != nil {
		sp.SetError(err.Error())
	}
	sp.End()
	if err != nil {
		var unknown *registry.UnknownSchemaError
		var compPanic *registry.CompilePanicError
		switch {
		case errors.As(err, &unknown):
			writeError(w, http.StatusNotFound, "%v", err)
		case errors.As(err, &compPanic):
			// A compiler bug, not a client error: the registry recovered
			// the panic and evicted the entry, so a retry recompiles.
			writeError(w, http.StatusInternalServerError, "%v", err)
		default:
			writeError(w, http.StatusUnprocessableEntity, "%v", err)
		}
		return nil, false
	}
	return p, true
}

// castContext derives the context a cast or batch request validates under.
// The deadline covers the whole request; it is mirrored onto the
// connection's read deadline because the walker's amortized ctx polls can
// only fire between tokens — a client that stops sending blocks the decoder
// inside Read, where only the connection deadline can reach it (the failed
// read surfaces as os.ErrDeadlineExceeded and maps to 408).
func (s *Server) castContext(w http.ResponseWriter, r *http.Request) (context.Context, context.CancelFunc) {
	timeout := s.castTimeout
	// Deadline propagation: a proxied request carries the forwarding
	// node's remaining budget; honor it when tighter than our own, so the
	// caller's -cast-timeout bounds the whole peer chain instead of
	// resetting per hop.
	if v := r.Header.Get(deadlineHeader); v != "" {
		if ms, err := strconv.ParseInt(v, 10, 64); err == nil && ms > 0 {
			if d := time.Duration(ms) * time.Millisecond; timeout <= 0 || d < timeout {
				timeout = d
			}
		}
	}
	if timeout <= 0 {
		return r.Context(), func() {}
	}
	// Best effort: test recorders don't implement deadlines, real
	// connections do.
	http.NewResponseController(w).SetReadDeadline(time.Now().Add(timeout))
	return context.WithTimeout(r.Context(), timeout)
}

// governanceStatus maps a validation error produced by a resource limit to
// its HTTP status: 408 when the deadline (context or connection read)
// expired or the client went away, 413 when the body outgrew -max-doc-bytes,
// 422 when the document exceeded a structural limit. ok=false means the
// error is an ordinary verdict, not a governance rejection.
func governanceStatus(err error) (status int, ok bool) {
	var maxBytes *http.MaxBytesError
	var limit *revalidate.LimitError
	switch {
	case err == nil:
		return 0, false
	case errors.As(err, &maxBytes):
		return http.StatusRequestEntityTooLarge, true
	case errors.As(err, &limit):
		return http.StatusUnprocessableEntity, true
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, os.ErrDeadlineExceeded):
		return http.StatusRequestTimeout, true
	case errors.Is(err, context.Canceled):
		// The client canceled (connection closed); 408 tells the access
		// log the server did not fail the request.
		return http.StatusRequestTimeout, true
	}
	return 0, false
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	s.reqRegister.Add(1)
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSchemaBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	if len(body) > maxSchemaBytes {
		writeError(w, http.StatusRequestEntityTooLarge, "schema exceeds %d bytes", maxSchemaBytes)
		return
	}
	format := registry.Format(r.URL.Query().Get("format"))
	switch format {
	case registry.FormatAuto, registry.FormatXSD, registry.FormatDTD:
	default:
		writeError(w, http.StatusBadRequest, "unknown format %q (want xsd or dtd)", format)
		return
	}
	sp := telemetry.SpanFromContext(r.Context()).StartChild("registry.register")
	sp.SetAttr("schema.id", r.PathValue("id"))
	sp.SetAttr("schema.bytes", len(body))
	e, err := s.reg.RegisterCtx(telemetry.ContextWithSpan(r.Context(), sp),
		r.PathValue("id"), string(body), format, r.URL.Query().Get("root"))
	if err != nil {
		sp.SetError(err.Error())
		sp.End()
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	sp.SetAttr("schema.hash", e.Hash)
	sp.End()
	writeJSON(w, http.StatusOK, e)
}

func (s *Server) handleSchema(w http.ResponseWriter, r *http.Request) {
	e, ok := s.reg.Schema(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown schema id %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, e)
}

// streamStatsBody is the JSON shape of per-request streaming work.
type streamStatsBody struct {
	ElementsVisited int64   `json:"elementsVisited"`
	ElementsSkimmed int64   `json:"elementsSkimmed"`
	AutomatonSteps  int64   `json:"automatonSteps"`
	SymbolsSkipped  int64   `json:"symbolsSkipped"`
	SubsumedSkips   int64   `json:"subsumedSkips"`
	DisjointRejects int64   `json:"disjointRejects"`
	ValuesChecked   int64   `json:"valuesChecked"`
	MaxDepth        int64   `json:"maxDepth"`
	WorkSavedRatio  float64 `json:"workSavedRatio"`
}

func toStatsBody(st revalidate.StreamStats) streamStatsBody {
	return streamStatsBody{
		ElementsVisited: st.ElementsVisited,
		ElementsSkimmed: st.ElementsSkimmed,
		AutomatonSteps:  st.AutomatonSteps,
		SymbolsSkipped:  st.SymbolsSkipped,
		SubsumedSkips:   st.SubsumedSkips,
		DisjointRejects: st.DisjointRejects,
		ValuesChecked:   st.ValuesChecked,
		MaxDepth:        st.MaxDepth,
		WorkSavedRatio:  st.WorkSavedRatio(),
	}
}

// recordPair attributes one cast's wall-clock cost and work economy to its
// schema pair in the bounded hot-pair table. The label is the pair
// artifact key's first 12 hex digits: content-addressed (stable across
// nodes and schema renames) and short enough for dashboards.
func (s *Server) recordPair(p *registry.Pair, d time.Duration, st revalidate.StreamStats, casts int64) {
	if s.hotPairs == nil || p == nil || p.Src == nil || p.Dst == nil {
		return
	}
	key := artifact.Key(p.Src.Hash, p.Dst.Hash)[:12]
	s.hotPairs.Observe(key, p.Src.ID, p.Dst.ID, hotpair.Stats{
		Casts:           casts,
		Seconds:         d.Seconds(),
		ElementsVisited: st.ElementsVisited,
		ElementsSkimmed: st.ElementsSkimmed,
		SubsumedSkips:   st.SubsumedSkips,
	})
}

// recordStats folds one request's streaming work into the cumulative
// counters (legacy JSON atomics and Prometheus families) and returns the
// per-request JSON body. One call per request — the engines never touch
// telemetry mid-validation.
func (s *Server) recordStats(st revalidate.StreamStats) streamStatsBody {
	s.elementsVisited.Add(st.ElementsVisited)
	s.elementsSkimmed.Add(st.ElementsSkimmed)
	s.automatonSteps.Add(st.AutomatonSteps)
	s.valuesChecked.Add(st.ValuesChecked)
	s.mElemVisited.Add(st.ElementsVisited)
	s.mElemSkimmed.Add(st.ElementsSkimmed)
	s.mSubtreesSkipped.Add(st.SubsumedSkips)
	s.mSubtreesRejectd.Add(st.DisjointRejects)
	s.mSymbolsScanned.Add(st.AutomatonSteps)
	s.mSymbolsSkipped.Add(st.SymbolsSkipped)
	s.mValuesChecked.Add(st.ValuesChecked)
	return toStatsBody(st)
}

type castResponse struct {
	Valid bool            `json:"valid"`
	Error string          `json:"error,omitempty"`
	Stats streamStatsBody `json:"stats"`
	// Trace holds the decision events when the request asked ?explain=1.
	Trace []revalidate.TraceEvent `json:"trace,omitempty"`
}

func (s *Server) handleCast(w http.ResponseWriter, r *http.Request) {
	s.reqCast.Add(1)
	p, ok := s.pair(w, r)
	if !ok {
		return
	}
	explain := r.URL.Query().Get("explain") == "1"
	ctx, cancel := s.castContext(w, r)
	defer cancel()
	// The request body streams straight through the caster: O(depth)
	// memory however large the document (trace mode additionally holds the
	// decision events). MaxBytesReader bounds the bytes one document may
	// push through that stream; the faultinject seam is a no-op unless the
	// operator armed -fault-inject. One span covers the whole cast;
	// per-element work stays in the request-scoped Stats struct and is
	// attached as span attributes afterwards.
	body := io.Reader(r.Body)
	if s.maxDocBytes > 0 {
		body = http.MaxBytesReader(w, r.Body, s.maxDocBytes)
	}
	body = faultinject.Reader(body)
	sp := telemetry.SpanFromContext(r.Context()).StartChild("cast.validate")
	var (
		st    revalidate.StreamStats
		trace []revalidate.TraceEvent
		err   error
	)
	castStart := time.Now()
	if explain {
		st, trace, err = p.Stream.ValidateTracedContext(ctx, body, s.limits)
	} else {
		st, err = p.Stream.ValidateContext(ctx, body, s.limits)
	}
	castDur := time.Since(castStart)
	s.recordPair(p, castDur, st, 1)
	s.observeCast(castDur, sp)
	annotateCastSpan(sp, st, trace, err)
	sp.End()
	if status, governed := governanceStatus(err); governed {
		// A governance rejection is not a validity verdict: the cast was
		// cut short, so neither valid nor invalid moves — the structured
		// error names the limit that fired.
		s.recordStats(st)
		writeError(w, status, "%v", err)
		return
	}
	resp := castResponse{Valid: err == nil, Stats: s.recordStats(st), Trace: trace}
	if err != nil {
		s.verdictInvalid.Add(1)
		s.verdicts.With("invalid").Inc()
		resp.Error = err.Error()
	} else {
		s.verdictValid.Add(1)
		s.verdicts.With("valid").Inc()
	}
	writeJSON(w, http.StatusOK, resp)
}

// observeCast feeds the cast-latency histogram, carrying the cast span's
// trace identity as the bucket exemplar when the request is traced.
func (s *Server) observeCast(d time.Duration, sp *telemetry.Span) {
	if sc := sp.Context(); sc.IsValid() {
		s.castDuration.ObserveExemplar(d.Seconds(), sc.TraceID.String(), sc.SpanID.String(), time.Now())
		return
	}
	s.castDuration.Observe(d.Seconds())
}

// annotateCastSpan attaches one cast's work economy to its span, plus the
// decision-trace events when the request asked for ?explain=1. An invalid
// document is a verdict, not a span error — the tail sampler should not
// retain every rejection, only requests the daemon itself failed.
func annotateCastSpan(sp *telemetry.Span, st revalidate.StreamStats, trace []revalidate.TraceEvent, err error) {
	if sp == nil {
		return
	}
	verdict := "valid"
	if err != nil {
		verdict = "invalid"
	}
	sp.SetAttr("verdict", verdict)
	sp.SetAttr("elements.visited", st.ElementsVisited)
	sp.SetAttr("elements.skimmed", st.ElementsSkimmed)
	sp.SetAttr("subtrees.skipped", st.SubsumedSkips)
	sp.SetAttr("subtrees.rejected", st.DisjointRejects)
	sp.SetAttr("symbols.scanned", st.AutomatonSteps)
	sp.SetAttr("symbols.skipped", st.SymbolsSkipped)
	sp.SetAttr("work.saved_ratio", st.WorkSavedRatio())
	for _, ev := range trace {
		sp.AddEvent(ev.Action,
			telemetry.Attr{Key: "path", Value: ev.Path},
			telemetry.Attr{Key: "dewey", Value: ev.Dewey},
			telemetry.Attr{Key: "src_type", Value: ev.SrcType},
			telemetry.Attr{Key: "dst_type", Value: ev.DstType},
			telemetry.Attr{Key: "detail", Value: ev.Detail})
	}
}

type batchResponse struct {
	Count   int `json:"count"`
	Valid   int `json:"valid"`
	Invalid int `json:"invalid"`
	// Verdicts holds one entry per document: null when valid, the
	// rejection reason otherwise.
	Verdicts []*string       `json:"verdicts"`
	Stats    streamStatsBody `json:"stats"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.reqBatch.Add(1)
	p, ok := s.pair(w, r)
	if !ok {
		return
	}
	ctx, cancel := s.castContext(w, r)
	defer cancel()
	var docs []string
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBatchBytes))
	if err := dec.Decode(&docs); err != nil {
		if status, governed := governanceStatus(err); governed {
			writeError(w, status, "batch body: %v", err)
			return
		}
		writeError(w, http.StatusBadRequest, "batch body must be a JSON array of XML documents: %v", err)
		return
	}
	workers := s.workers
	if v := r.URL.Query().Get("workers"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, "workers: %v", err)
			return
		}
		workers = n
	}
	// Per-document byte limit: an oversized batch entry gets a verdict for
	// its own slot without ever reaching a worker, mirroring what 413 does
	// for a single cast while the rest of the batch proceeds.
	errs := make([]error, len(docs))
	var keep []int
	var readers []io.Reader
	for i, d := range docs {
		if s.maxDocBytes > 0 && int64(len(d)) > s.maxDocBytes {
			errs[i] = fmt.Errorf("document is %d bytes, over the per-document limit (%d)",
				len(d), s.maxDocBytes)
			continue
		}
		keep = append(keep, i)
		readers = append(readers, faultinject.Reader(strings.NewReader(d)))
	}
	sp := telemetry.SpanFromContext(r.Context()).StartChild("cast.batch")
	sp.SetAttr("docs", len(docs))
	sp.SetAttr("workers", workers)
	castStart := time.Now()
	kept, st := p.Stream.ValidateAllContext(ctx, readers, workers, s.limits)
	castDur := time.Since(castStart)
	s.recordPair(p, castDur, st, int64(len(keep)))
	s.observeCast(castDur, sp)
	for j, i := range keep {
		errs[i] = kept[j]
	}
	sp.SetAttr("elements.visited", st.ElementsVisited)
	sp.SetAttr("elements.skimmed", st.ElementsSkimmed)
	sp.End()
	if ctx.Err() != nil {
		// The deadline or client cut the batch short: unclaimed slots carry
		// the context's cause, so per-document verdicts would conflate
		// "invalid" with "never looked at". Fail the whole request instead.
		s.recordStats(st)
		writeError(w, http.StatusRequestTimeout, "batch aborted: %v", context.Cause(ctx))
		return
	}
	resp := batchResponse{Count: len(docs), Verdicts: make([]*string, len(docs)), Stats: s.recordStats(st)}
	for i, err := range errs {
		if err != nil {
			var pe *revalidate.PanicError
			if errors.As(err, &pe) {
				// A contained worker panic is a server fault on one slot:
				// count it and log the stack, but keep the slot's verdict
				// structured like any other rejection.
				s.mPanics.Inc()
				if s.logger != nil {
					s.logger.LogAttrs(r.Context(), slog.LevelError, "batch slot panic",
						slog.Int("doc", i),
						slog.Any("panic", pe.Value),
						slog.String("stack", string(pe.Stack)))
				}
			}
			msg := err.Error()
			resp.Verdicts[i] = &msg
			resp.Invalid++
		} else {
			resp.Valid++
		}
	}
	s.verdictValid.Add(int64(resp.Valid))
	s.verdictInvalid.Add(int64(resp.Invalid))
	s.verdicts.With("valid").Add(int64(resp.Valid))
	s.verdicts.With("invalid").Add(int64(resp.Invalid))
	writeJSON(w, http.StatusOK, resp)
}

type pairsResponse struct {
	Src       *registry.SchemaEntry `json:"src"`
	Dst       *registry.SchemaEntry `json:"dst"`
	Report    revalidate.PairReport `json:"report"`
	CompileNS int64                 `json:"compileNS"`
}

func (s *Server) handlePairs(w http.ResponseWriter, r *http.Request) {
	s.reqPairs.Add(1)
	p, ok := s.pair(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, pairsResponse{
		Src:       p.Src,
		Dst:       p.Dst,
		Report:    p.Report,
		CompileNS: int64(p.CompileTime),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "draining\n")
		return
	}
	io.WriteString(w, "ok\n")
}

func (s *Server) handlePrometheus(w http.ResponseWriter, r *http.Request) {
	ct := telemetry.NegotiateExposition(r.Header.Get("Accept"))
	w.Header().Set("Content-Type", ct)
	if ct == telemetry.ContentTypeOpenMetrics {
		s.met.WriteOpenMetrics(w)
		return
	}
	s.met.WritePrometheus(w)
}

type metricsBody struct {
	Requests struct {
		Register int64 `json:"register"`
		Cast     int64 `json:"cast"`
		Batch    int64 `json:"batch"`
		Pairs    int64 `json:"pairs"`
	} `json:"requests"`
	Verdicts struct {
		Valid   int64 `json:"valid"`
		Invalid int64 `json:"invalid"`
	} `json:"verdicts"`
	Stream streamStatsBody `json:"stream"`
	Cache  registry.Stats  `json:"cache"`
	// Families is the full registry snapshot — every family the text
	// exposition renders, including the scrape-time callback families
	// (hot-pair attribution, registry bridges) that the legacy fields
	// above never covered. /debug/fleet merges peers from this field.
	Families []telemetry.FamilySnapshot `json:"families"`
}

func (s *Server) handleMetricsJSON(w http.ResponseWriter, _ *http.Request) {
	var m metricsBody
	m.Requests.Register = s.reqRegister.Load()
	m.Requests.Cast = s.reqCast.Load()
	m.Requests.Batch = s.reqBatch.Load()
	m.Requests.Pairs = s.reqPairs.Load()
	m.Verdicts.Valid = s.verdictValid.Load()
	m.Verdicts.Invalid = s.verdictInvalid.Load()
	m.Stream = streamStatsBody{
		ElementsVisited: s.elementsVisited.Load(),
		ElementsSkimmed: s.elementsSkimmed.Load(),
		AutomatonSteps:  s.automatonSteps.Load(),
		ValuesChecked:   s.valuesChecked.Load(),
	}
	m.Cache = s.reg.Stats()
	m.Families = s.met.Gather()
	writeJSON(w, http.StatusOK, m)
}
