// Package server exposes the schema-pair registry over HTTP: the handler
// behind the castd revalidation daemon. Documents are cast-validated
// straight off the request body through the streaming caster, so per-
// request memory is O(document depth) regardless of document size; all
// preprocessing is amortized in the registry.
//
// Routes:
//
//	PUT  /schemas/{id}            register a schema (XSD or DTD text body)
//	GET  /schemas/{id}            registered-version metadata
//	POST /cast/{src}/{dst}        cast-validate the request body (one doc;
//	                              ?explain=1 adds the decision trace)
//	POST /cast/{src}/{dst}/batch  cast-validate a JSON array of documents
//	GET  /pairs/{src}/{dst}       static-compatibility report, no document
//	GET  /metrics                 Prometheus text exposition
//	GET  /metrics.json            counter snapshot (JSON)
//	GET  /debug/traces            retained request traces (JSON; ?format=html)
//	GET  /debug/traces/{id}       one trace's span tree (JSON; ?format=html)
//	GET  /healthz                 liveness (503 while draining)
//
// Every route is wrapped in one middleware that assigns a request id,
// tracks the in-flight gauge, observes the latency histogram and counts
// the (route, status) pair — so the serving layer's families cost nothing
// on the validation hot path (engines keep request-scoped Stats structs;
// telemetry is fed once per request at this boundary).
//
// The same middleware is the trace boundary: it extracts the W3C
// traceparent header (malformed values fall back to a fresh trace id),
// opens the request's root span, injects the local span context on the
// response, plants the span in the request context (so every slog record
// emitted under a telemetry.CorrelateHandler carries trace_id/span_id),
// and emits the structured access record. Work routes open child spans
// around the registry lookup and the cast itself; observability routes
// (/metrics, /debug/traces, /healthz) are never traced, so scrapes and
// waterfall views do not fill the ring they read.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	revalidate "repro"
	"repro/internal/registry"
	"repro/internal/telemetry"
)

// maxSchemaBytes bounds a PUT /schemas body; schema texts are small, and
// an unbounded read is a trivial memory DoS.
const maxSchemaBytes = 16 << 20

// maxBatchBytes bounds a POST /cast batch body (single-document casts
// stream and need no bound).
const maxBatchBytes = 256 << 20

// Options tune the server.
type Options struct {
	// Workers sizes the batch-validation worker pool; <= 0 means one
	// worker per logical CPU (per request).
	Workers int
	// Logger, when non-nil, receives the server's structured records. Wrap
	// its handler in telemetry.NewCorrelateHandler so records carry
	// trace_id/span_id (castd does); the server only logs with request
	// contexts, never ids directly.
	Logger *slog.Logger
	// AccessLog, when true, emits one Logger record per request (request
	// id, method, path, route, status, duration).
	AccessLog bool
	// Tracer, when non-nil, records request-scoped spans served on
	// /debug/traces. A nil tracer disables tracing entirely: the hot path
	// pays only nil checks.
	Tracer *telemetry.Tracer
}

// Server is the castd HTTP handler. Safe for concurrent use; all shared
// state lives in the registry, in atomic counters, or in the telemetry
// registry (whose series are atomics resolved once at construction).
type Server struct {
	reg       *registry.Registry
	workers   int
	mux       *http.ServeMux
	logger    *slog.Logger
	accessLog bool
	tracer    *telemetry.Tracer

	draining atomic.Bool
	reqID    atomic.Uint64

	reqRegister, reqCast, reqBatch, reqPairs atomic.Int64
	verdictValid, verdictInvalid             atomic.Int64

	// Cumulative streaming-work counters across all cast requests; the
	// skimmed count is the serving-layer view of the paper's "skipped
	// subtrees" economy.
	elementsVisited, elementsSkimmed, automatonSteps, valuesChecked atomic.Int64

	// Prometheus families. Labeled series are resolved in New or once per
	// request — never per element.
	met              *telemetry.Registry
	httpRequests     *telemetry.CounterVec   // route, code
	httpDuration     *telemetry.HistogramVec // route
	inFlight         *telemetry.Gauge
	verdicts         *telemetry.CounterVec // verdict
	mElemVisited     *telemetry.Counter
	mElemSkimmed     *telemetry.Counter
	mSubtreesSkipped *telemetry.Counter
	mSubtreesRejectd *telemetry.Counter
	mSymbolsScanned  *telemetry.Counter
	mSymbolsSkipped  *telemetry.Counter
	mValuesChecked   *telemetry.Counter
}

// New wires the routes over a registry.
func New(reg *registry.Registry, opts Options) *Server {
	s := &Server{
		reg: reg, workers: opts.Workers, mux: http.NewServeMux(),
		logger: opts.Logger, accessLog: opts.AccessLog, tracer: opts.Tracer,
	}

	met := telemetry.NewRegistry()
	s.met = met
	s.httpRequests = met.CounterVec("http_requests_total",
		"HTTP requests by route and status code.", "route", "code")
	s.httpDuration = met.HistogramVec("http_request_duration_seconds",
		"HTTP request latency by route.", telemetry.DefBuckets(), "route")
	s.inFlight = met.Gauge("http_in_flight_requests",
		"HTTP requests currently being served.")
	s.verdicts = met.CounterVec("cast_verdicts_total",
		"Cast validation verdicts.", "verdict")
	s.mElemVisited = met.Counter("cast_elements_visited_total",
		"Elements that received validation work.")
	s.mElemSkimmed = met.Counter("cast_elements_skimmed_total",
		"Elements consumed inside subsumed subtrees with no validation work.")
	s.mSubtreesSkipped = met.Counter("cast_subtrees_skipped_total",
		"Subtrees skipped because the (source, target) type pair is subsumed.")
	s.mSubtreesRejectd = met.Counter("cast_subtrees_rejected_total",
		"Rejections due to disjoint (source, target) type pairs.")
	s.mSymbolsScanned = met.Counter("cast_symbols_scanned_total",
		"Content-model symbols scanned (automaton transitions taken).")
	s.mSymbolsSkipped = met.Counter("cast_symbols_skipped_total",
		"Content-model symbols skipped after an immediate decision.")
	s.mValuesChecked = met.Counter("cast_values_checked_total",
		"Simple values tested against target facets.")

	// Registry cache families: the compile histogram is fed by the
	// registry's observer hook; the counters and gauges bridge to the
	// registry's own atomics at scrape time.
	compileHist := met.Histogram("registry_compile_seconds",
		"Schema-pair compile latency (relations fixpoints + IDA construction).",
		telemetry.ExponentialBuckets(0.0001, 10, 6))
	reg.SetCompileObserver(compileHist.Observe)
	met.CounterFunc("registry_hits_total", "Pair-cache hits.",
		func() float64 { return float64(reg.Stats().Hits) })
	met.CounterFunc("registry_misses_total", "Pair-cache misses.",
		func() float64 { return float64(reg.Stats().Misses) })
	met.CounterFunc("registry_coalesces_total",
		"Pair requests coalesced onto an in-flight compile (singleflight).",
		func() float64 { return float64(reg.Stats().Coalesces) })
	met.CounterFunc("registry_compiles_total", "Schema-pair compiles.",
		func() float64 { return float64(reg.Stats().Compiles) })
	met.CounterFunc("registry_evictions_total", "Pair-cache evictions.",
		func() float64 { return float64(reg.Stats().Evictions) })
	met.GaugeFunc("registry_pairs", "Cached compiled pairs.",
		func() float64 { return float64(reg.Stats().Pairs) })
	met.GaugeFunc("registry_schemas", "Registered schema ids.",
		func() float64 { return float64(reg.Stats().Schemas) })
	met.GaugeFunc("registry_cache_bytes", "Approximate pair-cache footprint.",
		func() float64 { return float64(reg.Stats().Bytes) })

	// Build identity and process lifetime, for fleet dashboards ("which
	// revision is each instance running, and since when").
	goVersion, revision := buildIdentity()
	met.GaugeVec("castd_build_info",
		"Build metadata; the value is always 1.", "go_version", "revision").
		With(goVersion, revision).Set(1)
	started := time.Now()
	met.GaugeFunc("castd_uptime_seconds", "Seconds since the server was constructed.",
		func() float64 { return time.Since(started).Seconds() })

	// Tail-sampler economy: how many request traces were started, kept
	// (slow/error/head-sampled) and dropped. Zero throughout when tracing
	// is disabled.
	met.CounterFunc("castd_traces_started_total", "Request traces started.",
		func() float64 { return float64(s.tracer.Stats().Started) })
	met.CounterFunc("castd_traces_retained_total", "Request traces retained by the tail sampler.",
		func() float64 { return float64(s.tracer.Stats().Retained) })
	met.CounterFunc("castd_traces_dropped_total", "Request traces dropped by the tail sampler.",
		func() float64 { return float64(s.tracer.Stats().Dropped) })

	s.route("PUT /schemas/{id}", "register", true, s.handleRegister)
	s.route("GET /schemas/{id}", "schema", true, s.handleSchema)
	s.route("POST /cast/{src}/{dst}", "cast", true, s.handleCast)
	s.route("POST /cast/{src}/{dst}/batch", "batch", true, s.handleBatch)
	s.route("GET /pairs/{src}/{dst}", "pairs", true, s.handlePairs)
	s.route("GET /metrics", "metrics", false, s.handlePrometheus)
	s.route("GET /metrics.json", "metrics.json", false, s.handleMetricsJSON)
	s.route("GET /debug/traces", "traces", false, s.handleTraces)
	s.route("GET /debug/traces/{id}", "trace", false, s.handleTrace)
	s.route("GET /healthz", "healthz", false, s.handleHealthz)
	return s
}

// buildIdentity reads the build's Go version and VCS revision; "unknown"
// when the binary was built without VCS stamping (tests, go run).
func buildIdentity() (goVersion, revision string) {
	goVersion, revision = runtime.Version(), "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.GoVersion != "" {
			goVersion = bi.GoVersion
		}
		for _, kv := range bi.Settings {
			if kv.Key == "vcs.revision" && kv.Value != "" {
				revision = kv.Value
			}
		}
	}
	return goVersion, revision
}

// SetDraining flips the drain flag: while set, /healthz answers 503 so load
// balancers stop routing new work here, while in-flight and late-arriving
// requests still complete normally (castd flips it on SIGTERM, then lets
// http.Server.Shutdown finish the stragglers).
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// Metrics returns the server's telemetry registry so embedders can add
// their own families to the same /metrics page.
func (s *Server) Metrics() *telemetry.Registry { return s.met }

// statusWriter captures the response status for the access log and the
// (route, code) counter.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// route registers one handler under its middleware wrapper. name is the
// static route label — resolved per request, not per element, and never
// derived from the URL (unbounded label cardinality is a metrics leak).
// traced routes get a root span (observability endpoints set it false so
// scraping /debug/traces does not fill the ring being scraped).
func (s *Server) route(pattern, name string, traced bool, h http.HandlerFunc) {
	duration := s.httpDuration.With(name) // resolve the series once
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		id := s.reqID.Add(1)
		s.inFlight.Inc()
		defer s.inFlight.Dec()
		start := time.Now()

		var span *telemetry.Span
		if traced {
			// A malformed traceparent parses to ok=false and a zero
			// context, which StartRequest treats as "begin a fresh trace".
			parent, _ := telemetry.ParseTraceparent(r.Header.Get("traceparent"))
			span = s.tracer.StartRequest("http "+name, parent)
			if span != nil {
				span.SetAttr("http.method", r.Method)
				span.SetAttr("http.path", r.URL.Path)
				span.SetAttr("http.route", name)
				span.SetAttr("request.id", id)
				// Inject our context so clients (and curl users) can find
				// the request on /debug/traces.
				w.Header().Set("traceparent", telemetry.FormatTraceparent(span.Context()))
				r = r.WithContext(telemetry.ContextWithSpan(r.Context(), span))
			}
		}

		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		d := time.Since(start)
		duration.Observe(d.Seconds())
		s.httpRequests.With(name, strconv.Itoa(sw.status)).Inc()

		span.SetAttr("http.status", sw.status)
		if sw.status >= http.StatusInternalServerError {
			span.SetError(http.StatusText(sw.status))
		}
		span.End()

		if s.accessLog && s.logger != nil {
			s.logger.LogAttrs(r.Context(), slog.LevelInfo, "request",
				slog.Uint64("req", id),
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.String("route", name),
				slog.Int("status", sw.status),
				slog.Duration("dur", d.Round(time.Microsecond)))
		}
	})
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// pair resolves a (src, dst) id pair, mapping registry errors to HTTP
// statuses (404 unknown id, 422 uncompilable pair). The lookup runs under
// a "registry.lookup" child span whose outcome attribute distinguishes
// hit, miss (this request paid the compile) and coalesce (this request
// waited on another's compile — linked to the compiler's span).
func (s *Server) pair(w http.ResponseWriter, r *http.Request) (*registry.Pair, bool) {
	src, dst := r.PathValue("src"), r.PathValue("dst")
	sp := telemetry.SpanFromContext(r.Context()).StartChild("registry.lookup")
	sp.SetAttr("src", src)
	sp.SetAttr("dst", dst)
	ctx := telemetry.ContextWithSpan(r.Context(), sp)
	p, lk, err := s.reg.PairCtx(ctx, src, dst)
	if lk.Outcome != "" {
		sp.SetAttr("outcome", lk.Outcome)
	}
	sp.AddLink(lk.Compiler)
	if p != nil && lk.Outcome == registry.LookupMiss {
		sp.SetAttr("compile_ns", p.CompileTime.Nanoseconds())
	}
	if err != nil {
		sp.SetError(err.Error())
	}
	sp.End()
	if err != nil {
		var unknown *registry.UnknownSchemaError
		if errors.As(err, &unknown) {
			writeError(w, http.StatusNotFound, "%v", err)
		} else {
			writeError(w, http.StatusUnprocessableEntity, "%v", err)
		}
		return nil, false
	}
	return p, true
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	s.reqRegister.Add(1)
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSchemaBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	if len(body) > maxSchemaBytes {
		writeError(w, http.StatusRequestEntityTooLarge, "schema exceeds %d bytes", maxSchemaBytes)
		return
	}
	format := registry.Format(r.URL.Query().Get("format"))
	switch format {
	case registry.FormatAuto, registry.FormatXSD, registry.FormatDTD:
	default:
		writeError(w, http.StatusBadRequest, "unknown format %q (want xsd or dtd)", format)
		return
	}
	sp := telemetry.SpanFromContext(r.Context()).StartChild("registry.register")
	sp.SetAttr("schema.id", r.PathValue("id"))
	sp.SetAttr("schema.bytes", len(body))
	e, err := s.reg.RegisterCtx(telemetry.ContextWithSpan(r.Context(), sp),
		r.PathValue("id"), string(body), format, r.URL.Query().Get("root"))
	if err != nil {
		sp.SetError(err.Error())
		sp.End()
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	sp.SetAttr("schema.hash", e.Hash)
	sp.End()
	writeJSON(w, http.StatusOK, e)
}

func (s *Server) handleSchema(w http.ResponseWriter, r *http.Request) {
	e, ok := s.reg.Schema(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown schema id %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, e)
}

// streamStatsBody is the JSON shape of per-request streaming work.
type streamStatsBody struct {
	ElementsVisited int64   `json:"elementsVisited"`
	ElementsSkimmed int64   `json:"elementsSkimmed"`
	AutomatonSteps  int64   `json:"automatonSteps"`
	SymbolsSkipped  int64   `json:"symbolsSkipped"`
	SubsumedSkips   int64   `json:"subsumedSkips"`
	DisjointRejects int64   `json:"disjointRejects"`
	ValuesChecked   int64   `json:"valuesChecked"`
	MaxDepth        int64   `json:"maxDepth"`
	WorkSavedRatio  float64 `json:"workSavedRatio"`
}

func toStatsBody(st revalidate.StreamStats) streamStatsBody {
	return streamStatsBody{
		ElementsVisited: st.ElementsVisited,
		ElementsSkimmed: st.ElementsSkimmed,
		AutomatonSteps:  st.AutomatonSteps,
		SymbolsSkipped:  st.SymbolsSkipped,
		SubsumedSkips:   st.SubsumedSkips,
		DisjointRejects: st.DisjointRejects,
		ValuesChecked:   st.ValuesChecked,
		MaxDepth:        st.MaxDepth,
		WorkSavedRatio:  st.WorkSavedRatio(),
	}
}

// recordStats folds one request's streaming work into the cumulative
// counters (legacy JSON atomics and Prometheus families) and returns the
// per-request JSON body. One call per request — the engines never touch
// telemetry mid-validation.
func (s *Server) recordStats(st revalidate.StreamStats) streamStatsBody {
	s.elementsVisited.Add(st.ElementsVisited)
	s.elementsSkimmed.Add(st.ElementsSkimmed)
	s.automatonSteps.Add(st.AutomatonSteps)
	s.valuesChecked.Add(st.ValuesChecked)
	s.mElemVisited.Add(st.ElementsVisited)
	s.mElemSkimmed.Add(st.ElementsSkimmed)
	s.mSubtreesSkipped.Add(st.SubsumedSkips)
	s.mSubtreesRejectd.Add(st.DisjointRejects)
	s.mSymbolsScanned.Add(st.AutomatonSteps)
	s.mSymbolsSkipped.Add(st.SymbolsSkipped)
	s.mValuesChecked.Add(st.ValuesChecked)
	return toStatsBody(st)
}

type castResponse struct {
	Valid bool            `json:"valid"`
	Error string          `json:"error,omitempty"`
	Stats streamStatsBody `json:"stats"`
	// Trace holds the decision events when the request asked ?explain=1.
	Trace []revalidate.TraceEvent `json:"trace,omitempty"`
}

func (s *Server) handleCast(w http.ResponseWriter, r *http.Request) {
	s.reqCast.Add(1)
	p, ok := s.pair(w, r)
	if !ok {
		return
	}
	explain := r.URL.Query().Get("explain") == "1"
	// The request body streams straight through the caster: O(depth)
	// memory however large the document (trace mode additionally holds the
	// decision events). One span covers the whole cast; per-element work
	// stays in the request-scoped Stats struct and is attached as span
	// attributes afterwards.
	sp := telemetry.SpanFromContext(r.Context()).StartChild("cast.validate")
	var (
		st    revalidate.StreamStats
		trace []revalidate.TraceEvent
		err   error
	)
	if explain {
		st, trace, err = p.Stream.ValidateTraced(r.Body)
	} else {
		st, err = p.Stream.Validate(r.Body)
	}
	annotateCastSpan(sp, st, trace, err)
	sp.End()
	resp := castResponse{Valid: err == nil, Stats: s.recordStats(st), Trace: trace}
	if err != nil {
		s.verdictInvalid.Add(1)
		s.verdicts.With("invalid").Inc()
		resp.Error = err.Error()
	} else {
		s.verdictValid.Add(1)
		s.verdicts.With("valid").Inc()
	}
	writeJSON(w, http.StatusOK, resp)
}

// annotateCastSpan attaches one cast's work economy to its span, plus the
// decision-trace events when the request asked for ?explain=1. An invalid
// document is a verdict, not a span error — the tail sampler should not
// retain every rejection, only requests the daemon itself failed.
func annotateCastSpan(sp *telemetry.Span, st revalidate.StreamStats, trace []revalidate.TraceEvent, err error) {
	if sp == nil {
		return
	}
	verdict := "valid"
	if err != nil {
		verdict = "invalid"
	}
	sp.SetAttr("verdict", verdict)
	sp.SetAttr("elements.visited", st.ElementsVisited)
	sp.SetAttr("elements.skimmed", st.ElementsSkimmed)
	sp.SetAttr("subtrees.skipped", st.SubsumedSkips)
	sp.SetAttr("subtrees.rejected", st.DisjointRejects)
	sp.SetAttr("symbols.scanned", st.AutomatonSteps)
	sp.SetAttr("symbols.skipped", st.SymbolsSkipped)
	sp.SetAttr("work.saved_ratio", st.WorkSavedRatio())
	for _, ev := range trace {
		sp.AddEvent(ev.Action,
			telemetry.Attr{Key: "path", Value: ev.Path},
			telemetry.Attr{Key: "dewey", Value: ev.Dewey},
			telemetry.Attr{Key: "src_type", Value: ev.SrcType},
			telemetry.Attr{Key: "dst_type", Value: ev.DstType},
			telemetry.Attr{Key: "detail", Value: ev.Detail})
	}
}

type batchResponse struct {
	Count   int `json:"count"`
	Valid   int `json:"valid"`
	Invalid int `json:"invalid"`
	// Verdicts holds one entry per document: null when valid, the
	// rejection reason otherwise.
	Verdicts []*string       `json:"verdicts"`
	Stats    streamStatsBody `json:"stats"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.reqBatch.Add(1)
	p, ok := s.pair(w, r)
	if !ok {
		return
	}
	var docs []string
	dec := json.NewDecoder(io.LimitReader(r.Body, maxBatchBytes))
	if err := dec.Decode(&docs); err != nil {
		writeError(w, http.StatusBadRequest, "batch body must be a JSON array of XML documents: %v", err)
		return
	}
	workers := s.workers
	if v := r.URL.Query().Get("workers"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, "workers: %v", err)
			return
		}
		workers = n
	}
	readers := make([]io.Reader, len(docs))
	for i, d := range docs {
		readers[i] = strings.NewReader(d)
	}
	sp := telemetry.SpanFromContext(r.Context()).StartChild("cast.batch")
	sp.SetAttr("docs", len(docs))
	sp.SetAttr("workers", workers)
	errs, st := p.Stream.ValidateAll(readers, workers)
	sp.SetAttr("elements.visited", st.ElementsVisited)
	sp.SetAttr("elements.skimmed", st.ElementsSkimmed)
	sp.End()
	resp := batchResponse{Count: len(docs), Verdicts: make([]*string, len(docs)), Stats: s.recordStats(st)}
	for i, err := range errs {
		if err != nil {
			msg := err.Error()
			resp.Verdicts[i] = &msg
			resp.Invalid++
		} else {
			resp.Valid++
		}
	}
	s.verdictValid.Add(int64(resp.Valid))
	s.verdictInvalid.Add(int64(resp.Invalid))
	s.verdicts.With("valid").Add(int64(resp.Valid))
	s.verdicts.With("invalid").Add(int64(resp.Invalid))
	writeJSON(w, http.StatusOK, resp)
}

type pairsResponse struct {
	Src       *registry.SchemaEntry `json:"src"`
	Dst       *registry.SchemaEntry `json:"dst"`
	Report    revalidate.PairReport `json:"report"`
	CompileNS int64                 `json:"compileNS"`
}

func (s *Server) handlePairs(w http.ResponseWriter, r *http.Request) {
	s.reqPairs.Add(1)
	p, ok := s.pair(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, pairsResponse{
		Src:       p.Src,
		Dst:       p.Dst,
		Report:    p.Report,
		CompileNS: int64(p.CompileTime),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "draining\n")
		return
	}
	io.WriteString(w, "ok\n")
}

func (s *Server) handlePrometheus(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.met.WritePrometheus(w)
}

type metricsBody struct {
	Requests struct {
		Register int64 `json:"register"`
		Cast     int64 `json:"cast"`
		Batch    int64 `json:"batch"`
		Pairs    int64 `json:"pairs"`
	} `json:"requests"`
	Verdicts struct {
		Valid   int64 `json:"valid"`
		Invalid int64 `json:"invalid"`
	} `json:"verdicts"`
	Stream streamStatsBody `json:"stream"`
	Cache  registry.Stats  `json:"cache"`
}

func (s *Server) handleMetricsJSON(w http.ResponseWriter, _ *http.Request) {
	var m metricsBody
	m.Requests.Register = s.reqRegister.Load()
	m.Requests.Cast = s.reqCast.Load()
	m.Requests.Batch = s.reqBatch.Load()
	m.Requests.Pairs = s.reqPairs.Load()
	m.Verdicts.Valid = s.verdictValid.Load()
	m.Verdicts.Invalid = s.verdictInvalid.Load()
	m.Stream = streamStatsBody{
		ElementsVisited: s.elementsVisited.Load(),
		ElementsSkimmed: s.elementsSkimmed.Load(),
		AutomatonSteps:  s.automatonSteps.Load(),
		ValuesChecked:   s.valuesChecked.Load(),
	}
	m.Cache = s.reg.Stats()
	writeJSON(w, http.StatusOK, m)
}
