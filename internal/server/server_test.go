package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/registry"
	"repro/internal/wgen"
)

func newTestServer(t *testing.T, cfg registry.Config) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New(registry.New(cfg), Options{}))
	t.Cleanup(ts.Close)
	return ts
}

func do(t *testing.T, method, url, body string) (int, string) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

func registerFigSchemas(t *testing.T, base string) {
	t.Helper()
	if code, body := do(t, "PUT", base+"/schemas/v1", wgen.Figure2XSD(true, 100)); code != 200 {
		t.Fatalf("register v1: %d %s", code, body)
	}
	if code, body := do(t, "PUT", base+"/schemas/v2", wgen.Figure2XSD(false, 100)); code != 200 {
		t.Fatalf("register v2: %d %s", code, body)
	}
}

func poXML(withBill bool) string {
	return string(wgen.POXMLBytes(wgen.PODocument(wgen.PODocOptions{Items: 3, IncludeBillTo: withBill, Seed: 1})))
}

// TestEndToEnd is the acceptance flow: register two schemas over HTTP,
// cast a valid and an invalid document, read the pair report and metrics.
func TestEndToEnd(t *testing.T) {
	ts := newTestServer(t, registry.Config{})
	registerFigSchemas(t, ts.URL)

	// Valid document (billTo present satisfies the stricter target).
	code, body := do(t, "POST", ts.URL+"/cast/v1/v2", poXML(true))
	if code != 200 {
		t.Fatalf("cast valid: %d %s", code, body)
	}
	var verdict struct {
		Valid bool   `json:"valid"`
		Error string `json:"error"`
		Stats struct {
			ElementsVisited int64 `json:"elementsVisited"`
		} `json:"stats"`
	}
	if err := json.Unmarshal([]byte(body), &verdict); err != nil {
		t.Fatalf("bad JSON: %v in %s", err, body)
	}
	if !verdict.Valid || verdict.Stats.ElementsVisited == 0 {
		t.Fatalf("want valid verdict with work stats, got %s", body)
	}

	// Invalid document (missing billTo).
	code, body = do(t, "POST", ts.URL+"/cast/v1/v2", poXML(false))
	if code != 200 {
		t.Fatalf("cast invalid: %d %s", code, body)
	}
	if err := json.Unmarshal([]byte(body), &verdict); err != nil {
		t.Fatal(err)
	}
	if verdict.Valid || !strings.Contains(verdict.Error, "POType2") {
		t.Fatalf("want content-model rejection against POType2, got %s", body)
	}

	// Pair report: purchaseOrder neither subsumed nor disjoint for
	// (v1, v2); the reflexive pair (v1, v1) is statically compatible.
	code, body = do(t, "GET", ts.URL+"/pairs/v1/v2", "")
	if code != 200 {
		t.Fatalf("pairs: %d %s", code, body)
	}
	var pr struct {
		Report struct {
			Roots []struct {
				Label    string `json:"label"`
				Subsumed bool   `json:"subsumed"`
				Disjoint bool   `json:"disjoint"`
			} `json:"roots"`
			AlwaysValid     bool `json:"alwaysValid"`
			SubsumedPairs   int  `json:"subsumedPairs"`
			ContentAutomata int  `json:"contentAutomata"`
			IDAStates       int  `json:"idaStates"`
		} `json:"report"`
		CompileNS int64 `json:"compileNS"`
	}
	if err := json.Unmarshal([]byte(body), &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Report.AlwaysValid || pr.Report.SubsumedPairs == 0 || pr.Report.IDAStates == 0 || pr.CompileNS == 0 {
		t.Fatalf("pair report implausible: %s", body)
	}
	found := false
	for _, r := range pr.Report.Roots {
		if r.Label == "purchaseOrder" {
			found = true
			if r.Subsumed || r.Disjoint {
				t.Fatalf("purchaseOrder verdict wrong: %+v", r)
			}
		}
	}
	if !found {
		t.Fatalf("no purchaseOrder root in report: %s", body)
	}
	code, body = do(t, "GET", ts.URL+"/pairs/v1/v1", "")
	if code != 200 || !strings.Contains(body, `"alwaysValid":true`) {
		t.Fatalf("reflexive pair should be statically compatible: %d %s", code, body)
	}

	// Metrics reflect the traffic.
	code, body = do(t, "GET", ts.URL+"/metrics.json", "")
	if code != 200 {
		t.Fatalf("metrics: %d", code)
	}
	var m struct {
		Requests struct {
			Register, Cast, Pairs int64
		} `json:"requests"`
		Verdicts struct{ Valid, Invalid int64 } `json:"verdicts"`
		Stream   struct {
			ElementsVisited int64 `json:"elementsVisited"`
		} `json:"stream"`
		Cache struct {
			Pairs    int   `json:"pairs"`
			Compiles int64 `json:"compiles"`
			Hits     int64 `json:"hits"`
		} `json:"cache"`
	}
	if err := json.Unmarshal([]byte(body), &m); err != nil {
		t.Fatal(err)
	}
	if m.Requests.Register != 2 || m.Requests.Cast != 2 || m.Requests.Pairs != 2 {
		t.Fatalf("request counters wrong: %s", body)
	}
	if m.Verdicts.Valid != 1 || m.Verdicts.Invalid != 1 {
		t.Fatalf("verdict counters wrong: %s", body)
	}
	if m.Stream.ElementsVisited == 0 || m.Cache.Pairs != 2 || m.Cache.Compiles != 2 || m.Cache.Hits == 0 {
		t.Fatalf("stream/cache counters wrong: %s", body)
	}

	// Healthz.
	if code, body := do(t, "GET", ts.URL+"/healthz", ""); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("healthz: %d %s", code, body)
	}
}

func TestBatchEndpoint(t *testing.T) {
	ts := newTestServer(t, registry.Config{})
	registerFigSchemas(t, ts.URL)
	docs := []string{poXML(true), poXML(false), poXML(true)}
	payload, _ := json.Marshal(docs)
	code, body := do(t, "POST", ts.URL+"/cast/v1/v2/batch?workers=2", string(payload))
	if code != 200 {
		t.Fatalf("batch: %d %s", code, body)
	}
	var resp struct {
		Count, Valid, Invalid int
		Verdicts              []*string `json:"verdicts"`
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Count != 3 || resp.Valid != 2 || resp.Invalid != 1 {
		t.Fatalf("batch verdicts wrong: %s", body)
	}
	if resp.Verdicts[0] != nil || resp.Verdicts[1] == nil || resp.Verdicts[2] != nil {
		t.Fatalf("batch slots wrong: %s", body)
	}
	// Empty batch.
	code, body = do(t, "POST", ts.URL+"/cast/v1/v2/batch", "[]")
	if code != 200 || !strings.Contains(body, `"count":0`) {
		t.Fatalf("empty batch: %d %s", code, body)
	}
	// Malformed batch body.
	if code, _ := do(t, "POST", ts.URL+"/cast/v1/v2/batch", "not json"); code != 400 {
		t.Fatalf("malformed batch should 400, got %d", code)
	}
	// Bad workers parameter.
	if code, _ := do(t, "POST", ts.URL+"/cast/v1/v2/batch?workers=x", "[]"); code != 400 {
		t.Fatalf("bad workers should 400, got %d", code)
	}
}

func TestErrorStatuses(t *testing.T) {
	ts := newTestServer(t, registry.Config{})
	registerFigSchemas(t, ts.URL)
	if code, _ := do(t, "POST", ts.URL+"/cast/v1/nope", poXML(true)); code != 404 {
		t.Fatalf("unknown target should 404, got %d", code)
	}
	if code, _ := do(t, "GET", ts.URL+"/schemas/nope", ""); code != 404 {
		t.Fatalf("unknown schema should 404, got %d", code)
	}
	if code, body := do(t, "PUT", ts.URL+"/schemas/bad", "not a schema"); code != 422 {
		t.Fatalf("broken schema should 422, got %d %s", code, body)
	}
	if code, _ := do(t, "PUT", ts.URL+"/schemas/bad?format=wat", "<x/>"); code != 400 {
		t.Fatalf("bad format should 400, got %d", code)
	}
	// Schema metadata endpoint.
	code, body := do(t, "GET", ts.URL+"/schemas/v1", "")
	if code != 200 || !strings.Contains(body, `"hash"`) {
		t.Fatalf("schema metadata: %d %s", code, body)
	}
}

// TestConcurrentColdPair storms a cold pair over HTTP and requires the
// singleflight to compile exactly once while every request gets a correct
// verdict; /metrics must show the hit counters. Run under -race in CI.
func TestConcurrentColdPair(t *testing.T) {
	ts := newTestServer(t, registry.Config{})
	registerFigSchemas(t, ts.URL)
	const n = 16
	var wg sync.WaitGroup
	errs := make([]error, n)
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			withBill := i%2 == 0
			resp, err := http.Post(ts.URL+"/cast/v1/v2", "application/xml", strings.NewReader(poXML(withBill)))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			b, _ := io.ReadAll(resp.Body)
			var v struct {
				Valid bool `json:"valid"`
			}
			if err := json.Unmarshal(b, &v); err != nil {
				errs[i] = err
				return
			}
			if v.Valid != withBill {
				errs[i] = fmt.Errorf("verdict %v for withBill=%v", v.Valid, withBill)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	_, body := do(t, "GET", ts.URL+"/metrics.json", "")
	var m struct {
		Cache struct {
			Compiles int64 `json:"compiles"`
			Hits     int64 `json:"hits"`
			Misses   int64 `json:"misses"`
		} `json:"cache"`
	}
	if err := json.Unmarshal([]byte(body), &m); err != nil {
		t.Fatal(err)
	}
	if m.Cache.Compiles != 1 {
		t.Fatalf("cold pair compiled %d times under storm (want 1): %s", m.Cache.Compiles, body)
	}
	if m.Cache.Hits != n-1 || m.Cache.Misses != 1 {
		t.Fatalf("want %d hits / 1 miss, got %s", n-1, body)
	}
}

// TestGracefulDrain starts a real http.Server, opens a cast request whose
// body arrives slowly, shuts the server down mid-request, and requires the
// in-flight validation to complete with a correct verdict.
func TestGracefulDrain(t *testing.T) {
	reg := registry.New(registry.Config{})
	if _, err := reg.Register("v1", wgen.Figure2XSD(true, 100), registry.FormatAuto, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Register("v2", wgen.Figure2XSD(false, 100), registry.FormatAuto, ""); err != nil {
		t.Fatal(err)
	}
	srv := New(reg, Options{})
	hs := &http.Server{Handler: srv}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go hs.Serve(ln)
	base := "http://" + ln.Addr().String()

	// Healthy before the drain starts.
	if code, body := do(t, "GET", base+"/healthz", ""); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("healthz before drain: %d %s", code, body)
	}

	pr, pw := io.Pipe()
	type result struct {
		body string
		err  error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := http.Post("http://"+ln.Addr().String()+"/cast/v1/v2", "application/xml", pr)
		if err != nil {
			done <- result{err: err}
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		done <- result{body: string(b)}
	}()

	doc := poXML(true)
	half := len(doc) / 2
	if _, err := io.WriteString(pw, doc[:half]); err != nil {
		t.Fatal(err)
	}
	// Start draining (as castd does on SIGTERM, before calling Shutdown):
	// /healthz must flip to 503 so load balancers stop routing here, while
	// the mid-body cast request keeps running.
	srv.SetDraining(true)
	if code, body := do(t, "GET", base+"/healthz", ""); code != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Fatalf("healthz while draining should 503, got %d %s", code, body)
	}
	// Shutdown with the request mid-body: Shutdown must wait for it.
	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- hs.Shutdown(ctx)
	}()
	time.Sleep(50 * time.Millisecond) // let Shutdown begin draining
	if _, err := io.WriteString(pw, doc[half:]); err != nil {
		t.Fatal(err)
	}
	pw.Close()

	res := <-done
	if res.err != nil {
		t.Fatalf("in-flight request failed during drain: %v", res.err)
	}
	if !strings.Contains(res.body, `"valid":true`) {
		t.Fatalf("in-flight verdict wrong: %s", res.body)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestMetricsPrometheus scrapes /metrics after some traffic and asserts the
// acceptance families are present in well-formed Prometheus text.
func TestMetricsPrometheus(t *testing.T) {
	ts := newTestServer(t, registry.Config{})
	registerFigSchemas(t, ts.URL)
	do(t, "POST", ts.URL+"/cast/v1/v2", poXML(true))
	do(t, "POST", ts.URL+"/cast/v1/v2", poXML(false))

	req, _ := http.NewRequest("GET", ts.URL+"/metrics", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	b, _ := io.ReadAll(resp.Body)
	body := string(b)

	for _, want := range []string{
		"# TYPE cast_subtrees_skipped_total counter",
		"# TYPE cast_symbols_scanned_total counter",
		"# TYPE registry_compile_seconds histogram",
		"# TYPE http_request_duration_seconds histogram",
		"registry_compile_seconds_count 1",
		`cast_verdicts_total{verdict="valid"} 1`,
		`cast_verdicts_total{verdict="invalid"} 1`,
		"registry_compiles_total 1",
		"http_in_flight_requests 1", // this scrape itself is in flight
		// The artifact-store and peer families exist (at zero) even on a
		// single node with no -artifact-dir, so dashboards never gap.
		"artifact_store_hits_total 0",
		"artifact_store_misses_total 0",
		"artifact_store_writes_total 0",
		"artifact_store_corrupt_total 0",
		"castd_peer_forwards_total 0",
		"castd_peer_fetch_total 0",
		"castd_peer_errors_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("missing %q in exposition:\n%s", want, body)
		}
	}
	// The valid cast skims shipTo/billTo/items; the invalid one skims
	// shipTo before the root content model rejects on the missing billTo.
	if !strings.Contains(body, "cast_subtrees_skipped_total 4") {
		t.Fatalf("want 4 skipped subtrees across the two casts:\n%s", body)
	}
	// Sample lines must be `name{labels} value` throughout.
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !promSampleRe.MatchString(line) {
			t.Fatalf("malformed sample line: %q", line)
		}
	}
}

var promSampleRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (-?[0-9]+(\.[0-9eE+-]+)?|\+Inf|NaN)$`)

// TestExplainEndpoint asks for a decision trace alongside the verdict and
// checks it agrees with the stats.
func TestExplainEndpoint(t *testing.T) {
	ts := newTestServer(t, registry.Config{})
	registerFigSchemas(t, ts.URL)
	code, body := do(t, "POST", ts.URL+"/cast/v1/v2?explain=1", poXML(true))
	if code != 200 {
		t.Fatalf("explain cast: %d %s", code, body)
	}
	var resp struct {
		Valid bool `json:"valid"`
		Stats struct {
			SubsumedSkips int64 `json:"subsumedSkips"`
		} `json:"stats"`
		Trace []struct {
			Action string `json:"action"`
			Path   string `json:"path"`
			Dewey  string `json:"dewey"`
		} `json:"trace"`
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("bad JSON: %v in %s", err, body)
	}
	if !resp.Valid || len(resp.Trace) == 0 {
		t.Fatalf("want valid verdict with trace: %s", body)
	}
	skips := 0
	for _, ev := range resp.Trace {
		if ev.Action == "skip" {
			skips++
		}
	}
	if int64(skips) != resp.Stats.SubsumedSkips || skips != 3 {
		t.Fatalf("trace skips (%d) must equal stats subsumedSkips (%d): %s", skips, resp.Stats.SubsumedSkips, body)
	}
	if resp.Trace[0].Path != "/purchaseOrder" || resp.Trace[0].Dewey != "ε" {
		t.Fatalf("root event wrong: %s", body)
	}
	// Without explain=1 no trace is attached.
	_, body = do(t, "POST", ts.URL+"/cast/v1/v2", poXML(true))
	if strings.Contains(body, `"trace"`) {
		t.Fatalf("trace must be opt-in: %s", body)
	}
}

// TestAccessLog checks the middleware emits one structured record per
// request with a request id, route name and status.
func TestAccessLog(t *testing.T) {
	var buf strings.Builder
	var mu sync.Mutex
	logger := slog.New(slog.NewTextHandler(lockedWriter{&mu, &buf}, nil))
	reg := registry.New(registry.Config{})
	ts := httptest.NewServer(New(reg, Options{Logger: logger, AccessLog: true}))
	defer ts.Close()
	do(t, "GET", ts.URL+"/healthz", "")
	do(t, "GET", ts.URL+"/schemas/nope", "")
	mu.Lock()
	out := buf.String()
	mu.Unlock()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 access-log records, got %q", out)
	}
	if !strings.Contains(lines[0], "req=1") || !strings.Contains(lines[0], "route=healthz") || !strings.Contains(lines[0], "status=200") {
		t.Fatalf("first record: %q", lines[0])
	}
	if !strings.Contains(lines[1], "req=2") || !strings.Contains(lines[1], "status=404") {
		t.Fatalf("second record: %q", lines[1])
	}
}

type lockedWriter struct {
	mu *sync.Mutex
	w  io.Writer
}

func (lw lockedWriter) Write(p []byte) (int, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.w.Write(p)
}
