package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/artifact"
	"repro/internal/faultinject"
	"repro/internal/leakcheck"
	"repro/internal/registry"
	"repro/internal/wgen"
)

// sweepForPeerPair registers generated source schemas (s0, s1, ...) until
// the (src, v2) pair key rendezvous-hashes to wantOwner, returning the
// source id. registerFigSchemas must have run first (for v2).
func sweepForPeerPair(t *testing.T, base string, reg *registry.Registry, c *cluster, wantOwner string) string {
	t.Helper()
	sv2, ok := reg.Schema("v2")
	if !ok {
		t.Fatal("v2 not registered")
	}
	for i := 0; i < 32; i++ {
		id := fmt.Sprintf("s%d", i)
		if code, body := do(t, "PUT", base+"/schemas/"+id, wgen.Figure2XSD(true, 100+i)); code != 200 {
			t.Fatalf("register %s: %d %s", id, code, body)
		}
		se, _ := reg.Schema(id)
		if c.owner(artifact.Key(se.Hash, sv2.Hash)) == normalizePeer(wantOwner) {
			return id
		}
	}
	t.Fatal("no pair owned by the target peer in 32 tries (astronomically unlikely)")
	return ""
}

func castVerdict(t *testing.T, url string) (int, bool, string) {
	t.Helper()
	code, body := do(t, "POST", url, poXML(true))
	var v struct {
		Valid bool `json:"valid"`
	}
	if code == 200 {
		if err := json.Unmarshal([]byte(body), &v); err != nil {
			t.Fatalf("bad verdict JSON: %v in %s", err, body)
		}
	}
	return code, v.Valid, body
}

// TestDegradedModeFail: with the owner down and -degraded-mode fail, the
// non-owner answers 503 + Retry-After instead of compiling, and the
// degraded counter attributes the request.
func TestDegradedModeFail(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	lh := &lateHandler{}
	ts := httptest.NewServer(lh)
	t.Cleanup(ts.Close)
	reg := registry.New(registry.Config{})
	srv := New(reg, Options{
		SelfURL: ts.URL, Peers: []string{ts.URL, deadURL},
		PeerTimeout: 200 * time.Millisecond, PeerRetries: -1,
		DegradedMode: DegradedModeFail,
	})
	t.Cleanup(srv.Close)
	lh.set(srv)
	registerFigSchemas(t, ts.URL)
	c := newCluster(ts.URL, []string{ts.URL, deadURL})
	pairSrc := sweepForPeerPair(t, ts.URL, reg, c, deadURL)

	resp, err := http.Post(ts.URL+"/cast/"+pairSrc+"/v2", "application/xml", strings.NewReader(poXML(true)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded-mode fail cast: %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("503 without Retry-After")
	}
	if got := reg.Stats().Compiles; got != 0 {
		t.Fatalf("fail mode compiled anyway: %d compiles", got)
	}
	_, metrics := do(t, "GET", ts.URL+"/metrics", "")
	if !strings.Contains(metrics, `castd_degraded_total{mode="fail"} 1`) {
		t.Fatalf("metrics missing degraded fail count:\n%s", metrics)
	}
}

// TestDegradedModeStale: a non-owner with -degraded-mode stale serves
// pairs whose artifacts it already holds on disk — zero compiles — and
// answers 503 for pairs it has never seen, instead of compiling either.
func TestDegradedModeStale(t *testing.T) {
	dir := t.TempDir()
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	lh := &lateHandler{}
	ts := httptest.NewServer(lh)
	t.Cleanup(ts.Close)

	// Seed the artifact store: a standalone daemon compiles one pair and
	// writes it through, then goes away (yesterday's healthy fleet).
	seedStore, err := artifact.OpenStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	seedReg := registry.New(registry.Config{Store: seedStore})
	seedLh := &lateHandler{}
	seedTs := httptest.NewServer(seedLh)
	seedSrv := New(seedReg, Options{})
	seedLh.set(seedSrv)
	registerFigSchemas(t, seedTs.URL)
	c := newCluster(ts.URL, []string{ts.URL, deadURL})
	pairSrc := sweepForPeerPair(t, seedTs.URL, seedReg, c, deadURL)
	if code, _, body := 0, false, ""; true {
		code, _, body = castVerdict(t, seedTs.URL+"/cast/"+pairSrc+"/v2")
		if code != 200 {
			t.Fatalf("seed cast: %d %s", code, body)
		}
	}
	seedSrv.Close()
	seedTs.Close()

	// The degraded node: fresh registry, same artifact directory, owner
	// unreachable.
	store, err := artifact.OpenStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	reg := registry.New(registry.Config{Store: store})
	srv := New(reg, Options{
		SelfURL: ts.URL, Peers: []string{ts.URL, deadURL},
		PeerTimeout: 200 * time.Millisecond, PeerRetries: -1,
		DegradedMode: DegradedModeStale,
	})
	t.Cleanup(srv.Close)
	lh.set(srv)
	registerFigSchemas(t, ts.URL)
	stale := sweepForPeerPair(t, ts.URL, reg, c, deadURL)
	if stale != pairSrc {
		t.Fatalf("sweep diverged between runs: %s vs %s", stale, pairSrc)
	}

	// The seeded pair serves from disk: correct verdict, zero compiles.
	code, valid, body := castVerdict(t, ts.URL+"/cast/"+pairSrc+"/v2")
	if code != 200 || !valid {
		t.Fatalf("stale cast: %d valid=%v %s", code, valid, body)
	}
	if got := reg.Stats().Compiles; got != 0 {
		t.Fatalf("stale mode compiled: %d compiles", got)
	}
	// A dead-peer pair with no stored artifact fails fast instead of
	// compiling.
	fresh := ""
	sv2, _ := reg.Schema("v2")
	for i := 32; i < 64 && fresh == ""; i++ {
		id := fmt.Sprintf("s%d", i)
		if code, body := do(t, "PUT", ts.URL+"/schemas/"+id, wgen.Figure2XSD(true, 100+i)); code != 200 {
			t.Fatalf("register %s: %d %s", id, code, body)
		}
		se, _ := reg.Schema(id)
		if c.owner(artifact.Key(se.Hash, sv2.Hash)) == normalizePeer(deadURL) {
			fresh = id
		}
	}
	if fresh == "" {
		t.Fatal("no fresh pair owned by the dead peer in 32 tries")
	}
	if code, _, _ := castVerdict(t, ts.URL+"/cast/"+fresh+"/v2"); code != http.StatusServiceUnavailable {
		t.Fatalf("stale mode with no artifact: %d, want 503", code)
	}
	_, metrics := do(t, "GET", ts.URL+"/metrics", "")
	for _, want := range []string{
		`castd_degraded_total{mode="stale"} 1`,
		`castd_degraded_total{mode="fail"} 1`,
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}
}

// TestProxyFailureFailsOverWithBufferedBody: the owner accepts the proxied
// cast and then kills the connection mid-flight. Because the non-owner
// buffered the request body first, it rewinds and serves through the
// degraded path (local compile) instead of bailing with 502 on a
// half-consumed body.
func TestProxyFailureFailsOverWithBufferedBody(t *testing.T) {
	lh := &lateHandler{}
	ts := httptest.NewServer(lh)
	t.Cleanup(ts.Close)

	// A fake owner: alive (so the breaker stays closed and fetches answer
	// 404 cleanly), but every proxied cast dies mid-response.
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case strings.HasPrefix(r.URL.Path, "/artifacts/"):
			http.NotFound(w, r)
		case r.URL.Path == "/healthz":
			w.WriteHeader(http.StatusOK)
		default:
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Error("test server not hijackable")
				return
			}
			conn, _, err := hj.Hijack()
			if err == nil {
				conn.Close() // the proxy sees a torn connection
			}
		}
	}))
	t.Cleanup(fake.Close)

	reg := registry.New(registry.Config{})
	srv := New(reg, Options{
		SelfURL: ts.URL, Peers: []string{ts.URL, fake.URL},
		PeerTimeout: time.Second, PeerRetries: -1,
		MaxDocBytes: 1 << 20,
	})
	t.Cleanup(srv.Close)
	lh.set(srv)
	registerFigSchemas(t, ts.URL)
	c := newCluster(ts.URL, []string{ts.URL, fake.URL})
	pairSrc := sweepForPeerPair(t, ts.URL, reg, c, fake.URL)

	code, valid, body := castVerdict(t, ts.URL+"/cast/"+pairSrc+"/v2")
	if code != 200 || !valid {
		t.Fatalf("cast after proxy failure: %d valid=%v %s — want local failover", code, valid, body)
	}
	if got := reg.Stats().Compiles; got != 1 {
		t.Fatalf("failover compiles = %d, want 1", got)
	}
	_, metrics := do(t, "GET", ts.URL+"/metrics", "")
	for _, want := range []string{
		`castd_degraded_total{mode="local-compile"} 1`,
		"castd_peer_forwards_total 1", // the proxy was attempted
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}
}

// TestDeadlineHeaderPropagation: a tighter X-Castd-Deadline from the
// forwarding hop overrides the local -cast-timeout, so a chain of hops
// shares one budget.
func TestDeadlineHeaderPropagation(t *testing.T) {
	defer faultinject.Disable()
	ts := newGovernedServer(t, Options{CastTimeout: 30 * time.Second})
	registerFigSchemas(t, ts.URL)

	// The walker polls ctx every 256 tokens, so the document must be big
	// enough to reach a poll, and each body read is stalled past the
	// propagated deadline so the poll is guaranteed to see it expired.
	// Only the header deadline can fail this request — the local timeout
	// is 30s.
	doc := poXMLItems(t, 400)
	faultinject.Enable(faultinject.Config{ReadDelay: 5 * time.Millisecond})
	req, err := http.NewRequest("POST", ts.URL+"/cast/v1/v2", strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(deadlineHeader, "1") // 1ms remaining upstream
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestTimeout {
		t.Fatalf("propagated-deadline cast: %d, want 408", resp.StatusCode)
	}

	// Without the header the same stalled read finishes fine.
	code, _, _ := castVerdict(t, ts.URL+"/cast/v1/v2")
	if code != 200 {
		t.Fatalf("cast without header: %d, want 200", code)
	}
}

// TestClusterPartition is the two-node chaos story end to end: partition
// the cluster, watch the non-owner keep answering with bounded latency
// through the open breaker and the degraded-mode path, heal, and watch the
// prober close the breaker and peer traffic resume. Zero goroutine leaks.
func TestClusterPartition(t *testing.T) {
	base := leakcheck.Snapshot()
	defer faultinject.Disable()

	lhA, lhB := &lateHandler{}, &lateHandler{}
	tsA, tsB := httptest.NewServer(lhA), httptest.NewServer(lhB)
	t.Cleanup(tsA.Close)
	t.Cleanup(tsB.Close)
	peers := []string{tsA.URL, tsB.URL}
	opts := func(self string) Options {
		return Options{
			SelfURL: self, Peers: peers,
			PeerProbeInterval:   50 * time.Millisecond,
			PeerTimeout:         100 * time.Millisecond,
			PeerRetries:         1,
			PeerBreakerFailures: 2,
			PeerBreakerOpenFor:  200 * time.Millisecond,
			CastTimeout:         5 * time.Second,
		}
	}
	regA, regB := registry.New(registry.Config{}), registry.New(registry.Config{})
	srvA, srvB := New(regA, opts(tsA.URL)), New(regB, opts(tsB.URL))
	lhA.set(srvA)
	lhB.set(srvB)
	registerFigSchemas(t, tsA.URL)
	registerFigSchemas(t, tsB.URL)

	// A pair owned by B, cast via A.
	c := newCluster(tsA.URL, peers)
	pairSrc := sweepForPeerPair(t, tsA.URL, regA, c, tsB.URL)
	if code, body := do(t, "PUT", tsB.URL+"/schemas/"+pairSrc, wgen.Figure2XSD(true, 100+mustAtoi(t, pairSrc[1:]))); code != 200 {
		t.Fatalf("register %s on B: %d %s", pairSrc, code, body)
	}

	// Partition. Every cast through A must still answer correctly, fast:
	// the first pays the fetch timeout + one retry, the rest are refused
	// instantly by the open breaker and served through local compiles.
	faultinject.Enable(faultinject.Config{PeerBlackhole: true})
	for i := 0; i < 3; i++ {
		start := time.Now()
		code, valid, body := castVerdict(t, tsA.URL+"/cast/"+pairSrc+"/v2")
		elapsed := time.Since(start)
		if code != 200 || !valid {
			t.Fatalf("partitioned cast %d: %d valid=%v %s", i, code, valid, body)
		}
		if elapsed > 2*time.Second {
			t.Fatalf("partitioned cast %d took %v — the 10s stall is back", i, elapsed)
		}
	}
	_, metrics := do(t, "GET", tsA.URL+"/metrics", "")
	for _, want := range []string{
		`castd_breaker_state{peer="` + tsB.URL + `"} 2`,
		`castd_breaker_transitions_total{peer="` + tsB.URL + `",to="open"} 1`,
		`castd_degraded_total{mode="local-compile"}`,
		"castd_peer_retries_total 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("partitioned metrics missing %q:\n%s", want, metrics)
		}
	}
	if regA.Stats().Compiles == 0 {
		t.Fatal("non-owner did not compile locally during the partition")
	}

	// Heal: the prober's next live probe closes the breaker without any
	// cast volunteering as the guinea pig.
	faultinject.Disable()
	deadline := time.Now().Add(5 * time.Second)
	closed := false
	for !closed && time.Now().Before(deadline) {
		_, m := do(t, "GET", tsA.URL+"/metrics", "")
		closed = strings.Contains(m, `castd_breaker_state{peer="`+tsB.URL+`"} 0`)
		if !closed {
			time.Sleep(20 * time.Millisecond)
		}
	}
	if !closed {
		t.Fatal("breaker did not close after the partition healed")
	}

	// Peer traffic resumes: a fresh pair owned by B, cast via A, proxies
	// to B (first contact compiles there).
	fresh := ""
	sv2, _ := regA.Schema("v2")
	for i := 32; i < 64 && fresh == ""; i++ {
		id := fmt.Sprintf("s%d", i)
		xsd := wgen.Figure2XSD(true, 100+i)
		if code, body := do(t, "PUT", tsA.URL+"/schemas/"+id, xsd); code != 200 {
			t.Fatalf("register %s: %d %s", id, code, body)
		}
		if code, body := do(t, "PUT", tsB.URL+"/schemas/"+id, xsd); code != 200 {
			t.Fatalf("register %s on B: %d %s", id, code, body)
		}
		se, _ := regA.Schema(id)
		if c.owner(artifact.Key(se.Hash, sv2.Hash)) == normalizePeer(tsB.URL) {
			fresh = id
		}
	}
	if fresh == "" {
		t.Fatal("no fresh pair owned by B in 32 tries")
	}
	if code, valid, body := castVerdict(t, tsA.URL+"/cast/"+fresh+"/v2"); code != 200 || !valid {
		t.Fatalf("post-heal cast: %d valid=%v %s", code, valid, body)
	}
	_, metrics = do(t, "GET", tsA.URL+"/metrics", "")
	for _, want := range []string{
		"castd_peer_forwards_total 1",
		`castd_breaker_transitions_total{peer="` + tsB.URL + `",to="closed"} 1`,
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("post-heal metrics missing %q:\n%s", want, metrics)
		}
	}

	srvA.Close()
	srvB.Close()
	tsA.Close()
	tsB.Close()
	http.DefaultClient.CloseIdleConnections()
	leakcheck.Check(t, base)
}

func mustAtoi(t *testing.T, s string) int {
	t.Helper()
	n := 0
	for _, r := range s {
		if r < '0' || r > '9' {
			t.Fatalf("not a number: %q", s)
		}
		n = n*10 + int(r-'0')
	}
	return n
}
