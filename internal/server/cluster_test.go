package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/artifact"
	"repro/internal/registry"
	"repro/internal/wgen"
)

// lateHandler lets an httptest server start (and expose its URL) before the
// real handler — which needs that URL as its cluster identity — exists.
type lateHandler struct {
	mu sync.Mutex
	h  http.Handler
}

func (l *lateHandler) set(h http.Handler) {
	l.mu.Lock()
	l.h = h
	l.mu.Unlock()
}

func (l *lateHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	l.mu.Lock()
	h := l.h
	l.mu.Unlock()
	if h == nil {
		http.Error(w, "not ready", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

// twoNodes starts a two-member cluster and returns both base URLs with
// their registries.
func twoNodes(t *testing.T) (urlA, urlB string, regA, regB *registry.Registry) {
	t.Helper()
	lhA, lhB := &lateHandler{}, &lateHandler{}
	tsA, tsB := httptest.NewServer(lhA), httptest.NewServer(lhB)
	t.Cleanup(tsA.Close)
	t.Cleanup(tsB.Close)
	peers := []string{tsA.URL, tsB.URL}
	regA, regB = registry.New(registry.Config{}), registry.New(registry.Config{})
	srvA, srvB := New(regA, Options{SelfURL: tsA.URL, Peers: peers}),
		New(regB, Options{SelfURL: tsB.URL, Peers: peers})
	t.Cleanup(srvA.Close) // stop the peer probers, not just the listeners
	t.Cleanup(srvB.Close)
	lhA.set(srvA)
	lhB.set(srvB)
	return tsA.URL, tsB.URL, regA, regB
}

func TestRendezvousOwner(t *testing.T) {
	peers := []string{"http://a:1", "http://b:1", "http://c:1"}
	a := newCluster(peers[0], peers)
	b := newCluster(peers[1], []string{peers[2], peers[1], peers[0]}) // shuffled
	owned := map[string]int{}
	for i := 0; i < 100; i++ {
		key := artifact.Key(fmt.Sprintf("s%d", i), "d")
		if a.owner(key) != b.owner(key) {
			t.Fatalf("peers disagree on owner of %s", key)
		}
		owned[a.owner(key)]++
	}
	for _, p := range peers {
		if owned[p] == 0 {
			t.Fatalf("peer %s owns no keys out of 100: %v", p, owned)
		}
	}
	if c := newCluster("", peers); c != nil {
		t.Fatal("cluster without a self URL should be disabled")
	}
	if c := newCluster("http://a:1", []string{"http://a:1/"}); c != nil {
		t.Fatal("cluster of one should be disabled")
	}
}

// TestClusterTwoNodes is the clustering contract end to end: however many
// nodes serve a pair, the cluster compiles it exactly once. The first cast
// through the non-owner is proxied (the owner compiles); the second fetches
// the owner's artifact and installs it, after which the non-owner serves
// locally.
func TestClusterTwoNodes(t *testing.T) {
	urlA, urlB, regA, regB := twoNodes(t)
	registerFigSchemas(t, urlA)
	registerFigSchemas(t, urlB)

	// Work out which node owns the v1→v2 pair key.
	sv1, _ := regA.Schema("v1")
	sv2, _ := regA.Schema("v2")
	key := artifact.Key(sv1.Hash, sv2.Hash)
	c := newCluster(urlA, []string{urlA, urlB})
	ownerURL := c.owner(key)
	nonOwnerURL := urlA
	ownerReg, nonOwnerReg := regB, regA
	if ownerURL == urlA {
		nonOwnerURL = urlB
		ownerReg, nonOwnerReg = regA, regB
	}

	castVia := func(url string, withBill bool) bool {
		t.Helper()
		code, body := do(t, "POST", url+"/cast/v1/v2", poXML(withBill))
		if code != 200 {
			t.Fatalf("cast via %s: %d %s", url, code, body)
		}
		var v struct {
			Valid bool `json:"valid"`
		}
		if err := json.Unmarshal([]byte(body), &v); err != nil {
			t.Fatalf("bad verdict JSON: %v in %s", err, body)
		}
		return v.Valid
	}

	// First cast lands on the non-owner: proxied to the owner, which
	// compiles and produces the verdict.
	if !castVia(nonOwnerURL, true) {
		t.Fatal("valid doc rejected via non-owner")
	}
	if got := ownerReg.Stats().Compiles; got != 1 {
		t.Fatalf("owner compiles = %d, want 1", got)
	}
	if got := nonOwnerReg.Stats().Compiles; got != 0 {
		t.Fatalf("non-owner compiles = %d, want 0 after proxy", got)
	}
	_, metricsBody := do(t, "GET", nonOwnerURL+"/metrics", "")
	if !strings.Contains(metricsBody, "castd_peer_forwards_total 1") {
		t.Fatalf("non-owner metrics missing forward count:\n%s", metricsBody)
	}

	// Second cast via the non-owner: the owner now has the artifact, so the
	// non-owner fetches and installs it, then serves locally — including an
	// invalid verdict, proving the installed pair really validates.
	if !castVia(nonOwnerURL, true) {
		t.Fatal("valid doc rejected on fetch round")
	}
	if castVia(nonOwnerURL, false) {
		t.Fatal("invalid doc accepted via installed artifact")
	}
	if got := nonOwnerReg.Stats().Compiles; got != 0 {
		t.Fatalf("non-owner compiles = %d, want 0 after fetch+install", got)
	}
	if got := ownerReg.Stats().Compiles; got != 1 {
		t.Fatalf("owner compiles = %d, want it to stay 1", got)
	}
	_, metricsBody = do(t, "GET", nonOwnerURL+"/metrics", "")
	for _, want := range []string{
		"castd_peer_fetch_total 1",
		"castd_peer_forwards_total 1",
		"castd_peer_errors_total 0",
	} {
		if !strings.Contains(metricsBody, want) {
			t.Fatalf("non-owner metrics missing %q:\n%s", want, metricsBody)
		}
	}

	// Casting on the owner never touches the peer.
	if !castVia(ownerURL, true) {
		t.Fatal("valid doc rejected via owner")
	}
	_, ownerMetrics := do(t, "GET", ownerURL+"/metrics", "")
	for _, want := range []string{
		"castd_peer_forwards_total 0",
		"castd_peer_fetch_total 0",
	} {
		if !strings.Contains(ownerMetrics, want) {
			t.Fatalf("owner metrics missing %q:\n%s", want, ownerMetrics)
		}
	}
}

// TestClusterForwardedLoopGuard: a request already forwarded once is served
// locally even by a node that does not consider itself the owner, so peer
// lists that disagree cannot proxy in a loop.
func TestClusterForwardedLoopGuard(t *testing.T) {
	urlA, urlB, regA, regB := twoNodes(t)
	registerFigSchemas(t, urlA)
	registerFigSchemas(t, urlB)

	sv1, _ := regA.Schema("v1")
	sv2, _ := regA.Schema("v2")
	nonOwnerURL, nonOwnerReg := urlA, regA
	if c := newCluster(urlA, []string{urlA, urlB}); c.owner(artifact.Key(sv1.Hash, sv2.Hash)) == urlA {
		nonOwnerURL, nonOwnerReg = urlB, regB
	}

	req, err := http.NewRequest("POST", nonOwnerURL+"/cast/v1/v2", strings.NewReader(poXML(true)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(forwardedHeader, "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("forwarded cast: %d", resp.StatusCode)
	}
	if got := nonOwnerReg.Stats().Compiles; got != 1 {
		t.Fatalf("forwarded request must compile locally, compiles = %d", got)
	}
}

// TestClusterOwnerUnreachable: when the owning peer is down, the non-owner
// falls back to a local compile — one extra compile, not an error.
func TestClusterOwnerUnreachable(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close() // connection refused from here on

	lh := &lateHandler{}
	ts := httptest.NewServer(lh)
	t.Cleanup(ts.Close)
	reg := registry.New(registry.Config{})
	srv := New(reg, Options{SelfURL: ts.URL, Peers: []string{ts.URL, deadURL}})
	t.Cleanup(srv.Close)
	lh.set(srv)
	registerFigSchemas(t, ts.URL)

	// Find a pair the dead peer owns; sweep distinct source schemas until
	// the rendezvous hash lands on it.
	c := newCluster(ts.URL, []string{ts.URL, deadURL})
	pairSrc := ""
	for i := 0; i < 32 && pairSrc == ""; i++ {
		id := fmt.Sprintf("s%d", i)
		if code, body := do(t, "PUT", ts.URL+"/schemas/"+id, wgen.Figure2XSD(true, 100+i)); code != 200 {
			t.Fatalf("register %s: %d %s", id, code, body)
		}
		se, _ := reg.Schema(id)
		sv2, _ := reg.Schema("v2")
		if c.owner(artifact.Key(se.Hash, sv2.Hash)) == normalizePeer(deadURL) {
			pairSrc = id
		}
	}
	if pairSrc == "" {
		t.Fatal("no pair owned by the dead peer in 32 tries (astronomically unlikely)")
	}

	code, body := do(t, "POST", ts.URL+"/cast/"+pairSrc+"/v2", poXML(true))
	if code != 200 {
		t.Fatalf("cast with dead owner: %d %s", code, body)
	}
	if got := reg.Stats().Compiles; got != 1 {
		t.Fatalf("local fallback compiles = %d, want 1", got)
	}
	_, metricsBody := do(t, "GET", ts.URL+"/metrics", "")
	if !strings.Contains(metricsBody, "castd_peer_errors_total 1") {
		t.Fatalf("metrics missing peer error count:\n%s", metricsBody)
	}
}

// TestArtifactRoute: the blob served over /artifacts/{key} round-trips
// through the codec, and unknown or hostile keys 404.
func TestArtifactRoute(t *testing.T) {
	ts := newTestServer(t, registry.Config{})
	registerFigSchemas(t, ts.URL)
	if code, body := do(t, "POST", ts.URL+"/cast/v1/v2", poXML(true)); code != 200 {
		t.Fatalf("cast: %d %s", code, body)
	}

	// Recompute the pair key from the registered hashes.
	var meta struct {
		Hash string `json:"hash"`
	}
	_, b1 := do(t, "GET", ts.URL+"/schemas/v1", "")
	if err := json.Unmarshal([]byte(b1), &meta); err != nil {
		t.Fatal(err)
	}
	h1 := meta.Hash
	_, b2 := do(t, "GET", ts.URL+"/schemas/v2", "")
	if err := json.Unmarshal([]byte(b2), &meta); err != nil {
		t.Fatal(err)
	}
	key := artifact.Key(h1, meta.Hash)

	resp, err := http.Get(ts.URL + "/artifacts/" + key)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("artifact fetch: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("content type %q", ct)
	}
	blob := make([]byte, 0, 1<<16)
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		blob = append(blob, buf[:n]...)
		if err != nil {
			break
		}
	}
	info, err := artifact.Inspect(blob)
	if err != nil {
		t.Fatalf("served blob does not inspect: %v", err)
	}
	if info.Key != key {
		t.Fatalf("served blob key %s, want %s", info.Key, key)
	}
	if code, _ := do(t, "GET", ts.URL+"/artifacts/"+artifact.Key("no", "pe"), ""); code != 404 {
		t.Fatalf("unknown key: %d, want 404", code)
	}
	if code, _ := do(t, "GET", ts.URL+"/artifacts/not-a-key", ""); code != 404 {
		t.Fatalf("hostile key: %d, want 404", code)
	}
}
