// Diagnostics endpoints: the continuous-profiling ring and the hot-pair
// attribution table. Both are observability routes — untraced (reading
// diagnostics must not fill the rings being read) and ungoverned (a
// saturated node is exactly the one an operator needs to profile).
package server

import (
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/hotpair"
	"repro/internal/profiling"
)

// profilesBody is the GET /debug/profiles response.
type profilesBody struct {
	// Enabled is false when the daemon runs without a profiler; the list is
	// then necessarily empty.
	Enabled  bool             `json:"enabled"`
	Stats    profiling.Stats  `json:"stats"`
	Profiles []profiling.Meta `json:"profiles"`
}

// handleProfiles lists the retained profiles, newest first.
func (s *Server) handleProfiles(w http.ResponseWriter, _ *http.Request) {
	body := profilesBody{
		Enabled:  s.profiler != nil,
		Stats:    s.profiler.Stats(),
		Profiles: s.profiler.Profiles(),
	}
	if body.Profiles == nil {
		body.Profiles = []profiling.Meta{}
	}
	writeJSON(w, http.StatusOK, body)
}

// handleProfile downloads one retained profile: a gzipped pprof proto,
// exactly as runtime/pprof wrote it, ready for `go tool pprof`.
func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "profile id must be an integer: %v", err)
		return
	}
	meta, data, ok := s.profiler.Profile(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no retained profile %d (the ring may have evicted it)", id)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition",
		fmt.Sprintf("attachment; filename=%q", fmt.Sprintf("castd-%s-%s-%d.pb.gz", meta.Kind, meta.Trigger, meta.ID)))
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.Write(data)
}

// handleHotpairs serves the ranked per-pair attribution table.
func (s *Server) handleHotpairs(w http.ResponseWriter, _ *http.Request) {
	snap := s.hotPairs.Snapshot()
	if snap.Tracked == nil {
		snap.Tracked = []hotpair.Entry{}
	}
	writeJSON(w, http.StatusOK, snap)
}
