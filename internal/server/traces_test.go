package server

// End-to-end tests of the trace boundary: traceparent propagation through
// the middleware, the span tree on /debug/traces, log/trace correlation,
// the HTML views, and the disabled-tracer hot path.

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/registry"
	"repro/internal/telemetry"
)

const (
	knownTraceparent = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	knownTraceID     = "4bf92f3577b34da6a3ce929d0e0e4736"
)

// newTracedServer builds a server with a retain-everything tracer and a
// JSON access log, returning the test server and the log buffer.
func newTracedServer(t *testing.T) (*httptest.Server, *strings.Builder, *sync.Mutex) {
	t.Helper()
	var buf strings.Builder
	var mu sync.Mutex
	logger := slog.New(telemetry.NewCorrelateHandler(
		slog.NewJSONHandler(lockedWriter{&mu, &buf}, nil)))
	tracer := telemetry.NewTracer(telemetry.TracerOptions{
		SampleRate:    1,
		SlowThreshold: time.Hour, // retention must come from the head sampler
		Capacity:      64,
	})
	srv := New(registry.New(registry.Config{}), Options{
		Logger:    logger,
		AccessLog: true,
		Tracer:    tracer,
	})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, &buf, &mu
}

// traceDetail fetches and decodes GET /debug/traces/{id}.
func traceDetail(t *testing.T, base, id string) telemetry.TraceData {
	t.Helper()
	code, body := do(t, "GET", base+"/debug/traces/"+id, "")
	if code != 200 {
		t.Fatalf("trace detail: %d %s", code, body)
	}
	var td telemetry.TraceData
	if err := json.Unmarshal([]byte(body), &td); err != nil {
		t.Fatalf("bad trace JSON: %v in %s", err, body)
	}
	return td
}

// TestTraceEndToEnd is the acceptance flow: a cast request arriving with a
// known traceparent shows up on /debug/traces under that trace id, with
// handler, registry and cast spans all carrying non-zero durations, and
// the access-log record carries the same trace id.
func TestTraceEndToEnd(t *testing.T) {
	ts, buf, mu := newTracedServer(t)
	registerFigSchemas(t, ts.URL)

	req, err := http.NewRequest("POST", ts.URL+"/cast/v1/v2", strings.NewReader(poXML(true)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("traceparent", knownTraceparent)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("cast: %d", resp.StatusCode)
	}
	// The response injects our span context: same trace, fresh span id.
	injected := resp.Header.Get("traceparent")
	if !strings.HasPrefix(injected, "00-"+knownTraceID+"-") {
		t.Fatalf("injected traceparent %q does not join the inbound trace", injected)
	}
	if strings.Contains(injected, "00f067aa0ba902b7") {
		t.Fatalf("injected traceparent %q reused the remote span id", injected)
	}

	// The trace id shows up in the listing.
	code, body := do(t, "GET", ts.URL+"/debug/traces", "")
	if code != 200 || !strings.Contains(body, knownTraceID) {
		t.Fatalf("listing (%d) missing trace id: %s", code, body)
	}
	var listing struct {
		Enabled bool `json:"enabled"`
		Stats   struct {
			Retained uint64 `json:"retained"`
		} `json:"stats"`
	}
	if err := json.Unmarshal([]byte(body), &listing); err != nil {
		t.Fatal(err)
	}
	if !listing.Enabled || listing.Stats.Retained == 0 {
		t.Fatalf("listing header wrong: %s", body)
	}

	// The span tree: root http span parented to the remote span, registry
	// lookup and cast spans beneath it, all with non-zero durations.
	td := traceDetail(t, ts.URL, knownTraceID)
	byName := map[string]telemetry.SpanData{}
	for _, sd := range td.Spans {
		byName[sd.Name] = sd
	}
	root, ok := byName["http cast"]
	if !ok {
		t.Fatalf("no http cast span in %v", names(td))
	}
	if root.ParentID != "00f067aa0ba902b7" {
		t.Errorf("root parent = %q, want the remote span id", root.ParentID)
	}
	for _, name := range []string{"http cast", "registry.lookup", "cast.validate"} {
		sd, ok := byName[name]
		if !ok {
			t.Fatalf("span %q missing from trace: %v", name, names(td))
		}
		if sd.TraceID != knownTraceID {
			t.Errorf("%s trace id = %s", name, sd.TraceID)
		}
		if sd.DurationNS <= 0 {
			t.Errorf("%s duration = %d, want > 0", name, sd.DurationNS)
		}
		if name != "http cast" && sd.ParentID != root.SpanID {
			t.Errorf("%s parent = %q, want root %q", name, sd.ParentID, root.SpanID)
		}
	}
	// First lookup pays the compile: outcome=miss with a compile cost.
	if !hasAttr(byName["registry.lookup"], "outcome", "miss") {
		t.Errorf("registry.lookup attrs = %v, want outcome=miss", byName["registry.lookup"].Attrs)
	}
	if !hasAttr(byName["cast.validate"], "verdict", "valid") {
		t.Errorf("cast.validate attrs = %v, want verdict=valid", byName["cast.validate"].Attrs)
	}

	// The access record for the cast carries the same trace id.
	mu.Lock()
	logOut := buf.String()
	mu.Unlock()
	var castRecord map[string]any
	for _, line := range strings.Split(strings.TrimSpace(logOut), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad log line %q: %v", line, err)
		}
		if rec["route"] == "cast" {
			castRecord = rec
		}
	}
	if castRecord == nil {
		t.Fatalf("no cast access record in %s", logOut)
	}
	if castRecord["trace_id"] != knownTraceID {
		t.Errorf("access record trace_id = %v, want %s", castRecord["trace_id"], knownTraceID)
	}
	if castRecord["span_id"] == "" || castRecord["span_id"] == nil {
		t.Error("access record has no span_id")
	}
}

func names(td telemetry.TraceData) []string {
	var out []string
	for _, sd := range td.Spans {
		out = append(out, sd.Name)
	}
	return out
}

func hasAttr(sd telemetry.SpanData, key string, want any) bool {
	for _, a := range sd.Attrs {
		if a.Key == key && fmt.Sprint(a.Value) == fmt.Sprint(want) {
			return true
		}
	}
	return false
}

// TestTraceLookupOutcomes: the second identical cast resolves the pair
// from cache, so its registry.lookup span reports outcome=hit.
func TestTraceLookupOutcomes(t *testing.T) {
	ts, _, _ := newTracedServer(t)
	registerFigSchemas(t, ts.URL)
	do(t, "POST", ts.URL+"/cast/v1/v2", poXML(true))
	do(t, "POST", ts.URL+"/cast/v1/v2", poXML(true))

	code, body := do(t, "GET", ts.URL+"/debug/traces", "")
	if code != 200 {
		t.Fatalf("listing: %d", code)
	}
	var listing struct {
		Traces []struct {
			TraceID string `json:"traceId"`
			Name    string `json:"name"`
		} `json:"traces"`
	}
	if err := json.Unmarshal([]byte(body), &listing); err != nil {
		t.Fatal(err)
	}
	// Newest first: listing[0] is the second cast.
	var castIDs []string
	for _, tr := range listing.Traces {
		if tr.Name == "http cast" {
			castIDs = append(castIDs, tr.TraceID)
		}
	}
	if len(castIDs) != 2 {
		t.Fatalf("want 2 cast traces, got %v", listing.Traces)
	}
	second := traceDetail(t, ts.URL, castIDs[0])
	first := traceDetail(t, ts.URL, castIDs[1])
	outcome := func(td telemetry.TraceData) string {
		for _, sd := range td.Spans {
			if sd.Name == "registry.lookup" {
				for _, a := range sd.Attrs {
					if a.Key == "outcome" {
						return fmt.Sprint(a.Value)
					}
				}
			}
		}
		return ""
	}
	if got := outcome(first); got != registry.LookupMiss {
		t.Errorf("first cast lookup outcome = %q, want miss", got)
	}
	if got := outcome(second); got != registry.LookupHit {
		t.Errorf("second cast lookup outcome = %q, want hit", got)
	}
}

// TestExplainSpanEvents: ?explain=1 bridges decision-trace events onto the
// cast span.
func TestExplainSpanEvents(t *testing.T) {
	ts, _, _ := newTracedServer(t)
	registerFigSchemas(t, ts.URL)
	code, _ := do(t, "POST", ts.URL+"/cast/v1/v2?explain=1", poXML(true))
	if code != 200 {
		t.Fatalf("explained cast: %d", code)
	}
	// Plain casts carry no events.
	code, _ = do(t, "POST", ts.URL+"/cast/v1/v2", poXML(true))
	if code != 200 {
		t.Fatalf("plain cast: %d", code)
	}

	code, body := do(t, "GET", ts.URL+"/debug/traces", "")
	if code != 200 {
		t.Fatal("listing failed")
	}
	var listing struct {
		Traces []struct {
			TraceID string `json:"traceId"`
			Name    string `json:"name"`
		} `json:"traces"`
	}
	if err := json.Unmarshal([]byte(body), &listing); err != nil {
		t.Fatal(err)
	}
	var castIDs []string
	for _, tr := range listing.Traces {
		if tr.Name == "http cast" {
			castIDs = append(castIDs, tr.TraceID)
		}
	}
	if len(castIDs) != 2 {
		t.Fatalf("want 2 cast traces, got %v", listing.Traces)
	}
	events := func(td telemetry.TraceData) []telemetry.SpanEvent {
		for _, sd := range td.Spans {
			if sd.Name == "cast.validate" {
				return sd.Events
			}
		}
		t.Fatalf("no cast.validate span: %v", names(td))
		return nil
	}
	explained := traceDetail(t, ts.URL, castIDs[1]) // older = explain request
	plain := traceDetail(t, ts.URL, castIDs[0])
	evs := events(explained)
	if len(evs) == 0 {
		t.Fatal("explain=1 cast span has no decision events")
	}
	sawSkip := false
	for _, ev := range evs {
		if ev.Name == "skip" {
			sawSkip = true
		}
	}
	if !sawSkip {
		t.Errorf("no skip event among %v", evs)
	}
	if got := events(plain); len(got) != 0 {
		t.Errorf("plain cast span has %d events, want 0 (explain is opt-in)", len(got))
	}
}

// TestTraceHTMLViews: the ?format=html list and waterfall render.
func TestTraceHTMLViews(t *testing.T) {
	ts, _, _ := newTracedServer(t)
	registerFigSchemas(t, ts.URL)
	do(t, "POST", ts.URL+"/cast/v1/v2", poXML(true))

	resp, err := http.Get(ts.URL + "/debug/traces?format=html")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 || !strings.HasPrefix(resp.Header.Get("Content-Type"), "text/html") {
		t.Fatalf("list view: %d %s", resp.StatusCode, resp.Header.Get("Content-Type"))
	}

	code, body := do(t, "GET", ts.URL+"/debug/traces", "")
	if code != 200 {
		t.Fatal("listing failed")
	}
	var listing struct {
		Traces []struct {
			TraceID string `json:"traceId"`
			Name    string `json:"name"`
		} `json:"traces"`
	}
	if err := json.Unmarshal([]byte(body), &listing); err != nil {
		t.Fatal(err)
	}
	var id string
	for _, tr := range listing.Traces {
		if tr.Name == "http cast" {
			id = tr.TraceID
		}
	}
	if id == "" {
		t.Fatal("no cast trace retained")
	}
	code, html := do(t, "GET", ts.URL+"/debug/traces/"+id+"?format=html", "")
	if code != 200 {
		t.Fatalf("waterfall: %d", code)
	}
	for _, want := range []string{"http cast", "registry.lookup", "cast.validate", id} {
		if !strings.Contains(html, want) {
			t.Errorf("waterfall missing %q", want)
		}
	}

	if code, _ := do(t, "GET", ts.URL+"/debug/traces/ffffffffffffffffffffffffffffffff", ""); code != 404 {
		t.Errorf("unknown trace id: %d, want 404", code)
	}
}

// TestTracerDisabled: without a tracer the middleware injects nothing and
// /debug/traces reports disabled with an empty list.
func TestTracerDisabled(t *testing.T) {
	ts := newTestServer(t, registry.Config{})
	registerFigSchemas(t, ts.URL)

	req, err := http.NewRequest("POST", ts.URL+"/cast/v1/v2", strings.NewReader(poXML(true)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("traceparent", knownTraceparent)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("cast: %d", resp.StatusCode)
	}
	if got := resp.Header.Get("traceparent"); got != "" {
		t.Errorf("disabled tracer injected traceparent %q", got)
	}

	code, body := do(t, "GET", ts.URL+"/debug/traces", "")
	if code != 200 {
		t.Fatalf("listing: %d", code)
	}
	var listing struct {
		Enabled bool           `json:"enabled"`
		Traces  []traceSummary `json:"traces"`
	}
	if err := json.Unmarshal([]byte(body), &listing); err != nil {
		t.Fatal(err)
	}
	if listing.Enabled || len(listing.Traces) != 0 {
		t.Fatalf("disabled listing = %s", body)
	}
	if code, _ := do(t, "GET", ts.URL+"/debug/traces/"+knownTraceID, ""); code != 404 {
		t.Errorf("disabled detail: %d, want 404", code)
	}
}

// TestBuildInfoMetrics: the build-identity and uptime families are present
// on /metrics alongside the tail-sampler counters.
func TestBuildInfoMetrics(t *testing.T) {
	ts, _, _ := newTracedServer(t)
	code, body := do(t, "GET", ts.URL+"/metrics", "")
	if code != 200 {
		t.Fatalf("metrics: %d", code)
	}
	for _, want := range []string{
		"castd_build_info{",
		"go_version=",
		"castd_uptime_seconds",
		"castd_traces_started_total",
		"castd_traces_retained_total",
		"castd_traces_dropped_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
