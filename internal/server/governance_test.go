package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/registry"
)

// newGovernedServer builds a test server with explicit governance options.
func newGovernedServer(t *testing.T, opts Options) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New(registry.New(registry.Config{}), opts))
	t.Cleanup(ts.Close)
	return ts
}

func TestShed429WhenSaturated(t *testing.T) {
	ts := newGovernedServer(t, Options{MaxInFlight: 1})
	registerFigSchemas(t, ts.URL)

	// Saturate the single slot: a cast whose body never finishes keeps the
	// handler parked inside the slot until we release the pipe.
	pr, pw := io.Pipe()
	go pw.Write([]byte(`<purchaseOrder orderDate="2004-03-14">`))
	inFlight := make(chan error, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/cast/v1/v2", "application/xml", pr)
		if err == nil {
			resp.Body.Close()
		}
		inFlight <- err
	}()
	// Wait until the holder owns the slot (it must get past admission and
	// into the body read before the probe arrives).
	time.Sleep(200 * time.Millisecond)

	resp, err := http.Post(ts.URL+"/cast/v1/v2", "application/xml", strings.NewReader(poXML(true)))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("want 429 from saturated server, got %d %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Fatalf("want Retry-After: 1 on shed response, got %q", got)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
		t.Fatalf("shed response not a structured error: %s", body)
	}

	// Release the holder; its truncated document draws an invalid verdict
	// and frees the slot.
	pw.Close()
	if err := <-inFlight; err != nil {
		t.Fatalf("holding request failed at the transport: %v", err)
	}

	// The freed slot admits again.
	if code, body := do(t, "POST", ts.URL+"/cast/v1/v2", poXML(true)); code != 200 {
		t.Fatalf("post-drain cast: %d %s", code, body)
	}

	// The shed and queue-wait families are on /metrics.
	_, metrics := do(t, "GET", ts.URL+"/metrics", "")
	for _, want := range []string{"castd_shed_total 1", "castd_queue_wait_seconds_bucket", "castd_panics_total 0"} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}
}

func TestCastTimeout408(t *testing.T) {
	ts := newGovernedServer(t, Options{CastTimeout: 300 * time.Millisecond})
	registerFigSchemas(t, ts.URL)

	// The body stalls after the prolog: the walker is stuck inside a read,
	// where only the mirrored connection deadline can reach it.
	pr, pw := io.Pipe()
	go func() {
		pw.Write([]byte(`<purchaseOrder orderDate="2004-03-14">`))
		// Keep the pipe open well past the deadline, then release it so the
		// client transport can finish.
		time.Sleep(2 * time.Second)
		pw.Close()
	}()
	resp, err := http.Post(ts.URL+"/cast/v1/v2", "application/xml", pr)
	if err != nil {
		t.Fatalf("slow-body request failed at the transport: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestTimeout {
		t.Fatalf("want 408 for stalled body, got %d %s", resp.StatusCode, body)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
		t.Fatalf("timeout response not a structured error: %s", body)
	}
}

func TestMaxDocBytes413(t *testing.T) {
	ts := newGovernedServer(t, Options{MaxDocBytes: 512})
	registerFigSchemas(t, ts.URL)

	big := poXML(true) + strings.Repeat("<!-- padding -->", 100)
	if len(big) <= 512 {
		t.Fatalf("test document too small: %d bytes", len(big))
	}
	code, body := do(t, "POST", ts.URL+"/cast/v1/v2", big)
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("want 413 for oversized document, got %d %s", code, body)
	}
	// A document inside the bound still validates.
	small := poXML(true)
	if len(small) > 512 {
		t.Skipf("generated document unexpectedly large: %d bytes", len(small))
	}
	if code, body := do(t, "POST", ts.URL+"/cast/v1/v2", small); code != 200 {
		t.Fatalf("small document: %d %s", code, body)
	}
}

func TestStructuralLimits422(t *testing.T) {
	ts := newGovernedServer(t, Options{MaxDepth: 8, MaxElements: 50})
	registerFigSchemas(t, ts.URL)

	deep := `<purchaseOrder orderDate="2004-03-14"><shipTo country="US">` +
		strings.Repeat("<name>", 40) + strings.Repeat("</name>", 40) +
		`</shipTo></purchaseOrder>`
	code, body := do(t, "POST", ts.URL+"/cast/v1/v2", deep)
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("want 422 for over-deep document, got %d %s", code, body)
	}
	if !strings.Contains(body, "depth") {
		t.Fatalf("422 body does not name the limit: %s", body)
	}

	// Element limit: a fat but shallow purchase order.
	fat := string(poXMLItems(t, 200))
	code, body = do(t, "POST", ts.URL+"/cast/v1/v2", fat)
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("want 422 for over-long document, got %d %s", code, body)
	}
	if !strings.Contains(body, "elements") {
		t.Fatalf("422 body does not name the limit: %s", body)
	}
}

// TestBatchOversizedSlot pins the batch shape of the byte limit: an
// oversized entry fails its own slot with a structured verdict while its
// siblings validate normally.
func TestBatchOversizedSlot(t *testing.T) {
	ts := newGovernedServer(t, Options{MaxDocBytes: 1 << 12})
	registerFigSchemas(t, ts.URL)

	big := poXML(true) + strings.Repeat("<!-- pad -->", 1000)
	docs, err := json.Marshal([]string{poXML(true), big, poXML(false)})
	if err != nil {
		t.Fatal(err)
	}
	code, body := do(t, "POST", ts.URL+"/cast/v1/v2/batch", string(docs))
	if code != 200 {
		t.Fatalf("batch: %d %s", code, body)
	}
	var resp struct {
		Valid    int       `json:"valid"`
		Invalid  int       `json:"invalid"`
		Verdicts []*string `json:"verdicts"`
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("bad JSON: %v in %s", err, body)
	}
	if resp.Valid != 1 || resp.Invalid != 2 {
		t.Fatalf("want 1 valid / 2 invalid, got %s", body)
	}
	if resp.Verdicts[1] == nil || !strings.Contains(*resp.Verdicts[1], "per-document limit") {
		t.Fatalf("oversized slot verdict wrong: %s", body)
	}
	if resp.Verdicts[0] != nil || resp.Verdicts[2] == nil {
		t.Fatalf("sibling verdicts disturbed: %s", body)
	}
}

// TestMiddlewarePanicRecovery drives a panicking handler through the
// middleware directly: the response must be a structured 500 and the panic
// counter must move — the daemon's process must not.
func TestMiddlewarePanicRecovery(t *testing.T) {
	s := New(registry.New(registry.Config{}), Options{})
	rec := httptest.NewRecorder()
	sw := &statusWriter{ResponseWriter: rec, status: http.StatusOK}
	r := httptest.NewRequest("GET", "/boom", nil)
	s.serve(sw, r, false, func(http.ResponseWriter, *http.Request) {
		panic("handler bug")
	})
	if sw.status != http.StatusInternalServerError {
		t.Fatalf("want 500 after recovered panic, got %d", sw.status)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || !strings.Contains(e.Error, "handler bug") {
		t.Fatalf("panic response not structured: %s", rec.Body.String())
	}
	if got := s.mPanics.Value(); got != 1 {
		t.Fatalf("castd_panics_total = %v, want 1", got)
	}
	// A panic after the header went out cannot be unsent; the recorded
	// status still flips so the access log and counters tell the truth.
	rec2 := httptest.NewRecorder()
	sw2 := &statusWriter{ResponseWriter: rec2, status: http.StatusOK}
	s.serve(sw2, r, false, func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		panic("late bug")
	})
	if sw2.status != http.StatusInternalServerError {
		t.Fatalf("late panic not recorded: %d", sw2.status)
	}
}

// poXMLItems renders a purchase order with n items (for element limits).
func poXMLItems(t *testing.T, n int) string {
	t.Helper()
	var b strings.Builder
	b.WriteString(`<purchaseOrder orderDate="2004-03-14"><shipTo country="US"><name>a</name>` +
		`<street>b</street><city>c</city><state>d</state><zip>1</zip></shipTo>` +
		`<billTo country="US"><name>a</name><street>b</street><city>c</city>` +
		`<state>d</state><zip>1</zip></billTo><items>`)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, `<item partNum="p%d"><productName>x</productName>`+
			`<quantity>1</quantity><USPrice>1.0</USPrice></item>`, i)
	}
	b.WriteString(`</items></purchaseOrder>`)
	return b.String()
}
