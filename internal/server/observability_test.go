package server

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/artifact"
	"repro/internal/hotpair"
	"repro/internal/profiling"
	"repro/internal/registry"
	"repro/internal/telemetry"
)

// TestObservabilityRoutesBypassAdmission is the regression test for the
// diagnosability contract: a node with every -max-in-flight slot busy must
// still answer its observability routes, or the operator loses sight of
// the daemon exactly when it is in trouble.
func TestObservabilityRoutesBypassAdmission(t *testing.T) {
	ts := newGovernedServer(t, Options{MaxInFlight: 1})
	registerFigSchemas(t, ts.URL)

	// Saturate the only slot: a cast whose body never finishes parks the
	// handler inside the slot until the pipe is released.
	pr, pw := io.Pipe()
	go pw.Write([]byte(`<purchaseOrder orderDate="2004-03-14">`))
	inFlight := make(chan error, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/cast/v1/v2", "application/xml", pr)
		if err == nil {
			resp.Body.Close()
		}
		inFlight <- err
	}()
	time.Sleep(200 * time.Millisecond)

	for _, route := range []string{
		"/metrics",
		"/metrics.json",
		"/healthz",
		"/debug/traces",
		"/debug/profiles",
		"/debug/hotpairs",
		"/debug/fleet",
	} {
		if code, body := do(t, "GET", ts.URL+route, ""); code != http.StatusOK {
			t.Errorf("%s while saturated: %d %s", route, code, body)
		}
	}
	// Control: a work route really is shed right now.
	if code, _ := do(t, "POST", ts.URL+"/cast/v1/v2", poXML(true)); code != http.StatusTooManyRequests {
		t.Errorf("work route while saturated: %d, want 429", code)
	}

	pw.Close()
	if err := <-inFlight; err != nil {
		t.Fatalf("slot-holding request failed: %v", err)
	}
}

// TestProfilesEndpoints drives the latency trigger through a real request
// and retrieves the captured profile over HTTP: the forced-trigger
// acceptance path.
func TestProfilesEndpoints(t *testing.T) {
	prof := profiling.New(profiling.Options{
		LatencyThreshold: time.Nanosecond, // every request is an anomaly
		CPUDuration:      30 * time.Millisecond,
		Cooldown:         time.Nanosecond,
	})
	defer prof.Stop()
	ts := newGovernedServer(t, Options{Profiler: prof})
	registerFigSchemas(t, ts.URL)

	if code, body := do(t, "POST", ts.URL+"/cast/v1/v2", poXML(true)); code != 200 {
		t.Fatalf("cast: %d %s", code, body)
	}
	var list profilesBody
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		_, body := do(t, "GET", ts.URL+"/debug/profiles", "")
		if err := json.Unmarshal([]byte(body), &list); err != nil {
			t.Fatalf("profiles list JSON: %v in %s", err, body)
		}
		if len(list.Profiles) >= 2 { // goroutine snapshot + CPU window
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !list.Enabled || len(list.Profiles) < 2 {
		t.Fatalf("latency trigger produced %d profiles (enabled=%v)", len(list.Profiles), list.Enabled)
	}
	for _, m := range list.Profiles {
		if m.Trigger != profiling.TriggerLatency {
			t.Errorf("profile %d trigger = %s, want latency", m.ID, m.Trigger)
		}
	}

	// Download one and verify it is a gzipped pprof proto.
	resp, err := http.Get(fmt.Sprintf("%s/debug/profiles/%d", ts.URL, list.Profiles[0].ID))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("profile download: %d %s", resp.StatusCode, data)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Errorf("content type %q", ct)
	}
	zr, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("downloaded profile is not gzip: %v", err)
	}
	if raw, err := io.ReadAll(zr); err != nil || len(raw) == 0 {
		t.Fatalf("downloaded profile gunzip: %v (%d bytes)", err, len(raw))
	}

	if code, _ := do(t, "GET", ts.URL+"/debug/profiles/999999", ""); code != 404 {
		t.Errorf("unknown profile id: %d, want 404", code)
	}
	if code, _ := do(t, "GET", ts.URL+"/debug/profiles/not-an-id", ""); code != 400 {
		t.Errorf("malformed profile id: %d, want 400", code)
	}

	_, metrics := do(t, "GET", ts.URL+"/metrics", "")
	if strings.Contains(metrics, "castd_profiles_captured_total 0\n") {
		t.Error("captured counter still zero after retained profiles")
	}
}

// TestProfilesEndpointsWithoutProfiler: the routes stay mounted and sane
// when the daemon runs unprofiled.
func TestProfilesEndpointsWithoutProfiler(t *testing.T) {
	ts := newTestServer(t, registry.Config{})
	code, body := do(t, "GET", ts.URL+"/debug/profiles", "")
	if code != 200 {
		t.Fatalf("profiles list without profiler: %d", code)
	}
	var list profilesBody
	if err := json.Unmarshal([]byte(body), &list); err != nil {
		t.Fatal(err)
	}
	if list.Enabled || len(list.Profiles) != 0 {
		t.Fatalf("unexpected list without profiler: %+v", list)
	}
	if code, _ := do(t, "GET", ts.URL+"/debug/profiles/1", ""); code != 404 {
		t.Fatalf("profile download without profiler: %d, want 404", code)
	}
	// The capture counters exist at zero.
	_, metrics := do(t, "GET", ts.URL+"/metrics", "")
	for _, want := range []string{"castd_profiles_captured_total 0", "castd_profiles_dropped_total 0"} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestHotpairsEndpoint: casts attribute to their pair's content-hash key,
// and both the JSON view and the bounded metric families see them.
func TestHotpairsEndpoint(t *testing.T) {
	ts := newTestServer(t, registry.Config{})
	registerFigSchemas(t, ts.URL)
	for i := 0; i < 3; i++ {
		if code, body := do(t, "POST", ts.URL+"/cast/v1/v2", poXML(true)); code != 200 {
			t.Fatalf("cast %d: %d %s", i, code, body)
		}
	}
	_, body := do(t, "GET", ts.URL+"/debug/hotpairs", "")
	var snap hotpair.Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("hotpairs JSON: %v in %s", err, body)
	}
	if snap.K != DefaultHotPairK {
		t.Errorf("k = %d, want default %d", snap.K, DefaultHotPairK)
	}
	if len(snap.Tracked) != 1 {
		t.Fatalf("tracked = %+v, want exactly the v1->v2 pair", snap.Tracked)
	}
	e := snap.Tracked[0]
	if e.Casts != 3 || e.Src != "v1" || e.Dst != "v2" || len(e.Key) != 12 {
		t.Fatalf("bad entry: %+v", e)
	}
	if e.Seconds <= 0 {
		t.Errorf("no wall-clock attributed: %+v", e)
	}

	_, metrics := do(t, "GET", ts.URL+"/metrics", "")
	for _, want := range []string{
		`cast_pair_seconds_total{pair="` + e.Key + `"}`,
		`cast_pair_casts_total{pair="` + e.Key + `"} 3`,
		`cast_pair_casts_total{pair="other"} 0`,
		`cast_pair_work_saved_ratio{pair="` + e.Key + `"}`,
		"cast_pair_tracked 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// tracedTwoNodes is twoNodes plus tracers, returning the servers so the
// test can read their rings directly.
func tracedTwoNodes(t *testing.T) (urlA, urlB string, regA, regB *registry.Registry) {
	t.Helper()
	lhA, lhB := &lateHandler{}, &lateHandler{}
	tsA, tsB := httptest.NewServer(lhA), httptest.NewServer(lhB)
	t.Cleanup(tsA.Close)
	t.Cleanup(tsB.Close)
	peers := []string{tsA.URL, tsB.URL}
	regA, regB = registry.New(registry.Config{}), registry.New(registry.Config{})
	mk := func(reg *registry.Registry, self string) *Server {
		srv := New(reg, Options{
			SelfURL: self, Peers: peers,
			Tracer: telemetry.NewTracer(telemetry.TracerOptions{SampleRate: 1}),
		})
		t.Cleanup(srv.Close)
		return srv
	}
	lhA.set(mk(regA, tsA.URL))
	lhB.set(mk(regB, tsB.URL))
	return tsA.URL, tsB.URL, regA, regB
}

// getTrace polls one node's /debug/traces/{id} until the trace is
// retained (span End publishes after the response is on the wire).
func getTrace(t *testing.T, base, traceID string) telemetry.TraceData {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		code, body := do(t, "GET", base+"/debug/traces/"+traceID, "")
		if code == 200 {
			var td telemetry.TraceData
			if err := json.Unmarshal([]byte(body), &td); err != nil {
				t.Fatalf("trace JSON: %v in %s", err, body)
			}
			return td
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace %s never retained on %s (last: %d %s)", traceID, base, code, body)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func findSpan(td telemetry.TraceData, name string) (telemetry.SpanData, bool) {
	for _, s := range td.Spans {
		if s.Name == name {
			return s, true
		}
	}
	return telemetry.SpanData{}, false
}

// TestClusterTraceContinuity: a cast proxied to the pair's owner is one
// trace across both nodes — the proxy hop is a client span on the
// non-owner, and the owner's root span is its child under the same trace
// id. The follow-up artifact fetch continues the trace the same way.
func TestClusterTraceContinuity(t *testing.T) {
	urlA, urlB, regA, _ := tracedTwoNodes(t)
	registerFigSchemas(t, urlA)
	registerFigSchemas(t, urlB)

	sv1, _ := regA.Schema("v1")
	sv2, _ := regA.Schema("v2")
	key := artifact.Key(sv1.Hash, sv2.Hash)
	c := newCluster(urlA, []string{urlA, urlB})
	ownerURL, nonOwnerURL := c.owner(key), urlA
	if ownerURL == urlA {
		nonOwnerURL = urlB
	}

	cast := func(traceID string) {
		t.Helper()
		req, err := http.NewRequest("POST", nonOwnerURL+"/cast/v1/v2", strings.NewReader(poXML(true)))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("traceparent", "00-"+traceID+"-00f067aa0ba902b7-01")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("cast: %d", resp.StatusCode)
		}
	}

	// Round 1: the owner has nothing compiled, so the non-owner proxies.
	proxyTrace := "aaaabbbbccccddddeeeeffff00001111"
	cast(proxyTrace)

	local := getTrace(t, nonOwnerURL, proxyTrace)
	hop, ok := findSpan(local, "peer.proxy")
	if !ok {
		t.Fatalf("non-owner trace has no peer.proxy span: %+v", local)
	}
	root, _ := findSpan(local, "http cast")
	if hop.ParentID != root.SpanID {
		t.Errorf("peer.proxy parent = %s, want the request root %s", hop.ParentID, root.SpanID)
	}

	remote := getTrace(t, ownerURL, proxyTrace)
	remoteRoot, ok := findSpan(remote, "http cast")
	if !ok {
		t.Fatalf("owner trace has no http cast root: %+v", remote)
	}
	if remoteRoot.ParentID != hop.SpanID {
		t.Errorf("owner root parent = %s, want the proxy hop %s — the trace broke at the node boundary",
			remoteRoot.ParentID, hop.SpanID)
	}
	if remoteRoot.TraceID != proxyTrace {
		t.Errorf("owner joined trace %s, want %s", remoteRoot.TraceID, proxyTrace)
	}

	// Round 2: the owner now has the artifact; the non-owner fetches it
	// under a peer.fetch client span in the same trace.
	fetchTrace := "aaaabbbbccccddddeeeeffff00002222"
	cast(fetchTrace)
	local = getTrace(t, nonOwnerURL, fetchTrace)
	fetch, ok := findSpan(local, "peer.fetch")
	if !ok {
		t.Fatalf("fetch round has no peer.fetch span: %+v", local)
	}
	remote = getTrace(t, ownerURL, fetchTrace)
	artifactRoot, ok := findSpan(remote, "http artifact")
	if !ok {
		t.Fatalf("owner has no artifact root for the fetch: %+v", remote)
	}
	if artifactRoot.ParentID != fetch.SpanID {
		t.Errorf("artifact root parent = %s, want the fetch span %s", artifactRoot.ParentID, fetch.SpanID)
	}
}

// TestPeerUpProber: the background prober publishes castd_peer_up per
// peer, flipping to 0 when the peer dies, and standalone daemons carry the
// family with no series.
func TestPeerUpProber(t *testing.T) {
	lhA, lhB := &lateHandler{}, &lateHandler{}
	tsA, tsB := httptest.NewServer(lhA), httptest.NewServer(lhB)
	t.Cleanup(tsA.Close)
	peers := []string{tsA.URL, tsB.URL}
	srvA := New(registry.New(registry.Config{}), Options{
		SelfURL: tsA.URL, Peers: peers, PeerProbeInterval: 20 * time.Millisecond})
	t.Cleanup(srvA.Close)
	srvB := New(registry.New(registry.Config{}), Options{
		SelfURL: tsB.URL, Peers: peers, PeerProbeInterval: 20 * time.Millisecond})
	lhA.set(srvA)
	lhB.set(srvB)

	wantSeries := fmt.Sprintf("castd_peer_up{peer=%q} ", tsB.URL)
	waitFor := func(value string) {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			_, metrics := do(t, "GET", tsA.URL+"/metrics", "")
			if strings.Contains(metrics, wantSeries+value+"\n") {
				return
			}
			time.Sleep(20 * time.Millisecond)
		}
		t.Fatalf("castd_peer_up for %s never reached %s", tsB.URL, value)
	}
	waitFor("1")
	srvB.Close()
	tsB.Close() // connection refused from here on
	waitFor("0")

	// Standalone: family present, zero series.
	ts := newTestServer(t, registry.Config{})
	_, metrics := do(t, "GET", ts.URL+"/metrics", "")
	if !strings.Contains(metrics, "# HELP castd_peer_up ") {
		t.Error("standalone scrape missing the castd_peer_up family")
	}
	if strings.Contains(metrics, "castd_peer_up{") {
		t.Error("standalone scrape has peer series out of nowhere")
	}
}
