// Cluster routing for castd: every compiled (source, target) pair key is
// owned by exactly one member, chosen by rendezvous hashing over the peer
// list, so the cluster pays each pair's preprocessing once no matter which
// node a cast lands on. A non-owner resolves a pair in this order:
//
//  1. its own warm cache (a pair already installed serves locally forever);
//  2. GET /artifacts/{key} from the owner — one blob transfer, after which
//     this node casts locally at full speed;
//  3. proxying the whole request to the owner (first request for a pair the
//     owner has not compiled yet: the proxy makes the owner compile it, and
//     the next request here succeeds via 2);
//  4. if the owner is unreachable, compiling locally — availability beats
//     the once-per-cluster economy when a peer is down.
//
// Forwarded requests carry a loop-guard header; a receiving node serves
// them locally unconditionally, so disagreeing peer lists degrade into an
// extra compile, never a proxy loop.
package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"time"

	"repro/internal/artifact"
	"repro/internal/registry"
	"repro/internal/telemetry"
)

// handleArtifact serves GET /artifacts/{key}: the compiled pair blob for a
// peer (or any client warming a cache). 404 when this node holds neither a
// stored blob nor an in-memory pair under the key.
func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	blob, err := s.reg.ArtifactBlob(r.PathValue("key"))
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(blob)
}

// forwardedHeader marks a request already proxied once; the receiver must
// answer locally.
const forwardedHeader = "X-Castd-Forwarded"

// fetchTimeout bounds one artifact fetch from a peer. Blobs are small
// (schema texts plus automata tables), so a slow fetch means a sick peer —
// better to fall through to proxy or local compile than to wait.
const fetchTimeout = 10 * time.Second

// errPeerNotFound reports a clean 404 from the owner: it is alive but has
// not compiled the pair, so proxying to it is the right next step.
var errPeerNotFound = errors.New("peer has no artifact")

type cluster struct {
	self   string
	peers  []string // normalized; includes self
	client *http.Client
}

// newCluster normalizes the peer list; nil (clustering disabled) unless
// both self and at least one peer are configured.
func newCluster(self string, peers []string) *cluster {
	if self == "" || len(peers) == 0 {
		return nil
	}
	c := &cluster{self: normalizePeer(self), client: &http.Client{}}
	seen := map[string]bool{}
	for _, p := range append(peers, self) {
		if p = normalizePeer(p); p != "" && !seen[p] {
			seen[p] = true
			c.peers = append(c.peers, p)
		}
	}
	if len(c.peers) < 2 {
		return nil // a cluster of one routes everything locally anyway
	}
	return c
}

func normalizePeer(u string) string {
	for len(u) > 0 && u[len(u)-1] == '/' {
		u = u[:len(u)-1]
	}
	return u
}

// owner picks the pair key's owning peer by rendezvous (highest-random-
// weight) hashing: every node scores each peer against the key and takes
// the maximum, so all nodes agree without coordination, and removing one
// peer only remaps the keys it owned.
func (c *cluster) owner(key string) string {
	var best string
	var bestScore [sha256.Size]byte
	for _, p := range c.peers {
		score := sha256.Sum256([]byte(p + "\x00" + key))
		if best == "" || bytes.Compare(score[:], bestScore[:]) > 0 {
			best, bestScore = p, score
		}
	}
	return best
}

// fetchArtifact downloads one blob from the owner under a client span.
// The outbound request inherits the caller's context (so the request
// deadline and a hung-up client cancel the fetch, tightened by
// fetchTimeout) and carries the span's traceparent — the owner's artifact
// route joins the same trace, so the cross-node hop shows as one waterfall
// on /debug/traces. A 404 maps to errPeerNotFound; anything else non-200
// or transport-level is a peer error.
func (c *cluster) fetchArtifact(ctx context.Context, owner, key string) ([]byte, error) {
	sp := telemetry.SpanFromContext(ctx).StartChild("peer.fetch")
	sp.SetAttr("peer", owner)
	sp.SetAttr("artifact.key", key)
	blob, err := c.doFetch(ctx, sp, owner, key)
	switch {
	case err == nil:
		sp.SetAttr("outcome", "ok")
		sp.SetAttr("artifact.bytes", len(blob))
	case errors.Is(err, errPeerNotFound):
		// Not a failure: the owner is alive, it just has not compiled the
		// pair yet. The span records the outcome without tripping the tail
		// sampler's always-keep-errors rule.
		sp.SetAttr("outcome", "not-found")
	default:
		sp.SetAttr("outcome", "error")
		sp.SetError(err.Error())
	}
	sp.End()
	return blob, err
}

func (c *cluster) doFetch(ctx context.Context, sp *telemetry.Span, owner, key string) ([]byte, error) {
	ctx, cancel := context.WithTimeout(ctx, fetchTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, owner+"/artifacts/"+key, nil)
	if err != nil {
		return nil, err
	}
	if sc := sp.Context(); sc.IsValid() {
		req.Header.Set("traceparent", telemetry.FormatTraceparent(sc))
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, errPeerNotFound
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("peer %s: artifact fetch returned %s", owner, resp.Status)
	}
	return io.ReadAll(resp.Body)
}

// clusterPair routes one pair-resolving request ((src, dst) already parsed
// from the path) through the cluster. Returns (pair, false) when the
// caller should serve locally with pair; (nil, false) when the caller
// should fall through to its normal local lookup (owner here, schemas
// unknown, or owner unreachable); (nil, true) when the response has
// already been written (proxied, or proxy failure reported).
func (s *Server) clusterPair(w http.ResponseWriter, r *http.Request, srcID, dstID string) (*registry.Pair, bool) {
	src, ok := s.reg.Schema(srcID)
	if !ok {
		return nil, false // local lookup produces the 404
	}
	dst, ok := s.reg.Schema(dstID)
	if !ok {
		return nil, false
	}
	key := artifact.Key(src.Hash, dst.Hash)
	owner := s.cluster.owner(key)
	sp := telemetry.SpanFromContext(r.Context())
	sp.SetAttr("cluster.owner", owner)
	if owner == s.cluster.self {
		return nil, false
	}
	if p, ok := s.reg.CachedPair(srcID, dstID); ok {
		// Installed (or compiled under fallback) earlier: no peer traffic.
		return p, false
	}

	blob, err := s.cluster.fetchArtifact(r.Context(), owner, key)
	switch {
	case err == nil:
		p, ierr := s.reg.InstallArtifact(r.Context(), srcID, dstID, blob)
		if ierr == nil {
			s.mPeerFetch.Inc()
			sp.SetAttr("cluster.via", "fetch")
			return p, false
		}
		// A blob this node cannot use (owner on a different build, say):
		// proxying still gets the client a verdict.
		s.mPeerErrors.Inc()
		s.logPeer(r, "artifact install failed, proxying", owner, ierr)
	case errors.Is(err, errPeerNotFound):
		// Owner is alive but has not compiled the pair; the proxied request
		// below makes it compile once for the whole cluster.
	default:
		// Owner unreachable: availability wins, compile locally. The pair
		// lands in this node's cache, so the outage costs one extra compile.
		s.mPeerErrors.Inc()
		s.logPeer(r, "peer fetch failed, compiling locally", owner, err)
		return nil, false
	}

	s.mPeerForwards.Inc()
	sp.SetAttr("cluster.via", "proxy")
	if err := s.proxyToPeer(w, r, owner); err != nil {
		// The request body may be partially consumed; a local retry could
		// mis-validate, so report the failure instead.
		s.mPeerErrors.Inc()
		s.logPeer(r, "proxy failed", owner, err)
		writeError(w, http.StatusBadGateway, "proxying to pair owner %s: %v", owner, err)
	}
	return nil, true
}

// proxyToPeer replays the request against the owner under a client span
// and streams the response back. The loop-guard header makes the owner
// answer locally. The outbound request uses the inbound request's context,
// so the client's deadline and disconnect propagate to the peer call; its
// traceparent is overwritten with the proxy span's own context (the
// header clone carries the client's original value, which would make the
// owner's root span a sibling of ours instead of a child — the waterfall
// must read client → proxy hop → owner).
func (s *Server) proxyToPeer(w http.ResponseWriter, r *http.Request, owner string) error {
	sp := telemetry.SpanFromContext(r.Context()).StartChild("peer.proxy")
	sp.SetAttr("peer", owner)
	status, err := s.doProxy(w, r, sp, owner)
	if err != nil {
		sp.SetAttr("outcome", "error")
		sp.SetError(err.Error())
	} else {
		sp.SetAttr("outcome", "ok")
		sp.SetAttr("http.status", status)
	}
	sp.End()
	return err
}

func (s *Server) doProxy(w http.ResponseWriter, r *http.Request, sp *telemetry.Span, owner string) (int, error) {
	req, err := http.NewRequestWithContext(r.Context(), r.Method, owner+r.URL.RequestURI(), r.Body)
	if err != nil {
		return 0, err
	}
	req.Header = r.Header.Clone()
	req.Header.Set(forwardedHeader, "1")
	if sc := sp.Context(); sc.IsValid() {
		req.Header.Set("traceparent", telemetry.FormatTraceparent(sc))
	}
	resp, err := s.cluster.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	h := w.Header()
	for k, vs := range resp.Header {
		if k == "Traceparent" {
			// The peer's inject would clobber this node's own response
			// header; the client should see the span it actually talked to.
			continue
		}
		for _, v := range vs {
			h.Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
	return resp.StatusCode, nil
}

func (s *Server) logPeer(r *http.Request, msg, owner string, err error) {
	if s.logger == nil {
		return
	}
	s.logger.LogAttrs(r.Context(), slog.LevelWarn, "cluster: "+msg,
		slog.String("peer", owner),
		slog.String("path", r.URL.Path),
		slog.String("error", err.Error()))
}
