// Cluster routing for castd: every compiled (source, target) pair key is
// owned by exactly one member, chosen by rendezvous hashing over the peer
// list, so the cluster pays each pair's preprocessing once no matter which
// node a cast lands on. A non-owner resolves a pair in this order:
//
//  1. its own warm cache (a pair already installed serves locally forever);
//  2. GET /artifacts/{key} from the owner — one blob transfer, after which
//     this node casts locally at full speed;
//  3. proxying the whole request to the owner (first request for a pair the
//     owner has not compiled yet: the proxy makes the owner compile it, and
//     the next request here succeeds via 2);
//  4. if the owner is unreachable, compiling locally — availability beats
//     the once-per-cluster economy when a peer is down.
//
// Forwarded requests carry a loop-guard header; a receiving node serves
// them locally unconditionally, so disagreeing peer lists degrade into an
// extra compile, never a proxy loop.
package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"repro/internal/artifact"
	"repro/internal/faultinject"
	"repro/internal/registry"
	"repro/internal/resilience"
	"repro/internal/telemetry"
)

// handleArtifact serves GET /artifacts/{key}: the compiled pair blob for a
// peer (or any client warming a cache). 404 when this node holds neither a
// stored blob nor an in-memory pair under the key.
func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	blob, err := s.reg.ArtifactBlob(r.PathValue("key"))
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(blob)
}

// forwardedHeader marks a request already proxied once; the receiver must
// answer locally.
const forwardedHeader = "X-Castd-Forwarded"

// deadlineHeader carries the forwarding node's remaining request budget in
// milliseconds, so the receiving hop validates under the caller's deadline
// instead of restarting its own -cast-timeout from zero.
const deadlineHeader = "X-Castd-Deadline"

// Retry backoff bounds for failed peer fetches (full jitter in between).
const (
	retryBackoffBase = 25 * time.Millisecond
	retryBackoffMax  = time.Second
)

// errPeerNotFound reports a clean 404 from the owner: it is alive but has
// not compiled the pair, so proxying to it is the right next step.
var errPeerNotFound = errors.New("peer has no artifact")

// errBreakerOpen reports a call refused locally because the peer's circuit
// breaker is open — no packet was sent; the degraded-mode policy decides
// what the client gets.
var errBreakerOpen = errors.New("peer circuit breaker open")

type cluster struct {
	self   string
	peers  []string // normalized; includes self
	client *http.Client
}

// newCluster normalizes the peer list; nil (clustering disabled) unless
// both self and at least one peer are configured. The shared client's
// transport runs through the fault-injection seam, so chaos smokes can
// partition, slow or flap all outbound peer traffic — fetches, proxies and
// health probes alike — with one directive.
func newCluster(self string, peers []string) *cluster {
	if self == "" || len(peers) == 0 {
		return nil
	}
	c := &cluster{self: normalizePeer(self), client: &http.Client{Transport: faultinject.PeerTransport(nil)}}
	seen := map[string]bool{}
	for _, p := range append(peers, self) {
		if p = normalizePeer(p); p != "" && !seen[p] {
			seen[p] = true
			c.peers = append(c.peers, p)
		}
	}
	if len(c.peers) < 2 {
		return nil // a cluster of one routes everything locally anyway
	}
	return c
}

func normalizePeer(u string) string {
	for len(u) > 0 && u[len(u)-1] == '/' {
		u = u[:len(u)-1]
	}
	return u
}

// owner picks the pair key's owning peer by rendezvous (highest-random-
// weight) hashing: every node scores each peer against the key and takes
// the maximum, so all nodes agree without coordination, and removing one
// peer only remaps the keys it owned.
func (c *cluster) owner(key string) string {
	var best string
	var bestScore [sha256.Size]byte
	for _, p := range c.peers {
		score := sha256.Sum256([]byte(p + "\x00" + key))
		if best == "" || bytes.Compare(score[:], bestScore[:]) > 0 {
			best, bestScore = p, score
		}
	}
	return best
}

// fetchArtifact downloads one blob from a peer under a client span. The
// outbound request inherits the caller's context (the per-attempt timeout
// and request deadline are applied by fetchResilient; a hung-up client
// cancels the fetch) and carries the span's traceparent — the peer's
// artifact route joins the same trace, so the cross-node hop shows as one
// waterfall on /debug/traces. A 404 maps to errPeerNotFound; anything else
// non-200 or transport-level is a peer error.
func (c *cluster) fetchArtifact(ctx context.Context, owner, key string) ([]byte, error) {
	sp := telemetry.SpanFromContext(ctx).StartChild("peer.fetch")
	sp.SetAttr("peer", owner)
	sp.SetAttr("artifact.key", key)
	blob, err := c.doFetch(ctx, sp, owner, key)
	switch {
	case err == nil:
		sp.SetAttr("outcome", "ok")
		sp.SetAttr("artifact.bytes", len(blob))
	case errors.Is(err, errPeerNotFound):
		// Not a failure: the owner is alive, it just has not compiled the
		// pair yet. The span records the outcome without tripping the tail
		// sampler's always-keep-errors rule.
		sp.SetAttr("outcome", "not-found")
	default:
		sp.SetAttr("outcome", "error")
		sp.SetError(err.Error())
	}
	sp.End()
	return blob, err
}

func (c *cluster) doFetch(ctx context.Context, sp *telemetry.Span, owner, key string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, owner+"/artifacts/"+key, nil)
	if err != nil {
		return nil, err
	}
	if sc := sp.Context(); sc.IsValid() {
		req.Header.Set("traceparent", telemetry.FormatTraceparent(sc))
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, errPeerNotFound
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("peer %s: artifact fetch returned %s", owner, resp.Status)
	}
	return io.ReadAll(resp.Body)
}

// breakerFor returns the peer's circuit breaker (nil on single nodes or
// for self — callers treat nil as "always allowed").
func (s *Server) breakerFor(peer string) *resilience.Breaker { return s.breakers[peer] }

// hedgePeer picks the hedge target for a fetch whose primary goes to
// owner: another peer the prober last saw up (any member that resolved the
// pair earlier can serve its artifact), falling back to a second
// connection to the owner itself when the cluster has no third node.
func (s *Server) hedgePeer(owner string) string {
	for _, p := range s.cluster.peers {
		if p == s.cluster.self || p == owner {
			continue
		}
		if st := s.peerHealth[p]; st != nil && st.up.Load() {
			return p
		}
	}
	return owner
}

// hedgeDelay is how long a fetch waits before launching its hedge: the
// configured floor, raised to the observed p95 so a naturally-slower
// network does not hedge every request. 0 disables hedging.
func (s *Server) hedgeDelay() time.Duration {
	d := s.hedgeAfter
	if d <= 0 {
		return 0
	}
	if p95 := s.fetchLat.Percentile(0.95); p95 > d {
		d = p95
	}
	return d
}

// fetchOnce is one fetch attempt: bounded by the per-attempt peer timeout
// (itself capped by the caller's deadline) and hedged against another warm
// peer once the attempt outlives the hedge delay. First response wins; the
// loser's context is cancelled.
func (s *Server) fetchOnce(ctx context.Context, owner, key string) ([]byte, error) {
	actx, cancel := context.WithTimeout(ctx, s.peerTimeout)
	defer cancel()
	delay := s.hedgeDelay()
	if delay <= 0 {
		return s.cluster.fetchArtifact(actx, owner, key)
	}
	hedge := s.hedgePeer(owner)
	blob, err, hedged := resilience.Hedge(actx, delay,
		func(c context.Context) ([]byte, error) { return s.cluster.fetchArtifact(c, owner, key) },
		func(c context.Context) ([]byte, error) { return s.cluster.fetchArtifact(c, hedge, key) },
		s.mPeerHedges.Inc,
	)
	if hedged && err == nil {
		s.mPeerHedgeWins.Inc()
	}
	return blob, err
}

// fetchResilient is the artifact fetch with the full failure story wrapped
// around it: admission through the owner's circuit breaker (errBreakerOpen
// without a packet sent when open), bounded retries with exponential
// backoff + full jitter, each granted by the global retry budget so a sick
// peer can never amplify traffic cluster-wide, and per-attempt hedging.
// A 404 (errPeerNotFound) counts as breaker success — the peer answered.
func (s *Server) fetchResilient(ctx context.Context, owner, key string) ([]byte, error) {
	br := s.breakerFor(owner)
	s.retryBudget.Deposit()
	for attempt := 0; ; attempt++ {
		if br != nil && !br.Allow() {
			return nil, errBreakerOpen
		}
		start := time.Now()
		blob, err := s.fetchOnce(ctx, owner, key)
		ok := err == nil || errors.Is(err, errPeerNotFound)
		if br != nil {
			br.Record(ok)
		}
		if ok {
			s.fetchLat.Observe(time.Since(start))
			return blob, err
		}
		if ctx.Err() != nil || attempt >= s.peerRetries || !s.retryBudget.Withdraw() {
			return nil, err
		}
		s.mPeerRetries.Inc()
		select {
		case <-time.After(resilience.Backoff(attempt, retryBackoffBase, retryBackoffMax, nil)):
		case <-ctx.Done():
			return nil, err
		}
	}
}

// degradeServe applies the -degraded-mode policy after the owner proved
// unavailable (breaker open, fetch attempts exhausted, or proxy failed
// with a rewindable body). Returns in clusterPair's convention.
func (s *Server) degradeServe(w http.ResponseWriter, r *http.Request, srcID, dstID, owner string) (*registry.Pair, bool) {
	telemetry.SpanFromContext(r.Context()).SetAttr("cluster.via", "degraded")
	switch s.degradedMode {
	case DegradedModeStale:
		if p, ok := s.reg.DiskPair(r.Context(), srcID, dstID); ok {
			s.mDegraded.With("stale").Inc()
			return p, false
		}
		// Nothing stale to serve; fail fast rather than compile.
		fallthrough
	case DegradedModeFail:
		s.mDegraded.With("fail").Inc()
		retryAfter := time.Second
		if br := s.breakerFor(owner); br != nil {
			retryAfter = br.RetryAfter()
		}
		w.Header().Set("Retry-After", strconv.Itoa(int((retryAfter+time.Second-1)/time.Second)))
		writeError(w, http.StatusServiceUnavailable,
			"pair owner %s unavailable (degraded-mode=%s)", owner, s.degradedMode)
		return nil, true
	default:
		// Local compile: availability wins, and the pair lands in this
		// node's cache so the outage costs one extra compile.
		s.mDegraded.With("local-compile").Inc()
		return nil, false
	}
}

// bufferBody replaces the request body with an in-memory copy (bounded by
// -max-doc-bytes) so the proxy can consume it and a proxy failure can
// still rewind and fail over to the degraded-mode path. Returns the copy
// and true, or (nil, false) when the body cannot be fully buffered — it is
// then streamed as before (prefix + remainder) and a failed proxy is
// unrecoverable, exactly the old behavior.
func (s *Server) bufferBody(r *http.Request) ([]byte, bool) {
	if r.Body == nil || r.Body == http.NoBody {
		return nil, true
	}
	var buf bytes.Buffer
	if s.maxDocBytes > 0 {
		if _, err := io.Copy(&buf, io.LimitReader(r.Body, s.maxDocBytes+1)); err != nil {
			r.Body = &stitchedBody{head: bytes.NewReader(buf.Bytes()), err: err, closer: r.Body}
			return nil, false
		}
		if int64(buf.Len()) > s.maxDocBytes {
			// Larger than any handler accepts; let the peer answer 413.
			r.Body = &stitchedBody{head: bytes.NewReader(buf.Bytes()), tail: r.Body, closer: r.Body}
			return nil, false
		}
	} else if _, err := io.Copy(&buf, r.Body); err != nil {
		r.Body = &stitchedBody{head: bytes.NewReader(buf.Bytes()), err: err, closer: r.Body}
		return nil, false
	}
	r.Body.Close()
	s.rewindBody(r, buf.Bytes())
	return buf.Bytes(), true
}

// rewindBody points the request body at the buffered copy again.
func (s *Server) rewindBody(r *http.Request, body []byte) {
	r.Body = io.NopCloser(bytes.NewReader(body))
	r.ContentLength = int64(len(body))
}

// stitchedBody replays a consumed prefix ahead of the live remainder (or a
// read error), for bodies too large to buffer.
type stitchedBody struct {
	head   *bytes.Reader
	tail   io.Reader
	err    error
	closer io.Closer
}

func (sb *stitchedBody) Read(p []byte) (int, error) {
	if sb.head.Len() > 0 {
		return sb.head.Read(p)
	}
	if sb.tail != nil {
		return sb.tail.Read(p)
	}
	if sb.err != nil {
		return 0, sb.err
	}
	return 0, io.EOF
}

func (sb *stitchedBody) Close() error {
	if sb.closer != nil {
		return sb.closer.Close()
	}
	return nil
}

// clusterPair routes one pair-resolving request ((src, dst) already parsed
// from the path) through the cluster. Returns (pair, false) when the
// caller should serve locally with pair; (nil, false) when the caller
// should fall through to its normal local lookup (owner here, schemas
// unknown, or degraded-mode local compile); (nil, true) when the response
// has already been written (proxied, degraded 503, or proxy failure
// reported).
func (s *Server) clusterPair(w http.ResponseWriter, r *http.Request, srcID, dstID string) (*registry.Pair, bool) {
	src, ok := s.reg.Schema(srcID)
	if !ok {
		return nil, false // local lookup produces the 404
	}
	dst, ok := s.reg.Schema(dstID)
	if !ok {
		return nil, false
	}
	key := artifact.Key(src.Hash, dst.Hash)
	owner := s.cluster.owner(key)
	sp := telemetry.SpanFromContext(r.Context())
	sp.SetAttr("cluster.owner", owner)
	if owner == s.cluster.self {
		return nil, false
	}
	if p, ok := s.reg.CachedPair(srcID, dstID); ok {
		// Installed (or compiled under fallback) earlier: no peer traffic.
		return p, false
	}

	// One deadline bounds every peer operation for this request — all
	// fetch attempts, hedges, and the proxy hop together — so -cast-timeout
	// caps the chain instead of each stage restarting the clock.
	ctx := r.Context()
	cancel := func() {}
	if _, bounded := ctx.Deadline(); !bounded && s.castTimeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, s.castTimeout)
	}
	defer cancel()

	blob, err := s.fetchResilient(ctx, owner, key)
	switch {
	case err == nil:
		p, ierr := s.reg.InstallArtifact(r.Context(), srcID, dstID, blob)
		if ierr == nil {
			s.mPeerFetch.Inc()
			sp.SetAttr("cluster.via", "fetch")
			return p, false
		}
		// A blob this node cannot use (owner on a different build, say):
		// proxying still gets the client a verdict.
		s.mPeerErrors.Inc()
		s.logPeer(r, "artifact install failed, proxying", owner, ierr)
	case errors.Is(err, errPeerNotFound):
		// Owner is alive but has not compiled the pair; the proxied request
		// below makes it compile once for the whole cluster.
	case errors.Is(err, errBreakerOpen):
		// Refused locally, no packet sent: the fast path of an outage.
		return s.degradeServe(w, r, srcID, dstID, owner)
	default:
		// Owner unreachable after retries: the degradation policy decides.
		s.mPeerErrors.Inc()
		s.logPeer(r, "peer fetch failed", owner, err)
		return s.degradeServe(w, r, srcID, dstID, owner)
	}

	// Buffer the body (bounded by -max-doc-bytes) before proxying, so a
	// mid-flight proxy failure can rewind and fail over instead of dying
	// on a half-consumed body.
	body, rewindable := s.bufferBody(r)
	br := s.breakerFor(owner)
	if br != nil && !br.Allow() {
		// The owner's breaker opened between fetch and proxy.
		return s.degradeServe(w, r, srcID, dstID, owner)
	}
	s.mPeerForwards.Inc()
	sp.SetAttr("cluster.via", "proxy")
	perr := s.proxyToPeer(ctx, w, r, owner)
	if br != nil {
		br.Record(perr == nil)
	}
	if perr != nil {
		s.mPeerErrors.Inc()
		s.logPeer(r, "proxy failed", owner, perr)
		if rewindable {
			s.rewindBody(r, body)
			return s.degradeServe(w, r, srcID, dstID, owner)
		}
		// The streamed body is partially consumed; a local retry could
		// mis-validate, so report the failure instead.
		writeError(w, http.StatusBadGateway, "proxying to pair owner %s: %v", owner, perr)
	}
	return nil, true
}

// proxyToPeer replays the request against the owner under a client span
// and streams the response back. The loop-guard header makes the owner
// answer locally. The outbound request uses the routing context (request
// deadline included, so the client's budget and disconnect propagate to
// the peer call); its traceparent is overwritten with the proxy span's own
// context (the header clone carries the client's original value, which
// would make the owner's root span a sibling of ours instead of a child —
// the waterfall must read client → proxy hop → owner).
func (s *Server) proxyToPeer(ctx context.Context, w http.ResponseWriter, r *http.Request, owner string) error {
	sp := telemetry.SpanFromContext(r.Context()).StartChild("peer.proxy")
	sp.SetAttr("peer", owner)
	status, err := s.doProxy(ctx, w, r, sp, owner)
	if err != nil {
		sp.SetAttr("outcome", "error")
		sp.SetError(err.Error())
	} else {
		sp.SetAttr("outcome", "ok")
		sp.SetAttr("http.status", status)
	}
	sp.End()
	return err
}

func (s *Server) doProxy(ctx context.Context, w http.ResponseWriter, r *http.Request, sp *telemetry.Span, owner string) (int, error) {
	req, err := http.NewRequestWithContext(ctx, r.Method, owner+r.URL.RequestURI(), r.Body)
	if err != nil {
		return 0, err
	}
	if r.ContentLength >= 0 {
		req.ContentLength = r.ContentLength
	}
	req.Header = r.Header.Clone()
	req.Header.Set(forwardedHeader, "1")
	// Deadline propagation: hand the peer our remaining budget so its
	// -cast-timeout cannot restart the clock mid-chain.
	if dl, ok := ctx.Deadline(); ok {
		if ms := time.Until(dl).Milliseconds(); ms > 0 {
			req.Header.Set(deadlineHeader, strconv.FormatInt(ms, 10))
		}
	}
	if sc := sp.Context(); sc.IsValid() {
		req.Header.Set("traceparent", telemetry.FormatTraceparent(sc))
	}
	resp, err := s.cluster.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	h := w.Header()
	for k, vs := range resp.Header {
		if k == "Traceparent" {
			// The peer's inject would clobber this node's own response
			// header; the client should see the span it actually talked to.
			continue
		}
		for _, v := range vs {
			h.Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
	return resp.StatusCode, nil
}

func (s *Server) logPeer(r *http.Request, msg, owner string, err error) {
	if s.logger == nil {
		return
	}
	s.logger.LogAttrs(r.Context(), slog.LevelWarn, "cluster: "+msg,
		slog.String("peer", owner),
		slog.String("path", r.URL.Path),
		slog.String("error", err.Error()))
}
