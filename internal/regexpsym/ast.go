// Package regexpsym implements regular expressions whose atoms are XML
// element labels rather than characters. Content models of DTDs and XML
// Schemas compile through this package: an expression parses to an AST,
// the Glushkov (position) construction turns the AST into an NFA whose
// determinism coincides with 1-unambiguity — the XML Schema Unique Particle
// Attribution constraint (Brüggemann-Klein & Wood) — and subset
// construction plus Hopcroft minimization yield the DFA the revalidation
// algorithms run.
package regexpsym

import (
	"fmt"
	"strings"
)

// Unbounded marks an occurrence range with no upper limit (maxOccurs
// "unbounded").
const Unbounded = -1

// Node is a node of a symbolic regular expression AST.
type Node interface {
	// writeTo renders the node using DTD-style syntax.
	writeTo(b *strings.Builder, prec int)
}

// Epsilon matches only the empty label string (an EMPTY content model).
type Epsilon struct{}

// Sym matches exactly one element with the given label.
type Sym struct{ Name string }

// Seq matches the concatenation of its children, in order (DTD/XSD
// sequence).
type Seq struct{ Kids []Node }

// Alt matches any one of its children (DTD/XSD choice).
type Alt struct{ Kids []Node }

// Repeat matches between Min and Max occurrences of its child; Max may be
// Unbounded. `e?` is Repeat{e,0,1}, `e*` is Repeat{e,0,Unbounded}, `e+` is
// Repeat{e,1,Unbounded}.
type Repeat struct {
	Kid      Node
	Min, Max int
}

// Convenience constructors, used heavily by the schema compilers and tests.

// Lbl returns a single-label atom.
func Lbl(name string) Node { return Sym{Name: name} }

// Cat returns the sequence of kids, flattening nested sequences and
// simplifying the 0- and 1-child cases.
func Cat(kids ...Node) Node {
	flat := make([]Node, 0, len(kids))
	for _, k := range kids {
		if s, ok := k.(Seq); ok {
			flat = append(flat, s.Kids...)
			continue
		}
		if _, ok := k.(Epsilon); ok {
			continue
		}
		flat = append(flat, k)
	}
	switch len(flat) {
	case 0:
		return Epsilon{}
	case 1:
		return flat[0]
	}
	return Seq{Kids: flat}
}

// Or returns the choice of kids, flattening nested choices and simplifying
// the 1-child case.
func Or(kids ...Node) Node {
	flat := make([]Node, 0, len(kids))
	for _, k := range kids {
		if a, ok := k.(Alt); ok {
			flat = append(flat, a.Kids...)
			continue
		}
		flat = append(flat, k)
	}
	if len(flat) == 1 {
		return flat[0]
	}
	return Alt{Kids: flat}
}

// Opt returns kid? .
func Opt(kid Node) Node { return Repeat{Kid: kid, Min: 0, Max: 1} }

// Star returns kid* .
func Star(kid Node) Node { return Repeat{Kid: kid, Min: 0, Max: Unbounded} }

// Plus returns kid+ .
func Plus(kid Node) Node { return Repeat{Kid: kid, Min: 1, Max: Unbounded} }

// Bound returns kid{min,max}; max may be Unbounded.
func Bound(kid Node, min, max int) Node { return Repeat{Kid: kid, Min: min, Max: max} }

// String renders the expression in the syntax accepted by Parse.
func String(n Node) string {
	var b strings.Builder
	n.writeTo(&b, 0)
	return b.String()
}

// Precedence levels for rendering: alt < seq < postfix.
const (
	precAlt = iota
	precSeq
	precPostfix
)

func (Epsilon) writeTo(b *strings.Builder, prec int) { b.WriteString("EMPTY") }

func (s Sym) writeTo(b *strings.Builder, prec int) { b.WriteString(s.Name) }

func (s Seq) writeTo(b *strings.Builder, prec int) {
	parens := prec > precSeq
	if parens {
		b.WriteByte('(')
	}
	for i, k := range s.Kids {
		if i > 0 {
			b.WriteString(", ")
		}
		k.writeTo(b, precSeq+1)
	}
	if parens {
		b.WriteByte(')')
	}
}

func (a Alt) writeTo(b *strings.Builder, prec int) {
	parens := prec > precAlt
	if parens {
		b.WriteByte('(')
	}
	for i, k := range a.Kids {
		if i > 0 {
			b.WriteString(" | ")
		}
		k.writeTo(b, precAlt+1)
	}
	if parens {
		b.WriteByte(')')
	}
}

func (r Repeat) writeTo(b *strings.Builder, prec int) {
	r.Kid.writeTo(b, precPostfix)
	switch {
	case r.Min == 0 && r.Max == 1:
		b.WriteByte('?')
	case r.Min == 0 && r.Max == Unbounded:
		b.WriteByte('*')
	case r.Min == 1 && r.Max == Unbounded:
		b.WriteByte('+')
	case r.Max == Unbounded:
		fmt.Fprintf(b, "{%d,}", r.Min)
	case r.Min == r.Max:
		fmt.Fprintf(b, "{%d}", r.Min)
	default:
		fmt.Fprintf(b, "{%d,%d}", r.Min, r.Max)
	}
}

// Labels returns the set of distinct element labels used in the expression,
// in first-occurrence order. This is the paper's Σ_τ for a type's content
// model.
func Labels(n Node) []string {
	var out []string
	seen := map[string]bool{}
	var walk func(Node)
	walk = func(n Node) {
		switch t := n.(type) {
		case Epsilon:
		case Sym:
			if !seen[t.Name] {
				seen[t.Name] = true
				out = append(out, t.Name)
			}
		case Seq:
			for _, k := range t.Kids {
				walk(k)
			}
		case Alt:
			for _, k := range t.Kids {
				walk(k)
			}
		case Repeat:
			walk(t.Kid)
		default:
			panic(fmt.Sprintf("regexpsym: unknown node %T", n))
		}
	}
	walk(n)
	return out
}

// Nullable reports whether the expression matches the empty string.
func Nullable(n Node) bool {
	switch t := n.(type) {
	case Epsilon:
		return true
	case Sym:
		return false
	case Seq:
		for _, k := range t.Kids {
			if !Nullable(k) {
				return false
			}
		}
		return true
	case Alt:
		for _, k := range t.Kids {
			if Nullable(k) {
				return true
			}
		}
		return false
	case Repeat:
		return t.Min == 0 || Nullable(t.Kid)
	default:
		panic(fmt.Sprintf("regexpsym: unknown node %T", n))
	}
}
