package regexpsym

import (
	"fmt"

	"repro/internal/fa"
)

// Glushkov builds the position automaton of the expression: one state per
// label occurrence plus an initial state, no epsilon transitions. The
// Glushkov automaton is deterministic exactly when the expression is
// 1-unambiguous (Brüggemann-Klein & Wood 1998) — XML Schema's Unique
// Particle Attribution rule and the basis for the paper's observation that
// XML Schema content models correspond directly to DFAs.
//
// Occurrence bounds ({m,n}) are expanded into sequences of optional copies
// first; the determinism verdict for counted particles is therefore the
// verdict for the expanded expression.
//
// All labels of the expression are interned into alpha.
func Glushkov(n Node, alpha *fa.Alphabet) *fa.NFA {
	x := expand(n)
	g := &glushkov{alpha: alpha, follow: map[int][]int{}}
	info := g.analyze(x)

	nfa := fa.NewNFA(alpha.Size())
	// State 0 is the initial state; state p is position p (1-based).
	init := nfa.AddState(info.nullable)
	nfa.SetStart(init)
	for p := 1; p <= g.npos; p++ {
		nfa.AddState(false)
	}
	for _, p := range info.last {
		nfa.SetAccept(p, true)
	}
	for _, p := range info.first {
		nfa.AddTransition(init, g.symOf[p], p)
	}
	for p, succs := range g.follow {
		for _, q := range succs {
			nfa.AddTransition(p, g.symOf[q], q)
		}
	}
	return nfa
}

// IsOneUnambiguous reports whether the expression is 1-unambiguous (its
// Glushkov automaton is deterministic). XML Schema and DTD content models
// are required to satisfy this.
func IsOneUnambiguous(n Node) bool {
	alpha := fa.NewAlphabet()
	return fa.IsDeterministic(Glushkov(n, alpha))
}

// Compile compiles the expression to a minimal DFA over alpha. When the
// Glushkov automaton is already deterministic (the 1-unambiguous case,
// universal in schema practice) subset construction is skipped.
func Compile(n Node, alpha *fa.Alphabet) *fa.DFA {
	nfa := Glushkov(n, alpha)
	var dfa *fa.DFA
	if fa.IsDeterministic(nfa) {
		dfa = fa.FromNFA(nfa)
	} else {
		dfa = fa.Determinize(nfa)
	}
	return fa.Minimize(dfa)
}

// CompileUnminimized compiles without the minimization pass; benchmarks use
// it to measure minimization's contribution.
func CompileUnminimized(n Node, alpha *fa.Alphabet) *fa.DFA {
	nfa := Glushkov(n, alpha)
	if fa.IsDeterministic(nfa) {
		return fa.FromNFA(nfa).Trim()
	}
	return fa.Determinize(nfa).Trim()
}

// expand rewrites Repeat bounds into sequences of mandatory and optional
// copies so that only ?, * remain:
//
//	e{m,n}  →  e^m , (e (e (…)?)?)?   with n−m nested optionals
//	e{m,∞}  →  e^m , e*               (e+ → e e*)
func expand(n Node) Node {
	switch t := n.(type) {
	case Epsilon, Sym:
		return n
	case Seq:
		kids := make([]Node, len(t.Kids))
		for i, k := range t.Kids {
			kids[i] = expand(k)
		}
		return Seq{Kids: kids}
	case Alt:
		kids := make([]Node, len(t.Kids))
		for i, k := range t.Kids {
			kids[i] = expand(k)
		}
		return Alt{Kids: kids}
	case Repeat:
		kid := expand(t.Kid)
		switch {
		case t.Min == 0 && t.Max == 1:
			return Repeat{Kid: kid, Min: 0, Max: 1}
		case t.Min == 0 && t.Max == Unbounded:
			return Repeat{Kid: kid, Min: 0, Max: Unbounded}
		case t.Max == Unbounded:
			// e{m,∞} → e … e e*
			kids := make([]Node, 0, t.Min+1)
			for i := 0; i < t.Min; i++ {
				kids = append(kids, kid)
			}
			kids = append(kids, Repeat{Kid: kid, Min: 0, Max: Unbounded})
			return Seq{Kids: kids}
		default:
			// e{m,n} → e^m followed by n−m nested optionals.
			var opt Node
			for i := 0; i < t.Max-t.Min; i++ {
				if opt == nil {
					opt = Repeat{Kid: kid, Min: 0, Max: 1}
				} else {
					opt = Repeat{Kid: Seq{Kids: []Node{kid, opt}}, Min: 0, Max: 1}
				}
			}
			kids := make([]Node, 0, t.Min+1)
			for i := 0; i < t.Min; i++ {
				kids = append(kids, kid)
			}
			if opt != nil {
				kids = append(kids, opt)
			}
			if len(kids) == 0 {
				return Epsilon{}
			}
			if len(kids) == 1 {
				return kids[0]
			}
			return Seq{Kids: kids}
		}
	default:
		panic(fmt.Sprintf("regexpsym: unknown node %T", n))
	}
}

type glushkov struct {
	alpha  *fa.Alphabet
	npos   int
	symOf  map[int]fa.Symbol
	follow map[int][]int
}

type posInfo struct {
	nullable    bool
	first, last []int
}

func (g *glushkov) analyze(n Node) posInfo {
	switch t := n.(type) {
	case Epsilon:
		return posInfo{nullable: true}
	case Sym:
		g.npos++
		p := g.npos
		if g.symOf == nil {
			g.symOf = map[int]fa.Symbol{}
		}
		g.symOf[p] = g.alpha.Intern(t.Name)
		return posInfo{first: []int{p}, last: []int{p}}
	case Seq:
		cur := posInfo{nullable: true}
		// lastSoFar: positions whose follow set receives first(next kid).
		for _, k := range t.Kids {
			ki := g.analyze(k)
			for _, p := range cur.last {
				g.follow[p] = append(g.follow[p], ki.first...)
			}
			if cur.nullable {
				cur.first = append(cur.first, ki.first...)
			}
			if ki.nullable {
				cur.last = append(cur.last, ki.last...)
			} else {
				cur.last = append([]int(nil), ki.last...)
			}
			cur.nullable = cur.nullable && ki.nullable
		}
		return cur
	case Alt:
		var cur posInfo
		for _, k := range t.Kids {
			ki := g.analyze(k)
			cur.nullable = cur.nullable || ki.nullable
			cur.first = append(cur.first, ki.first...)
			cur.last = append(cur.last, ki.last...)
		}
		return cur
	case Repeat:
		ki := g.analyze(t.Kid)
		switch {
		case t.Min == 0 && t.Max == 1: // e?
			ki.nullable = true
			return ki
		case t.Min == 0 && t.Max == Unbounded: // e*
			for _, p := range ki.last {
				g.follow[p] = append(g.follow[p], ki.first...)
			}
			ki.nullable = true
			return ki
		default:
			panic("regexpsym: unexpanded Repeat reached Glushkov analysis")
		}
	default:
		panic(fmt.Sprintf("regexpsym: unknown node %T", n))
	}
}
