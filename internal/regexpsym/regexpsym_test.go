package regexpsym

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/fa"
)

func words(alpha []string, maxLen int, fn func([]string)) {
	var rec func(prefix []string)
	rec = func(prefix []string) {
		fn(prefix)
		if len(prefix) == maxLen {
			return
		}
		for _, a := range alpha {
			rec(append(prefix, a))
		}
	}
	rec(nil)
}

func toSymbols(alpha *fa.Alphabet, w []string) []fa.Symbol {
	out := make([]fa.Symbol, len(w))
	for i, l := range w {
		s := alpha.Lookup(l)
		if s == fa.NoSymbol {
			s = alpha.Intern(l)
		}
		out[i] = s
	}
	return out
}

// checkCompiled asserts that the compiled DFA agrees with the reference
// matcher on all words over alpha up to maxLen.
func checkCompiled(t *testing.T, src string, alpha []string, maxLen int) {
	t.Helper()
	n := MustParse(src)
	ab := fa.NewAlphabet()
	for _, l := range alpha {
		ab.Intern(l)
	}
	d := Compile(n, ab)
	words(alpha, maxLen, func(w []string) {
		want := refMatch(n, w)
		got := d.Accepts(toSymbols(ab, w))
		if got != want {
			t.Fatalf("%s on %v: DFA=%v ref=%v", src, w, got, want)
		}
	})
}

func TestParseAndCompileBasics(t *testing.T) {
	cases := []string{
		"a",
		"EMPTY",
		"a, b",
		"a | b",
		"a?",
		"a*",
		"a+",
		"(a, b) | c",
		"(a | b)*, c",
		"a{2,4}",
		"a{3}",
		"a{2,}",
		"(a, b?){1,2}",
		"(shipTo, billTo?, items)",
		"(a | (b, c))+",
	}
	for _, src := range cases {
		checkCompiled(t, src, []string{"a", "b", "c", "shipTo", "billTo", "items"}[:3], 5)
	}
}

func TestParsePurchaseOrderModel(t *testing.T) {
	checkCompiled(t, "(shipTo, billTo?, items)",
		[]string{"shipTo", "billTo", "items"}, 4)
	checkCompiled(t, "(shipTo, billTo, items)",
		[]string{"shipTo", "billTo", "items"}, 4)
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"(a",
		"a)",
		"a,,b",
		"a |",
		"| a",
		"a{2,1}",
		"a{",
		"a{x}",
		"a{1,2",
		"?",
		"a b", // juxtaposition without comma
		"a, 3",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	cases := []string{
		"a",
		"EMPTY",
		"a, b, c",
		"a | b | c",
		"a?",
		"a*",
		"a+",
		"a{2,4}",
		"a{3}",
		"a{2,}",
		"(a | b)*, c",
		"(a, b) | c",
	}
	for _, src := range cases {
		n := MustParse(src)
		rendered := String(n)
		n2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("re-parse of %q (from %q) failed: %v", rendered, src, err)
		}
		// Languages must coincide.
		ab := fa.NewAlphabet()
		d1 := Compile(n, ab)
		d2 := Compile(n2, ab)
		if !fa.Equivalent(d1, d2) {
			t.Fatalf("round-trip changed language: %q -> %q", src, rendered)
		}
	}
}

func TestLabels(t *testing.T) {
	n := MustParse("(shipTo, billTo?, items, shipTo)")
	got := Labels(n)
	want := []string{"shipTo", "billTo", "items"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("Labels = %v, want %v", got, want)
	}
	if len(Labels(Epsilon{})) != 0 {
		t.Fatal("EMPTY has no labels")
	}
}

func TestNullable(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{"EMPTY", true},
		{"a", false},
		{"a?", true},
		{"a*", true},
		{"a+", false},
		{"a, b?", false},
		{"a?, b?", true},
		{"a | b?", true},
		{"a{0,3}", true},
		{"a{1,3}", false},
	}
	for _, c := range cases {
		if got := Nullable(MustParse(c.src)); got != c.want {
			t.Errorf("Nullable(%q) = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestIsOneUnambiguous(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{"(shipTo, billTo?, items)", true},
		{"(a | b)*", true},
		{"(a, b) | (a, c)", false}, // classic 1-ambiguity
		{"(a?, a)", false},         // a could be first or second position
		{"a*, a", false},           // ambiguous
		{"(b, a) | (c, a)", true},  // distinct first symbols
		{"a, (b | c), d", true},
	}
	for _, c := range cases {
		if got := IsOneUnambiguous(MustParse(c.src)); got != c.want {
			t.Errorf("IsOneUnambiguous(%q) = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestGlushkovVsThompson(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	labels := []string{"a", "b", "c"}
	for i := 0; i < 120; i++ {
		n := randExpr(rng, 3, labels)
		a1 := fa.NewAlphabet()
		for _, l := range labels {
			a1.Intern(l)
		}
		d1 := Compile(n, a1)
		d2 := CompileThompson(n, a1)
		if !fa.Equivalent(d1, d2) {
			t.Fatalf("iter %d: Glushkov and Thompson disagree on %s", i, String(n))
		}
	}
}

func TestCompileMatchesReferenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	labels := []string{"a", "b"}
	for i := 0; i < 80; i++ {
		n := randExpr(rng, 3, labels)
		ab := fa.NewAlphabet()
		for _, l := range labels {
			ab.Intern(l)
		}
		d := Compile(n, ab)
		words(labels, 5, func(w []string) {
			want := refMatch(n, w)
			got := d.Accepts(toSymbols(ab, w))
			if got != want {
				t.Fatalf("iter %d expr %s on %v: DFA=%v ref=%v",
					i, String(n), w, got, want)
			}
		})
	}
}

func TestCompileUnminimizedEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	labels := []string{"a", "b"}
	for i := 0; i < 40; i++ {
		n := randExpr(rng, 3, labels)
		ab := fa.NewAlphabet()
		d1 := Compile(n, ab)
		d2 := CompileUnminimized(n, ab)
		if !fa.Equivalent(d1, d2) {
			t.Fatalf("iter %d: minimized and unminimized differ on %s", i, String(n))
		}
		if d1.NumStates() > d2.NumStates() {
			t.Fatalf("iter %d: minimization grew the automaton", i)
		}
	}
}

func TestOccurrenceBoundExpansion(t *testing.T) {
	// a{2,4}: exactly 2..4 a's.
	ab := fa.NewAlphabet()
	d := Compile(MustParse("a{2,4}"), ab)
	sym := ab.Lookup("a")
	for count := 0; count <= 6; count++ {
		w := make([]fa.Symbol, count)
		for i := range w {
			w[i] = sym
		}
		want := count >= 2 && count <= 4
		if d.Accepts(w) != want {
			t.Fatalf("a{2,4} on %d a's: got %v want %v", count, d.Accepts(w), want)
		}
	}
}

func TestOccurrenceUnboundedMin(t *testing.T) {
	ab := fa.NewAlphabet()
	d := Compile(MustParse("a{3,}"), ab)
	sym := ab.Lookup("a")
	for count := 0; count <= 7; count++ {
		w := make([]fa.Symbol, count)
		for i := range w {
			w[i] = sym
		}
		want := count >= 3
		if d.Accepts(w) != want {
			t.Fatalf("a{3,} on %d a's: got %v want %v", count, d.Accepts(w), want)
		}
	}
}

func TestConstructorHelpers(t *testing.T) {
	// Cat flattens and drops Epsilon.
	n := Cat(Lbl("a"), Cat(Lbl("b"), Lbl("c")), Epsilon{})
	if String(n) != "a, b, c" {
		t.Fatalf("Cat render = %q", String(n))
	}
	if _, ok := Cat().(Epsilon); !ok {
		t.Fatal("empty Cat should be Epsilon")
	}
	if String(Cat(Lbl("x"))) != "x" {
		t.Fatal("singleton Cat should unwrap")
	}
	n = Or(Lbl("a"), Or(Lbl("b"), Lbl("c")))
	if String(n) != "a | b | c" {
		t.Fatalf("Or render = %q", String(n))
	}
	if String(Opt(Lbl("a"))) != "a?" || String(Star(Lbl("a"))) != "a*" ||
		String(Plus(Lbl("a"))) != "a+" {
		t.Fatal("postfix constructors render wrong")
	}
	if String(Bound(Lbl("a"), 2, Unbounded)) != "a{2,}" {
		t.Fatal("Bound render wrong")
	}
	if String(Bound(Lbl("a"), 2, 2)) != "a{2}" {
		t.Fatal("exact Bound render wrong")
	}
}

func TestValidName(t *testing.T) {
	good := []string{"a", "shipTo", "xsd:element", "_x", "a-b.c", "日本"}
	for _, g := range good {
		if !ValidName(g) {
			t.Errorf("ValidName(%q) should be true", g)
		}
	}
	bad := []string{"", "1a", "-a", ".a", "a b", "a\tb"}
	for _, b := range bad {
		if ValidName(b) {
			t.Errorf("ValidName(%q) should be false", b)
		}
	}
}

// randExpr generates a random expression of bounded depth.
func randExpr(rng *rand.Rand, depth int, labels []string) Node {
	if depth == 0 || rng.Intn(4) == 0 {
		if rng.Intn(8) == 0 {
			return Epsilon{}
		}
		return Lbl(labels[rng.Intn(len(labels))])
	}
	switch rng.Intn(6) {
	case 0:
		return Cat(randExpr(rng, depth-1, labels), randExpr(rng, depth-1, labels))
	case 1:
		return Or(randExpr(rng, depth-1, labels), randExpr(rng, depth-1, labels))
	case 2:
		return Opt(randExpr(rng, depth-1, labels))
	case 3:
		return Star(randExpr(rng, depth-1, labels))
	case 4:
		return Plus(randExpr(rng, depth-1, labels))
	default:
		min := rng.Intn(3)
		max := min + rng.Intn(3)
		if rng.Intn(3) == 0 {
			return Bound(randExpr(rng, depth-1, labels), min, Unbounded)
		}
		return Bound(randExpr(rng, depth-1, labels), min, max)
	}
}
