package regexpsym

import (
	"fmt"

	"repro/internal/fa"
)

// Thompson builds an epsilon-NFA for the expression using the classic
// Thompson construction. It is an implementation independent of Glushkov
// and exists primarily so the two constructions can cross-validate each
// other in tests; production compilation uses Glushkov (no epsilons, and
// its determinism doubles as the 1-unambiguity check).
func Thompson(n Node, alpha *fa.Alphabet) *fa.NFA {
	nfa := fa.NewNFA(alphaSizeAfterIntern(n, alpha))
	start, end := thompson(n, alpha, nfa)
	nfa.SetStart(start)
	nfa.SetAccept(end, true)
	return nfa
}

// alphaSizeAfterIntern interns every label of n and returns the resulting
// alphabet size, so the NFA is sized correctly even when n introduces new
// labels.
func alphaSizeAfterIntern(n Node, alpha *fa.Alphabet) int {
	for _, l := range Labels(n) {
		alpha.Intern(l)
	}
	return alpha.Size()
}

// thompson returns fresh (start, end) states for a sub-automaton matching n.
func thompson(n Node, alpha *fa.Alphabet, nfa *fa.NFA) (int, int) {
	switch t := n.(type) {
	case Epsilon:
		s := nfa.AddState(false)
		e := nfa.AddState(false)
		nfa.AddEpsilon(s, e)
		return s, e
	case Sym:
		s := nfa.AddState(false)
		e := nfa.AddState(false)
		nfa.AddTransition(s, alpha.Intern(t.Name), e)
		return s, e
	case Seq:
		if len(t.Kids) == 0 {
			return thompson(Epsilon{}, alpha, nfa)
		}
		s, e := thompson(t.Kids[0], alpha, nfa)
		for _, k := range t.Kids[1:] {
			ks, ke := thompson(k, alpha, nfa)
			nfa.AddEpsilon(e, ks)
			e = ke
		}
		return s, e
	case Alt:
		s := nfa.AddState(false)
		e := nfa.AddState(false)
		for _, k := range t.Kids {
			ks, ke := thompson(k, alpha, nfa)
			nfa.AddEpsilon(s, ks)
			nfa.AddEpsilon(ke, e)
		}
		return s, e
	case Repeat:
		x := expand(Repeat{Kid: t.Kid, Min: t.Min, Max: t.Max})
		if r, ok := x.(Repeat); ok {
			// Only ?, * survive expansion.
			ks, ke := thompson(r.Kid, alpha, nfa)
			s := nfa.AddState(false)
			e := nfa.AddState(false)
			nfa.AddEpsilon(s, ks)
			nfa.AddEpsilon(ke, e)
			nfa.AddEpsilon(s, e) // skip (both ? and *)
			if r.Max == Unbounded {
				nfa.AddEpsilon(ke, ks) // loop
			}
			return s, e
		}
		return thompson(x, alpha, nfa)
	default:
		panic(fmt.Sprintf("regexpsym: unknown node %T", n))
	}
}

// CompileThompson compiles via the Thompson construction, determinization
// and minimization. Semantically identical to Compile; used for
// cross-validation and benchmarks.
func CompileThompson(n Node, alpha *fa.Alphabet) *fa.DFA {
	return fa.Minimize(fa.Determinize(Thompson(n, alpha)))
}
