package regexpsym

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse parses a symbolic regular expression in DTD-flavoured syntax:
//
//	alt     := seq ( '|' seq )*
//	seq     := postfix ( ',' postfix )*
//	postfix := primary ( '?' | '*' | '+' | '{' n ( ',' n? )? '}' )*
//	primary := NAME | 'EMPTY' | '(' alt ')'
//
// NAME is an XML name (letters, digits, '.', '-', '_', ':', not starting
// with a digit, '.' or '-'). 'EMPTY' denotes the empty-string expression.
// Whitespace is insignificant.
func Parse(src string) (Node, error) {
	p := &parser{src: src}
	p.skipSpace()
	if p.eof() {
		return nil, p.errorf("empty expression")
	}
	n, err := p.alt()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if !p.eof() {
		return nil, p.errorf("unexpected %q", p.rest())
	}
	return n, nil
}

// MustParse is Parse that panics on error; for tests and literals.
func MustParse(src string) Node {
	n, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return n
}

type parser struct {
	src string
	pos int
}

func (p *parser) eof() bool    { return p.pos >= len(p.src) }
func (p *parser) peek() byte   { return p.src[p.pos] }
func (p *parser) rest() string { return p.src[p.pos:] }
func (p *parser) advance()     { p.pos++ }
func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("regexpsym: parse error at offset %d: %s", p.pos, fmt.Sprintf(format, args...))
}

func (p *parser) skipSpace() {
	for !p.eof() {
		switch p.peek() {
		case ' ', '\t', '\n', '\r':
			p.advance()
		default:
			return
		}
	}
}

func (p *parser) alt() (Node, error) {
	first, err := p.seq()
	if err != nil {
		return nil, err
	}
	kids := []Node{first}
	for {
		p.skipSpace()
		if p.eof() || p.peek() != '|' {
			break
		}
		p.advance()
		k, err := p.seq()
		if err != nil {
			return nil, err
		}
		kids = append(kids, k)
	}
	if len(kids) == 1 {
		return kids[0], nil
	}
	return Alt{Kids: kids}, nil
}

func (p *parser) seq() (Node, error) {
	first, err := p.postfix()
	if err != nil {
		return nil, err
	}
	kids := []Node{first}
	for {
		p.skipSpace()
		if p.eof() || p.peek() != ',' {
			break
		}
		p.advance()
		k, err := p.postfix()
		if err != nil {
			return nil, err
		}
		kids = append(kids, k)
	}
	if len(kids) == 1 {
		return kids[0], nil
	}
	return Seq{Kids: kids}, nil
}

func (p *parser) postfix() (Node, error) {
	n, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		if p.eof() {
			return n, nil
		}
		switch p.peek() {
		case '?':
			p.advance()
			n = Opt(n)
		case '*':
			p.advance()
			n = Star(n)
		case '+':
			p.advance()
			n = Plus(n)
		case '{':
			p.advance()
			min, max, err := p.bounds()
			if err != nil {
				return nil, err
			}
			n = Bound(n, min, max)
		default:
			return n, nil
		}
	}
}

// bounds parses "n}", "n,}" or "n,m}" after the opening brace.
func (p *parser) bounds() (min, max int, err error) {
	p.skipSpace()
	min, err = p.number()
	if err != nil {
		return 0, 0, err
	}
	p.skipSpace()
	if p.eof() {
		return 0, 0, p.errorf("unterminated occurrence bound")
	}
	switch p.peek() {
	case '}':
		p.advance()
		return min, min, nil
	case ',':
		p.advance()
		p.skipSpace()
		if p.eof() {
			return 0, 0, p.errorf("unterminated occurrence bound")
		}
		if p.peek() == '}' {
			p.advance()
			return min, Unbounded, nil
		}
		max, err = p.number()
		if err != nil {
			return 0, 0, err
		}
		p.skipSpace()
		if p.eof() || p.peek() != '}' {
			return 0, 0, p.errorf("expected '}' in occurrence bound")
		}
		p.advance()
		if max < min {
			return 0, 0, p.errorf("occurrence bound {%d,%d} has max < min", min, max)
		}
		return min, max, nil
	default:
		return 0, 0, p.errorf("expected ',' or '}' in occurrence bound")
	}
}

func (p *parser) number() (int, error) {
	start := p.pos
	for !p.eof() && p.peek() >= '0' && p.peek() <= '9' {
		p.advance()
	}
	if start == p.pos {
		return 0, p.errorf("expected number")
	}
	n, err := strconv.Atoi(p.src[start:p.pos])
	if err != nil {
		return 0, p.errorf("bad number %q", p.src[start:p.pos])
	}
	return n, nil
}

func (p *parser) primary() (Node, error) {
	p.skipSpace()
	if p.eof() {
		return nil, p.errorf("unexpected end of expression")
	}
	if p.peek() == '(' {
		p.advance()
		n, err := p.alt()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.eof() || p.peek() != ')' {
			return nil, p.errorf("missing ')'")
		}
		p.advance()
		return n, nil
	}
	name, err := p.name()
	if err != nil {
		return nil, err
	}
	if name == "EMPTY" {
		return Epsilon{}, nil
	}
	return Sym{Name: name}, nil
}

func (p *parser) name() (string, error) {
	start := p.pos
	if p.eof() || !isNameStart(rune(p.peek())) {
		return "", p.errorf("expected element name")
	}
	for !p.eof() && isNameChar(rune(p.peek())) {
		p.advance()
	}
	return p.src[start:p.pos], nil
}

// isNameStart reports whether r can begin an XML name. The full XML 1.0
// production also admits a large set of Unicode ranges; letters and '_'
// and ':' cover schema practice, and we additionally accept any Unicode
// letter.
func isNameStart(r rune) bool {
	return r == '_' || r == ':' || unicode.IsLetter(r)
}

func isNameChar(r rune) bool {
	return isNameStart(r) || r == '-' || r == '.' || unicode.IsDigit(r)
}

// ValidName reports whether s is a lexically valid XML element name for the
// purposes of this library.
func ValidName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		if i == 0 && !isNameStart(r) {
			return false
		}
		if i > 0 && !isNameChar(r) {
			return false
		}
	}
	return !strings.ContainsAny(s, " \t\r\n")
}
