package regexpsym

// Test-only reference matcher: a direct recursive implementation of the
// regular-expression semantics, independent of both the Glushkov and
// Thompson constructions, used as the oracle in cross-validation tests.

// matchEnds returns the set of end indices j such that word[start:j]
// matches n. The result is a bitmask over indices 0..len(word).
func matchEnds(n Node, word []string, start int) map[int]bool {
	out := map[int]bool{}
	switch t := n.(type) {
	case Epsilon:
		out[start] = true
	case Sym:
		if start < len(word) && word[start] == t.Name {
			out[start+1] = true
		}
	case Seq:
		cur := map[int]bool{start: true}
		for _, k := range t.Kids {
			next := map[int]bool{}
			for p := range cur {
				for q := range matchEnds(k, word, p) {
					next[q] = true
				}
			}
			cur = next
			if len(cur) == 0 {
				break
			}
		}
		out = cur
	case Alt:
		for _, k := range t.Kids {
			for q := range matchEnds(k, word, start) {
				out[q] = true
			}
		}
	case Repeat:
		// Explore (endpoint, repetitions) pairs. When the kid is nullable,
		// ε-repetitions can pad any count up to Min, so Min is effectively
		// satisfied by any repetition count; with unbounded Max the count
		// saturates at Min (higher counts are indistinguishable). ε-moves
		// (q == p) are skipped: they never reach new endpoints and Min
		// padding is handled by the nullability rule.
		minAlways := t.Min == 0 || Nullable(t.Kid)
		type cfg struct{ end, reps int }
		seen := map[cfg]bool{}
		var rec func(p, reps int)
		rec = func(p, reps int) {
			if minAlways || reps >= t.Min {
				out[p] = true
			}
			if t.Max != Unbounded && reps >= t.Max {
				return
			}
			next := reps + 1
			if t.Max == Unbounded && next > t.Min {
				next = t.Min // saturate
				if next < 1 {
					next = 1
				}
			}
			for q := range matchEnds(t.Kid, word, p) {
				if q == p {
					continue
				}
				c := cfg{q, next}
				if !seen[c] {
					seen[c] = true
					rec(q, next)
				}
			}
		}
		rec(start, 0)
	}
	return out
}

// refMatch reports whether word matches n under the reference semantics.
func refMatch(n Node, word []string) bool {
	return matchEnds(n, word, 0)[len(word)]
}
