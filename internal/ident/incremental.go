package ident

import (
	"repro/internal/update"
	"repro/internal/xmltree"
)

// Index caches per-scope tuple tables so that re-checking after an edit
// session only re-evaluates constraints whose scope subtree was modified —
// the incremental treatment of key constraints the paper lists as ongoing
// work (§7).
type Index struct {
	v *Validator
	// cache maps scope element → its evaluated tables (one per constraint
	// attached to that scope's label).
	cache map[*xmltree.Node][]*tupleTable
}

// BuildIndex evaluates all constraints over the document and caches the
// per-scope results. The document must currently satisfy the constraints
// (an error is returned otherwise).
func (v *Validator) BuildIndex(doc *xmltree.Node) (*Index, error) {
	tables, err := v.collect(doc, nil, nil)
	if err != nil {
		return nil, err
	}
	if err := v.checkRefs(tables); err != nil {
		return nil, err
	}
	idx := &Index{v: v, cache: map[*xmltree.Node][]*tupleTable{}}
	for _, tbls := range tables {
		for _, tbl := range tbls {
			idx.cache[tbl.scope] = append(idx.cache[tbl.scope], tbl)
		}
	}
	return idx, nil
}

// ValidateModified re-checks the constraints after an edit session: scopes
// whose subtree the trie reports unmodified reuse their cached tuples;
// modified scopes are re-evaluated (and the keyref cross-checks always run,
// since they combine tables). On success the index is updated in place so
// further edit sessions can build on it.
func (idx *Index) ValidateModified(doc *xmltree.Node, trie *update.Trie) error {
	// Per-node modification lookup via Dewey paths. The trie gives O(depth)
	// navigation; cache per-node answers during this pass.
	memo := map[*xmltree.Node]*update.Trie{}
	var trieAt func(n *xmltree.Node) *update.Trie
	trieAt = func(n *xmltree.Node) *update.Trie {
		if n.Parent == nil {
			return trie
		}
		if t, ok := memo[n]; ok {
			return t
		}
		t := trieAt(n.Parent).Child(n.Parent.ChildIndex(n))
		memo[n] = t
		return t
	}
	modified := func(n *xmltree.Node) bool {
		return trieAt(n).Modified() || n.Delta != xmltree.DeltaNone
	}

	tables, err := idx.v.collect(doc, idx.cache, modified)
	if err != nil {
		return err
	}
	if err := idx.v.checkRefs(tables); err != nil {
		return err
	}
	// Refresh the cache with the new tables.
	fresh := map[*xmltree.Node][]*tupleTable{}
	for _, tbls := range tables {
		for _, tbl := range tbls {
			fresh[tbl.scope] = append(fresh[tbl.scope], tbl)
		}
	}
	idx.cache = fresh
	return nil
}

// Scopes returns the number of cached scope elements (diagnostics).
func (idx *Index) Scopes() int { return len(idx.cache) }
