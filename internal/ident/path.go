// Package ident implements XML Schema identity constraints — xs:unique,
// xs:key and xs:keyref — over the ordered-tree model, including incremental
// re-checking after edits. The paper excludes identity constraints from its
// formalism and names them as the extension under development (§7); this
// package supplies that extension: constraints are evaluated per scope
// element, scopes untouched by an edit session reuse their cached tuples,
// and only modified scopes are re-collected.
package ident

import (
	"fmt"
	"strings"

	"repro/internal/xmltree"
)

// Path is a parsed restricted XPath, the subset XML Schema allows in
// selector/field expressions:
//
//	path   ::= alt ( '|' alt )*
//	alt    ::= ('.//')? step ('/' step)*
//	step   ::= NCName | '*' | '.'
//	(a field's final step may instead be '@' NCName)
//
// No predicates, axes or functions — exactly the XSD "restricted XPath".
type Path struct {
	src  string
	alts []pathAlt
}

type pathAlt struct {
	descend bool // leading .//
	steps   []pathStep
}

type pathStep struct {
	label string // "*" matches any element; "." stays put
	attr  string // non-empty: attribute step (must be last; fields only)
}

// ParseSelector parses a selector path (element steps only).
func ParseSelector(src string) (*Path, error) {
	return parse(src, false)
}

// ParseField parses a field path (the last step may be an attribute).
func ParseField(src string) (*Path, error) {
	return parse(src, true)
}

func parse(src string, allowAttr bool) (*Path, error) {
	p := &Path{src: src}
	for _, altSrc := range strings.Split(src, "|") {
		altSrc = strings.TrimSpace(altSrc)
		if altSrc == "" {
			return nil, fmt.Errorf("ident: empty path alternative in %q", src)
		}
		var alt pathAlt
		if strings.HasPrefix(altSrc, ".//") {
			alt.descend = true
			altSrc = altSrc[3:]
		}
		if altSrc == "" {
			return nil, fmt.Errorf("ident: %q: './/' must be followed by steps", src)
		}
		for i, stepSrc := range strings.Split(altSrc, "/") {
			stepSrc = strings.TrimSpace(stepSrc)
			if stepSrc == "" {
				return nil, fmt.Errorf("ident: empty step in %q", src)
			}
			var step pathStep
			switch {
			case strings.HasPrefix(stepSrc, "@"):
				if !allowAttr {
					return nil, fmt.Errorf("ident: attribute step %q not allowed in a selector", stepSrc)
				}
				step.attr = stripNSPrefix(stepSrc[1:])
				if step.attr == "" {
					return nil, fmt.Errorf("ident: bad attribute step in %q", src)
				}
			case stepSrc == "." || stepSrc == "*":
				step.label = stepSrc
			default:
				step.label = stripNSPrefix(stepSrc)
				if !validNCName(step.label) {
					return nil, fmt.Errorf("ident: bad step %q in %q", stepSrc, src)
				}
			}
			alt.steps = append(alt.steps, step)
			if step.attr != "" && i != len(strings.Split(altSrc, "/"))-1 {
				return nil, fmt.Errorf("ident: attribute step must be last in %q", src)
			}
		}
		p.alts = append(p.alts, alt)
	}
	return p, nil
}

// String returns the original path text.
func (p *Path) String() string { return p.src }

// SelectElements returns the elements the path selects from scope, in
// document order (attribute steps are rejected — use EvaluateField).
// Tombstoned (deleted) nodes are invisible.
func (p *Path) SelectElements(scope *xmltree.Node) []*xmltree.Node {
	var out []*xmltree.Node
	seen := map[*xmltree.Node]bool{}
	for _, alt := range p.alts {
		for _, n := range alt.selectFrom(scope) {
			if !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
		}
	}
	return out
}

func (alt pathAlt) selectFrom(scope *xmltree.Node) []*xmltree.Node {
	cur := []*xmltree.Node{scope}
	if alt.descend {
		cur = nil
		scope.Walk(func(n *xmltree.Node) bool {
			if n.Delta == xmltree.DeltaDelete {
				return false
			}
			if !n.IsText() {
				cur = append(cur, n)
			}
			return true
		})
	}
	for _, step := range alt.steps {
		if step.attr != "" {
			return nil // attribute steps select no elements
		}
		if step.label == "." {
			continue
		}
		var next []*xmltree.Node
		for _, n := range cur {
			for _, c := range n.Children {
				if c.IsText() || c.Delta == xmltree.DeltaDelete {
					continue
				}
				if step.label == "*" || c.Label == step.label {
					next = append(next, c)
				}
			}
		}
		cur = next
	}
	return cur
}

// FieldValue evaluates a field path from a selected node. ok=false when the
// field resolves to nothing; an error is returned when it resolves to more
// than one node (the XSD cardinality rule).
func (p *Path) FieldValue(from *xmltree.Node) (value string, ok bool, err error) {
	var values []string
	for _, alt := range p.alts {
		last := alt.steps[len(alt.steps)-1]
		if last.attr != "" {
			// Element steps up to the attribute, then the attribute itself.
			elemAlt := pathAlt{descend: alt.descend, steps: alt.steps[:len(alt.steps)-1]}
			targets := []*xmltree.Node{from}
			if len(elemAlt.steps) > 0 || elemAlt.descend {
				targets = elemAlt.selectFrom(from)
			}
			for _, n := range targets {
				if v, has := n.AttrValue(last.attr); has {
					values = append(values, v)
				}
			}
			continue
		}
		for _, n := range alt.selectFrom(from) {
			values = append(values, simpleContent(n))
		}
	}
	switch len(values) {
	case 0:
		return "", false, nil
	case 1:
		return values[0], true, nil
	default:
		return "", false, fmt.Errorf("ident: field %q selects %d nodes (must be at most one)", p.src, len(values))
	}
}

// simpleContent returns the concatenated live text of an element.
func simpleContent(n *xmltree.Node) string {
	var b strings.Builder
	n.Walk(func(c *xmltree.Node) bool {
		if c.Delta == xmltree.DeltaDelete {
			return false
		}
		if c.IsText() {
			b.WriteString(c.Text)
		}
		return true
	})
	return b.String()
}

func stripNSPrefix(s string) string {
	if i := strings.LastIndexByte(s, ':'); i >= 0 {
		return s[i+1:]
	}
	return s
}

func validNCName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r > 127
		digit := r >= '0' && r <= '9'
		if i == 0 && !alpha {
			return false
		}
		if !alpha && !digit && r != '-' && r != '.' {
			return false
		}
	}
	return true
}
