package ident

import (
	"strings"
	"testing"

	"repro/internal/update"
	"repro/internal/xmltree"
)

func mustSelector(t *testing.T, src string) *Path {
	t.Helper()
	p, err := ParseSelector(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func mustField(t *testing.T, src string) *Path {
	t.Helper()
	p, err := ParseField(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func catalogDoc() *xmltree.Node {
	return xmltree.MustParseString(`
	<catalog>
	  <items>
	    <item sku="A1"><name>Widget</name><price>5</price></item>
	    <item sku="B2"><name>Gadget</name><price>7</price></item>
	    <item sku="C3"><name>Sprocket</name><price>9</price></item>
	  </items>
	  <orders>
	    <order ref="A1"/>
	    <order ref="C3"/>
	  </orders>
	</catalog>`)
}

func catalogValidator(t *testing.T) *Validator {
	t.Helper()
	v, err := NewValidator([]*Constraint{
		{
			Kind: Key, Name: "skuKey", ScopeLabel: "catalog",
			Selector: mustSelector(t, "items/item"),
			Fields:   []*Path{mustField(t, "@sku")},
		},
		{
			Kind: KeyRef, Name: "orderRef", Refer: "skuKey", ScopeLabel: "catalog",
			Selector: mustSelector(t, "orders/order"),
			Fields:   []*Path{mustField(t, "@ref")},
		},
		{
			Kind: Unique, Name: "uniqueNames", ScopeLabel: "catalog",
			Selector: mustSelector(t, ".//item"),
			Fields:   []*Path{mustField(t, "name")},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestPathParsing(t *testing.T) {
	good := []string{"a", "a/b", ".//a", ".//a/b", "*", "./a", "a|b", "a/b | c"}
	for _, src := range good {
		if _, err := ParseSelector(src); err != nil {
			t.Errorf("ParseSelector(%q): %v", src, err)
		}
	}
	if _, err := ParseField("@id"); err != nil {
		t.Errorf("ParseField(@id): %v", err)
	}
	if _, err := ParseField("a/@id"); err != nil {
		t.Errorf("ParseField(a/@id): %v", err)
	}
	bad := []struct{ src, want string }{
		{"", "empty"},
		{"a//b", "empty step"},
		{"a|", "empty"},
		{".//", "followed by steps"},
		{"@id/a", "must be last"},
		{"a[1]", "bad step"},
	}
	for _, c := range bad {
		if _, err := ParseField(c.src); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("ParseField(%q) = %v, want error containing %q", c.src, err, c.want)
		}
	}
	if _, err := ParseSelector("@id"); err == nil {
		t.Error("attribute step in selector must fail")
	}
}

func TestSelectElements(t *testing.T) {
	doc := catalogDoc()
	items := mustSelector(t, "items/item").SelectElements(doc)
	if len(items) != 3 || items[0].Label != "item" {
		t.Fatalf("items/item selected %d nodes", len(items))
	}
	all := mustSelector(t, ".//item").SelectElements(doc)
	if len(all) != 3 {
		t.Fatalf(".//item selected %d nodes", len(all))
	}
	star := mustSelector(t, "*").SelectElements(doc)
	if len(star) != 2 { // items, orders
		t.Fatalf("* selected %d nodes", len(star))
	}
	union := mustSelector(t, "items/item|orders/order").SelectElements(doc)
	if len(union) != 5 {
		t.Fatalf("union selected %d nodes", len(union))
	}
	dot := mustSelector(t, ".").SelectElements(doc)
	if len(dot) != 1 || dot[0] != doc {
		t.Fatal(". should select the scope itself")
	}
}

func TestFieldValue(t *testing.T) {
	doc := catalogDoc()
	item := mustSelector(t, "items/item").SelectElements(doc)[0]
	v, ok, err := mustField(t, "@sku").FieldValue(item)
	if err != nil || !ok || v != "A1" {
		t.Fatalf("@sku = %q,%v,%v", v, ok, err)
	}
	v, ok, err = mustField(t, "name").FieldValue(item)
	if err != nil || !ok || v != "Widget" {
		t.Fatalf("name = %q,%v,%v", v, ok, err)
	}
	_, ok, err = mustField(t, "missing").FieldValue(item)
	if err != nil || ok {
		t.Fatalf("missing field should be absent, got ok=%v err=%v", ok, err)
	}
	// Multi-node field is a cardinality error.
	if _, _, err := mustField(t, "*").FieldValue(item); err == nil {
		t.Fatal("field selecting two nodes must error")
	}
}

func TestValidatorHappyPath(t *testing.T) {
	v := catalogValidator(t)
	if err := v.Validate(catalogDoc()); err != nil {
		t.Fatalf("valid catalog rejected: %v", err)
	}
}

func TestDuplicateKey(t *testing.T) {
	v := catalogValidator(t)
	doc := catalogDoc()
	// Duplicate sku A1.
	items := doc.Children[0]
	items.Children[1].SetAttr("sku", "A1")
	err := v.Validate(doc)
	if err == nil || !strings.Contains(err.Error(), "duplicate tuple") {
		t.Fatalf("expected duplicate-key violation, got %v", err)
	}
	var viol *Violation
	if v, ok := err.(*Violation); ok {
		viol = v
	}
	if viol == nil || viol.Constraint.Name != "skuKey" {
		t.Fatalf("violation should identify skuKey: %v", err)
	}
}

func TestMissingKeyField(t *testing.T) {
	v := catalogValidator(t)
	doc := catalogDoc()
	doc.Children[0].Children[0].Attrs = nil // drop sku from the first item
	err := v.Validate(doc)
	if err == nil || !strings.Contains(err.Error(), "absent") {
		t.Fatalf("expected missing-key-field violation, got %v", err)
	}
}

func TestDanglingKeyRef(t *testing.T) {
	v := catalogValidator(t)
	doc := catalogDoc()
	doc.Children[1].Children[0].SetAttr("ref", "ZZ")
	err := v.Validate(doc)
	if err == nil || !strings.Contains(err.Error(), "no matching skuKey entry") {
		t.Fatalf("expected dangling keyref violation, got %v", err)
	}
}

func TestUniqueAllowsAbsentFields(t *testing.T) {
	v, err := NewValidator([]*Constraint{{
		Kind: Unique, Name: "u", ScopeLabel: "catalog",
		Selector: mustSelector(t, ".//item"),
		Fields:   []*Path{mustField(t, "note")}, // items have no note
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Validate(catalogDoc()); err != nil {
		t.Fatalf("unique over absent fields should pass: %v", err)
	}
}

func TestNewValidatorErrors(t *testing.T) {
	sel := mustSelector(t, "a")
	f := mustField(t, "b")
	cases := []struct {
		cs   []*Constraint
		want string
	}{
		{[]*Constraint{{Kind: Key, ScopeLabel: "x", Selector: sel, Fields: []*Path{f}}}, "without a name"},
		{[]*Constraint{
			{Kind: Key, Name: "k", ScopeLabel: "x", Selector: sel, Fields: []*Path{f}},
			{Kind: Key, Name: "k", ScopeLabel: "x", Selector: sel, Fields: []*Path{f}},
		}, "duplicate"},
		{[]*Constraint{{Kind: Key, Name: "k", ScopeLabel: "x"}}, "selector"},
		{[]*Constraint{{Kind: KeyRef, Name: "r", Refer: "nope", ScopeLabel: "x", Selector: sel, Fields: []*Path{f}}}, "unknown"},
		{[]*Constraint{
			{Kind: KeyRef, Name: "r1", Refer: "r2", ScopeLabel: "x", Selector: sel, Fields: []*Path{f}},
			{Kind: KeyRef, Name: "r2", Refer: "r1", ScopeLabel: "x", Selector: sel, Fields: []*Path{f}},
		}, "another keyref"},
		{[]*Constraint{
			{Kind: Key, Name: "k", ScopeLabel: "x", Selector: sel, Fields: []*Path{f, f}},
			{Kind: KeyRef, Name: "r", Refer: "k", ScopeLabel: "x", Selector: sel, Fields: []*Path{f}},
		}, "fields"},
	}
	for _, c := range cases {
		if _, err := NewValidator(c.cs); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("NewValidator error = %v, want containing %q", err, c.want)
		}
	}
}

func TestIncrementalIdentity(t *testing.T) {
	v := catalogValidator(t)
	doc := catalogDoc()
	idx, err := v.BuildIndex(doc)
	if err != nil {
		t.Fatal(err)
	}
	if idx.Scopes() != 1 {
		t.Fatalf("scopes = %d", idx.Scopes())
	}

	// Legal edit: change a price (no key fields touched).
	tk := update.NewTracker(doc)
	price := doc.Children[0].Children[0].Children[1].Children[0]
	if err := tk.SetText(price, "6"); err != nil {
		t.Fatal(err)
	}
	if err := idx.ValidateModified(doc, tk.Finalize()); err != nil {
		t.Fatalf("price edit should keep constraints satisfied: %v", err)
	}

	// Breaking edit: relabel an sku into a duplicate.
	doc2 := catalogDoc()
	idx2, err := v.BuildIndex(doc2)
	if err != nil {
		t.Fatal(err)
	}
	tk2 := update.NewTracker(doc2)
	// Edit the item element's attribute via a relabel-adjacent edit: the
	// tracker tracks node-level modifications; attributes are set directly
	// and the node marked through a same-label relabel.
	item2 := doc2.Children[0].Children[1]
	item2.SetAttr("sku", "A1")
	if err := tk2.Relabel(item2, "item"); err != nil {
		t.Fatal(err)
	}
	err = idx2.ValidateModified(doc2, tk2.Finalize())
	if err == nil || !strings.Contains(err.Error(), "duplicate tuple") {
		t.Fatalf("expected duplicate violation after edit, got %v", err)
	}

	// Deleting an item that an order references dangles the keyref.
	doc3 := catalogDoc()
	idx3, _ := v.BuildIndex(doc3)
	tk3 := update.NewTracker(doc3)
	if err := tk3.Delete(doc3.Children[0].Children[0]); err != nil { // item A1
		t.Fatal(err)
	}
	err = idx3.ValidateModified(doc3, tk3.Finalize())
	if err == nil || !strings.Contains(err.Error(), "no matching") {
		t.Fatalf("expected dangling keyref after delete, got %v", err)
	}
}

func TestIncrementalReusesUnmodifiedScopes(t *testing.T) {
	// Two independent catalog scopes; editing one must not re-evaluate the
	// other (observable through correctness: a pre-existing duplicate in an
	// unmodified scope stays cached as-is, so the stale-but-cached table is
	// reused — we verify the positive path only).
	v, err := NewValidator([]*Constraint{{
		Kind: Key, Name: "k", ScopeLabel: "cat",
		Selector: mustSelector(t, "item"),
		Fields:   []*Path{mustField(t, "@id")},
	}})
	if err != nil {
		t.Fatal(err)
	}
	doc := xmltree.MustParseString(
		`<root><cat><item id="1"/><item id="2"/></cat><cat><item id="1"/></cat></root>`)
	idx, err := v.BuildIndex(doc)
	if err != nil {
		t.Fatal(err)
	}
	if idx.Scopes() != 2 {
		t.Fatalf("scopes = %d", idx.Scopes())
	}
	tk := update.NewTracker(doc)
	// Add a third item to the first cat with a fresh id.
	n := xmltree.NewElement("item")
	n.SetAttr("id", "3")
	if err := tk.AppendChild(doc.Children[0], n); err != nil {
		t.Fatal(err)
	}
	if err := idx.ValidateModified(doc, tk.Finalize()); err != nil {
		t.Fatalf("edit should pass: %v", err)
	}
	// And a duplicate id in that same cat must now fail.
	tk2 := update.NewTracker(doc)
	d := xmltree.NewElement("item")
	d.SetAttr("id", "1")
	if err := tk2.AppendChild(doc.Children[0], d); err != nil {
		t.Fatal(err)
	}
	if err := idx.ValidateModified(doc, tk2.Finalize()); err == nil {
		t.Fatal("duplicate id must fail")
	}
}

func TestKindAndViolationStrings(t *testing.T) {
	if Unique.String() != "unique" || Key.String() != "key" || KeyRef.String() != "keyref" {
		t.Fatal("Kind strings changed")
	}
	if !strings.Contains(Kind(9).String(), "9") {
		t.Fatal("unknown kind should show its number")
	}
	v := catalogValidator(t)
	for _, c := range v.Constraints() {
		if c.String() == "" {
			t.Fatal("empty constraint string")
		}
	}
}
