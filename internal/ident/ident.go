package ident

import (
	"fmt"
	"strings"

	"repro/internal/xmltree"
)

// Kind distinguishes the three identity constraint varieties.
type Kind uint8

const (
	// Unique requires distinct field tuples among selected nodes whose
	// fields are all present.
	Unique Kind = iota
	// Key is Unique plus a presence requirement: every selected node must
	// supply every field.
	Key
	// KeyRef requires each (fully present) tuple to appear in the
	// referenced key/unique constraint's tuple set.
	KeyRef
)

func (k Kind) String() string {
	switch k {
	case Unique:
		return "unique"
	case Key:
		return "key"
	case KeyRef:
		return "keyref"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Constraint is one identity constraint, scoped to the elements carrying a
// given label (the element declaration it was attached to).
type Constraint struct {
	Kind Kind
	// Name identifies the constraint; keyrefs name their target in Refer.
	Name string
	// Refer is the referenced key/unique constraint's name (KeyRef only).
	Refer string
	// ScopeLabel is the label of the elements the constraint applies to.
	ScopeLabel string
	// Selector selects the constrained nodes relative to a scope element.
	Selector *Path
	// Fields produce each selected node's tuple.
	Fields []*Path
}

func (c *Constraint) String() string {
	fields := make([]string, len(c.Fields))
	for i, f := range c.Fields {
		fields[i] = f.String()
	}
	s := fmt.Sprintf("%s %s on %s: selector=%s fields=[%s]",
		c.Kind, c.Name, c.ScopeLabel, c.Selector, strings.Join(fields, ", "))
	if c.Kind == KeyRef {
		s += " refer=" + c.Refer
	}
	return s
}

// Violation reports a broken identity constraint.
type Violation struct {
	Constraint *Constraint
	Path       string // location of the offending node (XPath-like)
	Reason     string
}

func (v *Violation) Error() string {
	return fmt.Sprintf("identity constraint %s %q violated at %s: %s",
		v.Constraint.Kind, v.Constraint.Name, v.Path, v.Reason)
}

// Validator checks a set of identity constraints over documents.
type Validator struct {
	constraints []*Constraint
	byName      map[string]*Constraint
}

// NewValidator builds a validator, resolving keyref targets. Every keyref's
// Refer must name a Key or Unique constraint in the same set with the same
// number of fields.
func NewValidator(constraints []*Constraint) (*Validator, error) {
	v := &Validator{byName: map[string]*Constraint{}}
	for _, c := range constraints {
		if c.Name == "" {
			return nil, fmt.Errorf("ident: constraint without a name")
		}
		if _, dup := v.byName[c.Name]; dup {
			return nil, fmt.Errorf("ident: duplicate constraint name %q", c.Name)
		}
		if c.Selector == nil || len(c.Fields) == 0 {
			return nil, fmt.Errorf("ident: constraint %q needs a selector and at least one field", c.Name)
		}
		v.byName[c.Name] = c
		v.constraints = append(v.constraints, c)
	}
	for _, c := range v.constraints {
		if c.Kind != KeyRef {
			continue
		}
		target, ok := v.byName[c.Refer]
		if !ok {
			return nil, fmt.Errorf("ident: keyref %q refers to unknown constraint %q", c.Name, c.Refer)
		}
		if target.Kind == KeyRef {
			return nil, fmt.Errorf("ident: keyref %q refers to another keyref", c.Name)
		}
		if len(target.Fields) != len(c.Fields) {
			return nil, fmt.Errorf("ident: keyref %q has %d fields but %q has %d",
				c.Name, len(c.Fields), c.Refer, len(target.Fields))
		}
	}
	return v, nil
}

// Constraints returns the validated constraint set.
func (v *Validator) Constraints() []*Constraint { return v.constraints }

// Validate checks every constraint over the document, returning the first
// violation (as a *Violation) or nil.
func (v *Validator) Validate(doc *xmltree.Node) error {
	tables, err := v.collect(doc, nil, nil)
	if err != nil {
		return err
	}
	return v.checkRefs(tables)
}

// tupleTable holds the tuples one (constraint, scope element) pair yields.
type tupleTable struct {
	c      *Constraint
	scope  *xmltree.Node
	tuples map[string]bool // joined field tuples
}

// collect walks the document, evaluating each constraint at each scope
// element. When reuse is non-nil, scopes reported unmodified by modifiedFn
// take their cached table instead of re-evaluating (incremental path).
func (v *Validator) collect(doc *xmltree.Node, reuse map[*xmltree.Node][]*tupleTable,
	modifiedFn func(*xmltree.Node) bool) (map[string][]*tupleTable, error) {

	byConstraint := map[string][]*tupleTable{}
	var walkErr error
	doc.Walk(func(n *xmltree.Node) bool {
		if walkErr != nil || n.IsText() || n.Delta == xmltree.DeltaDelete {
			return walkErr == nil && !n.IsText()
		}
		var scoped []*Constraint
		for _, c := range v.constraints {
			if c.ScopeLabel == n.Label {
				scoped = append(scoped, c)
			}
		}
		if len(scoped) == 0 {
			return true
		}
		if reuse != nil && modifiedFn != nil && !modifiedFn(n) {
			if cached, ok := reuse[n]; ok {
				for _, tbl := range cached {
					byConstraint[tbl.c.Name] = append(byConstraint[tbl.c.Name], tbl)
				}
				return true
			}
		}
		for _, c := range scoped {
			tbl, err := evaluateScope(c, n)
			if err != nil {
				walkErr = err
				return false
			}
			byConstraint[c.Name] = append(byConstraint[c.Name], tbl)
		}
		return true
	})
	if walkErr != nil {
		return nil, walkErr
	}
	return byConstraint, nil
}

// evaluateScope evaluates one constraint at one scope element: selects the
// nodes, extracts tuples, and enforces uniqueness/presence.
func evaluateScope(c *Constraint, scope *xmltree.Node) (*tupleTable, error) {
	tbl := &tupleTable{c: c, scope: scope, tuples: map[string]bool{}}
	for _, n := range c.Selector.SelectElements(scope) {
		parts := make([]string, len(c.Fields))
		missing := false
		for i, f := range c.Fields {
			val, ok, err := f.FieldValue(n)
			if err != nil {
				return nil, &Violation{Constraint: c, Path: nodePath(n), Reason: err.Error()}
			}
			if !ok {
				missing = true
				if c.Kind == Key {
					return nil, &Violation{
						Constraint: c,
						Path:       nodePath(n),
						Reason:     fmt.Sprintf("key field %s is absent", f),
					}
				}
				break
			}
			parts[i] = val
		}
		if missing {
			continue // unique/keyref ignore partially-present tuples
		}
		key := joinTuple(parts)
		if c.Kind != KeyRef {
			if tbl.tuples[key] {
				return nil, &Violation{
					Constraint: c,
					Path:       nodePath(n),
					Reason:     fmt.Sprintf("duplicate tuple (%s)", strings.Join(parts, ", ")),
				}
			}
		}
		tbl.tuples[key] = true
	}
	return tbl, nil
}

// checkRefs verifies every keyref tuple against its referenced constraint,
// scope by scope: a keyref's tuples at scope s must appear in the referred
// key's tuples at the same scope element. This simplifies the full XSD
// scoping rule (a keyref may also resolve against keys declared on
// ancestor scopes); declaring the key and its keyrefs on the same element
// — by far the common pattern — is fully supported, and differently-scoped
// pairs conservatively report a violation rather than silently passing.
func (v *Validator) checkRefs(tables map[string][]*tupleTable) error {
	for _, c := range v.constraints {
		if c.Kind != KeyRef {
			continue
		}
		// Index referenced tables by scope node.
		refByScope := map[*xmltree.Node]*tupleTable{}
		for _, tbl := range tables[c.Refer] {
			refByScope[tbl.scope] = tbl
		}
		for _, tbl := range tables[c.Name] {
			ref := refByScope[tbl.scope]
			for tuple := range tbl.tuples {
				if ref == nil || !ref.tuples[tuple] {
					return &Violation{
						Constraint: c,
						Path:       nodePath(tbl.scope),
						Reason: fmt.Sprintf("tuple (%s) has no matching %s entry",
							strings.Join(splitTuple(tuple), ", "), c.Refer),
					}
				}
			}
		}
	}
	return nil
}

const tupleSep = "\x1f"

func joinTuple(parts []string) string { return strings.Join(parts, tupleSep) }
func splitTuple(t string) []string    { return strings.Split(t, tupleSep) }

// nodePath renders an XPath-ish location without importing package schema
// (which would create a cycle once schema carries constraints).
func nodePath(n *xmltree.Node) string {
	if n == nil {
		return "/"
	}
	var parts []string
	for cur := n; cur != nil; cur = cur.Parent {
		parts = append(parts, cur.EffectiveLabel())
	}
	var b strings.Builder
	for i := len(parts) - 1; i >= 0; i-- {
		b.WriteByte('/')
		b.WriteString(parts[i])
	}
	return b.String()
}
