// Package castmap provides the shared storage of per-type-pair string
// casters (the §4 content-model immediate decision automata) used by both
// the tree-level cast engine and the streaming caster. The table is
// concurrency-first: lookups on the validate hot path never take a lock.
//
// Two tiers back a table. Pairs reachable from the shared roots of the
// schema pair are built eagerly at construction into a plain map that is
// immutable afterwards — reads need no synchronization at all. The rare
// pair first requested at validation time (an on-demand pair) is published
// through a copy-on-write overflow map behind an atomic.Pointer: readers
// atomically load the current map, and a writer installs a fresh copy with
// the new entry via compare-and-swap, retrying (and discarding its copy)
// when it loses a race. Duplicate caster construction under contention is
// possible but harmless — casters are pure functions of the two DFAs — and
// exactly one instance per pair wins publication, so the per-pair lazy
// reverse-automaton state (strcast.Caster.revOnce) is shared too.
package castmap

import (
	"sync/atomic"

	"repro/internal/schema"
	"repro/internal/strcast"
	"repro/internal/subsume"
)

// Pair identifies a (source type, target type) pair.
type Pair struct{ Src, Dst schema.TypeID }

// Table resolves the string caster for a type pair without locking on the
// hot path. Construct with New; a Table is safe for concurrent use.
type Table struct {
	src, dst *schema.Schema

	// precomputed is filled at construction and never written again.
	precomputed map[Pair]*strcast.Caster
	// overflow holds on-demand pairs; the map a load observes is never
	// mutated — writers swap in a copy.
	overflow atomic.Pointer[map[Pair]*strcast.Caster]
}

// New builds a table for a compiled schema pair sharing one alphabet. When
// eager is true, casters for every (complex, complex) type pair reachable
// from the root labels both schemas accept are precomputed, skipping pairs
// rel already decides (subsumed pairs are skipped and disjoint pairs
// rejected before any content model runs, so their casters are never
// consulted on the no-modifications path).
func New(src, dst *schema.Schema, rel *subsume.Relations, eager bool) *Table {
	t := &Table{src: src, dst: dst, precomputed: map[Pair]*strcast.Caster{}}
	empty := map[Pair]*strcast.Caster{}
	t.overflow.Store(&empty)
	if eager {
		t.precompute(rel)
	}
	return t
}

// precompute builds string casters for every (complex, complex) type pair
// reachable from the shared roots, skipping pairs the relations already
// decide. Type pairs are global — a pair decided here is decided
// everywhere, never "undecided elsewhere" — so a decided pair needs no
// caster of its own. The walk still descends below decided pairs, for two
// reasons: the child pairs of a decided pair can themselves be undecided,
// and with-modifications validation revisits the children of a subsumed
// pair when edits landed beneath it, consulting their casters.
func (t *Table) precompute(rel *subsume.Relations) {
	seen := map[Pair]bool{}
	var queue []Pair
	push := func(p Pair) {
		if !seen[p] {
			seen[p] = true
			queue = append(queue, p)
		}
	}
	for sym, τ := range t.src.Roots {
		if τp, ok := t.dst.Roots[sym]; ok {
			push(Pair{τ, τp})
		}
	}
	for len(queue) > 0 {
		p := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		a, b := t.src.TypeOf(p.Src), t.dst.TypeOf(p.Dst)
		if a.Simple || b.Simple {
			continue
		}
		decided := rel != nil && (rel.Subsumed(p.Src, p.Dst) || rel.Disjoint(p.Src, p.Dst))
		if !decided {
			t.precomputed[p] = strcast.New(a.DFA, b.DFA)
		}
		for sym, ω := range a.Child {
			if ν, ok := b.Child[sym]; ok {
				push(Pair{ω, ν})
			}
		}
	}
}

// Get returns the caster for the pair, building and publishing it first
// when it is neither precomputed nor already in the overflow map. The fast
// path — any precomputed pair, or an overflow pair seen before — is two
// map reads and one atomic load, with no locking.
func (t *Table) Get(τ, τp schema.TypeID) *strcast.Caster {
	p := Pair{τ, τp}
	if c, ok := t.precomputed[p]; ok {
		return c
	}
	for {
		cur := t.overflow.Load()
		if c, ok := (*cur)[p]; ok {
			return c
		}
		c := strcast.New(t.src.TypeOf(τ).DFA, t.dst.TypeOf(τp).DFA)
		next := make(map[Pair]*strcast.Caster, len(*cur)+1)
		for k, v := range *cur {
			next[k] = v
		}
		next[p] = c
		if t.overflow.CompareAndSwap(cur, &next) {
			return c
		}
		// Lost a publication race: reload — the winner may have installed
		// this very pair, in which case its instance must be returned so
		// every caller shares one caster per pair.
	}
}

// Len reports how many casters the table currently holds (precomputed plus
// published on-demand pairs).
func (t *Table) Len() int {
	return len(t.precomputed) + len(*t.overflow.Load())
}

// Snapshot returns the table's current contents — the precomputed tier plus
// every published on-demand pair — as one map copy, for serialization.
func (t *Table) Snapshot() map[Pair]*strcast.Caster {
	over := *t.overflow.Load()
	out := make(map[Pair]*strcast.Caster, len(t.precomputed)+len(over))
	for p, c := range t.precomputed {
		out[p] = c
	}
	for p, c := range over {
		out[p] = c
	}
	return out
}

// Restore rebuilds a table whose precomputed tier holds exactly the given
// casters (typically a deserialized Snapshot), adopting the map. Pairs not
// present keep the usual on-demand overflow behavior.
func Restore(src, dst *schema.Schema, casters map[Pair]*strcast.Caster) *Table {
	if casters == nil {
		casters = map[Pair]*strcast.Caster{}
	}
	t := &Table{src: src, dst: dst, precomputed: casters}
	empty := map[Pair]*strcast.Caster{}
	t.overflow.Store(&empty)
	return t
}

// Sizes reports the table's footprint: the number of casters held and the
// total number of c_immed product-IDA states across them. The serving
// layer's GET /pairs report and the registry's eviction cost estimate both
// read it.
func (t *Table) Sizes() (casters, idaStates int) {
	count := func(m map[Pair]*strcast.Caster) {
		for _, c := range m {
			casters++
			idaStates += c.CImmed.D.NumStates()
		}
	}
	count(t.precomputed)
	count(*t.overflow.Load())
	return casters, idaStates
}
