package castmap

import (
	"sync"
	"testing"

	"repro/internal/subsume"
	"repro/internal/wgen"
)

func TestEagerPrecomputeCoversReachablePairs(t *testing.T) {
	ps := wgen.NewPaperSchemas()
	rel, err := subsume.Compute(ps.Source1, ps.Target)
	if err != nil {
		t.Fatal(err)
	}
	tab := New(ps.Source1, ps.Target, rel, true)
	if len(tab.precomputed) == 0 {
		t.Fatal("eager table should precompute the root-reachable undecided pairs")
	}
	// Every precomputed lookup must return the precomputed instance and
	// leave the overflow untouched.
	before := tab.Len()
	for p, want := range tab.precomputed {
		if got := tab.Get(p.Src, p.Dst); got != want {
			t.Fatalf("Get(%v) returned a different instance than precomputed", p)
		}
	}
	if tab.Len() != before {
		t.Fatal("precomputed lookups must not grow the overflow map")
	}

	lazy := New(ps.Source1, ps.Target, rel, false)
	if lazy.Len() != 0 {
		t.Fatal("non-eager table should start empty")
	}
}

// TestConcurrentGetSharesOneInstance races on-demand construction: many
// goroutines request the same pairs through the copy-on-write overflow and
// must all observe one shared caster per pair.
func TestConcurrentGetSharesOneInstance(t *testing.T) {
	ps := wgen.NewPaperSchemas()
	rel, err := subsume.Compute(ps.Source1, ps.Target)
	if err != nil {
		t.Fatal(err)
	}
	tab := New(ps.Source1, ps.Target, rel, false) // everything on demand
	var pairs []Pair
	for τ, a := range ps.Source1.Types {
		if a.Simple {
			continue
		}
		for τp, b := range ps.Target.Types {
			if b.Simple {
				continue
			}
			pairs = append(pairs, Pair{ps.Source1.Types[τ].ID, ps.Target.Types[τp].ID})
		}
	}
	if len(pairs) < 4 {
		t.Fatalf("want several complex pairs, got %d", len(pairs))
	}
	const goroutines = 16
	results := make([][]any, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			out := make([]any, len(pairs))
			// Vary the claim order per goroutine to widen the race window.
			for i := range pairs {
				p := pairs[(i+g)%len(pairs)]
				out[(i+g)%len(pairs)] = tab.Get(p.Src, p.Dst)
			}
			results[g] = out
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		for i := range pairs {
			if results[g][i] != results[0][i] {
				t.Fatalf("goroutine %d observed a different caster for pair %v", g, pairs[i])
			}
		}
	}
	if got := tab.Len(); got != len(pairs) {
		t.Fatalf("overflow should hold exactly %d pairs, got %d", len(pairs), got)
	}
}
