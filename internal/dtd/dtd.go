// Package dtd parses Document Type Definitions into abstract XML schemas.
// A DTD is the special case of an abstract XML schema in which every
// element label has one type regardless of context (EDBT'04 §3), which is
// what enables the §3.4 label-index optimization.
//
// Supported declarations:
//
//	<!ELEMENT name EMPTY>            — empty content model
//	<!ELEMENT name ANY>              — any sequence of declared elements
//	<!ELEMENT name (#PCDATA)>        — simple (text) content
//	<!ELEMENT name (a, (b | c)*, d?)> — element content (full regex syntax)
//	<!ATTLIST ...>                   — parsed and recorded, not validated
//	<!ENTITY ...>, <!NOTATION ...>   — skipped
//	<!DOCTYPE root [ ... ]>          — optional wrapper fixing the root
//
// Mixed content other than pure (#PCDATA) — e.g. (#PCDATA | b)* — is not
// representable in the paper's tree model (χ leaves cannot interleave with
// elements) and is rejected with a descriptive error.
package dtd

import (
	"fmt"
	"strings"

	"repro/internal/fa"
	"repro/internal/regexpsym"
	"repro/internal/schema"
)

// Options configure DTD loading.
type Options struct {
	// Alpha, when non-nil, is the shared alphabet to intern labels into
	// (required when the schema will be compared against another).
	Alpha *fa.Alphabet
	// Root restricts R to a single root element. When empty and the input
	// has a <!DOCTYPE root …> wrapper, that root is used; otherwise every
	// declared element is a permitted root.
	Root string
}

// Parse parses DTD text into a compiled abstract XML schema.
func Parse(src string, opts Options) (*schema.Schema, error) {
	p := &parser{src: src}
	decls, doctypeRoot, err := p.parse()
	if err != nil {
		return nil, err
	}
	if len(decls) == 0 {
		return nil, fmt.Errorf("dtd: no element declarations found")
	}
	root := opts.Root
	if root == "" {
		root = doctypeRoot
	}
	return build(decls, root, opts.Alpha)
}

// MustParse is Parse that panics on error; for tests and fixtures.
func MustParse(src string, opts Options) *schema.Schema {
	s, err := Parse(src, opts)
	if err != nil {
		panic(err)
	}
	return s
}

// elementDecl is one parsed <!ELEMENT> declaration.
type elementDecl struct {
	name    string
	kind    contentKind
	content regexpsym.Node // for kindChildren
}

type contentKind uint8

const (
	kindEmpty contentKind = iota
	kindAny
	kindPCDATA
	kindChildren
)

// build converts declarations into an abstract XML schema: one complex or
// simple type per element label, named after the label.
func build(decls []elementDecl, root string, alpha *fa.Alphabet) (*schema.Schema, error) {
	s := schema.New(alpha)
	byName := map[string]elementDecl{}
	var order []string
	for _, d := range decls {
		if _, dup := byName[d.name]; dup {
			return nil, fmt.Errorf("dtd: element %q declared twice", d.name)
		}
		byName[d.name] = d
		order = append(order, d.name)
	}

	// First pass: declare a type per element.
	ids := map[string]schema.TypeID{}
	for _, name := range order {
		d := byName[name]
		var (
			id  schema.TypeID
			err error
		)
		switch d.kind {
		case kindPCDATA:
			id, err = s.AddSimpleType(name, schema.NewSimpleType(schema.StringKind))
		case kindEmpty:
			id, err = s.AddComplexType(name, regexpsym.Epsilon{})
		case kindAny:
			// ANY: any sequence of declared elements. (Text in ANY content
			// is outside the tree model; element-only ANY is the useful
			// core.)
			alts := make([]regexpsym.Node, 0, len(order))
			for _, l := range order {
				alts = append(alts, regexpsym.Lbl(l))
			}
			id, err = s.AddComplexType(name, regexpsym.Star(regexpsym.Or(alts...)))
		case kindChildren:
			id, err = s.AddComplexType(name, d.content)
		}
		if err != nil {
			return nil, fmt.Errorf("dtd: %w", err)
		}
		ids[name] = id
	}

	// Second pass: wire child types (every label maps to its own type).
	for _, name := range order {
		d := byName[name]
		if d.kind == kindPCDATA {
			continue
		}
		t := s.TypeOf(ids[name])
		var labels []string
		if d.kind == kindAny {
			labels = order
		} else if d.kind == kindChildren {
			labels = regexpsym.Labels(d.content)
		}
		for _, l := range labels {
			child, ok := ids[l]
			if !ok {
				return nil, fmt.Errorf("dtd: element %q references undeclared element %q", name, l)
			}
			if err := s.SetChildType(t.ID, l, child); err != nil {
				return nil, fmt.Errorf("dtd: %w", err)
			}
		}
	}

	// Roots.
	if root != "" {
		id, ok := ids[root]
		if !ok {
			return nil, fmt.Errorf("dtd: root element %q is not declared", root)
		}
		s.SetRoot(root, id)
	} else {
		for _, name := range order {
			s.SetRoot(name, ids[name])
		}
	}
	if err := s.Compile(); err != nil {
		return nil, fmt.Errorf("dtd: %w", err)
	}
	return s, nil
}

// parser is a hand-written scanner over DTD text.
type parser struct {
	src string
	pos int
}

func (p *parser) parse() (decls []elementDecl, doctypeRoot string, err error) {
	for {
		p.skipSpaceAndComments()
		if p.eof() {
			return decls, doctypeRoot, nil
		}
		switch {
		case p.consume("<!ELEMENT"):
			d, err := p.elementDecl()
			if err != nil {
				return nil, "", err
			}
			decls = append(decls, d)
		case p.consume("<!ATTLIST"):
			if err := p.skipDecl(); err != nil {
				return nil, "", err
			}
		case p.consume("<!ENTITY"), p.consume("<!NOTATION"):
			if err := p.skipDecl(); err != nil {
				return nil, "", err
			}
		case p.consume("<!DOCTYPE"):
			name, err := p.doctype()
			if err != nil {
				return nil, "", err
			}
			doctypeRoot = name
		case p.consume("<?"):
			// processing instruction / xml decl inside the subset
			if idx := strings.Index(p.src[p.pos:], "?>"); idx >= 0 {
				p.pos += idx + 2
			} else {
				return nil, "", p.errorf("unterminated processing instruction")
			}
		case p.consume("]"):
			// end of an internal subset; the '>' of the DOCTYPE follows
			p.skipSpaceAndComments()
			if !p.consume(">") {
				return nil, "", p.errorf("expected '>' after ']'")
			}
		default:
			return nil, "", p.errorf("unexpected input %q", p.peekSnippet())
		}
	}
}

// doctype parses "<!DOCTYPE name [" (internal subset continues) or
// "<!DOCTYPE name SYSTEM "uri" [" etc. Declarations after '[' are parsed by
// the main loop; a DOCTYPE without a subset ends at '>'.
func (p *parser) doctype() (string, error) {
	p.skipSpaceAndComments()
	name, err := p.name()
	if err != nil {
		return "", err
	}
	for {
		p.skipSpaceAndComments()
		if p.eof() {
			return "", p.errorf("unterminated DOCTYPE")
		}
		switch {
		case p.consume("["):
			return name, nil // subset declarations follow
		case p.consume(">"):
			return name, nil
		case p.consume("SYSTEM"), p.consume("PUBLIC"):
			// external identifiers: skip quoted strings
		case p.peek() == '"' || p.peek() == '\'':
			if err := p.skipQuoted(); err != nil {
				return "", err
			}
		default:
			return "", p.errorf("unexpected DOCTYPE content %q", p.peekSnippet())
		}
	}
}

func (p *parser) elementDecl() (elementDecl, error) {
	p.skipSpaceAndComments()
	name, err := p.name()
	if err != nil {
		return elementDecl{}, err
	}
	p.skipSpaceAndComments()
	start := p.pos
	depth := 0
	for {
		if p.eof() {
			return elementDecl{}, p.errorf("unterminated <!ELEMENT %s", name)
		}
		c := p.peek()
		if c == '(' {
			depth++
		}
		if c == ')' {
			depth--
		}
		if c == '>' && depth <= 0 {
			break
		}
		p.pos++
	}
	model := strings.TrimSpace(p.src[start:p.pos])
	p.pos++ // consume '>'

	switch {
	case model == "EMPTY":
		return elementDecl{name: name, kind: kindEmpty}, nil
	case model == "ANY":
		return elementDecl{name: name, kind: kindAny}, nil
	case strings.Contains(model, "#PCDATA"):
		inner := strings.TrimSuffix(strings.TrimSpace(model), "*")
		inner = strings.TrimSpace(inner)
		inner = strings.TrimPrefix(inner, "(")
		inner = strings.TrimSuffix(inner, ")")
		parts := strings.Split(inner, "|")
		for i := range parts {
			parts[i] = strings.TrimSpace(parts[i])
		}
		if len(parts) == 1 && parts[0] == "#PCDATA" {
			return elementDecl{name: name, kind: kindPCDATA}, nil
		}
		return elementDecl{}, p.errorf(
			"element %q has mixed content %q: mixed element/text content is outside the paper's tree model", name, model)
	default:
		node, err := regexpsym.Parse(model)
		if err != nil {
			return elementDecl{}, fmt.Errorf("dtd: element %q content model: %w", name, err)
		}
		return elementDecl{name: name, kind: kindChildren, content: node}, nil
	}
}

// skipDecl skips to the closing '>' of a declaration, honouring quotes.
func (p *parser) skipDecl() error {
	for {
		if p.eof() {
			return p.errorf("unterminated declaration")
		}
		switch p.peek() {
		case '"', '\'':
			if err := p.skipQuoted(); err != nil {
				return err
			}
		case '>':
			p.pos++
			return nil
		default:
			p.pos++
		}
	}
}

func (p *parser) skipQuoted() error {
	quote := p.peek()
	p.pos++
	for !p.eof() {
		if p.peek() == quote {
			p.pos++
			return nil
		}
		p.pos++
	}
	return p.errorf("unterminated quoted string")
}

func (p *parser) skipSpaceAndComments() {
	for {
		for !p.eof() && isSpace(p.peek()) {
			p.pos++
		}
		if strings.HasPrefix(p.src[p.pos:], "<!--") {
			end := strings.Index(p.src[p.pos+4:], "-->")
			if end < 0 {
				p.pos = len(p.src)
				return
			}
			p.pos += 4 + end + 3
			continue
		}
		return
	}
}

func (p *parser) name() (string, error) {
	start := p.pos
	for !p.eof() && isNameChar(p.peek()) {
		p.pos++
	}
	if start == p.pos {
		return "", p.errorf("expected a name")
	}
	return p.src[start:p.pos], nil
}

func (p *parser) eof() bool  { return p.pos >= len(p.src) }
func (p *parser) peek() byte { return p.src[p.pos] }
func (p *parser) consume(s string) bool {
	if strings.HasPrefix(p.src[p.pos:], s) {
		p.pos += len(s)
		return true
	}
	return false
}

func (p *parser) peekSnippet() string {
	end := p.pos + 24
	if end > len(p.src) {
		end = len(p.src)
	}
	return p.src[p.pos:end]
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("dtd: offset %d: %s", p.pos, fmt.Sprintf(format, args...))
}

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r'
}

func isNameChar(c byte) bool {
	return c == '_' || c == ':' || c == '-' || c == '.' ||
		c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}
