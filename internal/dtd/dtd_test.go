package dtd

import (
	"strings"
	"testing"

	"repro/internal/fa"
	"repro/internal/subsume"
	"repro/internal/xmltree"
)

const poDTD = `
<!-- purchase order, Figure 1a shape -->
<!ELEMENT purchaseOrder (shipTo, billTo?, items)>
<!ELEMENT shipTo (name, street)>
<!ELEMENT billTo (name, street)>
<!ELEMENT items (item*)>
<!ELEMENT item (productName, quantity)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT street (#PCDATA)>
<!ELEMENT productName (#PCDATA)>
<!ELEMENT quantity (#PCDATA)>
`

func TestParsePurchaseOrderDTD(t *testing.T) {
	s, err := Parse(poDTD, Options{Root: "purchaseOrder"})
	if err != nil {
		t.Fatal(err)
	}
	if !s.IsDTD() {
		t.Fatal("parsed DTD should be DTD-shaped")
	}
	doc := xmltree.MustParseString(`<purchaseOrder>
		<shipTo><name>A</name><street>S</street></shipTo>
		<items><item><productName>W</productName><quantity>3</quantity></item></items>
	</purchaseOrder>`)
	if err := s.Validate(doc); err != nil {
		t.Fatalf("valid doc rejected: %v", err)
	}
	bad := xmltree.MustParseString(`<purchaseOrder><items/></purchaseOrder>`)
	if err := s.Validate(bad); err == nil {
		t.Fatal("missing shipTo should fail")
	}
	if s.RootType("shipTo") != -1 {
		t.Fatal("only purchaseOrder should be a root")
	}
}

func TestParseDoctypeWrapper(t *testing.T) {
	src := `<!DOCTYPE note [
		<!ELEMENT note (to, from, body)>
		<!ELEMENT to (#PCDATA)>
		<!ELEMENT from (#PCDATA)>
		<!ELEMENT body (#PCDATA)>
	]>`
	s, err := Parse(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.RootType("note") == -1 {
		t.Fatal("DOCTYPE root should be the schema root")
	}
	if s.RootType("to") != -1 {
		t.Fatal("non-root elements should not be roots when DOCTYPE names one")
	}
}

func TestParseAllRootsWhenUnspecified(t *testing.T) {
	s, err := Parse(`<!ELEMENT a (b?)> <!ELEMENT b (#PCDATA)>`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.RootType("a") == -1 || s.RootType("b") == -1 {
		t.Fatal("all declared elements should be roots")
	}
}

func TestParseEmptyAndAny(t *testing.T) {
	s, err := Parse(`
		<!ELEMENT hr EMPTY>
		<!ELEMENT div ANY>
		<!ELEMENT p (#PCDATA)>
	`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(xmltree.NewElement("hr")); err != nil {
		t.Fatalf("EMPTY element: %v", err)
	}
	if err := s.Validate(xmltree.NewElement("hr", xmltree.NewElement("p"))); err == nil {
		t.Fatal("EMPTY element with children must fail")
	}
	// ANY: any mixture of declared elements.
	div := xmltree.NewElement("div",
		xmltree.NewElement("hr"),
		xmltree.NewElement("p", xmltree.NewText("x")),
		xmltree.NewElement("div"),
	)
	if err := s.Validate(div); err != nil {
		t.Fatalf("ANY element: %v", err)
	}
}

func TestParseAttlistAndEntitiesSkipped(t *testing.T) {
	src := `
	<!ELEMENT a (b)>
	<!ATTLIST a id ID #REQUIRED note CDATA "d > e">
	<!ENTITY copy "&#169;">
	<!NOTATION vrml PUBLIC "VRML 1.0">
	<!ELEMENT b (#PCDATA)>
	`
	s, err := Parse(src, Options{Root: "a"})
	if err != nil {
		t.Fatal(err)
	}
	if s.TypeByName("a") == -1 || s.TypeByName("b") == -1 {
		t.Fatal("element types missing")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{``, "no element declarations"},
		{`<!ELEMENT a (b)>`, "undeclared element"},
		{`<!ELEMENT a (#PCDATA | b)*> <!ELEMENT b (#PCDATA)>`, "mixed"},
		{`<!ELEMENT a (b,)> <!ELEMENT b (#PCDATA)>`, "parse error"},
		{`<!ELEMENT a EMPTY> <!ELEMENT a EMPTY>`, "declared twice"},
		{`<!ELEMENT a ((b,c)|(b,d))> <!ELEMENT b (#PCDATA)> <!ELEMENT c (#PCDATA)> <!ELEMENT d (#PCDATA)>`, "1-unambiguous"},
		{`<!BOGUS x>`, "unexpected input"},
		{`<!ELEMENT a EMPTY> garbage`, "unexpected input"},
	}
	for _, c := range cases {
		_, err := Parse(c.src, Options{})
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) error = %v, want containing %q", c.src, err, c.want)
		}
	}
	if _, err := Parse(`<!ELEMENT a EMPTY>`, Options{Root: "zzz"}); err == nil {
		t.Error("undeclared root must fail")
	}
}

func TestParseComments(t *testing.T) {
	src := `
	<!-- header comment -->
	<!ELEMENT a <!-- not here --> (b)>
	<!ELEMENT b (#PCDATA)> <!-- trailing -->
	`
	// Comments inside a declaration are not legal XML, so only test the
	// supported positions: between declarations.
	src = `
	<!-- header -->
	<!ELEMENT a (b)>
	<!-- middle -->
	<!ELEMENT b (#PCDATA)>
	<!-- trailing -->
	`
	if _, err := Parse(src, Options{Root: "a"}); err != nil {
		t.Fatal(err)
	}
}

// Two versions of a DTD loaded into one alphabet support cast relations.
func TestDTDSchemaCastIntegration(t *testing.T) {
	alpha := fa.NewAlphabet()
	v1 := MustParse(poDTD, Options{Root: "purchaseOrder", Alpha: alpha})
	v2src := strings.Replace(poDTD, "billTo?", "billTo", 1)
	v2 := MustParse(v2src, Options{Root: "purchaseOrder", Alpha: alpha})
	rel := subsume.MustCompute(v1, v2)
	po1 := v1.TypeByName("purchaseOrder")
	po2 := v2.TypeByName("purchaseOrder")
	if rel.Subsumed(po1, po2) {
		t.Fatal("optional billTo is not subsumed by required billTo")
	}
	if !subsume.MustCompute(v2, v1).Subsumed(po2, po1) {
		t.Fatal("required billTo is subsumed by optional billTo")
	}
	for _, name := range []string{"shipTo", "items", "item", "quantity"} {
		if !rel.Subsumed(v1.TypeByName(name), v2.TypeByName(name)) {
			t.Fatalf("%s should be subsumed by its identical twin", name)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse should panic")
		}
	}()
	MustParse("junk", Options{})
}

func TestParseDoctypeExternalIdentifiers(t *testing.T) {
	// SYSTEM identifier before the internal subset.
	src := `<!DOCTYPE note SYSTEM "note.dtd" [
		<!ELEMENT note (#PCDATA)>
	]>`
	s, err := Parse(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.RootType("note") == -1 {
		t.Fatal("root should come from the DOCTYPE")
	}
	// PUBLIC identifier with two literals and no subset: the DOCTYPE alone
	// declares nothing, so parsing fails with "no element declarations".
	src2 := `<!DOCTYPE html PUBLIC "-//W3C//DTD XHTML 1.0//EN" "xhtml1.dtd">`
	if _, err := Parse(src2, Options{}); err == nil || !strings.Contains(err.Error(), "no element declarations") {
		t.Fatalf("got %v", err)
	}
}
