package wgen

import (
	"fmt"
	"strings"
)

// XSD-text forms of the paper's schemas. Parsing these through the xsd
// loader must produce schemas equivalent to the programmatic builders in
// paper.go — the test suite checks exactly that, cross-validating loader
// and builders against each other.

// Figure2XSD returns the paper's complete Figure 2 target schema as XSD
// text, parameterized by billTo optionality and the quantity maxExclusive
// facet (Figure 1a = optionalBill true, quantityMax 100; Experiment 2's
// source = optionalBill false, quantityMax 200).
func Figure2XSD(optionalBill bool, quantityMax int) string {
	billOccurs := ""
	if optionalBill {
		billOccurs = ` minOccurs="0"`
	}
	poType := "POType2"
	if optionalBill {
		poType = "POType1"
	}
	return fmt.Sprintf(`<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:element name="purchaseOrder" type="%[1]s"/>
  <xsd:element name="comment" type="xsd:string"/>

  <xsd:complexType name="%[1]s">
    <xsd:sequence>
      <xsd:element name="shipTo" type="USAddress"/>
      <xsd:element name="billTo" type="USAddress"%[2]s/>
      <xsd:element name="items" type="Items"/>
    </xsd:sequence>
  </xsd:complexType>

  <xsd:complexType name="USAddress">
    <xsd:sequence>
      <xsd:element name="name" type="xsd:string"/>
      <xsd:element name="street" type="xsd:string"/>
      <xsd:element name="city" type="xsd:string"/>
      <xsd:element name="state" type="xsd:string"/>
      <xsd:element name="zip" type="xsd:decimal"/>
      <xsd:element name="country" type="xsd:string"/>
    </xsd:sequence>
  </xsd:complexType>

  <xsd:complexType name="Items">
    <xsd:sequence>
      <xsd:element name="item" type="Item" minOccurs="0" maxOccurs="unbounded"/>
    </xsd:sequence>
  </xsd:complexType>

  <xsd:complexType name="Item">
    <xsd:sequence>
      <xsd:element name="productName" type="xsd:string"/>
      <xsd:element name="quantity">
        <xsd:simpleType>
          <xsd:restriction base="xsd:positiveInteger">
            <xsd:maxExclusive value="%[3]d"/>
          </xsd:restriction>
        </xsd:simpleType>
      </xsd:element>
      <xsd:element name="USPrice" type="xsd:decimal"/>
      <xsd:element name="shipDate" type="xsd:date" minOccurs="0"/>
    </xsd:sequence>
  </xsd:complexType>
</xsd:schema>
`, poType, billOccurs, quantityMax)
}

// ScaledXSD returns a synthetic catalog schema with n section types (2n+1
// complex types overall), as XSD text. Every section shares its child
// element names, so the R_sub/R_dis fixpoint does real product-DFA work on
// each of the (2n+1)² type pairs — the schema to reach for when per-pair
// preprocessing must dominate a measurement, as in the cold-vs-warm
// registry startup scenario. optionalNote and quantityMax distinguish a
// source/target pair the same way Figure2XSD's parameters do: notes
// optional→required and a tightened quantity facet both force
// revalidation of the affected subtrees.
func ScaledXSD(sections int, optionalNote bool, quantityMax int) string {
	noteOccurs := ""
	if optionalNote {
		noteOccurs = ` minOccurs="0"`
	}
	var b strings.Builder
	b.WriteString(`<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:element name="catalog" type="Catalog"/>

  <xsd:complexType name="Catalog">
    <xsd:sequence>
`)
	for i := 0; i < sections; i++ {
		fmt.Fprintf(&b, "      <xsd:element name=\"section%[1]d\" type=\"Section%[1]d\" minOccurs=\"0\"/>\n", i)
	}
	b.WriteString(`    </xsd:sequence>
  </xsd:complexType>
`)
	for i := 0; i < sections; i++ {
		fmt.Fprintf(&b, `
  <xsd:complexType name="Section%[1]d">
    <xsd:sequence>
      <xsd:element name="title" type="xsd:string"/>
      <xsd:element name="note" type="xsd:string"%[2]s/>
      <xsd:element name="entry" type="Entry%[1]d" minOccurs="0" maxOccurs="unbounded"/>
    </xsd:sequence>
  </xsd:complexType>

  <xsd:complexType name="Entry%[1]d">
    <xsd:sequence>
      <xsd:element name="sku" type="xsd:string"/>
      <xsd:element name="quantity">
        <xsd:simpleType>
          <xsd:restriction base="xsd:positiveInteger">
            <xsd:maxExclusive value="%[3]d"/>
          </xsd:restriction>
        </xsd:simpleType>
      </xsd:element>
    </xsd:sequence>
  </xsd:complexType>
`, i, noteOccurs, quantityMax+i)
	}
	b.WriteString("</xsd:schema>\n")
	return b.String()
}
