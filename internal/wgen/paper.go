package wgen

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/fa"
	"repro/internal/regexpsym"
	"repro/internal/schema"
	"repro/internal/xmltree"
)

// This file holds the paper's experimental fixtures: the Figure 1a / 1b /
// Figure 2 purchase-order schemas (programmatic form) and the documents of
// Tables 2–3 / Figure 3, parameterized by item count.

// PaperSchemas bundles the schemas the experiments compare, all sharing one
// alphabet so relations can be computed between any pair.
type PaperSchemas struct {
	Alpha *fa.Alphabet
	// Source1 is the Figure 1a schema: billTo optional (POType1), with the
	// full Figure 2 substructure below purchaseOrder.
	Source1 *schema.Schema
	// Target is the complete Figure 2 schema: billTo required (POType2),
	// quantity restricted to positiveInteger < 100.
	Target *schema.Schema
	// Source2 is the Experiment-2 source: Figure 2 with quantity's
	// xsd:maxExclusive relaxed to 200.
	Source2 *schema.Schema
}

// NewPaperSchemas builds and compiles the three schemas.
func NewPaperSchemas() *PaperSchemas {
	alpha := fa.NewAlphabet()
	return &PaperSchemas{
		Alpha:   alpha,
		Source1: buildPOSchema(alpha, true, 100),
		Target:  buildPOSchema(alpha, false, 100),
		Source2: buildPOSchema(alpha, false, 200),
	}
}

// buildPOSchema constructs the Figure 2 purchase-order schema. optionalBill
// makes billTo optional (Figure 1a's POType1); quantityMax sets the
// xsd:maxExclusive facet on Item/quantity.
func buildPOSchema(alpha *fa.Alphabet, optionalBill bool, quantityMax float64) *schema.Schema {
	s := schema.New(alpha)
	must := func(id schema.TypeID, err error) schema.TypeID {
		if err != nil {
			panic(err)
		}
		return id
	}
	mustSet := func(err error) {
		if err != nil {
			panic(err)
		}
	}

	xstring := must(s.AddSimpleType("xsd:string", schema.NewSimpleType(schema.StringKind)))
	xdecimal := must(s.AddSimpleType("xsd:decimal", schema.NewSimpleType(schema.DecimalKind)))
	xdate := must(s.AddSimpleType("xsd:date", schema.NewSimpleType(schema.DateKind)))
	quantity := must(s.AddSimpleType("QuantityType",
		schema.NewSimpleType(schema.PositiveIntegerKind).WithMaxExclusive(quantityMax)))

	usAddress := must(s.AddComplexType("USAddress",
		regexpsym.MustParse("name, street, city, state, zip, country")))
	for _, l := range []string{"name", "street", "city", "state", "country"} {
		mustSet(s.SetChildType(usAddress, l, xstring))
	}
	mustSet(s.SetChildType(usAddress, "zip", xdecimal))

	item := must(s.AddComplexType("Item",
		regexpsym.MustParse("productName, quantity, USPrice, shipDate?")))
	mustSet(s.SetChildType(item, "productName", xstring))
	mustSet(s.SetChildType(item, "quantity", quantity))
	mustSet(s.SetChildType(item, "USPrice", xdecimal))
	mustSet(s.SetChildType(item, "shipDate", xdate))

	items := must(s.AddComplexType("Items", regexpsym.MustParse("item*")))
	mustSet(s.SetChildType(items, "item", item))

	poModel := "shipTo, billTo, items"
	poName := "POType2"
	if optionalBill {
		poModel = "shipTo, billTo?, items"
		poName = "POType1"
	}
	po := must(s.AddComplexType(poName, regexpsym.MustParse(poModel)))
	mustSet(s.SetChildType(po, "shipTo", usAddress))
	mustSet(s.SetChildType(po, "billTo", usAddress))
	mustSet(s.SetChildType(po, "items", items))

	s.SetRoot("purchaseOrder", po)
	s.SetRoot("comment", xstring) // the Figure 2 global comment element
	return s.MustCompile()
}

// PODocOptions parameterizes purchase-order document generation.
type PODocOptions struct {
	// Items is the number of item elements (Table 2 uses 2..1000).
	Items int
	// IncludeBillTo controls whether the optional billTo is present.
	IncludeBillTo bool
	// MaxQuantity bounds the generated quantity values: each quantity is
	// drawn uniformly from [1, MaxQuantity]. Use 99 for documents that
	// satisfy the Figure 2 target schema, 199 for Experiment-2 sources.
	MaxQuantity int
	// Seed makes the document deterministic.
	Seed int64
}

// PODocument generates a purchase-order document per the Figure 2 layout:
//
//	purchaseOrder(shipTo, [billTo,] items(item^N))
//	item(productName, quantity, USPrice)
//
// Addresses have the full 6-field USAddress content.
func PODocument(opts PODocOptions) *xmltree.Node {
	rng := rand.New(rand.NewSource(opts.Seed))
	if opts.MaxQuantity <= 0 {
		opts.MaxQuantity = 99
	}
	po := xmltree.NewElement("purchaseOrder")
	po.AppendChild(usAddressNode("shipTo", rng))
	if opts.IncludeBillTo {
		po.AppendChild(usAddressNode("billTo", rng))
	}
	items := xmltree.NewElement("items")
	for i := 0; i < opts.Items; i++ {
		item := xmltree.NewElement("item",
			leaf("productName", productNames[rng.Intn(len(productNames))]),
			leaf("quantity", fmt.Sprintf("%d", 1+rng.Intn(opts.MaxQuantity))),
			leaf("USPrice", fmt.Sprintf("%d.%02d", 1+rng.Intn(500), rng.Intn(100))),
		)
		items.AppendChild(item)
	}
	po.AppendChild(items)
	return po
}

var productNames = []string{
	"Lawnmower", "Baby Monitor", "Lapis Necklace", "Sturdy Shelves",
	"Garden Hose", "Picture Frame", "Desk Lamp", "Tea Kettle",
}

var (
	streetNames = []string{"Main St", "Oak Ave", "Maple Dr", "Elm Ct", "Airport Rd"}
	cityNames   = []string{"Yorktown", "Mill Valley", "Old Town", "Haifa", "Springfield"}
	stateNames  = []string{"NY", "CA", "PA", "VT", "MI"}
	personNames = []string{"Alice Smith", "Robert Smith", "Helen Zoe", "Oded S", "Mukund R"}
)

func usAddressNode(label string, rng *rand.Rand) *xmltree.Node {
	return xmltree.NewElement(label,
		leaf("name", personNames[rng.Intn(len(personNames))]),
		leaf("street", fmt.Sprintf("%d %s", 1+rng.Intn(999), streetNames[rng.Intn(len(streetNames))])),
		leaf("city", cityNames[rng.Intn(len(cityNames))]),
		leaf("state", stateNames[rng.Intn(len(stateNames))]),
		leaf("zip", fmt.Sprintf("%05d", 10000+rng.Intn(89999))),
		leaf("country", "US"),
	)
}

func leaf(label, value string) *xmltree.Node {
	return xmltree.NewElement(label, xmltree.NewText(value))
}

// PaperItemCounts are the item-count points of Table 2 / Figure 3.
var PaperItemCounts = []int{2, 50, 100, 200, 500, 1000}

// POXMLBytes serializes a purchase-order document the way Table 2 measures
// file sizes (indented, with XML declaration).
func POXMLBytes(doc *xmltree.Node) []byte {
	var b strings.Builder
	b.WriteString("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n")
	_ = xmltree.WriteXML(&b, doc, "  ")
	return []byte(b.String())
}
