// Package wgen generates workloads for the revalidation experiments:
// random documents valid with respect to an abstract schema type, random
// simple values satisfying facets, the paper's purchase-order schemas
// (Figures 1 and 2) in both programmatic and XSD-text form, and the
// parameterized purchase-order documents behind Tables 2–3 and Figure 3.
package wgen

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/fa"
	"repro/internal/schema"
	"repro/internal/xmltree"
)

// Generator produces random documents valid for a compiled schema.
type Generator struct {
	S   *schema.Schema
	Rng *rand.Rand
	// MaxWordLen bounds the length of each content-model word sampled
	// (default 8).
	MaxWordLen int
	// MaxDepth bounds tree height (default 24). Trees respect the bound
	// by descending through cheapest-rank labels when the budget runs low.
	MaxDepth int
	// MaxNodes bounds total tree size (default 4096): high-fanout recursive
	// schemas can otherwise yield trees exponential in MaxDepth. Generation
	// fails (ok=false) when the budget is exhausted.
	MaxNodes int

	rank []int // min tree-rank per type (see typeRanks)
}

// NewGenerator returns a generator for a compiled schema.
func NewGenerator(s *schema.Schema, rng *rand.Rand) *Generator {
	if !s.Compiled() {
		panic("wgen: schema must be compiled")
	}
	return &Generator{S: s, Rng: rng, MaxWordLen: 8, MaxDepth: 24, MaxNodes: 4096, rank: typeRanks(s)}
}

// typeRanks computes, per type, the minimum "rank" (height measure) of a
// valid tree: simple types have rank 1; a complex type has rank r+1 when
// some word of its content model uses only labels whose child types have
// rank ≤ r (ε gives rank 1). Non-productive types get rank -1 (no valid
// tree exists).
func typeRanks(s *schema.Schema) []int {
	n := len(s.Types)
	rank := make([]int, n)
	for i := range rank {
		rank[i] = -1
	}
	for _, t := range s.Types {
		if t.Simple {
			rank[t.ID] = 1
		}
	}
	// Round r assigns rank r+1 to every complex type whose content model
	// admits a word over labels with child rank ≤ r. Every assignable rank
	// is ≤ n+1, so n+2 rounds suffice.
	for r := 0; r <= n+1; r++ {
		for _, t := range s.Types {
			if t.Simple || rank[t.ID] >= 0 {
				continue
			}
			mask := make([]bool, s.Alpha.Size())
			for sym, child := range t.Child {
				if cr := rank[child]; cr >= 0 && cr <= r {
					mask[sym] = true
				}
			}
			if fa.NonemptyRestricted(t.DFA, mask) {
				rank[t.ID] = r + 1
			}
		}
	}
	return rank
}

// Tree generates a random tree valid for type τ with the given root label.
// ok=false when τ is non-productive or the depth/size budgets cannot be
// met.
func (g *Generator) Tree(label string, τ schema.TypeID) (*xmltree.Node, bool) {
	nodes := g.MaxNodes
	return g.tree(label, τ, g.MaxDepth, &nodes)
}

// Document generates a random valid document: it picks a root from R
// uniformly and generates below it.
func (g *Generator) Document() (*xmltree.Node, bool) {
	type rootChoice struct {
		sym fa.Symbol
		τ   schema.TypeID
	}
	var roots []rootChoice
	for sym, τ := range g.S.Roots {
		if g.rank[τ] >= 0 {
			roots = append(roots, rootChoice{sym, τ})
		}
	}
	if len(roots) == 0 {
		return nil, false
	}
	// Deterministic order under a seeded Rng: sort by symbol.
	for i := 1; i < len(roots); i++ {
		for j := i; j > 0 && roots[j].sym < roots[j-1].sym; j-- {
			roots[j], roots[j-1] = roots[j-1], roots[j]
		}
	}
	pick := roots[g.Rng.Intn(len(roots))]
	return g.Tree(g.S.Alpha.Name(pick.sym), pick.τ)
}

func (g *Generator) tree(label string, τ schema.TypeID, budget int, nodes *int) (*xmltree.Node, bool) {
	t := g.S.TypeOf(τ)
	if g.rank[τ] < 0 || g.rank[τ] > budget {
		return nil, false
	}
	if *nodes <= 0 {
		return nil, false
	}
	*nodes--
	node := xmltree.NewElement(label)
	if t.Simple {
		value, ok := SampleSimple(t.Value, g.Rng)
		if !ok {
			return nil, false
		}
		if value != "" {
			node.AppendChild(xmltree.NewText(value))
		}
		return node, true
	}
	// Restrict the content model to labels affordable within the budget,
	// then sample a word.
	mask := make([]bool, g.S.Alpha.Size())
	for sym, child := range t.Child {
		if cr := g.rank[child]; cr >= 0 && cr < budget {
			mask[sym] = true
		}
	}
	dfa := fa.RestrictSymbols(t.DFA, mask)
	word, ok := fa.Sample(dfa, g.Rng, g.MaxWordLen)
	if !ok {
		// The sampler can miss when accepted words are all longer than
		// MaxWordLen; fall back to a shortest accepted word.
		word, ok = fa.ShortestAccepted(dfa)
		if !ok {
			return nil, false
		}
	}
	for _, sym := range word {
		childLabel := g.S.Alpha.Name(sym)
		child, ok := g.tree(childLabel, t.Child[sym], budget-1, nodes)
		if !ok {
			return nil, false
		}
		node.AppendChild(child)
	}
	return node, true
}

// SampleSimple returns a random value satisfying the facets, or ok=false
// when no value can be produced (contradictory facets).
func SampleSimple(st *schema.SimpleType, rng *rand.Rand) (string, bool) {
	if st == nil {
		return randomWord(rng), true
	}
	if st.ListItem != nil {
		min, max := 0, 4
		if st.MinLength > 0 {
			min = st.MinLength
		}
		if st.MaxLength >= 0 {
			max = st.MaxLength
		}
		if max < min {
			return "", false
		}
		n := min
		if max > min {
			n = min + rng.Intn(max-min+1)
		}
		items := make([]string, n)
		for i := range items {
			v, ok := SampleSimple(st.ListItem, rng)
			if !ok || strings.ContainsAny(v, " \t\n") || v == "" {
				// items must be whitespace-free tokens; retry with a digit
				v = fmt.Sprintf("%d", rng.Intn(100))
				if !st.ListItem.AcceptsValue(v) {
					return "", false
				}
			}
			items[i] = v
		}
		value := strings.Join(items, " ")
		if !st.AcceptsValue(value) {
			return "", false
		}
		return value, true
	}
	if len(st.Enumeration) > 0 {
		// Pick among enum values that really satisfy the remaining facets.
		var ok []string
		for _, v := range st.Enumeration {
			if st.AcceptsValue(v) {
				ok = append(ok, v)
			}
		}
		if len(ok) == 0 {
			return "", false
		}
		return ok[rng.Intn(len(ok))], true
	}
	for attempt := 0; attempt < 64; attempt++ {
		v := sampleBase(st, rng)
		if st.AcceptsValue(v) {
			return v, true
		}
	}
	return "", false
}

func sampleBase(st *schema.SimpleType, rng *rand.Rand) string {
	switch st.Base {
	case schema.BooleanKind:
		return []string{"true", "false", "1", "0"}[rng.Intn(4)]
	case schema.DecimalKind, schema.IntegerKind, schema.PositiveIntegerKind:
		lo, hi := int64(0), int64(1000)
		if st.Base == schema.PositiveIntegerKind {
			lo = 1
		}
		if st.MinInclusive != nil {
			lo = int64(*st.MinInclusive)
		}
		if st.MinExclusive != nil {
			lo = int64(*st.MinExclusive) + 1
		}
		if st.MaxInclusive != nil {
			hi = int64(*st.MaxInclusive)
		}
		if st.MaxExclusive != nil {
			hi = int64(*st.MaxExclusive) - 1
		}
		if hi < lo {
			return "0" // facets contradictory; caller re-checks
		}
		n := lo + rng.Int63n(hi-lo+1)
		if st.Base == schema.DecimalKind && rng.Intn(2) == 0 {
			return fmt.Sprintf("%d.%02d", n, rng.Intn(100))
		}
		return fmt.Sprintf("%d", n)
	case schema.DateKind:
		return fmt.Sprintf("%04d-%02d-%02d", 1990+rng.Intn(40), 1+rng.Intn(12), 1+rng.Intn(28))
	default:
		// String-ish: respect length facets.
		min, max := 1, 12
		if st.MinLength >= 0 {
			min = st.MinLength
		}
		if st.MaxLength >= 0 {
			max = st.MaxLength
		}
		if max < min {
			return ""
		}
		n := min
		if max > min {
			n = min + rng.Intn(max-min+1)
		}
		b := make([]byte, n)
		const letters = "abcdefghijklmnopqrstuvwxyz"
		for i := range b {
			b[i] = letters[rng.Intn(len(letters))]
		}
		return string(b)
	}
}

func randomWord(rng *rand.Rand) string {
	const letters = "abcdefghijklmnopqrstuvwxyz "
	n := 1 + rng.Intn(10)
	b := make([]byte, n)
	for i := range b {
		b[i] = letters[rng.Intn(len(letters))]
	}
	return string(b)
}
