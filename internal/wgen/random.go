package wgen

import (
	"fmt"
	"math/rand"

	"repro/internal/fa"
	"repro/internal/regexpsym"
	"repro/internal/schema"
)

// RandomSchemaOptions bound random schema generation.
type RandomSchemaOptions struct {
	// Labels is the label vocabulary; schemas meant to be cast between
	// should share it. Defaults to 8 generated labels.
	Labels []string
	// SimpleTypes and ComplexTypes bound the type counts (defaults 3 / 4).
	SimpleTypes, ComplexTypes int
	// MaxModelDepth bounds content-model expression depth (default 3).
	MaxModelDepth int
}

func (o *RandomSchemaOptions) defaults() {
	if len(o.Labels) == 0 {
		for i := 0; i < 8; i++ {
			o.Labels = append(o.Labels, fmt.Sprintf("el%c", 'A'+i))
		}
	}
	if o.SimpleTypes == 0 {
		o.SimpleTypes = 3
	}
	if o.ComplexTypes == 0 {
		o.ComplexTypes = 4
	}
	if o.MaxModelDepth == 0 {
		o.MaxModelDepth = 3
	}
}

// RandomSchema generates a compiled random schema: facet-constrained simple
// types and complex types with random 1-unambiguous content models over the
// vocabulary, random child-type assignments, and two root labels. Intended
// for differential/fuzz testing of the cast engine; the invariants the
// engine requires (UPA, consistent child typing, compilability) hold by
// construction or by retry.
func RandomSchema(rng *rand.Rand, alpha *fa.Alphabet, opts RandomSchemaOptions) *schema.Schema {
	opts.defaults()
	for attempt := 0; ; attempt++ {
		s, err := tryRandomSchema(rng, alpha, opts)
		if err == nil {
			return s
		}
		if attempt > 500 {
			panic(fmt.Sprintf("wgen: could not generate a schema after %d attempts: %v", attempt, err))
		}
	}
}

func tryRandomSchema(rng *rand.Rand, alpha *fa.Alphabet, opts RandomSchemaOptions) (*schema.Schema, error) {
	s := schema.New(alpha)
	var typeIDs []schema.TypeID

	for i := 0; i < opts.SimpleTypes; i++ {
		id, err := s.AddSimpleType(fmt.Sprintf("S%d", i), randomSimpleType(rng))
		if err != nil {
			return nil, err
		}
		typeIDs = append(typeIDs, id)
	}
	type pendingComplex struct {
		id     schema.TypeID
		labels []string
	}
	var pending []pendingComplex
	for i := 0; i < opts.ComplexTypes; i++ {
		expr := randomUnambiguousModel(rng, opts.Labels, opts.MaxModelDepth)
		id, err := s.AddComplexType(fmt.Sprintf("C%d", i), expr)
		if err != nil {
			return nil, err
		}
		typeIDs = append(typeIDs, id)
		pending = append(pending, pendingComplex{id: id, labels: regexpsym.Labels(expr)})
	}
	// Child assignments may reference any type (including later complex
	// ones), so wire them after all declarations.
	for _, p := range pending {
		for _, l := range p.labels {
			child := typeIDs[rng.Intn(len(typeIDs))]
			if err := s.SetChildType(p.id, l, child); err != nil {
				return nil, err
			}
		}
	}
	// Two random root labels.
	for i := 0; i < 2; i++ {
		s.SetRoot(opts.Labels[rng.Intn(len(opts.Labels))], typeIDs[rng.Intn(len(typeIDs))])
	}
	if err := s.Compile(); err != nil {
		return nil, err
	}
	return s, nil
}

func randomSimpleType(rng *rand.Rand) *schema.SimpleType {
	bases := []schema.BaseKind{
		schema.StringKind, schema.BooleanKind, schema.DecimalKind,
		schema.IntegerKind, schema.PositiveIntegerKind, schema.DateKind,
	}
	st := schema.NewSimpleType(bases[rng.Intn(len(bases))])
	switch st.Base {
	case schema.IntegerKind, schema.PositiveIntegerKind, schema.DecimalKind:
		if rng.Intn(2) == 0 {
			lo := float64(rng.Intn(50))
			hi := lo + 1 + float64(rng.Intn(200))
			st = st.WithMinInclusive(lo).WithMaxExclusive(hi)
		}
	case schema.StringKind:
		switch rng.Intn(3) {
		case 0:
			st = st.WithLength(rng.Intn(3), 3+rng.Intn(10))
		case 1:
			st = st.WithEnumeration("red", "green", "blue")
		}
	}
	return st
}

// randomUnambiguousModel draws random expressions until one passes the
// 1-unambiguity check, falling back to a plain distinct-label sequence.
func randomUnambiguousModel(rng *rand.Rand, labels []string, depth int) regexpsym.Node {
	for attempt := 0; attempt < 12; attempt++ {
		expr := randomModel(rng, labels, depth)
		if regexpsym.IsOneUnambiguous(expr) {
			return expr
		}
	}
	perm := rng.Perm(len(labels))
	n := 1 + rng.Intn(3)
	var kids []regexpsym.Node
	for i := 0; i < n && i < len(perm); i++ {
		kids = append(kids, regexpsym.Lbl(labels[perm[i]]))
	}
	return regexpsym.Cat(kids...)
}

func randomModel(rng *rand.Rand, labels []string, depth int) regexpsym.Node {
	if depth == 0 || rng.Intn(3) == 0 {
		if rng.Intn(12) == 0 {
			return regexpsym.Epsilon{}
		}
		return regexpsym.Lbl(labels[rng.Intn(len(labels))])
	}
	switch rng.Intn(6) {
	case 0, 1:
		return regexpsym.Cat(randomModel(rng, labels, depth-1), randomModel(rng, labels, depth-1))
	case 2:
		return regexpsym.Or(randomModel(rng, labels, depth-1), randomModel(rng, labels, depth-1))
	case 3:
		return regexpsym.Opt(randomModel(rng, labels, depth-1))
	case 4:
		return regexpsym.Star(randomModel(rng, labels, depth-1))
	default:
		return regexpsym.Bound(randomModel(rng, labels, depth-1), rng.Intn(2), 1+rng.Intn(3))
	}
}

// MutateSchema returns a perturbed copy of s over the same alphabet — the
// kind of local evolution (facet change, optionality toggle, content-model
// tweak) schema cast validation is designed for. The result is compiled;
// mutations that break compilability (e.g. UPA) are retried.
func MutateSchema(rng *rand.Rand, s *schema.Schema, labels []string) *schema.Schema {
	for attempt := 0; ; attempt++ {
		m, err := tryMutate(rng, s, labels)
		if err == nil {
			return m
		}
		if attempt > 500 {
			panic(fmt.Sprintf("wgen: could not mutate schema after %d attempts: %v", attempt, err))
		}
	}
}

func tryMutate(rng *rand.Rand, s *schema.Schema, labels []string) (*schema.Schema, error) {
	out := schema.New(s.Alpha)
	victim := s.Types[rng.Intn(len(s.Types))]

	// Copy types, perturbing the victim.
	ids := make([]schema.TypeID, len(s.Types))
	for _, t := range s.Types {
		var (
			id  schema.TypeID
			err error
		)
		if t.Simple {
			st := t.Value
			if t == victim {
				st = mutateSimple(rng, st)
			}
			id, err = out.AddSimpleType(t.Name, st)
		} else {
			content := t.Content
			if t == victim {
				content = mutateModel(rng, content, labels)
			}
			id, err = out.AddComplexType(t.Name, content)
		}
		if err != nil {
			return nil, err
		}
		ids[t.ID] = id
	}
	for _, t := range s.Types {
		if t.Simple {
			continue
		}
		// Keep original bindings; add bindings for labels the mutation may
		// have introduced (assign a random existing type).
		nt := out.TypeOf(ids[t.ID])
		for sym, child := range t.Child {
			if err := out.SetChildType(nt.ID, s.Alpha.Name(sym), ids[child]); err != nil {
				return nil, err
			}
		}
		for _, l := range regexpsym.Labels(nt.Content) {
			sym := s.Alpha.Lookup(l)
			if sym != fa.NoSymbol {
				if _, bound := t.Child[sym]; bound {
					continue
				}
			}
			pick := ids[rng.Intn(len(ids))]
			if err := out.SetChildType(nt.ID, l, pick); err != nil {
				return nil, err
			}
		}
	}
	for sym, τ := range s.Roots {
		out.SetRoot(s.Alpha.Name(sym), ids[τ])
	}
	if err := out.Compile(); err != nil {
		return nil, err
	}
	return out, nil
}

func mutateSimple(rng *rand.Rand, st *schema.SimpleType) *schema.SimpleType {
	if st == nil {
		return schema.NewSimpleType(schema.StringKind)
	}
	c := *st
	switch rng.Intn(3) {
	case 0: // tighten or loosen a numeric bound
		v := float64(10 + rng.Intn(200))
		c = *c.WithMaxExclusive(v)
	case 1: // drop all facets
		c = *schema.NewSimpleType(st.Base)
	default: // switch the base
		bases := []schema.BaseKind{schema.StringKind, schema.IntegerKind, schema.DateKind}
		c = *schema.NewSimpleType(bases[rng.Intn(len(bases))])
	}
	return &c
}

func mutateModel(rng *rand.Rand, n regexpsym.Node, labels []string) regexpsym.Node {
	switch rng.Intn(4) {
	case 0: // make the whole model optional
		return regexpsym.Opt(n)
	case 1: // require at least one more trailing label
		return regexpsym.Cat(n, regexpsym.Lbl(labels[rng.Intn(len(labels))]))
	case 2: // allow repetition
		return regexpsym.Star(n)
	default: // replace outright
		return randomUnambiguousModel(rng, labels, 2)
	}
}
