package wgen

import (
	"math/rand"
	"testing"

	"repro/internal/fa"
	"repro/internal/regexpsym"
	"repro/internal/schema"
)

func TestRandomSchemaIsWellFormed(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 20; i++ {
		alpha := fa.NewAlphabet()
		s := RandomSchema(rng, alpha, RandomSchemaOptions{})
		if !s.Compiled() {
			t.Fatal("random schema must be compiled")
		}
		if len(s.Types) == 0 || len(s.Roots) == 0 {
			t.Fatal("random schema must have types and roots")
		}
		// Generated docs (when generation succeeds) validate.
		g := NewGenerator(s, rng)
		for j := 0; j < 10; j++ {
			doc, ok := g.Document()
			if !ok {
				continue
			}
			if err := s.Validate(doc); err != nil {
				t.Fatalf("random-schema doc invalid: %v\nschema:\n%s\ndoc: %s", err, s, doc)
			}
		}
	}
}

func TestRandomSchemaCustomOptions(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	alpha := fa.NewAlphabet()
	s := RandomSchema(rng, alpha, RandomSchemaOptions{
		Labels:       []string{"x", "y"},
		SimpleTypes:  1,
		ComplexTypes: 2,
	})
	if len(s.Types) != 3 {
		t.Fatalf("types = %d, want 3", len(s.Types))
	}
	for _, l := range alpha.Names() {
		if l != "x" && l != "y" {
			t.Fatalf("unexpected label %q", l)
		}
	}
}

func TestMutateSchemaStaysCompilable(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	labels := []string{"x", "y", "z"}
	alpha := fa.NewAlphabet()
	s := RandomSchema(rng, alpha, RandomSchemaOptions{Labels: labels})
	for i := 0; i < 25; i++ {
		s = MutateSchema(rng, s, labels)
		if !s.Compiled() {
			t.Fatal("mutated schema must be compiled")
		}
		if s.Alpha != alpha {
			t.Fatal("mutation must preserve the alphabet")
		}
		// Same type names survive.
		for _, typ := range s.Types {
			if typ.Name == "" {
				t.Fatal("type lost its name")
			}
		}
	}
}

func TestMutateSchemaChangesSomething(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	labels := []string{"x", "y", "z"}
	alpha := fa.NewAlphabet()
	s := RandomSchema(rng, alpha, RandomSchemaOptions{Labels: labels})
	changed := 0
	for i := 0; i < 20; i++ {
		m := MutateSchema(rng, s, labels)
		if s.String() != m.String() {
			changed++
		}
	}
	if changed == 0 {
		t.Fatal("mutations should usually change the schema")
	}
}

func TestFigure2XSDVariants(t *testing.T) {
	opt := Figure2XSD(true, 100)
	req := Figure2XSD(false, 200)
	if opt == req {
		t.Fatal("variants must differ")
	}
	for _, want := range []string{"purchaseOrder", "POType1", `minOccurs="0"`, `maxExclusive value="100"`} {
		if !contains(opt, want) {
			t.Fatalf("optional-bill XSD missing %q", want)
		}
	}
	for _, want := range []string{"POType2", `maxExclusive value="200"`} {
		if !contains(req, want) {
			t.Fatalf("required-bill XSD missing %q", want)
		}
	}
	if contains(req, "POType1") {
		t.Fatal("required variant should use POType2")
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestGeneratorMaxNodesBudget(t *testing.T) {
	// A high-fanout recursive schema: with a tiny node budget generation
	// must fail rather than explode.
	s := schema.New(nil)
	leaf, _ := s.AddSimpleType("leaf", nil)
	wide, _ := s.AddComplexType("Wide", mustModel("k, k, k, k | l"))
	if err := s.SetChildType(wide, "k", wide); err != nil {
		t.Fatal(err)
	}
	if err := s.SetChildType(wide, "l", leaf); err != nil {
		t.Fatal(err)
	}
	s.SetRoot("k", wide)
	if err := s.Compile(); err != nil {
		t.Fatal(err)
	}
	g := NewGenerator(s, rand.New(rand.NewSource(9)))
	g.MaxNodes = 50
	okCount, failCount := 0, 0
	for i := 0; i < 50; i++ {
		doc, ok := g.Document()
		if !ok {
			failCount++
			continue
		}
		okCount++
		if doc.Size() > 51 { // element nodes bounded by budget (+ text leaves)
			if doc.Size() > 110 {
				t.Fatalf("budget exceeded: size %d", doc.Size())
			}
		}
	}
	if okCount == 0 {
		t.Fatal("some generations should succeed (the 'l' branch)")
	}
}

func mustModel(src string) regexpsym.Node { return regexpsym.MustParse(src) }
