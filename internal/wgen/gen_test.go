package wgen

import (
	"math/rand"
	"testing"

	"repro/internal/regexpsym"
	"repro/internal/schema"
	"repro/internal/xmltree"
)

func TestGeneratedTreesAreValid(t *testing.T) {
	ps := NewPaperSchemas()
	rng := rand.New(rand.NewSource(3))
	for _, s := range []*schema.Schema{ps.Source1, ps.Target, ps.Source2} {
		g := NewGenerator(s, rng)
		for i := 0; i < 50; i++ {
			doc, ok := g.Document()
			if !ok {
				t.Fatal("generator failed on a productive schema")
			}
			if err := s.Validate(doc); err != nil {
				t.Fatalf("generated doc invalid: %v\n%s", err, doc)
			}
		}
	}
}

func TestGeneratorRespectsDepthBudget(t *testing.T) {
	// Recursive schema: tree = (leaf | tree, tree). Unbounded in principle;
	// the generator must stay within MaxDepth.
	s := schema.New(nil)
	leafT, _ := s.AddSimpleType("leafT", nil)
	treeT, _ := s.AddComplexType("treeT", regexpsym.MustParse("leaf | (tree, tree)"))
	if err := s.SetChildType(treeT, "leaf", leafT); err != nil {
		t.Fatal(err)
	}
	if err := s.SetChildType(treeT, "tree", treeT); err != nil {
		t.Fatal(err)
	}
	s.SetRoot("tree", treeT)
	if err := s.Compile(); err != nil {
		t.Fatal(err)
	}
	g := NewGenerator(s, rand.New(rand.NewSource(5)))
	g.MaxDepth = 6
	for i := 0; i < 100; i++ {
		doc, ok := g.Document()
		if !ok {
			t.Fatal("generator should always succeed here")
		}
		if err := s.Validate(doc); err != nil {
			t.Fatalf("generated doc invalid: %v", err)
		}
		if h := height(doc); h > g.MaxDepth+1 {
			t.Fatalf("height %d exceeds budget %d", h, g.MaxDepth)
		}
	}
}

func height(n *xmltree.Node) int {
	max := 0
	for _, c := range n.Children {
		if h := height(c); h > max {
			max = h
		}
	}
	return max + 1
}

func TestGeneratorNonProductiveType(t *testing.T) {
	s := schema.New(nil)
	loop, _ := s.AddComplexType("Loop", regexpsym.MustParse("a"))
	if err := s.SetChildType(loop, "a", loop); err != nil {
		t.Fatal(err)
	}
	s.SetRoot("a", loop)
	if err := s.Compile(); err != nil {
		t.Fatal(err)
	}
	g := NewGenerator(s, rand.New(rand.NewSource(1)))
	if _, ok := g.Document(); ok {
		t.Fatal("cannot generate from a non-productive root")
	}
	if _, ok := g.Tree("a", loop); ok {
		t.Fatal("cannot generate a tree for a non-productive type")
	}
}

func TestSampleSimple(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	types := []*schema.SimpleType{
		nil,
		schema.NewSimpleType(schema.StringKind),
		schema.NewSimpleType(schema.BooleanKind),
		schema.NewSimpleType(schema.IntegerKind).WithMinInclusive(-5).WithMaxInclusive(5),
		schema.NewSimpleType(schema.PositiveIntegerKind).WithMaxExclusive(100),
		schema.NewSimpleType(schema.DecimalKind).WithMinExclusive(0),
		schema.NewSimpleType(schema.DateKind),
		schema.NewSimpleType(schema.StringKind).WithEnumeration("US", "CA"),
		schema.NewSimpleType(schema.StringKind).WithLength(3, 5),
	}
	for _, st := range types {
		for i := 0; i < 40; i++ {
			v, ok := SampleSimple(st, rng)
			if !ok {
				t.Fatalf("SampleSimple(%s) failed", st)
			}
			if !st.AcceptsValue(v) {
				t.Fatalf("SampleSimple(%s) produced invalid value %q", st, v)
			}
		}
	}
}

func TestSampleSimpleContradictoryFacets(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	st := schema.NewSimpleType(schema.IntegerKind).WithMinInclusive(10).WithMaxInclusive(5)
	if _, ok := SampleSimple(st, rng); ok {
		t.Fatal("contradictory facets should fail sampling")
	}
	enum := schema.NewSimpleType(schema.IntegerKind).WithEnumeration("abc")
	if _, ok := SampleSimple(enum, rng); ok {
		t.Fatal("enum with no valid members should fail sampling")
	}
}

func TestPODocumentShape(t *testing.T) {
	ps := NewPaperSchemas()
	for _, n := range []int{0, 1, 2, 50} {
		doc := PODocument(PODocOptions{Items: n, IncludeBillTo: true, Seed: 1})
		if err := ps.Target.Validate(doc); err != nil {
			t.Fatalf("PO doc with %d items invalid for target: %v", n, err)
		}
		if err := ps.Source1.Validate(doc); err != nil {
			t.Fatalf("PO doc with %d items invalid for source1: %v", n, err)
		}
		items := doc.Children[2]
		if items.Label != "items" || len(items.Children) != n {
			t.Fatalf("items count = %d, want %d", len(items.Children), n)
		}
	}
}

func TestPODocumentWithoutBillTo(t *testing.T) {
	ps := NewPaperSchemas()
	doc := PODocument(PODocOptions{Items: 3, IncludeBillTo: false, Seed: 2})
	if err := ps.Source1.Validate(doc); err != nil {
		t.Fatalf("billTo-less doc should satisfy Figure 1a: %v", err)
	}
	if err := ps.Target.Validate(doc); err == nil {
		t.Fatal("billTo-less doc must NOT satisfy Figure 2 (billTo required)")
	}
}

func TestPODocumentQuantityRanges(t *testing.T) {
	ps := NewPaperSchemas()
	// Quantities up to 199 satisfy the relaxed source2 schema but not
	// necessarily the strict target.
	doc := PODocument(PODocOptions{Items: 100, IncludeBillTo: true, MaxQuantity: 199, Seed: 3})
	if err := ps.Source2.Validate(doc); err != nil {
		t.Fatalf("doc should satisfy the maxExclusive=200 schema: %v", err)
	}
	if err := ps.Target.Validate(doc); err == nil {
		t.Fatal("with 100 items and quantities ≤199 some quantity ≥100 is expected (seed-dependent but checked)")
	}
	// Quantities ≤ 99 satisfy both.
	doc2 := PODocument(PODocOptions{Items: 100, IncludeBillTo: true, MaxQuantity: 99, Seed: 3})
	if err := ps.Target.Validate(doc2); err != nil {
		t.Fatalf("doc with quantities <100 should satisfy the target: %v", err)
	}
}

func TestPODocumentDeterminism(t *testing.T) {
	a := PODocument(PODocOptions{Items: 5, IncludeBillTo: true, Seed: 42})
	b := PODocument(PODocOptions{Items: 5, IncludeBillTo: true, Seed: 42})
	if a.String() != b.String() {
		t.Fatal("same seed should give identical documents")
	}
	c := PODocument(PODocOptions{Items: 5, IncludeBillTo: true, Seed: 43})
	if a.String() == c.String() {
		t.Fatal("different seeds should give different documents")
	}
}

func TestPOXMLBytes(t *testing.T) {
	doc := PODocument(PODocOptions{Items: 2, IncludeBillTo: true, Seed: 1})
	data := POXMLBytes(doc)
	if len(data) == 0 {
		t.Fatal("empty serialization")
	}
	if string(data[:5]) != "<?xml" {
		t.Fatalf("missing XML declaration: %q", data[:20])
	}
}

func TestPaperSchemasProperties(t *testing.T) {
	ps := NewPaperSchemas()
	if ps.Source1.Alpha != ps.Target.Alpha || ps.Target.Alpha != ps.Source2.Alpha {
		t.Fatal("paper schemas must share one alphabet")
	}
	for _, s := range []*schema.Schema{ps.Source1, ps.Target, ps.Source2} {
		if !s.IsDTD() {
			t.Fatal("purchase-order schemas are DTD-shaped (unique type per label)")
		}
		for id, ok := range s.Productive() {
			if !ok {
				t.Fatalf("type %s should be productive", s.Types[id].Name)
			}
		}
	}
}
