package xmltree

import (
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"strings"
)

// ParseOptions controls XML parsing.
type ParseOptions struct {
	// KeepWhitespaceText retains text nodes that consist solely of
	// whitespace. By default they are dropped: in element-only content
	// models, inter-element whitespace is insignificant, and the paper's
	// trees have χ leaves only for genuine simple values.
	KeepWhitespaceText bool
}

// Parse reads an XML document from r and returns the root element as an
// ordered labeled tree. Comments, processing instructions and directives
// are ignored; namespaces are flattened to local names (abstract XML
// schemas in this reproduction are namespace-free, as in the paper).
func Parse(r io.Reader) (*Node, error) {
	return ParseWith(r, ParseOptions{})
}

// ParseWith is Parse with explicit options.
func ParseWith(r io.Reader, opts ParseOptions) (*Node, error) {
	dec := xml.NewDecoder(r)
	var root *Node
	var stack []*Node
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmltree: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			n := NewElement(t.Name.Local)
			for _, a := range t.Attr {
				if a.Name.Space == "xmlns" || a.Name.Local == "xmlns" {
					continue // namespace declarations are not data
				}
				n.Attrs = append(n.Attrs, Attr{Name: a.Name.Local, Value: a.Value})
			}
			if len(stack) == 0 {
				if root != nil {
					return nil, errors.New("xmltree: multiple root elements")
				}
				root = n
			} else {
				stack[len(stack)-1].AppendChild(n)
			}
			stack = append(stack, n)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, errors.New("xmltree: unbalanced end element")
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			if len(stack) == 0 {
				continue // whitespace or stray text outside the root
			}
			text := string(t)
			if !opts.KeepWhitespaceText && strings.TrimSpace(text) == "" {
				continue
			}
			parent := stack[len(stack)-1]
			// Coalesce adjacent text (the decoder may split CDATA).
			if k := len(parent.Children); k > 0 && parent.Children[k-1].Kind == Text {
				parent.Children[k-1].Text += text
				continue
			}
			parent.AppendChild(NewText(text))
		case xml.Comment, xml.ProcInst, xml.Directive:
			// ignored
		}
	}
	if root == nil {
		return nil, errors.New("xmltree: no root element")
	}
	if len(stack) != 0 {
		return nil, errors.New("xmltree: unexpected end of input")
	}
	return root, nil
}

// ParseString parses an XML document held in a string.
func ParseString(s string) (*Node, error) {
	return Parse(strings.NewReader(s))
}

// MustParseString is ParseString that panics on error; for tests and
// embedded documents.
func MustParseString(s string) *Node {
	n, err := ParseString(s)
	if err != nil {
		panic(err)
	}
	return n
}

// WriteXML serializes the subtree rooted at n as XML text. Modifications
// are projected away first (DeltaDelete subtrees are skipped; other nodes
// serialize with their current labels/values), so the output is the
// document *after* edits. indent, if non-empty, pretty-prints with that
// unit (text-bearing elements stay on one line).
func WriteXML(w io.Writer, n *Node, indent string) error {
	sw := &stickyWriter{w: w}
	writeNode(sw, n, indent, 0)
	if indent != "" && sw.err == nil {
		sw.WriteString("\n")
	}
	return sw.err
}

// XMLString renders the subtree as an XML string (no indentation).
func XMLString(n *Node) string {
	var b strings.Builder
	_ = WriteXML(&b, n, "")
	return b.String()
}

type stickyWriter struct {
	w   io.Writer
	err error
}

func (s *stickyWriter) WriteString(str string) {
	if s.err != nil {
		return
	}
	_, s.err = io.WriteString(s.w, str)
}

func writeNode(w *stickyWriter, n *Node, indent string, depth int) {
	if n.Delta == DeltaDelete {
		return
	}
	pad := ""
	if indent != "" {
		if depth > 0 {
			pad = "\n" + strings.Repeat(indent, depth)
		}
		w.WriteString(pad)
	}
	if n.Kind == Text {
		w.WriteString(escapeText(n.Text))
		return
	}
	w.WriteString("<")
	w.WriteString(n.Label)
	for _, a := range n.Attrs {
		w.WriteString(" ")
		w.WriteString(a.Name)
		w.WriteString(`="`)
		w.WriteString(escapeText(a.Value))
		w.WriteString(`"`)
	}
	// Count serializable children.
	live := 0
	textOnly := true
	for _, c := range n.Children {
		if c.Delta == DeltaDelete {
			continue
		}
		live++
		if c.Kind != Text {
			textOnly = false
		}
	}
	if live == 0 {
		w.WriteString("/>")
		return
	}
	w.WriteString(">")
	if textOnly || indent == "" {
		for _, c := range n.Children {
			if c.Delta == DeltaDelete {
				continue
			}
			writeNode(w, c, "", 0)
		}
	} else {
		for _, c := range n.Children {
			writeNode(w, c, indent, depth+1)
		}
		w.WriteString("\n" + strings.Repeat(indent, depth))
	}
	w.WriteString("</")
	w.WriteString(n.Label)
	w.WriteString(">")
}

func escapeText(s string) string {
	var b strings.Builder
	if err := xml.EscapeText(&b, []byte(s)); err != nil {
		return s
	}
	return b.String()
}
