package xmltree

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// quickTree wraps a randomly generated tree for testing/quick.
type quickTree struct{ n *Node }

// Generate builds random trees whose shape survives a parse/serialize
// round trip: labels are valid XML names, text values are non-empty and
// not whitespace-only (whitespace-only text is dropped by the parser), and
// no two text children are adjacent (the parser coalesces them).
func (quickTree) Generate(rng *rand.Rand, size int) reflect.Value {
	depth := 1 + rng.Intn(4)
	return reflect.ValueOf(quickTree{n: genTree(rng, depth, true)})
}

var labels = []string{"a", "bee", "c-d", "e_f", "g.h", "order", "item"}

func genTree(rng *rand.Rand, depth int, isRoot bool) *Node {
	el := NewElement(labels[rng.Intn(len(labels))])
	if rng.Intn(3) == 0 {
		el.SetAttr("id", "v"+string(rune('a'+rng.Intn(26))))
	}
	if depth == 0 {
		return el
	}
	kids := rng.Intn(4)
	lastWasText := false
	for i := 0; i < kids; i++ {
		if !lastWasText && rng.Intn(3) == 0 {
			el.AppendChild(NewText(randText(rng)))
			lastWasText = true
			continue
		}
		lastWasText = false
		el.AppendChild(genTree(rng, depth-1, false))
	}
	return el
}

func randText(rng *rand.Rand) string {
	const chars = "abc<&>\"'xyz123"
	n := 1 + rng.Intn(8)
	b := make([]byte, n)
	for i := range b {
		b[i] = chars[rng.Intn(len(chars))]
	}
	return string(b)
}

func TestQuickSerializeParseRoundTrip(t *testing.T) {
	f := func(qt quickTree) bool {
		out := XMLString(qt.n)
		back, err := ParseString(out)
		if err != nil {
			t.Logf("parse of %q failed: %v", out, err)
			return false
		}
		if !Equal(qt.n, back) {
			t.Logf("round trip changed tree:\n%s\n%s", qt.n, back)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickIndentedRoundTrip(t *testing.T) {
	// Indented serialization must round-trip for element-only trees (text
	// next to indentation whitespace would merge, so restrict to trees
	// where text appears only as an element's sole child — the schema-valid
	// shape).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := genSchemaShapedTree(rng, 3)
		var b []byte
		{
			var sb sbuf
			if err := WriteXML(&sb, n, "  "); err != nil {
				return false
			}
			b = sb.b
		}
		back, err := ParseString(string(b))
		if err != nil {
			t.Logf("parse failed: %v\n%s", err, b)
			return false
		}
		return Equal(n, back)
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

type sbuf struct{ b []byte }

func (s *sbuf) Write(p []byte) (int, error) {
	s.b = append(s.b, p...)
	return len(p), nil
}

// genSchemaShapedTree builds trees where text only appears as a sole child
// (the shape the abstract schema model validates).
func genSchemaShapedTree(rng *rand.Rand, depth int) *Node {
	el := NewElement(labels[rng.Intn(len(labels))])
	if depth == 0 || rng.Intn(3) == 0 {
		if rng.Intn(2) == 0 {
			el.AppendChild(NewText(randText(rng)))
		}
		return el
	}
	for i, kids := 0, rng.Intn(4); i < kids; i++ {
		el.AppendChild(genSchemaShapedTree(rng, depth-1))
	}
	return el
}

func TestQuickCloneEqualsOriginal(t *testing.T) {
	f := func(qt quickTree) bool {
		return Equal(qt.n, qt.n.Clone())
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPathIdentifiesNode(t *testing.T) {
	// For every node, following its Path from the root lands on it.
	f := func(qt quickTree) bool {
		ok := true
		qt.n.Walk(func(n *Node) bool {
			cur := qt.n
			for _, idx := range n.Path() {
				cur = cur.Children[idx]
			}
			if cur != n {
				ok = false
			}
			return ok
		})
		return ok
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(4))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSizeMatchesWalk(t *testing.T) {
	f := func(qt quickTree) bool {
		count := 0
		qt.n.Walk(func(*Node) bool { count++; return true })
		return count == qt.n.Size()
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(5))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
