// Package xmltree implements the ordered labeled trees of EDBT'04 §3: an
// XML document is a tree T = (t, λ) whose internal nodes carry element
// labels from Σ and whose leaves may additionally carry the special label χ
// representing simple (text) values. The package provides parsing from and
// serialization to XML text, navigation and editing primitives, Dewey
// decimal numbering, and the Δ-labels used by schema cast validation with
// modifications (§3.3).
package xmltree

import (
	"fmt"
	"strings"
)

// Kind distinguishes element nodes (labels in Σ) from text leaves (χ).
type Kind uint8

const (
	// Element is an ordinary element node with a tag label.
	Element Kind = iota
	// Text is a χ leaf holding a simple value.
	Text
)

// DeltaKind records how a node was modified, if at all — the Δ^a_b labels
// of §3.3. Unmodified nodes have DeltaNone.
type DeltaKind uint8

const (
	// DeltaNone marks an unmodified node.
	DeltaNone DeltaKind = iota
	// DeltaRelabel marks a node whose label (or text value) changed:
	// Δ^a_b with a = OldLabel, b = Label.
	DeltaRelabel
	// DeltaInsert marks a newly inserted node: Δ^ε_b.
	DeltaInsert
	// DeltaDelete marks a deleted node kept as a tombstone: Δ^a_ε with
	// a = Label. Tombstones keep sibling positions stable so Dewey paths
	// recorded in the modification trie remain valid.
	DeltaDelete
)

func (d DeltaKind) String() string {
	switch d {
	case DeltaNone:
		return "none"
	case DeltaRelabel:
		return "relabel"
	case DeltaInsert:
		return "insert"
	case DeltaDelete:
		return "delete"
	}
	return fmt.Sprintf("DeltaKind(%d)", uint8(d))
}

// Attr is an attribute of an element node. The paper's abstract schemas
// model structural constraints only, so validation ignores attributes, but
// they are preserved through parse/serialize round trips (and the XSD
// loader reads schema documents through this representation).
type Attr struct {
	Name  string
	Value string
}

// Node is a node of an ordered labeled tree. The zero value is not useful;
// construct nodes with NewElement/NewText or by parsing.
type Node struct {
	// Kind distinguishes elements from χ text leaves.
	Kind Kind
	// Label is the element tag. Empty for text nodes (their λ is χ).
	Label string
	// Text holds the simple value of a Text node.
	Text string
	// Delta records the node's modification status (§3.3).
	Delta DeltaKind
	// OldLabel holds the pre-modification label for DeltaRelabel nodes
	// and is unused otherwise (DeltaDelete tombstones keep their original
	// label in Label).
	OldLabel string

	// Attrs holds the element's attributes in document order.
	Attrs []Attr

	// Parent is nil for the root.
	Parent *Node
	// Children holds the ordered children. Manipulate through the editing
	// methods so Parent pointers stay consistent.
	Children []*Node
}

// AttrValue returns the value of the named attribute, with ok=false when
// absent. Namespace prefixes on attribute names are stripped at parse time.
func (n *Node) AttrValue(name string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// SetAttr sets (or replaces) an attribute.
func (n *Node) SetAttr(name, value string) {
	for i := range n.Attrs {
		if n.Attrs[i].Name == name {
			n.Attrs[i].Value = value
			return
		}
	}
	n.Attrs = append(n.Attrs, Attr{Name: name, Value: value})
}

// NewElement returns an element node with the given tag and children,
// wiring parent pointers.
func NewElement(label string, children ...*Node) *Node {
	n := &Node{Kind: Element, Label: label}
	for _, c := range children {
		n.AppendChild(c)
	}
	return n
}

// NewText returns a χ leaf with the given simple value.
func NewText(value string) *Node {
	return &Node{Kind: Text, Text: value}
}

// IsText reports whether the node is a χ leaf.
func (n *Node) IsText() bool { return n.Kind == Text }

// EffectiveLabel is the node's λ in T' (the post-modification tree): the
// element tag, or "#text" for χ leaves. Deleted tombstones keep their old
// label here; callers that project modifications away should use ProjNew.
func (n *Node) EffectiveLabel() string {
	if n.Kind == Text {
		return "#text"
	}
	return n.Label
}

// AppendChild adds c as the last child of n.
func (n *Node) AppendChild(c *Node) {
	c.Parent = n
	n.Children = append(n.Children, c)
}

// InsertChildAt inserts c as the child at index i (0 ≤ i ≤ len(Children)).
func (n *Node) InsertChildAt(i int, c *Node) {
	if i < 0 || i > len(n.Children) {
		panic(fmt.Sprintf("xmltree: InsertChildAt index %d out of range [0,%d]", i, len(n.Children)))
	}
	c.Parent = n
	n.Children = append(n.Children, nil)
	copy(n.Children[i+1:], n.Children[i:])
	n.Children[i] = c
}

// RemoveChildAt physically removes and returns the child at index i. Schema
// cast with modifications prefers tombstoning (DeltaDelete) over physical
// removal; this exists for tree construction and tests.
func (n *Node) RemoveChildAt(i int) *Node {
	c := n.Children[i]
	copy(n.Children[i:], n.Children[i+1:])
	n.Children = n.Children[:len(n.Children)-1]
	c.Parent = nil
	return c
}

// ChildIndex returns the index of c among n's children, or -1.
func (n *Node) ChildIndex(c *Node) int {
	for i, k := range n.Children {
		if k == c {
			return i
		}
	}
	return -1
}

// Path returns the node's Dewey decimal number: the sequence of child
// indexes from the root down to the node. The root's path is empty.
func (n *Node) Path() []int {
	var rev []int
	for cur := n; cur.Parent != nil; cur = cur.Parent {
		rev = append(rev, cur.Parent.ChildIndex(cur))
	}
	out := make([]int, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

// Root returns the root of the tree containing n.
func (n *Node) Root() *Node {
	cur := n
	for cur.Parent != nil {
		cur = cur.Parent
	}
	return cur
}

// Walk visits the subtree rooted at n in document (pre-)order. Returning
// false from fn prunes the node's subtree (fn is not called on children).
func (n *Node) Walk(fn func(*Node) bool) {
	if !fn(n) {
		return
	}
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// Size returns the number of nodes in the subtree rooted at n, counting
// both element and text nodes.
func (n *Node) Size() int {
	count := 0
	n.Walk(func(*Node) bool { count++; return true })
	return count
}

// Clone returns a deep copy of the subtree rooted at n. The clone's Parent
// is nil.
func (n *Node) Clone() *Node {
	c := &Node{
		Kind:     n.Kind,
		Label:    n.Label,
		Text:     n.Text,
		Delta:    n.Delta,
		OldLabel: n.OldLabel,
		Attrs:    append([]Attr(nil), n.Attrs...),
	}
	for _, k := range n.Children {
		c.AppendChild(k.Clone())
	}
	return c
}

// Equal reports deep structural equality of two subtrees, including Delta
// annotations.
func Equal(a, b *Node) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Kind != b.Kind || a.Label != b.Label || a.Text != b.Text ||
		a.Delta != b.Delta || a.OldLabel != b.OldLabel ||
		len(a.Children) != len(b.Children) || len(a.Attrs) != len(b.Attrs) {
		return false
	}
	for i := range a.Attrs {
		if a.Attrs[i] != b.Attrs[i] {
			return false
		}
	}
	for i := range a.Children {
		if !Equal(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}

// TextContent concatenates the text of all χ leaves in the subtree.
func (n *Node) TextContent() string {
	var b strings.Builder
	n.Walk(func(c *Node) bool {
		if c.Kind == Text {
			b.WriteString(c.Text)
		}
		return true
	})
	return b.String()
}

// ProjNew is the Proj_new projection of §3.3: the node's label in the tree
// after modifications. It returns ok=false for deleted nodes (their
// projection is ε) and isText=true for χ leaves.
func (n *Node) ProjNew() (label string, isText, ok bool) {
	if n.Delta == DeltaDelete {
		return "", false, false
	}
	if n.Kind == Text {
		return "", true, true
	}
	return n.Label, false, true
}

// ProjOld is the Proj_old projection of §3.3: the node's label in the tree
// before modifications. It returns ok=false for inserted nodes and
// isText=true for χ leaves.
func (n *Node) ProjOld() (label string, isText, ok bool) {
	if n.Delta == DeltaInsert {
		return "", false, false
	}
	if n.Kind == Text {
		return "", true, true
	}
	if n.Delta == DeltaRelabel {
		return n.OldLabel, false, true
	}
	return n.Label, false, true
}

// String renders a compact s-expression form of the subtree, with Δ
// annotations, for diagnostics and tests.
func (n *Node) String() string {
	var b strings.Builder
	n.write(&b)
	return b.String()
}

func (n *Node) write(b *strings.Builder) {
	switch n.Delta {
	case DeltaRelabel:
		fmt.Fprintf(b, "Δ[%s→]", n.OldLabel)
	case DeltaInsert:
		b.WriteString("Δ[+]")
	case DeltaDelete:
		b.WriteString("Δ[-]")
	}
	if n.Kind == Text {
		fmt.Fprintf(b, "%q", n.Text)
		return
	}
	b.WriteString(n.Label)
	if len(n.Children) == 0 {
		b.WriteString("()")
		return
	}
	b.WriteByte('(')
	for i, c := range n.Children {
		if i > 0 {
			b.WriteByte(' ')
		}
		c.write(b)
	}
	b.WriteByte(')')
}
