package xmltree

import (
	"strings"
	"testing"
)

const poXML = `<?xml version="1.0"?>
<purchaseOrder>
  <shipTo>
    <name>Alice</name>
    <street>1 Main St</street>
  </shipTo>
  <items>
    <item>
      <productName>Widget</productName>
      <quantity>5</quantity>
    </item>
  </items>
</purchaseOrder>`

func TestParseBasic(t *testing.T) {
	root, err := ParseString(poXML)
	if err != nil {
		t.Fatal(err)
	}
	if root.Label != "purchaseOrder" {
		t.Fatalf("root = %q", root.Label)
	}
	if len(root.Children) != 2 {
		t.Fatalf("root children = %d, want 2", len(root.Children))
	}
	name := root.Children[0].Children[0]
	if name.Label != "name" || len(name.Children) != 1 ||
		name.Children[0].Kind != Text || name.Children[0].Text != "Alice" {
		t.Fatalf("name element parsed wrong: %s", name)
	}
	if !Equal(root, samplePO()) {
		t.Fatalf("parsed tree differs from expected:\n%s\n%s", root, samplePO())
	}
}

func TestParseWhitespaceHandling(t *testing.T) {
	root := MustParseString("<a> <b/> </a>")
	if len(root.Children) != 1 {
		t.Fatalf("whitespace text should be dropped, children = %d", len(root.Children))
	}
	kept, err := ParseWith(strings.NewReader("<a> <b/> </a>"), ParseOptions{KeepWhitespaceText: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(kept.Children) != 3 {
		t.Fatalf("with KeepWhitespaceText children = %d, want 3", len(kept.Children))
	}
}

func TestParseCoalescesText(t *testing.T) {
	root := MustParseString("<a>one<![CDATA[two]]>three</a>")
	if len(root.Children) != 1 || root.Children[0].Text != "onetwothree" {
		t.Fatalf("text not coalesced: %s", root)
	}
}

func TestParseIgnoresCommentsAndPIs(t *testing.T) {
	root := MustParseString("<a><!-- c --><?pi x?><b/></a>")
	if len(root.Children) != 1 || root.Children[0].Label != "b" {
		t.Fatalf("comments/PIs should be ignored: %s", root)
	}
}

func TestParseNamespaceFlattening(t *testing.T) {
	root := MustParseString(`<x:a xmlns:x="urn:foo"><x:b/></x:a>`)
	if root.Label != "a" || root.Children[0].Label != "b" {
		t.Fatalf("namespaces should flatten to local names: %s", root)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"   ",
		"<a>",
		"<a></b>",
		"<a/><b/>",
		"text only",
	}
	for _, src := range bad {
		if _, err := ParseString(src); err == nil {
			t.Errorf("ParseString(%q) should fail", src)
		}
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	root := MustParseString(poXML)
	out := XMLString(root)
	back, err := ParseString(out)
	if err != nil {
		t.Fatalf("re-parse of %q: %v", out, err)
	}
	if !Equal(root, back) {
		t.Fatalf("round trip changed tree:\n%s\n%s", root, back)
	}
}

func TestSerializeIndented(t *testing.T) {
	root := samplePO()
	var b strings.Builder
	if err := WriteXML(&b, root, "  "); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "\n  <shipTo>") {
		t.Fatalf("expected indentation:\n%s", out)
	}
	if !strings.Contains(out, "<name>Alice</name>") {
		t.Fatalf("text elements should stay on one line:\n%s", out)
	}
	back, err := ParseString(out)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(root, back) {
		t.Fatal("indented round trip changed tree")
	}
}

func TestSerializeSkipsTombstones(t *testing.T) {
	root := NewElement("a", NewElement("b"), NewElement("c"))
	root.Children[0].Delta = DeltaDelete
	out := XMLString(root)
	if strings.Contains(out, "<b") {
		t.Fatalf("tombstone serialized: %s", out)
	}
	if !strings.Contains(out, "<c/>") {
		t.Fatalf("live sibling missing: %s", out)
	}
}

func TestSerializeEscapesText(t *testing.T) {
	root := NewElement("a", NewText("x < y & z"))
	out := XMLString(root)
	if !strings.Contains(out, "x &lt; y &amp; z") {
		t.Fatalf("text not escaped: %s", out)
	}
	back, err := ParseString(out)
	if err != nil {
		t.Fatal(err)
	}
	if back.Children[0].Text != "x < y & z" {
		t.Fatalf("escape round trip broken: %q", back.Children[0].Text)
	}
}

func TestSelfClosingEmptyElements(t *testing.T) {
	root := NewElement("a", NewElement("b"))
	if XMLString(root) != "<a><b/></a>" {
		t.Fatalf("got %s", XMLString(root))
	}
}
