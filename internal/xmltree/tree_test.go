package xmltree

import (
	"strings"
	"testing"
)

func samplePO() *Node {
	return NewElement("purchaseOrder",
		NewElement("shipTo",
			NewElement("name", NewText("Alice")),
			NewElement("street", NewText("1 Main St")),
		),
		NewElement("items",
			NewElement("item",
				NewElement("productName", NewText("Widget")),
				NewElement("quantity", NewText("5")),
			),
		),
	)
}

func TestConstructionAndParents(t *testing.T) {
	po := samplePO()
	if po.Label != "purchaseOrder" || po.Kind != Element {
		t.Fatal("root mis-built")
	}
	for _, c := range po.Children {
		if c.Parent != po {
			t.Fatal("parent pointer not wired")
		}
	}
	if po.Size() != 12 {
		t.Fatalf("Size = %d, want 12", po.Size())
	}
}

func TestEffectiveLabel(t *testing.T) {
	if NewText("x").EffectiveLabel() != "#text" {
		t.Fatal("text label should be #text")
	}
	if NewElement("a").EffectiveLabel() != "a" {
		t.Fatal("element label should be its tag")
	}
}

func TestInsertRemoveChildAt(t *testing.T) {
	p := NewElement("p", NewElement("a"), NewElement("c"))
	b := NewElement("b")
	p.InsertChildAt(1, b)
	if got := p.String(); got != "p(a() b() c())" {
		t.Fatalf("after insert: %s", got)
	}
	if b.Parent != p {
		t.Fatal("insert did not set parent")
	}
	r := p.RemoveChildAt(0)
	if r.Label != "a" || r.Parent != nil {
		t.Fatal("remove returned wrong node or kept parent")
	}
	if got := p.String(); got != "p(b() c())" {
		t.Fatalf("after remove: %s", got)
	}
	// Boundary inserts.
	p.InsertChildAt(0, NewElement("x"))
	p.InsertChildAt(len(p.Children), NewElement("y"))
	if got := p.String(); got != "p(x() b() c() y())" {
		t.Fatalf("after boundary inserts: %s", got)
	}
}

func TestInsertChildAtPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewElement("p").InsertChildAt(1, NewElement("c"))
}

func TestPathAndRoot(t *testing.T) {
	po := samplePO()
	qty := po.Children[1].Children[0].Children[1]
	if qty.Label != "quantity" {
		t.Fatal("test navigation broken")
	}
	path := qty.Path()
	want := []int{1, 0, 1}
	if len(path) != len(want) {
		t.Fatalf("path = %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
	if len(po.Path()) != 0 {
		t.Fatal("root path should be empty")
	}
	if qty.Root() != po {
		t.Fatal("Root should find the tree root")
	}
}

func TestWalkPruning(t *testing.T) {
	po := samplePO()
	visited := 0
	po.Walk(func(n *Node) bool {
		visited++
		return n.Label != "shipTo" // prune shipTo subtree
	})
	// 12 total nodes - 4 inside shipTo (name, "Alice", street, "1 Main St")
	if visited != 8 {
		t.Fatalf("visited = %d, want 8", visited)
	}
}

func TestCloneAndEqual(t *testing.T) {
	po := samplePO()
	c := po.Clone()
	if !Equal(po, c) {
		t.Fatal("clone should be equal")
	}
	if c.Parent != nil {
		t.Fatal("clone parent should be nil")
	}
	c.Children[0].Label = "billTo"
	if Equal(po, c) {
		t.Fatal("mutated clone should differ")
	}
	if Equal(po, nil) || !Equal(nil, nil) {
		t.Fatal("nil handling wrong")
	}
	// Delta annotations participate in equality.
	d := po.Clone()
	d.Children[0].Delta = DeltaRelabel
	d.Children[0].OldLabel = "x"
	if Equal(po, d) {
		t.Fatal("delta annotations must affect equality")
	}
}

func TestTextContent(t *testing.T) {
	po := samplePO()
	got := po.Children[0].TextContent()
	if got != "Alice1 Main St" {
		t.Fatalf("TextContent = %q", got)
	}
}

func TestProjections(t *testing.T) {
	// Unmodified element.
	a := NewElement("a")
	if l, isText, ok := a.ProjNew(); l != "a" || isText || !ok {
		t.Fatal("ProjNew of plain element wrong")
	}
	if l, _, ok := a.ProjOld(); l != "a" || !ok {
		t.Fatal("ProjOld of plain element wrong")
	}
	// Relabeled b -> a.
	r := NewElement("a")
	r.Delta = DeltaRelabel
	r.OldLabel = "b"
	if l, _, ok := r.ProjNew(); l != "a" || !ok {
		t.Fatal("ProjNew of relabel should be new label")
	}
	if l, _, ok := r.ProjOld(); l != "b" || !ok {
		t.Fatal("ProjOld of relabel should be old label")
	}
	// Inserted.
	ins := NewElement("a")
	ins.Delta = DeltaInsert
	if _, _, ok := ins.ProjOld(); ok {
		t.Fatal("ProjOld of insert should be ε")
	}
	if l, _, ok := ins.ProjNew(); l != "a" || !ok {
		t.Fatal("ProjNew of insert should be the label")
	}
	// Deleted.
	del := NewElement("a")
	del.Delta = DeltaDelete
	if _, _, ok := del.ProjNew(); ok {
		t.Fatal("ProjNew of delete should be ε")
	}
	if l, _, ok := del.ProjOld(); l != "a" || !ok {
		t.Fatal("ProjOld of delete should be the original label")
	}
	// Text nodes project as χ.
	txt := NewText("v")
	if _, isText, ok := txt.ProjNew(); !isText || !ok {
		t.Fatal("text ProjNew should be χ")
	}
	if _, isText, ok := txt.ProjOld(); !isText || !ok {
		t.Fatal("text ProjOld should be χ")
	}
}

func TestStringRendering(t *testing.T) {
	n := NewElement("a", NewText("v"), NewElement("b"))
	if got := n.String(); got != `a("v" b())` {
		t.Fatalf("String = %q", got)
	}
	d := NewElement("x")
	d.Delta = DeltaDelete
	n2 := NewElement("a", d)
	if got := n2.String(); got != "a(Δ[-]x())" {
		t.Fatalf("String with tombstone = %q", got)
	}
}

func TestDeltaKindString(t *testing.T) {
	if DeltaNone.String() != "none" || DeltaRelabel.String() != "relabel" ||
		DeltaInsert.String() != "insert" || DeltaDelete.String() != "delete" {
		t.Fatal("DeltaKind strings changed")
	}
	if !strings.Contains(DeltaKind(9).String(), "9") {
		t.Fatal("unknown DeltaKind should render its number")
	}
}

func TestChildIndex(t *testing.T) {
	p := NewElement("p", NewElement("a"), NewElement("b"))
	if p.ChildIndex(p.Children[1]) != 1 {
		t.Fatal("ChildIndex wrong")
	}
	if p.ChildIndex(NewElement("z")) != -1 {
		t.Fatal("ChildIndex of non-child should be -1")
	}
}

func TestAttributes(t *testing.T) {
	n := MustParseString(`<a id="1" class="x &amp; y"><b ref="z"/></a>`)
	if v, ok := n.AttrValue("id"); !ok || v != "1" {
		t.Fatalf("id attr = %q,%v", v, ok)
	}
	if v, _ := n.AttrValue("class"); v != "x & y" {
		t.Fatalf("class attr = %q", v)
	}
	if _, ok := n.AttrValue("missing"); ok {
		t.Fatal("missing attr should not resolve")
	}
	// Round trip preserves attributes.
	out := XMLString(n)
	back := MustParseString(out)
	if !Equal(n, back) {
		t.Fatalf("attribute round trip changed tree: %s vs %s", out, XMLString(back))
	}
	// SetAttr replaces and appends.
	n.SetAttr("id", "2")
	n.SetAttr("new", "v")
	if v, _ := n.AttrValue("id"); v != "2" {
		t.Fatal("SetAttr replace failed")
	}
	if v, _ := n.AttrValue("new"); v != "v" {
		t.Fatal("SetAttr append failed")
	}
	// Clone copies attributes independently.
	c := n.Clone()
	c.SetAttr("id", "3")
	if v, _ := n.AttrValue("id"); v != "2" {
		t.Fatal("clone shares attribute storage")
	}
	// Attributes participate in equality.
	if Equal(n, c) {
		t.Fatal("differing attributes must break equality")
	}
}

func TestNamespaceDeclarationsDropped(t *testing.T) {
	n := MustParseString(`<a xmlns="urn:x" xmlns:p="urn:y" p:q="v"/>`)
	if len(n.Attrs) != 1 || n.Attrs[0].Name != "q" {
		t.Fatalf("Attrs = %v", n.Attrs)
	}
}
