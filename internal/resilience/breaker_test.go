package resilience

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a mutex-guarded manual clock for deterministic breaker
// tests under -race.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

type transitions struct {
	mu   sync.Mutex
	list []string
}

func (tr *transitions) record(from, to State) {
	tr.mu.Lock()
	tr.list = append(tr.list, from.String()+"->"+to.String())
	tr.mu.Unlock()
}

func (tr *transitions) snapshot() []string {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return append([]string(nil), tr.list...)
}

func newTestBreaker(clk *fakeClock, tr *transitions) *Breaker {
	cfg := BreakerConfig{
		FailureThreshold: 3,
		Window:           10 * time.Second,
		RateThreshold:    0.5,
		MinSamples:       10,
		OpenFor:          5 * time.Second,
		Now:              clk.Now,
	}
	if tr != nil {
		cfg.OnChange = tr.record
	}
	return NewBreaker(cfg)
}

func TestBreakerOpensOnConsecutiveFailures(t *testing.T) {
	clk := newFakeClock()
	tr := &transitions{}
	b := newTestBreaker(clk, tr)

	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker refused call %d", i)
		}
		b.Record(false)
		if got := b.State(); got != Closed {
			t.Fatalf("after %d failures state = %v, want Closed", i+1, got)
		}
	}
	if !b.Allow() {
		t.Fatal("closed breaker refused third call")
	}
	b.Record(false)
	if got := b.State(); got != Open {
		t.Fatalf("after threshold failures state = %v, want Open", got)
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a call before cool-off")
	}
	want := []string{"closed->open"}
	if got := tr.snapshot(); len(got) != 1 || got[0] != want[0] {
		t.Fatalf("transitions = %v, want %v", got, want)
	}
}

func TestBreakerSuccessResetsConsecutive(t *testing.T) {
	clk := newFakeClock()
	b := newTestBreaker(clk, nil)

	// Alternate fail/ok: never reaches the consecutive threshold, and
	// the 50% windowed rate needs >= MinSamples with rate >= 0.5; keep
	// below MinSamples.
	for i := 0; i < 4; i++ {
		b.Allow()
		b.Record(false)
		b.Allow()
		b.Record(true)
	}
	if got := b.State(); got != Closed {
		t.Fatalf("state = %v, want Closed", got)
	}
}

func TestBreakerOpensOnErrorRate(t *testing.T) {
	clk := newFakeClock()
	b := newTestBreaker(clk, nil)

	// 6 failures / 12 samples = 50% rate with samples >= MinSamples,
	// but never 3 consecutive failures.
	for i := 0; i < 6; i++ {
		b.Allow()
		b.Record(true)
		b.Allow()
		b.Record(false)
	}
	if got := b.State(); got != Open {
		t.Fatalf("state = %v, want Open on 50%% windowed error rate", got)
	}
}

func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	clk := newFakeClock()
	tr := &transitions{}
	b := newTestBreaker(clk, tr)

	for i := 0; i < 3; i++ {
		b.Allow()
		b.Record(false)
	}
	if got := b.State(); got != Open {
		t.Fatalf("state = %v, want Open", got)
	}

	clk.Advance(5 * time.Second)
	if !b.Allow() {
		t.Fatal("breaker did not admit a probe after cool-off")
	}
	if got := b.State(); got != HalfOpen {
		t.Fatalf("state = %v, want HalfOpen", got)
	}
	// Second caller while the probe is outstanding must be refused.
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}

	// Probe succeeds: breaker closes and traffic flows.
	b.Record(true)
	if got := b.State(); got != Closed {
		t.Fatalf("state after successful probe = %v, want Closed", got)
	}
	if !b.Allow() {
		t.Fatal("closed breaker refused traffic after recovery")
	}
	b.Record(true)

	want := []string{"closed->open", "open->half-open", "half-open->closed"}
	got := tr.snapshot()
	if len(got) != len(want) {
		t.Fatalf("transitions = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", got, want)
		}
	}
}

func TestBreakerHalfOpenProbeFailureReopens(t *testing.T) {
	clk := newFakeClock()
	b := newTestBreaker(clk, nil)

	for i := 0; i < 3; i++ {
		b.Allow()
		b.Record(false)
	}
	clk.Advance(5 * time.Second)
	if !b.Allow() {
		t.Fatal("no probe admitted")
	}
	b.Record(false)
	if got := b.State(); got != Open {
		t.Fatalf("state = %v, want Open after failed probe", got)
	}
	// Cool-off restarts from the failed probe.
	clk.Advance(4 * time.Second)
	if b.Allow() {
		t.Fatal("breaker admitted a probe before the renewed cool-off elapsed")
	}
	clk.Advance(time.Second)
	if !b.Allow() {
		t.Fatal("breaker did not admit a probe after renewed cool-off")
	}
	b.Record(true)
}

func TestBreakerHealthProbeRecovery(t *testing.T) {
	clk := newFakeClock()
	b := newTestBreaker(clk, nil)

	for i := 0; i < 3; i++ {
		b.Allow()
		b.Record(false)
	}
	if got := b.State(); got != Open {
		t.Fatalf("state = %v, want Open", got)
	}

	// Dead probes keep refreshing the cool-off: even after OpenFor
	// elapses from the original trip, Allow stays refused.
	clk.Advance(4 * time.Second)
	b.RecordProbe(false)
	clk.Advance(4 * time.Second)
	if b.Allow() {
		t.Fatal("breaker admitted traffic though probes still failing")
	}

	// A live probe closes the breaker without any live traffic.
	b.RecordProbe(true)
	if got := b.State(); got != Closed {
		t.Fatalf("state after live probe = %v, want Closed", got)
	}
	if !b.Allow() {
		t.Fatal("breaker refused traffic after probe-driven recovery")
	}
	b.Record(true)
}

func TestBreakerProbeOnClosedIsNoop(t *testing.T) {
	clk := newFakeClock()
	tr := &transitions{}
	b := newTestBreaker(clk, tr)
	b.RecordProbe(true)
	b.RecordProbe(false)
	if got := b.State(); got != Closed {
		t.Fatalf("state = %v, want Closed", got)
	}
	if got := tr.snapshot(); len(got) != 0 {
		t.Fatalf("unexpected transitions %v", got)
	}
}

func TestBreakerWindowAgesOut(t *testing.T) {
	clk := newFakeClock()
	b := newTestBreaker(clk, nil)

	// 5 failures and 6 successes interleaved — just under both trips.
	for i := 0; i < 5; i++ {
		b.Allow()
		b.Record(false)
		b.Allow()
		b.Record(true)
	}
	b.Allow()
	b.Record(true)
	if got := b.State(); got != Closed {
		t.Fatalf("state = %v, want Closed", got)
	}

	// Let the window fully age out, then a burst of fresh successes and
	// two failures: old failures must not count toward the rate.
	clk.Advance(11 * time.Second)
	for i := 0; i < 10; i++ {
		b.Allow()
		b.Record(true)
	}
	b.Allow()
	b.Record(false)
	b.Allow()
	b.Record(false)
	if got := b.State(); got != Closed {
		t.Fatalf("state = %v, want Closed after old window aged out", got)
	}
}

func TestBreakerRetryAfter(t *testing.T) {
	clk := newFakeClock()
	b := newTestBreaker(clk, nil)
	if got := b.RetryAfter(); got != time.Second {
		t.Fatalf("closed RetryAfter = %v, want 1s", got)
	}
	for i := 0; i < 3; i++ {
		b.Allow()
		b.Record(false)
	}
	if got := b.RetryAfter(); got != 5*time.Second {
		t.Fatalf("open RetryAfter = %v, want 5s", got)
	}
	clk.Advance(3 * time.Second)
	if got := b.RetryAfter(); got != 2*time.Second {
		t.Fatalf("open RetryAfter after 3s = %v, want 2s", got)
	}
	clk.Advance(10 * time.Second)
	if got := b.RetryAfter(); got != time.Second {
		t.Fatalf("expired-open RetryAfter = %v, want 1s floor", got)
	}
}

func TestBreakerConcurrentDeterministic(t *testing.T) {
	// Hammer Allow/Record/RecordProbe from many goroutines with a fake
	// clock; under -race this validates the locking, and afterwards the
	// breaker must still be in a coherent, usable state.
	clk := newFakeClock()
	b := newTestBreaker(clk, &transitions{})

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if b.Allow() {
					b.Record(i%3 != 0)
				}
				if i%17 == 0 {
					b.RecordProbe(i%2 == 0)
				}
				if i%29 == 0 {
					clk.Advance(time.Second)
				}
				_ = b.State()
				_ = b.RetryAfter()
			}
		}(g)
	}
	wg.Wait()

	// Whatever state it landed in, a live probe must restore service.
	b.RecordProbe(true)
	if got := b.State(); got != Closed {
		t.Fatalf("state = %v, want Closed after live probe", got)
	}
	if !b.Allow() {
		t.Fatal("breaker unusable after concurrent hammering")
	}
	b.Record(true)
}
