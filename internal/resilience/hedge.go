package resilience

import (
	"context"
	"sync"
	"time"
)

// latencySamples is the LatencyTracker ring size. 64 observations is
// enough to steer a hedge delay and small enough that Percentile can sort
// a stack copy without allocating.
const latencySamples = 64

// LatencyTracker keeps a ring of recent operation latencies and answers
// percentile queries. Percentile is alloc-free by design — it is consulted
// on the hot all-healthy fetch path, which the benchmark gate pins at
// +0 allocs.
type LatencyTracker struct {
	mu      sync.Mutex
	samples [latencySamples]time.Duration
	n       int // total observed (ring index = n % latencySamples)
}

// Observe records one operation latency.
func (l *LatencyTracker) Observe(d time.Duration) {
	l.mu.Lock()
	l.samples[l.n%latencySamples] = d
	l.n++
	l.mu.Unlock()
}

// Percentile returns the p-th percentile (0 < p <= 1) of the recorded
// window, or 0 if nothing was observed yet. It copies the live samples to
// a stack array and insertion-sorts them — no heap allocation.
func (l *LatencyTracker) Percentile(p float64) time.Duration {
	l.mu.Lock()
	n := l.n
	if n > latencySamples {
		n = latencySamples
	}
	var buf [latencySamples]time.Duration
	copy(buf[:n], l.samples[:n])
	l.mu.Unlock()
	if n == 0 {
		return 0
	}
	for i := 1; i < n; i++ {
		v := buf[i]
		j := i - 1
		for j >= 0 && buf[j] > v {
			buf[j+1] = buf[j]
			j--
		}
		buf[j+1] = v
	}
	if p <= 0 {
		p = 0.5
	}
	if p > 1 {
		p = 1
	}
	idx := int(p*float64(n)) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return buf[idx]
}

// HedgeResult carries one attempt's outcome plus whether it was the
// hedged (secondary) attempt.
type HedgeResult[T any] struct {
	Val    T
	Err    error
	Hedged bool
}

// Hedge runs primary immediately and, if it has not finished after delay,
// races secondary against it. The first success wins and the loser's
// context is cancelled; if both fail, the primary's error is returned.
// delay <= 0 disables hedging entirely. onHedge (optional) fires when the
// secondary is actually launched, for telemetry.
//
// Both attempt functions must honor context cancellation; Hedge waits for
// neither after a winner is chosen (results are delivered on buffered
// channels, so losing goroutines never leak).
func Hedge[T any](ctx context.Context, delay time.Duration,
	primary func(context.Context) (T, error),
	secondary func(context.Context) (T, error),
	onHedge func(),
) (T, error, bool) {
	if delay <= 0 || secondary == nil {
		v, err := primary(ctx)
		return v, err, false
	}

	pctx, pcancel := context.WithCancel(ctx)
	defer pcancel()
	pch := make(chan HedgeResult[T], 1)
	go func() {
		v, err := primary(pctx)
		pch <- HedgeResult[T]{Val: v, Err: err}
	}()

	timer := time.NewTimer(delay)
	defer timer.Stop()

	select {
	case r := <-pch:
		return r.Val, r.Err, false
	case <-ctx.Done():
		pcancel()
		var zero T
		return zero, ctx.Err(), false
	case <-timer.C:
	}

	// Primary is slow: launch the hedge.
	if onHedge != nil {
		onHedge()
	}
	sctx, scancel := context.WithCancel(ctx)
	defer scancel()
	sch := make(chan HedgeResult[T], 1)
	go func() {
		v, err := secondary(sctx)
		sch <- HedgeResult[T]{Val: v, Err: err, Hedged: true}
	}()

	var firstErr *HedgeResult[T]
	for {
		select {
		case r := <-pch:
			if r.Err == nil {
				scancel()
				return r.Val, nil, false
			}
			if firstErr != nil {
				// Both failed; report the primary's error.
				return r.Val, r.Err, false
			}
			firstErr = &r
			pch = nil
		case r := <-sch:
			if r.Err == nil {
				pcancel()
				return r.Val, nil, true
			}
			if firstErr != nil {
				return firstErr.Val, firstErr.Err, false
			}
			firstErr = &r
			sch = nil
		case <-ctx.Done():
			pcancel()
			scancel()
			var zero T
			return zero, ctx.Err(), false
		}
	}
}
