package resilience

import (
	"testing"
	"time"
)

func TestBudgetBurstThenExhaustion(t *testing.T) {
	b := NewBudget(0.1, 3)
	for i := 0; i < 3; i++ {
		if !b.Withdraw() {
			t.Fatalf("withdraw %d refused within burst", i)
		}
	}
	if b.Withdraw() {
		t.Fatal("withdraw succeeded past burst with no deposits")
	}
	if got := b.Exhausted(); got != 1 {
		t.Fatalf("Exhausted = %d, want 1", got)
	}
}

func TestBudgetRatioCapsAmplification(t *testing.T) {
	b := NewBudget(0.1, 5)
	// Drain the burst.
	for b.Withdraw() {
	}
	// 100 base operations at ratio 0.1 afford 10 retries, no more.
	granted := 0
	for i := 0; i < 100; i++ {
		b.Deposit()
		if b.Withdraw() {
			granted++
		}
	}
	if granted < 9 || granted > 10 {
		t.Fatalf("granted %d retries for 100 base ops at ratio 0.1, want ~10", granted)
	}
}

func TestBudgetDepositCapped(t *testing.T) {
	b := NewBudget(1.0, 2)
	for i := 0; i < 50; i++ {
		b.Deposit()
	}
	got := 0
	for b.Withdraw() {
		got++
	}
	if got != 2 {
		t.Fatalf("bucket held %d tokens, want burst cap 2", got)
	}
}

func TestBudgetDefaults(t *testing.T) {
	b := NewBudget(0, 0)
	if b.ratio != DefaultRetryRatio || b.burst != DefaultRetryBurst {
		t.Fatalf("defaults not applied: ratio=%v burst=%v", b.ratio, b.burst)
	}
}

func TestBackoffBounds(t *testing.T) {
	base := 50 * time.Millisecond
	max := 400 * time.Millisecond
	for attempt := 0; attempt < 8; attempt++ {
		ceil := base << attempt
		if ceil > max || ceil <= 0 {
			ceil = max
		}
		for trial := 0; trial < 50; trial++ {
			d := Backoff(attempt, base, max, nil)
			if d < 0 || d >= ceil {
				t.Fatalf("attempt %d: backoff %v outside [0, %v)", attempt, d, ceil)
			}
		}
	}
}

func TestBackoffDeterministicWithInjectedRand(t *testing.T) {
	rnd := func() float64 { return 0.5 }
	if got := Backoff(0, 100*time.Millisecond, time.Second, rnd); got != 50*time.Millisecond {
		t.Fatalf("Backoff(0) = %v, want 50ms", got)
	}
	if got := Backoff(2, 100*time.Millisecond, time.Second, rnd); got != 200*time.Millisecond {
		t.Fatalf("Backoff(2) = %v, want 200ms (half of 400ms ceil)", got)
	}
	if got := Backoff(10, 100*time.Millisecond, time.Second, rnd); got != 500*time.Millisecond {
		t.Fatalf("Backoff(10) = %v, want 500ms (half of capped 1s)", got)
	}
}

func TestBackoffZeroBase(t *testing.T) {
	if got := Backoff(3, 0, time.Second, nil); got != 0 {
		t.Fatalf("Backoff with zero base = %v, want 0", got)
	}
}
