package resilience

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"
)

func TestLatencyTrackerPercentile(t *testing.T) {
	var lt LatencyTracker
	if got := lt.Percentile(0.95); got != 0 {
		t.Fatalf("empty tracker percentile = %v, want 0", got)
	}
	for i := 1; i <= 100; i++ {
		lt.Observe(time.Duration(i) * time.Millisecond)
	}
	// Ring keeps the last 64 samples: 37ms..100ms.
	p50 := lt.Percentile(0.5)
	if p50 < 60*time.Millisecond || p50 > 75*time.Millisecond {
		t.Fatalf("p50 = %v, want ~68ms over [37ms,100ms]", p50)
	}
	p95 := lt.Percentile(0.95)
	if p95 < 90*time.Millisecond || p95 > 100*time.Millisecond {
		t.Fatalf("p95 = %v, want ~97ms", p95)
	}
	if p100 := lt.Percentile(1); p100 != 100*time.Millisecond {
		t.Fatalf("p100 = %v, want 100ms", p100)
	}
}

func TestLatencyTrackerPercentileNoAllocs(t *testing.T) {
	var lt LatencyTracker
	for i := 0; i < latencySamples; i++ {
		lt.Observe(time.Duration(i+1) * time.Millisecond)
	}
	allocs := testing.AllocsPerRun(100, func() {
		_ = lt.Percentile(0.95)
		lt.Observe(time.Millisecond)
	})
	if allocs != 0 {
		t.Fatalf("Percentile+Observe allocated %v per run, want 0", allocs)
	}
}

func TestHedgePrimaryFastNoHedge(t *testing.T) {
	hedged := false
	v, err, fromHedge := Hedge(context.Background(), 50*time.Millisecond,
		func(ctx context.Context) (string, error) { return "primary", nil },
		func(ctx context.Context) (string, error) { return "secondary", nil },
		func() { hedged = true },
	)
	if err != nil || v != "primary" || fromHedge {
		t.Fatalf("got (%q, %v, hedged=%v), want primary win", v, err, fromHedge)
	}
	if hedged {
		t.Fatal("hedge launched though primary returned before the delay")
	}
}

func TestHedgeSecondaryWins(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	hedged := false
	v, err, fromHedge := Hedge(context.Background(), 5*time.Millisecond,
		func(ctx context.Context) (string, error) {
			select {
			case <-release:
			case <-ctx.Done():
			}
			return "primary", ctx.Err()
		},
		func(ctx context.Context) (string, error) { return "secondary", nil },
		func() { hedged = true },
	)
	if err != nil || v != "secondary" || !fromHedge {
		t.Fatalf("got (%q, %v, hedged=%v), want secondary win", v, err, fromHedge)
	}
	if !hedged {
		t.Fatal("onHedge not called")
	}
}

func TestHedgePrimaryWinsAfterHedgeLaunch(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	v, err, fromHedge := Hedge(context.Background(), time.Millisecond,
		func(ctx context.Context) (string, error) {
			time.Sleep(10 * time.Millisecond)
			return "primary", nil
		},
		func(ctx context.Context) (string, error) {
			select {
			case <-release:
			case <-ctx.Done():
			}
			return "", ctx.Err()
		},
		nil,
	)
	if err != nil || v != "primary" || fromHedge {
		t.Fatalf("got (%q, %v, hedged=%v), want slow primary win over stuck secondary", v, err, fromHedge)
	}
}

func TestHedgeSecondaryFailsPrimaryWins(t *testing.T) {
	v, err, _ := Hedge(context.Background(), time.Millisecond,
		func(ctx context.Context) (string, error) {
			time.Sleep(10 * time.Millisecond)
			return "primary", nil
		},
		func(ctx context.Context) (string, error) {
			return "", errors.New("hedge target down")
		},
		nil,
	)
	if err != nil || v != "primary" {
		t.Fatalf("got (%q, %v), want primary success despite failed hedge", v, err)
	}
}

func TestHedgeBothFailReturnsPrimaryError(t *testing.T) {
	perr := errors.New("primary boom")
	_, err, _ := Hedge(context.Background(), time.Millisecond,
		func(ctx context.Context) (string, error) {
			time.Sleep(5 * time.Millisecond)
			return "", perr
		},
		func(ctx context.Context) (string, error) {
			return "", errors.New("secondary boom")
		},
		nil,
	)
	if !errors.Is(err, perr) {
		t.Fatalf("err = %v, want primary error", err)
	}
}

func TestHedgeContextCancelled(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, err, _ := Hedge(ctx, time.Millisecond,
		func(c context.Context) (string, error) {
			<-c.Done()
			return "", c.Err()
		},
		func(c context.Context) (string, error) {
			<-c.Done()
			return "", c.Err()
		},
		nil,
	)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}

func TestHedgeZeroDelayDisables(t *testing.T) {
	called := false
	v, err, fromHedge := Hedge(context.Background(), 0,
		func(ctx context.Context) (string, error) { return "only", nil },
		func(ctx context.Context) (string, error) { called = true; return "", nil },
		nil,
	)
	if err != nil || v != "only" || fromHedge || called {
		t.Fatalf("zero delay must run primary only: (%q, %v, %v, secondary=%v)", v, err, fromHedge, called)
	}
}

func TestHedgeNoGoroutineLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		_, _, _ = Hedge(context.Background(), time.Microsecond,
			func(ctx context.Context) (string, error) {
				select {
				case <-time.After(2 * time.Millisecond):
				case <-ctx.Done():
				}
				return "p", nil
			},
			func(ctx context.Context) (string, error) { return "s", nil },
			nil,
		)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base+3 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines grew from %d to %d after hedged calls", base, runtime.NumGoroutine())
}
