// Package resilience is the cluster fabric's failure-handling core: the
// building blocks that keep one slow or dead peer from stalling every cast
// on its key range. It is deliberately dependency-free (stdlib only, no
// telemetry imports — state changes surface through callbacks) and
// deterministic under test (every time source is an injectable clock).
//
// Three mechanisms compose:
//
//   - Breaker: a per-peer three-state circuit breaker (closed → open →
//     half-open). Consecutive failures or a windowed error rate open it;
//     while open every call is refused instantly, so a dead peer costs a
//     map lookup instead of a connect timeout. After a cool-off one probe
//     request is admitted (half-open); its outcome closes or re-opens the
//     circuit. An external health probe (castd's /healthz prober) can close
//     the breaker without live traffic, so recovery does not depend on a
//     user request volunteering to be the guinea pig.
//
//   - Budget: a token-bucket retry budget shared by all peers. Every base
//     peer operation deposits a fraction of a token; every retry withdraws
//     a whole one. With the default 0.1 ratio, retries can never amplify
//     peer traffic by more than ~10% no matter how many callers are
//     retrying at once — the classic defense against retry storms turning
//     a brownout into an outage.
//
//   - Hedged calls: a second attempt raced against a slow first one after a
//     delay derived from observed latency (LatencyTracker percentile with a
//     configured floor). First response wins, the loser's context is
//     cancelled. Hedging converts tail latency into a bounded second
//     request instead of a user-visible stall.
//
// All types are safe for concurrent use.
package resilience

import (
	"math/rand"
	"sync"
	"time"
)

// Backoff returns the sleep before retry attempt (0-based: the delay after
// the first failure is Backoff(0, ...)), using capped exponential growth
// with full jitter: a uniformly random duration in [0, min(cap, base<<n)).
// Full jitter desynchronizes retrying callers, so a burst of failures does
// not re-converge into a burst of retries. rnd may be nil (global source).
func Backoff(attempt int, base, max time.Duration, rnd func() float64) time.Duration {
	if base <= 0 {
		return 0
	}
	if max <= 0 {
		max = 30 * time.Second
	}
	ceil := base
	for i := 0; i < attempt && ceil < max; i++ {
		ceil *= 2
	}
	if ceil > max {
		ceil = max
	}
	f := rand.Float64
	if rnd != nil {
		f = rnd
	}
	return time.Duration(f() * float64(ceil))
}

// Budget is the global retry token bucket. The zero value is unusable; use
// NewBudget.
type Budget struct {
	mu     sync.Mutex
	ratio  float64 // tokens deposited per base operation
	burst  float64 // bucket capacity
	tokens float64
	// exhausted counts withdrawals refused for lack of tokens, for
	// telemetry bridging.
	exhausted int64
}

// DefaultRetryRatio caps retry amplification at ~10% of base traffic.
const DefaultRetryRatio = 0.1

// DefaultRetryBurst lets a quiet system afford a small retry burst before
// the ratio governs.
const DefaultRetryBurst = 10

// NewBudget returns a budget seeded to its burst capacity. ratio <= 0
// means DefaultRetryRatio; burst <= 0 means DefaultRetryBurst.
func NewBudget(ratio, burst float64) *Budget {
	if ratio <= 0 {
		ratio = DefaultRetryRatio
	}
	if burst <= 0 {
		burst = DefaultRetryBurst
	}
	return &Budget{ratio: ratio, burst: burst, tokens: burst}
}

// Deposit credits one base operation: ratio tokens, capped at burst. Call
// it once per first attempt, never per retry.
func (b *Budget) Deposit() {
	b.mu.Lock()
	if b.tokens += b.ratio; b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.mu.Unlock()
}

// Withdraw takes one whole token for a retry. false means the budget is
// exhausted and the caller must not retry.
func (b *Budget) Withdraw() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		b.exhausted++
		return false
	}
	b.tokens--
	return true
}

// Exhausted returns how many retries the budget has refused.
func (b *Budget) Exhausted() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.exhausted
}
