package resilience

import (
	"errors"
	"sync"
	"time"
)

// State is a breaker's position. The numeric values are the wire contract
// for the castd_breaker_state gauge: 0 closed (healthy), 1 half-open
// (probing), 2 open (refusing traffic).
type State int32

const (
	Closed   State = 0
	HalfOpen State = 1
	Open     State = 2
)

func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case HalfOpen:
		return "half-open"
	case Open:
		return "open"
	}
	return "unknown"
}

// ErrOpen is returned (by convention — Allow itself returns a bool) when a
// caller refuses work because the breaker denied admission.
var ErrOpen = errors.New("resilience: circuit breaker open")

// BreakerConfig tunes a Breaker. Zero fields take the defaults noted on
// each field.
type BreakerConfig struct {
	// FailureThreshold opens the breaker after this many consecutive
	// failures. Default 5.
	FailureThreshold int
	// Window is the rolling interval over which the error rate is
	// measured. Default 30s.
	Window time.Duration
	// RateThreshold opens the breaker when the windowed failure rate
	// reaches this fraction, provided at least MinSamples outcomes were
	// observed. Default 0.5.
	RateThreshold float64
	// MinSamples guards the rate trip against tiny denominators.
	// Default 10.
	MinSamples int
	// OpenFor is the cool-off after opening before one probe is
	// admitted. Default 5s.
	OpenFor time.Duration
	// Now is the clock seam for tests. Default time.Now.
	Now func() time.Time
	// OnChange, if set, is called (outside the breaker lock) on every
	// state transition.
	OnChange func(from, to State)
}

// windowBuckets subdivides Window so old outcomes age out smoothly rather
// than all at once.
const windowBuckets = 10

type bucket struct {
	ok, fail int
}

// Breaker is a three-state circuit breaker for one peer.
type Breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	state    State
	consec   int       // consecutive failures while closed
	openedAt time.Time // when the breaker last opened
	probing  bool      // half-open: one probe is in flight

	buckets   [windowBuckets]bucket
	bucketIdx int
	bucketAt  time.Time // start of the current bucket
}

// NewBreaker returns a closed breaker with defaults applied.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.FailureThreshold <= 0 {
		cfg.FailureThreshold = 5
	}
	if cfg.Window <= 0 {
		cfg.Window = 30 * time.Second
	}
	if cfg.RateThreshold <= 0 {
		cfg.RateThreshold = 0.5
	}
	if cfg.MinSamples <= 0 {
		cfg.MinSamples = 10
	}
	if cfg.OpenFor <= 0 {
		cfg.OpenFor = 5 * time.Second
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	b := &Breaker{cfg: cfg}
	b.bucketAt = cfg.Now()
	return b
}

// Allow reports whether a call may proceed. Every Allow()==true MUST be
// paired with exactly one Record — in half-open the admitted call holds
// the single probe slot until its outcome is recorded, and leaking it
// would wedge the breaker in half-open.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	now := b.cfg.Now()
	var change func()
	allowed := false
	switch b.state {
	case Closed:
		allowed = true
	case Open:
		if now.Sub(b.openedAt) >= b.cfg.OpenFor {
			change = b.transition(HalfOpen)
			b.probing = true
			allowed = true
		}
	case HalfOpen:
		if !b.probing {
			b.probing = true
			allowed = true
		}
	}
	b.mu.Unlock()
	if change != nil {
		change()
	}
	return allowed
}

// Record reports the outcome of a call previously admitted by Allow.
func (b *Breaker) Record(ok bool) {
	b.mu.Lock()
	now := b.cfg.Now()
	b.rotate(now)
	if ok {
		b.buckets[b.bucketIdx].ok++
	} else {
		b.buckets[b.bucketIdx].fail++
	}
	var change func()
	switch b.state {
	case HalfOpen:
		b.probing = false
		if ok {
			change = b.transition(Closed)
		} else {
			change = b.transition(Open)
			b.openedAt = now
		}
	case Closed:
		if ok {
			b.consec = 0
		} else {
			b.consec++
			if b.consec >= b.cfg.FailureThreshold || b.rateTripped() {
				change = b.transition(Open)
				b.openedAt = now
			}
		}
	case Open:
		// A straggler finishing after the breaker opened; outcome is
		// already in the window, nothing else to do.
	}
	b.mu.Unlock()
	if change != nil {
		change()
	}
}

// RecordProbe feeds an out-of-band health probe (castd's /healthz prober).
// A live probe closes an open or half-open breaker without waiting for
// user traffic; a dead probe refreshes an open breaker's cool-off (the
// peer is still down, don't bother admitting a live-traffic probe) and
// re-opens a half-open one.
func (b *Breaker) RecordProbe(ok bool) {
	b.mu.Lock()
	now := b.cfg.Now()
	var change func()
	switch {
	case ok && b.state != Closed:
		change = b.transition(Closed)
	case !ok && b.state == Open:
		b.openedAt = now
	case !ok && b.state == HalfOpen:
		change = b.transition(Open)
		b.openedAt = now
	}
	b.mu.Unlock()
	if change != nil {
		change()
	}
}

// State returns the current state without side effects.
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// RetryAfter returns how long until an open breaker will admit a probe
// (minimum 1s, so a Retry-After header is never zero). For closed or
// half-open breakers it returns 1s.
func (b *Breaker) RetryAfter() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == Open {
		if rem := b.cfg.OpenFor - b.cfg.Now().Sub(b.openedAt); rem > time.Second {
			return rem
		}
	}
	return time.Second
}

// transition must be called with b.mu held; it returns the OnChange thunk
// to invoke after unlocking (or nil).
func (b *Breaker) transition(to State) func() {
	from := b.state
	if from == to {
		return nil
	}
	b.state = to
	if to == Closed {
		b.consec = 0
		b.probing = false
		b.buckets = [windowBuckets]bucket{}
		b.bucketAt = b.cfg.Now()
		b.bucketIdx = 0
	}
	if to == Open {
		b.probing = false
	}
	if cb := b.cfg.OnChange; cb != nil {
		return func() { cb(from, to) }
	}
	return nil
}

// rotate advances the bucket ring, zeroing any buckets whose interval has
// fully passed. Must be called with b.mu held.
func (b *Breaker) rotate(now time.Time) {
	span := b.cfg.Window / windowBuckets
	if span <= 0 {
		span = time.Millisecond
	}
	steps := int(now.Sub(b.bucketAt) / span)
	if steps <= 0 {
		return
	}
	if steps > windowBuckets {
		steps = windowBuckets
	}
	for i := 0; i < steps; i++ {
		b.bucketIdx = (b.bucketIdx + 1) % windowBuckets
		b.buckets[b.bucketIdx] = bucket{}
	}
	b.bucketAt = b.bucketAt.Add(time.Duration(steps) * span)
	if now.Sub(b.bucketAt) > b.cfg.Window {
		// The clock jumped far past the window; resync.
		b.bucketAt = now
	}
}

// rateTripped reports whether the windowed failure rate crosses the
// threshold with enough samples. Must be called with b.mu held.
func (b *Breaker) rateTripped() bool {
	var ok, fail int
	for _, bk := range b.buckets {
		ok += bk.ok
		fail += bk.fail
	}
	total := ok + fail
	if total < b.cfg.MinSamples {
		return false
	}
	return float64(fail)/float64(total) >= b.cfg.RateThreshold
}
