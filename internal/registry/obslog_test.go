package registry

// Tests for the registry's structured-log and span-lookup observability:
// eviction and hot-swap records, and the Lookup outcome/link contract of
// PairCtx.

import (
	"context"
	"log/slog"
	"runtime"
	"sync"
	"testing"

	"repro/internal/telemetry"
	"repro/internal/wgen"
)

// recordingHandler is a slog.Handler capturing every record it handles.
type recordingHandler struct {
	mu      sync.Mutex
	records []capturedRecord
}

type capturedRecord struct {
	msg   string
	attrs map[string]slog.Value
}

func (h *recordingHandler) Enabled(context.Context, slog.Level) bool { return true }

func (h *recordingHandler) Handle(_ context.Context, r slog.Record) error {
	c := capturedRecord{msg: r.Message, attrs: map[string]slog.Value{}}
	r.Attrs(func(a slog.Attr) bool {
		c.attrs[a.Key] = a.Value
		return true
	})
	h.mu.Lock()
	h.records = append(h.records, c)
	h.mu.Unlock()
	return nil
}

func (h *recordingHandler) WithAttrs([]slog.Attr) slog.Handler { return h }
func (h *recordingHandler) WithGroup(string) slog.Handler      { return h }

func (h *recordingHandler) byMessage(msg string) []capturedRecord {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []capturedRecord
	for _, c := range h.records {
		if c.msg == msg {
			out = append(out, c)
		}
	}
	return out
}

// TestEvictionLogOncePerVictim replays the TestEviction scenario under a
// recording logger: the eviction record must fire exactly once per evicted
// entry — the record count always matches the evictions counter — and must
// name the victim.
func TestEvictionLogOncePerVictim(t *testing.T) {
	h := &recordingHandler{}
	r := New(Config{MaxEntries: 2, Logger: slog.New(h)})
	for id, optional := range map[string]bool{"a": true, "b": false} {
		if _, err := r.Register(id, wgen.Figure2XSD(optional, 100), FormatAuto, ""); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.Register("c", wgen.Figure2XSD(false, 200), FormatAuto, ""); err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]string{{"a", "b"}, {"a", "c"}} {
		if _, err := r.Pair(pair[0], pair[1]); err != nil {
			t.Fatal(err)
		}
	}
	if got := h.byMessage("registry: pair evicted"); len(got) != 0 {
		t.Fatalf("eviction logged before any eviction happened: %v", got)
	}
	if _, err := r.Pair("b", "c"); err != nil { // evicts (a, b)
		t.Fatal(err)
	}

	recs := h.byMessage("registry: pair evicted")
	evictions := int(r.Stats().Evictions)
	if evictions != 1 {
		t.Fatalf("want 1 eviction, got %d", evictions)
	}
	if len(recs) != evictions {
		t.Fatalf("eviction records = %d, evictions = %d: must be one record per victim", len(recs), evictions)
	}
	rec := recs[0]
	if rec.attrs["src"].String() != "a" || rec.attrs["dst"].String() != "b" {
		t.Errorf("eviction record names (%s, %s), want (a, b)", rec.attrs["src"], rec.attrs["dst"])
	}
	aHash, _ := r.Schema("a")
	if rec.attrs["src_hash"].String() != aHash.Hash {
		t.Errorf("src_hash = %s, want %s", rec.attrs["src_hash"], aHash.Hash)
	}
	if rec.attrs["bytes"].Int64() <= 0 {
		t.Errorf("bytes = %d, want > 0", rec.attrs["bytes"].Int64())
	}
	if rec.attrs["hits"].Int64() != 0 {
		t.Errorf("hits = %d, want 0 (pair was compiled once, never hit again)", rec.attrs["hits"].Int64())
	}

	// Further lookups that evict again keep the 1:1 record/eviction ratio.
	if _, err := r.Pair("a", "b"); err != nil { // evicts the LRU again
		t.Fatal(err)
	}
	recs = h.byMessage("registry: pair evicted")
	if evictions = int(r.Stats().Evictions); len(recs) != evictions {
		t.Fatalf("after second round: records = %d, evictions = %d", len(recs), evictions)
	}
}

// TestHotSwapLog: re-registering an id with different content emits one
// record carrying both content hashes; re-registering identical content —
// a cache no-op — emits nothing, as does a first registration.
func TestHotSwapLog(t *testing.T) {
	h := &recordingHandler{}
	r := New(Config{Logger: slog.New(h)})
	v1 := wgen.Figure2XSD(true, 100)
	v2 := wgen.Figure2XSD(false, 100)
	e1, err := r.Register("s", v1, FormatAuto, "")
	if err != nil {
		t.Fatal(err)
	}
	if got := h.byMessage("registry: schema hot-swapped"); len(got) != 0 {
		t.Fatalf("first registration logged as hot-swap: %v", got)
	}
	if _, err := r.Register("s", v1, FormatAuto, ""); err != nil {
		t.Fatal(err)
	}
	if got := h.byMessage("registry: schema hot-swapped"); len(got) != 0 {
		t.Fatalf("identical re-registration logged as hot-swap: %v", got)
	}
	e2, err := r.Register("s", v2, FormatAuto, "")
	if err != nil {
		t.Fatal(err)
	}
	recs := h.byMessage("registry: schema hot-swapped")
	if len(recs) != 1 {
		t.Fatalf("want exactly one hot-swap record, got %d", len(recs))
	}
	rec := recs[0]
	if rec.attrs["id"].String() != "s" {
		t.Errorf("id = %s", rec.attrs["id"])
	}
	if rec.attrs["old_hash"].String() != e1.Hash || rec.attrs["new_hash"].String() != e2.Hash {
		t.Errorf("hashes = (%s, %s), want (%s, %s)",
			rec.attrs["old_hash"], rec.attrs["new_hash"], e1.Hash, e2.Hash)
	}
}

// TestPairCtxLookupOutcomes: the Lookup reports miss → hit, and a
// coalesced lookup carries the compiling request's span context so the
// caller can link to it.
func TestPairCtxLookupOutcomes(t *testing.T) {
	r := New(Config{})
	src, dst := figPair(t, r)

	_, lk, err := r.PairCtx(context.Background(), src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if lk.Outcome != LookupMiss {
		t.Fatalf("first lookup outcome = %q, want miss", lk.Outcome)
	}
	real, lk, err := r.PairCtx(context.Background(), src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if lk.Outcome != LookupHit {
		t.Fatalf("second lookup outcome = %q, want hit", lk.Outcome)
	}
	if lk.Compiler.IsValid() {
		t.Fatal("plain hit should not carry a compiler span context")
	}

	// Plant an in-flight entry with a known compiler span context (the
	// TestCoalesceCounter technique) and check the coalescer sees it.
	compiler := telemetry.SpanContext{
		TraceID: telemetry.TraceID{0xab, 1},
		SpanID:  telemetry.SpanID{0xcd, 2},
		Sampled: true,
	}
	r.mu.Lock()
	key := r.schemas[src].Hash + "\x00" + r.schemas[dst].Hash
	old := r.pairs[key]
	e := &pairEntry{key: key, srcID: src, dstID: dst, ready: make(chan struct{}), compiler: compiler}
	r.lru.Remove(old.elem)
	e.elem = r.lru.PushFront(e)
	r.pairs[key] = e
	r.mu.Unlock()

	type result struct {
		lk  Lookup
		err error
	}
	got := make(chan result, 1)
	go func() {
		_, lk, err := r.PairCtx(context.Background(), src, dst)
		got <- result{lk, err}
	}()
	for r.Stats().Coalesces < 1 {
		runtime.Gosched()
	}
	e.pair = real
	close(e.ready)

	res := <-got
	if res.err != nil {
		t.Fatal(res.err)
	}
	if res.lk.Outcome != LookupCoalesce {
		t.Fatalf("outcome = %q, want coalesce", res.lk.Outcome)
	}
	if res.lk.Compiler != compiler {
		t.Fatalf("coalesce compiler = %+v, want the planted span context", res.lk.Compiler)
	}
}
