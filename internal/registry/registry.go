// Package registry is the schema-pair cache behind the castd daemon: it
// holds schema texts by id and compiled (source, target) caster pairs by
// content hash, amortizing the R_sub/R_dis fixpoints and IDA construction
// across an unbounded stream of revalidation requests — the serving-layer
// half of the paper's economic argument (§1's message broker pays
// preprocessing once per schema pair, then casts documents nearly for
// free).
//
// Concurrency contract:
//
//   - Compiled pairs are immutable; a *Pair stays fully usable after
//     eviction or after one of its schemas is re-registered — holders are
//     never invalidated, the registry merely stops handing the pair out.
//   - Re-registering a schema id is an atomic hot-swap of the id → text
//     binding. In-flight validations run on the pair they resolved;
//     subsequent lookups resolve the new text. Pairs are keyed by content
//     hash, so two versions of one id coexist in the cache.
//   - Pair lookups are singleflight: N concurrent requests for an
//     uncompiled pair trigger exactly one compile; the other N-1 block on
//     it and share the result.
//   - Eviction is LRU under a configurable entry and approximate byte
//     budget; the most recently used pair is never evicted, so the cache
//     stays useful even when one pair alone exceeds the budget.
package registry

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"log/slog"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	revalidate "repro"
	"repro/internal/artifact"
	"repro/internal/faultinject"
	"repro/internal/telemetry"
)

// Format identifies a schema text format.
type Format string

const (
	// FormatAuto sniffs: texts containing a <!ELEMENT declaration (or
	// registered with no XSD markup) are DTDs, everything else is XSD.
	FormatAuto Format = ""
	FormatXSD  Format = "xsd"
	FormatDTD  Format = "dtd"
)

// Sniff guesses the format of a schema text.
func Sniff(text string) Format {
	if strings.Contains(text, "<!ELEMENT") {
		return FormatDTD
	}
	return FormatXSD
}

// SchemaEntry is one registered schema version: immutable once created.
type SchemaEntry struct {
	ID     string `json:"id"`
	Format Format `json:"format"`
	// DTDRoot fixes the root element for DTD texts without a DOCTYPE.
	DTDRoot string `json:"dtdRoot,omitempty"`
	Text    string `json:"-"`
	// Hash is the content hash (format, root and text) that keys the pair
	// cache; re-registering identical content is a no-op for the cache.
	Hash  string `json:"hash"`
	Bytes int    `json:"bytes"`
}

// Pair is a compiled (source, target) schema pair: the tree-level and
// streaming casters over one shared set of relations and IDAs, plus the
// static-compatibility report. Immutable and safe for concurrent use.
type Pair struct {
	Src, Dst             *SchemaEntry
	SrcSchema, DstSchema *revalidate.Schema
	Caster               *revalidate.Caster
	Stream               *revalidate.StreamCaster
	Report               revalidate.PairReport
	CompileTime          time.Duration
	// Cost is the cache footprint charged against the byte budget: the
	// pair's serialized artifact size (schema texts, relation matrices,
	// product IDAs). Only if encoding fails does it fall back to the old
	// costPerIDAState estimate.
	Cost int64
}

// costPerIDAState approximates the memory of one product-IDA state (dense
// transition row plus flag bits); used only as the Cost fallback when a
// pair cannot be serialized.
const costPerIDAState = 64

// UnknownSchemaError reports a lookup of an unregistered schema id.
type UnknownSchemaError struct{ ID string }

func (e *UnknownSchemaError) Error() string {
	return fmt.Sprintf("registry: unknown schema id %q", e.ID)
}

// CompilePanicError reports a schema-pair compile that panicked. The
// registry recovers the panic so the singleflight cannot poison its cache:
// the compiling caller and every coalesced waiter receive this error, the
// entry is evicted (the next lookup retries the compile), and the daemon
// maps it to a 500 — a server fault, not a verdict about the document.
type CompilePanicError struct {
	Src, Dst string // schema ids of the pair whose compile panicked
	Value    any    // recovered panic value
	Stack    []byte // compiling goroutine's stack at recovery
}

func (e *CompilePanicError) Error() string {
	return fmt.Sprintf("registry: compiling pair (%q, %q) panicked: %v", e.Src, e.Dst, e.Value)
}

// Config bounds the pair cache. Zero values mean unbounded.
type Config struct {
	// MaxEntries caps the number of cached compiled pairs.
	MaxEntries int
	// MaxBytes caps the approximate total Cost of cached pairs.
	MaxBytes int64
	// Store, when non-nil, persists compiled pairs as artifacts: lookups go
	// memory → disk → compile, and every compile (or peer install) writes
	// its blob through, so a restarted daemon warms from disk with zero
	// recompiles. Corrupt or stale blobs fall back to a fresh compile.
	Store *artifact.Store
	// Logger, when non-nil, receives structured records for cache
	// lifecycle events: one per eviction (with the victim's content hashes
	// and byte cost) and one per hot-swap re-registration. Records are
	// emitted with the triggering request's context, so they carry
	// trace_id/span_id under a correlating handler.
	Logger *slog.Logger
}

// Stats is a counter snapshot for /metrics.json.
type Stats struct {
	Schemas int   `json:"schemas"`
	Pairs   int   `json:"pairs"`
	Bytes   int64 `json:"bytes"`
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	// Coalesces counts hits that arrived while the pair's compile was still
	// in flight: callers that the singleflight saved from compiling.
	Coalesces int64 `json:"coalesces"`
	Compiles  int64 `json:"compiles"`
	Evictions int64 `json:"evictions"`
	// CompilePanics counts schema-pair compiles that panicked and were
	// recovered (the singleflight poisoning the fault-containment layer
	// guards against).
	CompilePanics int64       `json:"compilePanics"`
	CompileNS     int64       `json:"compileNS"`
	PerPair       []PairStats `json:"perPair,omitempty"`
}

// PairStats are the per-pair counters, MRU first.
type PairStats struct {
	Src       string `json:"src"`
	Dst       string `json:"dst"`
	Hits      int64  `json:"hits"`
	CompileNS int64  `json:"compileNS"`
	Bytes     int64  `json:"bytes"`
}

// pairEntry is the cache slot for one content-hash pair key. ready is
// closed once pair/err are set (the singleflight rendezvous).
type pairEntry struct {
	key          string
	srcID, dstID string // ids observed at creation, for diagnostics
	ready        chan struct{}
	pair         *Pair
	err          error
	elem         *list.Element
	cost         int64
	hits         atomic.Int64
	// compiler is the span context active in the request that started this
	// entry's compile; coalescing requests link their lookup span to it so
	// the waterfall shows whose compile they piggybacked on.
	compiler telemetry.SpanContext
}

// Registry is the concurrent schema store and pair cache. The mutex guards
// only map/list bookkeeping; compiles and validations run outside it.
type Registry struct {
	cfg    Config
	logger *slog.Logger    // nil when Config.Logger was nil
	store  *artifact.Store // nil when persistence is disabled

	mu      sync.Mutex
	schemas map[string]*SchemaEntry
	pairs   map[string]*pairEntry
	lru     *list.List // of *pairEntry; Front = most recently used
	bytes   int64

	hits, misses, compiles, evictions atomic.Int64
	coalesces                         atomic.Int64
	compileNS                         atomic.Int64
	compilePanics                     atomic.Int64

	// compileObserver, when set, receives each compile's wall-clock seconds
	// (the bridge into a latency histogram owned by the serving layer).
	compileObserver atomic.Pointer[func(seconds float64)]
}

// SetCompileObserver installs a callback invoked with each schema-pair
// compile's duration in seconds. The serving layer points this at its
// registry_compile_seconds histogram; a nil observer (the default) costs
// one atomic load per compile.
func (r *Registry) SetCompileObserver(fn func(seconds float64)) {
	if fn == nil {
		r.compileObserver.Store(nil)
		return
	}
	r.compileObserver.Store(&fn)
}

// New returns an empty registry.
func New(cfg Config) *Registry {
	return &Registry{
		cfg:     cfg,
		logger:  cfg.Logger,
		store:   cfg.Store,
		schemas: map[string]*SchemaEntry{},
		pairs:   map[string]*pairEntry{},
		lru:     list.New(),
	}
}

// Store returns the artifact store the registry reads and writes through
// to, nil when persistence is disabled.
func (r *Registry) Store() *artifact.Store { return r.store }

// Register binds id to a schema text, compiling it once standalone so a
// broken schema is rejected at registration time rather than at first
// cast. Re-registering an id hot-swaps the binding atomically; pairs
// compiled from the previous version stay cached (under their content
// hash) and stay usable by holders.
func (r *Registry) Register(id, text string, format Format, dtdRoot string) (*SchemaEntry, error) {
	return r.RegisterCtx(context.Background(), id, text, format, dtdRoot)
}

// RegisterCtx is Register with a request context: a hot-swap (re-register
// under an id already bound to different content) emits one structured log
// record correlated to the requesting trace.
func (r *Registry) RegisterCtx(ctx context.Context, id, text string, format Format, dtdRoot string) (*SchemaEntry, error) {
	if id == "" {
		return nil, fmt.Errorf("registry: empty schema id")
	}
	if format == FormatAuto {
		format = Sniff(text)
	}
	e := &SchemaEntry{ID: id, Format: format, DTDRoot: dtdRoot, Text: text, Bytes: len(text)}
	if _, err := e.load(revalidate.NewUniverse()); err != nil {
		return nil, err
	}
	h := sha256.Sum256([]byte(string(format) + "\x00" + dtdRoot + "\x00" + text))
	e.Hash = hex.EncodeToString(h[:])
	r.mu.Lock()
	old := r.schemas[id]
	r.schemas[id] = e
	r.mu.Unlock()
	if r.logger != nil && old != nil && old.Hash != e.Hash {
		r.logger.LogAttrs(ctx, slog.LevelInfo, "registry: schema hot-swapped",
			slog.String("id", id),
			slog.String("old_hash", old.Hash),
			slog.String("new_hash", e.Hash),
			slog.Int("old_bytes", old.Bytes),
			slog.Int("new_bytes", e.Bytes))
	}
	return e, nil
}

// load compiles the entry's text into u.
func (e *SchemaEntry) load(u *revalidate.Universe) (*revalidate.Schema, error) {
	switch e.Format {
	case FormatDTD:
		return u.LoadDTD(e.Text, e.DTDRoot)
	case FormatXSD:
		return u.LoadXSDString(e.Text)
	default:
		return nil, fmt.Errorf("registry: schema %q: unknown format %q", e.ID, e.Format)
	}
}

// Schema returns the current version registered under id.
func (r *Registry) Schema(id string) (*SchemaEntry, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.schemas[id]
	return e, ok
}

// Schemas returns the current id → entry bindings.
func (r *Registry) Schemas() []*SchemaEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*SchemaEntry, 0, len(r.schemas))
	for _, e := range r.schemas {
		out = append(out, e)
	}
	return out
}

// Lookup outcomes reported by PairCtx.
const (
	// LookupHit resolved a fully compiled cached pair.
	LookupHit = "hit"
	// LookupMiss compiled the pair in this call.
	LookupMiss = "miss"
	// LookupArtifact loaded the pair from the artifact store instead of
	// compiling it.
	LookupArtifact = "artifact"
	// LookupCoalesce waited on a compile another caller was running.
	LookupCoalesce = "coalesce"
)

// Lookup describes how a PairCtx call was satisfied — the span-attribute
// view of the hit/miss/coalesce counters.
type Lookup struct {
	// Outcome is LookupHit, LookupMiss or LookupCoalesce.
	Outcome string
	// Compiler is, for a coalesced lookup, the span context that was
	// active in the request running the compile — the link target that
	// makes the singleflight visible in a trace waterfall. Zero otherwise.
	Compiler telemetry.SpanContext
}

// Pair returns the compiled caster pair for the current versions of the
// two schema ids, compiling (once, however many callers arrive
// concurrently) on a cache miss.
func (r *Registry) Pair(srcID, dstID string) (*Pair, error) {
	p, _, err := r.PairCtx(context.Background(), srcID, dstID)
	return p, err
}

// PairCtx is Pair with a request context: the returned Lookup reports how
// the call was satisfied (for span attributes and links), eviction log
// records triggered by an insert are correlated to ctx's trace, and a
// compile started here records ctx's span so later coalescers can link to
// it.
func (r *Registry) PairCtx(ctx context.Context, srcID, dstID string) (*Pair, Lookup, error) {
	r.mu.Lock()
	src, ok := r.schemas[srcID]
	if !ok {
		r.mu.Unlock()
		return nil, Lookup{}, &UnknownSchemaError{ID: srcID}
	}
	dst, ok := r.schemas[dstID]
	if !ok {
		r.mu.Unlock()
		return nil, Lookup{}, &UnknownSchemaError{ID: dstID}
	}
	key := src.Hash + "\x00" + dst.Hash
	if e, ok := r.pairs[key]; ok {
		// Hit (possibly on a compile still in flight — wait for it).
		e.hits.Add(1)
		r.hits.Add(1)
		r.lru.MoveToFront(e.elem)
		r.mu.Unlock()
		lk := Lookup{Outcome: LookupHit}
		select {
		case <-e.ready:
		default:
			// The compile is still in flight: this caller coalesced onto it
			// instead of compiling its own copy.
			r.coalesces.Add(1)
			lk.Outcome = LookupCoalesce
			lk.Compiler = e.compiler
		}
		<-e.ready
		return e.pair, lk, e.err
	}
	e := &pairEntry{key: key, srcID: srcID, dstID: dstID, ready: make(chan struct{})}
	e.compiler = telemetry.SpanFromContext(ctx).Context()
	e.elem = r.lru.PushFront(e)
	r.pairs[key] = e
	r.misses.Add(1)
	r.mu.Unlock()

	outcome := LookupMiss
	var err error
	start := time.Now()
	pair := r.loadArtifactPair(ctx, src, dst)
	if pair != nil {
		// Disk hit: the pair is ready without a compile; CompileTime is the
		// decode/reconstruction wall clock.
		pair.CompileTime = time.Since(start)
		outcome = LookupArtifact
	} else {
		r.compiles.Add(1)
		start = time.Now()
		var blob []byte
		pair, blob, err = r.compilePairRecovered(ctx, src, dst)
		d := time.Since(start)
		r.compileNS.Add(int64(d))
		if obs := r.compileObserver.Load(); obs != nil {
			(*obs)(d.Seconds())
		}
		if pair != nil {
			pair.CompileTime = d
		}
		if err == nil && blob != nil && r.store != nil {
			if perr := r.store.Put(artifact.Key(src.Hash, dst.Hash), blob); perr != nil && !errors.Is(perr, artifact.ErrDegraded) && r.logger != nil {
				r.logger.LogAttrs(ctx, slog.LevelWarn, "registry: artifact write-through failed",
					slog.String("src", src.ID),
					slog.String("dst", dst.ID),
					slog.String("error", perr.Error()))
			}
		}
	}
	e.pair, e.err = pair, err
	close(e.ready)

	lk := Lookup{Outcome: outcome}
	r.mu.Lock()
	if r.pairs[key] != e {
		// Evicted while compiling; nothing to account.
		r.mu.Unlock()
		return pair, lk, err
	}
	if err != nil {
		// Failed compiles are not cached, so a corrected re-registration
		// retries instead of replaying the stale error.
		delete(r.pairs, key)
		r.lru.Remove(e.elem)
		r.mu.Unlock()
		return nil, lk, err
	}
	e.cost = pair.Cost
	r.bytes += e.cost
	victims := r.evictLocked(e)
	r.mu.Unlock()
	r.logEvictions(ctx, victims)
	return pair, lk, nil
}

// logEvictions emits one structured record per evicted entry, outside the
// registry mutex.
func (r *Registry) logEvictions(ctx context.Context, victims []*pairEntry) {
	if r.logger == nil {
		return
	}
	for _, v := range victims {
		srcHash, dstHash, _ := strings.Cut(v.key, "\x00")
		r.logger.LogAttrs(ctx, slog.LevelInfo, "registry: pair evicted",
			slog.String("src", v.srcID),
			slog.String("dst", v.dstID),
			slog.String("src_hash", srcHash),
			slog.String("dst_hash", dstHash),
			slog.Int64("bytes", v.cost),
			slog.Int64("hits", v.hits.Load()))
	}
}

// compilePairRecovered runs compilePair under a panic guard. Without it a
// panicking compile would poison the singleflight: ready would never close
// (coalesced waiters hang forever) and the broken entry would shadow the
// key until process restart. Recovering here turns the panic into an
// ordinary compile error, which the caller's existing failed-compile path
// already evicts — so waiters get the error and the next lookup retries.
func (r *Registry) compilePairRecovered(ctx context.Context, src, dst *SchemaEntry) (pair *Pair, blob []byte, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			perr := &CompilePanicError{Src: src.ID, Dst: dst.ID, Value: rec, Stack: debug.Stack()}
			r.compilePanics.Add(1)
			if r.logger != nil {
				r.logger.LogAttrs(ctx, slog.LevelError, "registry: compile panicked",
					slog.String("src", src.ID),
					slog.String("dst", dst.ID),
					slog.Any("panic", rec),
					slog.String("stack", string(perr.Stack)))
			}
			pair, blob, err = nil, nil, perr
		}
	}()
	if err := faultinject.Compile(); err != nil {
		return nil, nil, fmt.Errorf("registry: pair (%q, %q): %w", src.ID, dst.ID, err)
	}
	return compilePair(src, dst)
}

// compilePair loads both texts into a fresh universe and preprocesses the
// pair once (shared relations and caster table for both validation modes).
// The returned blob is the pair's serialized artifact, ready for the store
// write-through; encoding it is cheap next to the fixpoints just computed,
// and its length is the pair's real cache footprint.
func compilePair(src, dst *SchemaEntry) (*Pair, []byte, error) {
	u := revalidate.NewUniverse()
	ss, err := src.load(u)
	if err != nil {
		return nil, nil, fmt.Errorf("registry: source %q: %w", src.ID, err)
	}
	ds, err := dst.load(u)
	if err != nil {
		return nil, nil, fmt.Errorf("registry: target %q: %w", dst.ID, err)
	}
	c, sc, err := revalidate.NewCasterPair(ss, ds)
	if err != nil {
		return nil, nil, fmt.Errorf("registry: pair (%q, %q): %w", src.ID, dst.ID, err)
	}
	report := c.Report()
	pair := &Pair{
		Src: src, Dst: dst,
		SrcSchema: ss, DstSchema: ds,
		Caster: c, Stream: sc,
		Report: report,
	}
	blob, err := artifact.Encode(src.artifactInfo(), dst.artifactInfo(), c, report)
	if err != nil {
		// Unencodable pairs stay servable; charge the old estimate instead.
		pair.Cost = int64(src.Bytes+dst.Bytes) + int64(report.IDAStates)*costPerIDAState
		return pair, nil, nil
	}
	pair.Cost = int64(len(blob))
	return pair, blob, nil
}

// artifactInfo is the schema's identity as the artifact codec carries it.
func (e *SchemaEntry) artifactInfo() artifact.SchemaInfo {
	return artifact.SchemaInfo{Format: string(e.Format), DTDRoot: e.DTDRoot, Text: e.Text, Hash: e.Hash}
}

// loadArtifactPair tries the disk store for the pair's artifact. Any
// failure — no store, not found, corrupt, stale — returns nil and the
// caller compiles fresh; the store itself counts the outcome and
// quarantines corrupt files.
func (r *Registry) loadArtifactPair(ctx context.Context, src, dst *SchemaEntry) *Pair {
	if r.store == nil {
		return nil
	}
	dec, err := r.store.LoadPair(artifact.Key(src.Hash, dst.Hash))
	if err != nil {
		if !errors.Is(err, artifact.ErrNotFound) && r.logger != nil {
			r.logger.LogAttrs(ctx, slog.LevelWarn, "registry: artifact load failed, compiling fresh",
				slog.String("src", src.ID),
				slog.String("dst", dst.ID),
				slog.String("error", err.Error()))
		}
		return nil
	}
	return pairFromDecoded(src, dst, dec)
}

// pairFromDecoded wraps a decoded artifact as a cache pair; Cost is the
// blob's real size on the wire.
func pairFromDecoded(src, dst *SchemaEntry, dec *artifact.Decoded) *Pair {
	return &Pair{
		Src: src, Dst: dst,
		SrcSchema: dec.SrcSchema, DstSchema: dec.DstSchema,
		Caster: dec.Caster, Stream: dec.Stream,
		Report: dec.Report,
		Cost:   int64(dec.Size),
	}
}

// CachedPair returns the compiled pair for the current versions of the two
// schema ids only if it is already in memory and ready — no disk read, no
// compile, no blocking on an in-flight compile. The cluster router uses it
// to prefer a warm local copy over peer traffic.
func (r *Registry) CachedPair(srcID, dstID string) (*Pair, bool) {
	r.mu.Lock()
	src, ok := r.schemas[srcID]
	if !ok {
		r.mu.Unlock()
		return nil, false
	}
	dst, ok := r.schemas[dstID]
	if !ok {
		r.mu.Unlock()
		return nil, false
	}
	e, ok := r.pairs[src.Hash+"\x00"+dst.Hash]
	if !ok {
		r.mu.Unlock()
		return nil, false
	}
	select {
	case <-e.ready:
	default:
		r.mu.Unlock()
		return nil, false
	}
	if e.err != nil {
		r.mu.Unlock()
		return nil, false
	}
	e.hits.Add(1)
	r.hits.Add(1)
	r.lru.MoveToFront(e.elem)
	r.mu.Unlock()
	return e.pair, true
}

// DiskPair resolves a pair from local state only — the in-memory cache or
// the on-disk artifact store — never compiling and never touching peers.
// It backs the degraded-mode "stale" policy: while the pair's owner is
// unreachable, a previously-fetched artifact keeps serving verdicts, and a
// pair this node has never seen reports (nil, false) so the caller can
// answer 503 instead of paying a compile. A disk hit is inserted into the
// cache, so the next request is a plain memory hit.
func (r *Registry) DiskPair(ctx context.Context, srcID, dstID string) (*Pair, bool) {
	if p, ok := r.CachedPair(srcID, dstID); ok {
		return p, true
	}
	r.mu.Lock()
	src, ok := r.schemas[srcID]
	if !ok {
		r.mu.Unlock()
		return nil, false
	}
	dst, ok := r.schemas[dstID]
	if !ok {
		r.mu.Unlock()
		return nil, false
	}
	r.mu.Unlock()
	pair := r.loadArtifactPair(ctx, src, dst)
	if pair == nil {
		return nil, false
	}
	key := src.Hash + "\x00" + dst.Hash
	r.mu.Lock()
	if e, ok := r.pairs[key]; ok {
		// Raced with a concurrent lookup or install; keep whichever landed.
		r.lru.MoveToFront(e.elem)
		r.mu.Unlock()
		<-e.ready
		if e.err != nil {
			return nil, false
		}
		return e.pair, true
	}
	e := &pairEntry{key: key, srcID: srcID, dstID: dstID, ready: make(chan struct{}), pair: pair, cost: pair.Cost}
	close(e.ready)
	e.elem = r.lru.PushFront(e)
	r.pairs[key] = e
	r.bytes += e.cost
	victims := r.evictLocked(e)
	r.mu.Unlock()
	r.logEvictions(ctx, victims)
	return pair, true
}

// InstallArtifact decodes a peer-fetched artifact blob and inserts the pair
// into the cache under the current versions of the two schema ids, without
// counting a compile. The blob must address exactly those versions — its
// embedded content hashes are checked — and is written through to the local
// store so the pair survives a restart. If the pair landed in the cache
// concurrently (a racing lookup or install), that copy wins and is
// returned.
func (r *Registry) InstallArtifact(ctx context.Context, srcID, dstID string, blob []byte) (*Pair, error) {
	r.mu.Lock()
	src, ok := r.schemas[srcID]
	if !ok {
		r.mu.Unlock()
		return nil, &UnknownSchemaError{ID: srcID}
	}
	dst, ok := r.schemas[dstID]
	if !ok {
		r.mu.Unlock()
		return nil, &UnknownSchemaError{ID: dstID}
	}
	key := src.Hash + "\x00" + dst.Hash
	if e, ok := r.pairs[key]; ok {
		r.hits.Add(1)
		e.hits.Add(1)
		r.lru.MoveToFront(e.elem)
		r.mu.Unlock()
		<-e.ready
		return e.pair, e.err
	}
	r.mu.Unlock()

	start := time.Now()
	dec, err := artifact.Decode(blob)
	if err != nil {
		return nil, fmt.Errorf("registry: installing artifact for (%q, %q): %w", srcID, dstID, err)
	}
	if dec.Src.Hash != src.Hash || dec.Dst.Hash != dst.Hash {
		return nil, fmt.Errorf("registry: artifact for (%q, %q) addresses different schema content", srcID, dstID)
	}
	pair := pairFromDecoded(src, dst, dec)
	pair.CompileTime = time.Since(start)

	r.mu.Lock()
	if e, ok := r.pairs[key]; ok {
		// Raced with a concurrent lookup or install; keep whichever landed.
		r.lru.MoveToFront(e.elem)
		r.mu.Unlock()
		<-e.ready
		return e.pair, e.err
	}
	e := &pairEntry{key: key, srcID: srcID, dstID: dstID, ready: make(chan struct{}), pair: pair, cost: pair.Cost}
	close(e.ready)
	e.elem = r.lru.PushFront(e)
	r.pairs[key] = e
	r.bytes += e.cost
	victims := r.evictLocked(e)
	r.mu.Unlock()
	r.logEvictions(ctx, victims)

	if r.store != nil {
		if perr := r.store.Put(artifact.Key(src.Hash, dst.Hash), blob); perr != nil && !errors.Is(perr, artifact.ErrDegraded) && r.logger != nil {
			r.logger.LogAttrs(ctx, slog.LevelWarn, "registry: artifact write-through failed",
				slog.String("src", srcID),
				slog.String("dst", dstID),
				slog.String("error", perr.Error()))
		}
	}
	return pair, nil
}

// ArtifactBlob returns the encoded artifact addressed by key (artifact.Key
// over the pair's content hashes) for the peer-serving route: from the disk
// store when it has the blob, else re-encoded from the in-memory pair.
// Wraps artifact.ErrNotFound when this node holds neither.
func (r *Registry) ArtifactBlob(key string) ([]byte, error) {
	if r.store != nil {
		if blob, err := r.store.Get(key); err == nil {
			return blob, nil
		}
	}
	r.mu.Lock()
	var pair *Pair
	for _, e := range r.pairs {
		select {
		case <-e.ready:
		default:
			continue
		}
		if e.err == nil && e.pair != nil && artifact.Key(e.pair.Src.Hash, e.pair.Dst.Hash) == key {
			pair = e.pair
			break
		}
	}
	r.mu.Unlock()
	if pair == nil {
		return nil, fmt.Errorf("registry: no artifact under key %s: %w", key, artifact.ErrNotFound)
	}
	return artifact.Encode(pair.Src.artifactInfo(), pair.Dst.artifactInfo(), pair.Caster, pair.Report)
}

// evictLocked drops LRU entries until the budgets hold, never evicting
// keep (the entry just inserted or hit), and returns the victims so the
// caller can log them outside the mutex. Evicted pairs remain usable by
// holders; only the cache forgets them. Caller holds r.mu.
func (r *Registry) evictLocked(keep *pairEntry) []*pairEntry {
	over := func() bool {
		if r.cfg.MaxEntries > 0 && len(r.pairs) > r.cfg.MaxEntries {
			return true
		}
		return r.cfg.MaxBytes > 0 && r.bytes > r.cfg.MaxBytes
	}
	var victims []*pairEntry
	for over() {
		back := r.lru.Back()
		if back == nil {
			break
		}
		victim := back.Value.(*pairEntry)
		if victim == keep {
			break
		}
		r.lru.Remove(back)
		delete(r.pairs, victim.key)
		r.bytes -= victim.cost
		r.evictions.Add(1)
		victims = append(victims, victim)
	}
	return victims
}

// Len reports the number of cached compiled pairs.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.pairs)
}

// Stats snapshots the registry counters, per-pair rows MRU first.
func (r *Registry) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := Stats{
		Schemas:       len(r.schemas),
		Pairs:         len(r.pairs),
		Bytes:         r.bytes,
		Hits:          r.hits.Load(),
		Misses:        r.misses.Load(),
		Coalesces:     r.coalesces.Load(),
		Compiles:      r.compiles.Load(),
		Evictions:     r.evictions.Load(),
		CompilePanics: r.compilePanics.Load(),
		CompileNS:     r.compileNS.Load(),
	}
	for el := r.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*pairEntry)
		row := PairStats{Src: e.srcID, Dst: e.dstID, Hits: e.hits.Load(), Bytes: e.cost}
		select {
		case <-e.ready:
			if e.pair != nil {
				row.CompileNS = int64(e.pair.CompileTime)
			}
		default:
			// Still compiling; report the row with zero compile time.
		}
		st.PerPair = append(st.PerPair, row)
	}
	return st
}
