package registry

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/artifact"
)

func openStore(t *testing.T, dir string) *artifact.Store {
	t.Helper()
	s, err := artifact.OpenStore(dir, nil)
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	return s
}

// TestArtifactWarmLookup is the persistence contract end to end: a second
// registry over the same store directory serves the pair with zero
// compiles, and the pair it serves actually casts.
func TestArtifactWarmLookup(t *testing.T) {
	dir := t.TempDir()

	r1 := New(Config{Store: openStore(t, dir)})
	src, dst := figPair(t, r1)
	p1, err := r1.Pair(src, dst)
	if err != nil {
		t.Fatalf("cold pair: %v", err)
	}
	if got := r1.Stats().Compiles; got != 1 {
		t.Fatalf("cold registry compiles = %d, want 1", got)
	}
	if st := r1.Store().Stats(); st.Writes != 1 || st.Misses != 1 {
		t.Fatalf("cold store stats %+v, want one miss and one write-through", st)
	}

	// "Restart": fresh registry, fresh store handle, same directory.
	r2 := New(Config{Store: openStore(t, dir)})
	src, dst = figPair(t, r2)
	p2, lk, err := r2.PairCtx(context.Background(), src, dst)
	if err != nil {
		t.Fatalf("warm pair: %v", err)
	}
	if lk.Outcome != LookupArtifact {
		t.Fatalf("warm lookup outcome %q, want %q", lk.Outcome, LookupArtifact)
	}
	if got := r2.Stats().Compiles; got != 0 {
		t.Fatalf("warm registry compiles = %d, want 0", got)
	}
	if st := r2.Store().Stats(); st.Hits != 1 {
		t.Fatalf("warm store stats %+v, want one hit", st)
	}
	if p2.Cost != p1.Cost {
		t.Fatalf("warm cost %d != cold cost %d (both should be the blob size)", p2.Cost, p1.Cost)
	}
	if _, err := p2.Stream.Validate(strings.NewReader(poXML(true))); err != nil {
		t.Fatalf("warm pair rejected valid doc: %v", err)
	}
	if _, err := p2.Stream.Validate(strings.NewReader(poXML(false))); err == nil {
		t.Fatal("warm pair accepted invalid doc")
	}
	if p2.CompileTime <= 0 {
		t.Fatal("warm pair has no load time recorded")
	}
}

// TestArtifactCorruptFallsBack truncates the stored blob: the next lookup
// must quarantine it, count the corruption, fall back to a fresh compile,
// and write a good blob back — never panic.
func TestArtifactCorruptFallsBack(t *testing.T) {
	dir := t.TempDir()
	r1 := New(Config{Store: openStore(t, dir)})
	src, dst := figPair(t, r1)
	if _, err := r1.Pair(src, dst); err != nil {
		t.Fatalf("cold pair: %v", err)
	}

	files, err := filepath.Glob(filepath.Join(dir, "*.xca"))
	if err != nil || len(files) != 1 {
		t.Fatalf("expected one blob, got %v (%v)", files, err)
	}
	fi, err := os.Stat(files[0])
	if err != nil {
		t.Fatalf("stat: %v", err)
	}
	if err := os.Truncate(files[0], fi.Size()/2); err != nil {
		t.Fatalf("truncate: %v", err)
	}

	r2 := New(Config{Store: openStore(t, dir)})
	src, dst = figPair(t, r2)
	p, err := r2.Pair(src, dst)
	if err != nil {
		t.Fatalf("pair after corruption: %v", err)
	}
	if _, err := p.Stream.Validate(strings.NewReader(poXML(true))); err != nil {
		t.Fatalf("fallback pair rejected valid doc: %v", err)
	}
	if got := r2.Stats().Compiles; got != 1 {
		t.Fatalf("compiles after corrupt fallback = %d, want 1", got)
	}
	st := r2.Store().Stats()
	if st.Corrupt != 1 {
		t.Fatalf("store stats %+v, want one corruption", st)
	}
	if st.Writes != 1 {
		t.Fatalf("store stats %+v, want the fresh compile written back", st)
	}
	if q, _ := filepath.Glob(filepath.Join(dir, "*.corrupt")); len(q) != 1 {
		t.Fatalf("quarantine files %v, want exactly one", q)
	}
}

// TestInstallArtifact moves a blob between two registries the way the
// cluster router does: export from the owner via ArtifactBlob, install on
// the non-owner, which then serves the pair without compiling.
func TestInstallArtifact(t *testing.T) {
	owner := New(Config{Store: openStore(t, t.TempDir())})
	src, dst := figPair(t, owner)
	p, err := owner.Pair(src, dst)
	if err != nil {
		t.Fatalf("owner pair: %v", err)
	}
	key := artifact.Key(p.Src.Hash, p.Dst.Hash)
	blob, err := owner.ArtifactBlob(key)
	if err != nil {
		t.Fatalf("owner blob: %v", err)
	}
	if int64(len(blob)) != p.Cost {
		t.Fatalf("blob is %d bytes, pair cost is %d — cost must be the serialized size", len(blob), p.Cost)
	}

	// The non-owner has the schemas registered but no pair and no store.
	other := New(Config{})
	src, dst = figPair(t, other)
	if _, ok := other.CachedPair(src, dst); ok {
		t.Fatal("non-owner claims a cached pair before install")
	}
	// Garbage must be rejected without caching anything.
	if _, err := other.InstallArtifact(context.Background(), src, dst, []byte("junk")); err == nil {
		t.Fatal("install accepted garbage")
	}
	if _, ok := other.CachedPair(src, dst); ok {
		t.Fatal("failed install left a cached pair behind")
	}
	ip, err := other.InstallArtifact(context.Background(), src, dst, blob)
	if err != nil {
		t.Fatalf("install: %v", err)
	}
	if got := other.Stats().Compiles; got != 0 {
		t.Fatalf("install counted %d compiles, want 0", got)
	}
	if _, err := ip.Stream.Validate(strings.NewReader(poXML(true))); err != nil {
		t.Fatalf("installed pair rejected valid doc: %v", err)
	}
	if cp, ok := other.CachedPair(src, dst); !ok || cp != ip {
		t.Fatal("installed pair not served from cache")
	}
	// A storeless registry can still export the pair for its own peers.
	if blob2, err := other.ArtifactBlob(key); err != nil {
		t.Fatalf("re-export: %v", err)
	} else if len(blob2) != len(blob) {
		t.Fatalf("re-export diverged: %d vs %d bytes", len(blob2), len(blob))
	}

	// A blob for different schema content must be rejected too.
	mis := New(Config{})
	if _, err := mis.Register("v1", `<?xml version="1.0"?><xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema"><xs:element name="a" type="xs:string"/></xs:schema>`, FormatAuto, ""); err != nil {
		t.Fatalf("register: %v", err)
	}
	if _, err := mis.Register("v2", `<?xml version="1.0"?><xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema"><xs:element name="b" type="xs:string"/></xs:schema>`, FormatAuto, ""); err != nil {
		t.Fatalf("register: %v", err)
	}
	if _, err := mis.InstallArtifact(context.Background(), "v1", "v2", blob); err == nil {
		t.Fatal("install accepted a blob addressing different schema content")
	}
}

func TestArtifactBlobUnknownKey(t *testing.T) {
	r := New(Config{})
	if _, err := r.ArtifactBlob(artifact.Key("x", "y")); !errors.Is(err, artifact.ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}
