package registry

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/leakcheck"
)

// TestCompilePanicContained is the regression test for the singleflight
// poisoning bug: a panicking compile used to leave the entry's ready
// channel unclosed forever — every coalesced waiter hung, and the dead
// entry shadowed the key until restart. Now the panic is recovered into a
// *CompilePanicError, every waiter gets it, the entry is evicted, and the
// next lookup recompiles cleanly.
func TestCompilePanicContained(t *testing.T) {
	base := leakcheck.Snapshot()
	r := New(Config{})
	src, dst := figPair(t, r)

	faultinject.Enable(faultinject.Config{CompilePanic: true})
	defer faultinject.Disable()

	// Fan concurrent lookups at the same cold pair: one pays the panicking
	// compile, the rest coalesce onto it. All must return, none may hang.
	const n = 8
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = r.Pair(src, dst)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		var cp *CompilePanicError
		if !errors.As(err, &cp) {
			t.Fatalf("lookup %d: want *CompilePanicError, got %v", i, err)
		}
		if cp.Src != src || cp.Dst != dst || len(cp.Stack) == 0 {
			t.Fatalf("lookup %d: panic error missing context: %+v", i, cp)
		}
	}
	st := r.Stats()
	if st.CompilePanics == 0 {
		t.Fatal("CompilePanics counter did not move")
	}
	if r.Len() != 0 {
		t.Fatalf("poisoned entry stayed cached: %d entries", r.Len())
	}

	// Disarm and retry: the key must compile cleanly — no stale error, no
	// stale entry.
	faultinject.Disable()
	p, err := r.Pair(src, dst)
	if err != nil {
		t.Fatalf("retry after contained panic: %v", err)
	}
	if p == nil || p.Stream == nil {
		t.Fatal("retry returned no usable pair")
	}
	leakcheck.Check(t, base)
}

// TestCompileErrorInjection exercises the non-panic injected failure: a
// plain error from the compile seam must flow to the caller wrapped, stay
// uncached, and clear once disarmed.
func TestCompileErrorInjection(t *testing.T) {
	r := New(Config{})
	src, dst := figPair(t, r)

	faultinject.Enable(faultinject.Config{CompileErr: true})
	defer faultinject.Disable()
	if _, err := r.Pair(src, dst); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("want injected compile error, got %v", err)
	}
	if r.Len() != 0 {
		t.Fatalf("failed compile cached: %d entries", r.Len())
	}

	faultinject.Disable()
	if _, err := r.Pair(src, dst); err != nil {
		t.Fatalf("retry after injected error: %v", err)
	}
}
