package registry

import (
	"errors"
	"runtime"
	"strings"
	"sync"
	"testing"

	"repro/internal/wgen"
)

// figPair registers the Figure 1a (billTo optional) source and Figure 2
// (billTo required) target schemas and returns their ids.
func figPair(t *testing.T, r *Registry) (src, dst string) {
	t.Helper()
	if _, err := r.Register("v1", wgen.Figure2XSD(true, 100), FormatAuto, ""); err != nil {
		t.Fatalf("register v1: %v", err)
	}
	if _, err := r.Register("v2", wgen.Figure2XSD(false, 100), FormatAuto, ""); err != nil {
		t.Fatalf("register v2: %v", err)
	}
	return "v1", "v2"
}

func poXML(withBill bool) string {
	return string(wgen.POXMLBytes(wgen.PODocument(wgen.PODocOptions{Items: 3, IncludeBillTo: withBill, Seed: 1})))
}

func TestRegisterAndPair(t *testing.T) {
	r := New(Config{})
	src, dst := figPair(t, r)
	p, err := r.Pair(src, dst)
	if err != nil {
		t.Fatalf("pair: %v", err)
	}
	if st, err := p.Stream.Validate(strings.NewReader(poXML(true))); err != nil {
		t.Fatalf("valid doc rejected: %v (stats %+v)", err, st)
	}
	if _, err := p.Stream.Validate(strings.NewReader(poXML(false))); err == nil {
		t.Fatal("billTo-less doc accepted against required-billTo target")
	}
	// The report carries the root verdict: POType1 is not subsumed by
	// POType2 (billTo may be absent) and not disjoint.
	if len(p.Report.Roots) == 0 {
		t.Fatal("report has no roots")
	}
	for _, v := range p.Report.Roots {
		if v.Label == "purchaseOrder" && (v.Subsumed || v.Disjoint) {
			t.Fatalf("purchaseOrder verdict wrong: %+v", v)
		}
	}
	if p.Report.AlwaysValid {
		t.Fatal("pair reported statically compatible")
	}
	// The reflexive pair is statically compatible.
	rp, err := r.Pair(src, src)
	if err != nil {
		t.Fatalf("reflexive pair: %v", err)
	}
	if !rp.Report.AlwaysValid {
		t.Fatal("reflexive pair not reported always-valid")
	}
}

func TestRegisterErrors(t *testing.T) {
	r := New(Config{})
	if _, err := r.Register("", "<xsd/>", FormatAuto, ""); err == nil {
		t.Fatal("empty id accepted")
	}
	if _, err := r.Register("bad", "this is not a schema", FormatXSD, ""); err == nil {
		t.Fatal("garbage schema accepted")
	}
	if _, err := r.Pair("nope", "nada"); err == nil {
		t.Fatal("unknown ids produced a pair")
	} else {
		var ue *UnknownSchemaError
		if !errors.As(err, &ue) || ue.ID != "nope" {
			t.Fatalf("want UnknownSchemaError for nope, got %v", err)
		}
	}
}

func TestDTDRegistration(t *testing.T) {
	r := New(Config{})
	const d1 = `<!ELEMENT po (item*)> <!ELEMENT item (#PCDATA)>`
	const d2 = `<!ELEMENT po (item+)> <!ELEMENT item (#PCDATA)>`
	if _, err := r.Register("d1", d1, FormatAuto, "po"); err != nil {
		t.Fatalf("register d1: %v", err)
	}
	if _, err := r.Register("d2", d2, FormatAuto, "po"); err != nil {
		t.Fatalf("register d2: %v", err)
	}
	if e, _ := r.Schema("d1"); e.Format != FormatDTD {
		t.Fatalf("sniff failed: format %q", e.Format)
	}
	p, err := r.Pair("d1", "d2")
	if err != nil {
		t.Fatalf("dtd pair: %v", err)
	}
	if _, err := p.Stream.Validate(strings.NewReader("<po><item>x</item></po>")); err != nil {
		t.Fatalf("one-item doc rejected: %v", err)
	}
	if _, err := p.Stream.Validate(strings.NewReader("<po></po>")); err == nil {
		t.Fatal("empty po accepted against item+ target")
	}
}

// TestSingleflight storms a cold pair from many goroutines and requires
// exactly one compile.
func TestSingleflight(t *testing.T) {
	r := New(Config{})
	src, dst := figPair(t, r)
	const n = 32
	var wg sync.WaitGroup
	pairs := make([]*Pair, n)
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			p, err := r.Pair(src, dst)
			if err != nil {
				t.Errorf("pair %d: %v", i, err)
				return
			}
			pairs[i] = p
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if pairs[i] != pairs[0] {
			t.Fatalf("goroutine %d got a different pair instance", i)
		}
	}
	st := r.Stats()
	if st.Compiles != 1 {
		t.Fatalf("want 1 compile for a cold pair under storm, got %d", st.Compiles)
	}
	if st.Misses != 1 || st.Hits != n-1 {
		t.Fatalf("want 1 miss / %d hits, got %d / %d", n-1, st.Misses, st.Hits)
	}
	if len(st.PerPair) != 1 || st.PerPair[0].Hits != n-1 {
		t.Fatalf("per-pair counters wrong: %+v", st.PerPair)
	}
	// A coalesce is by definition also a hit.
	if st.Coalesces > st.Hits {
		t.Fatalf("coalesces (%d) cannot exceed hits (%d)", st.Coalesces, st.Hits)
	}
}

// TestCoalesceCounter pins a waiter mid-compile deterministically: it
// compiles the pair once to learn the cache key, plants a fresh entry with
// an open ready channel (exactly the state Pair leaves while a compile is
// in flight), and calls Pair from another goroutine. That caller must be
// counted as a coalesce and must receive the pair published at close time.
// Black-box storming can't test this reliably — on a single-CPU runner the
// compile finishes before any rival goroutine is scheduled.
func TestCoalesceCounter(t *testing.T) {
	r := New(Config{})
	src, dst := figPair(t, r)
	real, err := r.Pair(src, dst)
	if err != nil {
		t.Fatal(err)
	}

	r.mu.Lock()
	key := r.schemas[src].Hash + "\x00" + r.schemas[dst].Hash
	old := r.pairs[key]
	e := &pairEntry{key: key, srcID: src, dstID: dst, ready: make(chan struct{})}
	r.lru.Remove(old.elem)
	e.elem = r.lru.PushFront(e)
	r.pairs[key] = e
	r.mu.Unlock()

	got := make(chan *Pair, 1)
	errc := make(chan error, 1)
	go func() {
		p, err := r.Pair(src, dst)
		errc <- err
		got <- p
	}()

	// The rival must take the coalesce branch — ready cannot be closed
	// before this goroutine closes it — so spinning on the counter is
	// deterministic, not a guess about scheduling.
	for r.Stats().Coalesces < 1 {
		runtime.Gosched()
	}
	e.pair = real
	close(e.ready)

	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if p := <-got; p != real {
		t.Fatal("coalesced caller got a different pair instance")
	}
	st := r.Stats()
	if st.Coalesces != 1 {
		t.Fatalf("want exactly 1 coalesce, got %d", st.Coalesces)
	}
	if st.Coalesces > st.Hits {
		t.Fatalf("coalesces (%d) cannot exceed hits (%d)", st.Coalesces, st.Hits)
	}
}

// TestCompileObserver checks the telemetry hook: one observation per
// compile, with a sane (non-negative) duration, and none for cache hits.
func TestCompileObserver(t *testing.T) {
	r := New(Config{})
	var mu sync.Mutex
	var observed []float64
	r.SetCompileObserver(func(seconds float64) {
		mu.Lock()
		observed = append(observed, seconds)
		mu.Unlock()
	})
	src, dst := figPair(t, r)
	if _, err := r.Pair(src, dst); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Pair(src, dst); err != nil { // hit: no new observation
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(observed) != 1 {
		t.Fatalf("want exactly 1 compile observation, got %d", len(observed))
	}
	if observed[0] < 0 {
		t.Fatalf("negative compile duration observed: %v", observed[0])
	}
}

// TestEviction checks LRU behaviour under a 2-entry budget: the oldest
// pair is dropped, the MRU pair stays cached, and an evicted-but-held pair
// keeps validating.
func TestEviction(t *testing.T) {
	r := New(Config{MaxEntries: 2})
	for id, optional := range map[string]bool{"a": true, "b": false} {
		if _, err := r.Register(id, wgen.Figure2XSD(optional, 100), FormatAuto, ""); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.Register("c", wgen.Figure2XSD(false, 200), FormatAuto, ""); err != nil {
		t.Fatal(err)
	}
	pAB, err := r.Pair("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Pair("a", "c"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Pair("b", "c"); err != nil { // evicts (a, b)
		t.Fatal(err)
	}
	st := r.Stats()
	if st.Pairs != 2 || st.Evictions != 1 {
		t.Fatalf("want 2 cached pairs / 1 eviction, got %d / %d", st.Pairs, st.Evictions)
	}
	// The held (a, b) pair is immutable and still usable after eviction.
	if _, err := pAB.Stream.Validate(strings.NewReader(poXML(true))); err != nil {
		t.Fatalf("evicted pair unusable: %v", err)
	}
	// The MRU pair (b, c) is still cached: requesting it again is a hit,
	// not a compile.
	before := r.Stats().Compiles
	if _, err := r.Pair("b", "c"); err != nil {
		t.Fatal(err)
	}
	if after := r.Stats().Compiles; after != before {
		t.Fatalf("MRU pair recompiled: %d -> %d", before, after)
	}
	// Requesting (a, b) again recompiles (it was evicted).
	if _, err := r.Pair("a", "b"); err != nil {
		t.Fatal(err)
	}
	if got := r.Stats().Compiles; got != before+1 {
		t.Fatalf("evicted pair should recompile once, compiles %d -> %d", before, got)
	}
}

// TestByteBudget: a byte budget below the cost of two pairs keeps only the
// MRU pair; a budget below even one pair's cost still keeps that pair (the
// MRU is never evicted).
func TestByteBudget(t *testing.T) {
	r := New(Config{MaxBytes: 1}) // smaller than any pair's cost
	src, dst := figPair(t, r)
	if _, err := r.Pair(src, dst); err != nil {
		t.Fatal(err)
	}
	if got := r.Len(); got != 1 {
		t.Fatalf("sole over-budget pair evicted: %d cached", got)
	}
	if _, err := r.Pair(dst, src); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.Pairs != 1 || st.Evictions != 1 {
		t.Fatalf("want 1 cached pair / 1 eviction under byte budget, got %d / %d", st.Pairs, st.Evictions)
	}
	if st.PerPair[0].Src != dst {
		t.Fatalf("MRU pair should be (%s, %s), got %+v", dst, src, st.PerPair[0])
	}
}

// TestHotSwap re-registers a schema id and checks that the binding swaps
// for new lookups while the previously compiled pair stays cached and
// usable.
func TestHotSwap(t *testing.T) {
	r := New(Config{})
	src, dst := figPair(t, r)
	pOld, err := r.Pair(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	// The billTo-less doc is invalid against v2 (billTo required).
	if _, err := pOld.Stream.Validate(strings.NewReader(poXML(false))); err == nil {
		t.Fatal("invalid doc accepted before swap")
	}
	// Swap v2 to the permissive schema (billTo optional).
	if _, err := r.Register(dst, wgen.Figure2XSD(true, 100), FormatAuto, ""); err != nil {
		t.Fatal(err)
	}
	pNew, err := r.Pair(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if pNew == pOld {
		t.Fatal("lookup after swap returned the old pair")
	}
	if _, err := pNew.Stream.Validate(strings.NewReader(poXML(false))); err != nil {
		t.Fatalf("doc invalid against swapped-in permissive target: %v", err)
	}
	// The old pair (held by an in-flight request) still behaves as before.
	if _, err := pOld.Stream.Validate(strings.NewReader(poXML(false))); err == nil {
		t.Fatal("old pair's verdict changed after swap")
	}
	// Both versions coexist in the cache under their content hashes.
	if got := r.Len(); got != 2 {
		t.Fatalf("want old+new pairs cached, got %d", got)
	}
	// Re-registering identical content keeps the same hash, so the pair
	// cache hits instead of recompiling.
	before := r.Stats().Compiles
	if _, err := r.Register(dst, wgen.Figure2XSD(true, 100), FormatAuto, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Pair(src, dst); err != nil {
		t.Fatal(err)
	}
	if after := r.Stats().Compiles; after != before {
		t.Fatalf("identical re-registration caused recompile: %d -> %d", before, after)
	}
}
