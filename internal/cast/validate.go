package cast

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/fa"
	"repro/internal/schema"
	"repro/internal/telemetry"
	"repro/internal/xmltree"
)

// cancelCheckEvery amortizes cancellation polls: a context-aware walk
// checks ctx.Done() once per this many elements, so cancellation costs one
// counter decrement per element on the hot path and a canceled validation
// stops within one interval of work.
const cancelCheckEvery = 256

// cancelCheck carries the amortized cancellation state of one
// context-aware walk. A nil *cancelCheck (the non-context entry points)
// disables checking entirely.
type cancelCheck struct {
	ctx       context.Context
	done      <-chan struct{}
	countdown int
}

func newCancelCheck(ctx context.Context) *cancelCheck {
	done := ctx.Done()
	if done == nil {
		return nil // context.Background() etc: nothing to poll
	}
	return &cancelCheck{ctx: ctx, done: done, countdown: cancelCheckEvery}
}

// check polls for cancellation once per cancelCheckEvery calls.
func (cc *cancelCheck) check(st *Stats) error {
	if cc == nil {
		return nil
	}
	cc.countdown--
	if cc.countdown > 0 {
		return nil
	}
	cc.countdown = cancelCheckEvery
	select {
	case <-cc.done:
		return fmt.Errorf("cast: validation canceled after %d elements: %w",
			st.ElementsVisited, context.Cause(cc.ctx))
	default:
		return nil
	}
}

// Validate performs schema cast validation without modifications (§3.2):
// given a document valid under the source schema, decide validity under the
// target schema. The verdict is accompanied by work statistics. If the
// document turns out not to be valid under the source schema, Validate
// reports an error (it never wrongly accepts, but the error may then blame
// the contract rather than the target schema).
func (e *Engine) Validate(doc *xmltree.Node) (Stats, error) {
	var st Stats
	err := e.validateRoot(doc, &st, nil, nil)
	return st, err
}

// ValidateContext is Validate with cooperative cancellation: the walk polls
// ctx.Done() every cancelCheckEvery elements, so the hot path pays one
// counter decrement per element and a canceled validation returns (with an
// error wrapping the context's cause) within one check interval. A context
// that can never be canceled costs nothing beyond a nil check.
func (e *Engine) ValidateContext(ctx context.Context, doc *xmltree.Node) (Stats, error) {
	var st Stats
	err := e.validateRoot(doc, &st, nil, newCancelCheck(ctx))
	return st, err
}

// ValidateTrace is Validate in trace mode: every skip/reject/descend
// decision (plus content-model, simple-value and full-validation events)
// is recorded into tr with its path, Dewey number and (τ, τ') pair. The
// trace makes a verdict explainable — it costs allocations proportional to
// the number of decisions and is meant for -explain / ?explain=1 requests,
// not the hot path (which passes a nil trace and pays only a pointer test).
func (e *Engine) ValidateTrace(doc *xmltree.Node, tr *telemetry.Trace) (Stats, error) {
	var st Stats
	err := e.validateRoot(doc, &st, tr, nil)
	return st, err
}

func (e *Engine) validateRoot(doc *xmltree.Node, st *Stats, tr *telemetry.Trace, cc *cancelCheck) error {
	if doc.IsText() {
		return &schema.ValidationError{Path: "/", Reason: "root must be an element"}
	}
	st.ElementsVisited++
	τ := e.Src.RootType(doc.Label)
	if τ == schema.NoType {
		return contractError(schema.NodePath(doc), "label %q is not a source root", doc.Label)
	}
	τp := e.Dst.RootType(doc.Label)
	if τp == schema.NoType {
		return &schema.ValidationError{
			Path:   schema.NodePath(doc),
			Reason: fmt.Sprintf("label %q is not a permitted root of the target schema", doc.Label),
		}
	}
	return e.castValidate(τ, τp, doc, st, 0, tr, cc)
}

// traceEvent builds one decision event for node at depth; only called when
// a trace was requested.
func (e *Engine) traceEvent(a telemetry.Action, node *xmltree.Node, depth int, τ, τp schema.TypeID, detail string) telemetry.Event {
	ev := telemetry.Event{
		Action: a,
		Path:   schema.NodePath(node),
		Dewey:  deweyString(node),
		Depth:  depth,
		Detail: detail,
	}
	if τ != schema.NoType {
		ev.SrcType = e.Src.TypeOf(τ).Name
	}
	if τp != schema.NoType {
		ev.DstType = e.Dst.TypeOf(τp).Name
	}
	return ev
}

// deweyString renders a node's Dewey decimal number ("0.2.1"; "ε" for the
// root, whose Dewey number is the empty sequence).
func deweyString(n *xmltree.Node) string {
	path := n.Path()
	if len(path) == 0 {
		return "ε"
	}
	parts := make([]string, len(path))
	for i, p := range path {
		parts[i] = strconv.Itoa(p)
	}
	return strings.Join(parts, ".")
}

// castValidate is the paper's validate(τ, τ', e): the subtree at node is
// assumed valid with respect to τ (source); decide validity with respect to
// τ' (target). The node itself has been counted by the caller. depth is the
// node's element depth (root = 0); tr, when non-nil, receives one event per
// decision.
func (e *Engine) castValidate(τ, τp schema.TypeID, node *xmltree.Node, st *Stats, depth int, tr *telemetry.Trace, cc *cancelCheck) error {
	st.noteDepth(depth)
	if err := cc.check(st); err != nil {
		return err
	}
	if !e.opts.DisableRelations {
		if e.Rel.Subsumed(τ, τp) {
			st.SubsumedSkips++
			if tr != nil {
				tr.Record(e.traceEvent(telemetry.ActionSkip, node, depth, τ, τp, "subsumed: subtree target-valid without inspection"))
			}
			return nil
		}
		if e.Rel.Disjoint(τ, τp) {
			st.DisjointRejects++
			if tr != nil {
				tr.Record(e.traceEvent(telemetry.ActionReject, node, depth, τ, τp, "disjoint: no source-valid subtree satisfies the target type"))
			}
			return &schema.ValidationError{
				Path: schema.NodePath(node),
				Reason: fmt.Sprintf("source type %q is disjoint from target type %q",
					e.Src.TypeOf(τ).Name, e.Dst.TypeOf(τp).Name),
			}
		}
	}
	tS, tD := e.Src.TypeOf(τ), e.Dst.TypeOf(τp)
	if tD.Simple {
		err := e.checkSimple(tD, node, st)
		if tr != nil {
			detail := "value satisfies target facets"
			if err != nil {
				detail = "value rejected by target facets"
			}
			tr.Record(e.traceEvent(telemetry.ActionSimple, node, depth, τ, τp, detail))
		}
		return err
	}
	if tS.Simple {
		// Source-simple vs target-complex: the node's (source-valid)
		// content is text or empty; it satisfies the complex target only
		// when childless with ε in the content model. Full validation of
		// this shallow node settles it.
		bs, err := fullValidateSubtree(e, τp, node)
		st.addBaseline(bs)
		if tr != nil {
			tr.Record(e.traceEvent(telemetry.ActionFull, node, depth, τ, τp, "source type simple: full validation against target"))
		}
		return err
	}
	// Both complex: check the children label string against regexp_τ',
	// exploiting that it belongs to L(regexp_τ) (§4).
	if tr != nil {
		tr.Record(e.traceEvent(telemetry.ActionDescend, node, depth, τ, τp, "neither subsumed nor disjoint: descending"))
	}
	steps0, skipped0 := st.AutomatonSteps, st.SymbolsSkipped
	if err := e.checkContent(tS, tD, node, st); err != nil {
		if tr != nil {
			tr.Record(e.traceEvent(telemetry.ActionContent, node, depth, τ, τp,
				fmt.Sprintf("content model rejected after scanning %d symbols", st.AutomatonSteps-steps0)))
		}
		return err
	}
	if tr != nil {
		detail := fmt.Sprintf("content model accepted: scanned %d symbols", st.AutomatonSteps-steps0)
		if saved := st.SymbolsSkipped - skipped0; saved > 0 {
			detail += fmt.Sprintf(", immediate accept saved %d", saved)
		}
		tr.Record(e.traceEvent(telemetry.ActionContent, node, depth, τ, τp, detail))
	}
	for _, c := range node.Children {
		if c.Delta == xmltree.DeltaDelete || c.IsText() {
			continue // text was rejected by checkContent already
		}
		sym := e.Src.Alpha.Lookup(c.Label)
		ω, ok := tS.Child[sym]
		if !ok {
			return contractError(schema.NodePath(c), "label %q has no source child type under %q", c.Label, tS.Name)
		}
		ν, ok := tD.Child[sym]
		if !ok {
			// The content check passed, so every child label is usable in
			// the target model and must have a child type.
			return &schema.ValidationError{
				Path:   schema.NodePath(c),
				Reason: fmt.Sprintf("label %q has no child type under target %q", c.Label, tD.Name),
			}
		}
		st.ElementsVisited++
		if err := e.castValidate(ω, ν, c, st, depth+1, tr, cc); err != nil {
			return err
		}
	}
	return nil
}

// checkContent verifies constructstring(children(node)) ∈ L(regexp_τ') and
// that the node has no live text content, scanning the children in place
// (no per-node allocation — this runs once per element on the hot path).
// With the content IDA enabled the scan may stop early (immediate accept);
// membership in L(regexp_τ') is then guaranteed without reading the
// remaining labels, though text-freeness is still enforced over the rest —
// those post-decision labels count as SymbolsSkipped, not AutomatonSteps.
func (e *Engine) checkContent(tS, tD *schema.Type, node *xmltree.Node, st *Stats) error {
	var ida *fa.IDA
	var state int
	decided := false
	if !e.opts.DisableContentIDA {
		ida = e.caster(tS.ID, tD.ID).CImmed
		state = ida.D.Start()
		switch ida.Classify(state) {
		case fa.ImmediateAccept:
			decided = true
		case fa.ImmediateReject:
			return e.contentError(tD, node)
		}
	} else {
		state = tD.DFA.Start()
	}

	for _, c := range node.Children {
		if c.Delta == xmltree.DeltaDelete {
			continue
		}
		if c.IsText() {
			st.TextNodesVisited++
			return &schema.ValidationError{
				Path:   schema.NodePath(node),
				Reason: fmt.Sprintf("target type %q has element content but node has text content", tD.Name),
			}
		}
		sym := e.Src.Alpha.Lookup(c.Label)
		if sym == fa.NoSymbol {
			// Vetted even after the model verdict is settled: a label the
			// schemas never interned breaks the cast contract no matter
			// where it sits relative to the decision point.
			return contractError(schema.NodePath(c), "label %q unknown to the schemas", c.Label)
		}
		if decided {
			st.SymbolsSkipped++
			continue // model verdict settled; keep vetting text and labels only
		}
		st.AutomatonSteps++
		if ida != nil {
			state = ida.D.Step(state, sym)
			switch ida.Classify(state) {
			case fa.ImmediateAccept:
				decided = true
			case fa.ImmediateReject:
				return e.contentError(tD, node)
			}
		} else {
			state = tD.DFA.Step(state, sym)
			if state == fa.Dead {
				return e.contentError(tD, node)
			}
		}
	}
	if decided {
		return nil
	}
	if ida != nil {
		if !ida.D.IsAccept(state) {
			return e.contentError(tD, node)
		}
		return nil
	}
	if !tD.DFA.IsAccept(state) {
		return e.contentError(tD, node)
	}
	return nil
}

func (e *Engine) contentError(tD *schema.Type, node *xmltree.Node) error {
	return &schema.ValidationError{
		Path:   schema.NodePath(node),
		Reason: fmt.Sprintf("children do not satisfy content model of target type %q", tD.Name),
	}
}

// checkSimple validates the node's text content against a simple target
// type.
func (e *Engine) checkSimple(tD *schema.Type, node *xmltree.Node, st *Stats) error {
	value := ""
	seen := 0
	for _, c := range node.Children {
		if c.Delta == xmltree.DeltaDelete {
			continue
		}
		if !c.IsText() {
			st.ElementsVisited++
			return &schema.ValidationError{
				Path:   schema.NodePath(node),
				Reason: fmt.Sprintf("target type %q is simple but node has element content", tD.Name),
			}
		}
		st.TextNodesVisited++
		seen++
		if seen > 1 {
			return &schema.ValidationError{
				Path:   schema.NodePath(node),
				Reason: fmt.Sprintf("target type %q is simple: multiple text children", tD.Name),
			}
		}
		value = c.Text
	}
	if !tD.Value.AcceptsValue(value) {
		return &schema.ValidationError{
			Path: schema.NodePath(node),
			Reason: fmt.Sprintf("value %q does not satisfy simple target type %q (%s)",
				value, tD.Name, tD.Value),
		}
	}
	return nil
}
