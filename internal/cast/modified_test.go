package cast

import (
	"math/rand"
	"testing"

	"repro/internal/baseline"
	"repro/internal/schema"
	"repro/internal/update"
	"repro/internal/wgen"
	"repro/internal/xmltree"
)

// editedPO returns a fresh PO document (valid for src) plus a tracker.
func editedPO(items int, bill bool, seed int64) (*xmltree.Node, *update.Tracker) {
	doc := wgen.PODocument(wgen.PODocOptions{Items: items, IncludeBillTo: bill, Seed: seed})
	return doc, update.NewTracker(doc)
}

func TestModifiedNoEdits(t *testing.T) {
	_, e1, _ := paperEngines(t, Options{})
	doc, tk := editedPO(10, true, 1)
	st, err := e1.ValidateModified(doc, tk.Finalize())
	if err != nil {
		t.Fatalf("unedited doc should validate: %v", err)
	}
	// With an empty trie the whole run is the plain cast: constant work.
	if st.NodesVisited() > 4 {
		t.Fatalf("expected plain-cast work, got %s", st)
	}
}

func TestModifiedInsertBillTo(t *testing.T) {
	// Source: billTo optional; doc lacks billTo; target requires it.
	// Inserting a billTo subtree makes the cast succeed.
	_, e1, _ := paperEngines(t, Options{})
	doc, tk := editedPO(10, false, 2)
	bill := xmltree.NewElement("billTo",
		xmltree.NewElement("name", xmltree.NewText("Bob")),
		xmltree.NewElement("street", xmltree.NewText("2 Oak Ave")),
		xmltree.NewElement("city", xmltree.NewText("Old Town")),
		xmltree.NewElement("state", xmltree.NewText("PA")),
		xmltree.NewElement("zip", xmltree.NewText("95819")),
		xmltree.NewElement("country", xmltree.NewText("US")),
	)
	if err := tk.InsertAfter(doc.Children[0], bill); err != nil {
		t.Fatal(err)
	}
	st, err := e1.ValidateModified(doc, tk.Finalize())
	if err != nil {
		t.Fatalf("after inserting billTo the cast should pass: %v (%s)", err, st)
	}
	if st.FullValidations == 0 {
		t.Fatal("the inserted subtree must be fully validated")
	}
	// Without the insert the same cast fails.
	doc2, tk2 := editedPO(10, false, 2)
	if _, err := e1.ValidateModified(doc2, tk2.Finalize()); err == nil {
		t.Fatal("missing billTo must fail")
	}
}

func TestModifiedDeleteBillTo(t *testing.T) {
	// Deleting billTo breaks the (billTo-required) target.
	_, e1, _ := paperEngines(t, Options{})
	doc, tk := editedPO(10, true, 3)
	if err := tk.Delete(doc.Children[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := e1.ValidateModified(doc, tk.Finalize()); err == nil {
		t.Fatal("deleting billTo must fail against the target")
	}
	// Against the billTo-optional schema the same deletion is fine.
	ps := wgen.NewPaperSchemas()
	eOpt := MustNew(ps.Target, ps.Source1, Options{})
	doc2 := wgen.PODocument(wgen.PODocOptions{Items: 10, IncludeBillTo: true, Seed: 3})
	tk2 := update.NewTracker(doc2)
	if err := tk2.Delete(doc2.Children[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := eOpt.ValidateModified(doc2, tk2.Finalize()); err != nil {
		t.Fatalf("optional billTo deletion should pass: %v", err)
	}
}

func TestModifiedQuantityEdit(t *testing.T) {
	// Same-schema incremental revalidation: bump one quantity.
	ps := wgen.NewPaperSchemas()
	e := MustNew(ps.Target, ps.Target, Options{})
	doc := wgen.PODocument(wgen.PODocOptions{Items: 100, IncludeBillTo: true, Seed: 4})
	tk := update.NewTracker(doc)
	qtyText := doc.Children[2].Children[50].Children[1].Children[0]
	if err := tk.SetText(qtyText, "150"); err != nil {
		t.Fatal(err)
	}
	st, err := e.ValidateModified(doc, tk.Finalize())
	if err == nil {
		t.Fatal("quantity 150 must fail against maxExclusive=100")
	}
	// Work must be proportional to the edit path, not the document: the
	// traversal descends root→items→item[50]→quantity, skipping all
	// sibling subtrees via subsumption.
	if st.NodesVisited() > 250 {
		t.Fatalf("expected localized work, got %s", st)
	}
	// A legal edit passes.
	doc2 := wgen.PODocument(wgen.PODocOptions{Items: 100, IncludeBillTo: true, Seed: 4})
	tk2 := update.NewTracker(doc2)
	if err := tk2.SetText(doc2.Children[2].Children[50].Children[1].Children[0], "42"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.ValidateModified(doc2, tk2.Finalize()); err != nil {
		t.Fatalf("quantity 42 should pass: %v", err)
	}
}

func TestModifiedRelabelRoot(t *testing.T) {
	_, e1, _ := paperEngines(t, Options{})
	doc, tk := editedPO(3, true, 5)
	if err := tk.Relabel(doc, "order"); err != nil {
		t.Fatal(err)
	}
	if _, err := e1.ValidateModified(doc, tk.Finalize()); err == nil {
		t.Fatal("unknown root label must fail")
	}
}

func TestModifiedItemReordering(t *testing.T) {
	// Swap productName and quantity inside one item via relabeling: the
	// content model (productName, quantity, USPrice) no longer matches.
	ps := wgen.NewPaperSchemas()
	e := MustNew(ps.Target, ps.Target, Options{})
	doc := wgen.PODocument(wgen.PODocOptions{Items: 5, IncludeBillTo: true, Seed: 6})
	tk := update.NewTracker(doc)
	item := doc.Children[2].Children[2]
	if err := tk.Relabel(item.Children[0], "quantity"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.ValidateModified(doc, tk.Finalize()); err == nil {
		t.Fatal("duplicate quantity label must fail the content model")
	}
}

// Differential oracle for the with-modifications path: random edit scripts
// against random generated documents; the incremental verdict must match a
// from-scratch full validation of the edited tree.
func TestModifiedAgreesWithFullValidation(t *testing.T) {
	ps := wgen.NewPaperSchemas()
	pairs := [][2]*schema.Schema{
		{ps.Source1, ps.Target},
		{ps.Source2, ps.Target},
		{ps.Target, ps.Target}, // incremental same-schema revalidation
		{ps.Target, ps.Source1},
	}
	rng := rand.New(rand.NewSource(99))
	labels := []string{"shipTo", "billTo", "items", "item", "productName",
		"quantity", "USPrice", "shipDate", "name", "street", "city", "state",
		"zip", "country", "comment"}
	for _, pair := range pairs {
		src, dst := pair[0], pair[1]
		gen := wgen.NewGenerator(src, rng)
		base := baseline.New(dst)
		for _, opts := range []Options{{}, {DisableContentIDA: true}} {
			eng := MustNew(src, dst, opts)
			for i := 0; i < 40; i++ {
				doc, ok := gen.Document()
				if !ok {
					t.Fatal("generation failed")
				}
				tk := update.NewTracker(doc)
				applyRandomEdits(rng, tk, doc, labels, 1+rng.Intn(4))
				trie := tk.Finalize()

				_, wantErr := base.Validate(doc) // full validation of edited tree
				_, gotErr := eng.ValidateModified(doc, trie)
				if (gotErr == nil) != (wantErr == nil) {
					t.Fatalf("opts %+v pair %s→%s: incremental=%v full=%v\ndoc=%s",
						opts, srcName(ps, src), srcName(ps, dst), gotErr, wantErr, doc)
				}
			}
		}
	}
}

func srcName(ps *wgen.PaperSchemas, s *schema.Schema) string {
	switch s {
	case ps.Source1:
		return "source1"
	case ps.Source2:
		return "source2"
	case ps.Target:
		return "target"
	}
	return "?"
}

// applyRandomEdits performs n random edits through the tracker. Edits that
// the tracker rejects (e.g. deleting the root) are retried with a different
// target.
func applyRandomEdits(rng *rand.Rand, tk *update.Tracker, doc *xmltree.Node, labels []string, n int) {
	var all []*xmltree.Node
	doc.Walk(func(nd *xmltree.Node) bool {
		all = append(all, nd)
		return true
	})
	for done := 0; done < n; {
		nd := all[rng.Intn(len(all))]
		var err error
		switch rng.Intn(4) {
		case 0:
			if nd.IsText() {
				err = tk.SetText(nd, "edited")
			} else {
				err = tk.Relabel(nd, labels[rng.Intn(len(labels))])
			}
		case 1:
			if nd.IsText() {
				continue
			}
			child := xmltree.NewElement(labels[rng.Intn(len(labels))])
			if rng.Intn(2) == 0 {
				child.AppendChild(xmltree.NewText("99"))
			}
			err = tk.AppendChild(nd, child)
		case 2:
			if nd.Parent == nil {
				continue
			}
			err = tk.InsertBefore(nd, xmltree.NewElement(labels[rng.Intn(len(labels))]))
		default:
			if nd.Parent == nil {
				continue
			}
			err = tk.Delete(nd)
		}
		if err == nil {
			done++
		}
	}
}

func TestModifiedRootInsertIsFullValidation(t *testing.T) {
	ps := wgen.NewPaperSchemas()
	e := MustNew(ps.Source1, ps.Target, Options{})
	// A brand-new root marked as inserted: full validation path.
	doc := wgen.PODocument(wgen.PODocOptions{Items: 2, IncludeBillTo: true, Seed: 8})
	doc.Delta = xmltree.DeltaInsert
	trie := &update.Trie{}
	trie.Insert(nil)
	st, err := e.ValidateModified(doc, trie)
	if err != nil {
		t.Fatalf("inserted valid doc should pass: %v", err)
	}
	if st.FullValidations != 1 {
		t.Fatalf("expected exactly one full validation, got %s", st)
	}
}

func TestModifiedTextRootRejected(t *testing.T) {
	ps := wgen.NewPaperSchemas()
	e := MustNew(ps.Source1, ps.Target, Options{})
	if _, err := e.ValidateModified(xmltree.NewText("x"), &update.Trie{}); err == nil {
		t.Fatal("text root must fail")
	}
	del := xmltree.NewElement("purchaseOrder")
	del.Delta = xmltree.DeltaDelete
	if _, err := e.ValidateModified(del, &update.Trie{}); err == nil {
		t.Fatal("deleted root must fail")
	}
}
