package cast

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/schema"
	"repro/internal/xmltree"
)

// Stats counts the work one cast validation performed; the node counters
// correspond to the paper's Table 3 metric. Field names are shared with
// internal/stream.Stats and the public revalidate.Stats/StreamStats so the
// four views of "work done" stay comparable (a counter means the same
// thing wherever it appears).
type Stats struct {
	// ElementsVisited counts element nodes the engine examined.
	ElementsVisited int64
	// TextNodesVisited counts χ leaves whose value was read.
	TextNodesVisited int64
	// AutomatonSteps counts DFA/IDA transitions taken during content-model
	// checks — exactly the number of child-label symbols *scanned*.
	AutomatonSteps int64
	// SymbolsSkipped counts child labels seen after an immediate decision
	// automaton had already settled the content-model verdict: the symbols
	// §4's c_immed saved from scanning (they are still vetted for cast-
	// contract breakage, but drive no automaton).
	SymbolsSkipped int64
	// SubsumedSkips counts subtrees skipped because (τ, τ') ∈ R_sub.
	SubsumedSkips int64
	// DisjointRejects counts rejections due to (τ, τ') ∈ R_dis (0 or 1 per
	// validation, since the first one aborts).
	DisjointRejects int64
	// FullValidations counts subtrees handed to the full validator
	// (inserted content, or simple-source fallbacks).
	FullValidations int64
	// ReverseScans counts §4.3 with-modifications content checks that chose
	// the reverse-automaton direction (edits clustered at the end).
	ReverseScans int64
	// MaxDepth is the deepest element depth reached (root = 0). Merged with
	// max, not sum, when batch workers combine their Stats.
	MaxDepth int64
}

// NodesVisited is the total of element and text nodes examined — the
// quantity the paper's Table 3 reports.
func (s Stats) NodesVisited() int64 { return s.ElementsVisited + s.TextNodesVisited }

// WorkSavedRatio is the fraction of a document's nodes the cast never
// touched, given the document's total node count: 1 − visited/total,
// clamped to [0, 1]. This is the paper's Table 3 economy as a single
// number; xmlcast -explain and castbench's BENCH_cast.json report it.
func (s Stats) WorkSavedRatio(totalNodes int64) float64 {
	if totalNodes <= 0 {
		return 0
	}
	r := 1 - float64(s.NodesVisited())/float64(totalNodes)
	if r < 0 {
		return 0
	}
	return r
}

// SymbolsScannedRatio is the fraction of content-model symbols actually
// scanned out of all symbols the engine saw: steps/(steps+skipped). 1 when
// no immediate decision fired (or nothing was scanned at all).
func (s Stats) SymbolsScannedRatio() float64 {
	total := s.AutomatonSteps + s.SymbolsSkipped
	if total == 0 {
		return 1
	}
	return float64(s.AutomatonSteps) / float64(total)
}

// addBaseline folds statistics from a full-validation excursion into s.
func (s *Stats) addBaseline(b baseline.Stats) {
	s.ElementsVisited += b.ElementsVisited
	s.TextNodesVisited += b.TextNodesVisited
	s.AutomatonSteps += b.AutomatonSteps
	s.FullValidations++
}

// noteDepth records that the traversal reached an element at depth d.
func (s *Stats) noteDepth(d int) {
	if int64(d) > s.MaxDepth {
		s.MaxDepth = int64(d)
	}
}

// fullValidateSubtree runs the target-schema full validator over a subtree
// whose root the caller has already counted.
func fullValidateSubtree(e *Engine, τp schema.TypeID, node *xmltree.Node) (baseline.Stats, error) {
	var bs baseline.Stats
	err := e.full.ValidateType(τp, node, &bs)
	return bs, err
}

func (s Stats) String() string {
	return fmt.Sprintf("nodes=%d (elem=%d text=%d) steps=%d skipped-symbols=%d skips=%d disjoint=%d full=%d",
		s.NodesVisited(), s.ElementsVisited, s.TextNodesVisited,
		s.AutomatonSteps, s.SymbolsSkipped, s.SubsumedSkips, s.DisjointRejects, s.FullValidations)
}
