package cast

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/schema"
	"repro/internal/xmltree"
)

// Stats counts the work one cast validation performed; the node counters
// correspond to the paper's Table 3 metric.
type Stats struct {
	// ElementsVisited counts element nodes the engine examined.
	ElementsVisited int64
	// TextNodesVisited counts χ leaves whose value was read.
	TextNodesVisited int64
	// AutomatonSteps counts DFA/IDA transitions taken during content-model
	// checks.
	AutomatonSteps int64
	// SubsumedSkips counts subtrees skipped because (τ, τ') ∈ R_sub.
	SubsumedSkips int64
	// DisjointRejects counts rejections due to (τ, τ') ∈ R_dis (0 or 1 per
	// validation, since the first one aborts).
	DisjointRejects int64
	// FullValidations counts subtrees handed to the full validator
	// (inserted content, or simple-source fallbacks).
	FullValidations int64
}

// NodesVisited is the total of element and text nodes examined — the
// quantity the paper's Table 3 reports.
func (s Stats) NodesVisited() int64 { return s.ElementsVisited + s.TextNodesVisited }

// addBaseline folds statistics from a full-validation excursion into s.
func (s *Stats) addBaseline(b baseline.Stats) {
	s.ElementsVisited += b.ElementsVisited
	s.TextNodesVisited += b.TextNodesVisited
	s.AutomatonSteps += b.AutomatonSteps
	s.FullValidations++
}

// fullValidateSubtree runs the target-schema full validator over a subtree
// whose root the caller has already counted.
func fullValidateSubtree(e *Engine, τp schema.TypeID, node *xmltree.Node) (baseline.Stats, error) {
	var bs baseline.Stats
	err := e.full.ValidateType(τp, node, &bs)
	return bs, err
}

func (s Stats) String() string {
	return fmt.Sprintf("nodes=%d (elem=%d text=%d) steps=%d skips=%d disjoint=%d full=%d",
		s.NodesVisited(), s.ElementsVisited, s.TextNodesVisited,
		s.AutomatonSteps, s.SubsumedSkips, s.DisjointRejects, s.FullValidations)
}
