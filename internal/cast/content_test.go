package cast

import (
	"strings"
	"testing"

	"repro/internal/fa"
	"repro/internal/regexpsym"
	"repro/internal/schema"
	"repro/internal/xmltree"
)

// decisionPairSchemas builds a schema pair whose root content IDA is
// undecided at the start state and immediately accepts after reading one
// "a": source root content (a, b*) | (z, c), target (a, (b|c)*) | z. After
// "a" the source residual b* is contained in the target residual (b|c)*;
// before any symbol the source word "z c" is not target-valid, so no
// decision is possible yet.
func decisionPairSchemas(t *testing.T) (src, dst *schema.Schema) {
	t.Helper()
	alpha := fa.NewAlphabet()
	build := func(name, content string) *schema.Schema {
		s := schema.New(alpha)
		str, err := s.AddSimpleType("str", schema.NewSimpleType(schema.StringKind))
		if err != nil {
			t.Fatal(err)
		}
		root, err := s.AddComplexType(name, regexpsym.MustParse(content))
		if err != nil {
			t.Fatal(err)
		}
		for _, l := range []string{"a", "b", "c", "z"} {
			if err := s.SetChildType(root, l, str); err != nil {
				t.Fatal(err)
			}
		}
		s.SetRoot("root", root)
		if err := s.Compile(); err != nil {
			t.Fatal(err)
		}
		return s
	}
	src = build("RootS", "(a, b*) | (z, c)")
	dst = build("RootT", "(a, (b|c)*) | z")
	return src, dst
}

// TestCheckContentVetsLabelsAfterDecision is the regression test for the
// hot-path verdict bug where checkContent stopped vetting child labels once
// the IDA immediately accepted: a label unknown to both schemas after the
// decision point was silently accepted, while the same label before the
// decision point raised a contract error. Both positions must error.
func TestCheckContentVetsLabelsAfterDecision(t *testing.T) {
	src, dst := decisionPairSchemas(t)
	e := MustNew(src, dst, Options{})
	tS := src.TypeOf(src.TypeByName("RootS"))
	tD := dst.TypeOf(dst.TypeByName("RootT"))

	// Guard the test's premise: the IDA must be undecided at the start and
	// must immediately accept after exactly one "a".
	ida := e.caster(tS.ID, tD.ID).CImmed
	if ida.Classify(ida.D.Start()) != fa.Undecided {
		t.Fatal("premise broken: IDA must be undecided before any symbol")
	}
	res := ida.ScanFromStart([]fa.Symbol{src.Alpha.Lookup("a")})
	if res.Decision != fa.ImmediateAccept {
		t.Fatalf("premise broken: IDA should immediately accept after 'a', got %v", res.Decision)
	}

	// Sanity: a well-formed child string passes.
	good := xmltree.NewElement("root",
		xmltree.NewElement("a"), xmltree.NewElement("b"), xmltree.NewElement("b"))
	var st Stats
	if err := e.checkContent(tS, tD, good, &st); err != nil {
		t.Fatalf("a b b should satisfy the target model: %v", err)
	}

	// Unknown label BEFORE the decision point: contract error (as before).
	before := xmltree.NewElement("root",
		xmltree.NewElement("mystery"), xmltree.NewElement("a"))
	if err := e.checkContent(tS, tD, before, &st); err == nil {
		t.Fatal("unknown label before the decision point must raise a contract error")
	} else if !strings.Contains(err.Error(), "mystery") {
		t.Fatalf("error should name the unknown label: %v", err)
	}

	// Unknown label AFTER the decision point: was silently accepted.
	after := xmltree.NewElement("root",
		xmltree.NewElement("a"), xmltree.NewElement("mystery"))
	if err := e.checkContent(tS, tD, after, &st); err == nil {
		t.Fatal("unknown label after the decision point must raise a contract error")
	} else if !strings.Contains(err.Error(), "mystery") {
		t.Fatalf("error should name the unknown label: %v", err)
	}
}
