// Package cast implements the paper's core contribution: schema cast
// validation of XML documents (EDBT'04 §3.2), schema cast validation with
// modifications (§3.3), and the DTD label-index optimization (§3.4).
//
// An Engine preprocesses a (source, target) schema pair — computing the
// R_sub/R_dis relations and the per-type-pair immediate decision automata
// for content models — and then validates documents known to conform to the
// source schema against the target schema, skipping subsumed subtrees and
// rejecting at the first disjoint pair.
package cast

import (
	"fmt"
	"sync"

	"repro/internal/baseline"
	"repro/internal/schema"
	"repro/internal/strcast"
	"repro/internal/subsume"
)

// Options tune the engine; the zero value is the paper's full algorithm.
type Options struct {
	// DisableContentIDA turns off the §4 immediate decision automata for
	// content models; children label strings are then scanned fully with
	// the target DFA, which is what the paper's modified-Xerces prototype
	// did. Kept as an ablation switch.
	DisableContentIDA bool
	// DisableRelations turns off the R_sub/R_dis consultation, reducing
	// the engine to a full top-down revalidation (another ablation).
	DisableRelations bool
}

// Engine validates documents valid under Src against Dst.
// After New, an Engine is safe for concurrent use.
type Engine struct {
	Src, Dst *schema.Schema
	Rel      *subsume.Relations
	opts     Options

	full *baseline.Validator // target-side full validation (inserted subtrees)

	mu      sync.Mutex
	casters map[typePair]*strcast.Caster
}

type typePair struct{ src, dst schema.TypeID }

// New preprocesses the schema pair: both schemas must be compiled and share
// one alphabet. Content-model cast automata for all type pairs reachable
// from the shared roots are built eagerly; other pairs are built on demand.
func New(src, dst *schema.Schema, opts Options) (*Engine, error) {
	rel, err := subsume.Compute(src, dst)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		Src:     src,
		Dst:     dst,
		Rel:     rel,
		opts:    opts,
		full:    baseline.New(dst),
		casters: map[typePair]*strcast.Caster{},
	}
	if !opts.DisableContentIDA {
		e.precomputeCasters()
	}
	return e, nil
}

// MustNew is New that panics on error; for tests and examples.
func MustNew(src, dst *schema.Schema, opts Options) *Engine {
	e, err := New(src, dst, opts)
	if err != nil {
		panic(err)
	}
	return e
}

// precomputeCasters builds string casters for every (complex, complex) type
// pair reachable from the root labels both schemas accept, skipping pairs
// the relations already decide.
func (e *Engine) precomputeCasters() {
	seen := map[typePair]bool{}
	var queue []typePair
	push := func(p typePair) {
		if !seen[p] {
			seen[p] = true
			queue = append(queue, p)
		}
	}
	for sym, τ := range e.Src.Roots {
		if τp, ok := e.Dst.Roots[sym]; ok {
			push(typePair{τ, τp})
		}
	}
	for len(queue) > 0 {
		p := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		a, b := e.Src.TypeOf(p.src), e.Dst.TypeOf(p.dst)
		if a.Simple || b.Simple {
			continue
		}
		decided := e.Rel.Subsumed(p.src, p.dst) || e.Rel.Disjoint(p.src, p.dst)
		if !decided {
			e.casters[p] = strcast.New(a.DFA, b.DFA)
		}
		// Descend into shared child labels even below decided pairs: a
		// pair decided here may recur undecided elsewhere... it cannot —
		// pairs are global — but its children pairs can differ from it,
		// and with-modifications validation revisits children of subsumed
		// pairs when edits landed below them.
		for sym, ω := range a.Child {
			if ν, ok := b.Child[sym]; ok {
				push(typePair{ω, ν})
			}
		}
	}
}

// caster returns (building if needed) the string caster for a complex type
// pair.
func (e *Engine) caster(τ, τp schema.TypeID) *strcast.Caster {
	p := typePair{τ, τp}
	e.mu.Lock()
	defer e.mu.Unlock()
	if c, ok := e.casters[p]; ok {
		return c
	}
	c := strcast.New(e.Src.TypeOf(τ).DFA, e.Dst.TypeOf(τp).DFA)
	e.casters[p] = c
	return c
}

// PrecomputedCasters reports how many content-model cast automata the
// engine holds; diagnostics for the preprocessing benchmarks.
func (e *Engine) PrecomputedCasters() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.casters)
}

// contractError marks a violation of the cast contract: the input document
// was not actually valid under the source schema.
func contractError(path, format string, args ...any) error {
	return &schema.ValidationError{
		Path:   path,
		Reason: "cast contract violated (document not valid under source schema): " + fmt.Sprintf(format, args...),
	}
}
