// Package cast implements the paper's core contribution: schema cast
// validation of XML documents (EDBT'04 §3.2), schema cast validation with
// modifications (§3.3), and the DTD label-index optimization (§3.4).
//
// An Engine preprocesses a (source, target) schema pair — computing the
// R_sub/R_dis relations and the per-type-pair immediate decision automata
// for content models — and then validates documents known to conform to the
// source schema against the target schema, skipping subsumed subtrees and
// rejecting at the first disjoint pair.
package cast

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/castmap"
	"repro/internal/schema"
	"repro/internal/strcast"
	"repro/internal/subsume"
)

// Options tune the engine; the zero value is the paper's full algorithm.
type Options struct {
	// DisableContentIDA turns off the §4 immediate decision automata for
	// content models; children label strings are then scanned fully with
	// the target DFA, which is what the paper's modified-Xerces prototype
	// did. Kept as an ablation switch.
	DisableContentIDA bool
	// DisableRelations turns off the R_sub/R_dis consultation, reducing
	// the engine to a full top-down revalidation (another ablation).
	DisableRelations bool
}

// Engine validates documents valid under Src against Dst.
// After New, an Engine is safe for concurrent use: every field is immutable
// and caster lookups go through a lock-free castmap.Table, so concurrent
// validations on one shared Engine never contend on a mutex.
type Engine struct {
	Src, Dst *schema.Schema
	Rel      *subsume.Relations
	opts     Options

	full *baseline.Validator // target-side full validation (inserted subtrees)

	casters *castmap.Table
}

// New preprocesses the schema pair: both schemas must be compiled and share
// one alphabet. Content-model cast automata for all type pairs reachable
// from the shared roots are built eagerly; other pairs are built on demand
// through the table's copy-on-write overflow.
func New(src, dst *schema.Schema, opts Options) (*Engine, error) {
	rel, err := subsume.Compute(src, dst)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		Src:     src,
		Dst:     dst,
		Rel:     rel,
		opts:    opts,
		full:    baseline.New(dst),
		casters: castmap.New(src, dst, rel, !opts.DisableContentIDA),
	}
	return e, nil
}

// Restore assembles an engine from precomputed parts — relations and a
// caster table deserialized from a stored artifact — without re-running
// subsume.Compute or rebuilding any content-model automata. The relations
// must be over exactly this schema pair.
func Restore(src, dst *schema.Schema, rel *subsume.Relations, table *castmap.Table, opts Options) (*Engine, error) {
	if rel == nil || table == nil {
		return nil, fmt.Errorf("cast: Restore: nil relations or caster table")
	}
	if rel.Src != src || rel.Dst != dst {
		return nil, fmt.Errorf("cast: Restore: relations are not over this schema pair")
	}
	return &Engine{
		Src:     src,
		Dst:     dst,
		Rel:     rel,
		opts:    opts,
		full:    baseline.New(dst),
		casters: table,
	}, nil
}

// MustNew is New that panics on error; for tests and examples.
func MustNew(src, dst *schema.Schema, opts Options) *Engine {
	e, err := New(src, dst, opts)
	if err != nil {
		panic(err)
	}
	return e
}

// caster returns (building and publishing if needed) the string caster for
// a complex type pair. Lock-free; see castmap.Table.
func (e *Engine) caster(τ, τp schema.TypeID) *strcast.Caster {
	return e.casters.Get(τ, τp)
}

// PrecomputedCasters reports how many content-model cast automata the
// engine holds; diagnostics for the preprocessing benchmarks.
func (e *Engine) PrecomputedCasters() int {
	return e.casters.Len()
}

// CasterSizes reports the engine's content-model caster footprint: caster
// count and total c_immed IDA states. Feeds pair reports and cache cost
// estimates in the serving layer.
func (e *Engine) CasterSizes() (casters, idaStates int) {
	return e.casters.Sizes()
}

// Table exposes the engine's caster table so a streaming caster for the
// same schema pair can share it instead of building its own (one set of
// IDAs per pair, however many validation modes consult them).
func (e *Engine) Table() *castmap.Table {
	return e.casters
}

// contractError marks a violation of the cast contract: the input document
// was not actually valid under the source schema.
func contractError(path, format string, args ...any) error {
	return &schema.ValidationError{
		Path:   path,
		Reason: "cast contract violated (document not valid under source schema): " + fmt.Sprintf(format, args...),
	}
}
