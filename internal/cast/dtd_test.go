package cast

import (
	"math/rand"
	"testing"

	"repro/internal/baseline"
	"repro/internal/wgen"
	"repro/internal/xmltree"
)

func TestBuildLabelIndex(t *testing.T) {
	doc := wgen.PODocument(wgen.PODocOptions{Items: 3, IncludeBillTo: true, Seed: 1})
	idx := BuildLabelIndex(doc)
	if len(idx["item"]) != 3 {
		t.Fatalf("item instances = %d, want 3", len(idx["item"]))
	}
	if len(idx["purchaseOrder"]) != 1 || len(idx["quantity"]) != 3 {
		t.Fatal("index counts wrong")
	}
	// Tombstoned nodes are excluded.
	doc.Children[2].Children[0].Delta = xmltree.DeltaDelete
	idx2 := BuildLabelIndex(doc)
	if len(idx2["item"]) != 2 {
		t.Fatalf("tombstoned item still indexed: %d", len(idx2["item"]))
	}
}

func TestValidateDTDExperiment1(t *testing.T) {
	_, e1, _ := paperEngines(t, Options{})
	doc := wgen.PODocument(wgen.PODocOptions{Items: 50, IncludeBillTo: true, Seed: 2})
	idx := BuildLabelIndex(doc)
	st, err := e1.ValidateDTD(doc, idx)
	if err != nil {
		t.Fatalf("DTD cast should pass: %v (%s)", err, st)
	}
	// Only purchaseOrder instances need checking (every other label's type
	// pair is subsumed): constant work.
	if st.ElementsVisited > 3 {
		t.Fatalf("expected ~2 visited elements, got %s", st)
	}
	bad := wgen.PODocument(wgen.PODocOptions{Items: 50, IncludeBillTo: false, Seed: 2})
	if _, err := e1.ValidateDTD(bad, BuildLabelIndex(bad)); err == nil {
		t.Fatal("missing billTo must fail in DTD mode too")
	}
}

func TestValidateDTDExperiment2(t *testing.T) {
	_, _, e2 := paperEngines(t, Options{})
	doc := wgen.PODocument(wgen.PODocOptions{Items: 50, IncludeBillTo: true, MaxQuantity: 99, Seed: 3})
	idx := BuildLabelIndex(doc)
	st, err := e2.ValidateDTD(doc, idx)
	if err != nil {
		t.Fatalf("DTD cast should pass: %v", err)
	}
	// Exactly the quantity instances (plus the root and its text) do work.
	if st.TextNodesVisited != 50 {
		t.Fatalf("expected 50 quantity values read, got %s", st)
	}
	// An out-of-range quantity fails.
	doc.Children[2].Children[10].Children[1].Children[0].Text = "120"
	if _, err := e2.ValidateDTD(doc, BuildLabelIndex(doc)); err == nil {
		t.Fatal("quantity 120 must fail")
	}
}

func TestValidateDTDAgreesWithTopDown(t *testing.T) {
	ps := wgen.NewPaperSchemas()
	rng := rand.New(rand.NewSource(55))
	engines := []*Engine{
		MustNew(ps.Source1, ps.Target, Options{}),
		MustNew(ps.Target, ps.Source1, Options{}),
		MustNew(ps.Source2, ps.Target, Options{}),
		MustNew(ps.Target, ps.Source2, Options{}),
	}
	for _, eng := range engines {
		gen := wgen.NewGenerator(eng.Src, rng)
		base := baseline.New(eng.Dst)
		for i := 0; i < 40; i++ {
			doc, ok := gen.Document()
			if !ok {
				t.Fatal("generation failed")
			}
			_, wantErr := base.Validate(doc)
			_, gotErr := eng.ValidateDTD(doc, BuildLabelIndex(doc))
			if (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("DTD mode disagrees: dtd=%v full=%v\n%s", gotErr, wantErr, doc)
			}
		}
	}
}

func TestValidateDTDErrorPaths(t *testing.T) {
	ps := wgen.NewPaperSchemas()
	e := MustNew(ps.Source1, ps.Target, Options{})
	if _, err := e.ValidateDTD(xmltree.NewText("x"), LabelIndex{}); err == nil {
		t.Fatal("text root must fail")
	}
	if _, err := e.ValidateDTD(xmltree.NewElement("nope"), LabelIndex{}); err == nil {
		t.Fatal("unknown root must fail")
	}
}
