package cast

import (
	"math/rand"
	"testing"

	"repro/internal/baseline"
	"repro/internal/fa"
	"repro/internal/update"
	"repro/internal/wgen"
	"repro/internal/xmltree"
)

// Differential fuzzing over random schema pairs: generate a random source
// schema, derive the target by a few local mutations (the schema-evolution
// setting the paper targets), then check on random source-valid documents
// that every cast path agrees with full validation — with and without
// random edits.
func TestFuzzRandomSchemaPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	labels := []string{"elA", "elB", "elC", "elD", "elE", "elF", "elG", "elH"}
	rounds := 30
	if testing.Short() {
		rounds = 8
	}
	for round := 0; round < rounds; round++ {
		alpha := fa.NewAlphabet()
		src := wgen.RandomSchema(rng, alpha, wgen.RandomSchemaOptions{Labels: labels})
		dst := src
		for k := 0; k <= rng.Intn(3); k++ {
			dst = wgen.MutateSchema(rng, dst, labels)
		}
		gen := wgen.NewGenerator(src, rng)
		base := baseline.New(dst)
		engines := []*Engine{
			MustNew(src, dst, Options{}),
			MustNew(src, dst, Options{DisableContentIDA: true}),
		}
		dtdOK := src.IsDTD() && dst.IsDTD()
		for i := 0; i < 25; i++ {
			doc, ok := gen.Document()
			if !ok {
				break // all roots non-productive for this random schema
			}
			if err := src.Validate(doc); err != nil {
				t.Fatalf("round %d: generator emitted a source-invalid doc: %v", round, err)
			}
			baseStats, wantErr := base.Validate(doc)
			for ei, eng := range engines {
				castStats, gotErr := eng.Validate(doc)
				if (gotErr == nil) != (wantErr == nil) {
					t.Fatalf("round %d engine %d: cast=%v full=%v\nsrc:\n%s\ndst:\n%s\ndoc: %s",
						round, ei, gotErr, wantErr, src, dst, doc)
				}
				// Proposition-4 flavour: on accepted documents the cast
				// never examines more nodes than a full validation.
				if gotErr == nil && castStats.NodesVisited() > baseStats.NodesVisited() {
					t.Fatalf("round %d engine %d: cast visited %d nodes, full %d",
						round, ei, castStats.NodesVisited(), baseStats.NodesVisited())
				}
			}
			if dtdOK {
				idx := BuildLabelIndex(doc)
				if _, gotErr := engines[0].ValidateDTD(doc, idx); (gotErr == nil) != (wantErr == nil) {
					t.Fatalf("round %d: DTD path disagrees: %v vs %v\ndoc: %s", round, wantErr, wantErr, doc)
				}
			}

			// Now with random edits.
			tk := update.NewTracker(doc)
			fuzzEdits(rng, tk, doc, labels, 1+rng.Intn(3))
			trie := tk.Finalize()
			_, wantErr = base.Validate(doc)
			for ei, eng := range engines {
				if _, gotErr := eng.ValidateModified(doc, trie); (gotErr == nil) != (wantErr == nil) {
					t.Fatalf("round %d engine %d (modified): cast=%v full=%v\nsrc:\n%s\ndst:\n%s\ndoc: %s",
						round, ei, gotErr, wantErr, src, dst, doc)
				}
			}
		}
	}
}

func fuzzEdits(rng *rand.Rand, tk *update.Tracker, doc *xmltree.Node, labels []string, n int) {
	var all []*xmltree.Node
	doc.Walk(func(nd *xmltree.Node) bool {
		all = append(all, nd)
		return true
	})
	for done, guard := 0, 0; done < n && guard < 100; guard++ {
		nd := all[rng.Intn(len(all))]
		var err error
		switch rng.Intn(4) {
		case 0:
			if nd.IsText() {
				err = tk.SetText(nd, []string{"1", "50", "red", "true", "zzz"}[rng.Intn(5)])
			} else {
				err = tk.Relabel(nd, labels[rng.Intn(len(labels))])
			}
		case 1:
			if nd.IsText() {
				continue
			}
			child := xmltree.NewElement(labels[rng.Intn(len(labels))])
			if rng.Intn(2) == 0 {
				child.AppendChild(xmltree.NewText("5"))
			}
			err = tk.AppendChild(nd, child)
		case 2:
			if nd.Parent == nil {
				continue
			}
			err = tk.InsertBefore(nd, xmltree.NewElement(labels[rng.Intn(len(labels))]))
		default:
			if nd.Parent == nil {
				continue
			}
			err = tk.Delete(nd)
		}
		if err == nil {
			done++
		}
	}
}

// The relations computed for random pairs must stay sound on sampled trees
// (a broader Theorem 1/2 check than the paper-schema one in subsume).
func TestFuzzRelationsSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(4040))
	labels := []string{"elA", "elB", "elC", "elD", "elE"}
	rounds := 15
	if testing.Short() {
		rounds = 5
	}
	for round := 0; round < rounds; round++ {
		alpha := fa.NewAlphabet()
		src := wgen.RandomSchema(rng, alpha, wgen.RandomSchemaOptions{Labels: labels})
		dst := wgen.MutateSchema(rng, src, labels)
		eng := MustNew(src, dst, Options{})
		gen := wgen.NewGenerator(src, rng)
		for _, a := range src.Types {
			for _, b := range dst.Types {
				for i := 0; i < 4; i++ {
					tree, ok := gen.Tree("probe", a.ID)
					if !ok {
						continue
					}
					validDst := dst.ValidateType(b.ID, tree) == nil
					if eng.Rel.Subsumed(a.ID, b.ID) && !validDst {
						t.Fatalf("round %d: unsound subsumption %s ≤ %s\ntree: %s",
							round, a.Name, b.Name, tree)
					}
					if eng.Rel.Disjoint(a.ID, b.ID) && validDst {
						t.Fatalf("round %d: unsound disjointness %s ⊘ %s\ntree: %s",
							round, a.Name, b.Name, tree)
					}
				}
			}
		}
	}
}
