package cast

import (
	"testing"

	"repro/internal/telemetry"
	"repro/internal/wgen"
)

// TestValidateTracePaperPair replays the paper's Fig. 1a → Fig. 2 cast in
// trace mode and pins the exact decision sequence: one descend at the root,
// then one R_sub skip per child subtree (shipTo, billTo, items). The trace
// counts must agree with the Stats counters — that is the contract xmlcast
// -explain relies on.
func TestValidateTracePaperPair(t *testing.T) {
	_, e1, _ := paperEngines(t, Options{})
	doc := wgen.PODocument(wgen.PODocOptions{Items: 50, IncludeBillTo: true, Seed: 11})

	tr := &telemetry.Trace{}
	st, err := e1.ValidateTrace(doc, tr)
	if err != nil {
		t.Fatalf("valid cast failed: %v", err)
	}
	if got := tr.Count(telemetry.ActionSkip); int64(got) != st.SubsumedSkips {
		t.Fatalf("trace skips (%d) must equal Stats.SubsumedSkips (%d)", got, st.SubsumedSkips)
	}
	if got := tr.Count(telemetry.ActionReject); int64(got) != st.DisjointRejects {
		t.Fatalf("trace rejects (%d) must equal Stats.DisjointRejects (%d)", got, st.DisjointRejects)
	}
	if st.SubsumedSkips != 3 {
		t.Fatalf("expected 3 subsumption skips (shipTo, billTo, items), got %d\n%s", st.SubsumedSkips, st)
	}

	events := tr.Events()
	if len(events) == 0 {
		t.Fatal("trace recorded nothing")
	}
	// First decision: descend at the root.
	if events[0].Action != telemetry.ActionDescend || events[0].Path != "/purchaseOrder" {
		t.Fatalf("first event should descend at /purchaseOrder, got %+v", events[0])
	}
	if events[0].Dewey != "ε" || events[0].Depth != 0 {
		t.Fatalf("root Dewey/depth wrong: %+v", events[0])
	}
	// The three skips carry the expected paths, Dewey numbers and depth 1.
	var skipPaths, skipDeweys []string
	for _, ev := range events {
		if ev.Action == telemetry.ActionSkip {
			skipPaths = append(skipPaths, ev.Path)
			skipDeweys = append(skipDeweys, ev.Dewey)
			if ev.Depth != 1 {
				t.Fatalf("skip at wrong depth: %+v", ev)
			}
			if ev.SrcType == "" || ev.DstType == "" {
				t.Fatalf("skip event missing (τ, τ') names: %+v", ev)
			}
		}
	}
	wantPaths := []string{"/purchaseOrder/shipTo", "/purchaseOrder/billTo", "/purchaseOrder/items"}
	wantDeweys := []string{"0", "1", "2"}
	for i := range wantPaths {
		if skipPaths[i] != wantPaths[i] || skipDeweys[i] != wantDeweys[i] {
			t.Fatalf("skip %d = (%s, %s), want (%s, %s)", i, skipPaths[i], skipDeweys[i], wantPaths[i], wantDeweys[i])
		}
	}
	if st.MaxDepth != 1 {
		t.Fatalf("MaxDepth should be 1 (skips stop the descent), got %d", st.MaxDepth)
	}
}

// TestValidateTraceRejection traces the failing cast (no billTo): the root's
// content model rejects, no subtree is ever entered, and no disjoint reject
// fires (the failure is structural, not type-level).
func TestValidateTraceRejection(t *testing.T) {
	_, e1, _ := paperEngines(t, Options{})
	doc := wgen.PODocument(wgen.PODocOptions{Items: 50, IncludeBillTo: false, Seed: 11})

	tr := &telemetry.Trace{}
	st, err := e1.ValidateTrace(doc, tr)
	if err == nil {
		t.Fatal("cast without billTo must fail")
	}
	if st.DisjointRejects != 0 || tr.Count(telemetry.ActionReject) != 0 {
		t.Fatal("failure should come from the content model, not R_dis")
	}
	events := tr.Events()
	last := events[len(events)-1]
	if last.Action != telemetry.ActionContent || last.Path != "/purchaseOrder" {
		t.Fatalf("last event should be the root content rejection, got %+v", last)
	}
}

// TestTraceMatchesUntracedStats guards the zero-cost claim the other way
// round: tracing must not change what work is counted.
func TestTraceMatchesUntracedStats(t *testing.T) {
	_, _, e2 := paperEngines(t, Options{})
	doc := wgen.PODocument(wgen.PODocOptions{Items: 30, IncludeBillTo: true, MaxQuantity: 99, Seed: 5})
	plain, err := e2.Validate(doc)
	if err != nil {
		t.Fatal(err)
	}
	traced, err := e2.ValidateTrace(doc, &telemetry.Trace{})
	if err != nil {
		t.Fatal(err)
	}
	if plain != traced {
		t.Fatalf("tracing changed the stats:\nplain  %+v\ntraced %+v", plain, traced)
	}
}
