package cast

import (
	"fmt"

	"repro/internal/fa"
	"repro/internal/schema"
	"repro/internal/update"
	"repro/internal/xmltree"
)

// ValidateModified performs schema cast validation with modifications
// (§3.3). The tree must carry the Δ-labels produced by an update.Tracker
// and trie must be the tracker's finalized modification trie. The original
// (pre-edit) document is assumed valid under the source schema; the verdict
// concerns the post-edit document against the target schema.
//
// The traversal navigates the trie in parallel with the tree:
//
//  1. Unmodified subtree → plain schema cast (§3.2), skipping/rejecting via
//     R_sub/R_dis.
//  2. Deleted subtree (Δ^a_ε) → skipped entirely.
//  3. Inserted subtree (Δ^ε_b) → full validation against the target (no
//     source knowledge exists for it).
//  4. Otherwise the node's content string may have changed: it is checked
//     against regexp_τ' using the §4.3 string cast with modifications (the
//     unmodified prefix/suffix of the child label string re-synchronizes
//     into c_immed), and children are revalidated recursively under
//     types_τ(Proj_old) and types_τ'(Proj_new).
func (e *Engine) ValidateModified(doc *xmltree.Node, trie *update.Trie) (Stats, error) {
	var st Stats
	if doc.IsText() {
		return st, &schema.ValidationError{Path: "/", Reason: "root must be an element"}
	}
	if doc.Delta == xmltree.DeltaDelete {
		return st, &schema.ValidationError{Path: "/", Reason: "root was deleted"}
	}
	st.ElementsVisited++
	newLabel, _, _ := doc.ProjNew()
	τp := e.Dst.RootType(newLabel)
	if τp == schema.NoType {
		return st, &schema.ValidationError{
			Path:   schema.NodePath(doc),
			Reason: fmt.Sprintf("label %q is not a permitted root of the target schema", newLabel),
		}
	}
	if doc.Delta == xmltree.DeltaInsert {
		bs, err := fullValidateSubtree(e, τp, doc)
		st.addBaseline(bs)
		return st, err
	}
	oldLabel, _, _ := doc.ProjOld()
	τ := e.Src.RootType(oldLabel)
	if τ == schema.NoType {
		return st, contractError(schema.NodePath(doc), "original label %q is not a source root", oldLabel)
	}
	err := e.castValidateMod(τ, τp, doc, trie, &st, 0)
	return st, err
}

func (e *Engine) castValidateMod(τ, τp schema.TypeID, node *xmltree.Node, trie *update.Trie, st *Stats, depth int) error {
	st.noteDepth(depth)
	// Case 1: untouched subtree — the no-modifications cast applies.
	if !trie.Modified() && node.Delta == xmltree.DeltaNone {
		return e.castValidate(τ, τp, node, st, depth, nil, nil)
	}
	tD := e.Dst.TypeOf(τp)
	if tD.Simple {
		// Content (text) may have changed; recheck the value.
		return e.checkSimple(tD, node, st)
	}
	tS := e.Src.TypeOf(τ)

	// Case 4: check the (possibly edited) content string against the
	// target model, then recurse with the Proj_old/Proj_new type pairs.
	if _, err := e.checkContentModified(tS, tD, node, st); err != nil {
		return err
	}
	for i, c := range node.Children {
		label, isText, live := c.ProjNew()
		if !live || isText {
			continue // deleted, or text (already vetted by content check)
		}
		sym := e.Src.Alpha.Lookup(label)
		ν, ok := tD.Child[sym]
		if !ok {
			return &schema.ValidationError{
				Path:   schema.NodePath(c),
				Reason: fmt.Sprintf("label %q has no child type under target %q", label, tD.Name),
			}
		}
		st.ElementsVisited++
		if c.Delta == xmltree.DeltaInsert {
			// Case 3: inserted subtree — full validation, no source
			// knowledge.
			bs, err := fullValidateSubtree(e, ν, c)
			st.addBaseline(bs)
			if err != nil {
				return err
			}
			continue
		}
		if tS.Simple {
			// The source type tells us nothing about element children (it
			// had none); validate explicitly.
			bs, err := fullValidateSubtree(e, ν, c)
			st.addBaseline(bs)
			if err != nil {
				return err
			}
			continue
		}
		oldLabel, _, hadOld := c.ProjOld()
		if !hadOld {
			return contractError(schema.NodePath(c), "non-inserted node lacks an original label")
		}
		ω, ok := tS.Child[e.Src.Alpha.Lookup(oldLabel)]
		if !ok {
			return contractError(schema.NodePath(c), "original label %q has no source child type under %q", oldLabel, tS.Name)
		}
		if err := e.castValidateMod(ω, ν, c, trie.Child(i), st, depth+1); err != nil {
			return err
		}
	}
	return nil
}

// checkContentModified verifies Proj_new(t_1)…Proj_new(t_k) ∈ L(regexp_τ')
// using the §4.3 string cast: the unmodified prefix and suffix of the child
// label string let the scan re-synchronize into c_immed instead of running
// the whole string through the target DFA. Falls back to a plain
// b_immed scan when the ablation switch disables content IDAs.
func (e *Engine) checkContentModified(tS, tD *schema.Type, node *xmltree.Node, st *Stats) ([]*xmltree.Node, error) {
	var (
		oldWord, newWord []fa.Symbol
		kids             []*xmltree.Node
		prefix           = -1 // computed below: leading unmodified run
	)
	// Build Proj_old / Proj_new label strings. A child counts toward the
	// unmodified prefix/suffix only when it is untouched *as a position*:
	// Delta == None. (Descendant edits do not affect the label string.)
	unmodifiedRun := 0 // trailing run of untouched children in newWord
	for _, c := range node.Children {
		if c.IsText() {
			if c.Delta != xmltree.DeltaDelete {
				st.TextNodesVisited++
				return nil, &schema.ValidationError{
					Path:   schema.NodePath(node),
					Reason: fmt.Sprintf("target type %q has element content but node has text content", tD.Name),
				}
			}
			// A deleted text child contributes χ to Proj_old; the old
			// word is only used for re-synchronization on the source
			// automaton, where χ never appears in element content —
			// its presence would make the original invalid, so treat it
			// as contract breakage.
			return nil, contractError(schema.NodePath(node), "text child in element content of source type %q", tS.Name)
		}
		oldLabel, _, hadOld := c.ProjOld()
		if hadOld {
			sym := e.Src.Alpha.Lookup(oldLabel)
			if sym == fa.NoSymbol {
				return nil, contractError(schema.NodePath(c), "original label %q unknown", oldLabel)
			}
			oldWord = append(oldWord, sym)
		}
		newLabel, _, live := c.ProjNew()
		if live {
			sym := e.Src.Alpha.Lookup(newLabel)
			if sym == fa.NoSymbol {
				return nil, &schema.ValidationError{
					Path:   schema.NodePath(c),
					Reason: fmt.Sprintf("label %q unknown to the target schema", newLabel),
				}
			}
			newWord = append(newWord, sym)
			kids = append(kids, c)
			if c.Delta == xmltree.DeltaNone {
				unmodifiedRun++
			} else {
				if prefix < 0 {
					prefix = len(newWord) - 1
				}
				unmodifiedRun = 0
			}
		} else {
			// Deleted child: breaks both runs at this position.
			if prefix < 0 {
				prefix = len(newWord)
			}
			unmodifiedRun = 0
		}
	}
	if prefix < 0 {
		prefix = len(newWord) // no position-level edits at all
	}
	suffix := unmodifiedRun

	if e.opts.DisableContentIDA {
		// Plain scan of the new word with the target DFA.
		state := tD.DFA.Start()
		for _, sym := range newWord {
			state = tD.DFA.Step(state, sym)
			st.AutomatonSteps++
			if state == fa.Dead {
				return nil, e.contentError(tD, node)
			}
		}
		if !tD.DFA.IsAccept(state) {
			return nil, e.contentError(tD, node)
		}
		return kids, nil
	}

	caster := e.caster(tS.ID, tD.ID)
	res := caster.ValidateModified(oldWord, newWord, clampBound(prefix, oldWord, newWord), clampBound(suffix, oldWord, newWord))
	st.AutomatonSteps += int64(res.Scanned) + int64(res.StepsOnA)
	if res.Reversed {
		st.ReverseScans++
	}
	if !res.Accepted {
		return nil, e.contentError(tD, node)
	}
	return kids, nil
}

// clampBound keeps a prefix/suffix bound within ValidateModified's domain.
func clampBound(b int, oldW, newW []fa.Symbol) int {
	lim := len(oldW)
	if len(newW) < lim {
		lim = len(newW)
	}
	if b > lim {
		return lim
	}
	return b
}
