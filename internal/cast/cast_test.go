package cast

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/baseline"
	"repro/internal/schema"
	"repro/internal/wgen"
	"repro/internal/xmltree"
)

func paperEngines(t *testing.T, opts Options) (ps *wgen.PaperSchemas, exp1, exp2 *Engine) {
	t.Helper()
	ps = wgen.NewPaperSchemas()
	e1, err := New(ps.Source1, ps.Target, opts)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := New(ps.Source2, ps.Target, opts)
	if err != nil {
		t.Fatal(err)
	}
	return ps, e1, e2
}

func TestExperiment1Semantics(t *testing.T) {
	_, e1, _ := paperEngines(t, Options{})

	withBill := wgen.PODocument(wgen.PODocOptions{Items: 20, IncludeBillTo: true, Seed: 1})
	st, err := e1.Validate(withBill)
	if err != nil {
		t.Fatalf("document with billTo should cast-validate: %v\n%s", err, st)
	}
	withoutBill := wgen.PODocument(wgen.PODocOptions{Items: 20, IncludeBillTo: false, Seed: 1})
	if _, err := e1.Validate(withoutBill); err == nil {
		t.Fatal("document without billTo must fail against the target")
	}
}

// The headline Experiment-1 property: work is O(1) in document size —
// the engine only inspects the root's children, never the subtrees.
func TestExperiment1ConstantWork(t *testing.T) {
	_, e1, _ := paperEngines(t, Options{})
	var first Stats
	for i, n := range []int{2, 100, 1000} {
		doc := wgen.PODocument(wgen.PODocOptions{Items: n, IncludeBillTo: true, Seed: 7})
		st, err := e1.Validate(doc)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = st
			continue
		}
		if st.NodesVisited() != first.NodesVisited() || st.AutomatonSteps != first.AutomatonSteps {
			t.Fatalf("work should be constant in item count: %v vs %v", first, st)
		}
	}
	// And tiny: root + its three children at most.
	doc := wgen.PODocument(wgen.PODocOptions{Items: 1000, IncludeBillTo: true, Seed: 7})
	st, _ := e1.Validate(doc)
	if st.NodesVisited() > 4 {
		t.Fatalf("expected ≤4 nodes visited, got %s", st)
	}
	base := baseline.New(e1.Dst)
	bst, err := base.Validate(doc)
	if err != nil {
		t.Fatal(err)
	}
	if bst.NodesVisited() < 5000 {
		t.Fatalf("baseline should visit every node (~7k for this layout), got %d", bst.NodesVisited())
	}
}

func TestExperiment2Semantics(t *testing.T) {
	_, _, e2 := paperEngines(t, Options{})

	ok := wgen.PODocument(wgen.PODocOptions{Items: 50, IncludeBillTo: true, MaxQuantity: 99, Seed: 2})
	if _, err := e2.Validate(ok); err != nil {
		t.Fatalf("quantities < 100 should pass: %v", err)
	}
	// Force one quantity to 150: must fail.
	bad := wgen.PODocument(wgen.PODocOptions{Items: 50, IncludeBillTo: true, MaxQuantity: 99, Seed: 2})
	qty := bad.Children[2].Children[25].Children[1]
	if qty.Label != "quantity" {
		t.Fatal("navigation broken")
	}
	qty.Children[0].Text = "150"
	if _, err := e2.Validate(bad); err == nil {
		t.Fatal("quantity 150 must fail against maxExclusive=100")
	}
}

// Experiment-2 scaling: linear in items, but strictly fewer nodes than the
// baseline (the paper's Table 3: ~20% fewer).
func TestExperiment2NodeCounts(t *testing.T) {
	ps, _, e2 := paperEngines(t, Options{})
	base := baseline.New(ps.Target)
	var prevCast, prevBase int64
	for _, n := range []int{10, 100, 1000} {
		doc := wgen.PODocument(wgen.PODocOptions{Items: n, IncludeBillTo: true, MaxQuantity: 99, Seed: 3})
		cst, err := e2.Validate(doc)
		if err != nil {
			t.Fatal(err)
		}
		bst, err := base.Validate(doc)
		if err != nil {
			t.Fatal(err)
		}
		if cst.NodesVisited() >= bst.NodesVisited() {
			t.Fatalf("cast (%d) should visit fewer nodes than baseline (%d) at n=%d",
				cst.NodesVisited(), bst.NodesVisited(), n)
		}
		// Linearity: growth should be proportional to item growth.
		if prevCast > 0 {
			growthCast := float64(cst.NodesVisited()) / float64(prevCast)
			growthBase := float64(bst.NodesVisited()) / float64(prevBase)
			if growthCast < 5 || growthCast > 15 || growthBase < 5 || growthBase > 15 {
				t.Fatalf("both should grow ~10x per decade: cast %.1f, base %.1f",
					growthCast, growthBase)
			}
		}
		prevCast, prevBase = cst.NodesVisited(), bst.NodesVisited()
	}
}

// Differential oracle: on random documents (valid for the source), the cast
// verdict must equal the baseline full-validation verdict against the
// target, under every option combination.
func TestCastAgreesWithFullValidation(t *testing.T) {
	ps := wgen.NewPaperSchemas()
	pairs := [][2]*schema.Schema{
		{ps.Source1, ps.Target},
		{ps.Source2, ps.Target},
		{ps.Target, ps.Source1},
		{ps.Target, ps.Source2},
		{ps.Source1, ps.Source2},
	}
	optSets := []Options{
		{},
		{DisableContentIDA: true},
		{DisableRelations: true},
		{DisableContentIDA: true, DisableRelations: true},
	}
	rng := rand.New(rand.NewSource(77))
	for _, pair := range pairs {
		src, dst := pair[0], pair[1]
		gen := wgen.NewGenerator(src, rng)
		base := baseline.New(dst)
		for _, opts := range optSets {
			eng := MustNew(src, dst, opts)
			for i := 0; i < 30; i++ {
				doc, ok := gen.Document()
				if !ok {
					t.Fatal("generation failed")
				}
				_, wantErr := base.Validate(doc)
				_, gotErr := eng.Validate(doc)
				if (gotErr == nil) != (wantErr == nil) {
					t.Fatalf("opts %+v: cast=%v baseline=%v doc=%s",
						opts, gotErr, wantErr, doc)
				}
			}
		}
	}
}

func TestValidateRootHandling(t *testing.T) {
	_, e1, _ := paperEngines(t, Options{})
	if _, err := e1.Validate(xmltree.NewText("x")); err == nil {
		t.Fatal("text root must fail")
	}
	if _, err := e1.Validate(xmltree.NewElement("unknownRoot")); err == nil {
		t.Fatal("unknown root must fail")
	}
	// comment is a root in both schemas (string content).
	comment := xmltree.NewElement("comment", xmltree.NewText("hi"))
	if _, err := e1.Validate(comment); err != nil {
		t.Fatalf("comment root should validate: %v", err)
	}
}

func TestStatsCounters(t *testing.T) {
	_, e1, _ := paperEngines(t, Options{})
	doc := wgen.PODocument(wgen.PODocOptions{Items: 5, IncludeBillTo: true, Seed: 4})
	st, err := e1.Validate(doc)
	if err != nil {
		t.Fatal(err)
	}
	if st.SubsumedSkips == 0 {
		t.Fatal("expected subsumption skips (shipTo/billTo/items subtrees)")
	}
	if st.DisjointRejects != 0 {
		t.Fatal("no disjoint rejects expected on a valid cast")
	}
	if !strings.Contains(st.String(), "skips=") {
		t.Fatalf("Stats.String = %q", st.String())
	}
}

func TestPrecomputedCasters(t *testing.T) {
	_, e1, _ := paperEngines(t, Options{})
	if e1.PrecomputedCasters() == 0 {
		t.Fatal("expected eager caster precomputation")
	}
	// With content IDA disabled nothing is precomputed.
	ps := wgen.NewPaperSchemas()
	e := MustNew(ps.Source1, ps.Target, Options{DisableContentIDA: true})
	if e.PrecomputedCasters() != 0 {
		t.Fatal("no casters should be built when disabled")
	}
}

func TestNewRejectsMismatchedSchemas(t *testing.T) {
	a := wgen.NewPaperSchemas()
	b := wgen.NewPaperSchemas() // different alphabet instance
	if _, err := New(a.Source1, b.Target, Options{}); err == nil {
		t.Fatal("schemas with different alphabets must be rejected")
	}
}

func TestMustNewPanics(t *testing.T) {
	a := wgen.NewPaperSchemas()
	b := wgen.NewPaperSchemas()
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew should panic")
		}
	}()
	MustNew(a.Source1, b.Target, Options{})
}
