package cast

import (
	"fmt"

	"repro/internal/fa"
	"repro/internal/schema"
	"repro/internal/xmltree"
)

// LabelIndex gives direct access to all element instances of each label in
// a document — the indexing §3.4 presumes ("if one can access all instances
// of an element label directly"). Real systems get this from a DOM tag
// index or a path index; here it is built with one linear pass and then
// amortized across revalidations of the same document.
type LabelIndex map[string][]*xmltree.Node

// BuildLabelIndex indexes every element in the document by label.
func BuildLabelIndex(doc *xmltree.Node) LabelIndex {
	idx := LabelIndex{}
	doc.Walk(func(n *xmltree.Node) bool {
		if !n.IsText() && n.Delta != xmltree.DeltaDelete {
			idx[n.Label] = append(idx[n.Label], n)
		}
		return true
	})
	return idx
}

// ValidateDTD performs schema cast validation using the §3.4 DTD
// optimization: since a DTD assigns each label a unique type regardless of
// context, only instances of labels whose (source, target) type pair is
// neither subsumed nor disjoint need visiting, and only their immediate
// content requires checking. Both schemas must be DTD-shaped (IsDTD).
//
// The document is assumed valid under the source schema; idx must index it.
func (e *Engine) ValidateDTD(doc *xmltree.Node, idx LabelIndex) (Stats, error) {
	var st Stats
	if !e.Src.IsDTD() || !e.Dst.IsDTD() {
		return st, fmt.Errorf("cast: ValidateDTD requires DTD-shaped schemas")
	}
	if doc.IsText() {
		return st, &schema.ValidationError{Path: "/", Reason: "root must be an element"}
	}
	st.ElementsVisited++
	if e.Dst.RootType(doc.Label) == schema.NoType {
		return st, &schema.ValidationError{
			Path:   schema.NodePath(doc),
			Reason: fmt.Sprintf("label %q is not a permitted root of the target schema", doc.Label),
		}
	}

	for label, nodes := range idx {
		if len(nodes) == 0 {
			continue
		}
		τ := e.labelType(e.Src, label)
		τp := e.labelType(e.Dst, label)
		if τ == schema.NoType {
			return st, contractError("/", "label %q has no source type", label)
		}
		if τp == schema.NoType {
			return st, &schema.ValidationError{
				Path:   schema.NodePath(nodes[0]),
				Reason: fmt.Sprintf("label %q has no type in the target schema", label),
			}
		}
		if e.Rel.Subsumed(τ, τp) {
			st.SubsumedSkips++
			continue // every instance's subtree is target-valid
		}
		if e.Rel.Disjoint(τ, τp) {
			st.DisjointRejects++
			return st, &schema.ValidationError{
				Path: schema.NodePath(nodes[0]),
				Reason: fmt.Sprintf("source type %q of label %q is disjoint from target type %q",
					e.Src.TypeOf(τ).Name, label, e.Dst.TypeOf(τp).Name),
			}
		}
		// Neither: check the immediate content of every instance. Child
		// subtrees are covered by their own labels' buckets.
		tS, tD := e.Src.TypeOf(τ), e.Dst.TypeOf(τp)
		for _, n := range nodes {
			st.ElementsVisited++
			if tD.Simple {
				if err := e.checkSimple(tD, n, &st); err != nil {
					return st, err
				}
				continue
			}
			if tS.Simple {
				bs, err := fullValidateSubtree(e, τp, n)
				st.addBaseline(bs)
				if err != nil {
					return st, err
				}
				continue
			}
			if err := e.checkContent(tS, tD, n, &st); err != nil {
				return st, err
			}
		}
	}
	return st, nil
}

// labelType resolves the unique type a DTD-shaped schema assigns to a
// label, looking through the root map and every types_τ.
func (e *Engine) labelType(s *schema.Schema, label string) schema.TypeID {
	sym := s.Alpha.Lookup(label)
	if sym == fa.NoSymbol {
		return schema.NoType
	}
	if τ, ok := s.Roots[sym]; ok {
		return τ
	}
	for _, t := range s.Types {
		if t.Simple {
			continue
		}
		if τ, ok := t.Child[sym]; ok {
			return τ
		}
	}
	return schema.NoType
}
