// Package profiling is castd's continuous-profiling ring: it captures
// pprof CPU, heap and goroutine profiles on triggers — a periodic low-rate
// baseline plus anomaly triggers (a request slower than the latency
// threshold, heap growth beyond a budget between checks, a shed or a
// recovered panic) — and retains the gzipped protos in a bounded
// in-memory ring served by GET /debug/profiles.
//
// The point is after-the-fact diagnosis: by the time an operator sees a
// latency spike on a dashboard, the spike is over and `go tool pprof`
// against a live endpoint sees a healthy process. A trigger that fires
// *during* the anomaly captures the evidence while it exists.
//
// Capture discipline: the runtime allows one CPU profile at a time, so a
// CompareAndSwap guard drops overlapping CPU requests (counted, never
// queued — a queued profile would run after the anomaly it was meant to
// catch). Anomaly triggers share a cooldown so a minute of bad latency
// produces one profile, not one per request. Everything is stdlib
// (runtime/pprof); profiles written with debug=0 are already gzipped
// protobuf, stored as captured.
package profiling

import (
	"bytes"
	"fmt"
	"log/slog"
	"runtime/metrics"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"
)

// Kinds of profile the ring captures.
const (
	KindCPU       = "cpu"
	KindHeap      = "heap"
	KindGoroutine = "goroutine"
)

// Triggers recorded on captured profiles.
const (
	TriggerBaseline   = "baseline"
	TriggerLatency    = "latency"
	TriggerHeapGrowth = "heap-growth"
	TriggerShed       = "shed"
	TriggerPanic      = "panic"
)

// heapMetric is the live heap reading the growth watcher polls; unlike
// runtime.ReadMemStats it does not stop the world.
const heapMetric = "/memory/classes/heap/objects:bytes"

// Meta describes one retained profile without its bytes.
type Meta struct {
	ID      uint64    `json:"id"`
	Kind    string    `json:"kind"`
	Trigger string    `json:"trigger"`
	Taken   time.Time `json:"taken"`
	// DurationNS is the CPU profiling window; 0 for snapshot kinds.
	DurationNS int64 `json:"durationNs"`
	Bytes      int   `json:"bytes"`
}

// profile is one retained capture.
type profile struct {
	Meta
	data []byte
}

// Stats counts the profiler's lifetime decisions.
type Stats struct {
	// Captured counts profiles successfully taken and admitted to the ring.
	Captured uint64 `json:"captured"`
	// Dropped counts captures that never produced a retained profile: CPU
	// captures skipped because one was already running, captures suppressed
	// by the anomaly cooldown, failed writes, and ring evictions.
	Dropped uint64 `json:"dropped"`
}

// Options configure a Profiler. The zero value is usable: every trigger
// off, defaults for the ring bounds and CPU window.
type Options struct {
	// Capacity bounds the number of retained profiles; <= 0 means 32.
	Capacity int
	// MaxBytes bounds the summed size of retained profiles; <= 0 means 64 MiB.
	MaxBytes int64
	// CPUDuration is the CPU profiling window; <= 0 means 5s.
	CPUDuration time.Duration
	// BaselineInterval is the period of the low-rate baseline capture (one
	// CPU + heap + goroutine set per tick); <= 0 disables the baseline.
	BaselineInterval time.Duration
	// LatencyThreshold arms the latency trigger: an ObserveLatency call at
	// or above it captures a CPU profile. <= 0 disables the trigger.
	LatencyThreshold time.Duration
	// HeapGrowth arms the heap watcher: live heap growing by at least this
	// many bytes between two checks captures a heap profile. <= 0 disables.
	HeapGrowth int64
	// CheckInterval is the heap watcher cadence; <= 0 means 10s.
	CheckInterval time.Duration
	// Cooldown is the minimum gap between anomaly-triggered captures
	// (latency, heap growth, shed, panic — baseline is exempt); <= 0 means
	// one minute.
	Cooldown time.Duration
	// Logger, when non-nil, receives one record per capture and failure.
	Logger *slog.Logger
}

// Profiler owns the capture triggers and the bounded ring. All methods are
// safe on a nil receiver, so a daemon with profiling unconfigured pays nil
// checks only.
type Profiler struct {
	opts Options

	captured, dropped atomic.Uint64
	cpuRunning        atomic.Bool
	lastAnomaly       atomic.Int64 // unix nanos of the last anomaly capture

	mu     sync.Mutex
	ring   []*profile
	total  int64 // summed data bytes in ring
	nextID uint64

	startOnce, stopOnce sync.Once
	stop                chan struct{}
	done                chan struct{}
}

// New builds a profiler. Nothing runs until Start.
func New(opts Options) *Profiler {
	if opts.Capacity <= 0 {
		opts.Capacity = 32
	}
	if opts.MaxBytes <= 0 {
		opts.MaxBytes = 64 << 20
	}
	if opts.CPUDuration <= 0 {
		opts.CPUDuration = 5 * time.Second
	}
	if opts.CheckInterval <= 0 {
		opts.CheckInterval = 10 * time.Second
	}
	if opts.Cooldown <= 0 {
		opts.Cooldown = time.Minute
	}
	return &Profiler{
		opts: opts,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
}

// Start launches the baseline and heap-watcher loops (only those that are
// armed). Trigger methods work with or without Start.
func (p *Profiler) Start() {
	if p == nil {
		return
	}
	p.startOnce.Do(func() {
		go p.loop()
	})
}

// Stop terminates the background loops and waits for them. Idempotent and
// safe without Start.
func (p *Profiler) Stop() {
	if p == nil {
		return
	}
	p.stopOnce.Do(func() {
		close(p.stop)
		p.startOnce.Do(func() { close(p.done) }) // never started: unblock the wait
		<-p.done
	})
}

func (p *Profiler) loop() {
	defer close(p.done)
	var baseline, heapCheck <-chan time.Time
	if p.opts.BaselineInterval > 0 {
		t := time.NewTicker(p.opts.BaselineInterval)
		defer t.Stop()
		baseline = t.C
	}
	var prevHeap uint64
	var heapPrimed bool
	if p.opts.HeapGrowth > 0 {
		t := time.NewTicker(p.opts.CheckInterval)
		defer t.Stop()
		heapCheck = t.C
		prevHeap, heapPrimed = liveHeapBytes()
	}
	for {
		select {
		case <-p.stop:
			return
		case <-baseline:
			// The baseline set: a CPU window plus the two cheap snapshots.
			// Baselines skip the anomaly cooldown — they ARE the low rate.
			p.CaptureHeap(TriggerBaseline)
			p.CaptureGoroutine(TriggerBaseline)
			p.CaptureCPU(TriggerBaseline)
		case <-heapCheck:
			cur, ok := liveHeapBytes()
			if !ok {
				continue
			}
			if heapPrimed && int64(cur)-int64(prevHeap) >= p.opts.HeapGrowth {
				if p.admitAnomaly() {
					p.CaptureHeap(TriggerHeapGrowth)
					p.CaptureGoroutine(TriggerHeapGrowth)
				}
			}
			prevHeap, heapPrimed = cur, true
		}
	}
}

// liveHeapBytes reads the live heap size without stopping the world.
func liveHeapBytes() (uint64, bool) {
	s := []metrics.Sample{{Name: heapMetric}}
	metrics.Read(s)
	if s[0].Value.Kind() != metrics.KindUint64 {
		return 0, false
	}
	return s[0].Value.Uint64(), true
}

// admitAnomaly passes at most one anomaly capture per cooldown window; a
// denied trigger is counted dropped so a storm of slow requests is visible
// even though it produces one profile.
func (p *Profiler) admitAnomaly() bool {
	now := time.Now().UnixNano()
	for {
		last := p.lastAnomaly.Load()
		if now-last < int64(p.opts.Cooldown) {
			p.dropped.Add(1)
			return false
		}
		if p.lastAnomaly.CompareAndSwap(last, now) {
			return true
		}
	}
}

// ObserveLatency feeds one request's duration to the latency trigger: a
// request at or over the threshold captures a CPU profile of the next
// window (the anomaly that made THIS request slow is usually still in
// progress — a compile storm, a saturated scheduler) in a goroutine, so
// the serving path never blocks on profiling.
func (p *Profiler) ObserveLatency(d time.Duration) {
	if p == nil || p.opts.LatencyThreshold <= 0 || d < p.opts.LatencyThreshold {
		return
	}
	if !p.admitAnomaly() {
		return
	}
	go func() {
		p.CaptureGoroutine(TriggerLatency)
		p.CaptureCPU(TriggerLatency)
	}()
}

// Event reports a shed or panic: cheap snapshot captures under the same
// anomaly cooldown, asynchronously.
func (p *Profiler) Event(trigger string) {
	if p == nil {
		return
	}
	if !p.admitAnomaly() {
		return
	}
	go func() {
		p.CaptureGoroutine(trigger)
		p.CaptureHeap(trigger)
	}()
}

// CaptureCPU profiles CPU for the configured window and retains the
// result. Only one CPU profile may run at a time (a runtime restriction);
// overlapping calls are dropped, not queued.
func (p *Profiler) CaptureCPU(trigger string) error {
	if p == nil {
		return nil
	}
	if !p.cpuRunning.CompareAndSwap(false, true) {
		p.dropped.Add(1)
		return fmt.Errorf("profiling: a CPU profile is already running")
	}
	defer p.cpuRunning.Store(false)
	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		// Something else (the /debug/pprof handler, say) holds the runtime's
		// own single-profile slot.
		p.dropped.Add(1)
		p.logf("cpu profile start failed", trigger, err)
		return err
	}
	start := time.Now()
	select {
	case <-time.After(p.opts.CPUDuration):
	case <-p.stop:
		// Shutting down: finish the profile early rather than abandon it.
	}
	pprof.StopCPUProfile()
	p.retain(KindCPU, trigger, time.Since(start), buf.Bytes())
	return nil
}

// CaptureHeap snapshots the heap profile (gzipped proto, debug=0).
func (p *Profiler) CaptureHeap(trigger string) error { return p.snapshot("heap", KindHeap, trigger) }

// CaptureGoroutine snapshots every goroutine's stack.
func (p *Profiler) CaptureGoroutine(trigger string) error {
	return p.snapshot("goroutine", KindGoroutine, trigger)
}

func (p *Profiler) snapshot(lookup, kind, trigger string) error {
	if p == nil {
		return nil
	}
	prof := pprof.Lookup(lookup)
	if prof == nil {
		p.dropped.Add(1)
		return fmt.Errorf("profiling: no %q profile in this runtime", lookup)
	}
	var buf bytes.Buffer
	if err := prof.WriteTo(&buf, 0); err != nil {
		p.dropped.Add(1)
		p.logf(lookup+" profile write failed", trigger, err)
		return err
	}
	p.retain(kind, trigger, 0, buf.Bytes())
	return nil
}

// retain admits one capture to the ring, evicting oldest-first to respect
// both the count and byte bounds.
func (p *Profiler) retain(kind, trigger string, window time.Duration, data []byte) {
	p.mu.Lock()
	p.nextID++
	pr := &profile{
		Meta: Meta{
			ID:         p.nextID,
			Kind:       kind,
			Trigger:    trigger,
			Taken:      time.Now(),
			DurationNS: window.Nanoseconds(),
			Bytes:      len(data),
		},
		data: data,
	}
	p.ring = append(p.ring, pr)
	p.total += int64(len(data))
	for len(p.ring) > p.opts.Capacity || (p.total > p.opts.MaxBytes && len(p.ring) > 1) {
		p.total -= int64(len(p.ring[0].data))
		p.ring[0] = nil
		p.ring = p.ring[1:]
		p.dropped.Add(1)
	}
	p.mu.Unlock()
	p.captured.Add(1)
	if p.opts.Logger != nil {
		p.opts.Logger.Info("profiling: captured",
			"id", pr.ID, "kind", kind, "trigger", trigger, "bytes", len(data))
	}
}

func (p *Profiler) logf(msg, trigger string, err error) {
	if p.opts.Logger != nil {
		p.opts.Logger.Warn("profiling: "+msg, "trigger", trigger, "error", err.Error())
	}
}

// Profiles lists retained profile metadata, newest first. Nil-safe.
func (p *Profiler) Profiles() []Meta {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Meta, 0, len(p.ring))
	for i := len(p.ring) - 1; i >= 0; i-- {
		out = append(out, p.ring[i].Meta)
	}
	return out
}

// Profile returns one retained profile's metadata and bytes. Nil-safe.
func (p *Profiler) Profile(id uint64) (Meta, []byte, bool) {
	if p == nil {
		return Meta{}, nil, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, pr := range p.ring {
		if pr.ID == id {
			return pr.Meta, pr.data, true
		}
	}
	return Meta{}, nil, false
}

// Stats snapshots the capture counters. Nil-safe.
func (p *Profiler) Stats() Stats {
	if p == nil {
		return Stats{}
	}
	return Stats{Captured: p.captured.Load(), Dropped: p.dropped.Load()}
}
