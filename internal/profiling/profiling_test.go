package profiling

import (
	"bytes"
	"compress/gzip"
	"io"
	"testing"
	"time"
)

// newQuick returns a profiler with bounds small enough to exercise
// eviction and a CPU window short enough for tests.
func newQuick(opts Options) *Profiler {
	if opts.CPUDuration == 0 {
		opts.CPUDuration = 20 * time.Millisecond
	}
	if opts.Cooldown == 0 {
		opts.Cooldown = time.Nanosecond
	}
	return New(opts)
}

func TestSnapshotCapturesAreGzippedPprof(t *testing.T) {
	p := newQuick(Options{})
	defer p.Stop()
	if err := p.CaptureGoroutine(TriggerBaseline); err != nil {
		t.Fatal(err)
	}
	if err := p.CaptureHeap(TriggerBaseline); err != nil {
		t.Fatal(err)
	}
	metas := p.Profiles()
	if len(metas) != 2 {
		t.Fatalf("got %d profiles, want 2", len(metas))
	}
	// Newest first: heap then goroutine.
	if metas[0].Kind != KindHeap || metas[1].Kind != KindGoroutine {
		t.Fatalf("unexpected order: %s, %s", metas[0].Kind, metas[1].Kind)
	}
	for _, m := range metas {
		_, data, ok := p.Profile(m.ID)
		if !ok {
			t.Fatalf("profile %d not retrievable", m.ID)
		}
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("%s profile is not gzip: %v", m.Kind, err)
		}
		if raw, err := io.ReadAll(zr); err != nil || len(raw) == 0 {
			t.Fatalf("%s profile gunzip: %v (%d bytes)", m.Kind, err, len(raw))
		}
	}
	if st := p.Stats(); st.Captured != 2 || st.Dropped != 0 {
		t.Fatalf("stats = %+v, want 2 captured / 0 dropped", st)
	}
}

func TestCPUCaptureGuard(t *testing.T) {
	p := newQuick(Options{CPUDuration: 200 * time.Millisecond})
	defer p.Stop()
	started := make(chan struct{})
	errc := make(chan error, 1)
	go func() {
		close(started)
		errc <- p.CaptureCPU(TriggerBaseline)
	}()
	<-started
	// Wait until the first capture holds the guard, then collide with it.
	deadline := time.Now().Add(time.Second)
	for !p.cpuRunning.Load() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if !p.cpuRunning.Load() {
		t.Fatal("first CPU capture never started")
	}
	if err := p.CaptureCPU(TriggerLatency); err == nil {
		t.Fatal("overlapping CPU capture should be rejected")
	}
	if err := <-errc; err != nil {
		t.Fatalf("first CPU capture failed: %v", err)
	}
	st := p.Stats()
	if st.Captured != 1 || st.Dropped != 1 {
		t.Fatalf("stats = %+v, want 1 captured / 1 dropped", st)
	}
	if metas := p.Profiles(); len(metas) != 1 || metas[0].Kind != KindCPU || metas[0].DurationNS <= 0 {
		t.Fatalf("unexpected profiles: %+v", metas)
	}
}

func TestRingBounds(t *testing.T) {
	p := newQuick(Options{Capacity: 3})
	defer p.Stop()
	for i := 0; i < 5; i++ {
		if err := p.CaptureGoroutine(TriggerBaseline); err != nil {
			t.Fatal(err)
		}
	}
	metas := p.Profiles()
	if len(metas) != 3 {
		t.Fatalf("ring holds %d, want 3", len(metas))
	}
	// Oldest evicted: the three newest ids survive.
	if metas[0].ID != 5 || metas[2].ID != 3 {
		t.Fatalf("wrong survivors: %+v", metas)
	}
	if _, _, ok := p.Profile(1); ok {
		t.Fatal("evicted profile still retrievable")
	}
	st := p.Stats()
	if st.Captured != 5 || st.Dropped != 2 {
		t.Fatalf("stats = %+v, want 5 captured / 2 dropped", st)
	}
}

func TestRingByteBound(t *testing.T) {
	p := newQuick(Options{Capacity: 100, MaxBytes: 1})
	defer p.Stop()
	p.CaptureGoroutine(TriggerBaseline)
	p.CaptureGoroutine(TriggerBaseline)
	// Over the byte budget the ring still keeps the newest capture.
	if metas := p.Profiles(); len(metas) != 1 || metas[0].ID != 2 {
		t.Fatalf("byte bound kept %+v, want only id 2", metas)
	}
}

func TestLatencyTrigger(t *testing.T) {
	p := newQuick(Options{LatencyThreshold: 50 * time.Millisecond, CPUDuration: 10 * time.Millisecond})
	defer p.Stop()
	p.ObserveLatency(10 * time.Millisecond) // under threshold: ignored
	if got := p.Profiles(); len(got) != 0 {
		t.Fatalf("under-threshold latency captured %d profiles", len(got))
	}
	p.ObserveLatency(60 * time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if len(p.Profiles()) >= 2 { // goroutine snapshot + CPU window
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	metas := p.Profiles()
	if len(metas) < 2 {
		t.Fatalf("latency trigger captured %d profiles, want >= 2", len(metas))
	}
	for _, m := range metas {
		if m.Trigger != TriggerLatency {
			t.Fatalf("wrong trigger on %+v", m)
		}
	}
}

func TestAnomalyCooldown(t *testing.T) {
	p := New(Options{LatencyThreshold: time.Nanosecond, Cooldown: time.Hour,
		CPUDuration: 10 * time.Millisecond})
	defer p.Stop()
	p.ObserveLatency(time.Second)
	p.ObserveLatency(time.Second) // within cooldown: dropped
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && len(p.Profiles()) < 2 {
		time.Sleep(5 * time.Millisecond)
	}
	if st := p.Stats(); st.Dropped == 0 {
		t.Fatalf("cooldown suppression not counted: %+v", st)
	}
	if got := len(p.Profiles()); got != 2 {
		t.Fatalf("cooldown let %d profiles through, want the first trigger's 2", got)
	}
}

func TestBaselineLoop(t *testing.T) {
	p := newQuick(Options{BaselineInterval: 10 * time.Millisecond, CPUDuration: time.Millisecond})
	p.Start()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && p.Stats().Captured < 3 {
		time.Sleep(5 * time.Millisecond)
	}
	p.Stop()
	p.Stop() // idempotent
	if st := p.Stats(); st.Captured < 3 {
		t.Fatalf("baseline loop captured %d in 2s at 10ms interval", st.Captured)
	}
	for _, m := range p.Profiles() {
		if m.Trigger != TriggerBaseline {
			t.Fatalf("unexpected trigger %+v", m)
		}
	}
}

func TestHeapGrowthTrigger(t *testing.T) {
	p := newQuick(Options{HeapGrowth: 1 << 20, CheckInterval: 5 * time.Millisecond})
	p.Start()
	defer p.Stop()
	// Grow the live heap well past the 1 MiB budget and keep it reachable.
	var sink [][]byte
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && p.Stats().Captured == 0 {
		sink = append(sink, make([]byte, 1<<20))
		time.Sleep(5 * time.Millisecond)
	}
	if p.Stats().Captured == 0 {
		t.Fatal("heap growth trigger never fired")
	}
	_ = sink
	found := false
	for _, m := range p.Profiles() {
		if m.Trigger == TriggerHeapGrowth {
			found = true
		}
	}
	if !found {
		t.Fatalf("no heap-growth profile in %+v", p.Profiles())
	}
}

func TestNilProfiler(t *testing.T) {
	var p *Profiler
	p.Start()
	p.ObserveLatency(time.Hour)
	p.Event(TriggerShed)
	if err := p.CaptureCPU(TriggerBaseline); err != nil {
		t.Fatal(err)
	}
	if got := p.Profiles(); got != nil {
		t.Fatalf("nil profiler has profiles: %v", got)
	}
	if _, _, ok := p.Profile(1); ok {
		t.Fatal("nil profiler resolved a profile")
	}
	if st := p.Stats(); st != (Stats{}) {
		t.Fatalf("nil profiler stats: %+v", st)
	}
	p.Stop()
}
