// Package xsd loads W3C XML Schema documents into abstract XML schemas
// (EDBT'04 §3). The supported subset is the structural core the paper's
// formalism models:
//
//   - global and local element declarations, by name or ref
//   - named and anonymous complexType with sequence / choice / all groups,
//     arbitrarily nested, with minOccurs/maxOccurs (including "unbounded")
//   - named and anonymous simpleType restrictions over the common primitive
//     types, with the facets minInclusive/maxInclusive/minExclusive/
//     maxExclusive/minLength/maxLength/length/enumeration, and xs:list
//   - built-in type references (xsd:string, xsd:decimal, xsd:date, …)
//   - complexContent derivation: extension (base content followed by the
//     extension particle, bindings inherited) and restriction (re-declared
//     content); simpleContent derivation (maps to the base simple type,
//     attributes skipped)
//   - named top-level model groups (xs:group) referenced from particles
//   - identity constraints (xs:unique / xs:key / xs:keyref) with the XSD
//     restricted-XPath selector/field subset, surfaced on Schema.Ident
//
// Outside the subset (attributes, substitution groups, union types, mixed
// content, wildcards, imports) the loader fails with a descriptive error
// rather than silently mis-modelling the schema; the paper leaves the same
// features out of its formalism.
package xsd

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/fa"
	"repro/internal/ident"
	"repro/internal/schema"
	"repro/internal/xmltree"
)

// Options configure XSD loading.
type Options struct {
	// Alpha, when non-nil, is the shared alphabet to intern labels into
	// (required when the schema will be compared against another).
	Alpha *fa.Alphabet
}

// Parse loads an XSD document from r into a compiled abstract XML schema.
func Parse(r io.Reader, opts Options) (*schema.Schema, error) {
	doc, err := xmltree.Parse(r)
	if err != nil {
		return nil, fmt.Errorf("xsd: %w", err)
	}
	return FromTree(doc, opts)
}

// ParseString loads an XSD document held in a string.
func ParseString(src string, opts Options) (*schema.Schema, error) {
	return Parse(strings.NewReader(src), opts)
}

// MustParseString is ParseString that panics on error; for fixtures.
func MustParseString(src string, opts Options) *schema.Schema {
	s, err := ParseString(src, opts)
	if err != nil {
		panic(err)
	}
	return s
}

// FromTree loads an already-parsed XSD document tree.
func FromTree(doc *xmltree.Node, opts Options) (*schema.Schema, error) {
	if doc.Label != "schema" {
		return nil, fmt.Errorf("xsd: root element is %q, want schema", doc.Label)
	}
	ld := &loader{
		s:               schema.New(opts.Alpha),
		namedComplex:    map[string]*xmltree.Node{},
		namedSimple:     map[string]*xmltree.Node{},
		globalElems:     map[string]*xmltree.Node{},
		builtComplex:    map[string]schema.TypeID{},
		builtSimple:     map[string]schema.TypeID{},
		building:        map[string]bool{},
		constraintsDone: map[*xmltree.Node]bool{},
		namedGroups:     map[string]*xmltree.Node{},
		groupBuilding:   map[string]bool{},
	}
	// Pass 1: index global declarations.
	for _, c := range doc.Children {
		if c.IsText() {
			continue
		}
		name, _ := c.AttrValue("name")
		switch c.Label {
		case "element":
			if name == "" {
				return nil, fmt.Errorf("xsd: global element without a name")
			}
			if _, dup := ld.globalElems[name]; dup {
				return nil, fmt.Errorf("xsd: global element %q declared twice", name)
			}
			ld.globalElems[name] = c
			ld.globalOrder = append(ld.globalOrder, name)
		case "complexType":
			if name == "" {
				return nil, fmt.Errorf("xsd: global complexType without a name")
			}
			ld.namedComplex[name] = c
		case "simpleType":
			if name == "" {
				return nil, fmt.Errorf("xsd: global simpleType without a name")
			}
			ld.namedSimple[name] = c
		case "annotation", "include", "import":
			// annotations are ignorable; include/import are unsupported
			if c.Label != "annotation" {
				return nil, fmt.Errorf("xsd: %s is not supported (schemas must be self-contained)", c.Label)
			}
		case "group":
			if name == "" {
				return nil, fmt.Errorf("xsd: global group without a name")
			}
			if _, dup := ld.namedGroups[name]; dup {
				return nil, fmt.Errorf("xsd: group %q declared twice", name)
			}
			ld.namedGroups[name] = c
		case "attribute", "attributeGroup", "notation":
			return nil, fmt.Errorf("xsd: global %s declarations are not supported", c.Label)
		default:
			return nil, fmt.Errorf("xsd: unexpected global declaration %q", c.Label)
		}
	}
	// Pass 2: build every global element's type and register roots.
	for _, name := range ld.globalOrder {
		elem := ld.globalElems[name]
		τ, err := ld.elementType(elem, name)
		if err != nil {
			return nil, err
		}
		ld.s.SetRoot(name, τ)
	}
	if err := ld.s.Compile(); err != nil {
		return nil, fmt.Errorf("xsd: %w", err)
	}
	if len(ld.constraints) > 0 {
		v, err := ident.NewValidator(ld.constraints)
		if err != nil {
			return nil, fmt.Errorf("xsd: %w", err)
		}
		ld.s.Ident = v
	}
	return ld.s, nil
}

type loader struct {
	s            *schema.Schema
	namedComplex map[string]*xmltree.Node
	namedSimple  map[string]*xmltree.Node
	globalElems  map[string]*xmltree.Node
	globalOrder  []string
	builtComplex map[string]schema.TypeID
	builtSimple  map[string]schema.TypeID
	building     map[string]bool
	anonCounter  int

	constraints     []*ident.Constraint
	constraintsDone map[*xmltree.Node]bool

	namedGroups   map[string]*xmltree.Node
	groupBuilding map[string]bool
}

// elementType resolves the type of an element declaration: a type attribute
// reference, an inline anonymous complexType/simpleType, or (absent both)
// the unconstrained simple type — the closest tree-model approximation of
// xs:anyType, documented as such.
func (ld *loader) elementType(elem *xmltree.Node, context string) (schema.TypeID, error) {
	var inline *xmltree.Node
	for _, c := range elem.Children {
		if c.IsText() || c.Label == "annotation" {
			continue
		}
		switch c.Label {
		case "complexType", "simpleType":
			if inline != nil {
				return schema.NoType, fmt.Errorf("xsd: element %q has multiple inline types", context)
			}
			inline = c
		case "key", "keyref", "unique":
			if err := ld.identityConstraint(elem, c); err != nil {
				return schema.NoType, err
			}
		default:
			return schema.NoType, fmt.Errorf("xsd: unexpected %q inside element %q", c.Label, context)
		}
	}
	if ref, ok := elem.AttrValue("type"); ok {
		if inline != nil {
			return schema.NoType, fmt.Errorf("xsd: element %q has both a type attribute and an inline type", context)
		}
		return ld.resolveTypeRef(ref, context)
	}
	if inline == nil {
		// xs:anyType; approximate with the unconstrained simple type.
		return ld.anySimple(context)
	}
	ld.anonCounter++
	anonName := fmt.Sprintf("%s#anon%d", context, ld.anonCounter)
	if inline.Label == "simpleType" {
		return ld.buildSimple(anonName, inline)
	}
	return ld.buildComplex(anonName, inline)
}

func (ld *loader) anySimple(context string) (schema.TypeID, error) {
	const name = "#anySimpleType"
	if id, ok := ld.builtSimple[name]; ok {
		return id, nil
	}
	id, err := ld.s.AddSimpleType(name, nil)
	if err != nil {
		return schema.NoType, fmt.Errorf("xsd: %w", err)
	}
	ld.builtSimple[name] = id
	return id, nil
}

// resolveTypeRef resolves a QName type reference: a user-declared named
// type shadows a built-in of the same local name; prefixed names strip
// their prefix (the loader is namespace-flattening, like the rest of this
// reproduction).
func (ld *loader) resolveTypeRef(ref, context string) (schema.TypeID, error) {
	local := ref
	if i := strings.LastIndexByte(ref, ':'); i >= 0 {
		local = ref[i+1:]
	}
	if node, ok := ld.namedComplex[local]; ok {
		// Complex types may reference themselves through their content
		// (recursive structures); buildComplex registers the type shell
		// before descending, so a cache hit may be a type under
		// construction — which is exactly right.
		if id, ok := ld.builtComplex[local]; ok {
			return id, nil
		}
		return ld.buildComplex(local, node)
	}
	if node, ok := ld.namedSimple[local]; ok {
		if id, ok := ld.builtSimple[local]; ok {
			return id, nil
		}
		if ld.building[local] {
			return schema.NoType, fmt.Errorf("xsd: simpleType %q is defined in terms of itself", local)
		}
		ld.building[local] = true
		defer delete(ld.building, local)
		id, err := ld.buildSimple(local, node)
		if err != nil {
			return schema.NoType, err
		}
		ld.builtSimple[local] = id
		return id, nil
	}
	if base, ok := schema.BaseKindByName(local); ok {
		return ld.builtin(local, base)
	}
	return schema.NoType, fmt.Errorf("xsd: element %q references unknown type %q", context, ref)
}

// builtin declares (once) a simple type for a built-in primitive.
func (ld *loader) builtin(local string, base schema.BaseKind) (schema.TypeID, error) {
	name := "xsd:" + local
	if id, ok := ld.builtSimple[name]; ok {
		return id, nil
	}
	var st *schema.SimpleType
	if base != schema.AnySimple {
		st = schema.NewSimpleType(base)
	}
	id, err := ld.s.AddSimpleType(name, st)
	if err != nil {
		return schema.NoType, fmt.Errorf("xsd: %w", err)
	}
	ld.builtSimple[name] = id
	return id, nil
}
