package xsd

import (
	"fmt"
	"strconv"

	"repro/internal/regexpsym"
	"repro/internal/schema"
	"repro/internal/xmltree"
)

// binding records a label→type assignment harvested while building a
// content model (the types_τ map under construction).
type binding struct {
	label string
	τ     schema.TypeID
}

// buildComplex converts a <complexType> node into a schema complex type.
// The type shell is registered first so recursive references resolve.
// A complexType with simpleContent carries a text value plus attributes;
// since attributes are outside the structural model, it maps to its base
// simple type (with restriction facets applied) — handled before the shell
// is created, because the result is a simple type.
func (ld *loader) buildComplex(name string, node *xmltree.Node) (schema.TypeID, error) {
	if mixed, _ := node.AttrValue("mixed"); mixed == "true" {
		return schema.NoType, fmt.Errorf("xsd: complexType %q: mixed content is outside the tree model", name)
	}
	for _, c := range node.Children {
		if !c.IsText() && c.Label == "simpleContent" {
			return ld.simpleContent(name, c)
		}
	}
	id, err := ld.s.AddComplexType(name, regexpsym.Epsilon{})
	if err != nil {
		return schema.NoType, fmt.Errorf("xsd: %w", err)
	}
	ld.builtComplex[name] = id
	// Clear the placeholder so derivation can detect a base that is still
	// under construction (recursive element references are fine — they only
	// need the TypeID — but extending an unfinished base is not).
	ld.s.TypeOf(id).Content = nil

	var particle, derivation *xmltree.Node
	for _, c := range node.Children {
		if c.IsText() || c.Label == "annotation" {
			continue
		}
		switch c.Label {
		case "sequence", "choice", "all", "group":
			if particle != nil || derivation != nil {
				return schema.NoType, fmt.Errorf("xsd: complexType %q has multiple top-level groups", name)
			}
			particle = c
		case "attribute", "attributeGroup", "anyAttribute":
			// Attributes are outside the structural model; skipped, as in
			// the paper.
		case "complexContent":
			if particle != nil || derivation != nil {
				return schema.NoType, fmt.Errorf("xsd: complexType %q mixes content and derivation", name)
			}
			derivation = c
		case "simpleContent":
			// handled above, before the complex shell was created
		default:
			return schema.NoType, fmt.Errorf("xsd: complexType %q: unexpected %q", name, c.Label)
		}
	}
	content := regexpsym.Node(regexpsym.Epsilon{})
	var binds []binding
	usedAll := false
	if derivation != nil {
		content, binds, usedAll, err = ld.complexContent(name, derivation)
		if err != nil {
			return schema.NoType, err
		}
	} else if particle != nil {
		content, binds, usedAll, err = ld.particle(particle, name)
		if err != nil {
			return schema.NoType, err
		}
	}
	t := ld.s.TypeOf(id)
	t.Content = content
	t.SkipUPA = usedAll
	for _, b := range binds {
		if err := ld.s.SetChildType(id, b.label, b.τ); err != nil {
			return schema.NoType, fmt.Errorf("xsd: complexType %q: %w (XML Schema requires same-label children to share a type)", name, err)
		}
	}
	return id, nil
}

// complexContent handles <complexContent><extension base="B">particle…
// (content = base's content followed by the extension particle, bindings
// merged) and <restriction base="B">particle… (content as re-declared; the
// base must exist — structural containment is the author's obligation, as
// in XSD, and the subsumption machinery can verify it on request).
func (ld *loader) complexContent(name string, node *xmltree.Node) (regexpsym.Node, []binding, bool, error) {
	var deriv *xmltree.Node
	for _, c := range node.Children {
		if c.IsText() || c.Label == "annotation" {
			continue
		}
		if c.Label != "extension" && c.Label != "restriction" || deriv != nil {
			return nil, nil, false, fmt.Errorf("xsd: complexType %q: malformed complexContent", name)
		}
		deriv = c
	}
	if deriv == nil {
		return nil, nil, false, fmt.Errorf("xsd: complexType %q: empty complexContent", name)
	}
	baseRef, ok := deriv.AttrValue("base")
	if !ok {
		return nil, nil, false, fmt.Errorf("xsd: complexType %q: %s without base", name, deriv.Label)
	}
	baseID, err := ld.resolveTypeRef(baseRef, name)
	if err != nil {
		return nil, nil, false, err
	}
	base := ld.s.TypeOf(baseID)
	if base.Simple {
		return nil, nil, false, fmt.Errorf("xsd: complexType %q: complexContent base %q is simple", name, baseRef)
	}
	if base.Content == nil {
		return nil, nil, false, fmt.Errorf("xsd: complexType %q: base %q is recursively under construction", name, baseRef)
	}

	var particle *xmltree.Node
	for _, c := range deriv.Children {
		if c.IsText() || c.Label == "annotation" {
			continue
		}
		switch c.Label {
		case "sequence", "choice", "all", "group":
			if particle != nil {
				return nil, nil, false, fmt.Errorf("xsd: complexType %q: multiple groups in %s", name, deriv.Label)
			}
			particle = c
		case "attribute", "attributeGroup", "anyAttribute":
			// skipped
		default:
			return nil, nil, false, fmt.Errorf("xsd: complexType %q: unexpected %q in %s", name, c.Label, deriv.Label)
		}
	}
	ownContent := regexpsym.Node(regexpsym.Epsilon{})
	var ownBinds []binding
	ownAll := false
	if particle != nil {
		ownContent, ownBinds, ownAll, err = ld.particle(particle, name)
		if err != nil {
			return nil, nil, false, err
		}
	}
	if deriv.Label == "restriction" {
		// Re-declared content replaces the base's.
		return ownContent, ownBinds, ownAll, nil
	}
	// Extension: base content followed by the extension particle; base
	// bindings inherited.
	binds := ownBinds
	for sym, child := range base.Child {
		binds = append(binds, binding{label: ld.s.Alpha.Name(sym), τ: child})
	}
	return regexpsym.Cat(base.Content, ownContent), binds, ownAll || base.SkipUPA, nil
}

// particle converts a sequence/choice/all/element node into a content
// expression plus its label bindings. usedAll reports that an xs:all group
// was expanded (exempting the model from the UPA check).
func (ld *loader) particle(node *xmltree.Node, context string) (regexpsym.Node, []binding, bool, error) {
	switch node.Label {
	case "element":
		expr, b, err := ld.elementParticle(node, context)
		if err != nil {
			return nil, nil, false, err
		}
		return expr, []binding{b}, false, nil
	case "sequence", "choice":
		var kids []regexpsym.Node
		var binds []binding
		usedAll := false
		for _, c := range node.Children {
			if c.IsText() || c.Label == "annotation" {
				continue
			}
			expr, bs, ua, err := ld.particle(c, context)
			if err != nil {
				return nil, nil, false, err
			}
			kids = append(kids, expr)
			binds = append(binds, bs...)
			usedAll = usedAll || ua
		}
		var expr regexpsym.Node
		if node.Label == "sequence" {
			expr = regexpsym.Cat(kids...)
		} else {
			if len(kids) == 0 {
				return nil, nil, false, fmt.Errorf("xsd: %s: empty choice group", context)
			}
			expr = regexpsym.Or(kids...)
		}
		expr, err := ld.wrapOccurs(expr, node, context)
		return expr, binds, usedAll, err
	case "all":
		return ld.allParticle(node, context)
	case "group":
		return ld.groupParticle(node, context)
	case "any":
		return nil, nil, false, fmt.Errorf("xsd: %s: xs:any particles are not supported", context)
	default:
		return nil, nil, false, fmt.Errorf("xsd: %s: unexpected particle %q", context, node.Label)
	}
}

// groupParticle resolves a <group ref="…"> reference to a named top-level
// model group, applying the reference's occurrence bounds around the
// group's particle.
func (ld *loader) groupParticle(node *xmltree.Node, context string) (regexpsym.Node, []binding, bool, error) {
	ref, ok := node.AttrValue("ref")
	if !ok {
		return nil, nil, false, fmt.Errorf("xsd: %s: group without ref (named group definitions belong at the top level)", context)
	}
	name := stripPrefix(ref)
	def, ok := ld.namedGroups[name]
	if !ok {
		return nil, nil, false, fmt.Errorf("xsd: %s: group ref %q has no definition", context, ref)
	}
	if ld.groupBuilding[name] {
		return nil, nil, false, fmt.Errorf("xsd: group %q is defined in terms of itself", name)
	}
	ld.groupBuilding[name] = true
	defer delete(ld.groupBuilding, name)

	var inner *xmltree.Node
	for _, c := range def.Children {
		if c.IsText() || c.Label == "annotation" {
			continue
		}
		switch c.Label {
		case "sequence", "choice", "all":
			if inner != nil {
				return nil, nil, false, fmt.Errorf("xsd: group %q has multiple particles", name)
			}
			inner = c
		default:
			return nil, nil, false, fmt.Errorf("xsd: group %q: unexpected %q", name, c.Label)
		}
	}
	if inner == nil {
		return nil, nil, false, fmt.Errorf("xsd: group %q has no particle", name)
	}
	expr, binds, usedAll, err := ld.particle(inner, "group "+name)
	if err != nil {
		return nil, nil, false, err
	}
	expr, err = ld.wrapOccurs(expr, node, context+"/group("+name+")")
	return expr, binds, usedAll, err
}

// elementParticle handles a local element declaration or a ref to a global
// one, returning the occurrence-wrapped label atom and its type binding.
func (ld *loader) elementParticle(node *xmltree.Node, context string) (regexpsym.Node, binding, error) {
	label, hasName := node.AttrValue("name")
	ref, hasRef := node.AttrValue("ref")
	var τ schema.TypeID
	var err error
	switch {
	case hasName && hasRef:
		return nil, binding{}, fmt.Errorf("xsd: %s: element with both name and ref", context)
	case hasRef:
		label = stripPrefix(ref)
		global, ok := ld.globalElems[label]
		if !ok {
			return nil, binding{}, fmt.Errorf("xsd: %s: element ref %q has no global declaration", context, ref)
		}
		τ, err = ld.elementType(global, label)
	case hasName:
		τ, err = ld.elementType(node, context+"/"+label)
	default:
		return nil, binding{}, fmt.Errorf("xsd: %s: element without name or ref", context)
	}
	if err != nil {
		return nil, binding{}, err
	}
	expr, err := ld.wrapOccurs(regexpsym.Lbl(label), node, context+"/"+label)
	if err != nil {
		return nil, binding{}, err
	}
	return expr, binding{label: label, τ: τ}, nil
}

// allParticle expands an xs:all group into the alternation of all member
// permutations. XML Schema 1.0 restricts all-group members to single
// elements with maxOccurs ≤ 1, which keeps the expansion exact; the n!
// growth caps group size at 7 here.
func (ld *loader) allParticle(node *xmltree.Node, context string) (regexpsym.Node, []binding, bool, error) {
	type member struct {
		expr     regexpsym.Node
		optional bool
	}
	var members []member
	var binds []binding
	for _, c := range node.Children {
		if c.IsText() || c.Label == "annotation" {
			continue
		}
		if c.Label != "element" {
			return nil, nil, false, fmt.Errorf("xsd: %s: xs:all may contain only elements, found %q", context, c.Label)
		}
		min, max, err := occurs(c)
		if err != nil {
			return nil, nil, false, fmt.Errorf("xsd: %s: %w", context, err)
		}
		if max != 1 || min > 1 {
			return nil, nil, false, fmt.Errorf("xsd: %s: xs:all members must have occurs in {0,1}", context)
		}
		// Build the bare atom (without occurrence wrapping; optionality is
		// handled per permutation position).
		label, hasName := c.AttrValue("name")
		if !hasName {
			if ref, ok := c.AttrValue("ref"); ok {
				label = stripPrefix(ref)
			} else {
				return nil, nil, false, fmt.Errorf("xsd: %s: all-group element without name or ref", context)
			}
		}
		var τ schema.TypeID
		if ref, ok := c.AttrValue("ref"); ok {
			global, okG := ld.globalElems[stripPrefix(ref)]
			if !okG {
				return nil, nil, false, fmt.Errorf("xsd: %s: element ref %q has no global declaration", context, ref)
			}
			τ, err = ld.elementType(global, label)
		} else {
			τ, err = ld.elementType(c, context+"/"+label)
		}
		if err != nil {
			return nil, nil, false, err
		}
		members = append(members, member{expr: regexpsym.Lbl(label), optional: min == 0})
		binds = append(binds, binding{label: label, τ: τ})
	}
	if len(members) == 0 {
		return regexpsym.Epsilon{}, nil, true, nil
	}
	if len(members) > 7 {
		return nil, nil, false, fmt.Errorf("xsd: %s: xs:all with %d members exceeds the expansion limit of 7", context, len(members))
	}
	// Generate permutations; optional members may be dropped, which the
	// per-permutation optionality wrapping handles.
	var alts []regexpsym.Node
	perm := make([]int, len(members))
	for i := range perm {
		perm[i] = i
	}
	var emit func(k int)
	emit = func(k int) {
		if k == len(perm) {
			seq := make([]regexpsym.Node, len(perm))
			for i, idx := range perm {
				if members[idx].optional {
					seq[i] = regexpsym.Opt(members[idx].expr)
				} else {
					seq[i] = members[idx].expr
				}
			}
			alts = append(alts, regexpsym.Cat(seq...))
			return
		}
		for i := k; i < len(perm); i++ {
			perm[k], perm[i] = perm[i], perm[k]
			emit(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	emit(0)
	expr, err := ld.wrapOccurs(regexpsym.Or(alts...), node, context)
	return expr, binds, true, err
}

// wrapOccurs applies the node's minOccurs/maxOccurs to an expression.
func (ld *loader) wrapOccurs(expr regexpsym.Node, node *xmltree.Node, context string) (regexpsym.Node, error) {
	min, max, err := occurs(node)
	if err != nil {
		return nil, fmt.Errorf("xsd: %s: %w", context, err)
	}
	if min == 1 && max == 1 {
		return expr, nil
	}
	if max == regexpsym.Unbounded {
		return regexpsym.Bound(expr, min, regexpsym.Unbounded), nil
	}
	return regexpsym.Bound(expr, min, max), nil
}

// occurs parses minOccurs/maxOccurs attributes (defaults 1/1; maxOccurs
// "unbounded" maps to regexpsym.Unbounded).
func occurs(node *xmltree.Node) (min, max int, err error) {
	min, max = 1, 1
	if v, ok := node.AttrValue("minOccurs"); ok {
		min, err = strconv.Atoi(v)
		if err != nil || min < 0 {
			return 0, 0, fmt.Errorf("bad minOccurs %q", v)
		}
	}
	if v, ok := node.AttrValue("maxOccurs"); ok {
		if v == "unbounded" {
			return min, regexpsym.Unbounded, nil
		}
		max, err = strconv.Atoi(v)
		if err != nil || max < 0 {
			return 0, 0, fmt.Errorf("bad maxOccurs %q", v)
		}
	}
	if max != regexpsym.Unbounded && max < min {
		return 0, 0, fmt.Errorf("maxOccurs %d < minOccurs %d", max, min)
	}
	return min, max, nil
}

func stripPrefix(qname string) string {
	for i := len(qname) - 1; i >= 0; i-- {
		if qname[i] == ':' {
			return qname[i+1:]
		}
	}
	return qname
}
