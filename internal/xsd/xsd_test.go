package xsd

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/baseline"
	"repro/internal/fa"
	"repro/internal/schema"
	"repro/internal/subsume"
	"repro/internal/wgen"
	"repro/internal/xmltree"
)

func TestParseFigure2(t *testing.T) {
	s, err := ParseString(wgen.Figure2XSD(false, 100), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"POType2", "USAddress", "Items", "Item"} {
		if s.TypeByName(name) == schema.NoType {
			t.Fatalf("type %s missing", name)
		}
	}
	if s.RootType("purchaseOrder") == schema.NoType || s.RootType("comment") == schema.NoType {
		t.Fatal("global elements should be roots")
	}
	doc := wgen.PODocument(wgen.PODocOptions{Items: 5, IncludeBillTo: true, Seed: 1})
	if err := s.Validate(doc); err != nil {
		t.Fatalf("generated doc should validate against parsed XSD: %v", err)
	}
	noBill := wgen.PODocument(wgen.PODocOptions{Items: 5, IncludeBillTo: false, Seed: 1})
	if err := s.Validate(noBill); err == nil {
		t.Fatal("billTo-less doc must fail (required billTo)")
	}
}

// The parsed XSD must define exactly the same languages as the programmatic
// paper schemas: every document generated from one validates under the
// other, in both directions, across all three schema variants.
func TestParsedSchemaMatchesProgrammatic(t *testing.T) {
	ps := wgen.NewPaperSchemas()
	variants := []struct {
		name string
		xsd  string
		prog *schema.Schema
	}{
		{"fig1a", wgen.Figure2XSD(true, 100), ps.Source1},
		{"fig2", wgen.Figure2XSD(false, 100), ps.Target},
		{"exp2src", wgen.Figure2XSD(false, 200), ps.Source2},
	}
	rng := rand.New(rand.NewSource(7))
	for _, v := range variants {
		parsed, err := ParseString(v.xsd, Options{Alpha: ps.Alpha})
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		// Direction 1: docs from the programmatic schema validate under
		// the parsed schema and vice versa.
		gp := wgen.NewGenerator(v.prog, rng)
		gx := wgen.NewGenerator(parsed, rng)
		for i := 0; i < 40; i++ {
			if doc, ok := gp.Document(); ok {
				if err := parsed.Validate(doc); err != nil {
					t.Fatalf("%s: programmatic doc rejected by parsed schema: %v\n%s", v.name, err, doc)
				}
			}
			if doc, ok := gx.Document(); ok {
				if err := v.prog.Validate(doc); err != nil {
					t.Fatalf("%s: parsed-schema doc rejected by programmatic schema: %v\n%s", v.name, err, doc)
				}
			}
		}
		// Stronger: full mutual subsumption of the root types.
		rel := subsume.MustCompute(parsed, v.prog)
		relBack := subsume.MustCompute(v.prog, parsed)
		pa := parsed.RootType("purchaseOrder")
		pb := v.prog.RootType("purchaseOrder")
		if !rel.Subsumed(pa, pb) || !relBack.Subsumed(pb, pa) {
			t.Fatalf("%s: parsed and programmatic purchaseOrder types are not equivalent", v.name)
		}
	}
}

func TestParseInlineAndAnonymousTypes(t *testing.T) {
	src := `<schema>
	  <element name="root">
	    <complexType>
	      <sequence>
	        <element name="a" type="string"/>
	        <element name="b">
	          <simpleType>
	            <restriction base="integer">
	              <minInclusive value="0"/>
	              <maxInclusive value="10"/>
	            </restriction>
	          </simpleType>
	        </element>
	      </sequence>
	    </complexType>
	  </element>
	</schema>`
	s, err := ParseString(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ok := xmltree.MustParseString(`<root><a>x</a><b>7</b></root>`)
	if err := s.Validate(ok); err != nil {
		t.Fatalf("valid doc rejected: %v", err)
	}
	bad := xmltree.MustParseString(`<root><a>x</a><b>11</b></root>`)
	if err := s.Validate(bad); err == nil {
		t.Fatal("b=11 violates maxInclusive=10")
	}
}

func TestParseChoiceAndNestedGroups(t *testing.T) {
	src := `<schema>
	  <element name="msg">
	    <complexType>
	      <sequence>
	        <element name="header" type="string"/>
	        <choice minOccurs="0" maxOccurs="unbounded">
	          <element name="text" type="string"/>
	          <sequence>
	            <element name="code" type="integer"/>
	            <element name="detail" type="string"/>
	          </sequence>
	        </choice>
	      </sequence>
	    </complexType>
	  </element>
	</schema>`
	s, err := ParseString(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, doc := range []string{
		`<msg><header>h</header></msg>`,
		`<msg><header>h</header><text>t</text></msg>`,
		`<msg><header>h</header><code>1</code><detail>d</detail><text>t</text></msg>`,
	} {
		if err := s.Validate(xmltree.MustParseString(doc)); err != nil {
			t.Fatalf("%s should validate: %v", doc, err)
		}
	}
	for _, doc := range []string{
		`<msg/>`,
		`<msg><header>h</header><code>1</code></msg>`, // detail required after code
		`<msg><text>t</text></msg>`,                   // header required
	} {
		if err := s.Validate(xmltree.MustParseString(doc)); err == nil {
			t.Fatalf("%s should fail", doc)
		}
	}
}

func TestParseAllGroup(t *testing.T) {
	src := `<schema>
	  <element name="cfg">
	    <complexType>
	      <all>
	        <element name="host" type="string"/>
	        <element name="port" type="integer"/>
	        <element name="debug" type="boolean" minOccurs="0"/>
	      </all>
	    </complexType>
	  </element>
	</schema>`
	s, err := ParseString(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, doc := range []string{
		`<cfg><host>h</host><port>80</port></cfg>`,
		`<cfg><port>80</port><host>h</host></cfg>`,
		`<cfg><debug>true</debug><port>80</port><host>h</host></cfg>`,
		`<cfg><host>h</host><debug>false</debug><port>80</port></cfg>`,
	} {
		if err := s.Validate(xmltree.MustParseString(doc)); err != nil {
			t.Fatalf("%s should validate: %v", doc, err)
		}
	}
	for _, doc := range []string{
		`<cfg><host>h</host></cfg>`,                                // port required
		`<cfg><host>h</host><port>80</port><host>h2</host></cfg>`,  // host twice
		`<cfg><host>h</host><port>80</port><extra>x</extra></cfg>`, // unknown
	} {
		if err := s.Validate(xmltree.MustParseString(doc)); err == nil {
			t.Fatalf("%s should fail", doc)
		}
	}
}

func TestParseElementRef(t *testing.T) {
	src := `<schema>
	  <element name="item" type="string"/>
	  <element name="list">
	    <complexType>
	      <sequence>
	        <element ref="item" minOccurs="0" maxOccurs="unbounded"/>
	      </sequence>
	    </complexType>
	  </element>
	</schema>`
	s, err := ParseString(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(xmltree.MustParseString(`<list><item>a</item><item>b</item></list>`)); err != nil {
		t.Fatal(err)
	}
}

func TestParseRecursiveType(t *testing.T) {
	src := `<schema>
	  <element name="tree" type="TreeType"/>
	  <complexType name="TreeType">
	    <sequence>
	      <element name="value" type="integer"/>
	      <element name="tree" type="TreeType" minOccurs="0" maxOccurs="2"/>
	    </sequence>
	  </complexType>
	</schema>`
	s, err := ParseString(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	doc := xmltree.MustParseString(
		`<tree><value>1</value><tree><value>2</value></tree></tree>`)
	if err := s.Validate(doc); err != nil {
		t.Fatalf("recursive doc should validate: %v", err)
	}
}

func TestParseNamedSimpleTypeChain(t *testing.T) {
	src := `<schema>
	  <simpleType name="Small"><restriction base="Positive"><maxInclusive value="10"/></restriction></simpleType>
	  <simpleType name="Positive"><restriction base="integer"><minExclusive value="0"/></restriction></simpleType>
	  <element name="n" type="Small"/>
	</schema>`
	s, err := ParseString(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(xmltree.MustParseString(`<n>5</n>`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(xmltree.MustParseString(`<n>0</n>`)); err == nil {
		t.Fatal("0 violates the inherited minExclusive facet")
	}
	if err := s.Validate(xmltree.MustParseString(`<n>11</n>`)); err == nil {
		t.Fatal("11 violates maxInclusive")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{`<notschema/>`, "root element"},
		{`<schema><element type="string"/></schema>`, "without a name"},
		{`<schema><element name="a" type="Nope"/></schema>`, "unknown type"},
		{`<schema><element name="a" type="string"/><element name="a" type="string"/></schema>`, "twice"},
		{`<schema><complexType/></schema>`, "without a name"},
		{`<schema><element name="a"><complexType mixed="true"><sequence/></complexType></element></schema>`, "mixed"},
		{`<schema><element name="a"><complexType><complexContent/></complexType></element></schema>`, "empty complexContent"},
		{`<schema><element name="a"><complexType><simpleContent/></complexType></element></schema>`, "empty simpleContent"},
		{`<schema><include schemaLocation="x.xsd"/></schema>`, "not supported"},
		{`<schema><element name="a"><complexType><sequence><element name="b" type="string" minOccurs="2" maxOccurs="1"/></sequence></complexType></element></schema>`, "maxOccurs"},
		{`<schema><element name="a" type="string"><key name="k"><selector xpath="b"/></key></element></schema>`, "selector and at least one field"},
		{`<schema><element name="a" type="string"><keyref name="r" refer="nope"><selector xpath="b"/><field xpath="c"/></keyref></element></schema>`, "unknown constraint"},
		{`<schema><element name="a"><simpleType><restriction base="string"><pattern value="x+"/></restriction></simpleType></element></schema>`, "not supported"},
		{`<schema><element name="a"><simpleType><union/></simpleType></element></schema>`, "union"},
		{`<schema><simpleType name="L"><restriction base="L"/></simpleType><element name="a" type="L"/></schema>`, "itself"},
		{`<schema><element name="a"><complexType><sequence><any/></sequence></complexType></element></schema>`, "not supported"},
		{`<schema><element name="a"><complexType><sequence><element ref="missing"/></sequence></complexType></element></schema>`, "no global declaration"},
		{`<schema><element name="a"><complexType><all><sequence/></all></complexType></element></schema>`, "only elements"},
		{`<schema><element name="a"><complexType><all><element name="b" type="string" maxOccurs="2"/></all></complexType></element></schema>`, "occurs in {0,1}"},
		// Same label, two different types in one content model.
		{`<schema><element name="a"><complexType><sequence>
			<element name="b" type="string"/>
			<element name="b" type="integer"/>
		  </sequence></complexType></element></schema>`, "share a type"},
	}
	for _, c := range cases {
		_, err := ParseString(c.src, Options{})
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("ParseString(%.60q) error = %v, want containing %q", c.src, err, c.want)
		}
	}
}

func TestParseElementWithoutTypeIsAnySimple(t *testing.T) {
	s, err := ParseString(`<schema><element name="a"/></schema>`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(xmltree.MustParseString(`<a>anything</a>`)); err != nil {
		t.Fatalf("anyType element should accept text: %v", err)
	}
}

func TestSharedAlphabetCastIntegration(t *testing.T) {
	alpha := fa.NewAlphabet()
	src, err := ParseString(wgen.Figure2XSD(true, 100), Options{Alpha: alpha})
	if err != nil {
		t.Fatal(err)
	}
	dst, err := ParseString(wgen.Figure2XSD(false, 100), Options{Alpha: alpha})
	if err != nil {
		t.Fatal(err)
	}
	rel := subsume.MustCompute(src, dst)
	if rel.Subsumed(src.RootType("purchaseOrder"), dst.RootType("purchaseOrder")) {
		t.Fatal("optional-billTo root must not be subsumed")
	}
	if !rel.Subsumed(src.TypeByName("USAddress"), dst.TypeByName("USAddress")) {
		t.Fatal("USAddress should be subsumed by its twin")
	}
	// Sanity: both parsed schemas fully validate a generated doc.
	doc := wgen.PODocument(wgen.PODocOptions{Items: 3, IncludeBillTo: true, Seed: 9})
	for _, s := range []*schema.Schema{src, dst} {
		if _, err := baseline.New(s).Validate(doc); err != nil {
			t.Fatal(err)
		}
	}
}

func TestScaledXSDParsesAndRelates(t *testing.T) {
	const sections = 6
	alpha := fa.NewAlphabet()
	src, err := ParseString(wgen.ScaledXSD(sections, true, 100), Options{Alpha: alpha})
	if err != nil {
		t.Fatal(err)
	}
	dst, err := ParseString(wgen.ScaledXSD(sections, false, 100), Options{Alpha: alpha})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < sections; i++ {
		for _, name := range []string{"Section", "Entry"} {
			if src.TypeByName(fmt.Sprintf("%s%d", name, i)) == schema.NoType {
				t.Fatalf("source missing %s%d", name, i)
			}
		}
	}
	rel := subsume.MustCompute(src, dst)
	if rel.Subsumed(src.RootType("catalog"), dst.RootType("catalog")) {
		t.Fatal("optional-note catalog must not be subsumed by required-note")
	}
	// The reverse tightening direction: every required-note section is
	// subsumed by its optional-note twin, so the swapped pair is a no-op
	// cast at the section level.
	relBack := subsume.MustCompute(dst, src)
	for i := 0; i < sections; i++ {
		name := fmt.Sprintf("Section%d", i)
		if !relBack.Subsumed(dst.TypeByName(name), src.TypeByName(name)) {
			t.Fatalf("%s (required note) should be subsumed by its optional twin", name)
		}
	}
}
