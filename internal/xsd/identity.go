package xsd

import (
	"fmt"

	"repro/internal/ident"
	"repro/internal/xmltree"
)

// identityConstraint parses one xs:unique / xs:key / xs:keyref declaration
// attached to an element declaration. Constraints are scoped to the
// carrying element's label. A given declaration node is parsed once even
// when the element is resolved repeatedly through refs.
func (ld *loader) identityConstraint(elem, decl *xmltree.Node) error {
	if ld.constraintsDone[decl] {
		return nil
	}
	ld.constraintsDone[decl] = true

	scopeLabel, _ := elem.AttrValue("name")
	if scopeLabel == "" {
		return fmt.Errorf("xsd: identity constraint on an unnamed element")
	}
	name, _ := decl.AttrValue("name")
	if name == "" {
		return fmt.Errorf("xsd: %s on element %q has no name", decl.Label, scopeLabel)
	}
	c := &ident.Constraint{Name: name, ScopeLabel: scopeLabel}
	switch decl.Label {
	case "unique":
		c.Kind = ident.Unique
	case "key":
		c.Kind = ident.Key
	case "keyref":
		c.Kind = ident.KeyRef
		refer, ok := decl.AttrValue("refer")
		if !ok {
			return fmt.Errorf("xsd: keyref %q has no refer attribute", name)
		}
		c.Refer = stripPrefix(refer)
	}
	for _, part := range decl.Children {
		if part.IsText() || part.Label == "annotation" {
			continue
		}
		xpath, _ := part.AttrValue("xpath")
		switch part.Label {
		case "selector":
			if c.Selector != nil {
				return fmt.Errorf("xsd: %s %q has multiple selectors", decl.Label, name)
			}
			sel, err := ident.ParseSelector(xpath)
			if err != nil {
				return fmt.Errorf("xsd: %s %q: %w", decl.Label, name, err)
			}
			c.Selector = sel
		case "field":
			f, err := ident.ParseField(xpath)
			if err != nil {
				return fmt.Errorf("xsd: %s %q: %w", decl.Label, name, err)
			}
			c.Fields = append(c.Fields, f)
		default:
			return fmt.Errorf("xsd: unexpected %q inside %s %q", part.Label, decl.Label, name)
		}
	}
	if c.Selector == nil || len(c.Fields) == 0 {
		return fmt.Errorf("xsd: %s %q needs a selector and at least one field", decl.Label, name)
	}
	ld.constraints = append(ld.constraints, c)
	return nil
}
