package xsd

import (
	"fmt"
	"strconv"

	"repro/internal/schema"
	"repro/internal/xmltree"
)

// buildSimple converts a <simpleType> node (a restriction) into a schema
// simple type.
func (ld *loader) buildSimple(name string, node *xmltree.Node) (schema.TypeID, error) {
	var restriction, list *xmltree.Node
	for _, c := range node.Children {
		if c.IsText() || c.Label == "annotation" {
			continue
		}
		switch c.Label {
		case "restriction":
			if restriction != nil || list != nil {
				return schema.NoType, fmt.Errorf("xsd: simpleType %q has multiple variety children", name)
			}
			restriction = c
		case "list":
			if restriction != nil || list != nil {
				return schema.NoType, fmt.Errorf("xsd: simpleType %q has multiple variety children", name)
			}
			list = c
		case "union":
			return schema.NoType, fmt.Errorf("xsd: simpleType %q: union types are not supported", name)
		default:
			return schema.NoType, fmt.Errorf("xsd: simpleType %q: unexpected %q", name, c.Label)
		}
	}
	var (
		st  *schema.SimpleType
		err error
	)
	switch {
	case restriction != nil:
		st, err = ld.restriction(name, restriction)
	case list != nil:
		st, err = ld.list(name, list)
	default:
		return schema.NoType, fmt.Errorf("xsd: simpleType %q has no restriction or list", name)
	}
	if err != nil {
		return schema.NoType, err
	}
	id, err := ld.s.AddSimpleType(name, st)
	if err != nil {
		return schema.NoType, fmt.Errorf("xsd: %w", err)
	}
	return id, nil
}

// restriction resolves the base (a primitive or another named simpleType)
// and layers the facets on top.
func (ld *loader) restriction(name string, node *xmltree.Node) (*schema.SimpleType, error) {
	baseRef, ok := node.AttrValue("base")
	if !ok {
		return nil, fmt.Errorf("xsd: simpleType %q: restriction without base", name)
	}
	st, err := ld.baseSimple(name, baseRef)
	if err != nil {
		return nil, err
	}
	for _, f := range node.Children {
		if f.IsText() || f.Label == "annotation" {
			continue
		}
		st, err = ld.applyFacet(name, st, f)
		if err != nil {
			return nil, err
		}
	}
	return st, nil
}

// applyFacet layers one facet element onto a simple type.
func (ld *loader) applyFacet(name string, st *schema.SimpleType, f *xmltree.Node) (*schema.SimpleType, error) {
	value, hasValue := f.AttrValue("value")
	if !hasValue {
		return nil, fmt.Errorf("xsd: simpleType %q: facet %s without value", name, f.Label)
	}
	switch f.Label {
	case "minInclusive", "maxInclusive", "minExclusive", "maxExclusive":
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			return nil, fmt.Errorf("xsd: simpleType %q: bad %s value %q", name, f.Label, value)
		}
		switch f.Label {
		case "minInclusive":
			st = st.WithMinInclusive(v)
		case "maxInclusive":
			st = st.WithMaxInclusive(v)
		case "minExclusive":
			st = st.WithMinExclusive(v)
		case "maxExclusive":
			st = st.WithMaxExclusive(v)
		}
	case "minLength", "maxLength", "length":
		n, err := strconv.Atoi(value)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("xsd: simpleType %q: bad %s value %q", name, f.Label, value)
		}
		switch f.Label {
		case "minLength":
			st = st.WithLength(n, st.MaxLength)
		case "maxLength":
			st = st.WithLength(st.MinLength, n)
		case "length":
			st = st.WithLength(n, n)
		}
	case "enumeration":
		st = st.WithEnumeration(append(st.Enumeration, value)...)
	case "pattern", "whiteSpace", "totalDigits", "fractionDigits":
		return nil, fmt.Errorf("xsd: simpleType %q: facet %s is not supported", name, f.Label)
	default:
		return nil, fmt.Errorf("xsd: simpleType %q: unknown facet %q", name, f.Label)
	}
	return st, nil
}

// list builds an xs:list simple type: the item type comes from an itemType
// attribute or an inline simpleType.
func (ld *loader) list(name string, node *xmltree.Node) (*schema.SimpleType, error) {
	if itemRef, ok := node.AttrValue("itemType"); ok {
		item, err := ld.baseSimple(name, itemRef)
		if err != nil {
			return nil, err
		}
		return schema.NewListType(item), nil
	}
	for _, c := range node.Children {
		if c.IsText() || c.Label == "annotation" {
			continue
		}
		if c.Label != "simpleType" {
			return nil, fmt.Errorf("xsd: list in simpleType %q: unexpected %q", name, c.Label)
		}
		var restriction *xmltree.Node
		for _, r := range c.Children {
			if !r.IsText() && r.Label == "restriction" {
				restriction = r
			}
		}
		if restriction == nil {
			return nil, fmt.Errorf("xsd: list item type of %q must be a restriction", name)
		}
		item, err := ld.restriction(name+"#item", restriction)
		if err != nil {
			return nil, err
		}
		return schema.NewListType(item), nil
	}
	return nil, fmt.Errorf("xsd: list in simpleType %q needs itemType or an inline simpleType", name)
}

// baseSimple resolves the restriction base into a starting SimpleType
// (copying facets when the base is itself a user-defined simpleType).
func (ld *loader) baseSimple(context, baseRef string) (*schema.SimpleType, error) {
	local := stripPrefix(baseRef)
	if node, ok := ld.namedSimple[local]; ok {
		if ld.building[local] {
			return nil, fmt.Errorf("xsd: simpleType %q is defined in terms of itself", local)
		}
		ld.building[local] = true
		defer delete(ld.building, local)
		var restriction *xmltree.Node
		for _, c := range node.Children {
			if !c.IsText() && c.Label == "restriction" {
				restriction = c
			}
		}
		if restriction == nil {
			return nil, fmt.Errorf("xsd: simpleType %q: base %q has no restriction", context, baseRef)
		}
		return ld.restriction(local, restriction)
	}
	base, ok := schema.BaseKindByName(local)
	if !ok {
		return nil, fmt.Errorf("xsd: simpleType %q: unknown base type %q", context, baseRef)
	}
	return schema.NewSimpleType(base), nil
}

// simpleContent maps a complexType with simpleContent to a simple type:
// <extension base="B"> adopts B's value space (attributes are skipped, as
// everywhere in this model); <restriction base="B"> layers facets on it.
// The base may be a simple type, a built-in, or another simple-content
// complexType.
func (ld *loader) simpleContent(name string, node *xmltree.Node) (schema.TypeID, error) {
	var deriv *xmltree.Node
	for _, c := range node.Children {
		if c.IsText() || c.Label == "annotation" {
			continue
		}
		if c.Label != "extension" && c.Label != "restriction" || deriv != nil {
			return schema.NoType, fmt.Errorf("xsd: complexType %q: malformed simpleContent", name)
		}
		deriv = c
	}
	if deriv == nil {
		return schema.NoType, fmt.Errorf("xsd: complexType %q: empty simpleContent", name)
	}
	baseRef, ok := deriv.AttrValue("base")
	if !ok {
		return schema.NoType, fmt.Errorf("xsd: complexType %q: simpleContent %s without base", name, deriv.Label)
	}
	baseID, err := ld.resolveTypeRef(baseRef, name)
	if err != nil {
		return schema.NoType, err
	}
	base := ld.s.TypeOf(baseID)
	if !base.Simple {
		return schema.NoType, fmt.Errorf("xsd: complexType %q: simpleContent base %q has element content", name, baseRef)
	}
	st := base.Value
	if deriv.Label == "restriction" {
		// Apply the facet children on top of the base's facets.
		start := st
		if start == nil {
			start = schema.NewSimpleType(schema.AnySimple)
		}
		copied := *start
		st = &copied
		for _, f := range deriv.Children {
			if f.IsText() || f.Label == "annotation" || f.Label == "attribute" ||
				f.Label == "attributeGroup" || f.Label == "anyAttribute" {
				continue
			}
			st, err = ld.applyFacet(name, st, f)
			if err != nil {
				return schema.NoType, err
			}
		}
	} else {
		// Extension adds only attributes; verify nothing structural hides
		// inside.
		for _, f := range deriv.Children {
			if f.IsText() || f.Label == "annotation" || f.Label == "attribute" ||
				f.Label == "attributeGroup" || f.Label == "anyAttribute" {
				continue
			}
			return schema.NoType, fmt.Errorf("xsd: complexType %q: unexpected %q in simpleContent extension", name, f.Label)
		}
	}
	id, err := ld.s.AddSimpleType(name, st)
	if err != nil {
		return schema.NoType, fmt.Errorf("xsd: %w", err)
	}
	ld.builtComplex[name] = id
	return id, nil
}
