package xsd

import (
	"strings"
	"testing"

	"repro/internal/fa"
	"repro/internal/schema"
	"repro/internal/subsume"
	"repro/internal/xmltree"
)

func TestComplexContentExtension(t *testing.T) {
	src := `<schema>
	  <complexType name="Base">
	    <sequence>
	      <element name="id" type="string"/>
	    </sequence>
	  </complexType>
	  <complexType name="Derived">
	    <complexContent>
	      <extension base="Base">
	        <sequence>
	          <element name="extra" type="integer"/>
	        </sequence>
	      </extension>
	    </complexContent>
	  </complexType>
	  <element name="base" type="Base"/>
	  <element name="derived" type="Derived"/>
	</schema>`
	s, err := ParseString(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(xmltree.MustParseString(`<derived><id>x</id><extra>1</extra></derived>`)); err != nil {
		t.Fatalf("extended content should validate: %v", err)
	}
	if err := s.Validate(xmltree.MustParseString(`<derived><id>x</id></derived>`)); err == nil {
		t.Fatal("extension content is mandatory")
	}
	if err := s.Validate(xmltree.MustParseString(`<derived><extra>1</extra><id>x</id></derived>`)); err == nil {
		t.Fatal("base content must come first")
	}
	if err := s.Validate(xmltree.MustParseString(`<base><id>x</id></base>`)); err != nil {
		t.Fatalf("base still validates alone: %v", err)
	}
}

func TestComplexContentRestriction(t *testing.T) {
	src := `<schema>
	  <complexType name="Base">
	    <sequence>
	      <element name="a" type="string"/>
	      <element name="b" type="string" minOccurs="0"/>
	    </sequence>
	  </complexType>
	  <complexType name="Narrow">
	    <complexContent>
	      <restriction base="Base">
	        <sequence>
	          <element name="a" type="string"/>
	        </sequence>
	      </restriction>
	    </complexContent>
	  </complexType>
	  <element name="n" type="Narrow"/>
	  <element name="base" type="Base"/>
	</schema>`
	alpha := fa.NewAlphabet()
	s, err := ParseString(src, Options{Alpha: alpha})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(xmltree.MustParseString(`<n><a>x</a></n>`)); err != nil {
		t.Fatalf("restricted content should validate: %v", err)
	}
	if err := s.Validate(xmltree.MustParseString(`<n><a>x</a><b>y</b></n>`)); err == nil {
		t.Fatal("b was restricted away")
	}
	// The restriction really is a subtype: Narrow ≤ Base per R_sub.
	rel := subsume.MustCompute(s, s)
	if !rel.Subsumed(s.TypeByName("Narrow"), s.TypeByName("Base")) {
		t.Fatal("Narrow should be subsumed by Base")
	}
}

func TestComplexContentErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{`<schema><complexType name="D"><complexContent><extension/></complexContent></complexType><element name="d" type="D"/></schema>`,
			"without base"},
		{`<schema><complexType name="D"><complexContent><extension base="Missing"/></complexContent></complexType><element name="d" type="D"/></schema>`,
			"unknown type"},
		{`<schema><complexType name="D"><complexContent><extension base="string"/></complexContent></complexType><element name="d" type="D"/></schema>`,
			"is simple"},
		// Recursive extension cannot resolve the base's content.
		{`<schema><complexType name="D"><complexContent><extension base="D"/></complexContent></complexType><element name="d" type="D"/></schema>`,
			"under construction"},
	}
	for _, c := range cases {
		if _, err := ParseString(c.src, Options{}); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("error = %v, want containing %q", err, c.want)
		}
	}
}

func TestNamedGroups(t *testing.T) {
	src := `<schema>
	  <group name="AddressFields">
	    <sequence>
	      <element name="street" type="string"/>
	      <element name="city" type="string"/>
	    </sequence>
	  </group>
	  <element name="contact">
	    <complexType>
	      <sequence>
	        <element name="name" type="string"/>
	        <group ref="AddressFields"/>
	        <group ref="AddressFields" minOccurs="0"/>
	      </sequence>
	    </complexType>
	  </element>
	</schema>`
	s, err := ParseString(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	one := `<contact><name>n</name><street>s</street><city>c</city></contact>`
	if err := s.Validate(xmltree.MustParseString(one)); err != nil {
		t.Fatalf("single group use: %v", err)
	}
	two := `<contact><name>n</name><street>s</street><city>c</city><street>s2</street><city>c2</city></contact>`
	if err := s.Validate(xmltree.MustParseString(two)); err != nil {
		t.Fatalf("optional second group use: %v", err)
	}
	if err := s.Validate(xmltree.MustParseString(`<contact><name>n</name></contact>`)); err == nil {
		t.Fatal("first group is mandatory")
	}
}

func TestNamedGroupErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{`<schema><element name="a"><complexType><sequence><group ref="G"/></sequence></complexType></element></schema>`,
			"no definition"},
		{`<schema><group name="G"><sequence><group ref="G"/></sequence></group>
		  <element name="a"><complexType><sequence><group ref="G"/></sequence></complexType></element></schema>`,
			"itself"},
		{`<schema><group name="G"><sequence/></group><group name="G"><sequence/></group><element name="a" type="string"/></schema>`,
			"twice"},
	}
	for _, c := range cases {
		if _, err := ParseString(c.src, Options{}); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("error = %v, want containing %q", err, c.want)
		}
	}
}

func TestListSimpleType(t *testing.T) {
	src := `<schema>
	  <simpleType name="Scores">
	    <list itemType="integer"/>
	  </simpleType>
	  <element name="scores" type="Scores"/>
	  <element name="tags">
	    <simpleType>
	      <list>
	        <simpleType><restriction base="string"><maxLength value="4"/></restriction></simpleType>
	      </list>
	    </simpleType>
	  </element>
	</schema>`
	s, err := ParseString(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, good := range []string{
		`<scores>1 2 3</scores>`,
		`<scores>42</scores>`,
		`<scores/>`,
		`<tags>ab cd efgh</tags>`,
	} {
		if err := s.Validate(xmltree.MustParseString(good)); err != nil {
			t.Errorf("%s should validate: %v", good, err)
		}
	}
	for _, bad := range []string{
		`<scores>1 two 3</scores>`,
		`<tags>toolong</tags>`,
	} {
		if err := s.Validate(xmltree.MustParseString(bad)); err == nil {
			t.Errorf("%s should fail", bad)
		}
	}
	if _, err := ParseString(`<schema><simpleType name="L"><list/></simpleType><element name="a" type="L"/></schema>`, Options{}); err == nil {
		t.Error("list without item type must fail")
	}
}

func TestListSubsumption(t *testing.T) {
	small := schema.NewListType(schema.NewSimpleType(schema.IntegerKind).WithMaxInclusive(10))
	big := schema.NewListType(schema.NewSimpleType(schema.IntegerKind))
	if !schema.SimpleSubsumed(small, big) {
		t.Fatal("list of small ints ⊆ list of ints")
	}
	if schema.SimpleSubsumed(big, small) {
		t.Fatal("list of ints ⊄ list of small ints")
	}
	scalar := schema.NewSimpleType(schema.IntegerKind)
	if schema.SimpleSubsumed(big, scalar) || schema.SimpleSubsumed(scalar, big) {
		t.Fatal("lists and scalars are incomparable (conservatively)")
	}
	if schema.SimpleDisjoint(big, scalar) {
		t.Fatal("lists never claim disjointness")
	}
}

func TestSimpleContent(t *testing.T) {
	src := `<schema>
	  <complexType name="Price">
	    <simpleContent>
	      <extension base="decimal">
	        <attribute name="currency" type="string"/>
	      </extension>
	    </simpleContent>
	  </complexType>
	  <complexType name="SmallPrice">
	    <simpleContent>
	      <restriction base="Price">
	        <maxInclusive value="10"/>
	        <attribute name="currency" type="string"/>
	      </restriction>
	    </simpleContent>
	  </complexType>
	  <element name="price" type="Price"/>
	  <element name="small" type="SmallPrice"/>
	</schema>`
	s, err := ParseString(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(xmltree.MustParseString(`<price currency="USD">12.50</price>`)); err != nil {
		t.Fatalf("simpleContent extension should carry the base value space: %v", err)
	}
	if err := s.Validate(xmltree.MustParseString(`<price>not-a-number</price>`)); err == nil {
		t.Fatal("non-decimal content must fail")
	}
	if err := s.Validate(xmltree.MustParseString(`<small>9.5</small>`)); err != nil {
		t.Fatalf("restricted simpleContent should accept in-range values: %v", err)
	}
	if err := s.Validate(xmltree.MustParseString(`<small>11</small>`)); err == nil {
		t.Fatal("restriction facet must apply")
	}
	// Element content under simpleContent types is invalid.
	if err := s.Validate(xmltree.MustParseString(`<price><x/></price>`)); err == nil {
		t.Fatal("element content under simpleContent must fail")
	}
}

func TestSimpleContentErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{`<schema><complexType name="P"><simpleContent/></complexType><element name="p" type="P"/></schema>`,
			"empty simpleContent"},
		{`<schema><complexType name="P"><simpleContent><extension/></simpleContent></complexType><element name="p" type="P"/></schema>`,
			"without base"},
		{`<schema>
		   <complexType name="C"><sequence><element name="x" type="string"/></sequence></complexType>
		   <complexType name="P"><simpleContent><extension base="C"/></simpleContent></complexType>
		   <element name="p" type="P"/></schema>`,
			"element content"},
		{`<schema><complexType name="P"><simpleContent><extension base="string"><sequence/></extension></simpleContent></complexType><element name="p" type="P"/></schema>`,
			"unexpected"},
	}
	for _, c := range cases {
		if _, err := ParseString(c.src, Options{}); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("error = %v, want containing %q", err, c.want)
		}
	}
}

func TestFacetErrorPaths(t *testing.T) {
	cases := []struct{ src, want string }{
		{`<schema><simpleType name="S"><restriction base="integer"><maxInclusive/></restriction></simpleType><element name="s" type="S"/></schema>`,
			"without value"},
		{`<schema><simpleType name="S"><restriction base="integer"><maxInclusive value="x"/></restriction></simpleType><element name="s" type="S"/></schema>`,
			"bad maxInclusive"},
		{`<schema><simpleType name="S"><restriction base="string"><minLength value="-1"/></restriction></simpleType><element name="s" type="S"/></schema>`,
			"bad minLength"},
		{`<schema><simpleType name="S"><restriction base="string"><bogusFacet value="1"/></restriction></simpleType><element name="s" type="S"/></schema>`,
			"unknown facet"},
		{`<schema><simpleType name="S"><restriction base="string"><totalDigits value="3"/></restriction></simpleType><element name="s" type="S"/></schema>`,
			"not supported"},
	}
	for _, c := range cases {
		if _, err := ParseString(c.src, Options{}); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("error = %v, want containing %q", err, c.want)
		}
	}
}

func TestIdentityConstraintErrorPaths(t *testing.T) {
	cases := []struct{ src, want string }{
		{`<schema><element name="a" type="string"><key><selector xpath="b"/><field xpath="c"/></key></element></schema>`,
			"no name"},
		{`<schema><element name="a" type="string"><keyref name="r"><selector xpath="b"/><field xpath="c"/></keyref></element></schema>`,
			"no refer"},
		{`<schema><element name="a" type="string"><key name="k"><selector xpath="b"/><selector xpath="c"/><field xpath="d"/></key></element></schema>`,
			"multiple selectors"},
		{`<schema><element name="a" type="string"><key name="k"><selector xpath="@b"/><field xpath="c"/></key></element></schema>`,
			"not allowed in a selector"},
		{`<schema><element name="a" type="string"><key name="k"><bogus/><selector xpath="b"/><field xpath="c"/></key></element></schema>`,
			"unexpected"},
	}
	for _, c := range cases {
		if _, err := ParseString(c.src, Options{}); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("error = %v, want containing %q", err, c.want)
		}
	}
}
