package baseline

import (
	"math/rand"
	"testing"

	"repro/internal/regexpsym"
	"repro/internal/schema"
	"repro/internal/wgen"
	"repro/internal/xmltree"
)

func TestValidateAgreesWithSchemaValidate(t *testing.T) {
	ps := wgen.NewPaperSchemas()
	rng := rand.New(rand.NewSource(3))
	for _, s := range []*schema.Schema{ps.Source1, ps.Target, ps.Source2} {
		v := New(s)
		gen := wgen.NewGenerator(s, rng)
		for i := 0; i < 40; i++ {
			doc, ok := gen.Document()
			if !ok {
				t.Fatal("generation failed")
			}
			_, errBase := v.Validate(doc)
			errRef := s.Validate(doc)
			if (errBase == nil) != (errRef == nil) {
				t.Fatalf("baseline %v vs reference %v on\n%s", errBase, errRef, doc)
			}
		}
	}
}

func TestValidateCountsEveryNode(t *testing.T) {
	ps := wgen.NewPaperSchemas()
	v := New(ps.Target)
	doc := wgen.PODocument(wgen.PODocOptions{Items: 10, IncludeBillTo: true, Seed: 1})
	st, err := v.Validate(doc)
	if err != nil {
		t.Fatal(err)
	}
	if st.NodesVisited() != int64(doc.Size()) {
		t.Fatalf("baseline visited %d nodes, tree has %d", st.NodesVisited(), doc.Size())
	}
	if st.AutomatonSteps == 0 {
		t.Fatal("content-model checks should take automaton steps")
	}
}

func TestValidateRejections(t *testing.T) {
	ps := wgen.NewPaperSchemas()
	v := New(ps.Target)
	if _, err := v.Validate(xmltree.NewText("x")); err == nil {
		t.Fatal("text root must fail")
	}
	if _, err := v.Validate(xmltree.NewElement("nope")); err == nil {
		t.Fatal("unknown root must fail")
	}
	// Unknown label inside.
	doc := wgen.PODocument(wgen.PODocOptions{Items: 2, IncludeBillTo: true, Seed: 2})
	doc.Children[0].AppendChild(xmltree.NewElement("bogus"))
	if _, err := v.Validate(doc); err == nil {
		t.Fatal("unknown child label must fail")
	}
	// Text inside element content.
	doc2 := wgen.PODocument(wgen.PODocOptions{Items: 2, IncludeBillTo: true, Seed: 2})
	doc2.Children[2].AppendChild(xmltree.NewText("stray"))
	if _, err := v.Validate(doc2); err == nil {
		t.Fatal("text in element content must fail")
	}
	// Incomplete content model.
	doc3 := wgen.PODocument(wgen.PODocOptions{Items: 2, IncludeBillTo: true, Seed: 2})
	doc3.Children[2].Children[0].RemoveChildAt(0) // drop productName from item
	if _, err := v.Validate(doc3); err == nil {
		t.Fatal("incomplete item content must fail")
	}
	// Facet violation.
	doc4 := wgen.PODocument(wgen.PODocOptions{Items: 2, IncludeBillTo: true, Seed: 2})
	doc4.Children[2].Children[0].Children[1].Children[0].Text = "120"
	if _, err := v.Validate(doc4); err == nil {
		t.Fatal("quantity 120 must fail")
	}
	// Multiple text children under a simple type.
	doc5 := wgen.PODocument(wgen.PODocOptions{Items: 1, IncludeBillTo: true, Seed: 2})
	name := doc5.Children[0].Children[0]
	name.AppendChild(xmltree.NewElement("x"))
	if _, err := v.Validate(doc5); err == nil {
		t.Fatal("element content under a simple type must fail")
	}
}

func TestValidateSkipsTombstones(t *testing.T) {
	ps := wgen.NewPaperSchemas()
	v := New(ps.Source1) // billTo optional
	doc := wgen.PODocument(wgen.PODocOptions{Items: 3, IncludeBillTo: true, Seed: 4})
	doc.Children[1].Delta = xmltree.DeltaDelete
	st, err := v.Validate(doc)
	if err != nil {
		t.Fatalf("tombstoned optional billTo should pass: %v", err)
	}
	// The tombstoned subtree is not visited.
	if st.NodesVisited() >= int64(doc.Size()) {
		t.Fatal("tombstoned subtree should not be counted")
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{ElementsVisited: 1, TextNodesVisited: 2, AutomatonSteps: 3}
	b := Stats{ElementsVisited: 10, TextNodesVisited: 20, AutomatonSteps: 30}
	a.Add(b)
	if a.ElementsVisited != 11 || a.TextNodesVisited != 22 || a.AutomatonSteps != 33 {
		t.Fatalf("Add wrong: %+v", a)
	}
	if a.NodesVisited() != 33 {
		t.Fatalf("NodesVisited = %d", a.NodesVisited())
	}
}

func TestNewPanicsOnUncompiled(t *testing.T) {
	s := schema.New(nil)
	if _, err := s.AddComplexType("T", regexpsym.Epsilon{}); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for uncompiled schema")
		}
	}()
	New(s)
}
