// Package baseline implements the comparator of the paper's experiments: a
// full revalidator in the mould of Xerces 2.4 — it traverses every node of
// the document and runs every content model through the target schema's
// DFAs, making no use of source-schema knowledge. Both the baseline and the
// schema-cast engine share the same tree representation, compiled automata
// and instrumentation, so their comparison isolates exactly the algorithmic
// difference the paper measures.
package baseline

import (
	"fmt"

	"repro/internal/fa"
	"repro/internal/schema"
	"repro/internal/xmltree"
)

// Stats counts the work a validation performed. The node counters are the
// machine-independent cost metric of the paper's Table 3.
type Stats struct {
	// ElementsVisited counts element nodes examined.
	ElementsVisited int64
	// TextNodesVisited counts χ leaves whose value was read.
	TextNodesVisited int64
	// AutomatonSteps counts DFA transitions taken during content-model
	// checks.
	AutomatonSteps int64
}

// NodesVisited is the total of element and text nodes examined — the
// quantity reported in Table 3.
func (s Stats) NodesVisited() int64 { return s.ElementsVisited + s.TextNodesVisited }

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.ElementsVisited += other.ElementsVisited
	s.TextNodesVisited += other.TextNodesVisited
	s.AutomatonSteps += other.AutomatonSteps
}

// Validator performs full validation against one schema.
type Validator struct {
	S *schema.Schema
}

// New returns a validator for a compiled schema.
func New(s *schema.Schema) *Validator {
	if !s.Compiled() {
		panic("baseline: schema must be compiled")
	}
	return &Validator{S: s}
}

// Validate fully validates the document, returning collected statistics
// alongside the verdict. Trees carrying Δ annotations are validated in
// their post-modification projection.
func (v *Validator) Validate(doc *xmltree.Node) (Stats, error) {
	var st Stats
	if doc.IsText() {
		return st, &schema.ValidationError{Path: "/", Reason: "root must be an element"}
	}
	st.ElementsVisited++
	τ := v.S.RootType(doc.Label)
	if τ == schema.NoType {
		return st, &schema.ValidationError{
			Path:   schema.NodePath(doc),
			Reason: fmt.Sprintf("label %q is not a permitted root", doc.Label),
		}
	}
	err := v.validateType(τ, doc, &st)
	return st, err
}

// ValidateType fully validates a subtree against a specific type,
// accumulating into st. The subtree's root element is assumed already
// counted by the caller (Validate counts it; recursive calls count children
// as they reach them).
func (v *Validator) ValidateType(τ schema.TypeID, e *xmltree.Node, st *Stats) error {
	return v.validateType(τ, e, st)
}

func (v *Validator) validateType(τ schema.TypeID, e *xmltree.Node, st *Stats) error {
	t := v.S.TypeOf(τ)
	if t.Simple {
		return v.validateSimple(t, e, st)
	}
	// Content-model check over live element children, scanned in place
	// (no per-node allocation — the comparator should be as lean as the
	// cast engine it is measured against).
	state := t.DFA.Start()
	for _, c := range e.Children {
		if c.Delta == xmltree.DeltaDelete {
			continue
		}
		if c.IsText() {
			st.TextNodesVisited++
			return &schema.ValidationError{
				Path:   schema.NodePath(e),
				Reason: fmt.Sprintf("type %q has element content but node has text content", t.Name),
			}
		}
		sym := v.S.Alpha.Lookup(c.Label)
		if sym == fa.NoSymbol {
			st.ElementsVisited++
			return &schema.ValidationError{
				Path:   schema.NodePath(c),
				Reason: fmt.Sprintf("label %q unknown to the schema", c.Label),
			}
		}
		state = t.DFA.Step(state, sym)
		st.AutomatonSteps++
		if state == fa.Dead {
			st.ElementsVisited++
			return &schema.ValidationError{
				Path:   schema.NodePath(c),
				Reason: fmt.Sprintf("child %q not allowed by content model of type %q", c.Label, t.Name),
			}
		}
	}
	if !t.DFA.IsAccept(state) {
		return &schema.ValidationError{
			Path:   schema.NodePath(e),
			Reason: fmt.Sprintf("children do not complete content model of type %q", t.Name),
		}
	}
	for _, c := range e.Children {
		if c.Delta == xmltree.DeltaDelete || c.IsText() {
			continue
		}
		st.ElementsVisited++
		if err := v.validateType(t.Child[v.S.Alpha.Lookup(c.Label)], c, st); err != nil {
			return err
		}
	}
	return nil
}

func (v *Validator) validateSimple(t *schema.Type, e *xmltree.Node, st *Stats) error {
	value := ""
	seen := 0
	for _, c := range e.Children {
		if c.Delta == xmltree.DeltaDelete {
			continue
		}
		if !c.IsText() {
			st.ElementsVisited++
			return &schema.ValidationError{
				Path:   schema.NodePath(e),
				Reason: fmt.Sprintf("type %q is simple: element content %q not allowed", t.Name, c.Label),
			}
		}
		st.TextNodesVisited++
		seen++
		if seen > 1 {
			return &schema.ValidationError{
				Path:   schema.NodePath(e),
				Reason: fmt.Sprintf("type %q is simple: multiple text children", t.Name),
			}
		}
		value = c.Text
	}
	if !t.Value.AcceptsValue(value) {
		return &schema.ValidationError{
			Path:   schema.NodePath(e),
			Reason: fmt.Sprintf("value %q does not satisfy simple type %q (%s)", value, t.Name, t.Value),
		}
	}
	return nil
}
