package xmlscan

import (
	"io"
	"sync"
)

// maxRetainedBuf caps the buffer capacity a released scanner keeps. A
// document with an unusually large token grows the scanner's buffers to
// hold it; retaining those across the pool would let one outlier pin
// memory for the rest of the process, so oversized buffers are dropped
// and the next use re-grows from the default size.
const maxRetainedBuf = 1 << 20

var scannerPool = sync.Pool{New: func() any { return new(Scanner) }}

// Get returns a pooled scanner reset onto r. Steady-state validations
// reuse the read window, name arena, and text buffers of earlier ones, so
// the per-document allocation cost is amortized to zero. Pair with
// Release.
func Get(r io.Reader) *Scanner {
	s := scannerPool.Get().(*Scanner)
	s.Reset(r)
	return s
}

// Release returns s to the pool. The caller must not use s, nor any Name
// or Text view obtained from it, after Release.
func (s *Scanner) Release() {
	s.rd = nil
	if cap(s.buf) > maxRetainedBuf {
		s.buf = nil
	}
	if cap(s.textBuf) > maxRetainedBuf {
		s.textBuf = nil
	}
	if cap(s.names) > maxRetainedBuf {
		s.names = nil
	}
	if cap(s.scratch) > maxRetainedBuf {
		s.scratch = nil
	}
	scannerPool.Put(s)
}
