package xmlscan

import (
	"errors"
	"io"
)

// ErrSkimDepth reports a subtree that opened more simultaneous elements
// than SkimLimits.MaxOpen allows.
var ErrSkimDepth = errors.New("xmlscan: skim depth limit exceeded")

// ErrSkimElements reports a skim that pushed the document's element count
// past SkimLimits.MaxTotalElements.
var ErrSkimElements = errors.New("xmlscan: skim element limit exceeded")

// SkimLimits bounds one SkimSubtree call. BaseOpen identifies the subtree:
// skimming ends when fewer than BaseOpen elements remain open (i.e. the
// element that was innermost when the skim began has closed). The other
// fields carry the caller's resource-governance state into the skim so a
// hostile subtree cannot hide from depth or element limits; zero values
// are unlimited.
type SkimLimits struct {
	// BaseOpen is the scanner's Depth() when the skim begins.
	BaseOpen int
	// MaxOpen caps simultaneously open elements (absolute, whole
	// document); exceeding it stops the skim with ErrSkimDepth.
	MaxOpen int
	// MaxTotalElements caps the document's total element count. The skim
	// adds its own count to BaseElements for the check, and exceeding the
	// cap stops the skim with ErrSkimElements after counting the element
	// that crossed it.
	MaxTotalElements int64
	// BaseElements is the number of elements the caller had already
	// counted when the skim began.
	BaseElements int64
	// ChunkElements pauses the skim (Done=false) after counting this many
	// elements in one call, so the caller can amortize cancellation
	// checks; resume by calling SkimSubtree again with the same BaseOpen.
	ChunkElements int
}

// SkimResult reports what one SkimSubtree call consumed.
type SkimResult struct {
	// Elements is the number of element start tags consumed by this call.
	Elements int64
	// MaxOpen is the largest open-element count reached (absolute), 0 if
	// no element was opened.
	MaxOpen int
	// Done is true when the subtree has fully closed; false means the
	// call paused at ChunkElements and the skim must be resumed.
	Done bool
}

// SkimSubtree consumes the rest of the innermost open subtree — every
// event through the matching end tag — without producing events. The
// input is still held to full well-formedness (tag matching, attribute
// syntax, character range, entity validity), so skimming never accepts
// bytes the event path would reject; it only skips the per-event
// bookkeeping. This is the streaming analogue of the tree caster's
// skipped subtree: the bytes flow, the validation work does not.
func (s *Scanner) SkimSubtree(lim SkimLimits) (SkimResult, error) {
	var res SkimResult
	if s.err != nil {
		return res, s.err
	}
	if s.pendingEnd && len(s.frames) >= lim.BaseOpen {
		// The subtree root itself was self-closing.
		s.pendingEnd = false
		top := s.frames[len(s.frames)-1]
		s.frames = s.frames[:len(s.frames)-1]
		s.names = s.names[:top.off]
	}
	for len(s.frames) >= lim.BaseOpen {
		if lim.ChunkElements > 0 && res.Elements >= int64(lim.ChunkElements) {
			return res, nil
		}
		if _, err := s.textRun(false); err != nil {
			s.err = err
			return res, err
		}
		b, ok := s.getc()
		if !ok {
			if s.readErr != io.EOF {
				s.err = s.readErr
				return res, s.err
			}
			s.err = s.syntaxf("unexpected EOF")
			return res, s.err
		}
		_ = b // always '<': textRun stops only there
		b, err := s.mustgetc()
		if err != nil {
			s.err = err
			return res, err
		}
		switch b {
		case '/':
			if _, err := s.endTag(); err != nil {
				return res, err
			}
		case '?':
			if err := s.procInst(); err != nil {
				s.err = err
				return res, err
			}
		case '!':
			isCData, err := s.bang()
			if err != nil {
				s.err = err
				return res, err
			}
			if isCData {
				if err := s.textInto(-1, true, false); err != nil {
					s.err = err
					return res, err
				}
			}
		default:
			s.ungetc()
			if _, err := s.startTag(); err != nil {
				return res, err
			}
			res.Elements++
			open := len(s.frames)
			if lim.MaxOpen > 0 && open > lim.MaxOpen {
				s.err = ErrSkimDepth
				return res, s.err
			}
			if lim.MaxTotalElements > 0 && lim.BaseElements+res.Elements > lim.MaxTotalElements {
				s.err = ErrSkimElements
				return res, s.err
			}
			if open > res.MaxOpen {
				res.MaxOpen = open
			}
			if s.pendingEnd {
				s.pendingEnd = false
				top := s.frames[len(s.frames)-1]
				s.frames = s.frames[:len(s.frames)-1]
				s.names = s.names[:top.off]
			}
		}
	}
	res.Done = true
	return res, nil
}
