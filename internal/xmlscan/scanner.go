// Package xmlscan is a byte-level XML tokenizer built for the validation
// hot path. It emits only the three event kinds the streaming validators
// consume — element start, element end, and character data — and exposes
// names and text as []byte views so a walker can resolve labels against an
// interned alphabet without allocating. Attributes are scanned for
// well-formedness but never materialized; comments, processing
// instructions and doctype declarations are consumed internally.
//
// The scanner deliberately mirrors encoding/xml's strict-mode acceptance
// behavior (entity handling, character-range checks, \r normalization,
// namespace-name shape, tag matching), so a walker built on it accepts and
// rejects exactly the documents an encoding/xml walker does; the
// differential fuzz targets in internal/stream hold the two
// implementations to that contract. One intentional difference: the
// scanner skips a single UTF-8 byte-order mark at offset 0, and the
// encoding/xml walkers compensate by stripping the same prefix.
//
// Well-formedness that encoding/xml enforces above the tokenizer — end
// tags matching their start tags, no unclosed elements at EOF — is
// enforced here too, so a walker never sees an unbalanced event stream.
package xmlscan

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"unicode"
	"unicode/utf8"
)

// Event is the kind of item Next produced.
type Event int

const (
	// EventEOF means the document is complete; no further events follow.
	EventEOF Event = iota
	// EventStart is an element start tag; Name holds its local name.
	EventStart
	// EventEnd is an element end tag (including the synthetic end of a
	// self-closing tag); Name holds its local name.
	EventEnd
	// EventText is one run of character data (text, decoded entities, or
	// a CDATA section); Text holds the decoded bytes.
	EventText
)

// SyntaxError reports malformed XML with the input byte offset where the
// scanner gave up.
type SyntaxError struct {
	Msg    string
	Offset int64
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("XML syntax error at byte %d: %s", e.Offset, e.Msg)
}

// errNoName is an internal marker: the current position does not begin a
// name. Callers translate it into a context-specific syntax error.
var errNoName = errors.New("xmlscan: not a name")

const defaultBufSize = 8 << 10

// nameFrame records one open element: its raw tag name lives at
// names[off:off+n], and the local part (after any namespace prefix)
// starts at off+local.
type nameFrame struct {
	off, n, local int
}

// Scanner tokenizes one XML document from an io.Reader. It is not safe
// for concurrent use. The []byte views returned by Name and Text are
// valid only until the next Scanner method call.
type Scanner struct {
	rd  io.Reader
	buf []byte // read window; buf[pos:end] is unconsumed input
	pos int
	end int

	readErr error // deferred reader error (io.EOF or a real failure)
	base    int64 // input offset of buf[0]
	err     error // sticky: first error returned, or io.EOF after a clean end

	names  []byte      // arena of raw open-element names, stack order
	frames []nameFrame // open elements, root first

	textBuf []byte // owned storage for decoded text and attribute values
	scratch []byte // owned storage for end-tag and attribute names

	name []byte // local name of the last start/end event
	text []byte // bytes of the last text event

	pendingEnd bool // a self-closing tag owes its EndElement
	started    bool // the offset-0 BOM check has run
}

// NewScanner returns a scanner reading one document from r.
func NewScanner(r io.Reader) *Scanner {
	s := &Scanner{}
	s.Reset(r)
	return s
}

// Reset rewinds the scanner onto a new document, retaining its buffers.
func (s *Scanner) Reset(r io.Reader) {
	s.rd = r
	s.pos, s.end = 0, 0
	s.readErr = nil
	s.base = 0
	s.err = nil
	s.names = s.names[:0]
	s.frames = s.frames[:0]
	s.name, s.text = nil, nil
	s.pendingEnd = false
	s.started = false
	if s.buf == nil {
		s.buf = make([]byte, defaultBufSize)
	}
}

// Name returns the local name of the last start or end event. The view is
// valid until the next Scanner method call.
func (s *Scanner) Name() []byte { return s.name }

// Text returns the decoded bytes of the last text event. The view is
// valid until the next Scanner method call.
func (s *Scanner) Text() []byte { return s.text }

// Depth reports the number of currently open elements.
func (s *Scanner) Depth() int { return len(s.frames) }

// InputOffset reports the byte offset of the current scan position.
func (s *Scanner) InputOffset() int64 { return s.base + int64(s.pos) }

func (s *Scanner) syntaxf(format string, args ...any) error {
	return &SyntaxError{Msg: fmt.Sprintf(format, args...), Offset: s.InputOffset()}
}

// fill makes at least one more byte available at buf[pos:end], compacting
// the window and growing the buffer when a token spans it. It returns
// false at EOF or on a reader error (left in readErr).
func (s *Scanner) fill() bool {
	if s.readErr != nil {
		return false
	}
	if s.pos > 0 {
		n := copy(s.buf, s.buf[s.pos:s.end])
		s.base += int64(s.pos)
		s.pos, s.end = 0, n
	}
	if s.end == len(s.buf) {
		grown := make([]byte, 2*len(s.buf))
		copy(grown, s.buf[:s.end])
		s.buf = grown
	}
	for {
		n, err := s.rd.Read(s.buf[s.end:])
		s.end += n
		if err != nil {
			s.readErr = err
			return n > 0
		}
		if n > 0 {
			return true
		}
	}
}

// getc consumes one byte. ok is false at EOF or on a reader error.
func (s *Scanner) getc() (byte, bool) {
	if s.pos >= s.end && !s.fill() {
		return 0, false
	}
	b := s.buf[s.pos]
	s.pos++
	return b, true
}

// ungetc puts back the byte just consumed by getc. It is valid only
// immediately after a successful getc, before any other scanner call.
func (s *Scanner) ungetc() { s.pos-- }

// eofErr is the error for input ending inside a token: the reader's own
// failure if there was one, otherwise a syntax error, mirroring
// encoding/xml's mustgetc.
func (s *Scanner) eofErr() error {
	if s.readErr != nil && s.readErr != io.EOF {
		return s.readErr
	}
	return s.syntaxf("unexpected EOF")
}

func (s *Scanner) mustgetc() (byte, error) {
	if b, ok := s.getc(); ok {
		return b, nil
	}
	return 0, s.eofErr()
}

// space consumes XML whitespace (space, tab, CR, LF).
func (s *Scanner) space() {
	for {
		if s.pos >= s.end && !s.fill() {
			return
		}
		switch s.buf[s.pos] {
		case ' ', '\r', '\n', '\t':
			s.pos++
		default:
			return
		}
	}
}

// fail records err as the scanner's sticky error and returns it.
func (s *Scanner) fail(err error) (Event, error) {
	s.err = err
	return EventEOF, err
}

// Next returns the next start, end, or text event, EventEOF with a nil
// error at the clean end of the document, or EventEOF with the error that
// ended the scan. After an error every call returns the same error.
func (s *Scanner) Next() (Event, error) {
	if s.err != nil {
		if s.err == io.EOF {
			return EventEOF, nil
		}
		return EventEOF, s.err
	}
	if s.pendingEnd {
		s.pendingEnd = false
		return s.popFrame()
	}
	if !s.started {
		s.started = true
		s.skipBOM()
	}
	for {
		hasText, err := s.textRun(true)
		if err != nil {
			return s.fail(err)
		}
		if hasText {
			return EventText, nil
		}
		// The run ended at '<' or at end of input.
		b, ok := s.getc()
		if !ok {
			if s.readErr != io.EOF {
				return s.fail(s.readErr)
			}
			if len(s.frames) > 0 {
				return s.fail(s.syntaxf("unexpected EOF"))
			}
			s.err = io.EOF
			return EventEOF, nil
		}
		_ = b // always '<': textRun stops only there
		b, err = s.mustgetc()
		if err != nil {
			return s.fail(err)
		}
		switch b {
		case '/':
			return s.endTag()
		case '?':
			if err := s.procInst(); err != nil {
				return s.fail(err)
			}
		case '!':
			isCData, err := s.bang()
			if err != nil {
				return s.fail(err)
			}
			if isCData {
				if err := s.textInto(-1, true, true); err != nil {
					return s.fail(err)
				}
				if len(s.text) > 0 {
					return EventText, nil
				}
			}
		default:
			s.ungetc()
			return s.startTag()
		}
	}
}

// skipBOM consumes a single UTF-8 byte-order mark at offset 0.
func (s *Scanner) skipBOM() {
	for s.end-s.pos < 3 && s.readErr == nil {
		if !s.fill() {
			break
		}
	}
	if s.end-s.pos >= 3 && s.buf[s.pos] == 0xEF && s.buf[s.pos+1] == 0xBB && s.buf[s.pos+2] == 0xBF {
		s.pos += 3
	}
}

// textSlow marks bytes a character-data fast path cannot take as-is:
// control characters (illegal or needing \r normalization), '&' (entity),
// ']' (potential "]]>"), and all non-ASCII (UTF-8 validation).
var textSlow = func() (t [256]bool) {
	for i := 0; i < 0x20; i++ {
		t[i] = true
	}
	t['\t'], t['\n'] = false, false
	t['&'], t[']'] = true, true
	for i := 0x80; i < 256; i++ {
		t[i] = true
	}
	return
}()

// textRun consumes character data up to the next '<' (left unconsumed) or
// end of input. With store it records the decoded bytes in s.text and
// reports whether any text was produced; without, the data is validated
// and discarded.
func (s *Scanner) textRun(store bool) (bool, error) {
	s.text = nil
	if s.pos >= s.end && !s.fill() {
		return false, nil
	}
	// Fast path: a complete run of plain ASCII ending at a '<' inside the
	// window needs no decoding, no normalization, and no copying. Text
	// runs are typically a few bytes, so one merged scan beats an
	// IndexByte call (whose setup cost outweighs short scans) followed by
	// a cleanliness pass.
	win := s.buf[s.pos:s.end]
	for i := 0; i < len(win); i++ {
		c := win[i]
		if c == '<' {
			s.pos += i
			if store && i > 0 {
				s.text = win[:i]
				return true, nil
			}
			return false, nil
		}
		if textSlow[c] {
			break
		}
	}
	if err := s.textInto(-1, false, store); err != nil {
		return false, err
	}
	return store && len(s.text) > 0, nil
}

// textInto is the general character-data scanner, mirroring encoding/xml's
// text(quote, cdata). quote < 0 scans plain text up to an unconsumed '<'
// or end of input; quote >= 0 scans a quoted attribute value up to the
// consumed quote byte; cdata scans to a consumed "]]>". Decoded bytes
// land in s.textBuf (and s.text when store is set) and are checked
// against the XML character range.
func (s *Scanner) textInto(quote int, cdata bool, store bool) error {
	var b0, b1 byte
	dst := s.textBuf[:0]
	for {
		b, ok := s.getc()
		if !ok {
			if s.readErr != io.EOF {
				return s.readErr
			}
			if cdata {
				return s.syntaxf("unexpected EOF in CDATA section")
			}
			if quote >= 0 {
				return s.eofErr()
			}
			break
		}
		if quote < 0 && b0 == ']' && b1 == ']' && b == '>' {
			if cdata {
				dst = dst[:len(dst)-2]
				break
			}
			return s.syntaxf("unescaped ]]> not in CDATA section")
		}
		if b == '<' && !cdata {
			if quote >= 0 {
				return s.syntaxf("unescaped < inside quoted string")
			}
			s.ungetc()
			break
		}
		if quote >= 0 && b == byte(quote) {
			break
		}
		if b == '&' && !cdata {
			var err error
			dst, err = s.entity(dst)
			if err != nil {
				return err
			}
			b0, b1 = 0, 0
			continue
		}
		// Rewrite unescaped \r and \r\n into \n.
		if b == '\r' {
			dst = append(dst, '\n')
		} else if b1 == '\r' && b == '\n' {
			// already wrote \n
		} else {
			dst = append(dst, b)
		}
		b0, b1 = b1, b
	}
	s.textBuf = dst
	if err := s.validateChars(dst); err != nil {
		return err
	}
	if store {
		s.text = dst
	}
	return nil
}

// entity decodes one character or named entity reference (the '&' is
// already consumed) and appends its expansion to dst.
func (s *Scanner) entity(dst []byte) ([]byte, error) {
	b, err := s.mustgetc()
	if err != nil {
		return dst, err
	}
	if b == '#' {
		base := uint64(10)
		b, err = s.mustgetc()
		if err != nil {
			return dst, err
		}
		if b == 'x' {
			base = 16
			b, err = s.mustgetc()
			if err != nil {
				return dst, err
			}
		}
		var n uint64
		digits, overflow := 0, false
		for {
			var d uint64
			switch {
			case '0' <= b && b <= '9':
				d = uint64(b - '0')
			case base == 16 && 'a' <= b && b <= 'f':
				d = uint64(b-'a') + 10
			case base == 16 && 'A' <= b && b <= 'F':
				d = uint64(b-'A') + 10
			default:
				goto digitsDone
			}
			digits++
			if n > unicode.MaxRune {
				overflow = true
			} else {
				n = n*base + d
			}
			b, err = s.mustgetc()
			if err != nil {
				return dst, err
			}
		}
	digitsDone:
		if b != ';' {
			s.ungetc()
			return dst, s.syntaxf("invalid character entity (no semicolon)")
		}
		if digits == 0 || overflow || n > unicode.MaxRune {
			return dst, s.syntaxf("invalid character entity")
		}
		// utf8.AppendRune encodes surrogates as U+FFFD, matching
		// string(rune(n)).
		return utf8.AppendRune(dst, rune(n)), nil
	}
	s.ungetc()
	var tmp [8]byte
	nameLen, tooLong := 0, false
	for {
		b, err = s.mustgetc()
		if err != nil {
			return dst, err
		}
		if !isNameByte(b) && b < utf8.RuneSelf {
			break
		}
		if nameLen < len(tmp) {
			tmp[nameLen] = b
			nameLen++
		} else {
			tooLong = true
		}
	}
	if b != ';' {
		s.ungetc()
		return dst, s.syntaxf("invalid character entity (no semicolon)")
	}
	if !tooLong {
		var r byte
		switch string(tmp[:nameLen]) {
		case "lt":
			r = '<'
		case "gt":
			r = '>'
		case "amp":
			r = '&'
		case "apos":
			r = '\''
		case "quot":
			r = '"'
		}
		if r != 0 {
			return append(dst, r), nil
		}
	}
	return dst, s.syntaxf("invalid character entity")
}

// validateChars rejects invalid UTF-8 and characters outside the XML
// character range, mirroring the scan encoding/xml runs on decoded text.
func (s *Scanner) validateChars(data []byte) error {
	for i := 0; i < len(data); {
		if c := data[i]; c < utf8.RuneSelf {
			if c >= 0x20 || c == '\t' || c == '\n' || c == '\r' {
				i++
				continue
			}
			return s.syntaxf("illegal character code %U", rune(c))
		}
		r, size := utf8.DecodeRune(data[i:])
		if r == utf8.RuneError && size == 1 {
			return s.syntaxf("invalid UTF-8")
		}
		if !inCharRange(r) {
			return s.syntaxf("illegal character code %U", r)
		}
		i += size
	}
	return nil
}

// inCharRange reports whether r is in the XML 1.0 Char production.
func inCharRange(r rune) bool {
	return r == 0x09 || r == 0x0A || r == 0x0D ||
		r >= 0x20 && r <= 0xD7FF ||
		r >= 0xE000 && r <= 0xFFFD ||
		r >= 0x10000 && r <= 0x10FFFF
}

// isNameByte reports whether b may appear in a name (ASCII part of the
// NameChar class; multi-byte runes are validated separately).
func isNameByte(b byte) bool {
	return 'A' <= b && b <= 'Z' || 'a' <= b && b <= 'z' ||
		'0' <= b && b <= '9' ||
		b == '_' || b == ':' || b == '.' || b == '-'
}

// readName consumes one name and appends its raw bytes to dst. A leading
// non-name byte is left unconsumed and reported as errNoName; input
// ending during or immediately after the name is an unexpected-EOF error,
// matching encoding/xml's readName.
func (s *Scanner) readName(dst []byte) ([]byte, error) {
	b, ok := s.getc()
	if !ok {
		return dst, s.eofErr()
	}
	if b < utf8.RuneSelf && !isNameByte(b) {
		s.ungetc()
		return dst, errNoName
	}
	dst = append(dst, b)
	for {
		i := s.pos
		for i < s.end {
			if c := s.buf[i]; c < utf8.RuneSelf && !isNameByte(c) {
				dst = append(dst, s.buf[s.pos:i]...)
				s.pos = i
				return dst, nil
			}
			i++
		}
		dst = append(dst, s.buf[s.pos:i]...)
		s.pos = i
		if !s.fill() {
			return dst, s.eofErr()
		}
	}
}

// checkName reports whether raw is a well-formed XML name. The scanner
// only admits name bytes in the ASCII range, so the fast path needs to
// vet just the first byte.
func checkName(raw []byte) bool {
	if len(raw) == 0 {
		return false
	}
	ascii := true
	for _, b := range raw {
		if b >= utf8.RuneSelf {
			ascii = false
			break
		}
	}
	if ascii {
		b := raw[0]
		return 'A' <= b && b <= 'Z' || 'a' <= b && b <= 'z' || b == '_' || b == ':'
	}
	c, n := utf8.DecodeRune(raw)
	if c == utf8.RuneError && n == 1 || !unicode.Is(nameFirst, c) {
		return false
	}
	for i := n; i < len(raw); i += n {
		c, n = utf8.DecodeRune(raw[i:])
		if c == utf8.RuneError && n == 1 {
			return false
		}
		if !unicode.Is(nameFirst, c) && !unicode.Is(nameRest, c) {
			return false
		}
	}
	return true
}

// localOffset locates the local part of a possibly prefixed name,
// mirroring encoding/xml's nsname: more than one colon is malformed, and
// the name splits only when both halves are non-empty.
func localOffset(raw []byte) (int, bool) {
	// Names are a handful of bytes; plain loops beat IndexByte's call
	// setup at these lengths.
	i := 0
	for i < len(raw) && raw[i] != ':' {
		i++
	}
	if i == len(raw) {
		return 0, true
	}
	for j := i + 1; j < len(raw); j++ {
		if raw[j] == ':' {
			return 0, false
		}
	}
	if i == 0 || i == len(raw)-1 {
		return 0, true
	}
	return i + 1, true
}

// parseNSName reads and validates one element or attribute name,
// appending its raw bytes to dst and returning the local-part offset.
// errNoName (bad first byte, or a malformed prefix shape) is returned for
// the caller to wrap with context.
func (s *Scanner) parseNSName(dst []byte) ([]byte, int, error) {
	// Fast path: an all-ASCII name with a valid first byte and at most one
	// colon, ending inside the buffered window. One scan replaces
	// readName's byte-wise copy loop, checkName's re-walk and
	// localOffset's colon search. Anything unusual — non-ASCII, a second
	// colon, a window boundary, a bad first byte — falls through to the
	// general path for the exact shared error behavior.
	if s.pos < s.end {
		win := s.buf[s.pos:s.end]
		if c := win[0]; 'A' <= c && c <= 'Z' || 'a' <= c && c <= 'z' || c == '_' || c == ':' {
			colon := -1
			if c == ':' {
				colon = 0
			}
			i := 1
			for i < len(win) {
				c := win[i]
				if c >= utf8.RuneSelf || !isNameByte(c) {
					break
				}
				if c == ':' {
					if colon >= 0 {
						colon = -2 // second colon: malformed shape
						break
					}
					colon = i
				}
				i++
			}
			if i < len(win) && win[i] < utf8.RuneSelf && colon != -2 {
				dst = append(dst, win[:i]...)
				s.pos += i
				local := 0
				if colon > 0 && colon < i-1 {
					local = colon + 1
				}
				return dst, local, nil
			}
		}
	}
	start := len(dst)
	dst, err := s.readName(dst)
	if err != nil {
		return dst, 0, err
	}
	raw := dst[start:]
	if !checkName(raw) {
		return dst, 0, s.syntaxf("invalid XML name: %s", raw)
	}
	local, ok := localOffset(raw)
	if !ok {
		return dst, 0, errNoName
	}
	return dst, local, nil
}

// startTag parses an element tag from just after '<', pushes its frame,
// and returns EventStart. A self-closing tag owes an EventEnd on the next
// call.
func (s *Scanner) startTag() (Event, error) {
	off := len(s.names)
	names, local, err := s.parseNSName(s.names)
	s.names = names
	if err != nil {
		if err == errNoName {
			err = s.syntaxf("expected element name after <")
		}
		return s.fail(err)
	}
	n := len(s.names) - off
	// Fast path for the overwhelmingly common attribute-less "<name>".
	if s.pos < s.end && s.buf[s.pos] == '>' {
		s.pos++
		s.frames = append(s.frames, nameFrame{off: off, n: n, local: local})
		s.name = s.names[off+local : off+n]
		return EventStart, nil
	}
	for {
		s.space()
		b, err := s.mustgetc()
		if err != nil {
			return s.fail(err)
		}
		if b == '/' {
			b, err = s.mustgetc()
			if err != nil {
				return s.fail(err)
			}
			if b != '>' {
				return s.fail(s.syntaxf("expected /> in element"))
			}
			s.pendingEnd = true
			break
		}
		if b == '>' {
			break
		}
		s.ungetc()
		if err := s.attr(); err != nil {
			return s.fail(err)
		}
	}
	s.frames = append(s.frames, nameFrame{off: off, n: n, local: local})
	s.name = s.names[off+local : off+n]
	return EventStart, nil
}

// attr parses one attribute, validating its name and value without
// keeping either.
func (s *Scanner) attr() error {
	scratch, _, err := s.parseNSName(s.scratch[:0])
	s.scratch = scratch
	if err != nil {
		if err == errNoName {
			err = s.syntaxf("expected attribute name in element")
		}
		return err
	}
	s.space()
	b, err := s.mustgetc()
	if err != nil {
		return err
	}
	if b != '=' {
		return s.syntaxf("attribute name without = in element")
	}
	s.space()
	b, err = s.mustgetc()
	if err != nil {
		return err
	}
	if b != '"' && b != '\'' {
		return s.syntaxf("unquoted or missing attribute value in element")
	}
	// Fast path: a clean ASCII value ending at its quote inside the window
	// needs no decoding. ']' and '&' fall through to the full scanner (']'
	// is legal in attribute values but the table is shared with text), as
	// does '<' (illegal here — textInto reports it).
	win := s.buf[s.pos:s.end]
	for i := 0; i < len(win); i++ {
		c := win[i]
		if c == b {
			s.pos += i + 1
			return nil
		}
		if textSlow[c] || c == '<' {
			break
		}
	}
	return s.textInto(int(b), false, false)
}

// endTag parses an end tag from just after "</", requires it to close the
// innermost open element, and pops that element's frame.
func (s *Scanner) endTag() (Event, error) {
	// Fast path: a well-formed end tag is exactly the innermost open
	// element's raw name followed by '>', and that name is already in the
	// arena — no parsing, validation or copying needed when the buffered
	// window matches it byte for byte. Anything else (whitespace before
	// '>', a short buffer, a genuinely wrong tag) falls through to the
	// full parse, which produces the identical result or error.
	if n := len(s.frames); n > 0 {
		top := s.frames[n-1]
		if s.end-s.pos > top.n && s.buf[s.pos+top.n] == '>' &&
			bytes.Equal(s.buf[s.pos:s.pos+top.n], s.names[top.off:top.off+top.n]) {
			s.pos += top.n + 1
			return s.popFrame()
		}
	}
	scratch, _, err := s.parseNSName(s.scratch[:0])
	s.scratch = scratch
	if err != nil {
		if err == errNoName {
			err = s.syntaxf("expected element name after </")
		}
		return s.fail(err)
	}
	s.space()
	b, err := s.mustgetc()
	if err != nil {
		return s.fail(err)
	}
	if b != '>' {
		return s.fail(s.syntaxf("invalid characters between </%s and >", s.scratch))
	}
	if len(s.frames) == 0 {
		return s.fail(s.syntaxf("unexpected end element </%s>", s.scratch))
	}
	top := s.frames[len(s.frames)-1]
	if !bytes.Equal(s.scratch, s.names[top.off:top.off+top.n]) {
		return s.fail(s.syntaxf("element <%s> closed by </%s>",
			s.names[top.off:top.off+top.n], s.scratch))
	}
	return s.popFrame()
}

// popFrame closes the innermost open element, setting Name to its local
// name (the arena bytes stay valid until the next call appends).
func (s *Scanner) popFrame() (Event, error) {
	top := s.frames[len(s.frames)-1]
	s.frames = s.frames[:len(s.frames)-1]
	s.name = s.names[top.off+top.local : top.off+top.n]
	s.names = s.names[:top.off]
	return EventEnd, nil
}

// procInst consumes a processing instruction from just after "<?",
// enforcing the version and encoding restrictions encoding/xml applies to
// the xml declaration.
func (s *Scanner) procInst() error {
	scratch, err := s.readName(s.scratch[:0])
	s.scratch = scratch
	if err != nil {
		if err == errNoName {
			return s.syntaxf("expected target name after <?")
		}
		return err
	}
	if !checkName(s.scratch) {
		return s.syntaxf("invalid XML name: %s", s.scratch)
	}
	isXML := string(s.scratch) == "xml"
	s.space()
	var body []byte
	if isXML {
		body = s.textBuf[:0]
	}
	var b0 byte
	for {
		b, err := s.mustgetc()
		if err != nil {
			return err
		}
		if isXML {
			body = append(body, b)
		}
		if b0 == '?' && b == '>' {
			break
		}
		b0 = b
	}
	if isXML {
		s.textBuf = body
		content := string(body[:len(body)-2])
		if ver := procInstParam("version", content); ver != "" && ver != "1.0" {
			return s.syntaxf("unsupported version %q; only version 1.0 is supported", ver)
		}
		if enc := procInstParam("encoding", content); enc != "" && !equalFoldASCII(enc, "utf-8") {
			return s.syntaxf("encoding %q declared but only UTF-8 is supported", enc)
		}
	}
	return nil
}

// procInstParam extracts a pseudo-attribute from an xml declaration body,
// ported from encoding/xml's procInst so quirky inputs parse identically.
func procInstParam(param, s string) string {
	param = param + "="
	lenp := len(param)
	i := 0
	var sep byte
	for i < len(s) {
		sub := s[i:]
		k := indexString(sub, param)
		if k < 0 || lenp+k >= len(sub) {
			return ""
		}
		i += lenp + k + 1
		if c := sub[lenp+k]; c == '\'' || c == '"' {
			sep = c
			break
		}
	}
	if sep == 0 {
		return ""
	}
	j := indexByteString(s[i:], sep)
	if j < 0 {
		return ""
	}
	return s[i : i+j]
}

func indexString(s, sub string) int {
	return bytes.Index([]byte(s), []byte(sub))
}

func indexByteString(s string, b byte) int {
	return bytes.IndexByte([]byte(s), b)
}

func equalFoldASCII(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

// bang consumes markup after "<!": a comment, a directive, or — when it
// reports isCData — the "<![CDATA[" opener, leaving the section body for
// the caller.
func (s *Scanner) bang() (isCData bool, err error) {
	b, err := s.mustgetc()
	if err != nil {
		return false, err
	}
	switch b {
	case '-':
		if b, err = s.mustgetc(); err != nil {
			return false, err
		}
		if b != '-' {
			return false, s.syntaxf("invalid sequence <!- not part of <!--")
		}
		return false, s.comment()
	case '[':
		for i := 0; i < 6; i++ {
			if b, err = s.mustgetc(); err != nil {
				return false, err
			}
			if b != "CDATA["[i] {
				return false, s.syntaxf("invalid <![ sequence")
			}
		}
		return true, nil
	}
	return false, s.directive()
}

// comment consumes a comment body up to "-->"; "--" not followed by '>'
// is malformed, as in encoding/xml.
func (s *Scanner) comment() error {
	var b0, b1 byte
	for {
		b, err := s.mustgetc()
		if err != nil {
			return err
		}
		if b0 == '-' && b1 == '-' {
			if b != '>' {
				return s.syntaxf(`invalid sequence "--" not allowed in comments`)
			}
			return nil
		}
		b0, b1 = b1, b
	}
}

// directive consumes a <!DOCTYPE ...>-style declaration, counting nested
// angle brackets outside quotes and skipping embedded comments — a
// faithful port of encoding/xml's directive loop, including its quirk
// that the first body byte receives no quote or bracket handling.
func (s *Scanner) directive() error {
	var inquote byte
	depth := 0
	for {
		b, err := s.mustgetc()
		if err != nil {
			return err
		}
		if inquote == 0 && b == '>' && depth == 0 {
			return nil
		}
	handleB:
		switch {
		case b == inquote && inquote != 0:
			inquote = 0
		case inquote != 0:
			// in quotes, no special action
		case b == '\'' || b == '"':
			inquote = b
		case b == '>':
			depth--
		case b == '<':
			for i := 0; i < 3; i++ {
				if b, err = s.mustgetc(); err != nil {
					return err
				}
				if b != "!--"[i] {
					depth++
					goto handleB
				}
			}
			var b0, b1 byte
			for {
				if b, err = s.mustgetc(); err != nil {
					return err
				}
				if b0 == '-' && b1 == '-' && b == '>' {
					break
				}
				b0, b1 = b1, b
			}
		}
	}
}
