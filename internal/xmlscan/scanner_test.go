package xmlscan

import (
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"
)

// tokenize runs the scanner over doc and flattens the result: one
// "s:name"/"e:name" entry per element event, all text concatenated, and
// the terminal error (nil on clean EOF).
func tokenize(doc string) (events []string, text string, err error) {
	s := NewScanner(strings.NewReader(doc))
	var sb strings.Builder
	for {
		ev, err := s.Next()
		switch ev {
		case EventStart:
			events = append(events, "s:"+string(s.Name()))
		case EventEnd:
			events = append(events, "e:"+string(s.Name()))
		case EventText:
			sb.Write(s.Text())
		case EventEOF:
			return events, sb.String(), err
		}
	}
}

// tokenizeStd flattens an encoding/xml token stream the same way.
func tokenizeStd(doc string) (events []string, text string, err error) {
	dec := xml.NewDecoder(strings.NewReader(doc))
	var sb strings.Builder
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			return events, sb.String(), nil
		}
		if err != nil {
			return events, sb.String(), err
		}
		switch t := tok.(type) {
		case xml.StartElement:
			events = append(events, "s:"+t.Name.Local)
		case xml.EndElement:
			events = append(events, "e:"+t.Name.Local)
		case xml.CharData:
			sb.Write(t)
		}
	}
}

// differentialCases covers the grammar the scanner must agree with
// encoding/xml on: verdict, element events, and decoded text.
var differentialCases = []string{
	// Plain structure.
	`<a/>`,
	`<a></a>`,
	`<a><b/><c></c></a>`,
	`<a>text</a>`,
	`<root xmlns="http://x">ok</root>`,
	"  \n\t<a/>\n  ",
	// Attributes.
	`<a x="1" y='2'/>`,
	`<a x="a&amp;b"/>`,
	`<a x="tab&#9;end"/>`,
	`<a x="br]]>ok"/>`, // ]]> is legal inside quoted values
	`<a x = "spaced" />`,
	`<a x="multi
line"/>`,
	// Entities and character references.
	`<a>&lt;&gt;&amp;&apos;&quot;</a>`,
	`<a>&#65;&#x42;</a>`,
	`<a>&#xD800;</a>`, // surrogate ref decodes to U+FFFD, accepted
	`<a>&#0;</a>`,     // decodes to NUL, rejected by the char range
	`<a>&#x110000;</a>`,
	`<a>&bogus;</a>`,
	`<a>&lt</a>`,
	`<a>&;</a>`,
	`<a>&#;</a>`,
	`<a>&#xZZ;</a>`,
	// CDATA.
	`<a><![CDATA[<not><parsed>&amp;]]></a>`,
	`<a><![CDATA[]]></a>`,
	`<a><![CDATA[a]]b]]></a>`,
	`<a><![CDATA[unterminated</a>`,
	`<a><![CDAT[x]]></a>`,
	// Comments, PIs, directives.
	`<!-- c --><a/><!-- d -->`,
	`<a><!-- inner --></a>`,
	`<a><!-- -- --></a>`, // "--" inside a comment is malformed
	`<?xml version="1.0"?><a/>`,
	`<?xml version="1.0" encoding="UTF-8"?><a/>`,
	`<?xml version="2.0"?><a/>`,
	`<?xml encoding="latin1"?><a/>`,
	`<?pi anything ?'" here?><a/>`,
	`<!DOCTYPE doc [<!ELEMENT doc (#PCDATA)>]><doc/>`,
	`<!DOCTYPE doc [<!-- a > comment --> ]><doc/>`,
	`<!DOCTYPE d "un>balanced quotes"><d/>`,
	// Line endings and character range.
	"<a>line1\r\nline2\rline3</a>",
	"<a>ok\ttab</a>",
	"<a>bad\x01char</a>",
	"<a>bad\xffutf8</a>",
	"<a>\xc3\xa9</a>", // valid two-byte UTF-8
	// Namespace-shaped names.
	`<p:a></p:a>`,
	`<p:a></q:a>`,
	`<a:b:c/>`,
	`<:a/>`,
	`<a:/>`,
	// Malformed structure.
	`<a><b></a></b>`,
	`</a>`,
	`<a>`,
	`<a><b>`,
	`<a/><a/>`, // two roots: fine at token level
	`<a/>trailing`,
	`<a/>  `,
	`<a]]></a>`,
	`<a>]]></a>`,
	`<a x=1/>`,
	`<a x/>`,
	`<a x="unterminated></a>`,
	`<a x="lt<bad"/>`,
	`<1a/>`,
	`<a !></a>`,
	`<a`,
	`<`,
	``,
	`garbage only`,
	"\xff\xfe\x00<not xml",
}

func TestScannerMatchesEncodingXML(t *testing.T) {
	for _, doc := range differentialCases {
		ev, text, err := tokenize(doc)
		evStd, textStd, errStd := tokenizeStd(doc)
		if (err == nil) != (errStd == nil) {
			t.Errorf("%q: verdict mismatch: scanner err=%v, encoding/xml err=%v", doc, err, errStd)
			continue
		}
		if err != nil {
			continue // both rejected; messages are allowed to differ
		}
		if fmt.Sprint(ev) != fmt.Sprint(evStd) {
			t.Errorf("%q: events %v, want %v", doc, ev, evStd)
		}
		if text != textStd {
			t.Errorf("%q: text %q, want %q", doc, text, textStd)
		}
	}
}

func TestScannerSkipsLeadingBOM(t *testing.T) {
	ev, text, err := tokenize("\xef\xbb\xbf<a>x</a>")
	if err != nil {
		t.Fatalf("BOM document rejected: %v", err)
	}
	if fmt.Sprint(ev) != "[s:a e:a]" || text != "x" {
		t.Fatalf("BOM document tokenized as %v / %q", ev, text)
	}
	// Only the very first bytes are a BOM; elsewhere U+FEFF is text.
	_, text, err = tokenize("<a>\xef\xbb\xbfx</a>")
	if err != nil || text != "\uFEFFx" {
		t.Fatalf("interior BOM: text %q err %v", text, err)
	}
}

func TestScannerErrorsAreSyntaxErrors(t *testing.T) {
	for _, doc := range []string{`<a><b></a></b>`, `</a>`, `<a>&bogus;</a>`, `<a>`} {
		_, _, err := tokenize(doc)
		var se *SyntaxError
		if !errors.As(err, &se) {
			t.Errorf("%q: error %v is not a *SyntaxError", doc, err)
		}
	}
}

func TestScannerStickyError(t *testing.T) {
	s := NewScanner(strings.NewReader(`</a>`))
	_, err1 := s.Next()
	_, err2 := s.Next()
	if err1 == nil || err1 != err2 {
		t.Fatalf("sticky error broken: first %v, second %v", err1, err2)
	}
}

type errReader struct {
	data string
	err  error
	done bool
}

func (r *errReader) Read(p []byte) (int, error) {
	if r.done {
		return 0, r.err
	}
	r.done = true
	return copy(p, r.data), nil
}

func TestScannerSurfacesReaderError(t *testing.T) {
	boom := errors.New("boom")
	s := NewScanner(&errReader{data: `<a><b>text`, err: boom})
	for {
		_, err := s.Next()
		if err != nil {
			if !errors.Is(err, boom) {
				t.Fatalf("reader error lost: got %v", err)
			}
			return
		}
	}
}

// advanceTo drives s until the start event for the named element.
func advanceTo(t *testing.T, s *Scanner, name string) {
	t.Helper()
	for {
		ev, err := s.Next()
		if err != nil || ev == EventEOF {
			t.Fatalf("never reached <%s>: ev=%v err=%v", name, ev, err)
		}
		if ev == EventStart && string(s.Name()) == name {
			return
		}
	}
}

func TestSkimSubtree(t *testing.T) {
	doc := `<r><keep>1</keep><skip a="v"><x><!-- c --><y>t</y><![CDATA[<raw>]]></x><z/></skip><after/></r>`
	s := NewScanner(strings.NewReader(doc))
	advanceTo(t, s, "skip")
	res, err := s.SkimSubtree(SkimLimits{BaseOpen: s.Depth()})
	if err != nil {
		t.Fatalf("skim: %v", err)
	}
	if !res.Done || res.Elements != 3 {
		t.Fatalf("skim result %+v, want Done with 3 elements (x, y, z)", res)
	}
	if res.MaxOpen != 4 { // r, skip, x, y
		t.Fatalf("skim MaxOpen %d, want 4", res.MaxOpen)
	}
	// The next event must be <after/> at depth 1.
	ev, err := s.Next()
	if err != nil || ev != EventStart || string(s.Name()) != "after" {
		t.Fatalf("after skim: ev=%v name=%q err=%v", ev, s.Name(), err)
	}
}

func TestSkimSubtreeSelfClosing(t *testing.T) {
	s := NewScanner(strings.NewReader(`<r><skip/><after/></r>`))
	advanceTo(t, s, "skip")
	res, err := s.SkimSubtree(SkimLimits{BaseOpen: s.Depth()})
	if err != nil || !res.Done || res.Elements != 0 {
		t.Fatalf("self-closing skim: %+v err=%v", res, err)
	}
	ev, err := s.Next()
	if err != nil || ev != EventStart || string(s.Name()) != "after" {
		t.Fatalf("after skim: ev=%v name=%q err=%v", ev, s.Name(), err)
	}
}

func TestSkimSubtreeChunked(t *testing.T) {
	var sb strings.Builder
	sb.WriteString(`<r><skip>`)
	for i := 0; i < 10; i++ {
		sb.WriteString(`<item x="1">v</item>`)
	}
	sb.WriteString(`</skip></r>`)
	s := NewScanner(strings.NewReader(sb.String()))
	advanceTo(t, s, "skip")
	base := s.Depth()
	var total int64
	calls := 0
	for {
		res, err := s.SkimSubtree(SkimLimits{BaseOpen: base, ChunkElements: 3})
		if err != nil {
			t.Fatalf("chunked skim: %v", err)
		}
		total += res.Elements
		calls++
		if res.Done {
			break
		}
		if res.Elements != 3 {
			t.Fatalf("chunk consumed %d elements, want 3", res.Elements)
		}
	}
	if total != 10 || calls != 5 { // 3+3+3+1(+final empty Done)… 4 chunks reach 10, 4th is Done
		if total != 10 {
			t.Fatalf("chunked skim counted %d elements, want 10", total)
		}
	}
}

func TestSkimSubtreeLimits(t *testing.T) {
	deep := `<r><skip>` + strings.Repeat(`<d>`, 50) + strings.Repeat(`</d>`, 50) + `</skip></r>`
	s := NewScanner(strings.NewReader(deep))
	advanceTo(t, s, "skip")
	res, err := s.SkimSubtree(SkimLimits{BaseOpen: s.Depth(), MaxOpen: 10})
	if !errors.Is(err, ErrSkimDepth) {
		t.Fatalf("deep skim: err=%v, want ErrSkimDepth", err)
	}
	if res.MaxOpen > 10 {
		t.Fatalf("recorded MaxOpen %d ignores the limit 10", res.MaxOpen)
	}

	wide := `<r><skip>` + strings.Repeat(`<i/>`, 50) + `</skip></r>`
	s = NewScanner(strings.NewReader(wide))
	advanceTo(t, s, "skip")
	res, err = s.SkimSubtree(SkimLimits{BaseOpen: s.Depth(), MaxTotalElements: 20, BaseElements: 2})
	if !errors.Is(err, ErrSkimElements) {
		t.Fatalf("wide skim: err=%v, want ErrSkimElements", err)
	}
	if res.Elements != 19 { // 2 base + 19th crossed 20? count fires after counting the crosser: 2+18=20 ok, 2+19=21 > 20
		t.Fatalf("wide skim counted %d elements before stopping, want 19", res.Elements)
	}
}

func TestSkimSubtreeRejectsMalformedInterior(t *testing.T) {
	for _, doc := range []string{
		`<r><skip><a></b></skip></r>`,
		`<r><skip><a>&bad;</a></skip></r>`,
		`<r><skip><a x=nope/></skip></r>`,
		`<r><skip>]]></skip></r>`,
		`<r><skip><a>`,
	} {
		s := NewScanner(strings.NewReader(doc))
		advanceTo(t, s, "skip")
		if _, err := s.SkimSubtree(SkimLimits{BaseOpen: s.Depth()}); err == nil {
			t.Errorf("%q: skim accepted a malformed subtree", doc)
		}
	}
}

func TestPoolReuse(t *testing.T) {
	for i := 0; i < 100; i++ {
		s := Get(strings.NewReader(`<a x="1">text</a>`))
		for {
			ev, err := s.Next()
			if err != nil {
				t.Fatalf("pooled scan: %v", err)
			}
			if ev == EventEOF {
				break
			}
		}
		s.Release()
	}
}
