package telemetry

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

func TestRuntimeCollectorExposesFamilies(t *testing.T) {
	reg := NewRegistry()
	c := NewRuntimeCollector(reg, 0) // one construction-time sample, no goroutine
	defer c.Stop()

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, family := range []string{
		"go_goroutines",
		"go_threads",
		"go_memstats_heap_alloc_bytes",
		"go_memstats_stack_inuse_bytes",
		"go_memstats_sys_bytes",
		"go_memstats_next_gc_bytes",
		"go_memstats_mallocs_total",
		"go_gc_cycles_total",
		"go_gc_pause_seconds_bucket",
		"go_sched_latencies_seconds_bucket",
		"go_cgo_calls_total",
		"castd_runtime_samples_total",
		"castd_runtime_last_sample_timestamp_seconds",
	} {
		if !strings.Contains(out, "\n"+family) {
			t.Errorf("scrape is missing family %s", family)
		}
	}
	if strings.Contains(out, "\ngo_goroutines 0\n") {
		t.Error("go_goroutines should be non-zero after the construction-time sample")
	}
	if strings.Contains(out, "\ngo_memstats_heap_alloc_bytes 0\n") {
		t.Error("heap alloc bytes should be non-zero after the construction-time sample")
	}
}

func TestRuntimeCollectorSampleProgress(t *testing.T) {
	reg := NewRegistry()
	c := NewRuntimeCollector(reg, 0)
	defer c.Stop()

	before := c.samplesTaken.Load()
	if before != 1 {
		t.Fatalf("construction should take exactly one sample, got %d", before)
	}
	// Force GC cycles so the pause histogram has deltas to bridge.
	for i := 0; i < 3; i++ {
		runtime.GC()
	}
	c.Sample()
	if got := c.samplesTaken.Load(); got != before+1 {
		t.Fatalf("samples taken = %d, want %d", got, before+1)
	}
	if c.gcPauses.Count() == 0 {
		t.Error("GC pause histogram has no observations after forced GC cycles")
	}
	if c.gcCycles.Load() == 0 {
		t.Error("gc cycle counter still zero after forced GC cycles")
	}
	if ts := c.lastSampleUnixNano.Load(); time.Since(time.Unix(0, ts)) > time.Minute {
		t.Errorf("last-sample timestamp is stale: %v", time.Unix(0, ts))
	}
}

func TestRuntimeCollectorStartStop(t *testing.T) {
	reg := NewRegistry()
	c := NewRuntimeCollector(reg, time.Millisecond)
	c.Start()
	deadline := time.Now().Add(2 * time.Second)
	for c.samplesTaken.Load() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := c.samplesTaken.Load(); got < 3 {
		t.Fatalf("ticker took only %d samples in 2s at 1ms interval", got)
	}
	c.Stop()
	c.Stop() // idempotent
	after := c.samplesTaken.Load()
	time.Sleep(10 * time.Millisecond)
	if got := c.samplesTaken.Load(); got != after {
		t.Fatalf("collector sampled after Stop: %d -> %d", after, got)
	}
}

func TestRuntimeCollectorNilSafe(t *testing.T) {
	var c *RuntimeCollector
	c.Start()
	c.Sample()
	c.Stop()
}

func TestHistogramObserveN(t *testing.T) {
	h := newHistogram([]float64{1, 10, 100})
	h.ObserveN(5, 3)
	h.ObserveN(1000, 2)
	h.ObserveN(0.5, 0)  // no-op
	h.ObserveN(0.5, -4) // no-op
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	if got := h.Sum(); got != 5*3+1000*2 {
		t.Fatalf("sum = %v, want %v", got, 5*3+1000*2)
	}
	want := []int64{0, 3, 0, 2} // buckets: <=1, <=10, <=100, +Inf
	for i, b := range h.BucketCounts() {
		if b != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, b, want[i], h.BucketCounts())
		}
	}
}

func TestSamplesFamilies(t *testing.T) {
	reg := NewRegistry()
	reg.CounterSamples("pairs_seconds_total", "per-pair seconds", []string{"pair"},
		func() []Sample {
			return []Sample{
				{Labels: []string{"bbb"}, Value: 2},
				{Labels: []string{"aaa"}, Value: 1.5},
				{Labels: []string{"zzz", "extra"}, Value: 9}, // malformed: skipped
			}
		})
	reg.GaugeSamples("pairs_ratio", "per-pair ratio", []string{"pair"},
		func() []Sample { return nil })

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	wantOrder := []string{
		"# TYPE pairs_seconds_total counter",
		`pairs_seconds_total{pair="aaa"} 1.5`,
		`pairs_seconds_total{pair="bbb"} 2`,
		"# TYPE pairs_ratio gauge",
	}
	last := -1
	for _, w := range wantOrder {
		idx := strings.Index(out, w)
		if idx < 0 {
			t.Fatalf("scrape missing %q:\n%s", w, out)
		}
		if idx < last {
			t.Fatalf("scrape out of order at %q:\n%s", w, out)
		}
		last = idx
	}
	if strings.Contains(out, "zzz") {
		t.Error("malformed sample (wrong label arity) must be skipped")
	}
}
