package otlp

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/telemetry"
)

// OTLP/HTTP JSON encoding of the repo's native telemetry shapes
// (TraceData, FamilySnapshot), following the proto3 JSON mapping the
// collector expects: trace/span ids as lowercase hex, 64-bit integers and
// nanosecond timestamps as decimal strings, enums as numbers.

type otlpKeyValue struct {
	Key   string    `json:"key"`
	Value otlpValue `json:"value"`
}

type otlpValue struct {
	StringValue *string  `json:"stringValue,omitempty"`
	BoolValue   *bool    `json:"boolValue,omitempty"`
	IntValue    *string  `json:"intValue,omitempty"`
	DoubleValue *float64 `json:"doubleValue,omitempty"`
}

func otlpAttr(key string, value any) otlpKeyValue {
	kv := otlpKeyValue{Key: key}
	switch v := value.(type) {
	case string:
		kv.Value.StringValue = &v
	case bool:
		kv.Value.BoolValue = &v
	case int:
		s := strconv.FormatInt(int64(v), 10)
		kv.Value.IntValue = &s
	case int64:
		s := strconv.FormatInt(v, 10)
		kv.Value.IntValue = &s
	case uint64:
		s := strconv.FormatUint(v, 10)
		kv.Value.IntValue = &s
	case float64:
		kv.Value.DoubleValue = &v
	case json.Number:
		s := v.String()
		if strings.ContainsAny(s, ".eE") {
			if f, err := v.Float64(); err == nil {
				kv.Value.DoubleValue = &f
				return kv
			}
		}
		kv.Value.IntValue = &s
	default:
		s := fmt.Sprint(v)
		kv.Value.StringValue = &s
	}
	return kv
}

func otlpAttrs(attrs []telemetry.Attr) []otlpKeyValue {
	if len(attrs) == 0 {
		return nil
	}
	out := make([]otlpKeyValue, 0, len(attrs))
	for _, a := range attrs {
		out = append(out, otlpAttr(a.Key, a.Value))
	}
	return out
}

func resourceAttrs(resource map[string]string) []otlpKeyValue {
	keys := make([]string, 0, len(resource))
	for k := range resource {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]otlpKeyValue, 0, len(keys))
	for _, k := range keys {
		out = append(out, otlpAttr(k, resource[k]))
	}
	return out
}

func unixNano(t time.Time) string { return strconv.FormatInt(t.UnixNano(), 10) }

const scopeName = "castd"

type otlpScope struct {
	Name string `json:"name"`
}

type otlpResource struct {
	Attributes []otlpKeyValue `json:"attributes,omitempty"`
}

// --- traces ---

type otlpStatus struct {
	Code    int    `json:"code,omitempty"` // 2 = STATUS_CODE_ERROR
	Message string `json:"message,omitempty"`
}

type otlpEvent struct {
	TimeUnixNano string         `json:"timeUnixNano"`
	Name         string         `json:"name"`
	Attributes   []otlpKeyValue `json:"attributes,omitempty"`
}

type otlpLink struct {
	TraceID string `json:"traceId"`
	SpanID  string `json:"spanId"`
}

type otlpSpan struct {
	TraceID           string         `json:"traceId"`
	SpanID            string         `json:"spanId"`
	ParentSpanID      string         `json:"parentSpanId,omitempty"`
	Name              string         `json:"name"`
	Kind              int            `json:"kind"` // 1 internal, 2 server
	StartTimeUnixNano string         `json:"startTimeUnixNano"`
	EndTimeUnixNano   string         `json:"endTimeUnixNano"`
	Attributes        []otlpKeyValue `json:"attributes,omitempty"`
	Events            []otlpEvent    `json:"events,omitempty"`
	Links             []otlpLink     `json:"links,omitempty"`
	Status            otlpStatus     `json:"status"`
}

type otlpScopeSpans struct {
	Scope otlpScope  `json:"scope"`
	Spans []otlpSpan `json:"spans"`
}

type otlpResourceSpans struct {
	Resource   otlpResource     `json:"resource"`
	ScopeSpans []otlpScopeSpans `json:"scopeSpans"`
}

type tracesPayload struct {
	ResourceSpans []otlpResourceSpans `json:"resourceSpans"`
}

// encodeTraces renders retained traces as one OTLP/JSON export request.
func encodeTraces(traces []*telemetry.TraceData, resource map[string]string) []byte {
	spans := make([]otlpSpan, 0, len(traces)*4)
	for _, td := range traces {
		for i, sd := range td.Spans {
			os := otlpSpan{
				TraceID:           sd.TraceID,
				SpanID:            sd.SpanID,
				ParentSpanID:      sd.ParentID,
				Name:              sd.Name,
				Kind:              1, // SPAN_KIND_INTERNAL
				StartTimeUnixNano: unixNano(sd.Start),
				EndTimeUnixNano:   unixNano(sd.Start.Add(time.Duration(sd.DurationNS))),
				Attributes:        otlpAttrs(sd.Attrs),
			}
			if i == 0 {
				os.Kind = 2 // the request root: SPAN_KIND_SERVER
			}
			for _, ev := range sd.Events {
				os.Events = append(os.Events, otlpEvent{
					TimeUnixNano: unixNano(ev.Time),
					Name:         ev.Name,
					Attributes:   otlpAttrs(ev.Attrs),
				})
			}
			for _, l := range sd.Links {
				tid, sid, ok := strings.Cut(l, ":")
				if !ok {
					continue
				}
				os.Links = append(os.Links, otlpLink{TraceID: tid, SpanID: sid})
			}
			if sd.Error != "" {
				os.Status = otlpStatus{Code: 2, Message: sd.Error}
			}
			spans = append(spans, os)
		}
	}
	body, _ := json.Marshal(tracesPayload{ResourceSpans: []otlpResourceSpans{{
		Resource:   otlpResource{Attributes: resourceAttrs(resource)},
		ScopeSpans: []otlpScopeSpans{{Scope: otlpScope{Name: scopeName}, Spans: spans}},
	}}})
	return body
}

// --- metrics ---

type otlpExemplar struct {
	TimeUnixNano string  `json:"timeUnixNano,omitempty"`
	AsDouble     float64 `json:"asDouble"`
	TraceID      string  `json:"traceId,omitempty"`
	SpanID       string  `json:"spanId,omitempty"`
}

type otlpNumberPoint struct {
	Attributes   []otlpKeyValue `json:"attributes,omitempty"`
	TimeUnixNano string         `json:"timeUnixNano"`
	AsDouble     float64        `json:"asDouble"`
}

type otlpHistogramPoint struct {
	Attributes     []otlpKeyValue `json:"attributes,omitempty"`
	TimeUnixNano   string         `json:"timeUnixNano"`
	Count          string         `json:"count"`
	Sum            float64        `json:"sum"`
	BucketCounts   []string       `json:"bucketCounts,omitempty"`
	ExplicitBounds []float64      `json:"explicitBounds,omitempty"`
	Exemplars      []otlpExemplar `json:"exemplars,omitempty"`
}

type otlpSum struct {
	DataPoints             []otlpNumberPoint `json:"dataPoints"`
	AggregationTemporality int               `json:"aggregationTemporality"` // 2 = cumulative
	IsMonotonic            bool              `json:"isMonotonic"`
}

type otlpGauge struct {
	DataPoints []otlpNumberPoint `json:"dataPoints"`
}

type otlpHistogram struct {
	DataPoints             []otlpHistogramPoint `json:"dataPoints"`
	AggregationTemporality int                  `json:"aggregationTemporality"`
}

type otlpMetric struct {
	Name        string         `json:"name"`
	Description string         `json:"description,omitempty"`
	Sum         *otlpSum       `json:"sum,omitempty"`
	Gauge       *otlpGauge     `json:"gauge,omitempty"`
	Histogram   *otlpHistogram `json:"histogram,omitempty"`
}

type otlpScopeMetrics struct {
	Scope   otlpScope    `json:"scope"`
	Metrics []otlpMetric `json:"metrics"`
}

type otlpResourceMetrics struct {
	Resource     otlpResource       `json:"resource"`
	ScopeMetrics []otlpScopeMetrics `json:"scopeMetrics"`
}

type metricsPayload struct {
	ResourceMetrics []otlpResourceMetrics `json:"resourceMetrics"`
}

func pointAttrs(labels map[string]string) []otlpKeyValue {
	if len(labels) == 0 {
		return nil
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]otlpKeyValue, 0, len(keys))
	for _, k := range keys {
		out = append(out, otlpAttr(k, labels[k]))
	}
	return out
}

// encodeMetrics renders one registry snapshot as an OTLP/JSON export
// request stamped at time at.
func encodeMetrics(fams []telemetry.FamilySnapshot, resource map[string]string, at time.Time) []byte {
	ts := unixNano(at)
	metrics := make([]otlpMetric, 0, len(fams))
	for _, f := range fams {
		m := otlpMetric{Name: f.Name, Description: f.Help}
		switch f.Type {
		case "histogram":
			h := &otlpHistogram{AggregationTemporality: 2}
			for _, s := range f.Samples {
				p := otlpHistogramPoint{
					Attributes:   pointAttrs(s.Labels),
					TimeUnixNano: ts,
					Count:        strconv.FormatInt(s.Count, 10),
					Sum:          s.Sum,
				}
				for _, b := range s.Buckets {
					p.BucketCounts = append(p.BucketCounts, strconv.FormatInt(b.Count, 10))
					if b.LE != "+Inf" {
						if bound, err := strconv.ParseFloat(b.LE, 64); err == nil {
							p.ExplicitBounds = append(p.ExplicitBounds, bound)
						}
					}
					if e := b.Exemplar; e != nil {
						ox := otlpExemplar{AsDouble: e.Value, TraceID: e.TraceID, SpanID: e.SpanID}
						if !e.Time.IsZero() {
							ox.TimeUnixNano = unixNano(e.Time)
						}
						p.Exemplars = append(p.Exemplars, ox)
					}
				}
				h.DataPoints = append(h.DataPoints, p)
			}
			m.Histogram = h
		case "counter":
			sum := &otlpSum{AggregationTemporality: 2, IsMonotonic: true}
			for _, s := range f.Samples {
				sum.DataPoints = append(sum.DataPoints, otlpNumberPoint{
					Attributes: pointAttrs(s.Labels), TimeUnixNano: ts, AsDouble: s.Value,
				})
			}
			m.Sum = sum
		default: // gauge
			g := &otlpGauge{}
			for _, s := range f.Samples {
				g.DataPoints = append(g.DataPoints, otlpNumberPoint{
					Attributes: pointAttrs(s.Labels), TimeUnixNano: ts, AsDouble: s.Value,
				})
			}
			m.Gauge = g
		}
		metrics = append(metrics, m)
	}
	body, _ := json.Marshal(metricsPayload{ResourceMetrics: []otlpResourceMetrics{{
		Resource:     otlpResource{Attributes: resourceAttrs(resource)},
		ScopeMetrics: []otlpScopeMetrics{{Scope: otlpScope{Name: scopeName}, Metrics: metrics}},
	}}})
	return body
}
