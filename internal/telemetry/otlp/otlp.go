// Package otlp exports castd's retained traces and metric snapshots to an
// OpenTelemetry collector over OTLP/HTTP JSON — stdlib only, like every
// other layer of the telemetry stack.
//
// The exporter is a single background goroutine behind a bounded queue.
// Signals arrive from two producers: the tail sampler's retention hook
// (every trace that lands in /debug/traces is also enqueued here, so the
// collector sees exactly what the operator can see locally) and a ticker
// that snapshots the metric registry every Interval. The queue drops
// oldest on overflow — under collector outage the freshest telemetry is
// the telemetry worth keeping — and every fate is self-accounted in
// castd_otlp_* families so the exporter's own health shows up on the same
// /metrics page it exports.
//
// Failure handling follows the OTLP spec's retryable/non-retryable split:
// 429/5xx (and transport errors) are retried with exponential backoff plus
// jitter, honoring Retry-After when the collector sends one; other 4xx
// responses are counted as rejected and dropped immediately, because
// resending a payload the collector has already refused only amplifies
// the outage. Close flushes what is queued — including a final metric
// snapshot — before the goroutine exits, so a drained daemon never
// strands its last batch.
package otlp

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
	"repro/internal/telemetry"
)

// Defaults applied by New when the corresponding option is zero.
const (
	DefaultInterval   = 10 * time.Second
	DefaultQueueSize  = 1024
	DefaultBatchSize  = 64
	DefaultMaxRetries = 5
	defaultBackoff    = 200 * time.Millisecond
)

// Options configure an Exporter.
type Options struct {
	// Endpoint is the collector base URL (e.g. http://collector:4318);
	// signals POST to Endpoint + /v1/traces and /v1/metrics. Empty
	// disables the exporter: New returns nil.
	Endpoint string
	// Interval between metric registry snapshots (and periodic flushes);
	// 0 means DefaultInterval.
	Interval time.Duration
	// QueueSize bounds the pending-item queue; 0 means DefaultQueueSize.
	QueueSize int
	// BatchSize triggers an early flush when this many items are queued;
	// 0 means DefaultBatchSize.
	BatchSize int
	// MaxRetries bounds send attempts per batch beyond the first;
	// 0 means DefaultMaxRetries.
	MaxRetries int
	// Gather snapshots the metric registry; nil disables metric export.
	Gather func() []telemetry.FamilySnapshot
	// Resource key/values stamped on every export (service.name etc.).
	Resource map[string]string
	// Client is the HTTP client; nil uses a 10s-timeout client.
	Client *http.Client

	// backoffBase and now are test seams.
	backoffBase time.Duration
	now         func() time.Time
}

// Stats is a point-in-time snapshot of the exporter's self-accounting.
type Stats struct {
	ExportedSpans   uint64 `json:"exportedSpans"`
	ExportedMetrics uint64 `json:"exportedMetrics"`
	DroppedFull     uint64 `json:"droppedFull"`
	DroppedRetry    uint64 `json:"droppedRetry"`
	DroppedRejected uint64 `json:"droppedRejected"`
	Retries         uint64 `json:"retries"`
	QueueDepth      int    `json:"queueDepth"`
}

// item is one queued export unit: a retained trace or a metric snapshot.
type item struct {
	trace   *telemetry.TraceData
	metrics []telemetry.FamilySnapshot
}

// Exporter ships traces and metrics to one OTLP/HTTP endpoint. A nil
// *Exporter is a disabled exporter: every method no-ops, so callers wire
// it unconditionally.
type Exporter struct {
	endpoint    string
	interval    time.Duration
	queueSize   int
	batchSize   int
	maxRetries  int
	backoffBase time.Duration
	gather      func() []telemetry.FamilySnapshot
	resource    map[string]string
	client      *http.Client
	now         func() time.Time

	exportedSpans   atomic.Uint64
	exportedMetrics atomic.Uint64
	droppedFull     atomic.Uint64
	droppedRetry    atomic.Uint64
	droppedRejected atomic.Uint64
	retries         atomic.Uint64

	mu    sync.Mutex
	queue []item

	wake      chan struct{}
	stop      chan struct{}
	done      chan struct{}
	closeOnce sync.Once
}

// New builds and starts an exporter, or returns nil when no endpoint is
// configured.
func New(opts Options) *Exporter {
	if opts.Endpoint == "" {
		return nil
	}
	e := &Exporter{
		endpoint:    opts.Endpoint,
		interval:    opts.Interval,
		queueSize:   opts.QueueSize,
		batchSize:   opts.BatchSize,
		maxRetries:  opts.MaxRetries,
		backoffBase: opts.backoffBase,
		gather:      opts.Gather,
		resource:    opts.Resource,
		client:      opts.Client,
		now:         opts.now,
		wake:        make(chan struct{}, 1),
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
	}
	if e.interval <= 0 {
		e.interval = DefaultInterval
	}
	if e.queueSize <= 0 {
		e.queueSize = DefaultQueueSize
	}
	if e.batchSize <= 0 {
		e.batchSize = DefaultBatchSize
	}
	if e.maxRetries <= 0 {
		e.maxRetries = DefaultMaxRetries
	}
	if e.backoffBase <= 0 {
		e.backoffBase = defaultBackoff
	}
	if e.client == nil {
		e.client = &http.Client{Timeout: 10 * time.Second}
	}
	if e.now == nil {
		e.now = time.Now
	}
	go e.loop()
	return e
}

// ExportTrace enqueues one retained trace; this is the function handed to
// Tracer.OnRetain. Nil-safe on both sides.
func (e *Exporter) ExportTrace(td *telemetry.TraceData) {
	if e == nil || td == nil {
		return
	}
	e.enqueue(item{trace: td})
}

// ExportMetrics snapshots the registry now and enqueues the result;
// exposed for tests and the final drain flush. Nil-safe.
func (e *Exporter) ExportMetrics() {
	if e == nil || e.gather == nil {
		return
	}
	fams := e.gather()
	if len(fams) == 0 {
		return
	}
	e.enqueue(item{metrics: fams})
}

func (e *Exporter) enqueue(it item) {
	e.mu.Lock()
	if len(e.queue) >= e.queueSize {
		// Drop-oldest: shift rather than reject, so the queue always holds
		// the freshest telemetry when the collector comes back.
		copy(e.queue, e.queue[1:])
		e.queue = e.queue[:len(e.queue)-1]
		e.droppedFull.Add(1)
	}
	e.queue = append(e.queue, it)
	depth := len(e.queue)
	e.mu.Unlock()
	if depth >= e.batchSize {
		select {
		case e.wake <- struct{}{}:
		default:
		}
	}
}

// Stats snapshots the self-accounting counters. Nil-safe.
func (e *Exporter) Stats() Stats {
	if e == nil {
		return Stats{}
	}
	e.mu.Lock()
	depth := len(e.queue)
	e.mu.Unlock()
	return Stats{
		ExportedSpans:   e.exportedSpans.Load(),
		ExportedMetrics: e.exportedMetrics.Load(),
		DroppedFull:     e.droppedFull.Load(),
		DroppedRetry:    e.droppedRetry.Load(),
		DroppedRejected: e.droppedRejected.Load(),
		Retries:         e.retries.Load(),
		QueueDepth:      depth,
	}
}

// Register exposes the exporter's self-accounting as castd_otlp_*
// families. Safe to call on a nil exporter — the families then exist at
// zero, per the repo's "families exist from birth" exposition rule.
func (e *Exporter) Register(reg *telemetry.Registry) {
	reg.CounterSamples("castd_otlp_exported_total",
		"Telemetry batches exported to the OTLP collector, by signal.",
		[]string{"signal"}, func() []telemetry.Sample {
			st := e.Stats()
			return []telemetry.Sample{
				{Labels: []string{"metrics"}, Value: float64(st.ExportedMetrics)},
				{Labels: []string{"spans"}, Value: float64(st.ExportedSpans)},
			}
		})
	reg.CounterSamples("castd_otlp_dropped_total",
		"Telemetry items dropped before reaching the collector, by reason.",
		[]string{"reason"}, func() []telemetry.Sample {
			st := e.Stats()
			return []telemetry.Sample{
				{Labels: []string{"queue_full"}, Value: float64(st.DroppedFull)},
				{Labels: []string{"rejected"}, Value: float64(st.DroppedRejected)},
				{Labels: []string{"retry_exhausted"}, Value: float64(st.DroppedRetry)},
			}
		})
	reg.CounterFunc("castd_otlp_retries_total",
		"OTLP send attempts beyond the first, across all batches.",
		func() float64 { return float64(e.Stats().Retries) })
	reg.GaugeFunc("castd_otlp_queue_depth",
		"Telemetry items waiting in the OTLP export queue.",
		func() float64 { return float64(e.Stats().QueueDepth) })
}

// Close flushes the queue (plus a final metric snapshot) and stops the
// background goroutine, blocking until it has exited. Nil-safe and
// idempotent.
func (e *Exporter) Close() {
	if e == nil {
		return
	}
	e.closeOnce.Do(func() { close(e.stop) })
	<-e.done
}

func (e *Exporter) loop() {
	defer close(e.done)
	ticker := time.NewTicker(e.interval)
	defer ticker.Stop()
	for {
		select {
		case <-e.stop:
			e.ExportMetrics() // the drain snapshot: ship the final numbers
			e.flush(true)
			return
		case <-ticker.C:
			e.ExportMetrics()
			e.flush(false)
		case <-e.wake:
			e.flush(false)
		}
	}
}

// flush drains the queue, sending one traces batch and one metrics batch
// per drain pass. final marks the Close-time flush, whose retry waits must
// not block shutdown on a dead collector.
func (e *Exporter) flush(final bool) {
	for {
		e.mu.Lock()
		if len(e.queue) == 0 {
			e.mu.Unlock()
			return
		}
		n := len(e.queue)
		if n > e.batchSize {
			n = e.batchSize
		}
		batch := make([]item, n)
		copy(batch, e.queue)
		rest := copy(e.queue, e.queue[n:])
		e.queue = e.queue[:rest]
		e.mu.Unlock()

		var traces []*telemetry.TraceData
		var metrics [][]telemetry.FamilySnapshot
		for _, it := range batch {
			if it.trace != nil {
				traces = append(traces, it.trace)
			}
			if it.metrics != nil {
				metrics = append(metrics, it.metrics)
			}
		}
		if len(traces) > 0 {
			if e.send("/v1/traces", encodeTraces(traces, e.resource), final) {
				e.exportedSpans.Add(uint64(len(traces)))
			}
		}
		for _, fams := range metrics {
			if e.send("/v1/metrics", encodeMetrics(fams, e.resource, e.now()), final) {
				e.exportedMetrics.Add(1)
			}
		}
	}
}

// send POSTs one encoded batch, retrying retryable failures with
// exponential backoff + jitter and honoring Retry-After. Returns true when
// the collector accepted the batch.
func (e *Exporter) send(path string, body []byte, final bool) bool {
	for attempt := 0; ; attempt++ {
		status, retryAfter, err := e.post(path, body)
		if err == nil && status >= 200 && status < 300 {
			return true
		}
		retryable := err != nil || status == http.StatusTooManyRequests || status >= 500
		if !retryable {
			e.droppedRejected.Add(1)
			return false
		}
		if attempt >= e.maxRetries {
			e.droppedRetry.Add(1)
			return false
		}
		e.retries.Add(1)
		wait := e.backoffBase << attempt
		wait += time.Duration(rand.Int64N(int64(wait)/2 + 1)) // jitter: [base, 1.5*base)
		if retryAfter > 0 {
			wait = retryAfter
		}
		if final {
			// Shutdown flush: sleep without listening for stop (it is
			// already closed) but never longer than one backoff step.
			time.Sleep(wait)
			continue
		}
		select {
		case <-e.stop:
			// Shutting down mid-backoff: leave the batch unsent; the Close
			// flush path gets one more attempt sequence.
			e.droppedRetry.Add(1)
			return false
		case <-time.After(wait):
		}
	}
}

// post performs one HTTP attempt, first consulting the faultinject seam so
// chaos tests can synthesize a 503 storm without a network.
func (e *Exporter) post(path string, body []byte) (status int, retryAfter time.Duration, err error) {
	if fail, ra := faultinject.OTLPSend(); fail {
		return http.StatusServiceUnavailable, ra, nil
	}
	req, err := http.NewRequestWithContext(context.Background(), http.MethodPost, e.endpoint+path, bytes.NewReader(body))
	if err != nil {
		return 0, 0, fmt.Errorf("otlp: build request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := e.client.Do(req)
	if err != nil {
		return 0, 0, err
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	return resp.StatusCode, parseRetryAfter(resp.Header.Get("Retry-After")), nil
}

// parseRetryAfter decodes a Retry-After header as (possibly fractional)
// seconds; the HTTP-date form and garbage both yield 0 (use backoff).
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	sec, err := strconv.ParseFloat(v, 64)
	if err != nil || sec < 0 || sec > 3600 {
		return 0
	}
	return time.Duration(sec * float64(time.Second))
}
